package experiments

import (
	"fmt"

	"repro/internal/campaign"
	"repro/internal/esp"
	"repro/internal/metrics"
)

// This file fans the paper's experiment matrix across the campaign
// worker pool. Every sweep builds its task list up front (slices, in a
// fixed order), hands it to campaign.Run, and consumes the results by
// index — so a sweep at any worker count produces exactly the bytes a
// serial run would. Each task constructs its own engine, cluster,
// scheduler and recorder inside RunESP; tasks share nothing.

// RunStandardParallel runs the four Table II configurations on the
// campaign pool and returns the results in StandardConfigs order.
func RunStandardParallel(genOpts esp.GenOpts, opts campaign.Options) []*ESPResult {
	configs := StandardConfigs()
	tasks := make([]func() *ESPResult, len(configs))
	for i := range configs {
		c := configs[i]
		tasks[i] = func() *ESPResult { return RunESP(c, genOpts) }
	}
	return campaign.Run(tasks, opts)
}

// SweepPoint is one cell of a campaign sweep: a labelled ESP run.
type SweepPoint struct {
	Label  string
	Result *ESPResult
}

// SeedSweep runs every Table II configuration for every seed
// (configs × seeds tasks, fanned out individually for load balance)
// and returns the per-seed result groups in seed order.
func SeedSweep(base esp.GenOpts, seeds []int64, opts campaign.Options) [][]*ESPResult {
	configs := StandardConfigs()
	tasks := make([]func() *ESPResult, 0, len(seeds)*len(configs))
	for _, seed := range seeds {
		for _, c := range configs {
			seed, c := seed, c
			g := base
			g.Seed = seed
			g.Rand = nil
			c.Name = fmt.Sprintf("%s/s%d", c.Name, seed)
			tasks = append(tasks, func() *ESPResult { return RunESP(c, g) })
		}
	}
	flat := campaign.Run(tasks, opts)
	out := make([][]*ESPResult, len(seeds))
	for i := range seeds {
		out[i] = flat[i*len(configs) : (i+1)*len(configs)]
	}
	return out
}

// DefaultFractions is the evolving-fraction sweep grid: the paper's
// fixed 30% generalized from all-rigid to all-evolving.
func DefaultFractions() []float64 { return []float64{0, 0.1, 0.25, 0.5, 0.75, 1.0} }

// FractionSweep varies the evolving-job fraction of the workload under
// the Dyn-HP configuration (highest priority, no delay bound — the
// configuration whose behaviour is most sensitive to how much of the
// workload evolves).
func FractionSweep(base esp.GenOpts, fractions []float64, opts campaign.Options) []SweepPoint {
	tasks := make([]func() *ESPResult, len(fractions))
	labels := make([]string, len(fractions))
	for i, f := range fractions {
		f := f
		g := base
		g.Rand = nil
		g.EvolvingOverride = true
		g.EvolvingFraction = f
		c := ESPConfig{Name: fmt.Sprintf("Dyn-HP/f%02.0f", f*100), Dynamic: true}
		labels[i] = c.Name
		tasks[i] = func() *ESPResult { return RunESP(c, g) }
	}
	results := campaign.Run(tasks, opts)
	points := make([]SweepPoint, len(results))
	for i, r := range results {
		points[i] = SweepPoint{Label: labels[i], Result: r}
	}
	return points
}

// DefaultScaleNodes is the cluster-size sweep grid, from the paper's
// 15-node testbed up to a 1024-node machine.
func DefaultScaleNodes() []int { return []int{15, 32, 64, 128, 256, 512, 1024} }

// ScaleSweep varies the cluster size under the Dyn-HP configuration.
// Job sizes are fractional (Table I), so the workload scales with the
// machine; nodes is in nodes of 8 cores, matching Topology.
func ScaleSweep(base esp.GenOpts, nodes []int, opts campaign.Options) []SweepPoint {
	tasks := make([]func() *ESPResult, len(nodes))
	labels := make([]string, len(nodes))
	for i, n := range nodes {
		g := base
		g.Rand = nil
		g.TotalCores = n * 8
		c := ESPConfig{Name: fmt.Sprintf("Dyn-HP/n%d", n), Dynamic: true}
		labels[i] = c.Name
		tasks[i] = func() *ESPResult { return RunESP(c, g) }
	}
	results := campaign.Run(tasks, opts)
	points := make([]SweepPoint, len(results))
	for i, r := range results {
		points[i] = SweepPoint{Label: labels[i], Result: r}
	}
	return points
}

// ScaleJobsPoint is one queue-depth campaign cell: an ESP run whose
// regular mix is replicated Repeat times on a Nodes-node machine, with
// everything submitted at t=0 so the scheduler really faces the full
// queue at once.
type ScaleJobsPoint struct {
	Nodes  int
	Repeat int
	Label  string
}

// DefaultScaleJobs is the scheduler-capacity grid: the 50k- and
// 100k-job points (228 regular jobs × 220 and × 439) on a 4096-node
// machine — the scale the reworked scheduler core is specified
// against. These runs are long (hours of host time); they are meant
// for offline campaigns, not CI (see EXPERIMENTS.md).
func DefaultScaleJobs() []ScaleJobsPoint {
	return []ScaleJobsPoint{
		{Nodes: 4096, Repeat: 220, Label: "50k"},
		{Nodes: 4096, Repeat: 439, Label: "100k"},
	}
}

// ScaleJobsSweep varies the queue depth under the Dyn-HP
// configuration via the workload Repeat multiplier.
func ScaleJobsSweep(base esp.GenOpts, pts []ScaleJobsPoint, opts campaign.Options) []SweepPoint {
	tasks := make([]func() *ESPResult, len(pts))
	labels := make([]string, len(pts))
	for i, p := range pts {
		g := base
		g.Rand = nil
		g.TotalCores = p.Nodes * 8
		g.Repeat = p.Repeat
		// Submit the whole replicated mix up front: the point is queue
		// depth, not arrival cadence.
		g.InitialBatch = 228 * p.Repeat
		c := ESPConfig{Name: fmt.Sprintf("Dyn-HP/n%d-j%s", p.Nodes, p.Label), Dynamic: true}
		labels[i] = c.Name
		tasks[i] = func() *ESPResult { return RunESP(c, g) }
	}
	results := campaign.Run(tasks, opts)
	points := make([]SweepPoint, len(results))
	for i, r := range results {
		points[i] = SweepPoint{Label: labels[i], Result: r}
	}
	return points
}

// FormatSweep renders a sweep as a Table II-style comparison.
func FormatSweep(points []SweepPoint) string {
	rows := make([]metrics.Summary, len(points))
	for i, p := range points {
		rows[i] = p.Result.Summary
	}
	return metrics.FormatTable(rows)
}

// FormatSeedSweep renders the per-seed groups one table after another.
func FormatSeedSweep(groups [][]*ESPResult) string {
	var out string
	for _, g := range groups {
		out += TableII(g)
	}
	return out
}
