package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/clock"
	"repro/internal/fairtree"
	"repro/internal/sim"
)

func fairshareFixture(workers int, hist *bytes.Buffer) FairshareOpts {
	opts := FairshareOpts{
		Users:           200,
		Queues:          8,
		Epochs:          4,
		RecordsPerEpoch: 1000,
		Workers:         workers,
		Decay:           0.5,
		Interval:        sim.Hour,
		Clock:           clock.NewFake(time.Unix(0, 0)),
		HistoryFormat:   fairtree.HistoryCSV,
		HistoryDepth:    1, // group nodes only
	}
	if hist != nil { // a nil *bytes.Buffer must stay a nil interface
		opts.History = hist
	}
	return opts
}

// TestFairshareWorkerCountInvariance is the campaign-level golden: the
// allocation-history stream, factor checksum and top-k ranking must be
// byte-identical no matter how many goroutines recorded the charges.
func TestFairshareWorkerCountInvariance(t *testing.T) {
	var refHist bytes.Buffer
	ref, err := RunFairshare(fairshareFixture(1, &refHist))
	if err != nil {
		t.Fatal(err)
	}
	if ref.Records != 4000 || ref.LiveLeaves == 0 {
		t.Fatalf("implausible reference result: %+v", ref)
	}
	if !strings.HasPrefix(refHist.String(), "time_s,epoch,node,depth,usage,factor,quota,live\n") {
		t.Fatalf("history missing CSV header:\n%s", refHist.String()[:80])
	}
	// 4 epochs x 8 group rows + header.
	if got := strings.Count(refHist.String(), "\n"); got != 4*8+1 {
		t.Fatalf("history rows = %d, want %d", got, 4*8+1)
	}
	for _, workers := range []int{4, 8} {
		var h bytes.Buffer
		r, err := RunFairshare(fairshareFixture(workers, &h))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(h.Bytes(), refHist.Bytes()) {
			t.Errorf("workers=%d: history diverged from single-worker run", workers)
		}
		if r.FactorChecksum != ref.FactorChecksum {
			t.Errorf("workers=%d: checksum %g != %g", workers, r.FactorChecksum, ref.FactorChecksum)
		}
		if strings.Join(r.Top, " ") != strings.Join(ref.Top, " ") {
			t.Errorf("workers=%d: top-k %v != %v", workers, r.Top, ref.Top)
		}
		if r.LiveLeaves != ref.LiveLeaves {
			t.Errorf("workers=%d: live leaves %d != %d", workers, r.LiveLeaves, ref.LiveLeaves)
		}
	}
}

func TestFairshareFormat(t *testing.T) {
	r, err := RunFairshare(fairshareFixture(2, nil))
	if err != nil {
		t.Fatal(err)
	}
	out := FormatFairshare(r)
	for _, want := range []string{"records: 4000", "record (sharded)", "factor checksum:", "heaviest:"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestFairshareOptValidation(t *testing.T) {
	if _, err := RunFairshare(FairshareOpts{Users: 0, Queues: 1}); err == nil {
		t.Error("zero users accepted")
	}
	if _, err := RunFairshare(FairshareOpts{Users: 10, Queues: 1, Decay: 1.5}); err == nil {
		t.Error("decay > 1 accepted")
	}
	// More queues than users clamps rather than errors.
	r, err := RunFairshare(FairshareOpts{
		Users: 3, Queues: 9, Epochs: 1, RecordsPerEpoch: 10,
		Decay: 0.5, Clock: clock.NewFake(time.Unix(0, 0)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.Queues != 3 {
		t.Errorf("queues = %d, want clamped to 3", r.Queues)
	}
}
