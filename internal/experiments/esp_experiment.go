// Package experiments assembles full paper experiments from the
// building blocks: the four dynamic-ESP configurations of Table II
// (Static, Dyn-HP, Dyn-500, Dyn-600) with the waiting-time series of
// Figs. 8–11, the Quadflow runs of Fig. 7, and sweep utilities for the
// ablation benchmarks listed in DESIGN.md.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/campaign"
	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/esp"
	"repro/internal/fairness"
	"repro/internal/metrics"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ESPConfig names one evaluation configuration of §IV-B.
type ESPConfig struct {
	Name string
	// Dynamic enables the evolving behaviour of types F–J.
	Dynamic bool
	// TargetDelay, when > 0, limits each static user's cumulative
	// delay per DFS interval (the paper's Dyn-500/Dyn-600 configs).
	// Zero with Dynamic=true is the highest-priority configuration.
	TargetDelay sim.Duration
	// Interval is the DFS accounting interval (paper: 1 h).
	Interval sim.Duration
	// Decay is the DFSDecay carried across intervals.
	Decay float64
	// Mutate, when set, adjusts the scheduler config (ablations).
	Mutate func(*config.SchedConfig)
	// CoreOpts, when set, adjusts the scheduler options (ablations
	// such as dynamic-requests-after-backfill).
	CoreOpts func(*core.Options)
}

// StandardConfigs returns the paper's four Table II configurations.
func StandardConfigs() []ESPConfig {
	return []ESPConfig{
		{Name: "Static"},
		{Name: "Dyn-HP", Dynamic: true},
		{Name: "Dyn-500", Dynamic: true, TargetDelay: 500 * sim.Second, Interval: sim.Hour},
		{Name: "Dyn-600", Dynamic: true, TargetDelay: 600 * sim.Second, Interval: sim.Hour},
	}
}

// staticUsers are the rigid-job users of Table I whose delay the
// Dyn-500/Dyn-600 configurations bound ("the cumulative delay for each
// static user's jobs").
func staticUsers() []string {
	var users []string
	seen := map[string]bool{}
	for _, t := range esp.TableI() {
		if !t.Evolving && !seen[t.User] {
			seen[t.User] = true
			users = append(users, t.User)
		}
	}
	return users
}

// SchedConfig builds the scheduler configuration for an ESP config.
func (c ESPConfig) SchedConfig() *config.SchedConfig {
	sc := config.Default()
	// The paper sets ReservationDepth and ReservationDelayDepth to 5.
	sc.ReservationDepth = 5
	sc.ReservationDelayDepth = 5
	if !c.Dynamic || c.TargetDelay == 0 {
		sc.Fairness = fairness.NewConfig(fairness.None)
	} else {
		f := fairness.NewConfig(fairness.TargetDelay)
		f.Interval = c.Interval
		if f.Interval <= 0 {
			f.Interval = sim.Hour
		}
		f.Decay = c.Decay
		for _, u := range staticUsers() {
			f.Set(fairness.KindUser, u, fairness.Limits{
				PermSet: true, Perm: true, TargetDelayTime: c.TargetDelay,
			})
		}
		sc.Fairness = f
	}
	if c.Mutate != nil {
		c.Mutate(sc)
	}
	return sc
}

// Topology maps a requested system size onto the paper's node shape:
// 8 cores per node (2× Intel X5570), enough nodes to cover the size.
// The default 120 cores is the paper's 15-node testbed.
func Topology(totalCores int) (nodes, coresPerNode int) {
	if totalCores <= 0 {
		totalCores = 120
	}
	coresPerNode = 8
	nodes = (totalCores + coresPerNode - 1) / coresPerNode
	return nodes, coresPerNode
}

// ESPResult is the outcome of one configuration run.
type ESPResult struct {
	Config   ESPConfig
	Summary  metrics.Summary
	Recorder *metrics.Recorder
	// GrantAttempts / GrantsSatisfied count dynamic request traffic.
	GrantAttempts   int
	GrantsSatisfied int
	Iterations      uint64
	// Decisions retains every dynamic-request verdict with its
	// measured per-job delays, for fairness-invariant checks.
	Decisions []DecisionRecord
	// Trace is the full schedule event log (renderable as a Gantt).
	Trace *trace.Log
}

// DecisionRecord is a timestamped dynamic-request verdict.
type DecisionRecord struct {
	At sim.Time
	core.DynDecision
}

// RunESP executes the dynamic ESP workload under one configuration on
// a simulated 15-node × 8-core cluster and returns the metrics.
func RunESP(c ESPConfig, genOpts esp.GenOpts) *ESPResult {
	genOpts.Dynamic = c.Dynamic
	eng := sim.NewEngine()
	nodes, coresPerNode := Topology(genOpts.TotalCores)
	genOpts.TotalCores = nodes * coresPerNode
	cl := cluster.New(nodes, coresPerNode)
	copts := core.Options{
		Config:               c.SchedConfig(),
		StrictSystemPriority: true,
	}
	if c.CoreOpts != nil {
		c.CoreOpts(&copts)
	}
	sched := core.New(copts, 0)
	rec := metrics.NewRecorder(cl.TotalCores())
	srv := rms.NewServer(eng, cl, sched, rec)
	tr := &trace.Log{}
	srv.Trace = tr

	res := &ESPResult{Config: c, Recorder: rec, Trace: tr}
	srv.OnIteration = func(ir *core.IterationResult) {
		for _, d := range ir.DynDecisions {
			res.GrantAttempts++
			if d.Granted {
				res.GrantsSatisfied++
			}
			d := d
			d.Delays = append([]fairness.JobDelay(nil), d.Delays...)
			res.Decisions = append(res.Decisions, DecisionRecord{At: ir.Now, DynDecision: d})
		}
	}

	w := esp.Generate(genOpts)
	w.SubmitAll(srv)
	srv.Run(50_000_000)

	res.Summary = rec.Summarize(c.Name)
	res.Iterations = sched.Iterations()
	return res
}

// RunStandard runs all four Table II configurations with the given
// generator options and returns the results in order. It is the
// serial (Workers=1) reference path of RunStandardParallel.
func RunStandard(genOpts esp.GenOpts) []*ESPResult {
	return RunStandardParallel(genOpts, campaign.Options{Workers: 1})
}

// TableII renders the Table II comparison for a set of results.
func TableII(results []*ESPResult) string {
	rows := make([]metrics.Summary, len(results))
	for i, r := range results {
		rows[i] = r.Summary
	}
	return metrics.FormatTable(rows)
}

// WaitComparison renders the waiting-time-by-submission-order series
// of several configurations side by side (Figs. 8, 10, 11). Column
// one is the job index in submission order.
func WaitComparison(results []*ESPResult) string {
	var b strings.Builder
	b.WriteString("jobIdx")
	series := make([][]float64, len(results))
	maxLen := 0
	for i, r := range results {
		fmt.Fprintf(&b, "\t%s", r.Config.Name)
		series[i] = r.Recorder.WaitSeries()
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	b.WriteByte('\n')
	for idx := 0; idx < maxLen; idx++ {
		fmt.Fprintf(&b, "%d", idx+1)
		for i := range series {
			if idx < len(series[i]) {
				fmt.Fprintf(&b, "\t%.0f", series[i][idx])
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TypeLComparison renders the type-L waiting times of Fig. 9.
func TypeLComparison(results []*ESPResult) string {
	var b strings.Builder
	b.WriteString("L-jobIdx")
	series := make([][]metrics.JobRecord, len(results))
	maxLen := 0
	for i, r := range results {
		fmt.Fprintf(&b, "\t%s", r.Config.Name)
		series[i] = r.Recorder.JobsOfType("L")
		if len(series[i]) > maxLen {
			maxLen = len(series[i])
		}
	}
	b.WriteByte('\n')
	for idx := 0; idx < maxLen; idx++ {
		fmt.Fprintf(&b, "%d", idx+1)
		for i := range series {
			if idx < len(series[i]) {
				fmt.Fprintf(&b, "\t%.0f", sim.SecondsOf(series[i][idx].Wait()))
			} else {
				b.WriteString("\t-")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
