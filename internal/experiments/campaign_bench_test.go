package experiments

import (
	"fmt"
	"testing"

	"repro/internal/campaign"
	"repro/internal/esp"
)

// BenchmarkCampaignSeedSweep measures campaign wall-clock scaling: a
// fixed 8-seed × 4-config sweep (32 independent ESP simulations) at
// increasing worker counts. ns/op at workers=8 vs workers=1 is the
// campaign speedup reported in BENCH_campaign.json.
func BenchmarkCampaignSeedSweep(b *testing.B) {
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = int64(5 + i)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				SeedSweep(esp.DefaultOpts(), seeds, campaign.Options{Workers: workers})
			}
		})
	}
}
