package experiments

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/esp"
	"repro/internal/fairness"
	"repro/internal/sim"
)

func TestTopology(t *testing.T) {
	n, c := Topology(0)
	if n != 15 || c != 8 {
		t.Errorf("default topology = %dx%d, want 15x8", n, c)
	}
	n, c = Topology(120)
	if n != 15 || c != 8 {
		t.Errorf("120-core topology = %dx%d", n, c)
	}
	n, _ = Topology(121)
	if n != 16 {
		t.Errorf("121 cores needs 16 nodes, got %d", n)
	}
}

func TestSchedConfigs(t *testing.T) {
	cfgs := StandardConfigs()
	if len(cfgs) != 4 {
		t.Fatal("four configurations per Table II")
	}
	static := cfgs[0].SchedConfig()
	if static.Fairness.Policy != fairness.None {
		t.Error("static config needs no fairness")
	}
	if static.ReservationDepth != 5 || static.ReservationDelayDepth != 5 {
		t.Error("paper sets both depths to 5")
	}
	hp := cfgs[1].SchedConfig()
	if hp.Fairness.Policy != fairness.None {
		t.Error("Dyn-HP disables fairness (highest priority)")
	}
	d500 := cfgs[2].SchedConfig()
	if d500.Fairness.Policy != fairness.TargetDelay {
		t.Error("Dyn-500 uses the target-delay policy")
	}
	if d500.Fairness.Interval != sim.Hour {
		t.Error("Dyn-500 interval is 1 h")
	}
	// Every static (rigid) user is limited; the evolving user06 isn't.
	users := 0
	for k, l := range d500.Fairness.Entities {
		if k.Kind == fairness.KindUser {
			users++
			if k.Name == "user06" {
				t.Error("evolving user06 must not carry a static-user limit")
			}
			if l.TargetDelayTime != 500*sim.Second {
				t.Errorf("%s limit = %v", k, l.TargetDelayTime)
			}
		}
	}
	if users != 9 {
		t.Errorf("limited static users = %d, want 9", users)
	}
}

// TestTableIIShape runs the full dynamic ESP benchmark in all four
// configurations and asserts the paper's qualitative result ordering
// (Table II): the static workload is slowest with the lowest
// utilization and zero satisfied requests; Dyn-HP is fastest and
// satisfies the most; the DFS configs land in between, with the
// tighter budget satisfying fewer requests.
func TestTableIIShape(t *testing.T) {
	rs := RunStandard(esp.DefaultOpts())
	static, hp, d500, d600 := rs[0].Summary, rs[1].Summary, rs[2].Summary, rs[3].Summary

	if static.SatisfiedDynJobs != 0 {
		t.Errorf("static satisfied = %d", static.SatisfiedDynJobs)
	}
	if static.Jobs != 230 || hp.Jobs != 230 {
		t.Errorf("jobs = %d/%d, want 230", static.Jobs, hp.Jobs)
	}
	// Makespan ordering: Static > Dyn-500 > Dyn-600 > Dyn-HP.
	if !(static.MakespanMinutes > d500.MakespanMinutes &&
		d500.MakespanMinutes > d600.MakespanMinutes &&
		d600.MakespanMinutes > hp.MakespanMinutes) {
		t.Errorf("makespans: static=%.1f 500=%.1f 600=%.1f hp=%.1f",
			static.MakespanMinutes, d500.MakespanMinutes, d600.MakespanMinutes, hp.MakespanMinutes)
	}
	// Satisfied requests: HP > 600 > 500 > 0.
	if !(hp.SatisfiedDynJobs > d600.SatisfiedDynJobs &&
		d600.SatisfiedDynJobs > d500.SatisfiedDynJobs &&
		d500.SatisfiedDynJobs > 0) {
		t.Errorf("satisfied: hp=%d 600=%d 500=%d",
			hp.SatisfiedDynJobs, d600.SatisfiedDynJobs, d500.SatisfiedDynJobs)
	}
	// Utilization and throughput: every dynamic config beats static.
	for _, r := range rs[1:] {
		if r.Summary.UtilizationPct <= static.UtilizationPct {
			t.Errorf("%s util %.1f ≤ static %.1f", r.Config.Name, r.Summary.UtilizationPct, static.UtilizationPct)
		}
		if r.Summary.ThroughputJPM <= static.ThroughputJPM {
			t.Errorf("%s throughput ≤ static", r.Config.Name)
		}
	}
	// Dyn-HP throughput increase lands in the paper's ballpark (11.3%);
	// accept a generous band since the submission order differs.
	inc := (hp.ThroughputJPM - static.ThroughputJPM) / static.ThroughputJPM * 100
	if inc < 3 || inc > 25 {
		t.Errorf("Dyn-HP throughput increase = %.1f%%, expected the ~11%% ballpark", inc)
	}
	// Backfilling: the dynamic configs backfill at least as much as
	// static overall loses — the paper's counter-intuitive finding is
	// that dynamic allocation *increases* backfilling.
	if hp.Backfilled <= static.Backfilled {
		t.Errorf("Dyn-HP backfilled %d ≤ static %d", hp.Backfilled, static.Backfilled)
	}
}

// TestFig8Shape asserts the Fig. 8 phenomenon: under Dyn-HP a
// contiguous band of mid-range jobs waits longer than under Static
// while the tail of the workload waits less.
func TestFig8Shape(t *testing.T) {
	rs := RunStandard(esp.DefaultOpts())
	ws := rs[0].Recorder.WaitSeries()
	wh := rs[1].Recorder.WaitSeries()
	if len(ws) != len(wh) || len(ws) != 230 {
		t.Fatalf("series lengths %d/%d", len(ws), len(wh))
	}
	firstHalfWorse, secondHalfWorse, better := 0, 0, 0
	for i := range ws {
		switch {
		case wh[i] > ws[i]+1:
			if i < 115 {
				firstHalfWorse++
			} else {
				secondHalfWorse++
			}
		case wh[i] < ws[i]-1:
			better++
		}
	}
	if firstHalfWorse < 10 {
		t.Errorf("expected a delayed band in the first half, got %d worse jobs", firstHalfWorse)
	}
	if better < firstHalfWorse+secondHalfWorse {
		t.Errorf("overall more jobs should improve (better=%d worse=%d)",
			better, firstHalfWorse+secondHalfWorse)
	}
}

// TestDFSBudgetInvariant asserts the dynamic fairness policy's
// contract in the full ESP run: under Dyn-500, the delays charged to
// any static user by *granted* requests never exceed 500 s within one
// accounting interval (1 h, decay 0), and at least one request is
// rejected specifically by the fairness gate (not just for lack of
// resources).
func TestDFSBudgetInvariant(t *testing.T) {
	res := RunESP(StandardConfigs()[2], esp.DefaultOpts()) // Dyn-500
	budget := 500.0
	perUserInterval := map[string]float64{}
	fairnessRejections := 0
	for _, d := range res.Decisions {
		if !d.Granted {
			if strings.Contains(d.Reason, "target delay") {
				fairnessRejections++
			}
			continue
		}
		interval := int64(d.At / sim.Hour)
		for _, jd := range d.Delays {
			if jd.Job.Cred.User == d.Req.Job.Cred.User {
				continue // same-user exemption
			}
			key := fmt.Sprintf("%s@%d", jd.Job.Cred.User, interval)
			perUserInterval[key] += sim.SecondsOf(jd.Delay)
			if perUserInterval[key] > budget+0.001 {
				t.Errorf("user-interval %s charged %.1f s > %v s budget",
					key, perUserInterval[key], budget)
			}
		}
	}
	if fairnessRejections == 0 {
		t.Error("Dyn-500 never rejected a request on fairness grounds")
	}
	if res.GrantsSatisfied == 0 {
		t.Error("Dyn-500 should still grant some requests")
	}
}

func TestRunESPDeterministic(t *testing.T) {
	a := RunESP(StandardConfigs()[1], esp.DefaultOpts())
	b := RunESP(StandardConfigs()[1], esp.DefaultOpts())
	if a.Summary != b.Summary {
		t.Errorf("identical runs diverged:\n%+v\n%+v", a.Summary, b.Summary)
	}
}

func TestFormatters(t *testing.T) {
	opts := esp.DefaultOpts()
	opts.TotalCores = 32 // small & fast
	rs := []*ESPResult{
		RunESP(StandardConfigs()[0], opts),
		RunESP(StandardConfigs()[1], opts),
	}
	table := TableII(rs)
	if !strings.Contains(table, "Static") || !strings.Contains(table, "Dyn-HP") {
		t.Error("TableII missing rows")
	}
	wc := WaitComparison(rs)
	if !strings.HasPrefix(wc, "jobIdx\tStatic\tDyn-HP") {
		t.Errorf("WaitComparison header: %q", strings.SplitN(wc, "\n", 2)[0])
	}
	if strings.Count(wc, "\n") != 231 {
		t.Errorf("WaitComparison rows = %d", strings.Count(wc, "\n"))
	}
	lc := TypeLComparison(rs)
	if strings.Count(lc, "\n") != 37 { // header + 36 type-L jobs
		t.Errorf("TypeLComparison rows = %d", strings.Count(lc, "\n"))
	}
}

// TestFig12Smoke measures the live-daemon dynamic allocation overhead
// for a couple of node counts and checks the paper's headline claim:
// sub-second overhead.
func TestFig12Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("live daemons")
	}
	points, err := RunFig12(Fig12Opts{MaxNodes: 2, CoresPerNode: 4, QueuedJobs: 3, Samples: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.IdleMS <= 0 || p.LoadedMS <= 0 {
			t.Errorf("non-positive latency: %+v", p)
		}
		if p.IdleMS > 1000 || p.LoadedMS > 1000 {
			t.Errorf("overhead exceeds one second: %+v", p)
		}
	}
	out := FormatFig12(points)
	if !strings.Contains(out, "Idle [ms]") {
		t.Error("FormatFig12 header")
	}
}
