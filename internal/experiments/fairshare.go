package experiments

import (
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/clock"
	"repro/internal/fairtree"
	"repro/internal/sim"
)

// FairshareOpts parameterizes the fairshare-at-scale stress campaign:
// a hierarchical share tree of Queues group nodes under the root with
// Users leaves spread round-robin across them, driven for Epochs decay
// intervals of sharded usage recording.
type FairshareOpts struct {
	// Users is the number of distinct user leaves (paper-scale target:
	// one million).
	Users int
	// Queues is the number of group nodes the users are homed under.
	Queues int
	// Epochs is how many decay intervals the campaign simulates.
	Epochs int
	// RecordsPerEpoch is how many usage charges arrive per interval.
	RecordsPerEpoch int
	// Workers is the number of concurrent recording goroutines. The
	// result — factors, history stream, top-k — is byte-identical at
	// any worker count: records land in lock-striped shards and the
	// fold sorts them before accumulating.
	Workers int
	// Decay is the per-interval usage decay (default 0.5).
	Decay float64
	// Interval is the decay interval in simulation time.
	Interval sim.Duration
	// Clock supplies phase timings. This package must not read the
	// wall clock directly (schedlint nodeterminism); esprun injects
	// clock.Wall, tests a clock.Fake. Nil defaults to clock.Wall.
	Clock clock.Clock
	// History, when non-nil, receives the allocation-history stream
	// (one snapshot per node per epoch, depth-limited by HistoryDepth).
	History       io.Writer
	HistoryFormat fairtree.HistoryFormat
	// HistoryDepth limits history rows to nodes at depth <= this
	// (0 = no limit; 1 = group nodes only).
	HistoryDepth int
	// OnProgress, when non-nil, is called after each completed epoch.
	OnProgress func(done, total int)
}

// DefaultFairshareOpts is the issue-scale stress: 1M users across 10k
// queues, three decay intervals of one million charges each.
func DefaultFairshareOpts() FairshareOpts {
	return FairshareOpts{
		Users:           1_000_000,
		Queues:          10_000,
		Epochs:          3,
		RecordsPerEpoch: 1_000_000,
		Workers:         1,
		Decay:           0.5,
		Interval:        sim.Hour,
		Clock:           clock.Wall{},
	}
}

// FairshareResult carries the campaign counters and phase timings.
type FairshareResult struct {
	Users, Queues, Epochs int
	Records               int64
	LiveLeaves            int
	NumNodes              int

	BuildNS   int64 // tree construction (interning + homing)
	RecordNS  int64 // all sharded Record calls, wall time across workers
	AdvanceNS int64 // all Advance calls (fold + epoch roll)
	FactorNS  int64 // one Factor call per user leaf
	TopKNS    int64 // one TopK(10) walk

	// FactorChecksum is the sum of every leaf's factor after the final
	// epoch — a deterministic fingerprint that must not vary with the
	// worker count.
	FactorChecksum float64
	// Top holds the heaviest leaves (paths) after the final epoch,
	// heaviest first.
	Top []string
}

// splitmix64 is the charge-schedule hash: deterministic, stateless,
// and independent of how record indices are partitioned over workers.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// RunFairshare executes the stress campaign and returns its counters.
// Records are partitioned round-robin over Workers goroutines; each
// charge is a pure function of (epoch, record index), so the tree
// state after every fold — and therefore every factor, history row and
// ranking — is identical no matter how many workers ran.
func RunFairshare(opts FairshareOpts) (FairshareResult, error) {
	if opts.Users <= 0 || opts.Queues <= 0 {
		return FairshareResult{}, fmt.Errorf("fairshare campaign: users and queues must be positive (got %d, %d)", opts.Users, opts.Queues)
	}
	if opts.Queues > opts.Users {
		opts.Queues = opts.Users
	}
	if opts.Epochs <= 0 {
		opts.Epochs = 1
	}
	if opts.RecordsPerEpoch <= 0 {
		opts.RecordsPerEpoch = opts.Users
	}
	if opts.Workers <= 0 {
		opts.Workers = 1
	}
	if opts.Decay < 0 || opts.Decay > 1 {
		return FairshareResult{}, fmt.Errorf("fairshare campaign: decay %g outside [0,1]", opts.Decay)
	}
	if opts.Interval <= 0 {
		opts.Interval = sim.Hour
	}
	clk := opts.Clock
	if clk == nil {
		clk = clock.Wall{}
	}
	res := FairshareResult{Users: opts.Users, Queues: opts.Queues, Epochs: opts.Epochs}

	// Build: queue groups under the root, user leaves round-robin
	// under the groups. Quotas cycle 1..4 so the hierarchy exercises
	// the non-uniform-target paths, not just the degenerate flat case.
	t0 := clk.Now()
	tree := fairtree.New(fairtree.Options{Interval: opts.Interval, Decay: opts.Decay, Shards: 64})
	tree.EnableRanking()
	groups := make([]fairtree.NodeID, opts.Queues)
	for g := range groups {
		groups[g] = tree.Child(tree.Root(), fmt.Sprintf("q%05d", g))
		tree.SetQuota(groups[g], float64(1+g%4))
	}
	leaves := make([]fairtree.NodeID, opts.Users)
	for u := range leaves {
		leaves[u] = tree.Child(groups[u%opts.Queues], fmt.Sprintf("u%07d", u))
	}
	res.BuildNS = int64(clk.Since(t0))
	res.NumNodes = tree.NumNodes()

	var hist *fairtree.HistoryWriter
	if opts.History != nil {
		hist = fairtree.NewHistoryWriter(opts.History, opts.HistoryFormat)
	}

	now := sim.Time(0)
	for e := 0; e < opts.Epochs; e++ {
		// Record phase: workers own record indices round-robin; the
		// charge for index i is a pure hash of (epoch, i).
		t0 = clk.Now()
		var wg sync.WaitGroup
		for w := 0; w < opts.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < opts.RecordsPerEpoch; i += opts.Workers {
					h := splitmix64(uint64(e)<<32 ^ uint64(i))
					leaf := leaves[h%uint64(len(leaves))]
					amt := float64(h>>40%1000 + 1)
					tree.Record(leaf, amt)
				}
			}(w)
		}
		wg.Wait()
		res.RecordNS += int64(clk.Since(t0))
		res.Records += int64(opts.RecordsPerEpoch)

		// Advance folds the shards deterministically and rolls the
		// decay epoch.
		now += sim.Time(opts.Interval)
		t0 = clk.Now()
		tree.Advance(now)
		res.AdvanceNS += int64(clk.Since(t0))

		if hist != nil {
			tree.EmitHistory(hist, now, opts.HistoryDepth)
		}
		if opts.OnProgress != nil {
			opts.OnProgress(e+1, opts.Epochs)
		}
	}
	if hist != nil {
		if err := hist.Flush(); err != nil {
			return res, fmt.Errorf("fairshare campaign: history flush: %w", err)
		}
	}

	// Factor phase: one hierarchical factor per leaf, summed into a
	// worker-count-invariant fingerprint.
	t0 = clk.Now()
	sum := 0.0
	for _, id := range leaves {
		sum += tree.Factor(id)
	}
	res.FactorNS = int64(clk.Since(t0))
	res.FactorChecksum = sum
	res.LiveLeaves = tree.LiveLeaves()

	t0 = clk.Now()
	top := tree.TopK(10, nil)
	res.TopKNS = int64(clk.Since(t0))
	res.Top = make([]string, len(top))
	for i, id := range top {
		res.Top[i] = tree.Path(id)
	}
	return res, nil
}

// FormatFairshare renders the campaign summary.
func FormatFairshare(r FairshareResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tree: %d nodes (%d queues, %d users), %d live leaves after %d epochs\n",
		r.NumNodes, r.Queues, r.Users, r.LiveLeaves, r.Epochs)
	fmt.Fprintf(&b, "records: %d total\n", r.Records)
	fmt.Fprintf(&b, "%-22s %14s %14s\n", "phase", "total [ms]", "per-op [ns]")
	row := func(name string, totalNS int64, ops int64) {
		per := 0.0
		if ops > 0 {
			per = float64(totalNS) / float64(ops)
		}
		fmt.Fprintf(&b, "%-22s %14.2f %14.1f\n", name, float64(totalNS)/1e6, per)
	}
	row("build", r.BuildNS, int64(r.Users+r.Queues))
	row("record (sharded)", r.RecordNS, r.Records)
	row("advance (fold+roll)", r.AdvanceNS, int64(r.Epochs))
	row("factor", r.FactorNS, int64(r.Users))
	row("topk(10)", r.TopKNS, 1)
	if len(r.Top) > 0 {
		fmt.Fprintf(&b, "heaviest: %s\n", strings.Join(r.Top, " "))
	}
	fmt.Fprintf(&b, "factor checksum: %g\n", r.FactorChecksum)
	return b.String()
}
