package experiments

import (
	"crypto/sha256"
	"reflect"
	"testing"

	"repro/internal/campaign"
	"repro/internal/esp"
	"repro/internal/job"
)

// TestCampaignIsBitIdentical is the campaign-mode determinism
// guarantee: fanning the four Table II configurations across eight
// workers must reproduce a serial run byte for byte — the rendered
// Table II, every per-run decision trace, and every schedule event
// log. Results are keyed by task index, so completion order (which the
// race detector perturbs freely) must never leak into the output.
func TestCampaignIsBitIdentical(t *testing.T) {
	serial := RunStandard(esp.DefaultOpts())
	parallel := RunStandardParallel(esp.DefaultOpts(), campaign.Options{Workers: 8})

	if got, want := TableII(parallel), TableII(serial); got != want {
		t.Errorf("Table II differs between parallel and serial campaign:\n--- serial\n%s\n--- parallel\n%s", want, got)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("result counts differ: %d vs %d", len(parallel), len(serial))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Config.Name != p.Config.Name {
			t.Fatalf("result %d config order differs: %q vs %q", i, s.Config.Name, p.Config.Name)
		}
		if s.Iterations != p.Iterations {
			t.Errorf("%s: iteration counts differ: %d vs %d", s.Config.Name, s.Iterations, p.Iterations)
		}
		if len(s.Decisions) != len(p.Decisions) {
			t.Fatalf("%s: decision counts differ: %d vs %d", s.Config.Name, len(s.Decisions), len(p.Decisions))
		}
		for d := range s.Decisions {
			if !reflect.DeepEqual(s.Decisions[d], p.Decisions[d]) {
				t.Fatalf("%s: decision %d differs:\n  serial:   %+v\n  parallel: %+v",
					s.Config.Name, d, s.Decisions[d], p.Decisions[d])
			}
		}
		hs := sha256.Sum256([]byte(s.Trace.String()))
		hp := sha256.Sum256([]byte(p.Trace.String()))
		if hs != hp {
			t.Errorf("%s: trace logs differ: sha256 %x vs %x", s.Config.Name, hs, hp)
		}
	}
}

// TestFractionSweepEndpoints pins the override semantics: fraction 0
// yields an all-rigid workload, fraction 1 an all-evolving one (modulo
// the two Z jobs, which are never overridden), and the unoverridden
// workload is untouched by the new fields.
func TestFractionSweepEndpoints(t *testing.T) {
	base := esp.DefaultOpts()

	for _, tc := range []struct {
		frac float64
		want int // evolving count among the 228 regular jobs
	}{{0, 0}, {1, 228}} {
		g := base
		g.EvolvingOverride = true
		g.EvolvingFraction = tc.frac
		w := esp.Generate(g)
		evolving := 0
		for _, it := range w.Items {
			if it.Type.Name == "Z" {
				continue
			}
			if it.Job.Class == job.Evolving {
				evolving++
			}
		}
		if evolving != tc.want {
			t.Errorf("fraction %.0f: %d evolving regular jobs, want %d", tc.frac, evolving, tc.want)
		}
	}

	// Same seed, override off vs on: submission order must be identical
	// (the selection draws from the stream only after the shuffle).
	plain := esp.Generate(base)
	g := base
	g.EvolvingOverride = true
	g.EvolvingFraction = 0.5
	over := esp.Generate(g)
	for i := range plain.Items {
		if plain.Items[i].Job.Name != over.Items[i].Job.Name ||
			plain.Items[i].SubmitAt != over.Items[i].SubmitAt {
			t.Fatalf("submission order disturbed at %d: %s@%d vs %s@%d",
				i, plain.Items[i].Job.Name, plain.Items[i].SubmitAt,
				over.Items[i].Job.Name, over.Items[i].SubmitAt)
		}
	}
}

// TestScaleJobsSweepSmoke runs a tiny queue-depth point (Repeat=2 on
// the paper's 15-node machine) end to end: the full replicated mix is
// submitted at t=0 and every job completes. The production 50k/100k
// points in DefaultScaleJobs use the same code path.
func TestScaleJobsSweepSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full ESP run")
	}
	pts := []ScaleJobsPoint{{Nodes: 15, Repeat: 2, Label: "2x"}}
	res := ScaleJobsSweep(esp.DefaultOpts(), pts, campaign.Options{})
	if len(res) != 1 {
		t.Fatalf("%d points, want 1", len(res))
	}
	if res[0].Label != "Dyn-HP/n15-j2x" {
		t.Errorf("label = %q", res[0].Label)
	}
	if got, want := res[0].Result.Summary.Jobs, 228*2+2; got != want {
		t.Errorf("completed %d jobs, want %d", got, want)
	}
}
