package experiments

import (
	"crypto/sha256"
	"reflect"
	"testing"

	"repro/internal/esp"
)

// TestESPRunsAreBitIdentical is the end-to-end determinism guarantee
// the nodeterminism/maporder analyzers exist to protect: running the
// seed ESP scenario twice in one process must reproduce the full
// decision trace, the schedule event log, and the Table II summary
// byte for byte. Any wall-clock read, unsorted map iteration, or
// order-dependent float accumulation on the scheduling path shows up
// here as a diff between two same-seed runs.
func TestESPRunsAreBitIdentical(t *testing.T) {
	// Dyn-500 exercises the most machinery: dynamic requests, delay
	// measurement, and the fairness bound.
	cfg := StandardConfigs()[2]
	a := RunESP(cfg, esp.DefaultOpts())
	b := RunESP(cfg, esp.DefaultOpts())

	if a.Iterations != b.Iterations {
		t.Errorf("iteration counts differ: %d vs %d", a.Iterations, b.Iterations)
	}
	if a.GrantAttempts != b.GrantAttempts || a.GrantsSatisfied != b.GrantsSatisfied {
		t.Errorf("grant traffic differs: %d/%d vs %d/%d",
			a.GrantsSatisfied, a.GrantAttempts, b.GrantsSatisfied, b.GrantAttempts)
	}
	if len(a.Decisions) != len(b.Decisions) {
		t.Fatalf("decision counts differ: %d vs %d", len(a.Decisions), len(b.Decisions))
	}
	for i := range a.Decisions {
		if !reflect.DeepEqual(a.Decisions[i], b.Decisions[i]) {
			t.Fatalf("decision %d differs:\n  run A: %+v\n  run B: %+v",
				i, a.Decisions[i], b.Decisions[i])
		}
	}
	if !reflect.DeepEqual(a.Summary, b.Summary) {
		t.Errorf("summaries differ:\n  run A: %+v\n  run B: %+v", a.Summary, b.Summary)
	}
	ha, hb := sha256.Sum256([]byte(a.Trace.String())), sha256.Sum256([]byte(b.Trace.String()))
	if ha != hb {
		t.Errorf("trace logs differ: sha256 %x vs %x", ha, hb)
	}
}

// TestTableIIIsBitIdentical runs the whole four-configuration Table II
// comparison twice and requires byte-identical rendered output.
func TestTableIIIsBitIdentical(t *testing.T) {
	t1 := TableII(RunStandard(esp.DefaultOpts()))
	t2 := TableII(RunStandard(esp.DefaultOpts()))
	if t1 != t2 {
		t.Errorf("Table II differs between same-seed runs:\n--- run A\n%s\n--- run B\n%s", t1, t2)
	}
}
