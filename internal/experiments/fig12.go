package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/campaign"
	"repro/internal/clock"
	"repro/internal/core"
	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/serverd"
	"repro/internal/tm"
)

// OverheadPoint is one x-value of Fig. 12: the tm_dynget round-trip
// latency for dynamically allocating n nodes, with an idle batch
// system and with a queued workload of rigid jobs
// (ReservationDelayDepth = 5).
type OverheadPoint struct {
	Nodes    int
	IdleMS   float64
	LoadedMS float64
}

var fig12Seq atomic.Int64

// Fig12Opts parameterizes the overhead measurement.
type Fig12Opts struct {
	// MaxNodes is the largest dynamic allocation measured (paper: 10).
	MaxNodes int
	// CoresPerNode matches the testbed (8).
	CoresPerNode int
	// QueuedJobs is the rigid backlog in the loaded scenario.
	QueuedJobs int
	// Samples per point; the median-free mean of a few samples
	// smooths scheduler-wakeup jitter.
	Samples int
	// Clock supplies the timestamps for latency measurement and
	// timeouts. This package is sim-driven and must not touch the wall
	// clock directly (enforced by schedlint's nodeterminism analyzer);
	// the live benchmark injects clock.Wall here, tests a clock.Fake.
	// Nil defaults to clock.Wall.
	Clock clock.Clock
	// Workers bounds how many points are measured concurrently; each
	// point boots its own daemon stack on fresh loopback ports, so the
	// points are independent. <= 1 measures serially (the default —
	// concurrent stacks share the host CPU and can inflate the
	// latencies they measure; use > 1 only for smoke runs).
	Workers int
}

// DefaultFig12Opts mirrors the paper's setup.
func DefaultFig12Opts() Fig12Opts {
	return Fig12Opts{MaxNodes: 10, CoresPerNode: 8, QueuedJobs: 8, Samples: 3, Clock: clock.Wall{}}
}

// RunFig12 measures the dynamic allocation overhead on the real TCP
// daemon stack: a job running on one statically allocated node issues
// tm_dynget for 1..MaxNodes nodes; the reported latency is the full
// application-observed round trip (app → mom → server → scheduler
// iteration with delay measurement and fairness check → allocation →
// dyn_join with every new mom → app).
func RunFig12(opts Fig12Opts) ([]OverheadPoint, error) {
	if opts.MaxNodes <= 0 {
		opts.MaxNodes = 10
	}
	if opts.CoresPerNode <= 0 {
		opts.CoresPerNode = 8
	}
	if opts.Samples <= 0 {
		opts.Samples = 1
	}
	if opts.Clock == nil {
		opts.Clock = clock.Wall{}
	}
	type pointOrErr struct {
		p   OverheadPoint
		err error
	}
	tasks := make([]func() pointOrErr, opts.MaxNodes)
	for i := range tasks {
		n := i + 1
		tasks[i] = func() pointOrErr {
			p := OverheadPoint{Nodes: n}
			idle, err := fig12Measure(opts, n, 0)
			if err != nil {
				return pointOrErr{err: fmt.Errorf("fig12 idle n=%d: %w", n, err)}
			}
			p.IdleMS = idle
			loaded, err := fig12Measure(opts, n, opts.QueuedJobs)
			if err != nil {
				return pointOrErr{err: fmt.Errorf("fig12 loaded n=%d: %w", n, err)}
			}
			p.LoadedMS = loaded
			return pointOrErr{p: p}
		}
	}
	workers := opts.Workers
	if workers <= 1 {
		workers = 1
	}
	results := campaign.Run(tasks, campaign.Options{Workers: workers})
	points := make([]OverheadPoint, len(results))
	for i, r := range results {
		if r.err != nil {
			return nil, r.err
		}
		points[i] = r.p
	}
	return points, nil
}

// fig12Measure averages the probe latency over the configured samples;
// each sample runs on a fresh live cluster of n+1 moms so the queue
// state is identical every time.
func fig12Measure(opts Fig12Opts, n, backlog int) (float64, error) {
	var total time.Duration
	for s := 0; s < opts.Samples; s++ {
		lat, err := fig12Sample(opts, n, backlog)
		if err != nil {
			return 0, err
		}
		total += lat
	}
	return float64(total.Microseconds()) / 1000 / float64(opts.Samples), nil
}

// fig12Sample boots server + n+1 moms, starts the probe job on one
// node, queues the rigid backlog behind it (loaded scenario), then
// lets the probe time one tm_dynget for n nodes.
func fig12Sample(opts Fig12Opts, n, backlog int) (time.Duration, error) {
	sched := core.New(core.Options{}, 0)
	srv := serverd.New(serverd.Options{Sched: sched, PollInterval: 5 * time.Millisecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		return 0, err
	}
	defer srv.Close()
	moms := make([]*mom.Mom, 0, n+1)
	defer func() {
		for _, m := range moms {
			m.Close()
		}
	}()
	for i := 0; i <= n; i++ {
		m := mom.New(fmt.Sprintf("f12n%d", i), opts.CoresPerNode)
		if err := m.Start("127.0.0.1:0", srv.Addr()); err != nil {
			return 0, err
		}
		moms = append(moms, m)
	}
	if err := waitNodes(opts.Clock, srv, n+1, 2*time.Second); err != nil {
		return 0, err
	}

	name := fmt.Sprintf("fig12-probe-%d", fig12Seq.Add(1))
	type result struct {
		lat time.Duration
		err error
	}
	started := make(chan struct{}, 1)
	proceed := make(chan struct{})
	resCh := make(chan result, 1)
	mom.RegisterGoApp(name, func(ctx context.Context, tmc *tm.Context) error {
		started <- struct{}{}
		select {
		case <-proceed:
		case <-ctx.Done():
			return ctx.Err()
		}
		t0 := opts.Clock.Now()
		hosts, err := tmc.DynGetNodes(n, opts.CoresPerNode)
		lat := opts.Clock.Since(t0)
		if err != nil {
			resCh <- result{0, err}
			return err
		}
		_ = tmc.DynFree(hosts)
		resCh <- result{lat, nil}
		return nil
	})
	if _, err := srv.QSub(proto.JobSpec{
		Name: name, User: "prober", Nodes: 1, PPN: opts.CoresPerNode, WallSecs: 600,
		Script: "go:" + name, Evolving: true,
	}); err != nil {
		return 0, err
	}
	select {
	case <-started:
	case <-opts.Clock.After(10 * time.Second):
		return 0, fmt.Errorf("fig12 probe never started")
	}

	// Loaded scenario: with the probe already running, queue rigid
	// jobs that need the whole machine — they block, get reservations,
	// and every dynamic iteration measures delays against them
	// (ReservationDelayDepth = 5 by default).
	for i := 0; i < backlog; i++ {
		if _, err := srv.QSub(proto.JobSpec{
			Name: fmt.Sprintf("backlog%d", i), User: fmt.Sprintf("user%02d", i%5),
			Cores: (n + 1) * opts.CoresPerNode, WallSecs: 3600, Script: "sleep:1h",
		}); err != nil {
			return 0, err
		}
	}
	close(proceed)

	select {
	case r := <-resCh:
		return r.lat, r.err
	case <-opts.Clock.After(30 * time.Second):
		return 0, fmt.Errorf("fig12 probe timed out")
	}
}

func waitNodes(clk clock.Clock, srv *serverd.Server, n int, timeout time.Duration) error {
	deadline := clk.Now().Add(timeout)
	for clk.Now().Before(deadline) {
		if len(srv.QStat().Nodes) >= n {
			return nil
		}
		clk.Sleep(5 * time.Millisecond)
	}
	return fmt.Errorf("only %d of %d moms registered", len(srv.QStat().Nodes), n)
}

// FormatFig12 renders the overhead series.
func FormatFig12(points []OverheadPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-6s %12s %14s\n", "Nodes", "Idle [ms]", "Loaded [ms]")
	for _, p := range points {
		fmt.Fprintf(&b, "%-6d %12.2f %14.2f\n", p.Nodes, p.IdleMS, p.LoadedMS)
	}
	return b.String()
}
