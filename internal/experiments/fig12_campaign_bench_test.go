package experiments

import (
	"fmt"
	"testing"
)

// BenchmarkCampaignFig12 measures campaign wall-clock for the
// live-daemon overhead experiment: every point boots a real TCP
// server + mom stack and waits on registration polls and scheduler
// wakeups, so the workload is blocking-dominated and the worker pool
// overlaps the waiting even on a single core. This is the fleet-style
// campaign the pool exists for; the CPU-bound seed sweep above scales
// with physical cores instead.
func BenchmarkCampaignFig12(b *testing.B) {
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				opts := DefaultFig12Opts()
				opts.MaxNodes = 8
				opts.Samples = 1
				opts.QueuedJobs = 4
				opts.Workers = workers
				if _, err := RunFig12(opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
