package leak

import (
	"testing"
	"time"
)

func TestCleanTestHasNoStrays(t *testing.T) {
	Check(t)
}

func TestStrayDetectsAndClears(t *testing.T) {
	snap := Snapshot()
	quit := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-quit
	}()
	<-started

	strays := Stray(snap, 50*time.Millisecond)
	if len(strays) == 0 {
		t.Fatal("blocked goroutine not reported as stray")
	}

	close(quit)
	if strays := Stray(snap, 2*time.Second); len(strays) != 0 {
		t.Fatalf("stray report did not clear after shutdown: %v", strays)
	}
}

func TestPreexistingGoroutinesAreNotStrays(t *testing.T) {
	quit := make(chan struct{})
	defer close(quit)
	go func() { <-quit }()
	// Snapshot taken after the goroutine started: it must never count.
	snap := Snapshot()
	if strays := Stray(snap, 50*time.Millisecond); len(strays) != 0 {
		t.Fatalf("pre-existing goroutine reported as stray: %v", strays)
	}
}
