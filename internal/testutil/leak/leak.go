// Package leak is a stdlib-only goroutine-leak detector for the daemon
// test suites. A test calls Check(t) first thing; at cleanup the
// package diffs the live goroutine set against the entry snapshot and
// fails the test if goroutines born during the test are still running.
//
// Daemons here promise "Close returns only after every goroutine it
// started has exited" — that promise is exactly what a snapshot-and-
// diff can enforce, and it is the property the goroutinelife analyzer
// proves statically; this helper is the dynamic half of the contract.
//
// Goroutines are identified by id (parsed from runtime.Stack output),
// so a pre-existing background goroutine never counts against a test.
// Shutdown is asynchronous at the runtime level even after a clean
// join (the goroutine's stack may linger briefly after Done/close), so
// the diff polls with a grace period before declaring a leak.
package leak

import (
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"
)

// grace is how long Check waits for stragglers before failing.
const grace = 2 * time.Second

// Check snapshots the live goroutines and registers a cleanup that
// fails t if goroutines created during the test outlive it.
func Check(t *testing.T) {
	t.Helper()
	snap := Snapshot()
	t.Cleanup(func() {
		if t.Failed() {
			return // don't pile a leak report onto a real failure
		}
		if strays := Stray(snap, grace); len(strays) > 0 {
			t.Errorf("leaked %d goroutine(s):\n%s", len(strays), strings.Join(strays, "\n"))
		}
	})
}

// Snapshot returns the ids of all currently live goroutines.
func Snapshot() map[int]bool {
	out := make(map[int]bool)
	for _, g := range stacks() {
		out[g.id] = true
	}
	return out
}

// Stray returns the stacks of interesting goroutines that are live but
// absent from snap, polling until the set is empty or the grace period
// expires.
func Stray(snap map[int]bool, grace time.Duration) []string {
	deadline := time.Now().Add(grace)
	for {
		var strays []string
		for _, g := range stacks() {
			if !snap[g.id] && interesting(g.stack) {
				strays = append(strays, fmt.Sprintf("goroutine %d:\n%s", g.id, g.stack))
			}
		}
		if len(strays) == 0 {
			return nil
		}
		if time.Now().After(deadline) {
			return strays
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// ignored are stack substrings that mark runtime/testing machinery,
// not code under test.
var ignored = []string{
	"testing.RunTests",
	"testing.(*T).Run",
	"testing.(*M).",
	"testing.tRunner",
	"testing.runFuzzing",
	"runtime.goexit",
	"os/signal.signal_recv",
	"runtime/trace.Start",
}

func interesting(stack string) bool {
	// A goroutine blocked inside testing machinery (tRunner, T.Run) is
	// the harness, not code under test; the caller of Stray itself is
	// always such a goroutine.
	for _, ig := range ignored {
		if strings.Contains(stack, ig) {
			return false
		}
	}
	return true
}

type goroutine struct {
	id    int
	stack string
}

// stacks parses runtime.Stack(all=true) into per-goroutine records.
func stacks() []goroutine {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var out []goroutine
	for _, chunk := range strings.Split(string(buf), "\n\n") {
		header, rest, _ := strings.Cut(chunk, "\n")
		// "goroutine 123 [running]:"
		fields := strings.Fields(header)
		if len(fields) < 2 || fields[0] != "goroutine" {
			continue
		}
		id, err := strconv.Atoi(fields[1])
		if err != nil {
			continue
		}
		out = append(out, goroutine{id: id, stack: rest})
	}
	return out
}
