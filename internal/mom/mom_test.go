package mom

import (
	"context"
	"net"
	"testing"
	"time"

	"repro/internal/proto"
	"repro/internal/testutil/leak"
	"repro/internal/tm"
)

func TestSubtractHosts(t *testing.T) {
	leak.Check(t)
	have := []proto.HostSlice{
		{Node: "n0", Cores: 8},
		{Node: "n1", Cores: 4},
		{Node: "n2", Cores: 2},
	}
	got := subtractHosts(have, []proto.HostSlice{
		{Node: "n0", Cores: 3},
		{Node: "n1", Cores: 4},
	})
	if len(got) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got[0].Node != "n0" || got[0].Cores != 5 {
		t.Errorf("partial subtraction: %+v", got[0])
	}
	if got[1].Node != "n2" || got[1].Cores != 2 {
		t.Errorf("untouched slice: %+v", got[1])
	}
	// Removing more than held clamps to zero slices, never negative.
	got = subtractHosts(have, []proto.HostSlice{{Node: "n2", Cores: 99}})
	for _, h := range got {
		if h.Cores <= 0 {
			t.Errorf("non-positive slice survived: %+v", h)
		}
	}
	// Subtracting nothing is identity.
	got = subtractHosts(have, nil)
	if len(got) != 3 {
		t.Error("identity subtraction")
	}
}

func TestRegisterGoAppDuplicatePanics(t *testing.T) {
	leak.Check(t)
	RegisterGoApp("dup-app-test", func(context.Context, *tm.Context) error { return nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	RegisterGoApp("dup-app-test", func(context.Context, *tm.Context) error { return nil })
}

func TestLaunchScriptErrors(t *testing.T) {
	leak.Check(t)
	m := New("testnode", 8)
	tmc := &tm.Context{JobID: 1, MomAddr: "127.0.0.1:1"}
	ctx := context.Background()
	if err := m.launch(ctx, "bogus:stuff", tmc); err == nil {
		t.Error("unknown script kind must error")
	}
	if err := m.launch(ctx, "sleep:notaduration", tmc); err == nil {
		t.Error("bad sleep duration must error")
	}
	if err := m.launch(ctx, "go:not-registered-anywhere", tmc); err == nil {
		t.Error("unregistered go app must error")
	}
	if err := m.launch(ctx, "exec:", tmc); err == nil {
		t.Error("empty exec must error")
	}
	if err := m.launch(ctx, "sleep:1ms", tmc); err != nil {
		t.Errorf("valid sleep: %v", err)
	}
}

func TestLaunchSleepCancellation(t *testing.T) {
	leak.Check(t)
	m := New("testnode2", 8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- m.launch(ctx, "sleep:1h", &tm.Context{})
	}()
	cancel()
	if err := <-done; err == nil {
		t.Error("cancelled sleep should return the context error")
	}
}

func TestLaunchExec(t *testing.T) {
	leak.Check(t)
	m := New("testnode3", 8)
	if err := m.launch(context.Background(), "exec:true", &tm.Context{JobID: 5, MomAddr: "x"}); err != nil {
		t.Errorf("exec true: %v", err)
	}
	if err := m.launch(context.Background(), "exec:false", &tm.Context{JobID: 5, MomAddr: "x"}); err == nil {
		t.Error("exec false should report failure")
	}
}

func TestMomAddrBeforeStart(t *testing.T) {
	leak.Check(t)
	m := New("n", 4)
	if m.Addr() != "" {
		t.Error("Addr before Start should be empty")
	}
	if m.Name() != "n" {
		t.Error("Name accessor")
	}
	if len(m.Jobs()) != 0 {
		t.Error("fresh mom has no jobs")
	}
}

func TestStartFailsWithoutServer(t *testing.T) {
	leak.Check(t)
	m := New("lonely", 4)
	// 127.0.0.1:1 is essentially guaranteed closed.
	if err := m.Start("127.0.0.1:0", "127.0.0.1:1"); err == nil {
		m.Close()
		t.Error("Start must fail when the server is unreachable")
	}
}

// TestReconnectInstallLosesToClose pins the reconnect/Close race: a
// dial that completes after Close() has run must not be installed as
// the server link — Close already closed whatever link it saw, so a
// late install would leave serverLoop parked in Recv forever. The
// loser must also close the fresh connection (the peer sees EOF).
func TestReconnectInstallLosesToClose(t *testing.T) {
	leak.Check(t)
	m := New("racer", 4)
	m.Close()

	ours, theirs := net.Pipe()
	if m.installServerConn(proto.NewConn(ours)) {
		t.Fatal("install must lose to a completed Close")
	}
	if m.server() != nil {
		t.Fatal("closed mom must not hold a server link")
	}
	// The discarded connection must be closed, not leaked: the peer's
	// read unblocks with an error.
	theirs.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := theirs.Read(make([]byte, 1)); err == nil {
		t.Fatal("discarded connection was not closed")
	}
}

// TestReconnectInstallWinsWhileOpen is the happy path of the same
// guard: before Close, the install publishes the link.
func TestReconnectInstallWinsWhileOpen(t *testing.T) {
	leak.Check(t)
	m := New("racer2", 4)
	ours, theirs := net.Pipe()
	defer theirs.Close()
	c := proto.NewConn(ours)
	if !m.installServerConn(c) {
		t.Fatal("install must win while the mom is open")
	}
	if m.server() != c {
		t.Fatal("installed link not published")
	}
	m.Close()
}
