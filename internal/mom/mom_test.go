package mom

import (
	"context"
	"testing"

	"repro/internal/proto"
	"repro/internal/tm"
)

func TestSubtractHosts(t *testing.T) {
	have := []proto.HostSlice{
		{Node: "n0", Cores: 8},
		{Node: "n1", Cores: 4},
		{Node: "n2", Cores: 2},
	}
	got := subtractHosts(have, []proto.HostSlice{
		{Node: "n0", Cores: 3},
		{Node: "n1", Cores: 4},
	})
	if len(got) != 2 {
		t.Fatalf("got %+v", got)
	}
	if got[0].Node != "n0" || got[0].Cores != 5 {
		t.Errorf("partial subtraction: %+v", got[0])
	}
	if got[1].Node != "n2" || got[1].Cores != 2 {
		t.Errorf("untouched slice: %+v", got[1])
	}
	// Removing more than held clamps to zero slices, never negative.
	got = subtractHosts(have, []proto.HostSlice{{Node: "n2", Cores: 99}})
	for _, h := range got {
		if h.Cores <= 0 {
			t.Errorf("non-positive slice survived: %+v", h)
		}
	}
	// Subtracting nothing is identity.
	got = subtractHosts(have, nil)
	if len(got) != 3 {
		t.Error("identity subtraction")
	}
}

func TestRegisterGoAppDuplicatePanics(t *testing.T) {
	RegisterGoApp("dup-app-test", func(context.Context, *tm.Context) error { return nil })
	defer func() {
		if recover() == nil {
			t.Error("duplicate registration must panic")
		}
	}()
	RegisterGoApp("dup-app-test", func(context.Context, *tm.Context) error { return nil })
}

func TestLaunchScriptErrors(t *testing.T) {
	m := New("testnode", 8)
	tmc := &tm.Context{JobID: 1, MomAddr: "127.0.0.1:1"}
	ctx := context.Background()
	if err := m.launch(ctx, "bogus:stuff", tmc); err == nil {
		t.Error("unknown script kind must error")
	}
	if err := m.launch(ctx, "sleep:notaduration", tmc); err == nil {
		t.Error("bad sleep duration must error")
	}
	if err := m.launch(ctx, "go:not-registered-anywhere", tmc); err == nil {
		t.Error("unregistered go app must error")
	}
	if err := m.launch(ctx, "exec:", tmc); err == nil {
		t.Error("empty exec must error")
	}
	if err := m.launch(ctx, "sleep:1ms", tmc); err != nil {
		t.Errorf("valid sleep: %v", err)
	}
}

func TestLaunchSleepCancellation(t *testing.T) {
	m := New("testnode2", 8)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- m.launch(ctx, "sleep:1h", &tm.Context{})
	}()
	cancel()
	if err := <-done; err == nil {
		t.Error("cancelled sleep should return the context error")
	}
}

func TestLaunchExec(t *testing.T) {
	m := New("testnode3", 8)
	if err := m.launch(context.Background(), "exec:true", &tm.Context{JobID: 5, MomAddr: "x"}); err != nil {
		t.Errorf("exec true: %v", err)
	}
	if err := m.launch(context.Background(), "exec:false", &tm.Context{JobID: 5, MomAddr: "x"}); err == nil {
		t.Error("exec false should report failure")
	}
}

func TestMomAddrBeforeStart(t *testing.T) {
	m := New("n", 4)
	if m.Addr() != "" {
		t.Error("Addr before Start should be empty")
	}
	if m.Name() != "n" {
		t.Error("Name accessor")
	}
	if len(m.Jobs()) != 0 {
		t.Error("fresh mom has no jobs")
	}
}

func TestStartFailsWithoutServer(t *testing.T) {
	m := New("lonely", 4)
	// 127.0.0.1:1 is essentially guaranteed closed.
	if err := m.Start("127.0.0.1:0", "127.0.0.1:1"); err == nil {
		m.Close()
		t.Error("Start must fail when the server is unreachable")
	}
}
