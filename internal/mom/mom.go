// Package mom implements the compute-node daemon (the pbs_mom analog).
// Every mom listens on its own TCP address for the TM interface
// (applications) and for mom↔mom coordination (join, dyn_join,
// dyn_disjoin), and keeps one persistent connection to the server.
//
// When the server starts a job, it sends RunJob to the first allocated
// host — the job's mother superior. The mother superior joins the
// sibling moms, launches the application, forwards its tm_dynget /
// tm_dynfree calls to the server (Fig. 3 / Fig. 4 of the paper), and
// reports completion.
package mom

import (
	"context"
	"fmt"
	"net"
	"os"
	"os/exec"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/backoff"
	"repro/internal/proto"
	"repro/internal/tm"
)

// GoApp is an in-process application launched by a "go:" job script.
// ctx is cancelled when the job is killed; tmc is the job's TM handle.
type GoApp func(ctx context.Context, tmc *tm.Context) error

var (
	appMu    sync.RWMutex
	appFuncs = map[string]GoApp{}
)

// RegisterGoApp makes an in-process application available to "go:"
// job scripts in this process. Registering the same name twice panics:
// it is always a programming error.
func RegisterGoApp(name string, fn GoApp) {
	appMu.Lock()
	defer appMu.Unlock()
	if _, dup := appFuncs[name]; dup {
		panic(fmt.Sprintf("mom: duplicate go app %q", name))
	}
	appFuncs[name] = fn
}

func lookupGoApp(name string) (GoApp, bool) {
	appMu.RLock()
	defer appMu.RUnlock()
	fn, ok := appFuncs[name]
	return fn, ok
}

// momJob is the node-local state of one job. Records live in the
// m.mu-guarded jobs map and share that lock: the TM handler
// goroutines, the server read loop, and Close all mutate them.
type momJob struct {
	id     int
	spec   proto.JobSpec
	hosts  []proto.HostSlice // guarded by m.mu
	isMS   bool
	cancel context.CancelFunc
	// pendingTM is the parked application connection awaiting a
	// tm_dynget verdict from the server.
	pendingTM *proto.Conn // guarded by m.mu
}

// outMsg is one undelivered server message parked for replay: a job
// completion must reach the server even when it is reported during a
// link outage, or the job stays "running" forever on the headnode.
type outMsg struct {
	t       proto.MsgType
	jobID   int
	payload any
}

// Mom is one compute-node daemon.
type Mom struct {
	name  string
	cores int

	// HeartbeatInterval enables the periodic liveness beacon on the
	// server link. Pair it with the server's HeartbeatInterval so an
	// otherwise idle node is not declared down. Zero disables beacons.
	HeartbeatInterval time.Duration
	// AutoReconnect makes the mom re-dial and re-register (with
	// capped exponential backoff and deterministic jitter) when the
	// server link drops, instead of going silent until restarted.
	AutoReconnect bool
	// ReconnectBase and ReconnectMax bound the reconnect backoff
	// (defaults 100ms and 5s).
	ReconnectBase time.Duration
	ReconnectMax  time.Duration
	// HandshakeTimeout bounds how long an inbound TM/join connection
	// may take to deliver its first message. Zero disables it.
	HandshakeTimeout time.Duration
	// Proto selects the wire codec (see proto.Mode): auto (the zero
	// value) negotiates binary v2 with new peers and falls back to v1
	// JSON against old ones, on both the server link and inbound
	// TM/mom connections.
	Proto proto.Mode

	ln      net.Listener
	srvAddr string

	mu     sync.Mutex
	srv    *proto.Conn     // guarded by mu: current server link
	jobs   map[int]*momJob // guarded by mu
	outbox []outMsg        // guarded by mu: undelivered completions awaiting replay

	wg     sync.WaitGroup
	closed chan struct{} //schedlint:chan-owner Close

	// Verbose enables lightweight logging to stderr.
	Verbose bool
}

// New creates a mom for a node with the given name and core count.
func New(name string, cores int) *Mom {
	return &Mom{name: name, cores: cores, jobs: make(map[int]*momJob), closed: make(chan struct{})}
}

// Name returns the node name.
func (m *Mom) Name() string { return m.name }

// Addr returns the mom's listen address (valid after Start).
func (m *Mom) Addr() string {
	if m.ln == nil {
		return ""
	}
	return m.ln.Addr().String()
}

// Start listens on listenAddr (use "127.0.0.1:0" for an ephemeral
// port), registers with the server at srvAddr, and begins serving.
func (m *Mom) Start(listenAddr, srvAddr string) error {
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return fmt.Errorf("mom %s: listen: %w", m.name, err)
	}
	m.ln = ln
	m.srvAddr = srvAddr
	srv, err := m.dialRegister()
	if err != nil {
		ln.Close()
		return fmt.Errorf("mom %s: %w", m.name, err)
	}
	m.mu.Lock()
	m.srv = srv
	m.mu.Unlock()
	m.wg.Add(2)
	go m.serveLoop()
	go m.serverLoop(srv)
	if m.HeartbeatInterval > 0 {
		m.wg.Add(1)
		go m.heartbeatLoop()
	}
	return nil
}

// dialRegister opens a fresh server link and re-registers, reporting
// the jobs this mom still knows about so the server can reconcile.
func (m *Mom) dialRegister() (*proto.Conn, error) {
	srv, err := proto.DialModeTimeout(m.srvAddr, m.Proto, m.HandshakeTimeout)
	if err != nil {
		return nil, fmt.Errorf("dial server: %w", err)
	}
	req := proto.RegisterReq{
		Node: m.name, Addr: m.ln.Addr().String(), Cores: m.cores,
		Jobs: m.knownJobs(),
	}
	if err := srv.Send(proto.TRegister, req); err != nil {
		_ = srv.Close()
		return nil, fmt.Errorf("register: %w", err)
	}
	return srv, nil
}

// knownJobs lists jobs this mom still hosts plus jobs whose completion
// report is parked on the outbox (finished but not yet acknowledged by
// a delivery), sorted for a deterministic wire image.
func (m *Mom) knownJobs() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	seen := make(map[int]bool, len(m.jobs)+len(m.outbox))
	for id := range m.jobs {
		seen[id] = true
	}
	for _, om := range m.outbox {
		seen[om.jobID] = true
	}
	ids := make([]int, 0, len(seen))
	for id := range seen {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// server returns the current server link (nil during an outage).
func (m *Mom) server() *proto.Conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.srv
}

func (m *Mom) isClosed() bool {
	select {
	case <-m.closed:
		return true
	default:
		return false
	}
}

// Close stops the daemon and kills local jobs.
func (m *Mom) Close() {
	select {
	case <-m.closed:
		return
	default:
		close(m.closed)
	}
	if m.ln != nil {
		m.ln.Close()
	}
	if srv := m.server(); srv != nil {
		_ = srv.Close()
	}
	m.mu.Lock()
	ids := make([]int, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	var parked []*proto.Conn
	for _, id := range ids {
		j := m.jobs[id]
		if j.cancel != nil {
			j.cancel()
		}
		// A parked tm_dynget will never get its verdict now: fail it so
		// the application is not left blocked on a dead daemon.
		if j.pendingTM != nil {
			parked = append(parked, j.pendingTM)
			j.pendingTM = nil
		}
	}
	m.mu.Unlock()
	for _, c := range parked {
		m.reply(c, proto.TTMResp, proto.TMResp{OK: false, Reason: "mom shutting down"})
	}
	m.wg.Wait()
}

func (m *Mom) logf(format string, args ...any) {
	if m.Verbose {
		fmt.Fprintf(os.Stderr, "mom[%s] "+format+"\n", append([]any{m.name}, args...)...)
	}
}

// reply delivers a best-effort response on a transient per-request
// connection and closes it. The peer vanishing mid-reply is routine
// for a daemon, so failures are logged rather than propagated.
func (m *Mom) reply(c *proto.Conn, t proto.MsgType, payload any) {
	if err := c.Send(t, payload); err != nil {
		m.logf("reply %s: %v", t, err)
	}
	if err := c.Close(); err != nil {
		m.logf("close after %s: %v", t, err)
	}
}

// tellServer sends one best-effort message on the persistent server
// link. A send failure is logged; the serverLoop Recv error is what
// actually tears the link down, so no state is unwound here.
func (m *Mom) tellServer(t proto.MsgType, payload any) {
	srv := m.server()
	if srv == nil {
		m.logf("server send %s: link down", t)
		return
	}
	if err := srv.Send(t, payload); err != nil {
		m.logf("server send %s: %v", t, err)
	}
}

// tellServerBuffered sends a must-deliver message (a job completion):
// if the link is down or the send fails, the message is parked on the
// outbox and replayed after the next successful re-registration.
func (m *Mom) tellServerBuffered(t proto.MsgType, jobID int, payload any) {
	if srv := m.server(); srv != nil {
		if err := srv.Send(t, payload); err == nil {
			return
		} else {
			m.logf("server send %s job=%d: %v (buffering)", t, jobID, err)
		}
	}
	m.mu.Lock()
	m.outbox = append(m.outbox, outMsg{t: t, jobID: jobID, payload: payload})
	m.mu.Unlock()
}

// flushOutbox replays parked completions after a reconnect. A message
// that fails again goes back on the front of the outbox in order.
func (m *Mom) flushOutbox(c *proto.Conn) {
	m.mu.Lock()
	pending := m.outbox
	m.outbox = nil
	m.mu.Unlock()
	for i, om := range pending {
		if err := c.Send(om.t, om.payload); err != nil {
			m.logf("outbox replay %s job=%d: %v", om.t, om.jobID, err)
			m.mu.Lock()
			m.outbox = append(pending[i:], m.outbox...)
			m.mu.Unlock()
			return
		}
		m.logf("outbox replayed %s job=%d", om.t, om.jobID)
	}
}

// serveLoop accepts TM and mom↔mom connections.
func (m *Mom) serveLoop() {
	defer m.wg.Done()
	for {
		c, err := m.ln.Accept()
		if err != nil {
			return
		}
		m.wg.Add(1)
		go func() {
			defer m.wg.Done()
			m.handleConn(proto.NewConn(c))
		}()
	}
}

// handleConn serves one inbound connection (an application's TM call
// or a sibling mom's join).
func (m *Mom) handleConn(c *proto.Conn) {
	c.SetReadTimeout(m.HandshakeTimeout)
	if err := c.AcceptHandshake(m.Proto); err != nil {
		_ = c.Close()
		return
	}
	env, err := c.Recv()
	if err != nil {
		_ = c.Close()
		return
	}
	c.SetReadTimeout(0)
	//schedlint:dispatch mom.conn
	switch env.Type {
	case proto.TTMDynGet:
		var req proto.TMDynGetReq
		if err := env.Decode(&req); err != nil {
			m.tmFail(c, err.Error())
			return
		}
		m.handleTMDynGet(c, req)
		// Connection is parked until the server answers; do not close.
	case proto.TTMDynFree:
		var req proto.TMDynFreeReq
		if err := env.Decode(&req); err != nil {
			m.tmFail(c, err.Error())
			return
		}
		m.handleTMDynFree(c, req)
	case proto.TTMDone:
		var req proto.TMDoneReq
		if err := env.Decode(&req); err != nil {
			m.tmFail(c, err.Error())
			return
		}
		m.tellServerBuffered(proto.TJobDone, req.JobID, proto.JobDoneReq{JobID: req.JobID, Error: req.Error})
		m.reply(c, proto.TTMResp, proto.TMResp{OK: true})
	case proto.TJoin, proto.TDynJoin:
		var req proto.JoinReq
		if err := env.Decode(&req); err == nil {
			m.handleJoin(req, env.Type == proto.TDynJoin)
			m.reply(c, proto.TOK, nil)
		} else {
			m.reply(c, proto.TError, proto.ErrorResp{Error: err.Error()})
		}
	case proto.TDynDisjoin:
		var req proto.JoinReq
		if err := env.Decode(&req); err == nil {
			m.handleDisjoin(req)
			m.reply(c, proto.TOK, nil)
		} else {
			m.reply(c, proto.TError, proto.ErrorResp{Error: err.Error()})
		}
	default:
		m.reply(c, proto.TError, proto.ErrorResp{Error: fmt.Sprintf("unexpected %s", env.Type)})
	}
}

func (m *Mom) tmFail(c *proto.Conn, reason string) {
	m.reply(c, proto.TTMResp, proto.TMResp{OK: false, Reason: reason})
}

// handleTMDynGet forwards the request to the server through this mom
// (which must be the job's mother superior) and parks the application
// connection until the verdict arrives.
func (m *Mom) handleTMDynGet(c *proto.Conn, req proto.TMDynGetReq) {
	m.mu.Lock()
	j, ok := m.jobs[req.JobID]
	switch {
	case !ok:
		m.mu.Unlock()
		m.tmFail(c, fmt.Sprintf("job %d unknown on %s", req.JobID, m.name))
		return
	case !j.isMS:
		m.mu.Unlock()
		m.tmFail(c, "tm_dynget must go through the mother superior")
		return
	case j.pendingTM != nil:
		m.mu.Unlock()
		m.tmFail(c, "a dynamic request is already pending for this job")
		return
	}
	j.pendingTM = c
	m.mu.Unlock()
	m.logf("forwarding tm_dynget job=%d cores=%d nodes=%dx%d", req.JobID, req.Cores, req.Nodes, req.PPN)
	var err error
	if srv := m.server(); srv != nil {
		err = srv.Send(proto.TDynGet, proto.DynGetReq{
			JobID: req.JobID, Cores: req.Cores, Nodes: req.Nodes, PPN: req.PPN,
			TimeoutSecs: req.TimeoutSecs,
		})
	} else {
		err = fmt.Errorf("link down")
	}
	if err != nil {
		m.mu.Lock()
		j.pendingTM = nil
		m.mu.Unlock()
		m.tmFail(c, "server unreachable: "+err.Error())
	}
}

// handleTMDynFree performs dyn_disjoin with the released moms, informs
// the server and answers the application (Fig. 4).
func (m *Mom) handleTMDynFree(c *proto.Conn, req proto.TMDynFreeReq) {
	m.mu.Lock()
	j, ok := m.jobs[req.JobID]
	if !ok || !j.isMS {
		m.mu.Unlock()
		m.tmFail(c, "job unknown or not mother superior")
		return
	}
	// Remove the slices from the local host view.
	j.hosts = subtractHosts(j.hosts, req.Hosts)
	m.mu.Unlock()
	for _, h := range req.Hosts {
		if h.Addr == m.Addr() {
			continue
		}
		m.notifyMom(h.Addr, proto.TDynDisjoin, proto.JoinReq{JobID: req.JobID, Hosts: req.Hosts})
	}
	srv := m.server()
	if srv == nil {
		m.tmFail(c, "server unreachable: link down")
		return
	}
	if err := srv.Send(proto.TDynFree, proto.DynFreeReq{JobID: req.JobID, Hosts: req.Hosts}); err != nil {
		m.tmFail(c, "server unreachable: "+err.Error())
		return
	}
	// tm_dynfree "usually returns true" (§III-B).
	m.reply(c, proto.TTMResp, proto.TMResp{OK: true})
}

// handleJoin records a job this node now participates in.
func (m *Mom) handleJoin(req proto.JoinReq, dynamic bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[req.JobID]
	if !ok {
		j = &momJob{id: req.JobID}
		m.jobs[req.JobID] = j
	}
	if dynamic {
		j.hosts = append(j.hosts, req.Hosts...)
	} else {
		j.hosts = req.Hosts
	}
	m.logf("join job=%d dynamic=%v hosts=%d", req.JobID, dynamic, len(j.hosts))
}

// handleDisjoin removes released slices (and the whole job when this
// node no longer holds any).
func (m *Mom) handleDisjoin(req proto.JoinReq) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[req.JobID]
	if !ok {
		return
	}
	j.hosts = subtractHosts(j.hosts, req.Hosts)
	stillHere := false
	for _, h := range j.hosts {
		if h.Node == m.name {
			stillHere = true
			break
		}
	}
	if !stillHere && !j.isMS {
		delete(m.jobs, req.JobID)
	}
}

func subtractHosts(have, remove []proto.HostSlice) []proto.HostSlice {
	out := have[:0:0]
	removed := make(map[string]int)
	for _, r := range remove {
		removed[r.Node] += r.Cores
	}
	for _, h := range have {
		if take := removed[h.Node]; take > 0 {
			if take >= h.Cores {
				removed[h.Node] -= h.Cores
				continue
			}
			h.Cores -= take
			removed[h.Node] = 0
		}
		out = append(out, h)
	}
	return out
}

// notifyMom performs one fire-and-confirm exchange with a sibling mom.
func (m *Mom) notifyMom(addr string, t proto.MsgType, payload any) {
	c, err := proto.DialMode(addr, m.Proto)
	if err != nil {
		m.logf("notify %s %s: %v", addr, t, err)
		return
	}
	defer c.Close()
	if _, err := c.Request(t, payload); err != nil {
		m.logf("notify %s %s: %v", addr, t, err)
	}
}

// serverLoop handles messages from the server, re-dialing on link loss
// when AutoReconnect is set.
func (m *Mom) serverLoop(conn *proto.Conn) {
	defer m.wg.Done()
	for {
		m.recvLoop(conn)
		if m.isClosed() || !m.AutoReconnect {
			return
		}
		var ok bool
		conn, ok = m.reconnect()
		if !ok {
			return
		}
	}
}

// recvLoop drains one server link until it errors out.
func (m *Mom) recvLoop(c *proto.Conn) {
	for {
		env, err := c.Recv()
		if err != nil {
			m.mu.Lock()
			if m.srv == c {
				m.srv = nil
			}
			m.mu.Unlock()
			_ = c.Close()
			return
		}
		//schedlint:dispatch mom.server
		switch env.Type {
		case proto.TRunJob:
			var req proto.RunJobReq
			if err := env.Decode(&req); err == nil {
				m.runJob(req)
			}
		case proto.TKillJob:
			var req proto.KillJobReq
			if err := env.Decode(&req); err == nil {
				m.killJob(req.JobID)
			}
		case proto.TDynGetResp:
			var resp proto.DynGetResp
			if err := env.Decode(&resp); err == nil {
				m.handleDynGetResp(resp)
			}
		}
	}
}

// reconnect re-dials the server with capped exponential backoff and
// deterministic per-node jitter until it succeeds or the mom closes.
func (m *Mom) reconnect() (*proto.Conn, bool) {
	pol := backoff.Policy{Base: m.ReconnectBase, Max: m.ReconnectMax}
	rng := backoff.NewRand(m.name)
	for attempt := 0; ; attempt++ {
		select {
		case <-m.closed:
			return nil, false
		case <-time.After(pol.Delay(attempt, rng)): //lint:wallclock reconnect backoff paces real network retries
		}
		srv, err := m.dialRegister()
		if err != nil {
			m.logf("reconnect attempt %d: %v", attempt+1, err)
			continue
		}
		if !m.installServerConn(srv) {
			return nil, false
		}
		m.logf("reconnected to server after %d attempt(s)", attempt+1)
		m.flushOutbox(srv)
		return srv, true
	}
}

// installServerConn publishes a freshly dialed server link, unless the
// mom closed while the dial was in flight. Close() already closed
// whatever link it saw, so it can never see this one: installing it
// would park serverLoop in Recv on a connection nobody closes and hang
// Close's wg.Wait. Close() publishes m.closed before reading m.srv
// under mu, so checking under the same mutex makes the install atomic
// against it; the losing side discards the connection.
func (m *Mom) installServerConn(srv *proto.Conn) bool {
	m.mu.Lock()
	if m.isClosed() {
		m.mu.Unlock()
		_ = srv.Close()
		return false
	}
	m.srv = srv
	m.mu.Unlock()
	return true
}

// heartbeatLoop sends a periodic liveness beacon so the server can
// tell a slow node from a dead one.
func (m *Mom) heartbeatLoop() {
	defer m.wg.Done()
	//lint:wallclock heartbeats are a real-time liveness protocol
	t := time.NewTicker(m.HeartbeatInterval)
	defer t.Stop()
	// One request reused across beats: with the v2 codec the whole
	// send path is then allocation-free.
	req := &proto.HeartbeatReq{Node: m.name}
	for {
		select {
		case <-m.closed:
			return
		case <-t.C:
		}
		req.Seq++
		req.SentMS = time.Now().UnixMilli() //lint:wallclock heartbeat latency instrumentation carries the sender wall clock
		m.tellServer(proto.THeartbeat, req)
	}
}

// runJob makes this mom the job's mother superior: join the siblings,
// then launch the application.
func (m *Mom) runJob(req proto.RunJobReq) {
	m.logf("run job=%d script=%q hosts=%d", req.JobID, req.Spec.Script, len(req.Hosts))
	ctx, cancel := context.WithCancel(context.Background())
	j := &momJob{id: req.JobID, spec: req.Spec, hosts: req.Hosts, isMS: true, cancel: cancel}
	m.mu.Lock()
	m.jobs[req.JobID] = j
	m.mu.Unlock()

	// Initial join with the sibling moms (Fig. 2: the mother superior
	// and the allocated nodes perform a join operation).
	for _, h := range req.Hosts {
		if h.Addr == m.Addr() {
			continue
		}
		m.notifyMom(h.Addr, proto.TJoin, proto.JoinReq{JobID: req.JobID, Hosts: req.Hosts})
	}

	tmc := &tm.Context{JobID: req.JobID, MomAddr: m.Addr(), Proto: m.Proto}
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		err := m.launch(ctx, req.Spec.Script, tmc)
		// The application controller finished (or was killed): report
		// completion unless the kill already did.
		m.mu.Lock()
		_, still := m.jobs[req.JobID]
		delete(m.jobs, req.JobID)
		m.mu.Unlock()
		if still && ctx.Err() == nil {
			done := proto.JobDoneReq{JobID: req.JobID}
			if err != nil {
				done.Error = err.Error()
			}
			m.tellServerBuffered(proto.TJobDone, req.JobID, done)
		}
	}()
}

// launch interprets the job script.
func (m *Mom) launch(ctx context.Context, script string, tmc *tm.Context) error {
	kind, arg, _ := strings.Cut(script, ":")
	switch kind {
	case "sleep":
		d, err := time.ParseDuration(arg)
		if err != nil {
			return fmt.Errorf("mom: bad sleep script %q: %v", script, err)
		}
		select {
		case <-time.After(d): //lint:wallclock sleep-script jobs model application runtime with a real delay
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	case "go":
		fn, ok := lookupGoApp(arg)
		if !ok {
			return fmt.Errorf("mom: unknown go app %q", arg)
		}
		return fn(ctx, tmc)
	case "exec":
		fields := strings.Fields(arg)
		if len(fields) == 0 {
			return fmt.Errorf("mom: empty exec script")
		}
		cmd := exec.CommandContext(ctx, fields[0], fields[1:]...)
		cmd.Env = append(os.Environ(),
			fmt.Sprintf("%s=%d", tm.EnvJobID, tmc.JobID),
			fmt.Sprintf("%s=%s", tm.EnvMomAddr, tmc.MomAddr),
			fmt.Sprintf("%s=%s", tm.EnvProto, tmc.Proto),
		)
		cmd.Stdout = os.Stdout
		cmd.Stderr = os.Stderr
		return cmd.Run()
	default:
		return fmt.Errorf("mom: unknown script kind %q", kind)
	}
}

// killJob terminates a local job (walltime enforcement or qdel).
func (m *Mom) killJob(id int) {
	m.mu.Lock()
	j, ok := m.jobs[id]
	if ok {
		delete(m.jobs, id)
	}
	m.mu.Unlock()
	if !ok {
		return
	}
	m.logf("kill job=%d", id)
	if j.cancel != nil {
		j.cancel()
	}
	if j.pendingTM != nil {
		m.reply(j.pendingTM, proto.TTMResp, proto.TMResp{OK: false, Reason: "job killed"})
	}
}

// handleDynGetResp resolves a parked tm_dynget: on a grant, dyn_join
// the new hosts first (Fig. 3 step 6), then hand the hostlist to the
// application (step 7).
func (m *Mom) handleDynGetResp(resp proto.DynGetResp) {
	m.mu.Lock()
	j, ok := m.jobs[resp.JobID]
	var parked *proto.Conn
	if ok {
		parked = j.pendingTM
		j.pendingTM = nil
		if resp.Granted {
			j.hosts = append(j.hosts, resp.Hosts...)
		}
	}
	m.mu.Unlock()
	if resp.Granted {
		for _, h := range resp.Hosts {
			if h.Addr == m.Addr() {
				continue
			}
			m.notifyMom(h.Addr, proto.TDynJoin, proto.JoinReq{JobID: resp.JobID, Dynamic: true, Hosts: resp.Hosts})
		}
	}
	if parked == nil {
		return
	}
	m.reply(parked, proto.TTMResp, proto.TMResp{OK: resp.Granted, Reason: resp.Reason, Hosts: resp.Hosts})
}

// Jobs returns the ids of jobs this mom currently participates in.
func (m *Mom) Jobs() []int {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]int, 0, len(m.jobs))
	for id := range m.jobs {
		out = append(out, id)
	}
	sort.Ints(out)
	return out
}
