// Package arena provides a generic value-slot arena with an int32
// freelist — the storage discipline behind the sim engine's event queue
// (PR "slot arena" pattern) generalized for other hot paths. Values
// live in one contiguous slice and are addressed by small integer
// handles, so data structures built on top (linked segment lists,
// heaps) stay pointer-free: clones are a single memcpy and the garbage
// collector never traverses them.
package arena

// Slots is a growable arena of T values addressed by int32 handles.
// Freed handles are recycled LIFO, so steady-state Alloc/Free performs
// no allocation once the arena has reached its high-water mark. The
// zero value is ready to use. Not safe for concurrent use.
type Slots[T any] struct {
	slots []T
	free  []int32
}

// Alloc returns a handle to a slot. The slot's contents are undefined
// (it may hold data from a previous tenant); callers overwrite it.
//
//schedlint:arena-alloc
func (a *Slots[T]) Alloc() int32 {
	if n := len(a.free); n > 0 {
		idx := a.free[n-1]
		a.free = a.free[:n-1]
		return idx
	}
	var zero T
	a.slots = append(a.slots, zero)
	return int32(len(a.slots) - 1)
}

// At returns a pointer to the slot. The pointer is invalidated by the
// next Alloc (the backing slice may grow); do not hold it across one.
//
//schedlint:arena-ref
func (a *Slots[T]) At(i int32) *T { return &a.slots[i] }

// Free returns the slot to the freelist. The value is not cleared;
// arenas holding pointers should zero the slot first if GC retention
// matters (segment arenas hold only scalars, so they do not).
//
//schedlint:arena-free
func (a *Slots[T]) Free(i int32) { a.free = append(a.free, i) }

// Reset discards all live slots but keeps the backing storage, so the
// next build cycle allocates nothing. Every outstanding handle and
// pointer into the arena is invalid afterwards.
//
//schedlint:arena-invalidate
func (a *Slots[T]) Reset() {
	a.slots = a.slots[:0]
	a.free = a.free[:0]
}

// Cap returns the arena's high-water slot count (live + freed).
func (a *Slots[T]) Cap() int { return len(a.slots) }

// CopyFrom makes a structurally identical copy of src (same handles
// map to the same values, same freelist), reusing a's storage. The
// one-memcpy clone is what makes arena-backed structures cheap to
// what-if against. Handles into src stay valid (and address the same
// values in a); prior handles and pointers into a do not.
//
//schedlint:arena-invalidate
func (a *Slots[T]) CopyFrom(src *Slots[T]) {
	if cap(a.slots) < len(src.slots) {
		a.slots = make([]T, len(src.slots))
	} else {
		a.slots = a.slots[:len(src.slots)]
	}
	copy(a.slots, src.slots)
	if cap(a.free) < len(src.free) {
		a.free = make([]int32, len(src.free))
	} else {
		a.free = a.free[:len(src.free)]
	}
	copy(a.free, src.free)
}
