// Package profile implements the time-stepped resource availability
// profile that reservation-based schedulers plan against. The profile
// answers "how many cores are free at time t" given the walltime-based
// release times of running jobs and the holds of reservations already
// planned, and finds the earliest slot where a job fits — the primitive
// behind Maui-style reservations, backfill, and the paper's
// delay-to-static-jobs measurement (Algorithm 2, line 12-14).
package profile

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Step is one segment boundary: Free cores are available from T until
// the next step's T (the last step extends forever).
type Step struct {
	T    sim.Time
	Free int
}

// Profile is a piecewise-constant map from time to free cores.
// The zero value is not usable; call New.
type Profile struct {
	steps []Step
	// mutations counts capacity edits since the last Compact, so
	// repeated Compact calls on an unchanged profile are O(1).
	mutations int
}

// New creates a profile with freeNow cores available from time now on.
func New(now sim.Time, freeNow int) *Profile {
	return &Profile{steps: []Step{{T: now, Free: freeNow}}}
}

// Clone returns an independent copy; what-if planning (such as the
// dynamic-fairness delay computation) mutates the copy only.
func (p *Profile) Clone() *Profile {
	c := &Profile{steps: make([]Step, len(p.steps)), mutations: p.mutations}
	copy(c.steps, p.steps)
	return c
}

// CloneInto copies p into dst, reusing dst's step storage when it is
// large enough. Hot paths that clone a base profile once per request
// (the dynamic what-if overlay) keep a scratch Profile and pay zero
// allocations after warm-up. A nil dst behaves like Clone.
func (p *Profile) CloneInto(dst *Profile) *Profile {
	if dst == nil {
		return p.Clone()
	}
	if cap(dst.steps) < len(p.steps) {
		dst.steps = make([]Step, len(p.steps))
	} else {
		dst.steps = dst.steps[:len(p.steps)]
	}
	copy(dst.steps, p.steps)
	dst.mutations = p.mutations
	return dst
}

// Steps returns a copy of the underlying steps, for inspection.
func (p *Profile) Steps() []Step {
	out := make([]Step, len(p.steps))
	copy(out, p.steps)
	return out
}

// Start returns the first instant the profile covers.
func (p *Profile) Start() sim.Time { return p.steps[0].T }

// FreeAt returns the free cores at time t. Times before the profile
// start report the initial value.
func (p *Profile) FreeAt(t sim.Time) int {
	// Binary search for the last step with T <= t.
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].T > t })
	if i == 0 {
		return p.steps[0].Free
	}
	return p.steps[i-1].Free
}

// ensureBoundary inserts a step boundary at t (splitting the segment
// containing it) and returns its index.
func (p *Profile) ensureBoundary(t sim.Time) int {
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].T >= t })
	if i < len(p.steps) && p.steps[i].T == t {
		return i
	}
	var free int
	if i == 0 {
		free = p.steps[0].Free
	} else {
		free = p.steps[i-1].Free
	}
	p.steps = append(p.steps, Step{})
	copy(p.steps[i+1:], p.steps[i:])
	p.steps[i] = Step{T: t, Free: free}
	return i
}

// AddRelease increases capacity by cores from time t onward — a running
// job's walltime expiry returns its cores to the pool.
func (p *Profile) AddRelease(t sim.Time, cores int) {
	if cores == 0 {
		return
	}
	p.mutations++
	i := p.ensureBoundary(t)
	for ; i < len(p.steps); i++ {
		p.steps[i].Free += cores
	}
}

// AddHold decreases capacity by cores during [start, end) — a planned
// reservation or a hypothetical dynamic grant. end may be sim.Forever.
func (p *Profile) AddHold(start, end sim.Time, cores int) {
	if cores == 0 || end <= start {
		return
	}
	p.mutations++
	i := p.ensureBoundary(start)
	j := len(p.steps)
	if end < sim.Forever {
		j = p.ensureBoundary(end)
		// ensureBoundary(end) may have shifted index i if end < start
		// is impossible (checked above), so i stays valid.
	}
	for k := i; k < j; k++ {
		p.steps[k].Free -= cores
	}
}

// MinFree returns the minimum free capacity over [start, end).
func (p *Profile) MinFree(start, end sim.Time) int {
	if end <= start {
		return p.FreeAt(start)
	}
	min := p.FreeAt(start)
	i := sort.Search(len(p.steps), func(i int) bool { return p.steps[i].T > start })
	for ; i < len(p.steps) && p.steps[i].T < end; i++ {
		if p.steps[i].Free < min {
			min = p.steps[i].Free
		}
	}
	return min
}

// FindSlot returns the earliest time ≥ earliest at which cores cores
// are continuously free for dur. It returns sim.Forever when no slot
// exists (the profile's eventual capacity never reaches cores).
//
// The search is a single forward sweep: it tracks the start of the
// current feasible run (the earliest instant from which capacity has
// stayed ≥ cores) and returns it as soon as the run reaches dur. A
// start strictly inside a feasible run can never beat the run's own
// start — its window ends later and so contains every dip the run
// start's window contains — so only run starts need to be considered,
// and each step is visited once: O(n) for any query.
func (p *Profile) FindSlot(cores int, dur sim.Duration, earliest sim.Time) sim.Time {
	if cores <= 0 {
		return earliest
	}
	if earliest < p.Start() {
		earliest = p.Start()
	}
	// i is the segment containing earliest.
	i := sort.Search(len(p.steps), func(k int) bool { return p.steps[k].T > earliest }) - 1
	var start sim.Time
	ok := false
	if p.steps[i].Free >= cores {
		start, ok = earliest, true
	}
	for j := i + 1; j < len(p.steps); j++ {
		if ok && satAdd(start, dur) <= p.steps[j].T {
			return start
		}
		if p.steps[j].Free >= cores {
			if !ok {
				start, ok = p.steps[j].T, true
			}
		} else {
			ok = false
		}
	}
	if ok {
		// The run extends through the final segment, i.e. forever.
		return start
	}
	return sim.Forever
}

// satAdd adds a duration to a time, saturating at Forever.
func satAdd(t sim.Time, d sim.Duration) sim.Time {
	if d >= sim.Forever-t {
		return sim.Forever
	}
	return t + d
}

// String renders the profile for debugging: "[00:00:00→8 00:10:00→4]".
func (p *Profile) String() string {
	var b strings.Builder
	b.WriteByte('[')
	for i, s := range p.steps {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s→%d", sim.FormatTime(s.T), s.Free)
	}
	b.WriteByte(']')
	return b.String()
}

// Compact merges adjacent steps with identical capacity; planning
// inserts many boundaries and long simulations benefit from trimming.
// The scan is amortized: a Compact on a profile that has not been
// mutated since the previous Compact returns immediately.
func (p *Profile) Compact() {
	if p.mutations == 0 {
		return
	}
	p.mutations = 0
	out := p.steps[:1]
	for _, s := range p.steps[1:] {
		if s.Free != out[len(out)-1].Free {
			out = append(out, s)
		}
	}
	p.steps = out
}

// CheckInvariants verifies that steps are strictly increasing in time.
// Negative capacity is legal transiently in what-if planning (a hold
// can exceed capacity when testing infeasible placements) and is
// reported by MinFree, so it is not checked here.
func (p *Profile) CheckInvariants() error {
	if len(p.steps) == 0 {
		return fmt.Errorf("profile: no steps")
	}
	for i := 1; i < len(p.steps); i++ {
		if p.steps[i].T <= p.steps[i-1].T {
			return fmt.Errorf("profile: non-increasing step times at %d", i)
		}
	}
	return nil
}
