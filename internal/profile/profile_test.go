package profile

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestFreeAtAndReleases(t *testing.T) {
	p := New(0, 4)
	p.AddRelease(10*sim.Second, 8)  // a job ends at t=10s
	p.AddRelease(20*sim.Second, 16) // another at t=20s
	cases := []struct {
		t    sim.Time
		want int
	}{
		{0, 4},
		{5 * sim.Second, 4},
		{10 * sim.Second, 12},
		{15 * sim.Second, 12},
		{20 * sim.Second, 28},
		{sim.Hour, 28},
		{-5, 4}, // before start: initial value
	}
	for _, c := range cases {
		if got := p.FreeAt(c.t); got != c.want {
			t.Errorf("FreeAt(%v) = %d, want %d", c.t, got, c.want)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAddHold(t *testing.T) {
	p := New(0, 10)
	p.AddHold(5*sim.Second, 15*sim.Second, 6)
	if got := p.FreeAt(0); got != 10 {
		t.Errorf("before hold: %d", got)
	}
	if got := p.FreeAt(5 * sim.Second); got != 4 {
		t.Errorf("in hold: %d", got)
	}
	if got := p.FreeAt(15 * sim.Second); got != 10 {
		t.Errorf("after hold: %d", got)
	}
	// Hold with Forever end.
	p.AddHold(20*sim.Second, sim.Forever, 3)
	if got := p.FreeAt(sim.Hour); got != 7 {
		t.Errorf("forever hold: %d", got)
	}
	// Degenerate holds are no-ops.
	q := New(0, 10)
	q.AddHold(5, 5, 4)
	q.AddHold(9, 3, 4)
	q.AddHold(1, 2, 0)
	if got := q.FreeAt(5); got != 10 {
		t.Errorf("degenerate holds changed profile: %d", got)
	}
}

func TestMinFree(t *testing.T) {
	p := New(0, 10)
	p.AddHold(10, 20, 7)
	p.AddHold(15, 30, 2)
	if got := p.MinFree(0, 40); got != 1 {
		t.Errorf("MinFree(0,40) = %d, want 1", got)
	}
	if got := p.MinFree(0, 10); got != 10 {
		t.Errorf("MinFree(0,10) = %d, want 10", got)
	}
	if got := p.MinFree(20, 30); got != 8 {
		t.Errorf("MinFree(20,30) = %d, want 8", got)
	}
	if got := p.MinFree(5, 5); got != 10 {
		t.Errorf("empty window MinFree = %d", got)
	}
}

func TestFindSlot(t *testing.T) {
	// 4 cores now, 8 more at t=100, 4 more at t=200 (total 16).
	p := New(0, 4)
	p.AddRelease(100, 8)
	p.AddRelease(200, 4)

	if got := p.FindSlot(4, 50, 0); got != 0 {
		t.Errorf("4 cores fits now, got %v", got)
	}
	if got := p.FindSlot(8, 50, 0); got != 100 {
		t.Errorf("8 cores should wait for t=100, got %v", got)
	}
	if got := p.FindSlot(16, 50, 0); got != 200 {
		t.Errorf("16 cores should wait for t=200, got %v", got)
	}
	if got := p.FindSlot(17, 50, 0); got != sim.Forever {
		t.Errorf("17 cores never fits, got %v", got)
	}
	// earliest constraint respected.
	if got := p.FindSlot(4, 50, 150); got != 150 {
		t.Errorf("earliest=150 should start at 150, got %v", got)
	}
	// Zero-core requests start immediately.
	if got := p.FindSlot(0, 50, 42); got != 42 {
		t.Errorf("zero-core slot = %v", got)
	}
}

func TestFindSlotSkipsValleys(t *testing.T) {
	// 8 free, but a hold [50,150) takes 6: a 60-long 8-core job cannot
	// start before the hold clears.
	p := New(0, 8)
	p.AddHold(50, 150, 6)
	if got := p.FindSlot(8, 60, 0); got != 150 {
		t.Errorf("slot = %v, want 150", got)
	}
	// A short job fits before the valley.
	if got := p.FindSlot(8, 50, 0); got != 0 {
		t.Errorf("short slot = %v, want 0", got)
	}
	// A 2-core job fits inside the valley.
	if got := p.FindSlot(2, 60, 20); got != 20 {
		t.Errorf("small slot = %v, want 20", got)
	}
}

func TestFindSlotInfiniteDuration(t *testing.T) {
	p := New(0, 4)
	p.AddRelease(100, 4)
	p.AddHold(200, 300, 6)
	// A forever-duration job must clear every future dip.
	if got := p.FindSlot(8, sim.Forever, 0); got != 300 {
		t.Errorf("forever-slot = %v, want 300", got)
	}
}

func TestCompact(t *testing.T) {
	p := New(0, 8)
	p.AddHold(10, 20, 4)
	p.AddHold(10, 20, 0) // no-op
	p.AddRelease(20, 0)  // no-op
	p.AddHold(30, 40, 2)
	p.AddRelease(35, 2) // cancels the hold from 35
	p.Compact()
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	steps := p.Steps()
	for i := 1; i < len(steps); i++ {
		if steps[i].Free == steps[i-1].Free {
			t.Errorf("Compact left equal adjacent steps: %v", steps)
		}
	}
	// Behaviour preserved.
	if p.FreeAt(15) != 4 || p.FreeAt(32) != 6 || p.FreeAt(37) != 8 {
		t.Errorf("compact changed semantics: %s", p)
	}
}

func TestClone(t *testing.T) {
	p := New(0, 8)
	p.AddHold(10, 20, 4)
	c := p.Clone()
	c.AddHold(0, 100, 8)
	if p.FreeAt(5) != 8 {
		t.Error("clone aliases original")
	}
	if c.FreeAt(5) != 0 {
		t.Error("clone missing mutation")
	}
}

func TestString(t *testing.T) {
	p := New(0, 8)
	p.AddHold(10*sim.Second, 20*sim.Second, 4)
	s := p.String()
	if s == "" || s[0] != '[' {
		t.Errorf("String = %q", s)
	}
}

// Property: FreeAt is consistent with the sum of releases minus active
// holds at any query point, under random operation sequences.
func TestProfileConsistencyProperty(t *testing.T) {
	type hold struct {
		start, end sim.Time
		cores      int
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := 1 + rng.Intn(64)
		p := New(0, base)
		var releases []hold // end unused
		var holds []hold
		for i := 0; i < 20; i++ {
			if rng.Intn(2) == 0 {
				h := hold{start: sim.Time(rng.Intn(1000)), cores: rng.Intn(8)}
				releases = append(releases, h)
				p.AddRelease(h.start, h.cores)
			} else {
				s := sim.Time(rng.Intn(1000))
				h := hold{start: s, end: s + sim.Time(1+rng.Intn(500)), cores: rng.Intn(8)}
				holds = append(holds, h)
				p.AddHold(h.start, h.end, h.cores)
			}
		}
		if err := p.CheckInvariants(); err != nil {
			return false
		}
		for q := 0; q < 50; q++ {
			at := sim.Time(rng.Intn(2000))
			want := base
			for _, r := range releases {
				if at >= r.start {
					want += r.cores
				}
			}
			for _, h := range holds {
				if at >= h.start && at < h.end {
					want -= h.cores
				}
			}
			if p.FreeAt(at) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: FindSlot's answer actually fits, and no earlier boundary
// fits (minimality at step granularity).
func TestFindSlotMinimalProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p := New(0, 1+rng.Intn(32))
		for i := 0; i < 10; i++ {
			s := sim.Time(rng.Intn(500))
			p.AddHold(s, s+sim.Time(1+rng.Intn(300)), rng.Intn(6))
			p.AddRelease(sim.Time(rng.Intn(500)), rng.Intn(6))
		}
		cores := 1 + rng.Intn(32)
		dur := sim.Duration(1 + rng.Intn(400))
		got := p.FindSlot(cores, dur, 0)
		if got == sim.Forever {
			// Verify no boundary fits.
			for _, s := range p.Steps() {
				if p.MinFree(s.T, s.T+dur) >= cores {
					return false
				}
			}
			return true
		}
		if p.MinFree(got, got+dur) < cores {
			return false
		}
		// No earlier candidate (0 or any earlier boundary) fits.
		if got > 0 && p.MinFree(0, dur) >= cores {
			return false
		}
		for _, s := range p.Steps() {
			if s.T < got && p.MinFree(s.T, s.T+dur) >= cores {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
