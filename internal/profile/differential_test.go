package profile

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/sim"
)

// naiveFindSlot is the pre-sweep reference implementation: try earliest
// plus every later boundary as a candidate start and rescan the whole
// window for each. O(n²) but obviously faithful to the definition.
func naiveFindSlot(p *Profile, cores int, dur sim.Duration, earliest sim.Time) sim.Time {
	if cores <= 0 {
		return earliest
	}
	if earliest < p.Start() {
		earliest = p.Start()
	}
	if naiveFits(p, earliest, cores, dur) {
		return earliest
	}
	steps := p.Steps()
	i := sort.Search(len(steps), func(i int) bool { return steps[i].T > earliest })
	for ; i < len(steps); i++ {
		if naiveFits(p, steps[i].T, cores, dur) {
			return steps[i].T
		}
	}
	return sim.Forever
}

func naiveFits(p *Profile, start sim.Time, cores int, dur sim.Duration) bool {
	var end sim.Time
	if dur >= sim.Forever-start {
		end = sim.Forever
	} else {
		end = start + dur
	}
	if p.FreeAt(start) < cores {
		return false
	}
	steps := p.Steps()
	i := sort.Search(len(steps), func(i int) bool { return steps[i].T > start })
	for ; i < len(steps) && steps[i].T < end; i++ {
		if steps[i].Free < cores {
			return false
		}
	}
	return true
}

// mutation is one random capacity edit, applied identically to the
// incremental profile (AddRelease/AddHold) and the batch builder.
type mutation struct {
	hold       bool
	start, end sim.Time
	cores      int
}

func randomMutations(r *rand.Rand, n int) []mutation {
	muts := make([]mutation, n)
	for i := range muts {
		m := mutation{
			start: sim.Time(r.Intn(10_000)) * sim.Second,
			cores: r.Intn(32) + 1,
		}
		if r.Intn(2) == 0 {
			m.hold = true
			if r.Intn(8) == 0 {
				m.end = sim.Forever
			} else {
				m.end = m.start + sim.Time(r.Intn(3_600)+1)*sim.Second
			}
		}
		muts[i] = m
	}
	return muts
}

// applyIncremental replays mutations through the per-boundary API,
// checking invariants after every single mutation.
func applyIncremental(t *testing.T, muts []mutation) *Profile {
	t.Helper()
	p := New(0, 64)
	for i, m := range muts {
		if m.hold {
			p.AddHold(m.start, m.end, m.cores)
		} else {
			p.AddRelease(m.start, m.cores)
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("after mutation %d (%+v): %v", i, m, err)
		}
	}
	return p
}

// applyBatch replays the same mutations through the Builder.
func applyBatch(t *testing.T, muts []mutation) *Profile {
	t.Helper()
	b := NewBuilder(0, 64)
	for _, m := range muts {
		if m.hold {
			b.Hold(m.start, m.end, m.cores)
		} else {
			b.Release(m.start, m.cores)
		}
	}
	p := b.Build()
	if err := p.CheckInvariants(); err != nil {
		t.Fatalf("batch-built profile: %v", err)
	}
	return p
}

// samplePoints collects every boundary of both profiles plus segment
// midpoints and out-of-range probes, so a value comparison covers every
// piecewise-constant segment.
func samplePoints(ps ...*Profile) []sim.Time {
	var ts []sim.Time
	for _, p := range ps {
		steps := p.Steps()
		for i, s := range steps {
			ts = append(ts, s.T)
			if i+1 < len(steps) {
				ts = append(ts, s.T+(steps[i+1].T-s.T)/2)
			} else {
				ts = append(ts, s.T+sim.Hour)
			}
		}
	}
	ts = append(ts, -sim.Hour, 0, sim.Forever-1)
	return ts
}

// TestBatchBuildMatchesIncremental checks that the sorted prefix-sum
// construction yields the same capacity function as applying each delta
// through the insertion-based API, over randomized mutation sets.
func TestBatchBuildMatchesIncremental(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		muts := randomMutations(r, r.Intn(60)+1)
		inc := applyIncremental(t, muts)
		bat := applyBatch(t, muts)
		for _, at := range samplePoints(inc, bat) {
			if g, w := bat.FreeAt(at), inc.FreeAt(at); g != w {
				t.Fatalf("trial %d: FreeAt(%v) batch=%d incremental=%d\nbatch:       %v\nincremental: %v",
					trial, at, g, w, bat, inc)
			}
		}
		// Compact must preserve the capacity function too.
		bat.Compact()
		if err := bat.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: after Compact: %v", trial, err)
		}
		for _, at := range samplePoints(inc, bat) {
			if g, w := bat.FreeAt(at), inc.FreeAt(at); g != w {
				t.Fatalf("trial %d: FreeAt(%v) after Compact = %d, want %d", trial, at, g, w)
			}
		}
	}
}

// TestFindSlotMatchesNaive checks the sweep search against the
// per-candidate rescan reference over randomized profiles and queries,
// including degenerate cores/duration/earliest values.
func TestFindSlotMatchesNaive(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		muts := randomMutations(r, r.Intn(40)+1)
		p := applyIncremental(t, muts)
		for q := 0; q < 30; q++ {
			cores := r.Intn(200) - 10 // includes <= 0 and never-satisfiable
			var dur sim.Duration
			switch r.Intn(4) {
			case 0:
				dur = sim.Time(r.Intn(60)+1) * sim.Second
			case 1:
				dur = sim.Time(r.Intn(7_200)+1) * sim.Second
			case 2:
				dur = sim.Time(r.Intn(40_000)+1) * sim.Second
			default:
				dur = sim.Forever // run must extend forever
			}
			earliest := sim.Time(r.Intn(24_000)-2_000) * sim.Second
			got := p.FindSlot(cores, dur, earliest)
			want := naiveFindSlot(p, cores, dur, earliest)
			if got != want {
				t.Fatalf("trial %d: FindSlot(cores=%d dur=%v earliest=%v) = %v, want %v\nprofile: %v",
					trial, cores, dur, earliest, got, want, p)
			}
		}
	}
}

// TestCloneIntoMatchesClone checks the scratch-reusing clone against
// the allocating one, including reuse of a previously larger buffer.
func TestCloneIntoMatchesClone(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	var scratch Profile
	for trial := 0; trial < 50; trial++ {
		p := applyIncremental(t, randomMutations(r, r.Intn(50)+1))
		c := p.CloneInto(&scratch)
		if err := c.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		want := p.Clone()
		ws, cs := want.Steps(), c.Steps()
		if len(ws) != len(cs) {
			t.Fatalf("trial %d: CloneInto %d steps, Clone %d", trial, len(cs), len(ws))
		}
		for i := range ws {
			if ws[i] != cs[i] {
				t.Fatalf("trial %d: step %d = %+v, want %+v", trial, i, cs[i], ws[i])
			}
		}
		// Mutating the clone must not touch the original.
		c.AddHold(0, sim.Hour, 1)
		if p.FreeAt(0) == c.FreeAt(0) {
			t.Fatalf("trial %d: CloneInto aliases the source", trial)
		}
	}
}
