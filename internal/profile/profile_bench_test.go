package profile

import (
	"testing"

	"repro/internal/sim"
)

// buildBusy constructs a profile resembling a loaded 120-core system:
// 40 running-job releases and 10 reservation holds.
func buildBusy() *Profile {
	p := New(0, 8)
	for i := 0; i < 40; i++ {
		p.AddRelease(sim.Time(i+1)*10*sim.Minute, 3)
	}
	for i := 0; i < 10; i++ {
		start := sim.Time(i+2) * 15 * sim.Minute
		p.AddHold(start, start+30*sim.Minute, 12)
	}
	return p
}

func BenchmarkProfileBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildBusy()
	}
}

func BenchmarkProfileFindSlot(b *testing.B) {
	p := buildBusy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.FindSlot(64, sim.Hour, 0)
	}
}

func BenchmarkProfileClone(b *testing.B) {
	p := buildBusy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Clone()
	}
}

func BenchmarkProfileMinFree(b *testing.B) {
	p := buildBusy()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.MinFree(0, 8*sim.Hour)
	}
}
