package profile

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/sim"
)

// stepsEqual compares two step lists exactly.
func stepsEqual(a, b []Step) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSegProfileDifferential drives the flat Profile and the segmented
// SegProfile through identical random op sequences and requires
// identical steps and identical answers to every query — the oracle
// that licenses the scheduler's switch to segmented planning.
func TestSegProfileDifferential(t *testing.T) {
	for seed := int64(1); seed <= 30; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			base := sim.Time(rng.Intn(1000)) * sim.Second
			freeNow := rng.Intn(4096)

			// Build both from one Builder load.
			var b Builder
			b.Reset(base, freeNow)
			nRel := rng.Intn(200)
			for i := 0; i < nRel; i++ {
				b.Release(base+sim.Duration(1+rng.Intn(5000))*sim.Second, 1+rng.Intn(64))
			}
			flat := b.Build()
			seg := b.BuildSegInto(&SegProfile{})
			check := func(op string) {
				t.Helper()
				if err := seg.CheckInvariants(); err != nil {
					t.Fatalf("after %s: %v", op, err)
				}
				if err := flat.CheckInvariants(); err != nil {
					t.Fatalf("after %s: flat: %v", op, err)
				}
				if !stepsEqual(flat.Steps(), seg.Steps()) {
					t.Fatalf("after %s:\nflat %v\nseg  %v", op, flat, seg)
				}
			}
			check("build")

			for op := 0; op < 300; op++ {
				switch rng.Intn(5) {
				case 0:
					at := base + sim.Duration(rng.Intn(6000))*sim.Second
					c := 1 + rng.Intn(64)
					flat.AddRelease(at, c)
					seg.AddRelease(at, c)
					check("release")
				case 1:
					start := base + sim.Duration(rng.Intn(6000))*sim.Second
					end := start + sim.Duration(rng.Intn(3000))*sim.Second
					if rng.Intn(10) == 0 {
						end = sim.Forever
					}
					c := rng.Intn(64)
					flat.AddHold(start, end, c)
					seg.AddHold(start, end, c)
					check("hold")
				case 2:
					at := base + sim.Duration(rng.Intn(7000)-500)*sim.Second
					if f, s := flat.FreeAt(at), seg.FreeAt(at); f != s {
						t.Fatalf("FreeAt(%v): flat %d seg %d", at, f, s)
					}
				case 3:
					start := base + sim.Duration(rng.Intn(7000)-500)*sim.Second
					end := start + sim.Duration(rng.Intn(3000)-100)*sim.Second
					if f, s := flat.MinFree(start, end), seg.MinFree(start, end); f != s {
						t.Fatalf("MinFree(%v,%v): flat %d seg %d", start, end, f, s)
					}
				case 4:
					cores := rng.Intn(128)
					dur := sim.Duration(rng.Intn(4000)) * sim.Second
					if rng.Intn(20) == 0 {
						dur = sim.Forever
					}
					earliest := base + sim.Duration(rng.Intn(6000)-500)*sim.Second
					if f, s := flat.FindSlot(cores, dur, earliest), seg.FindSlot(cores, dur, earliest); f != s {
						t.Fatalf("FindSlot(%d,%v,%v): flat %v seg %v\nflat %v\nseg  %v",
							cores, dur, earliest, f, s, flat, seg)
					}
				}
			}

			// Clone and verify independence: mutations to the clone must
			// not leak back.
			var buf SegProfile
			c := seg.CloneInto(&buf)
			before := seg.Steps()
			c.AddHold(base, sim.Forever, 7)
			if !stepsEqual(seg.Steps(), before) {
				t.Fatal("CloneInto aliases the source profile")
			}
		})
	}
}

// TestSegProfileSplitDense forces many boundary insertions into a small
// time range so segments split repeatedly.
func TestSegProfileSplitDense(t *testing.T) {
	flat := New(0, 100)
	seg := NewSeg(0, 100)
	// Insert boundaries in an order that hits front, middle, and back of
	// the same segments.
	for i := 0; i < 500; i++ {
		at := sim.Time((i * 7919) % 1000)
		flat.AddHold(at, at+1, 1)
		seg.AddHold(at, at+1, 1)
	}
	if err := seg.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !stepsEqual(flat.Steps(), seg.Steps()) {
		t.Fatalf("dense split divergence:\nflat %v\nseg  %v", flat, seg)
	}
}

// benchProfilePair builds a production-scale profile (thousands of
// release boundaries, a band of holds) in both representations.
func benchProfilePair() (*Profile, *SegProfile) {
	var b Builder
	b.Reset(0, 4096)
	for i := 0; i < 3300; i++ {
		b.Release(sim.Hour+sim.Duration(i)*sim.Minute, 8)
	}
	flat := b.Build()
	seg := b.BuildSegInto(&SegProfile{})
	for i := 0; i < 40; i++ {
		start := sim.Duration(i) * 17 * sim.Minute
		flat.AddHold(start, start+2*sim.Hour, 32)
		seg.AddHold(start, start+2*sim.Hour, 32)
	}
	return flat, seg
}

// BenchmarkFindSlotFlat is the baseline: the flat profile's O(steps)
// sweep at 4096-node scale.
func BenchmarkFindSlotFlat(b *testing.B) {
	flat, _ := benchProfilePair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flat.FindSlot(32+(i%64), 2*sim.Hour, sim.Time(i%1000)*sim.Second)
	}
}

// BenchmarkFindSlotSegments measures the segmented sweep with min/max
// aggregate skipping on the same profile.
func BenchmarkFindSlotSegments(b *testing.B) {
	_, seg := benchProfilePair()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.FindSlot(32+(i%64), 2*sim.Hour, sim.Time(i%1000)*sim.Second)
	}
}

// BenchmarkSegProfileClone measures the arena-copy clone that backs
// each what-if overlay.
func BenchmarkSegProfileClone(b *testing.B) {
	_, seg := benchProfilePair()
	var buf SegProfile
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		seg.CloneInto(&buf)
	}
}
