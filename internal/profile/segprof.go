// Segmented availability profile. The flat Profile stores its steps in
// one slice, which makes every query a linear sweep and every clone a
// single memcpy — fine at testbed scale, but at 4096 nodes the profile
// carries thousands of boundaries and FindSlot dominates the iteration
// when 100k queued jobs each probe it. SegProfile keeps the same
// piecewise-constant semantics but chunks the steps into fixed-size
// segments held in an int32-freelist arena (the sim-engine slot-arena
// pattern), with per-segment min/max aggregates:
//
//   - FindSlot/MinFree skip whole segments that are uniformly feasible
//     (min ≥ cores) or uniformly infeasible (max < cores), so a probe
//     costs O(segments) instead of O(steps) in the common case;
//   - boundary insertion shifts at most one segment (with an O(segCap)
//     local split when full) instead of memmoving the whole step list;
//   - clones for what-if planning copy the arena wholesale — still one
//     memcpy, no pointer graph.
//
// Every operation is defined to be value-identical to the flat Profile:
// the differential test in segprof_test.go drives both implementations
// through random op sequences and requires equal results, and the
// scheduler's decision traces (Table II, fig8/fig9) are the end-to-end
// oracle.
package profile

import (
	"fmt"
	"strings"

	"repro/internal/arena"
	"repro/internal/sim"
)

// segCap is the number of steps per segment. 32 keeps a segment at
// ~400 bytes (six cache lines) and makes splits cheap, while still
// amortizing the per-segment skip checks over enough steps to win.
const segCap = 32

// segment is one chunk of consecutive steps plus aggregates. Segments
// link through arena handles, never pointers, so a profile clone is a
// flat copy of the arena.
type segment struct {
	t    [segCap]sim.Time
	free [segCap]int32
	next int32 // arena handle of the next segment; -1 terminates
	n    int32 // live steps in this segment (≥ 1)
	min  int32 // min of free[0..n)
	max  int32 // max of free[0..n)
}

// SegProfile is a piecewise-constant map from time to free cores,
// equivalent to Profile but segmented for scale. The zero value is not
// usable; call NewSeg or Builder.BuildSegInto.
type SegProfile struct {
	segs arena.Slots[segment]
	head int32
}

// NewSeg creates a segmented profile with freeNow cores available from
// time now on.
func NewSeg(now sim.Time, freeNow int) *SegProfile {
	p := &SegProfile{}
	p.reset(now, int32(freeNow))
	return p
}

// reset reinitializes the profile to a single step, keeping storage.
func (p *SegProfile) reset(now sim.Time, freeNow int32) {
	p.segs.Reset()
	h := p.segs.Alloc()
	seg := p.segs.At(h)
	seg.next = -1
	seg.n = 1
	seg.t[0] = now
	seg.free[0] = freeNow
	seg.min, seg.max = freeNow, freeNow
	p.head = h
}

// CloneInto copies p into dst, reusing dst's arena storage — the
// what-if overlay path. A nil dst allocates a fresh profile.
func (p *SegProfile) CloneInto(dst *SegProfile) *SegProfile {
	if dst == nil {
		dst = &SegProfile{}
	}
	dst.segs.CopyFrom(&p.segs)
	dst.head = p.head
	return dst
}

// Start returns the first instant the profile covers.
func (p *SegProfile) Start() sim.Time { return p.segs.At(p.head).t[0] }

// NumSteps returns the total number of step boundaries.
func (p *SegProfile) NumSteps() int {
	n := 0
	for h := p.head; h >= 0; h = p.segs.At(h).next {
		n += int(p.segs.At(h).n)
	}
	return n
}

// Steps returns a copy of the steps, for inspection and tests.
func (p *SegProfile) Steps() []Step {
	out := make([]Step, 0, p.NumSteps())
	for h := p.head; h >= 0; {
		seg := p.segs.At(h)
		for k := 0; k < int(seg.n); k++ {
			out = append(out, Step{T: seg.t[k], Free: int(seg.free[k])})
		}
		h = seg.next
	}
	return out
}

// locate returns the segment containing t (the last segment whose
// first step is ≤ t, or the head when t precedes the profile) and the
// index of the last step with time ≤ t within it (-1 when t precedes
// even the head's first step).
func (p *SegProfile) locate(t sim.Time) (int32, int) {
	h := p.head
	for {
		seg := p.segs.At(h)
		if seg.next < 0 || p.segs.At(seg.next).t[0] > t {
			break
		}
		h = seg.next
	}
	seg := p.segs.At(h)
	i := int(seg.n) - 1
	for i >= 0 && seg.t[i] > t {
		i--
	}
	return h, i
}

// FreeAt returns the free cores at time t; times before the profile
// start report the initial value.
func (p *SegProfile) FreeAt(t sim.Time) int {
	h, i := p.locate(t)
	seg := p.segs.At(h)
	if i < 0 {
		return int(seg.free[0])
	}
	return int(seg.free[i])
}

// recomputeAgg rebuilds a segment's min/max from its live steps.
func recomputeAgg(seg *segment) {
	mn, mx := seg.free[0], seg.free[0]
	for k := 1; k < int(seg.n); k++ {
		if seg.free[k] < mn {
			mn = seg.free[k]
		}
		if seg.free[k] > mx {
			mx = seg.free[k]
		}
	}
	seg.min, seg.max = mn, mx
}

// split divides a full segment in half, allocating the upper half from
// the arena and relinking — the local alternative to the flat
// profile's whole-slice memmove.
func (p *SegProfile) split(h int32) {
	nh := p.segs.Alloc() // may grow the arena: re-fetch pointers after
	seg := p.segs.At(h)
	s2 := p.segs.At(nh)
	const half = segCap / 2
	copy(s2.t[:half], seg.t[half:])
	copy(s2.free[:half], seg.free[half:])
	s2.n, seg.n = half, half
	s2.next = seg.next
	seg.next = nh
	recomputeAgg(seg)
	recomputeAgg(s2)
}

// ensureBoundary inserts a step boundary at t (splitting the step
// containing it) and returns its segment handle and index.
func (p *SegProfile) ensureBoundary(t sim.Time) (int32, int) {
	h, i := p.locate(t)
	seg := p.segs.At(h)
	if i >= 0 && seg.t[i] == t {
		return h, i
	}
	var free int32
	if i < 0 {
		free = seg.free[0]
	} else {
		free = seg.free[i]
	}
	pos := i + 1
	if int(seg.n) == segCap {
		p.split(h)
		seg = p.segs.At(h)
		if pos > int(seg.n) {
			pos -= int(seg.n)
			h = seg.next
			seg = p.segs.At(h)
		}
	}
	for k := int(seg.n); k > pos; k-- {
		seg.t[k] = seg.t[k-1]
		seg.free[k] = seg.free[k-1]
	}
	seg.t[pos] = t
	seg.free[pos] = free
	seg.n++
	if free < seg.min {
		seg.min = free
	}
	if free > seg.max {
		seg.max = free
	}
	return h, pos
}

// AddRelease increases capacity by cores from time t onward.
func (p *SegProfile) AddRelease(t sim.Time, cores int) {
	if cores == 0 {
		return
	}
	c := int32(cores)
	h, i := p.ensureBoundary(t)
	for h >= 0 {
		seg := p.segs.At(h)
		n := int(seg.n)
		for k := i; k < n; k++ {
			seg.free[k] += c
		}
		if i == 0 {
			seg.min += c
			seg.max += c
		} else {
			recomputeAgg(seg)
		}
		h = seg.next
		i = 0
	}
}

// AddHold decreases capacity by cores during [start, end); end may be
// sim.Forever. Negative capacity is legal transiently in what-if
// planning, exactly as with the flat Profile.
func (p *SegProfile) AddHold(start, end sim.Time, cores int) {
	if cores == 0 || end <= start {
		return
	}
	if end < sim.Forever {
		p.ensureBoundary(end)
	}
	h, i := p.ensureBoundary(start)
	c := int32(cores)
	for h >= 0 {
		seg := p.segs.At(h)
		n := int(seg.n)
		if i == 0 && seg.t[n-1] < end {
			// Every step in the segment is inside the hold.
			for k := 0; k < n; k++ {
				seg.free[k] -= c
			}
			seg.min -= c
			seg.max -= c
		} else {
			done := false
			for k := i; k < n; k++ {
				if seg.t[k] >= end {
					done = true
					break
				}
				seg.free[k] -= c
			}
			recomputeAgg(seg)
			if done {
				return
			}
		}
		h = seg.next
		i = 0
	}
}

// MinFree returns the minimum free capacity over [start, end).
func (p *SegProfile) MinFree(start, end sim.Time) int {
	if end <= start {
		return p.FreeAt(start)
	}
	h, i := p.locate(start)
	seg := p.segs.At(h)
	var min int32
	if i < 0 {
		min = seg.free[0]
	} else {
		min = seg.free[i]
	}
	for k := i + 1; k < int(seg.n); k++ {
		if seg.t[k] >= end {
			return int(min)
		}
		if seg.free[k] < min {
			min = seg.free[k]
		}
	}
	for nh := seg.next; nh >= 0; {
		s2 := p.segs.At(nh)
		if s2.t[0] >= end {
			break
		}
		if s2.t[int(s2.n)-1] < end {
			// Whole segment inside the window: the aggregate answers.
			if s2.min < min {
				min = s2.min
			}
		} else {
			for k := 0; k < int(s2.n); k++ {
				if s2.t[k] >= end {
					break
				}
				if s2.free[k] < min {
					min = s2.free[k]
				}
			}
			break
		}
		nh = s2.next
	}
	return int(min)
}

// FindSlot returns the earliest time ≥ earliest at which cores cores
// are continuously free for dur, or sim.Forever. Semantics match
// Profile.FindSlot exactly; the sweep skips whole segments via the
// min/max aggregates. Deferring the "run long enough" check to the
// next segment entry is sound because the candidate start does not
// change while the run stays feasible — only its detection point moves.
func (p *SegProfile) FindSlot(cores int, dur sim.Duration, earliest sim.Time) sim.Time {
	if cores <= 0 {
		return earliest
	}
	if earliest < p.Start() {
		earliest = p.Start()
	}
	c := int32(cores)
	h, i := p.locate(earliest)
	seg := p.segs.At(h)
	var start sim.Time
	ok := false
	if seg.free[i] >= c {
		start, ok = earliest, true
	}
	for j := i + 1; j < int(seg.n); j++ {
		if ok && satAdd(start, dur) <= seg.t[j] {
			return start
		}
		if seg.free[j] >= c {
			if !ok {
				start, ok = seg.t[j], true
			}
		} else {
			ok = false
		}
	}
	for nh := seg.next; nh >= 0; {
		s2 := p.segs.At(nh)
		if ok && satAdd(start, dur) <= s2.t[0] {
			return start
		}
		switch {
		case s2.min >= c:
			// Uniformly feasible: the run continues (or starts) here.
			if !ok {
				start, ok = s2.t[0], true
			}
		case s2.max < c:
			// Uniformly infeasible: any run dies at the first step.
			ok = false
		default:
			for j := 0; j < int(s2.n); j++ {
				if ok && satAdd(start, dur) <= s2.t[j] {
					return start
				}
				if s2.free[j] >= c {
					if !ok {
						start, ok = s2.t[j], true
					}
				} else {
					ok = false
				}
			}
		}
		nh = s2.next
	}
	if ok {
		return start
	}
	return sim.Forever
}

// String renders the profile for debugging, same format as Profile.
func (p *SegProfile) String() string {
	var b strings.Builder
	b.WriteByte('[')
	first := true
	for h := p.head; h >= 0; {
		seg := p.segs.At(h)
		for k := 0; k < int(seg.n); k++ {
			if !first {
				b.WriteByte(' ')
			}
			first = false
			fmt.Fprintf(&b, "%s→%d", sim.FormatTime(seg.t[k]), seg.free[k])
		}
		h = seg.next
	}
	b.WriteByte(']')
	return b.String()
}

// CheckInvariants verifies segment structure: strictly increasing step
// times across the whole chain, populated segments, and aggregates
// consistent with the steps they summarize.
func (p *SegProfile) CheckInvariants() error {
	seen := 0
	var prev sim.Time
	first := true
	for h := p.head; h >= 0; {
		seg := p.segs.At(h)
		if seg.n < 1 || seg.n > segCap {
			return fmt.Errorf("segprofile: segment with %d steps", seg.n)
		}
		mn, mx := seg.free[0], seg.free[0]
		for k := 0; k < int(seg.n); k++ {
			if !first && seg.t[k] <= prev {
				return fmt.Errorf("segprofile: non-increasing step times at %s", sim.FormatTime(seg.t[k]))
			}
			prev, first = seg.t[k], false
			if seg.free[k] < mn {
				mn = seg.free[k]
			}
			if seg.free[k] > mx {
				mx = seg.free[k]
			}
		}
		if mn != seg.min || mx != seg.max {
			return fmt.Errorf("segprofile: stale aggregates (min %d/%d, max %d/%d)", seg.min, mn, seg.max, mx)
		}
		seen += int(seg.n)
		if seen > p.segs.Cap()*segCap {
			return fmt.Errorf("segprofile: segment chain cycle")
		}
		h = seg.next
	}
	if seen == 0 {
		return fmt.Errorf("segprofile: no steps")
	}
	return nil
}

// BuildSegInto materializes the accumulated deltas into dst, reusing
// its arena storage, and returns dst. The result is step-for-step
// identical to BuildInto on a flat Profile.
func (b *Builder) BuildSegInto(dst *SegProfile) *SegProfile {
	sortDeltas(b.deltas)
	dst.reset(b.base, int32(b.baseFree))
	h := dst.head
	seg := dst.segs.At(h)
	free := int32(b.baseFree)
	for i := 0; i < len(b.deltas); {
		t := b.deltas[i].t
		for ; i < len(b.deltas) && b.deltas[i].t == t; i++ {
			free += int32(b.deltas[i].d)
		}
		if int(seg.n) == segCap {
			nh := dst.segs.Alloc() // may grow the arena: re-fetch seg
			recomputeAgg(dst.segs.At(h))
			dst.segs.At(h).next = nh
			h = nh
			seg = dst.segs.At(h)
			seg.next = -1
			seg.n = 0
		}
		seg.t[seg.n] = t
		seg.free[seg.n] = free
		seg.n++
	}
	recomputeAgg(seg)
	return dst
}
