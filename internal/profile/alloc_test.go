package profile

import (
	"testing"

	"repro/internal/sim"
)

// These tests pin the allocation behavior of the planning hot path:
// regressions that reintroduce per-request churn fail here long before
// they show up in end-to-end benchmarks.

func TestCloneAllocs(t *testing.T) {
	p := buildBusy()
	allocs := testing.AllocsPerRun(100, func() {
		p.Clone()
	})
	if allocs > 2 {
		t.Errorf("Profile.Clone allocates %.0f times per call, want <= 2 (struct + steps)", allocs)
	}
}

func TestCloneIntoAllocs(t *testing.T) {
	p := buildBusy()
	var scratch Profile
	p.CloneInto(&scratch) // warm the scratch buffer
	allocs := testing.AllocsPerRun(100, func() {
		p.CloneInto(&scratch)
	})
	if allocs != 0 {
		t.Errorf("Profile.CloneInto on a warm scratch allocates %.0f times per call, want 0", allocs)
	}
}

func TestAddHoldAllocs(t *testing.T) {
	p := buildBusy()
	start, end := 10*sim.Minute, 70*sim.Minute
	p.AddHold(start, end, 1) // boundaries now exist; later holds reuse them
	allocs := testing.AllocsPerRun(100, func() {
		p.AddHold(start, end, 1)
	})
	if allocs != 0 {
		t.Errorf("Profile.AddHold on existing boundaries allocates %.0f times per call, want 0", allocs)
	}
}

func TestBuildIntoAllocs(t *testing.T) {
	b := NewBuilder(0, 64)
	var scratch Profile
	fill := func() {
		b.Reset(0, 64)
		for i := 0; i < 50; i++ {
			b.Release(sim.Time(i+1)*sim.Minute, 2)
			b.Hold(sim.Time(i+1)*30*sim.Second, sim.Time(i+2)*30*sim.Second, 1)
		}
	}
	fill()
	b.BuildInto(&scratch) // warm builder and scratch storage
	allocs := testing.AllocsPerRun(100, func() {
		fill()
		b.BuildInto(&scratch)
	})
	// sort.Slice boxes its closure; everything else must reuse storage.
	if allocs > 3 {
		t.Errorf("Builder.BuildInto on warm storage allocates %.0f times per call, want <= 3", allocs)
	}
}
