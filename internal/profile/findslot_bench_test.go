package profile

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// buildAdversarial constructs the FindSlot worst case: capacity
// oscillates just above the requested size for n boundaries, then dips
// below it once near the end. Every candidate start before the dip
// passes the instantaneous capacity check but fails deep into its
// window, so a per-candidate rescan degenerates to O(n²) while a
// single forward sweep stays O(n).
func buildAdversarial(n int) *Profile {
	p := New(0, 49)
	for i := 1; i <= n; i++ {
		t := sim.Time(i) * sim.Minute
		if i%2 == 1 {
			p.AddRelease(t, -1)
		} else {
			p.AddRelease(t, 1)
		}
	}
	dip := sim.Time(n+1) * sim.Minute
	p.AddHold(dip, dip+sim.Minute, 49)
	return p
}

// BenchmarkFindSlot sweeps profile sizes on two shapes: the adversarial
// late-dip profile above and the mixed release/hold profile of a busy
// system scaled up.
func BenchmarkFindSlot(b *testing.B) {
	for _, n := range []int{1000, 4000, 16000} {
		n := n
		b.Run(fmt.Sprintf("adversarial-%d", n), func(b *testing.B) {
			p := buildAdversarial(n)
			dur := sim.Duration(n+2) * sim.Minute
			want := sim.Time(n+2) * sim.Minute
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := p.FindSlot(48, dur, 0); got != want {
					b.Fatalf("FindSlot = %v, want %v", got, want)
				}
			}
		})
	}
	for _, n := range []int{1000, 4000, 16000} {
		n := n
		b.Run(fmt.Sprintf("busy-%d", n), func(b *testing.B) {
			p := New(0, 8)
			for i := 0; i < n; i++ {
				p.AddRelease(sim.Time(i+1)*sim.Minute, 3)
			}
			for i := 0; i < n/4; i++ {
				start := sim.Time(i+2) * 4 * sim.Minute
				p.AddHold(start, start+30*sim.Minute, 12)
			}
			need := 3*n/2 + 8 // reachable only late in the profile
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if got := p.FindSlot(need, sim.Hour, 0); got == 0 {
					b.Fatal("unexpected immediate slot")
				}
			}
		})
	}
}
