// Batch profile construction. Building a profile by repeated
// AddRelease/AddHold pays an O(n) memmove per boundary insertion —
// O(n²) for the per-iteration rebuild from hundreds of running jobs.
// The Builder instead collects all capacity deltas, sorts them once,
// and materializes the step list by a single prefix-sum pass:
// O(n log n) to build, O(n) to rebuild into reused storage.
package profile

import (
	"sort"

	"repro/internal/sim"
)

// delta is one capacity change: d cores become free (or taken, when
// negative) at time t.
type delta struct {
	t sim.Time
	d int
}

// Builder accumulates release and hold deltas and materializes them
// into a Profile in one pass. A Builder is reusable via Reset; it is
// not safe for concurrent use.
type Builder struct {
	base     sim.Time
	baseFree int
	deltas   []delta
}

// NewBuilder starts a batch build: freeNow cores available from base on.
func NewBuilder(base sim.Time, freeNow int) *Builder {
	b := &Builder{}
	b.Reset(base, freeNow)
	return b
}

// Reset clears the builder for a new batch build, keeping its storage.
func (b *Builder) Reset(base sim.Time, freeNow int) {
	b.base, b.baseFree, b.deltas = base, freeNow, b.deltas[:0]
}

// Release adds cores to the pool from time t onward. Times at or
// before the base fold into the initial capacity.
func (b *Builder) Release(t sim.Time, cores int) {
	if cores == 0 {
		return
	}
	if t <= b.base {
		b.baseFree += cores
		return
	}
	b.deltas = append(b.deltas, delta{t, cores})
}

// Hold removes cores from the pool during [start, end); end may be
// sim.Forever. Segments before the base are clipped away.
func (b *Builder) Hold(start, end sim.Time, cores int) {
	if cores == 0 || end <= start {
		return
	}
	b.Release(start, -cores)
	if end < sim.Forever {
		b.Release(end, cores)
	}
}

// Build materializes the accumulated deltas into a fresh Profile.
func (b *Builder) Build() *Profile {
	return b.BuildInto(&Profile{})
}

// sortDeltas orders deltas by time; equal times keep any order, since
// same-time deltas fold into one step.
func sortDeltas(ds []delta) {
	sort.Slice(ds, func(i, j int) bool { return ds[i].t < ds[j].t })
}

// BuildInto materializes into dst, reusing its step storage, and
// returns dst. The result is identical to applying every delta through
// AddRelease/AddHold in any order.
func (b *Builder) BuildInto(dst *Profile) *Profile {
	sortDeltas(b.deltas)
	steps := dst.steps[:0]
	if cap(steps) < len(b.deltas)+1 {
		steps = make([]Step, 0, len(b.deltas)+1)
	}
	steps = append(steps, Step{T: b.base, Free: b.baseFree})
	free := b.baseFree
	for i := 0; i < len(b.deltas); {
		t := b.deltas[i].t
		for ; i < len(b.deltas) && b.deltas[i].t == t; i++ {
			free += b.deltas[i].d
		}
		steps = append(steps, Step{T: t, Free: free})
	}
	dst.steps = steps
	dst.mutations = 1 // merged boundaries may exist; first Compact scans
	return dst
}
