package serverd

import (
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/rms"
	"repro/internal/testutil/leak"
)

// TestDispatchRollbackAdvancesEpochs pins the invariant epochguard
// enforces on (*serverRM).StartJob: the dispatch-failure rollback is a
// second round of mutations after the dispatch bump, so it must carry
// its own queue-class bump. Under the epoch protocol two observations
// with equal epochs must describe identical state; without the
// rollback bump the post-rollback queue would share an epoch with the
// post-dispatch state, and any epoch-keyed consumer — the embedded
// scheduler's skip/order caches, an external scheduler diffing the
// snapshot serial — could serve a plan for the wrong queue.
func TestDispatchRollbackAdvancesEpochs(t *testing.T) {
	leak.Check(t)
	srv := New(Options{Sched: core.New(core.Options{}, 0)})
	srv.start = time.Now() // anchor the virtual clock; the daemon is never Started
	// One registered node whose mom link is already dead, so the
	// RunJob dispatch fails after the allocation succeeded.
	local, remote := net.Pipe()
	remote.Close()
	defer local.Close()
	n := srv.cl.AddNode("deadmom", 8)
	ni := &nodeInfo{node: n, addr: "dead:0", conn: proto.NewConn(local)}
	srv.nodes["deadmom"] = ni
	srv.nodeByID[n.ID] = ni

	id, err := srv.QSub(proto.JobSpec{Name: "rollback", User: "u", Cores: 4, WallSecs: 60})
	if err != nil {
		t.Fatal(err)
	}

	srv.mu.Lock()
	defer srv.mu.Unlock()
	rm := (*serverRM)(srv)
	j := srv.jobs[id].j
	e0, q0 := rm.StateEpoch(), rm.QueueEpoch()
	if _, err := rm.StartJob(j); err == nil {
		t.Fatal("dispatch over a dead mom link must fail")
	}
	if j.State != job.Queued || len(srv.queued) != 1 || len(srv.active) != 0 {
		t.Fatalf("rollback incomplete: state=%v queued=%d active=%d",
			j.State, len(srv.queued), len(srv.active))
	}
	if srv.cl.UsedCores() != 0 {
		t.Fatalf("rollback leaked %d cores", srv.cl.UsedCores())
	}
	// Two mutation rounds (dispatch, rollback) → at least two bumps of
	// each epoch. One bump would mean the rollback mutated the queue
	// behind an unchanged epoch.
	if e1 := rm.StateEpoch(); e1 < e0+2 {
		t.Errorf("StateEpoch advanced %d→%d; the rollback must bump again", e0, e1)
	}
	if q1 := rm.QueueEpoch(); q1 < q0+2 {
		t.Errorf("QueueEpoch advanced %d→%d; the rollback must bump again", q0, q1)
	}
}

// TestSubmitAfterIdleTicksIsScheduled is the differential for QSub's
// bump class. After the first job starts, idle poll ticks run against
// an unchanged epoch: canSkip short-circuits and the scheduler's
// sorted-order cache holds an empty queue. A submit that bumped only
// the state epoch would defeat the skip but reuse the stale empty
// order — the new job would never be scheduled. The queue-class bump
// forces the rebuild.
func TestSubmitAfterIdleTicksIsScheduled(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	id1, err := srv.QSub(proto.JobSpec{
		Name: "first", User: "u", Cores: 2, WallSecs: 600, Script: "sleep:10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id1) == "running" }, "first job start")
	// Let several idle poll ticks hit the frozen-epoch fast path with
	// the now-empty queue cached.
	time.Sleep(150 * time.Millisecond)
	id2, err := srv.QSub(proto.JobSpec{
		Name: "second", User: "u", Cores: 2, WallSecs: 60, Script: "sleep:50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id2) == "completed" }, "second job after idle ticks")
}

// TestRequeueAfterIdleTicksIsRescheduled is the differential for the
// node-down requeue path (failNodeLocked → Preempt): the preempted
// job re-enters the queue after idle ticks cached an empty sorted
// order, so Preempt must advance the queue epoch or the requeued job
// is invisible to every later iteration and never restarts.
func TestRequeueAfterIdleTicksIsRescheduled(t *testing.T) {
	leak.Check(t)
	srv, moms := failoverCluster(t, 2, 8,
		Options{HeartbeatInterval: 25 * time.Millisecond, FailurePolicy: rms.FailRequeue},
		func(m *mom.Mom) { m.HeartbeatInterval = 10 * time.Millisecond })
	id, err := srv.QSub(proto.JobSpec{
		Name: "lazarus", User: "u", Cores: 8, WallSecs: 600, Script: "sleep:250ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "running" }, "job start")
	// A short job on the surviving node whose completion drives a full
	// iteration after lazarus started: that iteration caches the empty
	// queue's sorted order against the current queue epoch, which is
	// exactly the cache a queue-blind requeue would poison.
	id2, err := srv.QSub(proto.JobSpec{
		Name: "warmup", User: "u", Cores: 2, WallSecs: 60, Script: "sleep:30ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id2) == "completed" }, "warmup completion")
	// Idle ticks with lazarus running: the empty order cache is warm.
	time.Sleep(150 * time.Millisecond)
	first := msNodeOf(t, srv, id)
	momByName(t, moms, first).Close()
	waitFor(t, 10*time.Second, func() bool { return jobState(srv, id) == "completed" }, "requeued job completion")
	srv.mu.Lock()
	second := srv.jobs[id].msNode
	srv.mu.Unlock()
	if second == first {
		t.Errorf("job restarted on the dead node %s", first)
	}
}
