package serverd

import (
	"fmt"
	"net"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/proto/chaos"
	"repro/internal/testutil/leak"
)

// TestAcceptFloodBounded: a flood of connections that never speak must
// not spawn a goroutine each — the handshake semaphore admits at most
// MaxHandshakes into the pre-classification stage, the rest wait in
// the kernel backlog — and a legitimate client must still get served
// as the handshake timeout recycles slots.
func TestAcceptFloodBounded(t *testing.T) {
	leak.Check(t)
	srv := New(Options{MaxHandshakes: 8, HandshakeTimeout: 150 * time.Millisecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	base := runtime.NumGoroutine()
	const flood = 64
	conns := make([]net.Conn, 0, flood)
	t.Cleanup(func() {
		for _, c := range conns {
			_ = c.Close()
		}
	})
	for i := 0; i < flood; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	// Let the accept loop admit what it can; with an unbounded accept
	// stage this would be ~flood new goroutines.
	time.Sleep(50 * time.Millisecond)
	if g := runtime.NumGoroutine(); g > base+8+4 {
		t.Errorf("flood of %d idle conns grew goroutines from %d to %d; want bounded by MaxHandshakes=8", flood, base, g)
	}

	// A real client queued behind the flood must be served once the
	// handshake timeout churns the idle conns out of the slots.
	c, err := proto.DialModeTimeout(srv.Addr(), proto.ModeAuto, 10*time.Second)
	if err != nil {
		t.Fatalf("client could not connect through the flood: %v", err)
	}
	defer c.Close()
	env, err := c.Request(proto.TQSub, proto.JobSpec{Name: "j", User: "u", Cores: 1, WallSecs: 60, Script: "sleep:1s"})
	if err != nil {
		t.Fatalf("qsub through the flood: %v", err)
	}
	var resp proto.QSubResp
	if err := env.Decode(&resp); err != nil || resp.JobID == 0 {
		t.Fatalf("qsub reply = %+v, %v", resp, err)
	}
}

// TestCloseUnsticksPendingHandshakes: connections parked in the
// handshake stage (no HandshakeTimeout to evict them) must be torn
// down by Close instead of wedging wg.Wait forever.
func TestCloseUnsticksPendingHandshakes(t *testing.T) {
	leak.Check(t)
	srv := New(Options{MaxHandshakes: 4})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		c, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
	}
	// Wait until all four occupy the handshake stage.
	waitFor(t, 2*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.pending) == 4
	}, "handshake slots filled")
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on connections parked in the handshake stage")
	}
}

// TestChaosMixedVersionMoms: a v1-pinned mom and a v2-negotiating mom
// work side by side against an auto-mode server, through a chaos proxy
// that severs every link mid-run. Both moms must reconnect (each
// keeping its own protocol version) and both jobs must complete.
func TestChaosMixedVersionMoms(t *testing.T) {
	leak.Check(t)
	srv := New(Options{
		Sched:        core.New(core.Options{}, 0),
		PollInterval: 20 * time.Millisecond,
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	proxy := chaos.New(srv.Addr(), chaos.Options{})
	if err := proxy.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(proxy.Close)

	mkMom := func(name string, mode proto.Mode) *mom.Mom {
		m := mom.New(name, 4)
		m.Proto = mode
		m.AutoReconnect = true
		m.ReconnectBase = 50 * time.Millisecond
		m.ReconnectMax = 200 * time.Millisecond
		if err := m.Start("127.0.0.1:0", proxy.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
		return m
	}
	mkMom("v1node", proto.ModeV1)
	mkMom("v2node", proto.ModeAuto)

	version := func(name string) int {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		ni := srv.nodes[name]
		if ni == nil || ni.conn == nil {
			return 0
		}
		return ni.conn.Version()
	}
	waitFor(t, 5*time.Second, func() bool {
		return version("v1node") != 0 && version("v2node") != 0
	}, "both moms registered")
	if v := version("v1node"); v != proto.V1 {
		t.Errorf("v1-pinned mom negotiated version %d, want %d", v, proto.V1)
	}
	if v := version("v2node"); v != proto.V2 {
		t.Errorf("auto mom negotiated version %d, want %d", v, proto.V2)
	}

	var ids []int
	for i := 0; i < 2; i++ {
		id, err := srv.QSub(proto.JobSpec{
			Name: fmt.Sprintf("mix%d", i), User: "u", Cores: 4, WallSecs: 60, Script: "sleep:300ms",
		})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	for _, id := range ids {
		id := id
		waitFor(t, 5*time.Second, func() bool { return jobState(srv, id) == "running" }, "job running")
	}

	// Cut every link. The moms reconnect through the proxy — completion
	// reports ride the outbox replay — and each must come back speaking
	// the same protocol version it started with.
	proxy.SeverAll()
	for _, id := range ids {
		id := id
		waitFor(t, 15*time.Second, func() bool { return jobState(srv, id) == "completed" }, "job completed across the severance")
	}
	if v := version("v1node"); v != proto.V1 {
		t.Errorf("v1-pinned mom reconnected with version %d, want %d", v, proto.V1)
	}
	if v := version("v2node"); v != proto.V2 {
		t.Errorf("auto mom reconnected with version %d, want %d", v, proto.V2)
	}
}
