package serverd

import (
	"context"
	"fmt"
	"repro/internal/testutil/leak"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/tm"
)

// liveCluster spins up a server (embedded scheduler) and n moms on
// loopback, and tears everything down with the test.
func liveCluster(t *testing.T, n, coresPerNode int) *Server {
	t.Helper()
	sched := core.New(core.Options{}, 0)
	srv := New(Options{Sched: sched, PollInterval: 20 * time.Millisecond})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	for i := 0; i < n; i++ {
		m := mom.New(fmt.Sprintf("node%d", i), coresPerNode)
		if err := m.Start("127.0.0.1:0", srv.Addr()); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(m.Close)
	}
	waitFor(t, time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.nodes) == n
	}, "moms registered")
	return srv
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func jobState(srv *Server, id int) string {
	for _, j := range srv.QStat().Jobs {
		if j.ID == id {
			return j.State
		}
	}
	return ""
}

func TestLiveJobLifecycle(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 2, 8)
	id, err := srv.QSub(proto.JobSpec{
		Name: "hello", User: "alice", Cores: 12, WallSecs: 60, Script: "sleep:50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "completed" }, "job completion")
	jobs := srv.Recorder().Jobs()
	if len(jobs) != 1 || jobs[0].User != "alice" || jobs[0].Cores != 12 {
		t.Errorf("metrics = %+v", jobs)
	}
	// Resources released.
	stat := srv.QStat()
	for _, n := range stat.Nodes {
		if n.Used != 0 {
			t.Errorf("node %s still has %d used cores", n.Name, n.Used)
		}
	}
}

func TestLiveQSubValidation(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	if _, err := srv.QSub(proto.JobSpec{User: "u", WallSecs: 10, Script: "sleep:1ms"}); err == nil {
		t.Error("zero-core job must be rejected")
	}
	if _, err := srv.QSub(proto.JobSpec{User: "u", Cores: 4, Script: "sleep:1ms"}); err == nil {
		t.Error("missing walltime must be rejected")
	}
}

func TestLiveClientProtocol(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	// qsub over TCP.
	c, err := proto.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	env, err := c.Request(proto.TQSub, proto.JobSpec{
		Name: "tcp", User: "bob", Cores: 4, WallSecs: 60, Script: "sleep:30ms",
	})
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	var resp proto.QSubResp
	if err := env.Decode(&resp); err != nil || resp.Error != "" || resp.JobID == 0 {
		t.Fatalf("qsub resp = %+v, %v", resp, err)
	}
	// qstat over TCP.
	c2, _ := proto.Dial(srv.Addr())
	env2, err := c2.Request(proto.TQStat, nil)
	c2.Close()
	if err != nil || env2.Type != proto.TQStatResp {
		t.Fatalf("qstat: %v %v", env2, err)
	}
	var stat proto.QStatResp
	if err := env2.Decode(&stat); err != nil || len(stat.Jobs) != 1 || len(stat.Nodes) != 1 {
		t.Fatalf("stat = %+v", stat)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, resp.JobID) == "completed" }, "tcp job done")
}

func TestLiveQDel(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	id, err := srv.QSub(proto.JobSpec{
		Name: "victim", User: "u", Cores: 8, WallSecs: 600, Script: "sleep:10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "running" }, "job start")
	c, _ := proto.Dial(srv.Addr())
	if _, err := c.Request(proto.TQDel, proto.QDelReq{JobID: id}); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "cancelled" }, "job cancelled")
	stat := srv.QStat()
	for _, n := range stat.Nodes {
		if n.Used != 0 {
			t.Errorf("cancelled job left %d cores on %s", n.Used, n.Name)
		}
	}
}

func TestLiveDynGetGrantAndJoin(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 3, 8)
	gotHosts := make(chan []proto.HostSlice, 1)
	mom.RegisterGoApp("grower-test", func(ctx context.Context, tmc *tm.Context) error {
		hosts, err := tmc.DynGet(10) // must span at least two more nodes
		if err != nil {
			return err
		}
		gotHosts <- hosts
		time.Sleep(30 * time.Millisecond)
		return nil
	})
	id, err := srv.QSub(proto.JobSpec{
		Name: "F.live", User: "user06", Cores: 8, WallSecs: 120,
		Script: "go:grower-test", Evolving: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var hosts []proto.HostSlice
	select {
	case hosts = <-gotHosts:
	case <-time.After(5 * time.Second):
		t.Fatal("tm_dynget round trip timed out")
	}
	total := 0
	for _, h := range hosts {
		total += h.Cores
		if h.Addr == "" || h.Node == "" {
			t.Errorf("host slice missing address: %+v", h)
		}
	}
	if total != 10 {
		t.Errorf("granted cores = %d, want 10", total)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "completed" }, "evolving job completion")
	rec := srv.Recorder().Jobs()
	if len(rec) != 1 || !rec[0].DynGranted || !rec[0].Evolving {
		t.Errorf("record = %+v", rec)
	}
	if rec[0].Cores != 18 {
		t.Errorf("final cores = %d, want 18", rec[0].Cores)
	}
}

func TestLiveDynGetRejected(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	verdict := make(chan error, 1)
	mom.RegisterGoApp("greedy-test", func(ctx context.Context, tmc *tm.Context) error {
		_, err := tmc.DynGet(100) // impossible on an 8-core cluster
		verdict <- err
		return nil
	})
	if _, err := srv.QSub(proto.JobSpec{
		Name: "greedy", User: "u", Cores: 8, WallSecs: 60,
		Script: "go:greedy-test", Evolving: true,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-verdict:
		if !tm.IsRejected(err) {
			t.Errorf("want Rejected error, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("verdict timed out")
	}
}

func TestLiveDynFree(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 2, 8)
	freed := make(chan error, 1)
	mom.RegisterGoApp("releaser-test", func(ctx context.Context, tmc *tm.Context) error {
		hosts, err := tmc.DynGet(8)
		if err != nil {
			freed <- err
			return err
		}
		err = tmc.DynFree(hosts)
		freed <- err
		time.Sleep(30 * time.Millisecond)
		return nil
	})
	id, err := srv.QSub(proto.JobSpec{
		Name: "rel", User: "u", Cores: 8, WallSecs: 120,
		Script: "go:releaser-test", Evolving: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-freed:
		if err != nil {
			t.Fatalf("dynfree: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("dynfree timed out")
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "completed" }, "job completion")
	stat := srv.QStat()
	for _, n := range stat.Nodes {
		if n.Used != 0 {
			t.Errorf("node %s leaked %d cores", n.Name, n.Used)
		}
	}
}

func TestLiveWalltimeEnforcement(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	id, err := srv.QSub(proto.JobSpec{
		Name: "overrun", User: "u", Cores: 8, WallSecs: 1, Script: "sleep:1h",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return jobState(srv, id) == "cancelled" }, "walltime kill")
	stat := srv.QStat()
	for _, n := range stat.Nodes {
		if n.Used != 0 {
			t.Errorf("killed job left cores on %s", n.Name)
		}
	}
}

func TestLiveQueueingAndBackfill(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 2, 8)
	// Fill the cluster, then queue a big job and a small one that
	// backfills.
	id1, _ := srv.QSub(proto.JobSpec{Name: "hold", User: "a", Cores: 16, WallSecs: 2, Script: "sleep:300ms"})
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id1) == "running" }, "holder running")
	id2, _ := srv.QSub(proto.JobSpec{Name: "big", User: "b", Cores: 16, WallSecs: 60, Script: "sleep:50ms"})
	id3, _ := srv.QSub(proto.JobSpec{Name: "small", User: "c", Cores: 16, WallSecs: 1, Script: "sleep:20ms"})
	waitFor(t, 10*time.Second, func() bool {
		return jobState(srv, id2) == "completed" && jobState(srv, id3) == "completed"
	}, "queued jobs completion")
}

// TestLiveNegotiationTimeout exercises the negotiation protocol over
// real sockets: the first request waits out a blocker and is granted;
// the second expires at its deadline with a rejection.
func TestLiveNegotiationTimeout(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 2, 8)
	granted := make(chan error, 1)
	mom.RegisterGoApp("negotiator-live", func(ctx context.Context, tmc *tm.Context) error {
		// The whole second node is busy for ~300 ms; a 5 s negotiation
		// window is plenty.
		_, err := tmc.DynGetTimeout(8, 5*time.Second)
		granted <- err
		time.Sleep(20 * time.Millisecond)
		return nil
	})
	blockID, err := srv.QSub(proto.JobSpec{
		Name: "blk", User: "x", Cores: 8, WallSecs: 60, Script: "sleep:300ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, blockID) == "running" }, "blocker running")
	id, err := srv.QSub(proto.JobSpec{
		Name: "neg", User: "u", Cores: 8, WallSecs: 60,
		Script: "go:negotiator-live", Evolving: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-granted:
		if err != nil {
			t.Fatalf("negotiable request should be granted after the blocker ends: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("negotiation timed out")
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "completed" }, "job completion")

	// Expiry path: a permanent blocker and a 1 s window.
	srv2 := liveCluster(t, 1, 8)
	verdict := make(chan error, 1)
	mom.RegisterGoApp("negotiator-expire", func(ctx context.Context, tmc *tm.Context) error {
		_, err := tmc.DynGetTimeout(100, time.Second)
		verdict <- err
		return nil
	})
	if _, err := srv2.QSub(proto.JobSpec{
		Name: "neg2", User: "u", Cores: 8, WallSecs: 60,
		Script: "go:negotiator-expire", Evolving: true,
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-verdict:
		if !tm.IsRejected(err) {
			t.Fatalf("want deadline rejection, got %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("expiry verdict never arrived")
	}
}
