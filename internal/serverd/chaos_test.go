package serverd

import (
	"context"
	"fmt"
	"net"
	"repro/internal/testutil/leak"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/rms"
	"repro/internal/tm"
)

// failoverCluster is liveCluster with failure detection turned on and
// access to the mom handles, so tests can kill and restart daemons.
func failoverCluster(t *testing.T, n, coresPerNode int, opts Options, tune func(*mom.Mom)) (*Server, []*mom.Mom) {
	t.Helper()
	if opts.Sched == nil {
		opts.Sched = core.New(core.Options{}, 0)
	}
	if opts.PollInterval == 0 {
		opts.PollInterval = 20 * time.Millisecond
	}
	srv := New(opts)
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	moms := make([]*mom.Mom, n)
	for i := range moms {
		m := mom.New(fmt.Sprintf("fnode%d", i), coresPerNode)
		if tune != nil {
			tune(m)
		}
		if err := m.Start("127.0.0.1:0", srv.Addr()); err != nil {
			t.Fatal(err)
		}
		moms[i] = m
		t.Cleanup(m.Close)
	}
	waitFor(t, time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.nodes) == n
	}, "moms registered")
	return srv, moms
}

func msNodeOf(t *testing.T, srv *Server, id int) string {
	t.Helper()
	srv.mu.Lock()
	defer srv.mu.Unlock()
	ji := srv.jobs[id]
	if ji == nil {
		t.Fatalf("job %d unknown", id)
	}
	return ji.msNode
}

func momByName(t *testing.T, moms []*mom.Mom, name string) *mom.Mom {
	t.Helper()
	for _, m := range moms {
		if m.Name() == name {
			return m
		}
	}
	t.Fatalf("no mom named %s", name)
	return nil
}

func nodeState(srv *Server, name string) string {
	for _, n := range srv.QStat().Nodes {
		if n.Name == name {
			return n.State
		}
	}
	return ""
}

// TestChaosMomKilledMidJobCancel: the mother superior dies while its
// job runs. The heartbeat monitor must declare the node down and the
// default failure policy must cancel the job, releasing every core.
func TestChaosMomKilledMidJobCancel(t *testing.T) {
	leak.Check(t)
	srv, moms := failoverCluster(t, 2, 8,
		Options{HeartbeatInterval: 25 * time.Millisecond},
		func(m *mom.Mom) { m.HeartbeatInterval = 10 * time.Millisecond })
	id, err := srv.QSub(proto.JobSpec{
		Name: "victim", User: "u", Cores: 8, WallSecs: 600, Script: "sleep:10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "running" }, "job start")
	ms := msNodeOf(t, srv, id)
	momByName(t, moms, ms).Close()

	waitFor(t, 5*time.Second, func() bool { return jobState(srv, id) == "cancelled" }, "failure-policy cancel")
	waitFor(t, 5*time.Second, func() bool { return nodeState(srv, ms) == "down" }, "node declared down")
	for _, n := range srv.QStat().Nodes {
		if n.Used != 0 {
			t.Errorf("node %s leaked %d cores after failure", n.Name, n.Used)
		}
	}
	srv.mu.Lock()
	ji := srv.jobs[id]
	if ji.negTimer != nil {
		t.Error("cancelled job still holds a negotiation timer")
	}
	srv.mu.Unlock()
}

// TestChaosMomKilledMidJobRequeue: with FailRequeue the job must
// restart from scratch on the surviving node and complete.
func TestChaosMomKilledMidJobRequeue(t *testing.T) {
	leak.Check(t)
	srv, moms := failoverCluster(t, 2, 8,
		Options{HeartbeatInterval: 25 * time.Millisecond, FailurePolicy: rms.FailRequeue},
		func(m *mom.Mom) { m.HeartbeatInterval = 10 * time.Millisecond })
	id, err := srv.QSub(proto.JobSpec{
		Name: "phoenix", User: "u", Cores: 8, WallSecs: 600, Script: "sleep:150ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "running" }, "job start")
	first := msNodeOf(t, srv, id)
	momByName(t, moms, first).Close()

	waitFor(t, 10*time.Second, func() bool { return jobState(srv, id) == "completed" }, "requeued job completion")
	if st := nodeState(srv, first); st != "down" {
		t.Errorf("failed node state = %s, want down", st)
	}
	srv.mu.Lock()
	second := srv.jobs[id].msNode
	srv.mu.Unlock()
	if second == first {
		t.Errorf("job restarted on the dead node %s", first)
	}
	for _, n := range srv.QStat().Nodes {
		if n.Used != 0 {
			t.Errorf("node %s leaked %d cores", n.Name, n.Used)
		}
	}
}

// TestChaosMomKilledWithPendingDyn: a mom dies while its job's
// negotiable dynamic request is parked. The request (and its deadline
// timer) must be dropped with the job, and the in-process application
// must be unblocked rather than left waiting forever.
func TestChaosMomKilledWithPendingDyn(t *testing.T) {
	leak.Check(t)
	srv, moms := failoverCluster(t, 2, 8,
		Options{HeartbeatInterval: 25 * time.Millisecond},
		func(m *mom.Mom) { m.HeartbeatInterval = 10 * time.Millisecond })
	verdict := make(chan error, 1)
	mom.RegisterGoApp("doomed-negotiator", func(ctx context.Context, tmc *tm.Context) error {
		_, err := tmc.DynGetTimeout(100, 30*time.Second) // impossible: stays pending
		verdict <- err
		return nil
	})
	id, err := srv.QSub(proto.JobSpec{
		Name: "doomed", User: "u", Cores: 8, WallSecs: 600,
		Script: "go:doomed-negotiator", Evolving: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.dyn) == 1
	}, "dyn request parked")
	ms := msNodeOf(t, srv, id)
	momByName(t, moms, ms).Close()

	waitFor(t, 5*time.Second, func() bool { return jobState(srv, id) == "cancelled" }, "job cancelled")
	srv.mu.Lock()
	pending := len(srv.dyn)
	leaked := srv.jobs[id].negTimer != nil
	srv.mu.Unlock()
	if pending != 0 {
		t.Errorf("%d dyn requests survived the node failure", pending)
	}
	if leaked {
		t.Error("negotiation timer leaked past node failure")
	}
	select {
	case err := <-verdict:
		if err == nil {
			t.Error("application got a grant from a dead system")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("application still blocked after its mom died")
	}
}

// TestChaosReRegistrationRepairsNode: a node declared down comes back
// (a fresh mom with the same name) and must be schedulable again.
func TestChaosReRegistrationRepairsNode(t *testing.T) {
	leak.Check(t)
	srv, moms := failoverCluster(t, 1, 8,
		Options{HeartbeatInterval: 20 * time.Millisecond},
		func(m *mom.Mom) { m.HeartbeatInterval = 10 * time.Millisecond })
	id, err := srv.QSub(proto.JobSpec{
		Name: "casualty", User: "u", Cores: 8, WallSecs: 600, Script: "sleep:10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "running" }, "job start")
	moms[0].Close()
	waitFor(t, 5*time.Second, func() bool { return nodeState(srv, "fnode0") == "down" }, "node down")
	waitFor(t, 5*time.Second, func() bool { return jobState(srv, id) == "cancelled" }, "job cancelled")

	replacement := mom.New("fnode0", 8)
	replacement.HeartbeatInterval = 10 * time.Millisecond
	if err := replacement.Start("127.0.0.1:0", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(replacement.Close)
	waitFor(t, 5*time.Second, func() bool { return nodeState(srv, "fnode0") == "up" }, "node repaired")

	id2, err := srv.QSub(proto.JobSpec{
		Name: "after", User: "u", Cores: 8, WallSecs: 60, Script: "sleep:30ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return jobState(srv, id2) == "completed" }, "job on repaired node")
}

// TestChaosVerdictBufferedAndReplayed: the server grants a dynamic
// request while the mother superior's link is down. The verdict must
// be buffered and replayed after the mom auto-reconnects, resolving
// the application's parked tm_dynget with the real grant.
func TestChaosVerdictBufferedAndReplayed(t *testing.T) {
	leak.Check(t)
	srv, _ := failoverCluster(t, 2, 8, Options{}, func(m *mom.Mom) {
		m.AutoReconnect = true
		m.ReconnectBase = 150 * time.Millisecond
		m.ReconnectMax = 300 * time.Millisecond
	})
	gotHosts := make(chan []proto.HostSlice, 1)
	failed := make(chan error, 1)
	mom.RegisterGoApp("patient-grower", func(ctx context.Context, tmc *tm.Context) error {
		hosts, err := tmc.DynGetTimeout(8, 10*time.Second)
		if err != nil {
			failed <- err
			return err
		}
		gotHosts <- hosts
		return nil
	})
	// Fill half the cluster first so the dynget below cannot be granted
	// until the blocker goes away.
	blocker, err := srv.QSub(proto.JobSpec{
		Name: "blk", User: "x", Cores: 8, WallSecs: 600, Script: "sleep:10m",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, blocker) == "running" }, "blocker running")
	id, err := srv.QSub(proto.JobSpec{
		Name: "grow", User: "u", Cores: 8, WallSecs: 600,
		Script: "go:patient-grower", Evolving: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool {
		st := jobState(srv, id)
		return st == "running" || st == "dynqueued"
	}, "job start")
	ms := msNodeOf(t, srv, id)
	waitFor(t, 5*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.dyn) == 1
	}, "dyn request parked")

	// Cut the mother superior's link server-side (the mom will notice
	// the EOF and start its reconnect loop), then free capacity so the
	// grant is decided while the link is down.
	srv.mu.Lock()
	ni := srv.nodes[ms]
	link := ni.conn
	srv.mu.Unlock()
	_ = link.Close()
	waitFor(t, 3*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return ni.conn == nil || ni.conn != link
	}, "server noticed the dead link")
	srv.QDel(blocker)
	waitFor(t, 3*time.Second, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(ni.verdicts) == 1
	}, "verdict buffered while link down")

	select {
	case hosts := <-gotHosts:
		total := 0
		for _, h := range hosts {
			total += h.Cores
		}
		if total != 8 {
			t.Errorf("replayed grant = %d cores, want 8", total)
		}
	case err := <-failed:
		t.Fatalf("dynget failed instead of surviving the outage: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("verdict never replayed after reconnect")
	}
	srv.mu.Lock()
	left := len(ni.verdicts)
	srv.mu.Unlock()
	if left != 0 {
		t.Errorf("%d verdicts still buffered after replay", left)
	}
	waitFor(t, 5*time.Second, func() bool { return jobState(srv, id) == "completed" }, "job completion")
}

// TestChaosTMRetryAcrossMomRestart: with Retries set, a TM call made
// while the mom is down keeps re-dialing with backoff and succeeds
// once a mom is listening again; with the zero default it fails fast.
func TestChaosTMRetryAcrossMomRestart(t *testing.T) {
	leak.Check(t)
	srv, _ := failoverCluster(t, 1, 8, Options{}, nil)
	// Reserve a loopback port, then free it: this is where the
	// "restarted" mom will come up.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	// Fail-fast default: nothing listens there.
	quick := &tm.Context{JobID: 1, MomAddr: addr}
	if err := quick.Done(nil); err == nil {
		t.Fatal("Done against a dead mom with Retries=0 must fail")
	}

	patient := &tm.Context{JobID: 1, MomAddr: addr, Retries: 40, RetryBase: 25 * time.Millisecond}
	result := make(chan error, 1)
	go func() { result <- patient.Done(nil) }()

	late := mom.New("fnode-late", 4)
	if err := late.Start(addr, srv.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(late.Close)

	select {
	case err := <-result:
		if err != nil {
			t.Fatalf("retrying TM call failed across the restart: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("retrying TM call never completed")
	}
}

// TestDynNegotiationTimerReleased is the regression test for the
// leaked negotiation-deadline timer: once a negotiable request is
// granted, the AfterFunc must be stopped and dropped so no late
// rejection can fire at the original deadline.
func TestDynNegotiationTimerReleased(t *testing.T) {
	leak.Check(t)
	srv, _ := failoverCluster(t, 2, 8, Options{}, nil)
	granted := make(chan error, 1)
	mom.RegisterGoApp("timer-check", func(ctx context.Context, tmc *tm.Context) error {
		_, err := tmc.DynGetTimeout(8, 1*time.Second)
		granted <- err
		// Stay alive past the original deadline so a leaked timer
		// firing would hit a running job.
		select {
		case <-time.After(1500 * time.Millisecond):
		case <-ctx.Done():
		}
		return nil
	})
	blocker, err := srv.QSub(proto.JobSpec{
		Name: "blk", User: "x", Cores: 8, WallSecs: 60, Script: "sleep:200ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, blocker) == "running" }, "blocker running")
	id, err := srv.QSub(proto.JobSpec{
		Name: "neg", User: "u", Cores: 8, WallSecs: 60,
		Script: "go:timer-check", Evolving: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-granted:
		if err != nil {
			t.Fatalf("negotiable request not granted: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("grant timed out")
	}
	srv.mu.Lock()
	leaked := srv.jobs[id].negTimer != nil
	srv.mu.Unlock()
	if leaked {
		t.Fatal("negotiation timer still armed after the request was granted")
	}
	// Ride past the original 1s deadline: the job must complete
	// normally, not get clipped by a late rejection.
	waitFor(t, 10*time.Second, func() bool { return jobState(srv, id) == "completed" }, "job completion past deadline")
}

// TestChaosHeartbeatKeepsIdleNodeAlive: an idle mom (no jobs, no
// traffic) must stay up as long as it heartbeats, and a silent one
// (beacons disabled) must be declared down — the detector keys on
// liveness, not activity.
func TestChaosHeartbeatKeepsIdleNodeAlive(t *testing.T) {
	leak.Check(t)
	srv, _ := failoverCluster(t, 2, 8,
		Options{HeartbeatInterval: 25 * time.Millisecond},
		func(m *mom.Mom) {
			if m.Name() == "fnode0" {
				m.HeartbeatInterval = 10 * time.Millisecond
			} // fnode1 sends no beacons
		})
	waitFor(t, 5*time.Second, func() bool { return nodeState(srv, "fnode1") == "down" }, "silent node declared down")
	// The beaconing node must still be up well past several windows.
	time.Sleep(200 * time.Millisecond)
	if st := nodeState(srv, "fnode0"); st != "up" {
		t.Errorf("heartbeating idle node state = %s, want up", st)
	}
}
