package serverd

import (
	"context"
	"fmt"
	"math/rand"
	"repro/internal/testutil/leak"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/mom"
	"repro/internal/proto"
	"repro/internal/tm"
)

// TestLiveMiniESP runs a scaled-down dynamic-ESP-style workload on the
// real daemon stack in real time: a mix of rigid sleepers and evolving
// applications that request extra cores at ~16% of their runtime and
// retry once on rejection — the paper's §IV-B behaviour over actual
// sockets. Asserts full completion, at least one grant, at least one
// retry path exercised, and zero resource leakage.
func TestLiveMiniESP(t *testing.T) {
	leak.Check(t)
	if testing.Short() {
		t.Skip("real-time workload")
	}
	srv := liveCluster(t, 4, 8) // 32 cores

	const (
		rigidJobs    = 14
		evolvingJobs = 6
	)
	var grants, rejects atomic.Int32
	var wg sync.WaitGroup

	// Each evolving app: run ~16% of its runtime, request 4 cores,
	// retry at ~25% if rejected, finish early if granted.
	for i := 0; i < evolvingJobs; i++ {
		name := fmt.Sprintf("mini-esp-evolving-%d-%d", i, time.Now().UnixNano())
		runtime := 300 * time.Millisecond
		mom.RegisterGoApp(name, func(ctx context.Context, tmc *tm.Context) error {
			time.Sleep(runtime * 16 / 100)
			hosts, err := tmc.DynGet(4)
			if err != nil {
				if !tm.IsRejected(err) {
					return err
				}
				time.Sleep(runtime * 9 / 100)
				hosts, err = tmc.DynGet(4) // second chance (25% point)
			}
			if err == nil {
				grants.Add(1)
				defer func() { _ = tmc.DynFree(hosts) }()
				time.Sleep(runtime / 2) // accelerated tail
				return nil
			}
			rejects.Add(1)
			time.Sleep(runtime * 3 / 4) // full static tail
			return nil
		})
		wg.Add(1)
		go func(name string, delay time.Duration) {
			defer wg.Done()
			time.Sleep(delay)
			_, err := srv.QSub(proto.JobSpec{
				Name: name, User: "user06", Cores: 6, WallSecs: 60,
				Script: "go:" + name, Evolving: true,
			})
			if err != nil {
				t.Errorf("qsub %s: %v", name, err)
			}
		}(name, time.Duration(i)*40*time.Millisecond)
	}

	rng := rand.New(rand.NewSource(42))
	for i := 0; i < rigidJobs; i++ {
		wg.Add(1)
		go func(i int, delay time.Duration, cores int, ms int) {
			defer wg.Done()
			time.Sleep(delay)
			_, err := srv.QSub(proto.JobSpec{
				Name: fmt.Sprintf("rigid-%d", i), User: fmt.Sprintf("user%02d", i%5),
				Cores: cores, WallSecs: 60,
				Script: fmt.Sprintf("sleep:%dms", ms),
			})
			if err != nil {
				t.Errorf("qsub rigid-%d: %v", i, err)
			}
		}(i, time.Duration(rng.Intn(300))*time.Millisecond, 2+rng.Intn(10), 50+rng.Intn(250))
	}
	wg.Wait()

	// Everything completes.
	waitFor(t, 30*time.Second, func() bool {
		st := srv.QStat()
		if len(st.Jobs) != rigidJobs+evolvingJobs {
			return false
		}
		for _, j := range st.Jobs {
			if j.State != "completed" {
				return false
			}
		}
		return true
	}, "mini-ESP workload completion")

	if grants.Load() == 0 {
		t.Error("no dynamic request was ever granted")
	}
	t.Logf("mini-ESP: %d grants, %d final rejections", grants.Load(), rejects.Load())

	// No leaked cores or stuck requests.
	st := srv.QStat()
	for _, n := range st.Nodes {
		if n.Used != 0 {
			t.Errorf("node %s leaked %d cores", n.Name, n.Used)
		}
	}
	// Metrics recorded every job with sane timelines.
	recs := srv.Recorder().Jobs()
	if len(recs) != rigidJobs+evolvingJobs {
		t.Errorf("metrics rows = %d", len(recs))
	}
	for _, r := range recs {
		if r.Start < r.Submit || r.End < r.Start {
			t.Errorf("job %v timeline %v/%v/%v", r.ID, r.Submit, r.Start, r.End)
		}
	}
}
