// Package serverd implements the live batch server daemon (the
// pbs_server analog): it accepts mom registrations, client commands
// (qsub/qstat/qdel) and forwarded dynamic requests over TCP, tracks
// the cluster and job state, and drives the scheduler — either the
// embedded one (default) or an external Maui-analog daemon speaking
// the sched.pull/sched.commit protocol (see internal/mauid).
//
// The scheduler code is exactly internal/core — the same code the
// simulator runs; only this ResourceManager implementation differs:
// StartJob sends RunJob to the job's mother superior, GrantDyn answers
// the forwarded tm_dynget with the new hostlist.
package serverd

import (
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/fairtree"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/proto"
	"repro/internal/rms"
	"repro/internal/sim"
)

// Options configures a server daemon.
type Options struct {
	// Sched is the scheduler to embed. Nil disables the embedded
	// scheduler (external-scheduler mode: a mauid daemon must drive
	// scheduling via the sched protocol).
	Sched *core.Scheduler
	// PollInterval bounds the embedded scheduler's idle period.
	PollInterval time.Duration
	// HeartbeatInterval enables failure detection: a mom whose last
	// message (heartbeat or otherwise) is older than
	// HeartbeatMisses×HeartbeatInterval is declared down, its node is
	// marked Down, and every affected job is routed through
	// FailurePolicy — the live analog of the simulator's
	// rms.FailNode. Zero (the default) disables detection entirely;
	// the failure layer is inert.
	HeartbeatInterval time.Duration
	// HeartbeatMisses is how many whole intervals may pass silently
	// before a node is declared down (default 3).
	HeartbeatMisses int
	// FailurePolicy selects what happens to jobs that lose cores when
	// a node dies: rms.FailCancel (default) kills them, rms.FailRequeue
	// restarts them from scratch on the surviving nodes — the paper's
	// "allocating spare nodes to affected jobs" path.
	FailurePolicy rms.FailurePolicy
	// HandshakeTimeout bounds how long an inbound connection may take
	// to deliver its first message before being dropped, so a hung or
	// byte-dribbling peer cannot pin an accept goroutine forever.
	// Zero disables the deadline.
	HandshakeTimeout time.Duration
	// ProtoMode selects the wire codec offered to inbound peers (see
	// proto.Mode): auto (the zero value) negotiates the binary v2
	// framing with new moms while still serving v1 JSON clients; v1
	// pins the JSON codec even for peers that propose v2.
	ProtoMode proto.Mode
	// MaxHandshakes bounds how many accepted connections may sit in the
	// pre-classification stage (version handshake + first message) at
	// once (default 256). A connect flood queues in the kernel accept
	// backlog instead of spawning an unbounded goroutine per SYN.
	MaxHandshakes int
	// IngestWorkers sizes the shared pool that applies mom messages
	// (job completions, dynamic requests) to server state (default 4).
	// Per-mom ordering is preserved by sharding on node id, so lock
	// contention scales with the pool size rather than the mom count.
	IngestWorkers int
	// BeaconRingSize is the capacity of the lock-free heartbeat ring
	// the monitor sweep drains in batch (default 65536, rounded up to
	// a power of two). A full ring falls back to locked stamping, so
	// undersizing costs throughput, never liveness.
	BeaconRingSize int
	// OnBeacon, when set, is called by the monitor sweep with the
	// sender-to-stamp latency of every heartbeat carrying a SentMS
	// wall clock — the soak test's measurement hook. Keep it cheap; it
	// runs on the monitor goroutine.
	OnBeacon func(lag time.Duration)
	// Verbose enables stderr logging.
	Verbose bool
}

// jobInfo is the server-side record of one job. The record lives in
// the jobs map and shares its lock: every mutable field is guarded by
// the server mutex, written from the scheduler loop, the ingest
// shards, and the walltime/negotiation timer callbacks.
type jobInfo struct {
	j         *job.Job
	spec      proto.JobSpec
	hosts     []proto.HostSlice // guarded by s.mu
	msNode    string            // guarded by s.mu: mother superior node name
	killTimer *time.Timer       // guarded by s.mu
	negTimer  *time.Timer       // guarded by s.mu: negotiation deadline; stopped when the dyn request resolves
	dynGrant  sim.Time          // guarded by s.mu
	granted   bool              // guarded by s.mu
	// fsID is the user's share-tree leaf, interned once at submit so
	// completion-path usage accounting is an O(1) sharded append
	// instead of a string-map lookup under the server mutex.
	fsID fairtree.NodeID
}

// nodeInfo mirrors one registered mom. Like jobInfo, the record is
// reached through an s.mu-guarded map and inherits that lock.
type nodeInfo struct {
	node     *cluster.Node
	addr     string      // guarded by s.mu
	conn     *proto.Conn // guarded by s.mu
	shard    int         // ingest worker index; fixed at first registration
	lastSeen sim.Time    // guarded by s.mu: server-virtual time of the last message from this mom
	// verdicts buffers dyn grant/reject answers that could not be
	// delivered (link down, send failure); they replay in order on
	// the mom's re-registration so a blocked tm_dynget always
	// resolves.
	verdicts []proto.DynGetResp // guarded by s.mu
}

// Server is the live daemon.
type Server struct {
	opts Options

	ln    net.Listener
	start time.Time

	// handshakes is the pre-classification semaphore: a slot is held
	// from accept until the connection's first message is dispatched.
	handshakes chan struct{}
	// beacons carries liveness observations from mom read loops to the
	// monitor sweep without touching s.mu. Nil when monitoring is off.
	beacons *beaconRing
	// ingest is the sharded work queue feeding the ingestLoop pool;
	// moms map to a fixed shard so their messages apply in order.
	ingest []chan func()

	mu       sync.Mutex
	cl       *cluster.Cluster         // guarded by mu
	nodes    map[string]*nodeInfo     // by node name; guarded by mu
	nodeByID map[int]*nodeInfo        // guarded by mu
	pending  map[*proto.Conn]struct{} // pre-classification conns; guarded by mu
	jobs     map[int]*jobInfo         // guarded by mu
	queued   []*job.Job               // guarded by mu //schedlint:epoch-guarded by bumpQueueLocked
	active   map[int]*job.Job         // guarded by mu //schedlint:epoch-guarded by bumpLocked
	dyn      []*job.DynRequest        // guarded by mu //schedlint:epoch-guarded by bumpLocked
	dynSeq   int                      // guarded by mu
	nextID   int                      // guarded by mu
	serial   uint64                   // guarded by mu
	qserial  uint64                   // guarded by mu
	rec      *metrics.Recorder        // guarded by mu

	kick   chan struct{}
	closed chan struct{} //schedlint:chan-owner Close
	wg     sync.WaitGroup
}

// New creates a server daemon.
func New(opts Options) *Server {
	if opts.PollInterval <= 0 {
		opts.PollInterval = 2 * time.Second
	}
	if opts.HeartbeatMisses <= 0 {
		opts.HeartbeatMisses = 3
	}
	if opts.MaxHandshakes <= 0 {
		opts.MaxHandshakes = 256
	}
	if opts.IngestWorkers <= 0 {
		opts.IngestWorkers = 4
	}
	if opts.BeaconRingSize <= 0 {
		opts.BeaconRingSize = 1 << 16
	}
	return &Server{
		opts:       opts,
		cl:         cluster.New(0, 0),
		nodes:      make(map[string]*nodeInfo),
		nodeByID:   make(map[int]*nodeInfo),
		jobs:       make(map[int]*jobInfo),
		active:     make(map[int]*job.Job),
		pending:    make(map[*proto.Conn]struct{}),
		handshakes: make(chan struct{}, opts.MaxHandshakes),
		nextID:     1,
		rec:        metrics.NewRecorder(0),
		kick:       make(chan struct{}, 1),
		closed:     make(chan struct{}),
	}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port).
func (s *Server) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	s.ln = ln
	s.start = time.Now() //lint:wallclock anchors the daemon's virtual clock at startup
	s.ingest = make([]chan func(), s.opts.IngestWorkers)
	for i := range s.ingest {
		s.ingest[i] = make(chan func(), 64)
		s.wg.Add(1)
		go s.ingestLoop(s.ingest[i])
	}
	if s.opts.HeartbeatInterval > 0 {
		s.beacons = newBeaconRing(s.opts.BeaconRingSize)
		s.wg.Add(1)
		go s.monitorLoop()
	}
	s.wg.Add(1)
	go s.acceptLoop()
	if s.opts.Sched != nil {
		s.wg.Add(1)
		go s.schedLoop()
	}
	return nil
}

// Addr returns the listen address.
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close shuts the daemon down.
func (s *Server) Close() {
	select {
	case <-s.closed:
		return
	default:
		close(s.closed)
	}
	if s.ln != nil {
		s.ln.Close()
	}
	s.mu.Lock()
	for _, n := range s.nodes {
		if n.conn != nil {
			_ = n.conn.Close()
		}
	}
	// Connections still in the handshake stage (a flood that never
	// spoke, a peer mid-negotiation) would otherwise keep their read
	// loops — and wg.Wait — alive past HandshakeTimeout.
	for c := range s.pending {
		_ = c.Close()
	}
	for _, ji := range s.jobs {
		if ji.killTimer != nil {
			ji.killTimer.Stop()
		}
		if ji.negTimer != nil {
			ji.negTimer.Stop()
		}
	}
	s.mu.Unlock()
	s.wg.Wait()
}

// now returns the virtual-time view of the wall clock: milliseconds
// since server start, which is what the shared scheduler core plans in.
//
//lint:wallclock the daemon's virtual time is real time elapsed since Start
func (s *Server) now() sim.Time { return sim.FromReal(time.Since(s.start)) }

func (s *Server) logf(format string, args ...any) {
	if s.opts.Verbose {
		fmt.Fprintf(os.Stderr, "serverd "+format+"\n", args...)
	}
}

// Kick requests a scheduling cycle (state changed).
func (s *Server) Kick() {
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// bumpLocked advances the state epoch (the snapshot serial). Caller
// holds s.mu.
func (s *Server) bumpLocked() { s.serial++ }

// bumpQueueLocked advances both epochs: a queue-membership change also
// invalidates state-level caches, never the other way round. Caller
// holds s.mu.
//
//schedlint:epoch-bump subsumes bumpLocked
func (s *Server) bumpQueueLocked() {
	s.serial++
	s.qserial++
}

// reply delivers a best-effort response on a transient client
// connection and closes it; a qsub/qstat client vanishing mid-reply
// is routine, so failures are logged rather than propagated.
func (s *Server) reply(c *proto.Conn, t proto.MsgType, payload any) {
	if err := c.Send(t, payload); err != nil {
		s.logf("reply %s: %v", t, err)
	}
	if err := c.Close(); err != nil {
		s.logf("close after %s: %v", t, err)
	}
}

// sendMomLocked ships one message to a registered mom's persistent
// link, logging failures; the registerMom Recv loop owns link teardown.
// Caller holds s.mu.
func (s *Server) sendMomLocked(ni *nodeInfo, t proto.MsgType, payload any) {
	if ni == nil || ni.conn == nil {
		return
	}
	if err := ni.conn.Send(t, payload); err != nil {
		s.logf("mom %s send %s: %v", ni.node.Name, t, err)
	}
}

// acceptLoop classifies inbound connections by their first message.
// The handshake semaphore bounds the pre-classification stage: when
// MaxHandshakes peers are already mid-handshake, further connects wait
// in the kernel accept backlog instead of each getting a goroutine.
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return
		}
		select {
		case s.handshakes <- struct{}{}:
		case <-s.closed:
			_ = c.Close()
			return
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handleConn(proto.NewConn(c))
		}()
	}
}

func (s *Server) handleConn(c *proto.Conn) {
	released := false
	release := func() {
		if !released {
			released = true
			<-s.handshakes
		}
	}
	defer release()
	if !s.trackConn(c) {
		_ = c.Close() // raced shutdown
		return
	}
	defer s.untrackConn(c)
	// A peer that connects and then stalls must not pin this goroutine:
	// the version handshake and first message both have to arrive
	// within the handshake window.
	c.SetReadTimeout(s.opts.HandshakeTimeout)
	if err := c.AcceptHandshake(s.opts.ProtoMode); err != nil {
		_ = c.Close()
		return
	}
	env, err := c.Recv()
	if err != nil {
		_ = c.Close()
		return
	}
	//schedlint:dispatch server.conn
	switch env.Type {
	case proto.TRegister:
		var req proto.RegisterReq
		if err := env.Decode(&req); err != nil {
			_ = c.Close()
			return
		}
		// The mom link is persistent and heartbeat-monitored: the
		// per-message read deadline comes off, and the handshake slot
		// frees up before the long-lived read loop starts.
		c.SetReadTimeout(0)
		release()
		s.registerMom(c, req) // takes ownership, runs the mom read loop
	case proto.TQSub:
		var spec proto.JobSpec
		if err := env.Decode(&spec); err != nil {
			s.reply(c, proto.TQSubResp, proto.QSubResp{Error: err.Error()})
		} else {
			id, err := s.QSub(spec)
			resp := proto.QSubResp{JobID: id}
			if err != nil {
				resp.Error = err.Error()
			}
			s.reply(c, proto.TQSubResp, resp)
		}
	case proto.TQStat:
		s.reply(c, proto.TQStatResp, s.QStat())
	case proto.TQDel:
		var req proto.QDelReq
		if err := env.Decode(&req); err == nil {
			s.QDel(req.JobID)
		}
		s.reply(c, proto.TOK, nil)
	case proto.TSchedPull:
		s.reply(c, proto.TSchedState, s.snapshot())
	case proto.TSchedCommit:
		var commit proto.SchedCommit
		resp := proto.SchedCommitResp{}
		if err := env.Decode(&commit); err == nil {
			resp = s.applyCommit(commit)
		}
		s.reply(c, proto.TOK, resp)
	default:
		s.reply(c, proto.TError, proto.ErrorResp{Error: fmt.Sprintf("unexpected %s", env.Type)})
	}
}

// trackConn records a not-yet-classified connection so Close can tear
// it down; false means the server is already shutting down. Without
// this, flood connections that never speak would outlive Close and
// wedge wg.Wait on their read loops until HandshakeTimeout fired.
func (s *Server) trackConn(c *proto.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.pending[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c *proto.Conn) {
	s.mu.Lock()
	delete(s.pending, c)
	s.mu.Unlock()
}

// registerMom adds the node and serves the mom's persistent link.
func (s *Server) registerMom(c *proto.Conn, req proto.RegisterReq) {
	s.mu.Lock()
	ni, dup := s.nodes[req.Node]
	if dup {
		// Re-registration (mom restart or reconnection): reuse the
		// node record, repair the node if it had been declared down,
		// reconcile job state and replay any undelivered verdicts.
		if ni.conn != nil && ni.conn != c {
			_ = ni.conn.Close() // stale link; its read loop will exit
		}
		ni.addr = req.Addr
		ni.conn = c
		ni.lastSeen = s.now()
		if ni.node.State != cluster.Up {
			s.cl.SetNodeState(ni.node.ID, cluster.Up)
			s.logf("node %s repaired by re-registration", req.Node)
		}
		s.reconcileMomLocked(ni, req.Jobs)
		s.replayVerdictsLocked(ni)
		s.bumpLocked()
		s.mu.Unlock()
		s.logf("mom %s re-registered at %s (%d jobs reported)", req.Node, req.Addr, len(req.Jobs))
	} else {
		n := s.cl.AddNode(req.Node, req.Cores)
		ni = &nodeInfo{node: n, addr: req.Addr, conn: c, shard: n.ID % len(s.ingest), lastSeen: s.now()}
		s.nodes[req.Node] = ni
		s.nodeByID[n.ID] = ni
		s.rec = metrics.NewRecorder(s.cl.TotalCores())
		s.bumpLocked()
		s.mu.Unlock()
		s.logf("mom %s registered: %d cores at %s", req.Node, req.Cores, req.Addr)
	}
	s.Kick()
	// The read loop is a frame pump: it decodes, notes liveness via the
	// lock-free beacon ring, and hands state mutation to the mom's
	// ingest shard. The seed took s.mu here for every message — at 10k
	// moms heartbeating each interval, that serialized every reader
	// against the scheduler's own lock.
	for {
		env, err := c.Recv()
		if err != nil {
			// Link lost. Detach the connection (unless a newer
			// registration already replaced it) and let the heartbeat
			// monitor decide when silence becomes node death.
			s.mu.Lock()
			if ni.conn == c {
				ni.conn = nil
			}
			s.mu.Unlock()
			return
		}
		var work func()
		var sent int64
		//schedlint:dispatch server.mom
		switch env.Type {
		case proto.THeartbeat:
			var hb proto.HeartbeatReq
			_ = env.Decode(&hb) // a malformed beacon still proves liveness
			sent = hb.SentMS
		case proto.TJobDone:
			var done proto.JobDoneReq
			if err := env.Decode(&done); err == nil {
				work = func() { s.jobDone(ni, done) }
			}
		case proto.TDynGet:
			var dg proto.DynGetReq
			if err := env.Decode(&dg); err == nil {
				work = func() { s.dynGet(ni, dg) }
			}
		case proto.TDynFree:
			var df proto.DynFreeReq
			if err := env.Decode(&df); err == nil {
				work = func() { s.dynFree(ni, df) }
			}
		}
		s.noteBeacon(ni, sent)
		if work == nil {
			continue
		}
		select {
		case s.ingest[ni.shard] <- work:
		case <-s.closed:
			return
		}
	}
}

// noteBeacon records mom liveness without taking s.mu: the beacon
// lands in a lock-free ring the monitor sweep drains in batch. Ring
// overflow (a pathological burst outpacing the sweep) falls back to
// the locked stamp so liveness evidence is never dropped. No-op when
// monitoring is disabled.
func (s *Server) noteBeacon(ni *nodeInfo, sentMS int64) {
	if s.beacons == nil {
		return
	}
	b := beacon{node: int32(ni.node.ID), sent: sentMS, at: s.now()}
	if s.beacons.push(b) {
		return
	}
	s.mu.Lock()
	if b.at > ni.lastSeen {
		ni.lastSeen = b.at
	}
	s.mu.Unlock()
}

// BeaconDrops reports how many liveness beacons overflowed the ring
// and took the locked fallback path. A healthy deployment stays at
// zero; the soak test asserts it.
func (s *Server) BeaconDrops() uint64 {
	if s.beacons == nil {
		return 0
	}
	return s.beacons.dropped.Load()
}

// ingestLoop applies queued mom work. A fixed pool replaces the
// seed's state mutation inside every per-mom read goroutine, so
// contention on s.mu is bounded by the pool size, not the mom count.
func (s *Server) ingestLoop(ch chan func()) {
	defer s.wg.Done()
	for {
		select {
		case <-s.closed:
			return
		case fn := <-ch:
			fn()
		}
	}
}

// reconcileMomLocked aligns server and mom job state after a
// re-registration. reported is the mom's view (ids it still hosts or
// has an undelivered completion for). Two directions:
//
//   - a job the server placed on this node that the mom no longer
//     knows is gone for good (the mom restarted): its cores on this
//     node are stripped and the job goes through the failure policy,
//     exactly as if the node had been declared down;
//   - a job the mom reports but the server has moved past (cancelled,
//     requeued elsewhere, completed) is killed on the mom so no
//     zombie keeps burning cores.
//
// Caller holds s.mu.
func (s *Server) reconcileMomLocked(ni *nodeInfo, reported []int) {
	known := make(map[int]bool, len(reported))
	for _, id := range reported {
		known[id] = true
	}
	for _, id := range ni.node.Jobs() { // sorted
		if known[int(id)] {
			continue
		}
		if _, active := s.active[int(id)]; !active {
			continue
		}
		s.logf("job %d lost on restarted mom %s", id, ni.node.Name)
		s.failJobSliceLocked(ni.node, id, "mom restarted without the job")
	}
	ids := append([]int(nil), reported...)
	sort.Ints(ids)
	for _, id := range ids {
		if j, active := s.active[id]; active {
			ji := s.jobs[id]
			if ni.node.HeldBy(j.ID) > 0 || (ji != nil && ji.msNode == ni.node.Name) {
				continue // consistent on both sides
			}
		}
		// Unknown to the server (or no longer placed here): kill the
		// mom-side remnant. Harmless if the mom races a completion.
		s.sendMomLocked(ni, proto.TKillJob, proto.KillJobReq{JobID: id})
	}
}

// replayVerdictsLocked re-delivers buffered dyn verdicts to a freshly
// re-registered mom. Verdicts for jobs that are no longer active on
// this node are dropped (the job's fate was already settled and the
// kill path answered its parked TM connection). Caller holds s.mu.
func (s *Server) replayVerdictsLocked(ni *nodeInfo) {
	pending := ni.verdicts
	ni.verdicts = nil
	for _, v := range pending {
		ji, ok := s.jobs[v.JobID]
		if !ok || !ji.j.Active() || ji.msNode != ni.node.Name {
			s.logf("dropping stale dyn verdict for job %d", v.JobID)
			continue
		}
		s.logf("replaying dyn verdict for job %d (granted=%v)", v.JobID, v.Granted)
		s.deliverVerdictLocked(ji, v)
	}
}

// QSub enqueues a job and returns its id.
func (s *Server) QSub(spec proto.JobSpec) (int, error) {
	cores := spec.Cores
	if spec.Nodes > 0 {
		cores = spec.Nodes * spec.PPN
	}
	if cores <= 0 {
		return 0, fmt.Errorf("serverd: job requests no resources")
	}
	if spec.WallSecs <= 0 {
		return 0, fmt.Errorf("serverd: job needs a walltime")
	}
	s.mu.Lock()
	id := s.nextID
	s.nextID++
	class := job.Rigid
	if spec.Evolving {
		class = job.Evolving
	}
	j := &job.Job{
		ID:   job.ID(id),
		Name: spec.Name,
		Cred: job.Credentials{
			User: spec.User, Group: spec.Group, Account: spec.Account,
		},
		Class:          class,
		Cores:          cores,
		Walltime:       sim.Duration(spec.WallSecs) * sim.Second,
		SubmitTime:     s.now(),
		State:          job.Queued,
		SystemPriority: spec.SystemPriority,
	}
	fsID := fairtree.None
	if s.opts.Sched != nil {
		fsID = s.opts.Sched.Fairshare().UserID(j.Cred.User)
	}
	s.jobs[id] = &jobInfo{j: j, spec: spec, fsID: fsID}
	s.queued = append(s.queued, j)
	s.rec.ObserveSubmit(j.SubmitTime)
	s.bumpQueueLocked()
	s.mu.Unlock()
	s.logf("qsub job=%d user=%s cores=%d wall=%ds", id, spec.User, cores, spec.WallSecs)
	s.Kick()
	return id, nil
}

// QStat reports queue and node state.
func (s *Server) QStat() proto.QStatResp {
	s.mu.Lock()
	defer s.mu.Unlock()
	now := s.now()
	var resp proto.QStatResp
	for id := 1; id < s.nextID; id++ {
		ji, ok := s.jobs[id]
		if !ok {
			continue
		}
		j := ji.j
		wait := float64(0)
		if j.StartTime > 0 || j.State != job.Queued {
			wait = sim.SecondsOf(j.StartTime - j.SubmitTime)
		} else {
			wait = sim.SecondsOf(now - j.SubmitTime)
		}
		resp.Jobs = append(resp.Jobs, proto.JobStatus{
			ID: id, Name: j.Name, User: j.Cred.User, State: j.State.String(),
			Cores: j.Cores, DynCores: j.DynCores, WaitSecs: wait, Hosts: ji.hosts,
		})
	}
	for _, n := range s.cl.Nodes() {
		resp.Nodes = append(resp.Nodes, proto.NodeStatus{
			Name: n.Name, Cores: n.Cores, Used: n.Used(), State: n.State.String(),
		})
	}
	return resp
}

// QDel cancels a job.
func (s *Server) QDel(id int) {
	s.mu.Lock()
	ji, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return
	}
	s.killLocked(ji, "qdel")
	s.mu.Unlock()
	s.Kick()
}

// killLocked terminates a job in any state. Caller holds s.mu.
func (s *Server) killLocked(ji *jobInfo, why string) {
	j := ji.j
	switch {
	case j.State == job.Queued:
		for i, q := range s.queued {
			if q.ID == j.ID {
				s.queued = append(s.queued[:i], s.queued[i+1:]...)
				break
			}
		}
		s.bumpQueueLocked()
	case j.Active():
		s.dropDynLocked(int(j.ID))
		s.cl.Release(j.ID)
		delete(s.active, int(j.ID))
		s.sendMomLocked(s.nodes[ji.msNode], proto.TKillJob, proto.KillJobReq{JobID: int(j.ID)})
		s.rec.ObserveUsage(s.now(), s.cl.UsedCores())
	default:
		return
	}
	if ji.killTimer != nil {
		ji.killTimer.Stop()
	}
	j.State = job.Cancelled
	j.EndTime = s.now()
	s.bumpLocked()
	s.logf("job %d killed (%s)", j.ID, why)
}

func (s *Server) dropDynLocked(id int) {
	// The request is resolving (grant, reject, kill, completion): its
	// negotiation-deadline timer must not fire later.
	if ji := s.jobs[id]; ji != nil && ji.negTimer != nil {
		ji.negTimer.Stop()
		ji.negTimer = nil
	}
	for i, r := range s.dyn {
		if int(r.Job.ID) == id {
			s.dyn = append(s.dyn[:i], s.dyn[i+1:]...)
			return
		}
	}
}

// monitorLoop is the failure detector and the heartbeat sink: it
// drains the beacon ring every quarter interval (batched stamping —
// one lock acquisition per sweep instead of one per message) and, once
// per whole interval, declares any node down whose mom has been silent
// for HeartbeatMisses intervals, routing every affected job through
// the failure policy — the live mirror of the simulator's rms.FailNode.
func (s *Server) monitorLoop() {
	defer s.wg.Done()
	sweep := s.opts.HeartbeatInterval / 4
	detectEvery := 4
	if sweep <= 0 {
		sweep = s.opts.HeartbeatInterval
		detectEvery = 1
	}
	t := time.NewTicker(sweep) //lint:wallclock heartbeat monitoring is a real-time liveness protocol
	defer t.Stop()
	window := sim.FromReal(s.opts.HeartbeatInterval) * sim.Duration(s.opts.HeartbeatMisses)
	ticks := 0
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
		}
		s.sweepBeacons()
		ticks++
		if ticks%detectEvery != 0 {
			continue
		}
		s.mu.Lock()
		now := s.now()
		names := make([]string, 0, len(s.nodes))
		for name := range s.nodes {
			names = append(names, name)
		}
		sort.Strings(names)
		changed := false
		for _, name := range names {
			ni := s.nodes[name]
			if ni.node.State != cluster.Up {
				continue
			}
			if now-ni.lastSeen <= window {
				continue
			}
			s.logf("node %s declared down: silent for %s (window %s)",
				name, sim.FormatTime(now-ni.lastSeen), sim.FormatTime(window))
			s.failNodeLocked(ni, "heartbeat timeout")
			changed = true
		}
		s.mu.Unlock()
		if changed {
			s.Kick()
		}
	}
}

// sweepBeacons applies the batched liveness observations: every
// beacon advances its node's lastSeen (monotonically — a ring entry
// can be older than a locked-fallback stamp), and heartbeats carrying
// a sender wall clock feed the OnBeacon latency hook.
func (s *Server) sweepBeacons() {
	var lags []time.Duration
	var nowMS int64
	if s.opts.OnBeacon != nil {
		nowMS = time.Now().UnixMilli() //lint:wallclock beacon latency compares sender wall clocks carried in heartbeats
	}
	s.mu.Lock()
	s.beacons.drain(func(b beacon) {
		ni := s.nodeByID[int(b.node)] //lint:locked the drain callback runs synchronously under the s.mu.Lock above
		if ni == nil {
			return
		}
		if b.at > ni.lastSeen { //lint:locked the drain callback runs synchronously under the s.mu.Lock above
			ni.lastSeen = b.at //lint:locked the drain callback runs synchronously under the s.mu.Lock above
		}
		if s.opts.OnBeacon != nil && b.sent > 0 {
			lags = append(lags, time.Duration(nowMS-b.sent)*time.Millisecond)
		}
	})
	s.mu.Unlock()
	for _, lag := range lags {
		s.opts.OnBeacon(lag)
	}
}

// failNodeLocked marks a node Down and handles every affected job per
// the failure policy, mirroring rms.FailNode: the dead cores are
// stripped from each allocation, then the job is requeued (restarting
// on spare nodes) or cancelled. Undelivered verdicts for the node are
// dropped — the applications they were meant for died with it.
// Caller holds s.mu.
func (s *Server) failNodeLocked(ni *nodeInfo, why string) {
	affected := s.cl.SetNodeState(ni.node.ID, cluster.Down)
	if ni.conn != nil {
		_ = ni.conn.Close()
		ni.conn = nil
	}
	ni.verdicts = nil
	for _, id := range affected { // SetNodeState returns sorted ids
		if _, ok := s.active[int(id)]; !ok {
			continue
		}
		s.failJobSliceLocked(ni.node, id, why)
	}
	s.bumpLocked()
}

// failJobSliceLocked strips a job's cores on one dead node and applies
// the failure policy: requeue restarts the job from scratch (the
// scheduler will place it on spare capacity), cancel kills it. The
// original request size is restored first so a requeued job asks for
// what it was submitted with. Caller holds s.mu.
func (s *Server) failJobSliceLocked(node *cluster.Node, id job.ID, why string) {
	j, ok := s.active[int(id)]
	ji := s.jobs[int(id)]
	if !ok || ji == nil {
		return
	}
	lost := node.HeldBy(id)
	if lost > 0 {
		origCores := j.Cores
		if err := s.cl.ReleasePartial(id, cluster.Alloc{{NodeID: node.ID, Cores: lost}}); err != nil {
			s.logf("strip %d cores of job %d on %s: %v", lost, id, node.Name, err)
			return
		}
		if lost > j.DynCores {
			j.Cores -= lost - j.DynCores
			j.DynCores = 0
		} else {
			j.DynCores -= lost
		}
		ji.hosts = removeNodeSlices(ji.hosts, node.Name)
		s.rec.ObserveUsage(s.now(), s.cl.UsedCores())
		j.Cores = origCores
	}
	switch s.opts.FailurePolicy {
	case rms.FailRequeue:
		if err := (*serverRM)(s).Preempt(j); err != nil {
			s.logf("requeue job %d after %s: %v", id, why, err)
			s.killLocked(ji, why)
			return
		}
		s.logf("job %d requeued (%s)", id, why)
	default:
		s.killLocked(ji, why)
	}
}

// removeNodeSlices drops every host slice on the named node.
func removeNodeSlices(hosts []proto.HostSlice, node string) []proto.HostSlice {
	out := hosts[:0:0]
	for _, h := range hosts {
		if h.Node != node {
			out = append(out, h)
		}
	}
	return out
}

// jobDone handles a completion report from a mother superior. from
// must be the job's current mother superior: a stale report from a mom
// the job was failed away from (requeued and restarted elsewhere) must
// not complete the new incarnation.
func (s *Server) jobDone(from *nodeInfo, done proto.JobDoneReq) {
	s.mu.Lock()
	ji, ok := s.jobs[done.JobID]
	if !ok || !ji.j.Active() {
		s.mu.Unlock()
		return
	}
	if from != nil && ji.msNode != from.node.Name {
		s.mu.Unlock()
		s.logf("ignoring stale jobdone for %d from %s (ms is %s)", done.JobID, from.node.Name, ji.msNode)
		return
	}
	j := ji.j
	s.dropDynLocked(done.JobID)
	s.cl.Release(j.ID)
	delete(s.active, done.JobID)
	if ji.killTimer != nil {
		ji.killTimer.Stop()
	}
	j.State = job.Completed
	j.EndTime = s.now()
	s.rec.AddJob(metrics.JobRecord{
		ID: j.ID, Type: j.Name, User: j.Cred.User, Cores: j.TotalCores(),
		Submit: j.SubmitTime, Start: j.StartTime, End: j.EndTime,
		Backfilled: j.Backfilled, Evolving: j.Class == job.Evolving,
		DynGranted: ji.granted, GrantTime: ji.dynGrant,
	})
	s.rec.ObserveUsage(s.now(), s.cl.UsedCores())
	if s.opts.Sched != nil && ji.fsID > 0 {
		// Sharded O(1) append by the interned leaf id; the charge
		// folds into the tree at the scheduler's next Advance.
		s.opts.Sched.Fairshare().RecordID(ji.fsID,
			float64(j.TotalCores())*sim.SecondsOf(j.EndTime-j.StartTime))
	}
	s.bumpLocked()
	s.mu.Unlock()
	s.logf("job %d done", done.JobID)
	s.Kick()
}

// dynGet queues a forwarded tm_dynget: the job enters DynQueued and a
// scheduling cycle is triggered (Fig. 3 step 3-4). from is the mom
// that forwarded the request — it must be the job's mother superior.
func (s *Server) dynGet(from *nodeInfo, req proto.DynGetReq) {
	s.mu.Lock()
	ji, ok := s.jobs[req.JobID]
	if !ok || ji.j.State != job.Running {
		s.mu.Unlock()
		s.answerDynTo(from, proto.DynGetResp{JobID: req.JobID, Granted: false, Reason: "job not running"})
		return
	}
	if from != nil && ji.msNode != from.node.Name {
		s.mu.Unlock()
		s.answerDynTo(from, proto.DynGetResp{JobID: req.JobID, Granted: false, Reason: "not the mother superior"})
		return
	}
	for _, p := range s.dyn {
		if int(p.Job.ID) == req.JobID {
			s.mu.Unlock()
			s.answerDynTo(from, proto.DynGetResp{JobID: req.JobID, Granted: false, Reason: "request already pending"})
			return
		}
	}
	r := &job.DynRequest{
		Job: ji.j, Cores: req.Cores, Nodes: req.Nodes, PPN: req.PPN,
		IssuedAt: s.now(), Seq: s.dynSeq,
	}
	if req.TimeoutSecs > 0 {
		r.Deadline = s.now() + sim.Duration(req.TimeoutSecs)*sim.Second
	}
	s.dynSeq++
	ji.j.State = job.DynQueued
	s.dyn = append(s.dyn, r)
	s.bumpLocked()
	if req.TimeoutSecs > 0 {
		// Negotiation deadline: if the request is still pending when
		// it expires, deliver the final rejection ourselves. The timer
		// is stored on the job record and stopped when the request
		// resolves early (grant, reject, kill), so no resolved
		// negotiation leaves a timer behind.
		//lint:wallclock negotiation deadlines are real protocol timeouts
		ji.negTimer = time.AfterFunc(time.Duration(req.TimeoutSecs)*time.Second, func() {
			s.mu.Lock()
			pending := s.findDynLocked(req.JobID) == r
			if pending {
				(*serverRM)(s).RejectDyn(r, "negotiation deadline expired")
			}
			s.mu.Unlock()
		})
	}
	s.mu.Unlock()
	s.logf("dynget queued job=%d timeout=%ds", req.JobID, req.TimeoutSecs)
	s.Kick()
}

// answerDynTo delivers an immediate error verdict to the mom that
// forwarded a dyn request.
func (s *Server) answerDynTo(ni *nodeInfo, resp proto.DynGetResp) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.sendMomLocked(ni, proto.TDynGetResp, resp)
}

// deliverVerdictLocked ships a dyn verdict to the job's mother
// superior, buffering it for replay on re-registration when the link
// is down or the send fails — a granted or rejected tm_dynget must
// never leave the application parked forever. Caller holds s.mu.
func (s *Server) deliverVerdictLocked(ji *jobInfo, resp proto.DynGetResp) {
	ni := s.nodes[ji.msNode]
	if ni == nil {
		s.logf("dyn verdict for job %d has no mother superior; dropped", resp.JobID)
		return
	}
	if ni.conn != nil {
		if err := ni.conn.Send(proto.TDynGetResp, resp); err == nil {
			return
		} else {
			s.logf("dyn verdict job=%d send: %v; buffering for replay", resp.JobID, err)
		}
	}
	ni.verdicts = append(ni.verdicts, resp)
}

// dynFree releases part of an allocation (Fig. 4 step 3-4). from must
// be the job's mother superior.
func (s *Server) dynFree(from *nodeInfo, req proto.DynFreeReq) {
	s.mu.Lock()
	ji, ok := s.jobs[req.JobID]
	if !ok || !ji.j.Active() {
		s.mu.Unlock()
		return
	}
	if from != nil && ji.msNode != from.node.Name {
		s.mu.Unlock()
		s.logf("ignoring dynfree for %d from %s (ms is %s)", req.JobID, from.node.Name, ji.msNode)
		return
	}
	var part cluster.Alloc
	for _, h := range req.Hosts {
		if ni, ok := s.nodes[h.Node]; ok {
			part = append(part, cluster.Slice{NodeID: ni.node.ID, Cores: h.Cores})
		}
	}
	if err := s.cl.ReleasePartial(ji.j.ID, part); err != nil {
		s.mu.Unlock()
		s.logf("dynfree job=%d rejected: %v", req.JobID, err)
		return
	}
	released := part.TotalCores()
	if released > ji.j.DynCores {
		ji.j.Cores -= released - ji.j.DynCores
		ji.j.DynCores = 0
	} else {
		ji.j.DynCores -= released
	}
	ji.hosts = subtractHostSlices(ji.hosts, req.Hosts)
	s.rec.ObserveUsage(s.now(), s.cl.UsedCores())
	s.bumpLocked()
	s.mu.Unlock()
	s.logf("dynfree job=%d released %d cores", req.JobID, released)
	s.Kick()
}

func subtractHostSlices(have, remove []proto.HostSlice) []proto.HostSlice {
	removed := make(map[string]int)
	for _, r := range remove {
		removed[r.Node] += r.Cores
	}
	out := have[:0:0]
	for _, h := range have {
		if take := removed[h.Node]; take > 0 {
			if take >= h.Cores {
				removed[h.Node] -= h.Cores
				continue
			}
			h.Cores -= take
			removed[h.Node] = 0
		}
		out = append(out, h)
	}
	return out
}

// schedLoop runs the embedded scheduler: iterate on every kick, with
// the poll interval as an idle backstop (Maui's timer-driven wakeup).
func (s *Server) schedLoop() {
	defer s.wg.Done()
	t := time.NewTicker(s.opts.PollInterval) //lint:wallclock idle backstop for the kick-driven scheduler
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-s.kick:
		case <-t.C:
		}
		s.mu.Lock()
		res := s.opts.Sched.Iterate(s.now(), (*serverRM)(s))
		s.opts.Sched.Recycle(res)
		s.mu.Unlock()
	}
}

// Recorder exposes live metrics (waiting times, utilization).
func (s *Server) Recorder() *metrics.Recorder {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rec
}
