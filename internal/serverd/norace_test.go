//go:build !race

package serverd

const raceEnabled = false
