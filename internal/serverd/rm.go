package serverd

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/proto"
	"repro/internal/sim"
)

// serverRM adapts the live server to core.ResourceManager. All methods
// are invoked with s.mu held (from schedLoop or applyCommit).
type serverRM Server

func (r *serverRM) s() *Server { return (*Server)(r) }

// StateEpoch implements core.ChangeTracker: it advances on every
// scheduler-visible mutation, letting canSkip elide whole iterations
// while the daemon is idle between kicks.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) StateEpoch() uint64 { return r.serial }

// QueueEpoch implements the queue half of core.ChangeTracker: it
// advances only on queue-membership changes, keying the scheduler's
// sorted-order cache.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) QueueEpoch() uint64 { return r.qserial }

// Cluster returns the live cluster mirror.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) Cluster() *cluster.Cluster { return r.cl }

// QueuedJobs returns the queued jobs in submission order.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), r.queued...)
}

// ActiveJobs returns running/dynqueued jobs in ID order.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) ActiveJobs() []*job.Job {
	out := make([]*job.Job, 0, len(r.active))
	for _, j := range r.active {
		out = append(out, j)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// DynRequests returns the pending dynamic requests in FIFO order.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) DynRequests() []*job.DynRequest {
	return append([]*job.DynRequest(nil), r.dyn...)
}

// hostsOf renders an allocation as host slices with mom addresses.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) hostsOf(alloc cluster.Alloc) []proto.HostSlice {
	out := make([]proto.HostSlice, 0, len(alloc))
	for _, sl := range alloc {
		ni := r.nodeByID[sl.NodeID]
		if ni == nil {
			continue
		}
		out = append(out, proto.HostSlice{Node: ni.node.Name, Addr: ni.addr, Cores: sl.Cores})
	}
	return out
}

// StartJob allocates resources and dispatches the job to its mother
// superior (the first allocated host).
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) StartJob(j *job.Job) (cluster.Alloc, error) {
	s := r.s()
	ji, ok := s.jobs[int(j.ID)]
	if !ok || j.State != job.Queued {
		return nil, fmt.Errorf("serverd: %s not queued", j.ID)
	}
	var alloc cluster.Alloc
	if ji.spec.Nodes > 0 {
		alloc = s.cl.AllocateNodes(j.ID, ji.spec.Nodes, ji.spec.PPN)
	} else {
		alloc = s.cl.Allocate(j.ID, j.Cores)
	}
	if alloc == nil {
		return nil, fmt.Errorf("serverd: cannot place %s", j.ID)
	}
	hosts := r.hostsOf(alloc)
	if len(hosts) == 0 {
		s.cl.Release(j.ID)
		return nil, fmt.Errorf("serverd: no registered mom for allocation")
	}
	ms := s.nodes[hosts[0].Node]
	if ms == nil || ms.conn == nil {
		s.cl.Release(j.ID)
		return nil, fmt.Errorf("serverd: mother superior %s unreachable", hosts[0].Node)
	}
	for i, q := range s.queued {
		if q.ID == j.ID {
			s.queued = append(s.queued[:i], s.queued[i+1:]...)
			break
		}
	}
	j.State = job.Running
	j.StartTime = s.now()
	s.active[int(j.ID)] = j
	ji.hosts = hosts
	ji.msNode = hosts[0].Node
	s.rec.ObserveUsage(s.now(), s.cl.UsedCores())
	s.bumpQueueLocked()
	// Walltime enforcement.
	wall := sim.ToReal(j.Walltime)
	id := int(j.ID)
	//lint:wallclock walltime limits are enforced in real time on the live daemon
	ji.killTimer = time.AfterFunc(wall, func() {
		s.mu.Lock()
		if info, ok := s.jobs[id]; ok && info.j.Active() {
			s.killLocked(info, "walltime")
		}
		s.mu.Unlock()
		s.Kick()
	})
	if err := ms.conn.Send(proto.TRunJob, proto.RunJobReq{JobID: id, Spec: ji.spec, Hosts: hosts}); err != nil {
		// Mom link failed mid-dispatch: roll back. The rollback is a
		// second round of mutations after the dispatch bump, so it
		// needs its own — without it a scheduler cache validated
		// against the dispatch epoch would keep serving the job as
		// started when it is in fact back in the queue.
		ji.killTimer.Stop()
		s.cl.Release(j.ID)
		delete(s.active, id)
		j.State = job.Queued
		s.queued = append(s.queued, j)
		s.bumpQueueLocked()
		return nil, fmt.Errorf("serverd: dispatch to %s: %w", hosts[0].Node, err)
	}
	s.logf("job %d started on %s (ms=%s)", id, cluster.Alloc(alloc).String(), ji.msNode)
	return alloc, nil
}

// GrantDyn expands the job and answers the parked tm_dynget through
// the mother superior (Fig. 3 steps 5–7).
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) GrantDyn(req *job.DynRequest) (cluster.Alloc, error) {
	s := r.s()
	ji, ok := s.jobs[int(req.Job.ID)]
	if !ok {
		return nil, fmt.Errorf("serverd: unknown job %s", req.Job.ID)
	}
	var alloc cluster.Alloc
	if req.Nodes > 0 {
		alloc = s.cl.AllocateNodes(req.Job.ID, req.Nodes, req.PPN)
	} else {
		alloc = s.cl.Allocate(req.Job.ID, req.Cores)
	}
	if alloc == nil {
		return nil, fmt.Errorf("serverd: cannot place dynamic request for %s", req.Job.ID)
	}
	hosts := r.hostsOf(alloc)
	req.Job.DynCores += req.TotalCores()
	req.Job.State = job.Running
	if !ji.granted {
		ji.granted = true
		ji.dynGrant = s.now()
	}
	ji.hosts = append(ji.hosts, hosts...)
	s.dropDynLocked(int(req.Job.ID))
	s.rec.ObserveUsage(s.now(), s.cl.UsedCores())
	s.bumpLocked()
	s.deliverVerdictLocked(ji, proto.DynGetResp{
		JobID: int(req.Job.ID), Granted: true, Hosts: hosts,
	})
	s.logf("dyn grant job=%d +%d cores", req.Job.ID, req.TotalCores())
	return alloc, nil
}

// RejectDyn answers the parked tm_dynget negatively.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) RejectDyn(req *job.DynRequest, reason string) {
	s := r.s()
	req.Job.State = job.Running
	s.dropDynLocked(int(req.Job.ID))
	s.bumpLocked()
	if ji := s.jobs[int(req.Job.ID)]; ji != nil {
		s.deliverVerdictLocked(ji, proto.DynGetResp{
			JobID: int(req.Job.ID), Granted: false, Reason: reason,
		})
	}
	s.logf("dyn reject job=%d: %s", req.Job.ID, reason)
}

// Preempt kills a running job on its mom and requeues it.
//
//lint:locked serverRM methods run with s.mu held (schedLoop, applyCommit, dynGet)
func (r *serverRM) Preempt(j *job.Job) error {
	s := r.s()
	ji, ok := s.jobs[int(j.ID)]
	if !ok || !j.Active() {
		return fmt.Errorf("serverd: %s not active", j.ID)
	}
	s.dropDynLocked(int(j.ID))
	s.cl.Release(j.ID)
	delete(s.active, int(j.ID))
	if ji.killTimer != nil {
		ji.killTimer.Stop()
	}
	s.sendMomLocked(s.nodes[ji.msNode], proto.TKillJob, proto.KillJobReq{JobID: int(j.ID)})
	j.State = job.Queued
	j.StartTime = 0
	j.DynCores = 0
	j.Backfilled = false
	ji.hosts = nil
	ji.msNode = ""
	s.queued = append(s.queued, j)
	s.rec.ObserveUsage(s.now(), s.cl.UsedCores())
	s.bumpQueueLocked()
	s.logf("job %d preempted and requeued", j.ID)
	return nil
}

// --- external scheduler protocol ---

// snapshot renders the scheduler state for a sched.pull.
func (s *Server) snapshot() proto.SchedState {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := proto.SchedState{NowMS: int64(s.now()), Serial: s.serial}
	for _, n := range s.cl.Nodes() {
		st.Nodes = append(st.Nodes, proto.NodeStatus{
			Name: n.Name, Cores: n.Cores, Used: n.Used(), State: n.State.String(),
		})
	}
	conv := func(j *job.Job) proto.SchedJob {
		return proto.SchedJob{
			ID: int(j.ID), Name: j.Name, User: j.Cred.User, Group: j.Cred.Group,
			State: j.State.String(), Cores: j.Cores, DynCores: j.DynCores,
			WallSecs: int64(j.Walltime / sim.Second),
			SubmitMS: int64(j.SubmitTime), StartMS: int64(j.StartTime),
			SysPrio: j.SystemPriority, Evolving: j.Class == job.Evolving,
			Backfilled: j.Backfilled,
		}
	}
	for _, j := range s.queued {
		st.Queued = append(st.Queued, conv(j))
	}
	for _, j := range (*serverRM)(s).ActiveJobs() {
		st.Active = append(st.Active, conv(j))
	}
	for _, r := range s.dyn {
		st.Dyn = append(st.Dyn, proto.SchedDynReq{
			JobID: int(r.Job.ID), Cores: r.Cores, Nodes: r.Nodes, PPN: r.PPN, Seq: r.Seq,
			DeadlineMS: int64(r.Deadline),
		})
	}
	return st
}

// applyCommit validates and applies an external scheduler's decisions.
// Each action re-validates against current state, so a commit computed
// on a stale snapshot degrades gracefully (stale actions are skipped
// and will be re-planned on the next pull).
func (s *Server) applyCommit(c proto.SchedCommit) proto.SchedCommitResp {
	s.mu.Lock()
	defer s.mu.Unlock()
	rm := (*serverRM)(s)
	var resp proto.SchedCommitResp
	for _, a := range c.Actions {
		ji, ok := s.jobs[a.JobID]
		if !ok {
			resp.Skipped++
			continue
		}
		switch a.Kind {
		case "start":
			if ji.j.State != job.Queued {
				resp.Skipped++
				continue
			}
			if _, err := rm.StartJob(ji.j); err != nil {
				resp.Skipped++
				continue
			}
			resp.Applied++
		case "grant":
			req := s.findDynLocked(a.JobID)
			if req == nil {
				resp.Skipped++
				continue
			}
			if _, err := rm.GrantDyn(req); err != nil {
				// Placement failed after a stale plan: reject so the
				// application is not left blocked.
				rm.RejectDyn(req, "resources changed; retry")
				resp.Skipped++
				continue
			}
			resp.Applied++
		case "reject":
			req := s.findDynLocked(a.JobID)
			if req == nil {
				resp.Skipped++
				continue
			}
			rm.RejectDyn(req, a.Reason)
			resp.Applied++
		default:
			resp.Skipped++
		}
	}
	return resp
}

func (s *Server) findDynLocked(jobID int) *job.DynRequest {
	for _, r := range s.dyn {
		if int(r.Job.ID) == jobID {
			return r
		}
	}
	return nil
}
