package serverd

import (
	"fmt"
	"repro/internal/testutil/leak"
	"testing"
	"time"

	"repro/internal/mom"
	"repro/internal/proto"
)

// TestStaleSchedCommitSkipped: a commit that references jobs in states
// the server has moved past must be skipped gracefully, never applied.
func TestStaleSchedCommitSkipped(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	id, err := srv.QSub(proto.JobSpec{
		Name: "j", User: "u", Cores: 4, WallSecs: 60, Script: "sleep:50ms",
	})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "completed" }, "job done")

	// "start" for a completed job, "grant"/"reject" with no pending
	// request, and an unknown job id: all skipped.
	resp := srv.applyCommit(proto.SchedCommit{Actions: []proto.SchedAction{
		{Kind: "start", JobID: id},
		{Kind: "grant", JobID: id},
		{Kind: "reject", JobID: id},
		{Kind: "start", JobID: 999},
		{Kind: "bogus", JobID: id},
	}})
	if resp.Applied != 0 || resp.Skipped != 5 {
		t.Errorf("applied=%d skipped=%d, want 0/5", resp.Applied, resp.Skipped)
	}
}

// TestSchedPullSnapshotContents checks the external-scheduler snapshot
// carries consistent queue/node/dyn state.
func TestSchedPullSnapshotContents(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 2, 8)
	// One running job and one queued (too big).
	runID, _ := srv.QSub(proto.JobSpec{Name: "r", User: "u", Cores: 8, WallSecs: 60, Script: "sleep:1m"})
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, runID) == "running" }, "runner up")
	qID, _ := srv.QSub(proto.JobSpec{Name: "q", User: "v", Cores: 99, WallSecs: 60, Script: "sleep:1m"})

	st := srv.snapshot()
	if len(st.Nodes) != 2 {
		t.Errorf("nodes = %d", len(st.Nodes))
	}
	foundQ, foundR := false, false
	for _, j := range st.Queued {
		if j.ID == qID && j.State == "queued" {
			foundQ = true
		}
	}
	for _, j := range st.Active {
		if j.ID == runID && j.State == "running" {
			foundR = true
		}
	}
	if !foundQ || !foundR {
		t.Errorf("snapshot missing jobs: queued=%v active=%v", foundQ, foundR)
	}
	used := 0
	for _, n := range st.Nodes {
		used += n.Used
	}
	if used != 8 {
		t.Errorf("snapshot used cores = %d", used)
	}
	if st.Serial == 0 {
		t.Error("serial should advance with state changes")
	}
}

// TestMomReRegistration: a mom that reconnects under the same node
// name must not duplicate the node.
func TestMomReRegistration(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	m2 := mom.New("node0", 8) // same name as the existing mom
	if err := m2.Start("127.0.0.1:0", srv.Addr()); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(m2.Close)
	// Give the registration a moment; node count must stay 1.
	time.Sleep(50 * time.Millisecond)
	if n := len(srv.QStat().Nodes); n != 1 {
		t.Errorf("nodes after re-registration = %d, want 1", n)
	}
	// The cluster still works.
	id, err := srv.QSub(proto.JobSpec{Name: "x", User: "u", Cores: 4, WallSecs: 60, Script: "sleep:20ms"})
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "completed" }, "job done")
}

// TestQDelUnknownJobIsNoop and double-deletion safety.
func TestQDelUnknownJob(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	srv.QDel(12345) // no panic, no effect
	id, _ := srv.QSub(proto.JobSpec{Name: "x", User: "u", Cores: 4, WallSecs: 60, Script: "sleep:10m"})
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "running" }, "running")
	srv.QDel(id)
	srv.QDel(id) // double delete
	waitFor(t, 3*time.Second, func() bool { return jobState(srv, id) == "cancelled" }, "cancelled")
}

// TestUnexpectedFirstMessage: a connection opening with a non-protocol
// message gets an error reply and the server stays healthy.
func TestUnexpectedFirstMessage(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 1, 8)
	c, err := proto.Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	env, err := c.Request(proto.TJobDone, proto.JobDoneReq{JobID: 1})
	c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != proto.TError {
		t.Errorf("reply = %s, want error", env.Type)
	}
	// Server still serves.
	if _, err := srv.QSub(proto.JobSpec{Name: "ok", User: "u", Cores: 1, WallSecs: 10, Script: "sleep:1ms"}); err != nil {
		t.Fatal(err)
	}
}

// TestManyConcurrentClients hammers qsub/qstat concurrently.
func TestManyConcurrentClients(t *testing.T) {
	leak.Check(t)
	srv := liveCluster(t, 2, 8)
	done := make(chan error, 20)
	for i := 0; i < 20; i++ {
		go func(i int) {
			c, err := proto.Dial(srv.Addr())
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			if i%2 == 0 {
				_, err = c.Request(proto.TQSub, proto.JobSpec{
					Name: fmt.Sprintf("c%d", i), User: "u", Cores: 1, WallSecs: 60, Script: "sleep:10ms",
				})
			} else {
				_, err = c.Request(proto.TQStat, nil)
			}
			done <- err
		}(i)
	}
	for i := 0; i < 20; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, func() bool {
		for _, j := range srv.QStat().Jobs {
			if j.State != "completed" {
				return false
			}
		}
		return true
	}, "all client jobs done")
}
