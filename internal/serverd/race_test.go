//go:build race

package serverd

// raceEnabled lets timing- and allocation-sensitive tests detect the
// race detector, whose instrumentation inflates both.
const raceEnabled = true
