package serverd

import (
	"sync/atomic"

	"repro/internal/sim"
)

// beacon is one liveness observation from a mom read loop: the node
// that spoke, when (server-virtual time), and — for heartbeats that
// carry instrumentation — the sender's wall clock in Unix ms.
type beacon struct {
	node int32
	sent int64
	at   sim.Time
}

// beaconRing is a bounded lock-free multi-producer single-consumer
// queue (the Vyukov bounded-queue sequence scheme) carrying beacons
// from the mom read goroutines to the monitor sweep. The seed stamped
// ni.lastSeen under s.mu on every message, which serialized every mom
// reader against the scheduler's own lock; at 10k moms beating each
// interval that lock becomes the whole daemon's bottleneck. Producers
// here contend only on a CAS over the head counter, and the monitor
// applies the batch under one lock acquisition per sweep.
//
// Each slot carries a sequence number: seq == pos means free for the
// producer claiming pos, seq == pos+1 means published and ready for
// the consumer, which recycles the slot by storing pos+len(slots).
type beaconRing struct {
	slots   []beaconSlot
	mask    uint64
	head    atomic.Uint64
	tail    uint64 // consumer cursor; monitor goroutine only
	dropped atomic.Uint64
}

type beaconSlot struct {
	seq atomic.Uint64
	b   beacon
}

// newBeaconRing sizes the ring up to the next power of two.
func newBeaconRing(size int) *beaconRing {
	n := 1
	for n < size {
		n <<= 1
	}
	r := &beaconRing{slots: make([]beaconSlot, n), mask: uint64(n - 1)}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push publishes one beacon; false means the ring is full (the
// consumer has not freed the slot yet) and the caller must fall back
// to the locked stamp so no liveness evidence is lost.
func (r *beaconRing) push(b beacon) bool {
	pos := r.head.Load()
	for {
		slot := &r.slots[pos&r.mask]
		switch seq := slot.seq.Load(); {
		case seq == pos:
			if r.head.CompareAndSwap(pos, pos+1) {
				slot.b = b
				slot.seq.Store(pos + 1)
				return true
			}
			pos = r.head.Load()
		case seq < pos:
			r.dropped.Add(1)
			return false
		default:
			pos = r.head.Load()
		}
	}
}

// drain consumes every published beacon in order. Single consumer
// only (the monitor goroutine); returns how many were applied.
func (r *beaconRing) drain(fn func(beacon)) int {
	n := 0
	for {
		slot := &r.slots[r.tail&r.mask]
		if slot.seq.Load() != r.tail+1 {
			return n
		}
		b := slot.b
		slot.seq.Store(r.tail + uint64(len(r.slots)))
		r.tail++
		fn(b)
		n++
	}
}
