package serverd

import (
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/proto"
	"repro/internal/testutil/leak"
)

// TestMain doubles as the soak test's mom-simulator driver: the test
// re-executes its own binary with MOMSIM_DRIVE set so the simulated
// moms live in a child process with their own file-descriptor budget
// (10k client sockets + 10k server sockets would not fit one process
// under the default limits).
func TestMain(m *testing.M) {
	if os.Getenv("MOMSIM_DRIVE") != "" {
		momSimMain()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// momSimMain floods MOMSIM_ADDR with MOMSIM_N simulated moms: each
// registers and then heartbeats every MOMSIM_INTERVAL_MS with its send
// wall clock stamped into SentMS, phase-staggered so the server sees a
// steady stream rather than n-at-once bursts. Runs until killed.
func momSimMain() {
	addr := os.Getenv("MOMSIM_ADDR")
	n, _ := strconv.Atoi(os.Getenv("MOMSIM_N"))
	intervalMS, _ := strconv.Atoi(os.Getenv("MOMSIM_INTERVAL_MS"))
	interval := time.Duration(intervalMS) * time.Millisecond
	// Throttle concurrent dials to the server's handshake budget.
	sem := make(chan struct{}, 256)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			c, err := proto.DialModeTimeout(addr, proto.ModeAuto, 30*time.Second)
			<-sem
			if err != nil {
				fmt.Fprintf(os.Stderr, "momsim %d: %v\n", i, err)
				return
			}
			defer c.Close()
			name := fmt.Sprintf("sim-%05d", i)
			if err := c.Send(proto.TRegister, proto.RegisterReq{Node: name, Cores: 1}); err != nil {
				fmt.Fprintf(os.Stderr, "momsim %d register: %v\n", i, err)
				return
			}
			time.Sleep(time.Duration(i%256) * interval / 256)
			hb := &proto.HeartbeatReq{Node: name}
			for {
				time.Sleep(interval)
				hb.Seq++
				hb.SentMS = time.Now().UnixMilli()
				if err := c.Send(proto.THeartbeat, hb); err != nil {
					return
				}
			}
		}(i)
	}
	wg.Wait()
}

// soakMoms returns the fleet size: PROTO_SOAK_MOMS overrides the
// default of 2000 (CI-friendly; the 10k figure in BENCH_proto.json is
// produced with PROTO_SOAK_MOMS=10000).
func soakMoms() int {
	if s := os.Getenv("PROTO_SOAK_MOMS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			return n
		}
	}
	return 2000
}

// TestSoakManyMoms holds a fleet of simulated moms (2000 by default,
// 10k via PROTO_SOAK_MOMS) against one server and asserts the p99
// heartbeat-to-stamp latency stays under one heartbeat interval — the
// property the beacon ring plus sweep-batched stamping exists to
// provide — with zero ring overflows and zero false down-detections.
func TestSoakManyMoms(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped in short mode")
	}
	if raceEnabled {
		t.Skip("latency bounds are not meaningful under race instrumentation")
	}
	leak.Check(t)
	n := soakMoms()
	const interval = 500 * time.Millisecond

	var mu sync.Mutex
	var lags []time.Duration
	collecting := false
	srv := New(Options{
		HeartbeatInterval: interval,
		HeartbeatMisses:   4,
		HandshakeTimeout:  30 * time.Second,
		OnBeacon: func(lag time.Duration) {
			mu.Lock()
			if collecting {
				lags = append(lags, lag)
			}
			mu.Unlock()
		},
	})
	if err := srv.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)

	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"MOMSIM_DRIVE=1",
		"MOMSIM_ADDR="+srv.Addr(),
		fmt.Sprintf("MOMSIM_N=%d", n),
		fmt.Sprintf("MOMSIM_INTERVAL_MS=%d", interval/time.Millisecond),
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})

	regDeadline := 60*time.Second + time.Duration(n)*5*time.Millisecond
	waitFor(t, regDeadline, func() bool {
		srv.mu.Lock()
		defer srv.mu.Unlock()
		return len(srv.nodes) == n
	}, fmt.Sprintf("%d moms registered", n))

	// Measure over whole intervals with the full fleet beating.
	mu.Lock()
	collecting = true
	lags = nil
	mu.Unlock()
	time.Sleep(4 * interval)
	mu.Lock()
	collecting = false
	sample := lags
	lags = nil
	mu.Unlock()

	if len(sample) < n {
		t.Fatalf("collected %d heartbeat latencies over 4 intervals from %d moms; the fleet is not beating", len(sample), n)
	}
	sort.Slice(sample, func(i, j int) bool { return sample[i] < sample[j] })
	p50 := sample[len(sample)/2]
	p99 := sample[len(sample)*99/100]
	max := sample[len(sample)-1]
	t.Logf("soak %d moms: %d beacons, heartbeat-to-stamp p50=%v p99=%v max=%v (interval %v)", n, len(sample), p50, p99, max, interval)
	if p99 >= interval {
		t.Errorf("p99 heartbeat-to-stamp latency %v >= heartbeat interval %v", p99, interval)
	}
	if drops := srv.BeaconDrops(); drops != 0 {
		t.Errorf("%d beacons overflowed the ring onto the locked fallback path", drops)
	}
	srv.mu.Lock()
	down := 0
	for _, ni := range srv.nodes {
		if ni.node.State != cluster.Up {
			down++
		}
	}
	srv.mu.Unlock()
	if down != 0 {
		t.Errorf("%d nodes falsely declared down during the soak", down)
	}
}
