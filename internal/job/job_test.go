package job

import (
	"testing"

	"repro/internal/sim"
)

func TestStringers(t *testing.T) {
	if ID(42).String() != "job.42" {
		t.Errorf("ID stringer: %s", ID(42))
	}
	if Rigid.String() != "rigid" || Evolving.String() != "evolving" {
		t.Error("class stringer")
	}
	if Class(99).String() != "class(99)" {
		t.Error("out-of-range class stringer")
	}
	if DynQueued.String() != "dynqueued" || Preempted.String() != "preempted" {
		t.Error("state stringer")
	}
	if State(99).String() != "state(99)" {
		t.Error("out-of-range state stringer")
	}
}

func TestJobTimes(t *testing.T) {
	j := &Job{
		Cores:      8,
		Walltime:   100 * sim.Second,
		SubmitTime: 10 * sim.Second,
		StartTime:  25 * sim.Second,
		EndTime:    80 * sim.Second,
		State:      Running,
	}
	if j.WaitTime() != 15*sim.Second {
		t.Errorf("wait = %v", j.WaitTime())
	}
	if j.TurnaroundTime() != 70*sim.Second {
		t.Errorf("turnaround = %v", j.TurnaroundTime())
	}
	if got := j.RemainingWalltime(50 * sim.Second); got != 75*sim.Second {
		t.Errorf("remaining walltime = %v, want 75s", got)
	}
	if got := j.RemainingWalltime(500 * sim.Second); got != 0 {
		t.Errorf("remaining walltime past end = %v", got)
	}
}

func TestJobStatesAndCores(t *testing.T) {
	j := &Job{Cores: 16, State: Queued}
	if j.Active() || j.Terminal() {
		t.Error("queued job should be neither active nor terminal")
	}
	if j.RemainingWalltime(0) != 0 {
		t.Error("unstarted job has no remaining walltime")
	}
	j.State = Running
	j.DynCores = 4
	if !j.Active() {
		t.Error("running job should be active")
	}
	if j.TotalCores() != 20 {
		t.Errorf("total cores = %d, want 20", j.TotalCores())
	}
	j.State = DynQueued
	if !j.Active() {
		t.Error("dynqueued job should still be active")
	}
	j.State = Completed
	if !j.Terminal() {
		t.Error("completed job should be terminal")
	}
}

func TestClone(t *testing.T) {
	j := &Job{ID: 7, Cores: 4, State: Running}
	c := j.Clone()
	c.Cores = 99
	c.State = Completed
	if j.Cores != 4 || j.State != Running {
		t.Error("Clone should not alias the original")
	}
	if c.ID != 7 {
		t.Error("Clone should copy fields")
	}
}

func TestDynRequestValidate(t *testing.T) {
	j := &Job{ID: 1}
	cases := []struct {
		name string
		r    DynRequest
		ok   bool
	}{
		{"cores", DynRequest{Job: j, Cores: 4}, true},
		{"nodes", DynRequest{Job: j, Nodes: 2, PPN: 8}, true},
		{"nil job", DynRequest{Cores: 4}, false},
		{"empty", DynRequest{Job: j}, false},
		{"negative", DynRequest{Job: j, Cores: -1}, false},
		{"nodes no ppn", DynRequest{Job: j, Nodes: 2}, false},
	}
	for _, c := range cases {
		err := c.r.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
	r := DynRequest{Job: j, Nodes: 3, PPN: 8}
	if r.TotalCores() != 24 {
		t.Errorf("node-granular TotalCores = %d, want 24", r.TotalCores())
	}
	r2 := DynRequest{Job: j, Cores: 4}
	if r2.TotalCores() != 4 {
		t.Errorf("core-granular TotalCores = %d, want 4", r2.TotalCores())
	}
}
