// Package job defines the job model shared by the resource manager,
// the scheduler, the simulator and the benchmark generators: job
// classes per Feitelson & Rudolph's taxonomy (rigid, moldable,
// malleable, evolving), lifecycle states including the paper's
// DynQueued state, and the dynamic-request record exchanged between
// the TM interface and the scheduler.
package job

import (
	"fmt"

	"repro/internal/sim"
)

// ID uniquely identifies a job within one server instance.
type ID int

// String renders the ID in the familiar PBS style ("job.42").
func (id ID) String() string { return fmt.Sprintf("job.%d", int(id)) }

// Class is the flexibility class of a job (Feitelson & Rudolph).
type Class int

const (
	// Rigid jobs need exactly the requested resources, allocated
	// before start; the allocation never changes.
	Rigid Class = iota
	// Moldable jobs let the scheduler adjust the request before start.
	Moldable
	// Malleable jobs let the scheduler grow/shrink them at runtime.
	Malleable
	// Evolving jobs grow/shrink themselves at runtime via tm_dynget
	// and tm_dynfree; the scheduler cannot initiate the change.
	Evolving
)

var classNames = [...]string{"rigid", "moldable", "malleable", "evolving"}

func (c Class) String() string {
	if c < 0 || int(c) >= len(classNames) {
		return fmt.Sprintf("class(%d)", int(c))
	}
	return classNames[c]
}

// State is the lifecycle state of a job at the server.
type State int

const (
	// Unsubmitted jobs exist only in the generator.
	Unsubmitted State = iota
	// Queued jobs wait at the server for an allocation.
	Queued
	// Running jobs hold an allocation and execute.
	Running
	// DynQueued is the paper's special state: a running evolving job
	// whose dynamic request is queued at the server for scheduling.
	DynQueued
	// Completed jobs finished and released all resources.
	Completed
	// Cancelled jobs were removed before or during execution.
	Cancelled
	// Preempted jobs were stopped to free resources; they requeue.
	Preempted
)

var stateNames = [...]string{
	"unsubmitted", "queued", "running", "dynqueued",
	"completed", "cancelled", "preempted",
}

func (s State) String() string {
	if s < 0 || int(s) >= len(stateNames) {
		return fmt.Sprintf("state(%d)", int(s))
	}
	return stateNames[s]
}

// Credentials identify who a job is charged to; every field can carry
// dynamic-fairness settings (users, groups, accounts, classes, QoS).
type Credentials struct {
	User    string
	Group   string
	Account string
	Class   string // queue class, e.g. "batch"
	QoS     string
}

// Job is the server-side job record. The scheduler reads most fields
// and owns the scheduling-related mutable ones (Priority, reservation
// bookkeeping lives in the scheduler, not here).
type Job struct {
	ID    ID
	Name  string
	Cred  Credentials
	Class Class

	// Request at submission.
	Cores    int          // total cores requested
	Walltime sim.Duration // requested walltime

	// Timeline, filled in as the job progresses.
	SubmitTime sim.Time
	StartTime  sim.Time
	EndTime    sim.Time

	State State

	// DynCores is the number of cores currently held beyond the
	// original request (grown via dynamic allocation).
	DynCores int

	// Backfilled records that the job was started out of order by the
	// backfill pass; such jobs may be preempted when the site enables
	// preemption for dynamic requests.
	Backfilled bool

	// Preemptible marks jobs the site allows to be preempted.
	Preemptible bool

	// SystemPriority is an administrative boost; the ESP Z-jobs use it
	// to claim the head of the queue.
	SystemPriority int64

	// MinCores / MaxCores bound scheduler-initiated resizing of
	// malleable jobs (§VI future work, implemented here): the
	// scheduler may shrink a running malleable job to MinCores to
	// serve dynamic requests, and grow it to MaxCores from otherwise
	// idle resources. Zero values default to Cores (no resizing).
	MinCores int
	MaxCores int
}

// ShrinkableBy returns how many cores a malleable job can give up.
func (j *Job) ShrinkableBy() int {
	if j.Class != Malleable {
		return 0
	}
	min := j.MinCores
	if min <= 0 {
		min = j.Cores
	}
	if s := j.TotalCores() - min; s > 0 {
		return s
	}
	return 0
}

// GrowableBy returns how many cores a malleable job can still accept.
func (j *Job) GrowableBy() int {
	if j.Class != Malleable {
		return 0
	}
	max := j.MaxCores
	if max <= 0 {
		max = j.Cores
	}
	if g := max - j.TotalCores(); g > 0 {
		return g
	}
	return 0
}

// TotalCores returns the cores currently associated with the job:
// the original request plus any dynamically acquired cores.
func (j *Job) TotalCores() int { return j.Cores + j.DynCores }

// WaitTime returns how long the job waited in the queue before start.
// It is only meaningful once the job has started.
func (j *Job) WaitTime() sim.Duration { return j.StartTime - j.SubmitTime }

// TurnaroundTime returns submit-to-finish time; only meaningful once
// the job completed.
func (j *Job) TurnaroundTime() sim.Duration { return j.EndTime - j.SubmitTime }

// Active reports whether the job currently holds resources.
func (j *Job) Active() bool { return j.State == Running || j.State == DynQueued }

// Terminal reports whether the job will never run again.
func (j *Job) Terminal() bool { return j.State == Completed || j.State == Cancelled }

// RemainingWalltime returns how much of the job's walltime reservation
// is left at the given time. Zero for jobs that have not started.
func (j *Job) RemainingWalltime(now sim.Time) sim.Duration {
	if !j.Active() {
		return 0
	}
	end := j.StartTime + j.Walltime
	if now >= end {
		return 0
	}
	return end - now
}

// Clone returns a shallow copy; used by schedulers that want to
// evaluate what-if scenarios without touching server state.
func (j *Job) Clone() *Job {
	c := *j
	return &c
}

// DynRequest is a dynamic allocation request from a running evolving
// job, forwarded to the server by the job's mother superior.
type DynRequest struct {
	Job      *Job
	Cores    int      // additional cores wanted
	Nodes    int      // node-granular requests (0 = core-granular)
	PPN      int      // processors per node for node-granular requests
	IssuedAt sim.Time // when the application called tm_dynget
	Seq      int      // FIFO sequence assigned by the server

	// Deadline enables the negotiation protocol the paper names as
	// future work (§III-C): a request that cannot be served yet stays
	// queued (the scheduler *defers* instead of rejecting) until it
	// can be granted or the deadline passes. Zero keeps the paper's
	// immediate-verdict semantics.
	Deadline sim.Time
}

// Negotiable reports whether the request uses deadline semantics.
func (r *DynRequest) Negotiable() bool { return r.Deadline > 0 }

// Expired reports whether a negotiable request's deadline has passed.
func (r *DynRequest) Expired(now sim.Time) bool {
	return r.Negotiable() && now >= r.Deadline
}

// TotalCores returns the number of cores the request asks for.
func (r *DynRequest) TotalCores() int {
	if r.Nodes > 0 {
		return r.Nodes * r.PPN
	}
	return r.Cores
}

// Validate reports whether the request is well-formed.
func (r *DynRequest) Validate() error {
	switch {
	case r.Job == nil:
		return fmt.Errorf("dynrequest: nil job")
	case r.Nodes < 0 || r.PPN < 0 || r.Cores < 0:
		return fmt.Errorf("dynrequest: negative size")
	case r.TotalCores() == 0:
		return fmt.Errorf("dynrequest: empty request")
	case r.Nodes > 0 && r.PPN == 0:
		return fmt.Errorf("dynrequest: nodes without ppn")
	}
	return nil
}
