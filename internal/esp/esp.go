// Package esp implements the dynamic ESP benchmark of §IV-B: the ESP
// system-utilization benchmark (Wong et al., SC'00) modified so that
// 30% of the jobs are evolving. The workload has 230 jobs of 14 types
// (Table I); types F, G, H, I and J (69 jobs, run by user06) request 4
// additional cores at 16% of their static execution time, retry at 25%
// if rejected, and otherwise complete on their original allocation.
// Each rigid type belongs to a distinct user. Two full-machine Z jobs
// are submitted 30 minutes after the last regular submission and take
// absolute priority, with backfilling disabled while they queue.
package esp

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/job"
	"repro/internal/rms"
	"repro/internal/sim"
)

// JobType describes one row of Table I.
type JobType struct {
	Name     string
	User     string
	SizeFrac float64      // fraction of total system cores
	Count    int          // number of instances in the workload
	SET      sim.Duration // static execution time
	DET      sim.Duration // dynamic execution time (evolving types)
	Evolving bool
}

// Cores returns the instance size on a system with totalCores cores
// (rounded to the nearest core, at least 1).
func (t JobType) Cores(totalCores int) int {
	c := int(math.Round(t.SizeFrac * float64(totalCores)))
	if c < 1 {
		c = 1
	}
	return c
}

// TableI returns the paper's dynamic ESP job mix. Types F–J are the
// evolving jobs; Z is the full-configuration job.
func TableI() []JobType {
	s := func(secs int) sim.Duration { return sim.Duration(secs) * sim.Second }
	return []JobType{
		{Name: "A", User: "user01", SizeFrac: 0.03125, Count: 75, SET: s(267)},
		{Name: "B", User: "user02", SizeFrac: 0.06250, Count: 9, SET: s(322)},
		{Name: "C", User: "user03", SizeFrac: 0.50000, Count: 3, SET: s(534)},
		{Name: "D", User: "user04", SizeFrac: 0.25000, Count: 3, SET: s(616)},
		{Name: "E", User: "user05", SizeFrac: 0.50000, Count: 3, SET: s(315)},
		{Name: "F", User: "user06", SizeFrac: 0.06250, Count: 9, SET: s(1846), DET: s(1230), Evolving: true},
		{Name: "G", User: "user06", SizeFrac: 0.12500, Count: 6, SET: s(1334), DET: s(1067), Evolving: true},
		{Name: "H", User: "user06", SizeFrac: 0.15820, Count: 6, SET: s(1067), DET: s(896), Evolving: true},
		{Name: "I", User: "user06", SizeFrac: 0.03125, Count: 24, SET: s(1432), DET: s(716), Evolving: true},
		{Name: "J", User: "user06", SizeFrac: 0.06250, Count: 24, SET: s(725), DET: s(483), Evolving: true},
		{Name: "K", User: "user07", SizeFrac: 0.09570, Count: 15, SET: s(487)},
		{Name: "L", User: "user08", SizeFrac: 0.12500, Count: 36, SET: s(366)},
		{Name: "M", User: "user09", SizeFrac: 0.25000, Count: 15, SET: s(187)},
		{Name: "Z", User: "user10", SizeFrac: 1.00000, Count: 2, SET: s(100)},
	}
}

// TypeByName looks a job type up in Table I.
func TypeByName(name string) (JobType, bool) {
	for _, t := range TableI() {
		if t.Name == name {
			return t, true
		}
	}
	return JobType{}, false
}

// GenOpts parameterizes workload generation.
type GenOpts struct {
	// TotalCores is the system size the fractional job sizes scale to
	// (the paper's testbed: 15 nodes × 8 = 120).
	TotalCores int
	// Seed drives the deterministic submission-order shuffle.
	Seed int64
	// Rand, when non-nil, supplies the random stream instead of the
	// default rand.New(rand.NewSource(Seed)). Callers that compose
	// several generators on one stream inject it here; the default
	// keeps the seed-to-workload mapping bit-identical across runs.
	Rand *rand.Rand
	// Dynamic enables the evolving behaviour of types F–J; when false
	// the same jobs run statically (the paper's Static configuration).
	Dynamic bool
	// ExtraCores is the size of each dynamic request (paper: 4).
	ExtraCores int
	// AttemptFracs are the request points as fractions of SET
	// (paper: 0.16 then 0.25).
	AttemptFracs []float64
	// WalltimeFactor scales requested walltime over SET (≥ 1).
	WalltimeFactor float64
	// InitialBatch jobs are submitted at t=0 (paper: 50).
	InitialBatch int
	// SubmitInterval separates subsequent submissions (paper: 30 s).
	SubmitInterval sim.Duration
	// ZDelay separates the last regular submission from the Z jobs
	// (paper: 30 min).
	ZDelay sim.Duration
	// EvolvingOverride, when set, replaces Table I's fixed evolving set
	// (types F–J, 30% of the jobs) with a seeded random selection of
	// round(EvolvingFraction × 228) regular jobs. The selection is drawn
	// from the same random stream as the submission shuffle, after the
	// shuffle, so the submission order at a given seed is identical to
	// the unoverridden workload. Rigid Table I types get a synthetic
	// DET of 2·SET/3 when selected. Z jobs are never overridden.
	EvolvingOverride bool
	// EvolvingFraction is the target evolving-job fraction in [0, 1];
	// only consulted when EvolvingOverride is set.
	EvolvingFraction float64
	// Repeat replicates the regular Table I mix this many times (0/1 =
	// the paper's 228 jobs), scaling the queue depth for the large
	// scheduler-capacity campaign points (50k/100k jobs). The two Z
	// jobs are never replicated — they are the ESP probe, not load.
	Repeat int
}

// DefaultOpts returns the paper's evaluation parameters. The paper
// does not publish its ESP submission order; the default seed is fixed
// to the order whose results match the published qualitative ordering
// of Table II on every column (see EXPERIMENTS.md for the
// seed-sensitivity ablation).
func DefaultOpts() GenOpts {
	return GenOpts{
		TotalCores:     120,
		Seed:           5,
		Dynamic:        true,
		ExtraCores:     4,
		AttemptFracs:   rms.DefaultAttemptFracs(),
		WalltimeFactor: 1.0,
		InitialBatch:   50,
		SubmitInterval: 30 * sim.Second,
		ZDelay:         30 * sim.Minute,
	}
}

// Item is one generated job with its application model and submission
// time.
type Item struct {
	Type     JobType
	Job      *job.Job
	App      rms.App
	SubmitAt sim.Time
}

// Workload is a generated dynamic ESP instance.
type Workload struct {
	Opts  GenOpts
	Items []Item
}

// Generate builds the workload: 228 regular jobs in a seeded random
// order (first InitialBatch at t=0, the rest at SubmitInterval steps),
// followed by the two Z jobs ZDelay after the last submission.
func Generate(opts GenOpts) *Workload {
	if opts.TotalCores <= 0 {
		opts.TotalCores = 120
	}
	if opts.WalltimeFactor < 1 {
		opts.WalltimeFactor = 1
	}
	if len(opts.AttemptFracs) == 0 {
		opts.AttemptFracs = rms.DefaultAttemptFracs()
	}
	if opts.InitialBatch <= 0 {
		opts.InitialBatch = 50
	}
	if opts.SubmitInterval <= 0 {
		opts.SubmitInterval = 30 * sim.Second
	}
	if opts.ZDelay <= 0 {
		opts.ZDelay = 30 * sim.Minute
	}

	repeat := opts.Repeat
	if repeat < 1 {
		repeat = 1
	}
	var regular []Item
	var zJobs []Item
	for _, t := range TableI() {
		count := t.Count
		if t.Name != "Z" {
			count *= repeat
		}
		for i := 1; i <= count; i++ {
			it := Item{Type: t}
			cores := t.Cores(opts.TotalCores)
			wall := sim.Duration(opts.WalltimeFactor * float64(t.SET))
			j := &job.Job{
				Name:     fmt.Sprintf("%s.%d", t.Name, i),
				Cred:     job.Credentials{User: t.User, Group: "grp_" + t.User},
				Cores:    cores,
				Walltime: wall,
			}
			var app rms.App
			if t.Evolving && opts.Dynamic {
				j.Class = job.Evolving
				app = &rms.EvolvingApp{
					SET: t.SET, DET: t.DET,
					ExtraCores:   opts.ExtraCores,
					AttemptFracs: append([]float64(nil), opts.AttemptFracs...),
				}
			} else {
				if t.Evolving {
					j.Class = job.Evolving // still evolving class, but behaves rigidly
				}
				app = &rms.FixedApp{Runtime: t.SET}
			}
			it.Job, it.App = j, app
			if t.Name == "Z" {
				j.SystemPriority = 1
				zJobs = append(zJobs, it)
			} else {
				regular = append(regular, it)
			}
		}
	}

	// Deterministic submission order.
	rng := opts.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(opts.Seed))
	}
	rng.Shuffle(len(regular), func(i, k int) { regular[i], regular[k] = regular[k], regular[i] })

	if opts.EvolvingOverride {
		overrideEvolving(regular, opts, rng)
	}

	var last sim.Time
	for i := range regular {
		if i < opts.InitialBatch {
			regular[i].SubmitAt = 0
		} else {
			regular[i].SubmitAt = sim.Time(i-opts.InitialBatch+1) * opts.SubmitInterval
		}
		if regular[i].SubmitAt > last {
			last = regular[i].SubmitAt
		}
	}
	zTime := last + opts.ZDelay
	for i := range zJobs {
		zJobs[i].SubmitAt = zTime
	}

	w := &Workload{Opts: opts}
	w.Items = append(w.Items, regular...)
	w.Items = append(w.Items, zJobs...)
	return w
}

// overrideEvolving re-flags the regular jobs so that exactly
// round(f·n) of them evolve, drawing the selection from the shuffle's
// random stream (one rng.Perm call — the sweep stays deterministic per
// seed and the submission order is untouched).
func overrideEvolving(regular []Item, opts GenOpts, rng *rand.Rand) {
	f := opts.EvolvingFraction
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	k := int(math.Round(f * float64(len(regular))))
	flagged := make([]bool, len(regular))
	for _, idx := range rng.Perm(len(regular))[:k] {
		flagged[idx] = true
	}
	for i := range regular {
		it := &regular[i]
		t := it.Type
		if !flagged[i] {
			it.Job.Class = job.Rigid
			it.App = &rms.FixedApp{Runtime: t.SET}
			continue
		}
		det := t.DET
		if det <= 0 {
			det = t.SET * 2 / 3
		}
		it.Job.Class = job.Evolving
		if opts.Dynamic {
			it.App = &rms.EvolvingApp{
				SET: t.SET, DET: det,
				ExtraCores:   opts.ExtraCores,
				AttemptFracs: append([]float64(nil), opts.AttemptFracs...),
			}
		} else {
			it.App = &rms.FixedApp{Runtime: t.SET}
		}
	}
}

// SubmitAll schedules every item's submission on the server's engine
// in one batch (items at t=0 submit immediately, the rest bulk-load
// the event queue in O(n)). Call before running the engine.
func (w *Workload) SubmitAll(srv *rms.Server) {
	items := make([]rms.SubmitItem, len(w.Items))
	for i, it := range w.Items {
		items[i] = rms.SubmitItem{At: it.SubmitAt, Job: it.Job, App: it.App}
	}
	srv.SubmitBatch(items)
}

// Counts returns (total, evolving, rigid) job counts.
func (w *Workload) Counts() (total, evolving, rigid int) {
	for _, it := range w.Items {
		total++
		if it.Type.Evolving {
			evolving++
		} else {
			rigid++
		}
	}
	return
}

// TotalWork returns the core-seconds of the workload's static
// execution times — a lower bound on makespan × capacity.
func (w *Workload) TotalWork() float64 {
	var cs float64
	for _, it := range w.Items {
		cs += float64(it.Job.Cores) * sim.SecondsOf(it.Type.SET)
	}
	return cs
}

// Efficiency returns the ESP efficiency metric of the original
// benchmark (Wong et al.): E = T_best / T_observed, where T_best is
// the ideal makespan (total work / system size). 1.0 means perfect
// packing with zero idle time.
func Efficiency(totalWorkCoreSeconds float64, totalCores int, makespan sim.Duration) float64 {
	if totalCores <= 0 || makespan <= 0 {
		return 0
	}
	best := totalWorkCoreSeconds / float64(totalCores)
	return best / sim.SecondsOf(makespan)
}

// FormatTableI renders Table I for a system size.
func FormatTableI(totalCores int) string {
	out := fmt.Sprintf("%-4s %-7s %-8s %6s %6s %10s %10s\n",
		"Type", "User", "Size", "Cores", "Count", "SET[secs]", "DET[secs]")
	for _, t := range TableI() {
		det := "-"
		if t.Evolving {
			det = fmt.Sprintf("%d", int(t.DET/sim.Second))
		}
		out += fmt.Sprintf("%-4s %-7s %-8.5f %6d %6d %10d %10s\n",
			t.Name, t.User, t.SizeFrac, t.Cores(totalCores), t.Count, int(t.SET/sim.Second), det)
	}
	return out
}
