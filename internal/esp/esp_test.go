package esp

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/rms"
	"repro/internal/sim"
)

func TestTableIShape(t *testing.T) {
	types := TableI()
	if len(types) != 14 {
		t.Fatalf("types = %d, want 14", len(types))
	}
	total, evolving := 0, 0
	for _, ty := range types {
		total += ty.Count
		if ty.Evolving {
			evolving += ty.Count
		}
	}
	if total != 230 {
		t.Errorf("total jobs = %d, want 230", total)
	}
	if evolving != 69 {
		t.Errorf("evolving jobs = %d, want 69 (30%%)", evolving)
	}
	// All evolving types belong to user06 and have DET < SET.
	for _, ty := range types {
		if ty.Evolving {
			if ty.User != "user06" {
				t.Errorf("evolving type %s user = %s", ty.Name, ty.User)
			}
			if ty.DET <= 0 || ty.DET >= ty.SET {
				t.Errorf("type %s DET %v not in (0, SET)", ty.Name, ty.DET)
			}
		} else if ty.DET != 0 {
			t.Errorf("rigid type %s has DET", ty.Name)
		}
	}
	z, ok := TypeByName("Z")
	if !ok || z.SizeFrac != 1.0 || z.Count != 2 || z.SET != 100*sim.Second {
		t.Errorf("Z type = %+v", z)
	}
	if _, ok := TypeByName("Q"); ok {
		t.Error("unknown type lookup should fail")
	}
}

func TestCoresScaling(t *testing.T) {
	a, _ := TypeByName("A")
	if a.Cores(120) != 4 { // 3.75 rounds to 4
		t.Errorf("A cores on 120 = %d", a.Cores(120))
	}
	if a.Cores(512) != 16 {
		t.Errorf("A cores on 512 = %d", a.Cores(512))
	}
	h, _ := TypeByName("H")
	if h.Cores(120) != 19 { // 18.98
		t.Errorf("H cores = %d", h.Cores(120))
	}
	z, _ := TypeByName("Z")
	if z.Cores(120) != 120 {
		t.Errorf("Z cores = %d", z.Cores(120))
	}
	tiny := JobType{SizeFrac: 0.001}
	if tiny.Cores(120) != 1 {
		t.Error("minimum one core")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	w1 := Generate(DefaultOpts())
	w2 := Generate(DefaultOpts())
	if len(w1.Items) != len(w2.Items) {
		t.Fatal("lengths differ")
	}
	for i := range w1.Items {
		if w1.Items[i].Job.Name != w2.Items[i].Job.Name || w1.Items[i].SubmitAt != w2.Items[i].SubmitAt {
			t.Fatalf("item %d differs: %s@%v vs %s@%v", i,
				w1.Items[i].Job.Name, w1.Items[i].SubmitAt,
				w2.Items[i].Job.Name, w2.Items[i].SubmitAt)
		}
	}
	opts := DefaultOpts()
	opts.Seed = 99
	w3 := Generate(opts)
	same := true
	for i := range w1.Items[:228] {
		if w1.Items[i].Job.Name != w3.Items[i].Job.Name {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds should shuffle differently")
	}
}

// TestGenerateInjectedRand pins the bit-compatibility contract of
// GenOpts.Rand: injecting rand.New(rand.NewSource(Seed)) must yield
// exactly the stream the Seed field produces on its own, so existing
// seed-keyed results (Table II) stay valid when callers move to
// explicit injection.
func TestGenerateInjectedRand(t *testing.T) {
	def := Generate(DefaultOpts())
	opts := DefaultOpts()
	opts.Rand = rand.New(rand.NewSource(opts.Seed))
	inj := Generate(opts)
	if len(def.Items) != len(inj.Items) {
		t.Fatalf("lengths differ: %d vs %d", len(def.Items), len(inj.Items))
	}
	for i := range def.Items {
		if def.Items[i].Job.Name != inj.Items[i].Job.Name || def.Items[i].SubmitAt != inj.Items[i].SubmitAt {
			t.Fatalf("item %d differs with injected same-seed Rand", i)
		}
	}
}

func TestGenerateSubmissionSchedule(t *testing.T) {
	w := Generate(DefaultOpts())
	total, evolving, rigid := w.Counts()
	if total != 230 || evolving != 69 || rigid != 161 {
		t.Fatalf("counts = %d/%d/%d", total, evolving, rigid)
	}
	// First 50 regular jobs at t=0.
	for i := 0; i < 50; i++ {
		if w.Items[i].SubmitAt != 0 {
			t.Fatalf("item %d submit = %v", i, w.Items[i].SubmitAt)
		}
		if w.Items[i].Type.Name == "Z" {
			t.Fatal("Z must not be in the initial batch")
		}
	}
	// Remaining 178 regular jobs at 30 s intervals.
	for i := 50; i < 228; i++ {
		want := sim.Time(i-49) * 30 * sim.Second
		if w.Items[i].SubmitAt != want {
			t.Fatalf("item %d submit = %v, want %v", i, w.Items[i].SubmitAt, want)
		}
	}
	// Z jobs 30 minutes after the last regular submission.
	lastRegular := w.Items[227].SubmitAt
	for _, it := range w.Items[228:] {
		if it.Type.Name != "Z" {
			t.Fatal("last two items must be Z")
		}
		if it.SubmitAt != lastRegular+30*sim.Minute {
			t.Errorf("Z submit = %v, want %v", it.SubmitAt, lastRegular+30*sim.Minute)
		}
		if it.Job.SystemPriority <= 0 {
			t.Error("Z jobs carry system priority")
		}
	}
}

func TestGenerateDynamicVsStatic(t *testing.T) {
	dyn := Generate(DefaultOpts())
	evolvingApps := 0
	for _, it := range dyn.Items {
		if _, ok := it.App.(*rms.EvolvingApp); ok {
			evolvingApps++
			if !it.Type.Evolving {
				t.Error("rigid type with evolving app")
			}
			if it.Job.Class != job.Evolving {
				t.Error("evolving app job class")
			}
		}
	}
	if evolvingApps != 69 {
		t.Errorf("evolving apps = %d", evolvingApps)
	}
	opts := DefaultOpts()
	opts.Dynamic = false
	static := Generate(opts)
	for _, it := range static.Items {
		if _, ok := it.App.(*rms.EvolvingApp); ok {
			t.Fatal("static workload must not contain evolving apps")
		}
	}
}

func TestTotalWork(t *testing.T) {
	w := Generate(DefaultOpts())
	work := w.TotalWork()
	// Hand-computed core-seconds for 120 cores (see DESIGN.md):
	// ≈ 1.35e6. Allow rounding slack.
	if work < 1.30e6 || work > 1.40e6 {
		t.Errorf("total work = %v core-seconds", work)
	}
}

func TestFormatTableI(t *testing.T) {
	s := FormatTableI(120)
	if !strings.Contains(s, "user06") || !strings.Contains(s, "1846") {
		t.Errorf("table missing rows:\n%s", s)
	}
	lines := strings.Count(s, "\n")
	if lines != 15 { // header + 14 types
		t.Errorf("table lines = %d", lines)
	}
}

func TestGenerateDegenerateOpts(t *testing.T) {
	w := Generate(GenOpts{})
	if len(w.Items) != 230 {
		t.Error("zero-value opts should still generate the full workload")
	}
	if w.Opts.TotalCores != 120 || w.Opts.WalltimeFactor != 1 {
		t.Errorf("defaults not applied: %+v", w.Opts)
	}
}

func TestWalltimeFactor(t *testing.T) {
	opts := DefaultOpts()
	opts.WalltimeFactor = 1.5
	w := Generate(opts)
	for _, it := range w.Items {
		want := sim.Duration(1.5 * float64(it.Type.SET))
		if it.Job.Walltime != want {
			t.Fatalf("%s walltime = %v, want %v", it.Job.Name, it.Job.Walltime, want)
		}
	}
}

func TestEfficiency(t *testing.T) {
	// 1200 core-seconds on 12 cores: best makespan 100 s.
	if got := Efficiency(1200, 12, 100*sim.Second); got != 1 {
		t.Errorf("perfect efficiency = %v", got)
	}
	if got := Efficiency(1200, 12, 200*sim.Second); got != 0.5 {
		t.Errorf("half efficiency = %v", got)
	}
	if Efficiency(1200, 0, 100) != 0 || Efficiency(1200, 12, 0) != 0 {
		t.Error("degenerate efficiency should be 0")
	}
	// The real workload: efficiency equals utilization modulo the
	// dynamic-speedup effect; sanity-band it for the static run.
	w := Generate(DefaultOpts())
	e := Efficiency(w.TotalWork(), 120, sim.Duration(228*60)*sim.Second)
	if e < 0.7 || e > 0.95 {
		t.Errorf("static-run efficiency = %v", e)
	}
}

func TestGenerateRepeat(t *testing.T) {
	base := DefaultOpts()
	plain := Generate(base)

	// Repeat <= 1 must be byte-identical to the default workload.
	one := base
	one.Repeat = 1
	w1 := Generate(one)
	if len(w1.Items) != len(plain.Items) {
		t.Fatalf("Repeat=1 changed the workload: %d items, want %d", len(w1.Items), len(plain.Items))
	}
	for i := range plain.Items {
		if plain.Items[i].Job.Name != w1.Items[i].Job.Name ||
			plain.Items[i].SubmitAt != w1.Items[i].SubmitAt {
			t.Fatalf("Repeat=1 disturbed item %d", i)
		}
	}

	// Repeat=3: the regular mix triples, the two Z probe jobs do not.
	three := base
	three.Repeat = 3
	w3 := Generate(three)
	if got, want := len(w3.Items), 228*3+2; got != want {
		t.Fatalf("Repeat=3 generates %d items, want %d", got, want)
	}
	z := 0
	for _, it := range w3.Items {
		if it.Type.Name == "Z" {
			z++
		}
	}
	if z != 2 {
		t.Errorf("Repeat must not replicate the Z jobs: got %d", z)
	}

	// The evolving share of the mix is preserved under replication.
	_, ev1, _ := plain.Counts()
	_, ev3, _ := w3.Counts()
	if ev3 != ev1*3 {
		t.Errorf("evolving count %d, want %d", ev3, ev1*3)
	}
}
