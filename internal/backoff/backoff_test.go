package backoff

import (
	"math/rand"
	"testing"
	"time"
)

func TestDelayGrowsAndCaps(t *testing.T) {
	p := Policy{Base: 100 * time.Millisecond, Max: time.Second, Jitter: -1}
	want := []time.Duration{
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		time.Second,
		time.Second, // capped
	}
	for i, w := range want {
		if got := p.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestDelayBounds(t *testing.T) {
	p := Policy{Base: 80 * time.Millisecond, Max: 2 * time.Second, Jitter: 0.5}
	rng := rand.New(rand.NewSource(7))
	for attempt := 0; attempt < 20; attempt++ {
		d := p.Delay(attempt, rng)
		if d < p.Base/2 || d > p.Max {
			t.Fatalf("Delay(%d) = %v out of [%v, %v]", attempt, d, p.Base/2, p.Max)
		}
	}
	// Negative attempts behave like attempt 0.
	if d := p.Delay(-3, nil); d > p.Base {
		t.Errorf("negative attempt = %v", d)
	}
}

func TestDelayDeterministicPerSeed(t *testing.T) {
	p := Policy{}
	a := rand.New(rand.NewSource(Seed("node0")))
	b := rand.New(rand.NewSource(Seed("node0")))
	for i := 0; i < 10; i++ {
		if x, y := p.Delay(i, a), p.Delay(i, b); x != y {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, x, y)
		}
	}
	if Seed("node0") == Seed("node1") {
		t.Error("distinct names should give distinct seeds")
	}
}

func TestDefaults(t *testing.T) {
	p := Policy{}.withDefaults()
	if p.Base != 100*time.Millisecond || p.Max != 5*time.Second || p.Jitter != 0.5 {
		t.Errorf("defaults = %+v", p)
	}
	// Jitter clamping.
	if got := (Policy{Jitter: 9}).withDefaults().Jitter; got != 1 {
		t.Errorf("jitter clamp high = %v", got)
	}
	if got := (Policy{Jitter: -1}).withDefaults().Jitter; got != 0 {
		t.Errorf("jitter clamp low = %v", got)
	}
	if d := (Policy{}).Delay(0, NewRand("x")); d <= 0 || d > 100*time.Millisecond {
		t.Errorf("default first delay = %v", d)
	}
}
