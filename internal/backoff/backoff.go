// Package backoff computes capped exponential backoff with
// deterministic jitter for the live daemons' retry loops (mom→server
// reconnection, mauid poll degradation, TM client call retries). The
// package is pure computation: it never sleeps and never touches the
// wall clock or the process-global rand source — callers supply an
// explicitly seeded *rand.Rand and do their own waiting, which keeps
// every retry schedule reproducible under test.
package backoff

import (
	"hash/fnv"
	"math/rand"
	"time"
)

// Policy describes a capped exponential backoff schedule.
type Policy struct {
	// Base is the delay before the first retry. Zero selects the
	// default of 100ms.
	Base time.Duration
	// Max caps the exponential growth. Zero selects the default of 5s.
	Max time.Duration
	// Jitter is the fraction of the delay randomized away (0..1).
	// With Jitter = 0.5 a computed 800ms delay lands uniformly in
	// [400ms, 800ms]. Negative values mean no jitter; zero selects
	// the default of 0.5 (halving the thundering-herd window without
	// making schedules wildly unpredictable).
	Jitter float64
}

// withDefaults fills zero fields.
func (p Policy) withDefaults() Policy {
	if p.Base <= 0 {
		p.Base = 100 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 5 * time.Second
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Delay returns the wait before retry attempt (0-based). The schedule
// is Base<<attempt capped at Max, minus up to Jitter of itself drawn
// from rng. A nil rng disables jitter. Delay never returns a value
// below Base/2 or above Max.
func (p Policy) Delay(attempt int, rng *rand.Rand) time.Duration {
	p = p.withDefaults()
	if attempt < 0 {
		attempt = 0
	}
	d := p.Base
	for i := 0; i < attempt; i++ {
		d *= 2
		if d >= p.Max {
			d = p.Max
			break
		}
	}
	if rng != nil && p.Jitter > 0 {
		cut := time.Duration(p.Jitter * rng.Float64() * float64(d))
		d -= cut
	}
	if min := p.Base / 2; d < min {
		d = min
	}
	return d
}

// Seed derives a stable rand seed from a name, so every daemon gets a
// distinct but reproducible jitter stream (mom "node3" always jitters
// the same way, which keeps chaos tests replayable).
func Seed(name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64())
}

// NewRand is a convenience for rand.New(rand.NewSource(Seed(name))).
func NewRand(name string) *rand.Rand {
	return rand.New(rand.NewSource(Seed(name)))
}
