// Package metrics collects the scheduling-outcome statistics the
// paper's evaluation reports: per-job waiting and turnaround times,
// system utilization (time-integral of busy cores over capacity),
// throughput, and the number of satisfied dynamic requests.
package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/job"
	"repro/internal/sim"
)

// JobRecord is the completed-job accounting row.
type JobRecord struct {
	ID         job.ID
	Type       string // workload job type ("A".."M", "Z", ...)
	User       string
	Cores      int
	Submit     sim.Time
	Start      sim.Time
	End        sim.Time
	Backfilled bool
	Evolving   bool
	// DynGranted reports whether an evolving job obtained dynamic
	// resources; GrantTime is when (first grant).
	DynGranted bool
	GrantTime  sim.Time
}

// Wait returns the job's queue waiting time.
func (r JobRecord) Wait() sim.Duration { return r.Start - r.Submit }

// Turnaround returns submit-to-completion time.
func (r JobRecord) Turnaround() sim.Duration { return r.End - r.Submit }

// Recorder accumulates usage and job records during one workload run.
type Recorder struct {
	capacity int

	lastT    sim.Time
	lastUsed int
	integral float64 // core-milliseconds of busy time

	firstSubmit sim.Time
	haveSubmit  bool
	lastEnd     sim.Time

	jobs []JobRecord
}

// NewRecorder creates a recorder for a cluster of the given capacity.
func NewRecorder(capacity int) *Recorder {
	return &Recorder{capacity: capacity}
}

// Capacity returns the recorded cluster capacity in cores.
func (r *Recorder) Capacity() int { return r.capacity }

// ObserveUsage must be called whenever the number of busy cores
// changes (job start/end, dynamic grow/shrink). used is the busy core
// count from time t onward.
func (r *Recorder) ObserveUsage(t sim.Time, used int) {
	if t > r.lastT {
		r.integral += float64(r.lastUsed) * float64(t-r.lastT)
		r.lastT = t
	}
	r.lastUsed = used
}

// ObserveSubmit marks a job submission (used for makespan start).
func (r *Recorder) ObserveSubmit(t sim.Time) {
	if !r.haveSubmit || t < r.firstSubmit {
		r.firstSubmit = t
		r.haveSubmit = true
	}
}

// AddJob records a completed job.
func (r *Recorder) AddJob(rec JobRecord) {
	r.jobs = append(r.jobs, rec)
	if rec.End > r.lastEnd {
		r.lastEnd = rec.End
	}
}

// Jobs returns the completed-job records sorted by submission time
// (ties by ID), i.e. "in the order of job submission" as the paper's
// waiting-time figures are plotted.
func (r *Recorder) Jobs() []JobRecord {
	out := make([]JobRecord, len(r.jobs))
	copy(out, r.jobs)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Submit != out[j].Submit {
			return out[i].Submit < out[j].Submit
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// JobsOfType returns completed jobs of one workload type, in
// submission order.
func (r *Recorder) JobsOfType(typ string) []JobRecord {
	var out []JobRecord
	for _, rec := range r.Jobs() {
		if rec.Type == typ {
			out = append(out, rec)
		}
	}
	return out
}

// Makespan returns the first-submit to last-completion span.
func (r *Recorder) Makespan() sim.Duration {
	if !r.haveSubmit {
		return 0
	}
	return r.lastEnd - r.firstSubmit
}

// Utilization returns busy-core-time over capacity-time across the
// makespan, in [0,1]. The integral is finalized up to the last
// completion before computing.
func (r *Recorder) Utilization() float64 {
	r.ObserveUsage(r.lastEnd, r.lastUsed)
	span := r.Makespan()
	if span <= 0 || r.capacity == 0 {
		return 0
	}
	return r.integral / (float64(r.capacity) * float64(span))
}

// Throughput returns completed jobs per minute of makespan.
func (r *Recorder) Throughput() float64 {
	span := sim.MinutesOf(r.Makespan())
	if span <= 0 {
		return 0
	}
	return float64(len(r.jobs)) / span
}

// SatisfiedDynJobs counts evolving jobs whose dynamic request was
// granted.
func (r *Recorder) SatisfiedDynJobs() int {
	n := 0
	for _, rec := range r.jobs {
		if rec.Evolving && rec.DynGranted {
			n++
		}
	}
	return n
}

// BackfilledJobs counts jobs started out of priority order.
func (r *Recorder) BackfilledJobs() int {
	n := 0
	for _, rec := range r.jobs {
		if rec.Backfilled {
			n++
		}
	}
	return n
}

// MeanWait returns the average waiting time over all completed jobs.
func (r *Recorder) MeanWait() sim.Duration {
	if len(r.jobs) == 0 {
		return 0
	}
	var total sim.Duration
	for _, rec := range r.jobs {
		total += rec.Wait()
	}
	return total / sim.Duration(len(r.jobs))
}

// MaxWait returns the maximum waiting time over all completed jobs.
func (r *Recorder) MaxWait() sim.Duration {
	var max sim.Duration
	for _, rec := range r.jobs {
		if w := rec.Wait(); w > max {
			max = w
		}
	}
	return max
}

// WaitSeries returns waiting times in seconds, in submission order —
// the series plotted in Figs. 8, 10, 11.
func (r *Recorder) WaitSeries() []float64 {
	jobs := r.Jobs()
	out := make([]float64, len(jobs))
	for i, rec := range jobs {
		out[i] = sim.SecondsOf(rec.Wait())
	}
	return out
}

// Summary is the Table II row for one configuration.
type Summary struct {
	Name             string
	MakespanMinutes  float64
	SatisfiedDynJobs int
	UtilizationPct   float64
	ThroughputJPM    float64
	Backfilled       int
	MeanWaitSeconds  float64
	MaxWaitSeconds   float64
	Jobs             int
}

// Summarize produces the Table II row for a finished run.
func (r *Recorder) Summarize(name string) Summary {
	return Summary{
		Name:             name,
		MakespanMinutes:  sim.MinutesOf(r.Makespan()),
		SatisfiedDynJobs: r.SatisfiedDynJobs(),
		UtilizationPct:   r.Utilization() * 100,
		ThroughputJPM:    r.Throughput(),
		Backfilled:       r.BackfilledJobs(),
		MeanWaitSeconds:  sim.SecondsOf(r.MeanWait()),
		MaxWaitSeconds:   sim.SecondsOf(r.MaxWait()),
		Jobs:             len(r.jobs),
	}
}

// FormatTable renders Table II from a set of configuration summaries,
// including the throughput increase over the first (baseline) row.
func FormatTable(rows []Summary) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %10s %14s %8s %12s %12s %11s\n",
		"Config", "Time[mins]", "SatisfiedDyn", "Util[%]", "TP[Jobs/min]", "TP[%+Incr]", "Backfilled")
	var baseTP float64
	for i, row := range rows {
		inc := "-"
		if i == 0 {
			baseTP = row.ThroughputJPM
		} else if baseTP > 0 {
			inc = fmt.Sprintf("%.1f", (row.ThroughputJPM-baseTP)/baseTP*100)
		}
		fmt.Fprintf(&b, "%-10s %10.2f %14d %8.2f %12.2f %12s %11d\n",
			row.Name, row.MakespanMinutes, row.SatisfiedDynJobs,
			row.UtilizationPct, row.ThroughputJPM, inc, row.Backfilled)
	}
	return b.String()
}

// FormatProgress renders a one-line campaign progress indicator
// ("[=====>    ] 12/40 runs"), suitable for overwriting with \r.
func FormatProgress(done, total int) string {
	const width = 24
	if total <= 0 {
		return fmt.Sprintf("[%s] %d/%d runs", strings.Repeat(" ", width), done, total)
	}
	filled := done * width / total
	if filled > width {
		filled = width
	}
	bar := strings.Repeat("=", filled)
	if filled < width {
		bar += ">" + strings.Repeat(" ", width-filled-1)
	}
	return fmt.Sprintf("[%s] %d/%d runs", bar, done, total)
}
