package metrics

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Percentile returns the p-th percentile (0..100) of the values using
// nearest-rank on a sorted copy. Returns 0 for empty input.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return 0
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := int(p/100*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// slowdownFloor bounds the denominator of the bounded slowdown, the
// standard 10-second threshold of the parallel-workloads literature.
const slowdownFloor = 10 * sim.Second

// BoundedSlowdown returns the job's bounded slowdown:
// max(1, (wait + runtime) / max(runtime, 10 s)).
func (r JobRecord) BoundedSlowdown() float64 {
	runtime := r.End - r.Start
	den := runtime
	if den < slowdownFloor {
		den = slowdownFloor
	}
	if den <= 0 {
		return 1
	}
	s := float64(r.Turnaround()) / float64(den)
	if s < 1 {
		return 1
	}
	return s
}

// SlowdownSeries returns bounded slowdowns in submission order.
func (r *Recorder) SlowdownSeries() []float64 {
	jobs := r.Jobs()
	out := make([]float64, len(jobs))
	for i, rec := range jobs {
		out[i] = rec.BoundedSlowdown()
	}
	return out
}

// MeanBoundedSlowdown averages the bounded slowdown over all jobs.
func (r *Recorder) MeanBoundedSlowdown() float64 {
	s := r.SlowdownSeries()
	if len(s) == 0 {
		return 0
	}
	var tot float64
	for _, v := range s {
		tot += v
	}
	return tot / float64(len(s))
}

// UserUsage is the per-user accounting row (the fairshare and billing
// view of a run).
type UserUsage struct {
	User        string
	Jobs        int
	CoreSeconds float64
	WaitSeconds float64 // summed waiting time
}

// UsageByUser aggregates completed jobs per user, sorted by descending
// core-seconds.
func (r *Recorder) UsageByUser() []UserUsage {
	agg := map[string]*UserUsage{}
	for _, rec := range r.jobs {
		u, ok := agg[rec.User]
		if !ok {
			u = &UserUsage{User: rec.User}
			agg[rec.User] = u
		}
		u.Jobs++
		u.CoreSeconds += float64(rec.Cores) * sim.SecondsOf(rec.End-rec.Start)
		u.WaitSeconds += sim.SecondsOf(rec.Wait())
	}
	out := make([]UserUsage, 0, len(agg))
	for _, u := range agg {
		out = append(out, *u)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].CoreSeconds != out[j].CoreSeconds {
			return out[i].CoreSeconds > out[j].CoreSeconds
		}
		return out[i].User < out[j].User
	})
	return out
}

// FormatUsage renders the per-user accounting table.
func FormatUsage(rows []UserUsage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-10s %6s %16s %14s\n", "User", "Jobs", "Core-hours", "Wait[h]")
	for _, u := range rows {
		fmt.Fprintf(&b, "%-10s %6d %16.2f %14.2f\n",
			u.User, u.Jobs, u.CoreSeconds/3600, u.WaitSeconds/3600)
	}
	return b.String()
}

// WaitPercentiles summarizes the waiting-time distribution.
func (r *Recorder) WaitPercentiles() (p50, p90, p99 float64) {
	w := r.WaitSeries()
	return Percentile(w, 50), Percentile(w, 90), Percentile(w, 99)
}
