package metrics

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestPercentile(t *testing.T) {
	vals := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {100, 5}, {50, 3}, {20, 1}, {90, 5},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("P%.0f = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile")
	}
	// Input must not be mutated.
	in := []float64{3, 1, 2}
	Percentile(in, 50)
	if in[0] != 3 {
		t.Error("Percentile mutated its input")
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = rng.Float64() * 1000
		}
		sorted := append([]float64(nil), vals...)
		sort.Float64s(sorted)
		prev := sorted[0] - 1
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(vals, p)
			if v < sorted[0] || v > sorted[n-1] || v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBoundedSlowdown(t *testing.T) {
	// 100 s wait + 100 s run: slowdown = 200/100 = 2.
	r := JobRecord{Submit: 0, Start: 100 * sim.Second, End: 200 * sim.Second}
	if got := r.BoundedSlowdown(); got != 2 {
		t.Errorf("slowdown = %v, want 2", got)
	}
	// Very short job: denominator floors at 10 s.
	r2 := JobRecord{Submit: 0, Start: 100 * sim.Second, End: 101 * sim.Second}
	if got := r2.BoundedSlowdown(); got != 10.1 {
		t.Errorf("short-job slowdown = %v, want 10.1", got)
	}
	// No wait: slowdown is 1.
	r3 := JobRecord{Submit: 0, Start: 0, End: 100 * sim.Second}
	if got := r3.BoundedSlowdown(); got != 1 {
		t.Errorf("no-wait slowdown = %v", got)
	}
}

func TestSlowdownSeries(t *testing.T) {
	rec := NewRecorder(8)
	rec.ObserveSubmit(0)
	rec.AddJob(JobRecord{ID: 1, Submit: 0, Start: 0, End: 100 * sim.Second})
	rec.AddJob(JobRecord{ID: 2, Submit: 0, Start: 100 * sim.Second, End: 200 * sim.Second})
	s := rec.SlowdownSeries()
	if len(s) != 2 || s[0] != 1 || s[1] != 2 {
		t.Errorf("series = %v", s)
	}
	if got := rec.MeanBoundedSlowdown(); got != 1.5 {
		t.Errorf("mean = %v", got)
	}
	empty := NewRecorder(8)
	if empty.MeanBoundedSlowdown() != 0 {
		t.Error("empty mean slowdown")
	}
}

func TestUsageByUser(t *testing.T) {
	rec := NewRecorder(8)
	rec.ObserveSubmit(0)
	rec.AddJob(JobRecord{ID: 1, User: "a", Cores: 4, Submit: 0, Start: 0, End: 3600 * sim.Second})
	rec.AddJob(JobRecord{ID: 2, User: "b", Cores: 8, Submit: 0, Start: 600 * sim.Second, End: 4200 * sim.Second})
	rec.AddJob(JobRecord{ID: 3, User: "a", Cores: 2, Submit: 0, Start: 0, End: 1800 * sim.Second})
	usage := rec.UsageByUser()
	if len(usage) != 2 {
		t.Fatalf("users = %d", len(usage))
	}
	// b: 8 cores x 3600 s = 28800; a: 4x3600 + 2x1800 = 18000.
	if usage[0].User != "b" || usage[0].CoreSeconds != 28800 {
		t.Errorf("top user = %+v", usage[0])
	}
	if usage[1].User != "a" || usage[1].CoreSeconds != 18000 || usage[1].Jobs != 2 {
		t.Errorf("second user = %+v", usage[1])
	}
	if usage[0].WaitSeconds != 600 {
		t.Errorf("b wait = %v", usage[0].WaitSeconds)
	}
	out := FormatUsage(usage)
	if !strings.Contains(out, "Core-hours") || !strings.Contains(out, "b") {
		t.Errorf("usage table:\n%s", out)
	}
}

func TestWaitPercentiles(t *testing.T) {
	rec := NewRecorder(8)
	rec.ObserveSubmit(0)
	for i := 1; i <= 100; i++ {
		rec.AddJob(JobRecord{
			ID: 1, Submit: 0,
			Start: sim.Duration(i) * sim.Second,
			End:   sim.Duration(i+10) * sim.Second,
		})
	}
	p50, p90, p99 := rec.WaitPercentiles()
	if p50 != 50 || p90 != 90 || p99 != 99 {
		t.Errorf("percentiles = %v %v %v", p50, p90, p99)
	}
}
