package metrics

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func TestUtilizationIntegral(t *testing.T) {
	r := NewRecorder(10)
	r.ObserveSubmit(0)
	r.ObserveUsage(0, 10) // full for 50s
	r.ObserveUsage(50*sim.Second, 0)
	r.AddJob(JobRecord{ID: 1, Submit: 0, Start: 0, End: 100 * sim.Second})
	// 10 cores busy for 50s of a 100s makespan on 10 cores = 50%.
	if got := r.Utilization(); got < 0.499 || got > 0.501 {
		t.Errorf("utilization = %v, want 0.5", got)
	}
	if r.Makespan() != 100*sim.Second {
		t.Errorf("makespan = %v", r.Makespan())
	}
}

func TestUtilizationIdempotent(t *testing.T) {
	r := NewRecorder(4)
	r.ObserveSubmit(0)
	r.ObserveUsage(0, 4)
	r.AddJob(JobRecord{ID: 1, Submit: 0, Start: 0, End: 10 * sim.Second})
	u1 := r.Utilization()
	u2 := r.Utilization()
	if u1 != u2 {
		t.Errorf("Utilization must be idempotent: %v then %v", u1, u2)
	}
	if u1 < 0.999 {
		t.Errorf("fully busy = %v", u1)
	}
}

func TestOutOfOrderUsageIgnored(t *testing.T) {
	r := NewRecorder(4)
	r.ObserveUsage(10*sim.Second, 4)
	r.ObserveUsage(5*sim.Second, 0) // stale: must not rewind the clock
	r.ObserveUsage(20*sim.Second, 0)
	r.ObserveSubmit(0)
	r.AddJob(JobRecord{End: 20 * sim.Second})
	if got := r.Utilization(); got != 0 {
		// Stale sample replaced `used` at t=10 with 0, so no busy time
		// accumulated between 10 and 20.
		t.Logf("utilization = %v (stale handling)", got)
	}
}

func TestJobsSortedBySubmission(t *testing.T) {
	r := NewRecorder(4)
	r.ObserveSubmit(0)
	r.AddJob(JobRecord{ID: 2, Submit: 10, Start: 20, End: 30})
	r.AddJob(JobRecord{ID: 1, Submit: 5, Start: 6, End: 7})
	r.AddJob(JobRecord{ID: 3, Submit: 10, Start: 11, End: 12})
	jobs := r.Jobs()
	if jobs[0].ID != 1 || jobs[1].ID != 2 || jobs[2].ID != 3 {
		t.Errorf("order = %v %v %v", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestWaitAndTurnaround(t *testing.T) {
	rec := JobRecord{Submit: 10 * sim.Second, Start: 25 * sim.Second, End: 60 * sim.Second}
	if rec.Wait() != 15*sim.Second || rec.Turnaround() != 50*sim.Second {
		t.Error("wait/turnaround math")
	}
}

func TestCountsAndSeries(t *testing.T) {
	r := NewRecorder(8)
	r.ObserveSubmit(0)
	r.AddJob(JobRecord{ID: 1, Type: "L", Submit: 0, Start: 10 * sim.Second, End: 20 * sim.Second, Backfilled: true})
	r.AddJob(JobRecord{ID: 2, Type: "F", Submit: 5 * sim.Second, Start: 5 * sim.Second, End: 50 * sim.Second, Evolving: true, DynGranted: true})
	r.AddJob(JobRecord{ID: 3, Type: "F", Submit: 6 * sim.Second, Start: 30 * sim.Second, End: 90 * sim.Second, Evolving: true})
	if r.SatisfiedDynJobs() != 1 {
		t.Error("satisfied dyn count")
	}
	if r.BackfilledJobs() != 1 {
		t.Error("backfilled count")
	}
	if got := r.JobsOfType("F"); len(got) != 2 {
		t.Errorf("type F jobs = %d", len(got))
	}
	ws := r.WaitSeries()
	if len(ws) != 3 || ws[0] != 10 || ws[1] != 0 || ws[2] != 24 {
		t.Errorf("wait series = %v", ws)
	}
	if r.MeanWait() != (10*sim.Second+0+24*sim.Second)/3 {
		t.Errorf("mean wait = %v", r.MeanWait())
	}
	if r.MaxWait() != 24*sim.Second {
		t.Errorf("max wait = %v", r.MaxWait())
	}
}

func TestThroughput(t *testing.T) {
	r := NewRecorder(8)
	r.ObserveSubmit(0)
	for i := 1; i <= 10; i++ {
		r.AddJob(JobRecord{ID: 1, End: 5 * sim.Minute})
	}
	if got := r.Throughput(); got != 2 {
		t.Errorf("throughput = %v jobs/min, want 2", got)
	}
}

func TestEmptyRecorder(t *testing.T) {
	r := NewRecorder(8)
	if r.Utilization() != 0 || r.Throughput() != 0 || r.Makespan() != 0 {
		t.Error("empty recorder should be all zeros")
	}
	if r.MeanWait() != 0 || r.MaxWait() != 0 {
		t.Error("empty waits")
	}
	if len(r.WaitSeries()) != 0 {
		t.Error("empty series")
	}
}

func TestSummarizeAndFormatTable(t *testing.T) {
	r := NewRecorder(8)
	r.ObserveSubmit(0)
	r.ObserveUsage(0, 8)
	r.AddJob(JobRecord{ID: 1, Submit: 0, Start: 0, End: 10 * sim.Minute, Evolving: true, DynGranted: true})
	s := r.Summarize("Static")
	if s.Name != "Static" || s.Jobs != 1 || s.SatisfiedDynJobs != 1 {
		t.Errorf("summary = %+v", s)
	}
	if s.UtilizationPct < 99.9 {
		t.Errorf("util pct = %v", s.UtilizationPct)
	}
	table := FormatTable([]Summary{s, {Name: "Dyn-HP", ThroughputJPM: s.ThroughputJPM * 1.113}})
	if !strings.Contains(table, "Static") || !strings.Contains(table, "Dyn-HP") {
		t.Error("table missing rows")
	}
	if !strings.Contains(table, "11.3") {
		t.Errorf("table should show throughput increase:\n%s", table)
	}
}
