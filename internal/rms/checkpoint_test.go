package rms

import (
	"testing"

	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
)

// preemptScenario builds the standard preemption setup: an evolving
// high-priority job whose dynamic request preempts a backfilled
// victim running the given app.
func preemptScenario(t *testing.T, victimApp App) (*harness, *job.Job) {
	t.Helper()
	h := newHarness(2, 8, fairness.None, func(c *config.SchedConfig) {
		c.PreemptPolicy = "REQUEUE"
	})
	long := &job.Job{Name: "hp", Cred: job.Credentials{User: "a"}, Class: job.Evolving, Cores: 8, Walltime: 2 * sim.Hour}
	h.srv.Submit(long, &FixedApp{Runtime: sim.Hour})
	big := &job.Job{Name: "big", Cred: job.Credentials{User: "b"}, Cores: 16, Walltime: sim.Hour}
	h.srv.SubmitAt(sim.Second, big, &FixedApp{Runtime: 30 * sim.Minute})
	victim := &job.Job{Name: "bf", Cred: job.Credentials{User: "c"}, Cores: 8, Walltime: 40 * sim.Minute}
	h.srv.SubmitAt(2*sim.Second, victim, victimApp)
	h.eng.At(10*sim.Minute, "dynget", func(sim.Time) {
		if victim.State == job.Running {
			_ = h.srv.RequestDyn(long, 8)
		}
	})
	return h, victim
}

// TestCheckpointablePreemption: with checkpointing, the preempted job
// resumes from where it stopped and finishes earlier than a full
// restart would.
func TestCheckpointablePreemption(t *testing.T) {
	app := &FixedApp{Runtime: 20 * sim.Minute, Checkpointable: true}
	h, victim := preemptScenario(t, app)
	h.srv.Run(0)
	if victim.State != job.Completed {
		t.Fatalf("victim state = %v", victim.State)
	}
	// Preempted at 10 min with ~10 min of progress: after the restart
	// only ~10 min remain, so total run-segment time is ~20 min.
	restartRun := victim.EndTime - victim.StartTime
	if restartRun >= 20*sim.Minute {
		t.Errorf("checkpointed restart segment = %v, want < 20m (resumed, not recomputed)", restartRun)
	}
	// The restart segment is exactly the checkpointed remainder.
	if restartRun != app.Remaining() {
		t.Errorf("restart segment %v != checkpointed remainder %v", restartRun, app.Remaining())
	}
}

// TestNonCheckpointableRestartsFromScratch is the control: the same
// scenario without checkpointing recomputes the full 20 minutes.
func TestNonCheckpointableRestartsFromScratch(t *testing.T) {
	app := &FixedApp{Runtime: 20 * sim.Minute}
	h, victim := preemptScenario(t, app)
	h.srv.Run(0)
	if victim.State != job.Completed {
		t.Fatalf("victim state = %v", victim.State)
	}
	restartRun := victim.EndTime - victim.StartTime
	if restartRun != 20*sim.Minute {
		t.Errorf("restart segment = %v, want the full 20m", restartRun)
	}
}

func TestFixedAppRemainingBeforeStart(t *testing.T) {
	app := &FixedApp{Runtime: 5 * sim.Minute, Checkpointable: true}
	if app.Remaining() != 5*sim.Minute {
		t.Error("Remaining before first start should be the full runtime")
	}
}
