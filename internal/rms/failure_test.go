package rms

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
)

// spareSeeker is a fault-aware app: on a node failure it requests
// replacement cores dynamically and keeps running.
type spareSeeker struct {
	FixedApp
	replaced  bool
	requested int
}

func (a *spareSeeker) OnNodeFailure(s *Server, j *job.Job, lost int, now sim.Time) bool {
	a.requested = lost
	// Request replacements; if even the request fails, absorb anyway
	// (run degraded) — the point is the job survives.
	_ = s.RequestDyn(j, lost)
	return true
}

func (a *spareSeeker) OnDynResult(s *Server, j *job.Job, granted bool, now sim.Time) {
	if granted {
		a.replaced = true
	}
}

func TestNodeFailureCancelsByDefault(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	tr := &trace.Log{}
	h.srv.Trace = tr
	j := &job.Job{Name: "victim", Cred: job.Credentials{User: "u"}, Cores: 16, Walltime: sim.Hour}
	h.srv.Submit(j, &FixedApp{Runtime: 30 * sim.Minute})
	h.eng.At(5*sim.Minute, "fail", func(sim.Time) { h.srv.FailNode(0) })
	h.srv.Run(0)
	if j.State != job.Cancelled {
		t.Fatalf("state = %v, want cancelled", j.State)
	}
	if j.EndTime != 5*sim.Minute {
		t.Errorf("cancelled at %v", j.EndTime)
	}
	if len(tr.Filter(trace.NodeDown)) != 1 {
		t.Error("NodeDown event missing")
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The dead node accepts nothing.
	if h.cl.TotalCores() != 8 {
		t.Errorf("capacity = %d", h.cl.TotalCores())
	}
}

func TestNodeFailureRequeuePolicy(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	h.srv.FailurePolicy = FailRequeue
	j := &job.Job{Name: "victim", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(j, &FixedApp{Runtime: 30 * sim.Minute})
	// Fail the node the job landed on.
	h.eng.At(5*sim.Minute, "fail", func(sim.Time) {
		h.srv.FailNode(h.cl.AllocOf(j.ID)[0].NodeID)
	})
	h.srv.Run(0)
	// The job restarts on the surviving node and completes.
	if j.State != job.Completed {
		t.Fatalf("state = %v, want completed after requeue", j.State)
	}
	if j.StartTime != 5*sim.Minute {
		t.Errorf("restart at %v", j.StartTime)
	}
	if j.EndTime != 35*sim.Minute {
		t.Errorf("end = %v, want 35m (full restart)", j.EndTime)
	}
}

func TestNodeFailureSpareReallocation(t *testing.T) {
	// Three nodes: the job spans two, the third is spare. One of the
	// job's nodes dies; the fault-aware app requests replacements and
	// the scheduler hands it the spare (§I fault-tolerance scenario).
	h := newHarness(3, 8, fairness.None, nil)
	j := &job.Job{Name: "ft", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 16, Walltime: sim.Hour}
	app := &spareSeeker{FixedApp: FixedApp{Runtime: 30 * sim.Minute}}
	h.srv.Submit(j, app)
	h.eng.At(5*sim.Minute, "fail", func(sim.Time) {
		h.srv.FailNode(h.cl.AllocOf(j.ID)[0].NodeID)
	})
	h.srv.Run(0)
	if j.State != job.Completed {
		t.Fatalf("state = %v, want completed", j.State)
	}
	if !app.replaced {
		t.Fatal("spare node was never granted")
	}
	if app.requested != 8 {
		t.Errorf("lost cores = %d, want 8", app.requested)
	}
	if j.TotalCores() != 16 {
		t.Errorf("final cores = %d, want 16 (8 surviving + 8 spare)", j.TotalCores())
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestNodeFailureUnaffectedJobsSurvive(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	a := &job.Job{Name: "a", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: sim.Hour}
	b := &job.Job{Name: "b", Cred: job.Credentials{User: "v"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(a, &FixedApp{Runtime: 20 * sim.Minute})
	h.srv.Submit(b, &FixedApp{Runtime: 20 * sim.Minute})
	h.eng.At(5*sim.Minute, "fail", func(sim.Time) {
		h.srv.FailNode(h.cl.AllocOf(a.ID)[0].NodeID)
	})
	h.srv.Run(0)
	if a.State != job.Cancelled {
		t.Error("a should be cancelled")
	}
	if b.State != job.Completed || b.EndTime != 20*sim.Minute {
		t.Errorf("b should finish untouched: %v at %v", b.State, b.EndTime)
	}
}

func TestRepairNodeRestoresCapacity(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	h.eng.At(0, "fail", func(sim.Time) { h.srv.FailNode(1) })
	// A 16-core job cannot run on the degraded cluster; repairing the
	// node lets it start.
	j := &job.Job{Name: "big", Cred: job.Credentials{User: "u"}, Cores: 16, Walltime: sim.Hour}
	h.srv.SubmitAt(sim.Minute, j, &FixedApp{Runtime: 10 * sim.Minute})
	h.eng.At(10*sim.Minute, "repair", func(sim.Time) { h.srv.RepairNode(1) })
	h.srv.Run(0)
	if j.State != job.Completed {
		t.Fatalf("state = %v", j.State)
	}
	if j.StartTime != 10*sim.Minute {
		t.Errorf("start = %v, want at repair time", j.StartTime)
	}
}

func TestDrainNode(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	running := &job.Job{Name: "r", Cred: job.Credentials{User: "u"}, Cores: 16, Walltime: sim.Hour}
	h.srv.Submit(running, &FixedApp{Runtime: 10 * sim.Minute})
	h.eng.At(sim.Minute, "drain", func(sim.Time) { h.srv.DrainNode(0) })
	// A job needing the drained node's cores waits forever; a small
	// one fits on the remaining node after the runner completes.
	small := &job.Job{Name: "s", Cred: job.Credentials{User: "v"}, Cores: 8, Walltime: sim.Hour}
	h.srv.SubmitAt(2*sim.Minute, small, &FixedApp{Runtime: sim.Minute})
	h.srv.Run(0)
	if running.State != job.Completed {
		t.Error("running job survives a drain")
	}
	if small.State != job.Completed {
		t.Fatalf("small job state = %v", small.State)
	}
	// It must have been placed on the non-drained node.
	if h.cl.Node(0).Used() != 0 {
		t.Error("drained node should be empty")
	}
	_ = cluster.Offline
}
