package rms

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ResizableApp is the optional application interface for malleable
// jobs: the server calls OnResize after a scheduler-initiated shrink
// or grow so the application can adapt its completion estimate.
type ResizableApp interface {
	OnResize(s *Server, j *job.Job, now sim.Time)
}

// ShrinkJob releases cores cores from a running malleable job — the
// scheduler-initiated half of malleability (core.MalleableManager).
func (s *Server) ShrinkJob(j *job.Job, cores int) error {
	if j.Class != job.Malleable {
		return fmt.Errorf("rms: %s is not malleable", j.ID)
	}
	if !j.Active() {
		return fmt.Errorf("rms: %s is not running", j.ID)
	}
	if cores <= 0 || cores > j.ShrinkableBy() {
		return fmt.Errorf("rms: %s cannot release %d cores (shrinkable by %d)", j.ID, cores, j.ShrinkableBy())
	}
	// Pick slices to release from the tail of the allocation.
	held := s.cl.AllocOf(j.ID)
	var part cluster.Alloc
	remaining := cores
	for i := len(held) - 1; i >= 0 && remaining > 0; i-- {
		take := held[i].Cores
		if take > remaining {
			take = remaining
		}
		part = append(part, cluster.Slice{NodeID: held[i].NodeID, Cores: take})
		remaining -= take
	}
	if err := s.cl.ReleasePartial(j.ID, part); err != nil {
		return err
	}
	if cores > j.DynCores {
		j.Cores -= cores - j.DynCores
		j.DynCores = 0
	} else {
		j.DynCores -= cores
	}
	s.observeUsage()
	s.traceEvent(trace.Shrink, j, cores, "")
	s.bump()
	s.notifyResize(j)
	return nil
}

// GrowJob adds cores cores to a running malleable job from idle
// resources (core.MalleableManager).
func (s *Server) GrowJob(j *job.Job, cores int) (cluster.Alloc, error) {
	if j.Class != job.Malleable {
		return nil, fmt.Errorf("rms: %s is not malleable", j.ID)
	}
	if !j.Active() {
		return nil, fmt.Errorf("rms: %s is not running", j.ID)
	}
	if cores <= 0 || cores > j.GrowableBy() {
		return nil, fmt.Errorf("rms: %s cannot accept %d cores (growable by %d)", j.ID, cores, j.GrowableBy())
	}
	alloc := s.cl.Allocate(j.ID, cores)
	if alloc == nil {
		return nil, fmt.Errorf("rms: cannot place %d cores for %s", cores, j.ID)
	}
	j.DynCores += cores
	s.observeUsage()
	s.traceEvent(trace.Grow, j, cores, "")
	s.bump()
	s.notifyResize(j)
	return alloc, nil
}

func (s *Server) notifyResize(j *job.Job) {
	if app, ok := s.apps[j.ID].(ResizableApp); ok {
		app.OnResize(s, j, s.eng.Now())
	}
}

// MalleableWorkApp models a malleable application with a fixed amount
// of perfectly divisible work (in core-seconds): its completion time
// tracks the current allocation, re-estimated at every resize.
type MalleableWorkApp struct {
	// Work is the total compute demand in core-seconds.
	Work float64

	remaining float64
	lastT     sim.Time
	coresThen int
}

// Progress returns the fraction of work completed so far (0..1),
// valid between events.
func (a *MalleableWorkApp) Progress() float64 {
	if a.Work <= 0 {
		return 1
	}
	return 1 - a.remaining/a.Work
}

// OnStart begins computing on the initial allocation.
func (a *MalleableWorkApp) OnStart(s *Server, j *job.Job, now sim.Time) {
	a.remaining = a.Work
	a.lastT = now
	a.coresThen = j.TotalCores()
	a.reschedule(s, j, now)
}

// advance accounts the work done since the last event.
func (a *MalleableWorkApp) advance(now sim.Time) {
	done := sim.SecondsOf(now-a.lastT) * float64(a.coresThen)
	a.remaining -= done
	if a.remaining < 0 {
		a.remaining = 0
	}
	a.lastT = now
}

func (a *MalleableWorkApp) reschedule(s *Server, j *job.Job, now sim.Time) {
	cores := j.TotalCores()
	a.coresThen = cores
	if cores <= 0 {
		return
	}
	end := now + sim.Seconds(a.remaining/float64(cores))
	s.ScheduleCompletion(j, end)
}

// OnResize re-estimates completion after a scheduler-initiated
// shrink or grow.
func (a *MalleableWorkApp) OnResize(s *Server, j *job.Job, now sim.Time) {
	a.advance(now)
	a.reschedule(s, j, now)
}

// OnDynResult also adapts — a malleable job may additionally evolve.
func (a *MalleableWorkApp) OnDynResult(s *Server, j *job.Job, granted bool, now sim.Time) {
	if granted {
		a.advance(now)
		a.reschedule(s, j, now)
	}
}

// OnPreempt resets progress (requeued jobs restart from scratch).
func (a *MalleableWorkApp) OnPreempt(s *Server, j *job.Job, now sim.Time) {
	a.remaining = a.Work
}
