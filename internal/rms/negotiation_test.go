package rms

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
)

// negotiatorApp asks for cores with a timeout and records the outcome.
type negotiatorApp struct {
	extra    int
	timeout  sim.Duration
	reqAt    sim.Duration // elapsed time after start at which to request
	granted  bool
	rejected bool
	grantAt  sim.Time
}

func (a *negotiatorApp) OnStart(s *Server, j *job.Job, now sim.Time) {
	s.ScheduleCompletion(j, now+j.Walltime/2)
	s.ScheduleAppEvent(j, now+a.reqAt, "negotiate", func(sim.Time) {
		if j.State == job.Running {
			_ = s.RequestDynTimeout(j, a.extra, a.timeout)
		}
	})
}

func (a *negotiatorApp) OnDynResult(s *Server, j *job.Job, granted bool, now sim.Time) {
	if granted {
		a.granted = true
		a.grantAt = now
	} else {
		a.rejected = true
	}
}

func (a *negotiatorApp) OnPreempt(*Server, *job.Job, sim.Time) {}

// TestNegotiationGrantWhenResourcesFree verifies the §III-C future-work
// protocol: a request that cannot be served immediately stays queued
// and is granted the moment a blocker completes, well before the
// deadline.
func TestNegotiationGrantWhenResourcesFree(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	// The blocker holds the second node for 5 minutes.
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(blocker, &FixedApp{Runtime: 5 * sim.Minute})
	app := &negotiatorApp{extra: 8, timeout: 30 * sim.Minute, reqAt: sim.Minute}
	j := &job.Job{Name: "neg", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(j, app)
	h.srv.Run(0)
	if !app.granted {
		t.Fatal("negotiable request should be granted when the blocker ends")
	}
	if app.grantAt != 5*sim.Minute {
		t.Errorf("grant at %v, want the blocker's completion at 5m", app.grantAt)
	}
	if app.rejected {
		t.Error("no rejection should be delivered after a grant")
	}
}

// TestNegotiationDeadlineExpires verifies the rejection half: when no
// resources appear before the deadline, the application receives the
// final verdict exactly at the deadline.
func TestNegotiationDeadlineExpires(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 3 * sim.Hour}
	h.srv.Submit(blocker, &FixedApp{Runtime: 2 * sim.Hour})
	app := &negotiatorApp{extra: 8, timeout: 10 * sim.Minute, reqAt: sim.Minute}
	j := &job.Job{Name: "neg", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(j, app)
	h.srv.Run(0)
	if app.granted {
		t.Fatal("no resources before the deadline: must not be granted")
	}
	if !app.rejected {
		t.Fatal("the application must receive the deadline rejection")
	}
	if j.State != job.Completed {
		t.Errorf("job should still complete on its original allocation: %v", j.State)
	}
}

// TestNegotiationZeroTimeoutFallsBack ensures timeout 0 keeps the
// paper's immediate-verdict semantics.
func TestNegotiationZeroTimeoutFallsBack(t *testing.T) {
	h := newHarness(1, 8, fairness.None, nil)
	app := &negotiatorApp{extra: 100, timeout: 0, reqAt: sim.Minute}
	j := &job.Job{Name: "neg", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(j, app)
	h.srv.Run(0)
	if !app.rejected || app.granted {
		t.Error("zero timeout should produce an immediate rejection")
	}
}

// TestNegotiationFairnessDeferral: a request vetoed by fairness keeps
// negotiating and succeeds once the victim's reservation is no longer
// delayed (the victim starts).
func TestNegotiationFairnessDeferral(t *testing.T) {
	h := newHarness(2, 8, fairness.SingleJobDelay, func(c *config.SchedConfig) {
		c.Fairness.Set(fairness.KindUser, "victim", fairness.Limits{SingleDelayTime: sim.Minute})
	})
	// Evolving job on 4 cores, long walltime.
	app := &negotiatorApp{extra: 4, timeout: 2 * sim.Hour, reqAt: 2 * sim.Minute}
	j := &job.Job{Name: "neg", Cred: job.Credentials{User: "evolver"}, Class: job.Evolving, Cores: 4, Walltime: 4 * sim.Hour}
	h.srv.Submit(j, app)
	// Filler frees 8 cores at t=10m; the victim (12 cores) would start
	// then, unless the grant (held to the evolving walltime end)
	// blocks it — so the fairness gate defers the grant until the
	// victim is running.
	filler := &job.Job{Name: "fill", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 10 * sim.Minute}
	h.srv.Submit(filler, &FixedApp{Runtime: 10 * sim.Minute})
	victim := &job.Job{Name: "V", Cred: job.Credentials{User: "victim"}, Cores: 12, Walltime: sim.Hour}
	h.srv.SubmitAt(sim.Minute, victim, &FixedApp{Runtime: 20 * sim.Minute})
	h.srv.Run(0)

	if !app.granted {
		t.Fatal("deferred request should eventually be granted")
	}
	if app.grantAt < 10*sim.Minute {
		t.Errorf("grant at %v must wait for the victim to start", app.grantAt)
	}
	if victim.StartTime != 10*sim.Minute {
		t.Errorf("victim start = %v, want 10m (undelayed)", victim.StartTime)
	}
}

// TestDynRequestDeadlineHelpers covers the job-level predicates.
func TestDynRequestDeadlineHelpers(t *testing.T) {
	r := &job.DynRequest{Job: &job.Job{}, Cores: 1}
	if r.Negotiable() || r.Expired(100) {
		t.Error("zero deadline is not negotiable")
	}
	r.Deadline = 50
	if !r.Negotiable() || r.Expired(49) || !r.Expired(50) {
		t.Error("deadline predicates")
	}
}

// TestNegotiationAvailabilityEstimate inspects the scheduler decision
// directly: rejections for insufficient resources carry the
// walltime-based availability estimate.
func TestNegotiationAvailabilityEstimate(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	var decisions []core.DynDecision
	h.srv.OnIteration = func(ir *core.IterationResult) {
		// The result is recycled after this callback: copy the decisions
		// and their Delays slices before retaining them.
		for _, d := range ir.DynDecisions {
			d.Delays = append([]fairness.JobDelay(nil), d.Delays...)
			decisions = append(decisions, d)
		}
	}
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 2 * sim.Hour}
	h.srv.Submit(blocker, &FixedApp{Runtime: 2 * sim.Hour})
	app := &negotiatorApp{extra: 8, timeout: 0, reqAt: sim.Minute}
	j := &job.Job{Name: "neg", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 8, Walltime: 3 * sim.Hour}
	h.srv.Submit(j, app)
	h.srv.Run(0)
	found := false
	for _, d := range decisions {
		if d.Req.Job.ID == j.ID && !d.Granted {
			found = true
			if d.AvailableAt != 2*sim.Hour {
				t.Errorf("availability estimate = %v, want the blocker's walltime end (2h)", d.AvailableAt)
			}
		}
	}
	if !found {
		t.Fatal("no rejection decision observed")
	}
}
