package rms

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
)

// harness bundles a fresh simulated batch system.
type harness struct {
	eng *sim.Engine
	cl  *cluster.Cluster
	srv *Server
	rec *metrics.Recorder
}

func newHarness(nodes, cores int, policy fairness.Policy, mut func(*config.SchedConfig)) *harness {
	eng := sim.NewEngine()
	cl := cluster.New(nodes, cores)
	cfg := config.Default()
	cfg.Fairness = fairness.NewConfig(policy)
	if mut != nil {
		mut(cfg)
	}
	sched := core.New(core.Options{Config: cfg}, 0)
	rec := metrics.NewRecorder(cl.TotalCores())
	srv := NewServer(eng, cl, sched, rec)
	return &harness{eng: eng, cl: cl, srv: srv, rec: rec}
}

func rigid(name, user string, cores int, wall sim.Duration) (*job.Job, App) {
	return &job.Job{Name: name, Cred: job.Credentials{User: user, Group: "g_" + user}, Cores: cores, Walltime: wall},
		&FixedApp{Runtime: wall / 2}
}

func TestSubmitRunComplete(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	j := &job.Job{Name: "A.1", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(j, &FixedApp{Runtime: 10 * sim.Minute})
	h.srv.Run(0)
	if j.State != job.Completed {
		t.Fatalf("state = %v", j.State)
	}
	if j.StartTime != 0 || j.EndTime != 10*sim.Minute {
		t.Errorf("timeline: start=%v end=%v", j.StartTime, j.EndTime)
	}
	if h.srv.Completed() != 1 || h.srv.Submitted() != 1 {
		t.Error("counters")
	}
	if h.cl.IdleCores() != 16 {
		t.Error("resources not released")
	}
	jobs := h.rec.Jobs()
	if len(jobs) != 1 || jobs[0].Type != "A" || jobs[0].Wait() != 0 {
		t.Errorf("metrics record = %+v", jobs)
	}
}

func TestContentionFIFO(t *testing.T) {
	h := newHarness(1, 8, fairness.None, nil)
	j1, a1 := rigid("x.1", "u1", 8, sim.Hour)
	j2, a2 := rigid("x.2", "u2", 8, sim.Hour)
	h.srv.Submit(j1, a1)
	h.srv.SubmitAt(sim.Second, j2, a2)
	h.srv.Run(0)
	if j1.StartTime != 0 {
		t.Errorf("j1 start = %v", j1.StartTime)
	}
	// j2 waits for j1's completion at 30min.
	if j2.StartTime != 30*sim.Minute {
		t.Errorf("j2 start = %v", j2.StartTime)
	}
	if j2.WaitTime() != 30*sim.Minute-sim.Second {
		t.Errorf("j2 wait = %v", j2.WaitTime())
	}
}

func TestBackfillInSim(t *testing.T) {
	// 16 cores; long job holds 8 for 2h (runtime 1h). Queued: big 16-core
	// job (blocked, reserved at 1h via walltime=2h... runtime 1h so ends at 1h),
	// then a small short job that backfills immediately.
	h := newHarness(2, 8, fairness.None, nil)
	long := &job.Job{Name: "long", Cred: job.Credentials{User: "a"}, Cores: 8, Walltime: 2 * sim.Hour}
	h.srv.Submit(long, &FixedApp{Runtime: sim.Hour})
	big := &job.Job{Name: "big", Cred: job.Credentials{User: "b"}, Cores: 16, Walltime: sim.Hour}
	h.srv.SubmitAt(sim.Second, big, &FixedApp{Runtime: 30 * sim.Minute})
	small := &job.Job{Name: "small", Cred: job.Credentials{User: "c"}, Cores: 8, Walltime: 30 * sim.Minute}
	h.srv.SubmitAt(2*sim.Second, small, &FixedApp{Runtime: 10 * sim.Minute})
	h.srv.Run(0)
	if !small.Backfilled {
		t.Error("small job should have backfilled")
	}
	if small.StartTime != 2*sim.Second {
		t.Errorf("small start = %v", small.StartTime)
	}
	// big starts when long actually completes (1h), earlier than the
	// walltime-based reservation (2h) — completion triggers a cycle.
	if big.StartTime != sim.Hour {
		t.Errorf("big start = %v", big.StartTime)
	}
	if h.rec.BackfilledJobs() != 1 {
		t.Error("metrics should count one backfilled job")
	}
}

func TestEvolvingGrantAtFirstAttempt(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	set, det := 1000*sim.Second, 700*sim.Second
	j := &job.Job{Name: "F.1", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 8, Walltime: 2000 * sim.Second}
	app := &EvolvingApp{SET: set, DET: det, ExtraCores: 4, AttemptFracs: DefaultAttemptFracs()}
	h.srv.Submit(j, app)
	h.srv.Run(0)
	if !app.Granted() {
		t.Fatal("idle cluster: grant expected")
	}
	if j.EndTime != det {
		t.Errorf("end = %v, want DET %v", j.EndTime, det)
	}
	if j.TotalCores() != 12 {
		// Cores are released at completion; TotalCores retains the
		// final composition (8 base + 4 dynamic).
		t.Errorf("total cores = %d", j.TotalCores())
	}
	if h.rec.SatisfiedDynJobs() != 1 {
		t.Error("metrics satisfied count")
	}
	if h.cl.IdleCores() != 16 {
		t.Error("all cores released")
	}
}

func TestEvolvingBothAttemptsRejected(t *testing.T) {
	// Blocker occupies the remaining cores past 25% of SET; both
	// attempts fail and the job runs the full SET.
	h := newHarness(2, 8, fairness.None, nil)
	set := 1000 * sim.Second
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 2000 * sim.Second}
	h.srv.Submit(blocker, &FixedApp{Runtime: 400 * sim.Second}) // past 250s
	j := &job.Job{Name: "F.1", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 8, Walltime: 2000 * sim.Second}
	app := &EvolvingApp{SET: set, DET: 700 * sim.Second, ExtraCores: 4, AttemptFracs: DefaultAttemptFracs()}
	h.srv.Submit(j, app)
	h.srv.Run(0)
	if app.Granted() {
		t.Fatal("no resources at 16% or 25%: must not be granted")
	}
	if j.EndTime != set {
		t.Errorf("end = %v, want SET %v", j.EndTime, set)
	}
	if h.rec.SatisfiedDynJobs() != 0 {
		t.Error("metrics satisfied count should be 0")
	}
}

func TestEvolvingSecondAttemptGrant(t *testing.T) {
	// Blocker frees cores between 16% and 25% of SET: the second
	// attempt succeeds and the end time follows the grant formula.
	h := newHarness(2, 8, fairness.None, nil)
	set, det := 1000*sim.Second, 700*sim.Second
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 2000 * sim.Second}
	h.srv.Submit(blocker, &FixedApp{Runtime: 200 * sim.Second}) // frees at 200s (between 160 and 250)
	j := &job.Job{Name: "F.1", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 8, Walltime: 2000 * sim.Second}
	app := &EvolvingApp{SET: set, DET: det, ExtraCores: 4, AttemptFracs: DefaultAttemptFracs()}
	h.srv.Submit(j, app)
	h.srv.Run(0)
	if !app.Granted() {
		t.Fatal("second attempt should be granted")
	}
	want := app.EndAfterGrant(250 * sim.Second)
	if j.EndTime != want {
		t.Errorf("end = %v, want %v", j.EndTime, want)
	}
	if want <= det || want >= set {
		t.Errorf("second-attempt end %v should lie between DET and SET", want)
	}
}

func TestEndAfterGrantFormula(t *testing.T) {
	app := &EvolvingApp{SET: 1846 * sim.Second, DET: 1230 * sim.Second, AttemptFracs: DefaultAttemptFracs()}
	// Grant at exactly t1 = 16% SET yields DET (paper Table I, type F).
	t1 := sim.Duration(0.16 * float64(app.SET))
	got := app.EndAfterGrant(t1)
	if diff := got - app.DET; diff < -sim.Second || diff > sim.Second {
		t.Errorf("grant at t1: end = %v, want ≈ %v", got, app.DET)
	}
	// Grant at SET or beyond changes nothing.
	if app.EndAfterGrant(app.SET) != app.SET {
		t.Error("late grant must not shorten a finished run")
	}
	// Monotone: later grants never finish earlier.
	prev := sim.Duration(0)
	for _, tt := range []sim.Duration{t1, 500 * sim.Second, 1000 * sim.Second, 1500 * sim.Second} {
		e := app.EndAfterGrant(tt)
		if e < prev {
			t.Errorf("EndAfterGrant not monotone at %v", tt)
		}
		prev = e
	}
}

func TestDynFairnessVetoInSim(t *testing.T) {
	// The evolving job's grant would delay a queued job beyond its
	// user's single-job limit: rejected, job runs to SET.
	h := newHarness(2, 8, fairness.SingleJobDelay, func(c *config.SchedConfig) {
		c.Fairness.Set(fairness.KindUser, "victim", fairness.Limits{SingleDelayTime: sim.Minute})
	})
	set := 1000 * sim.Second
	j := &job.Job{Name: "F.1", Cred: job.Credentials{User: "evolver"}, Class: job.Evolving, Cores: 4, Walltime: 4000 * sim.Second}
	app := &EvolvingApp{SET: set, DET: 700 * sim.Second, ExtraCores: 4, AttemptFracs: []float64{0.16}}
	h.srv.Submit(j, app)
	// A filler frees 8 cores at 300 s; the 12-core victim would start
	// then — unless the grant holds 4 of those cores until the
	// evolving job's walltime end (4000 s), a 3700 s delay.
	filler := &job.Job{Name: "fill", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 300 * sim.Second}
	h.srv.Submit(filler, &FixedApp{Runtime: 300 * sim.Second})
	victim := &job.Job{Name: "V.1", Cred: job.Credentials{User: "victim"}, Cores: 12, Walltime: sim.Hour}
	h.srv.SubmitAt(10*sim.Second, victim, &FixedApp{Runtime: sim.Minute})
	h.srv.Run(0)
	if app.Granted() {
		t.Fatal("fairness must veto the grant")
	}
	if j.EndTime != set {
		t.Errorf("evolving end = %v, want SET", j.EndTime)
	}
	if victim.StartTime != 300*sim.Second {
		t.Errorf("victim start = %v, want 300s", victim.StartTime)
	}
}

func TestDynFree(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	j := &job.Job{Name: "rel", Cred: job.Credentials{User: "u"}, Cores: 16, Walltime: sim.Hour}
	released := false
	h.srv.Submit(j, &hookApp{
		onStart: func(s *Server, jj *job.Job, now sim.Time) {
			s.ScheduleCompletion(jj, now+30*sim.Minute)
			s.ScheduleAppEvent(jj, now+10*sim.Minute, "release", func(sim.Time) {
				part := s.Cluster().AllocOf(jj.ID)[:1] // release one node's slice
				if err := s.DynFree(jj, cluster.Alloc{{NodeID: part[0].NodeID, Cores: part[0].Cores}}); err != nil {
					t.Errorf("DynFree: %v", err)
				}
				released = true
			})
		},
	})
	// A queued job that fits only after the release.
	waiter := &job.Job{Name: "w", Cred: job.Credentials{User: "v"}, Cores: 8, Walltime: sim.Hour}
	h.srv.SubmitAt(sim.Minute, waiter, &FixedApp{Runtime: sim.Minute})
	h.srv.Run(0)
	if !released {
		t.Fatal("release never happened")
	}
	if waiter.StartTime != 10*sim.Minute {
		t.Errorf("waiter start = %v, want 10m (right after dyn_disjoin)", waiter.StartTime)
	}
	if j.Cores != 8 || j.DynCores != 0 {
		t.Errorf("job cores after shrink = %d+%d", j.Cores, j.DynCores)
	}
}

// hookApp lets tests inject custom app behaviour.
type hookApp struct {
	onStart func(*Server, *job.Job, sim.Time)
	onDyn   func(*Server, *job.Job, bool, sim.Time)
}

func (h *hookApp) OnStart(s *Server, j *job.Job, now sim.Time) {
	if h.onStart != nil {
		h.onStart(s, j, now)
	} else {
		s.ScheduleCompletion(j, now+j.Walltime)
	}
}
func (h *hookApp) OnDynResult(s *Server, j *job.Job, granted bool, now sim.Time) {
	if h.onDyn != nil {
		h.onDyn(s, j, granted, now)
	}
}
func (h *hookApp) OnPreempt(*Server, *job.Job, sim.Time) {}

func TestOnePendingDynRequestPerJob(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil)
	j := &job.Job{Name: "e", Cred: job.Credentials{User: "u"}, Class: job.Evolving, Cores: 4, Walltime: sim.Hour}
	var firstErr, secondErr error
	h.srv.Submit(j, &hookApp{
		onStart: func(s *Server, jj *job.Job, now sim.Time) {
			s.ScheduleCompletion(jj, now+10*sim.Minute)
			s.ScheduleAppEvent(jj, now+sim.Minute, "req", func(sim.Time) {
				firstErr = s.RequestDyn(jj, 2)
				secondErr = s.RequestDyn(jj, 2)
			})
		},
	})
	h.srv.Run(0)
	if firstErr != nil {
		t.Errorf("first request: %v", firstErr)
	}
	if secondErr == nil {
		t.Error("second concurrent request must be refused (mother-superior serialization)")
	}
}

func TestRequestDynRequiresRunningJob(t *testing.T) {
	h := newHarness(1, 8, fairness.None, nil)
	j := &job.Job{Name: "q", Cred: job.Credentials{User: "u"}, Cores: 4, Walltime: sim.Hour, State: job.Queued}
	if err := h.srv.RequestDyn(j, 2); err == nil {
		t.Error("queued job cannot issue dynamic requests")
	}
}

func TestWalltimeEnforcement(t *testing.T) {
	h := newHarness(1, 8, fairness.None, nil)
	j := &job.Job{Name: "overrun", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: 10 * sim.Minute}
	h.srv.Submit(j, &FixedApp{Runtime: sim.Hour})
	h.srv.Run(0)
	if j.State != job.Cancelled {
		t.Fatalf("state = %v, want cancelled at walltime", j.State)
	}
	if j.EndTime != 10*sim.Minute {
		t.Errorf("killed at %v", j.EndTime)
	}
	if h.srv.Cancelled() != 1 {
		t.Error("cancelled counter")
	}
	if h.cl.IdleCores() != 8 {
		t.Error("killed job must release resources")
	}
}

func TestWalltimeEnforcementDisabled(t *testing.T) {
	h := newHarness(1, 8, fairness.None, nil)
	h.srv.EnforceWalltime = false
	j := &job.Job{Name: "overrun", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: 10 * sim.Minute}
	h.srv.Submit(j, &FixedApp{Runtime: 20 * sim.Minute})
	h.srv.Run(0)
	if j.State != job.Completed || j.EndTime != 20*sim.Minute {
		t.Error("without enforcement the job runs to completion")
	}
}

func TestCancelQueuedJob(t *testing.T) {
	h := newHarness(1, 8, fairness.None, nil)
	blocker := &job.Job{Name: "b", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(blocker, &FixedApp{Runtime: sim.Hour / 2})
	victim := &job.Job{Name: "v", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(victim, &FixedApp{Runtime: sim.Minute})
	h.eng.At(sim.Minute, "qdel", func(sim.Time) { h.srv.CancelJob(victim) })
	h.srv.Run(0)
	if victim.State != job.Cancelled {
		t.Fatalf("victim state = %v", victim.State)
	}
	if victim.StartTime != 0 {
		t.Error("cancelled queued job must never start")
	}
	// Cancelling twice is a no-op.
	h.srv.CancelJob(victim)
	if h.srv.Cancelled() != 1 {
		t.Error("double cancel must not double count")
	}
}

func TestPreemptionRoundTrip(t *testing.T) {
	h := newHarness(2, 8, fairness.None, func(c *config.SchedConfig) {
		c.PreemptPolicy = "REQUEUE"
	})
	// Fill the cluster: an evolving job (8) and a job that will be
	// backfilled (8). The evolving job then demands 8 more cores,
	// which preempts the backfilled job.
	long := &job.Job{Name: "hp", Cred: job.Credentials{User: "a"}, Cores: 8, Walltime: 2 * sim.Hour}
	h.srv.Submit(long, &FixedApp{Runtime: sim.Hour})
	big := &job.Job{Name: "big", Cred: job.Credentials{User: "b"}, Cores: 16, Walltime: sim.Hour}
	h.srv.SubmitAt(sim.Second, big, &FixedApp{Runtime: 30 * sim.Minute})
	bf := &job.Job{Name: "bf", Cred: job.Credentials{User: "c"}, Cores: 8, Walltime: 20 * sim.Minute}
	h.srv.SubmitAt(2*sim.Second, bf, &FixedApp{Runtime: 15 * sim.Minute})

	evolver := long
	evolver.Class = job.Evolving
	h.eng.At(3*sim.Minute, "dynget", func(sim.Time) {
		if bf.State == job.Running {
			_ = h.srv.RequestDyn(evolver, 8)
		}
	})
	h.srv.Run(0)
	if evolver.State != job.Completed {
		t.Fatalf("evolver state = %v", evolver.State)
	}
	// The backfilled job must have been preempted and restarted later.
	if bf.State != job.Completed {
		t.Fatalf("bf state = %v", bf.State)
	}
	if bf.StartTime <= 2*sim.Second {
		t.Errorf("bf restart time = %v; it should have restarted after preemption", bf.StartTime)
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationAccounting(t *testing.T) {
	h := newHarness(1, 8, fairness.None, nil)
	j := &job.Job{Name: "u", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(j, &FixedApp{Runtime: 30 * sim.Minute})
	h.srv.Run(0)
	// 8 cores busy 30min of a 30min makespan: 100%.
	if u := h.rec.Utilization(); u < 0.999 {
		t.Errorf("utilization = %v", u)
	}
}

func TestNoAppDefaultsToWalltime(t *testing.T) {
	h := newHarness(1, 8, fairness.None, nil)
	j := &job.Job{Name: "n", Cred: job.Credentials{User: "u"}, Cores: 8, Walltime: 10 * sim.Minute}
	h.srv.Submit(j, nil)
	h.srv.Run(0)
	if j.State != job.Completed || j.EndTime != 10*sim.Minute {
		t.Errorf("nil-app job should run to walltime: %v at %v", j.State, j.EndTime)
	}
}
