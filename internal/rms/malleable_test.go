package rms

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
)

// newMalleableHarness builds a harness whose scheduler has malleable
// support enabled.
func newMalleableHarness(nodes, cores int) *harness {
	h := newHarness(nodes, cores, fairness.None, nil)
	// Rebuild the scheduler with Malleable enabled, preserving config.
	opts := h.srv.Scheduler().Options()
	opts.Malleable = true
	sched := core.New(opts, 0)
	h.srv = NewServer(h.eng, h.cl, sched, h.rec)
	return h
}

func TestMalleableWorkAppBasic(t *testing.T) {
	h := newMalleableHarness(2, 8)
	j := &job.Job{
		Name: "m", Cred: job.Credentials{User: "u"}, Class: job.Malleable,
		Cores: 8, MinCores: 4, MaxCores: 8, Walltime: sim.Hour,
	}
	app := &MalleableWorkApp{Work: 8 * 600} // 600 s on 8 cores
	h.srv.Submit(j, app)
	h.srv.Run(0)
	if j.State != job.Completed {
		t.Fatalf("state = %v", j.State)
	}
	if j.EndTime != 600*sim.Second {
		t.Errorf("end = %v, want 600s", j.EndTime)
	}
	_ = app
}

func TestMalleableGrowOnIdle(t *testing.T) {
	// The job starts at MinCores on a busy cluster; when the blocker
	// finishes, the scheduler grows it to MaxCores and it finishes
	// early.
	h := newMalleableHarness(2, 8)
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(blocker, &FixedApp{Runtime: 300 * sim.Second})
	j := &job.Job{
		Name: "m", Cred: job.Credentials{User: "u"}, Class: job.Malleable,
		Cores: 8, MinCores: 8, MaxCores: 16, Walltime: sim.Hour,
	}
	h.srv.Submit(j, &MalleableWorkApp{Work: 8 * 1200}) // 1200 s at 8 cores
	h.srv.Run(0)
	// 300 s at 8 cores (2400 core-s done), then grown to 16:
	// remaining 7200 core-s at 16 = 450 s → end at 750 s.
	if j.EndTime != 750*sim.Second {
		t.Errorf("end = %v, want 750s (grown at 300s)", j.EndTime)
	}
	if j.TotalCores() != 16 {
		t.Errorf("final cores = %d, want 16", j.TotalCores())
	}
}

func TestMalleableGrowRespectsReservations(t *testing.T) {
	// A 24-core cluster: the malleable job (8, walltime 2 h), a rigid
	// job r2 (8, ends at 600 s) and 8 idle cores. A 16-core waiter
	// reserves [600 s, ...] using r2's cores *plus the idle ones* —
	// so the malleable job must not grow into the idle cores before
	// the waiter starts (growth would hold them until 2 h).
	h := newMalleableHarness(3, 8)
	tr := &trace.Log{}
	h.srv.Trace = tr
	m := &job.Job{
		Name: "m", Cred: job.Credentials{User: "u"}, Class: job.Malleable,
		Cores: 8, MinCores: 8, MaxCores: 16, Walltime: 2 * sim.Hour,
	}
	h.srv.Submit(m, &MalleableWorkApp{Work: 8 * 3000})
	r2 := &job.Job{Name: "r2", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 600 * sim.Second}
	h.srv.Submit(r2, &FixedApp{Runtime: 600 * sim.Second})
	waiter := &job.Job{Name: "w", Cred: job.Credentials{User: "v"}, Cores: 16, Walltime: 100 * sim.Second}
	h.srv.Submit(waiter, &FixedApp{Runtime: 60 * sim.Second})
	h.srv.Run(0)
	// The waiter's reservation is honored exactly.
	if waiter.StartTime != 600*sim.Second {
		t.Fatalf("waiter start = %v, want undelayed 600s", waiter.StartTime)
	}
	// Any malleable growth happened only after the waiter started.
	for _, e := range tr.Filter(trace.Grow) {
		if e.At < 600*sim.Second {
			t.Errorf("grow at %v would have delayed the reservation", e.At)
		}
	}
}

func TestMalleableShrinkServesDynRequest(t *testing.T) {
	// Cluster full: an evolving job and a malleable job. The evolving
	// job's tm_dynget is served by shrinking the malleable job
	// (§II-B: "stealing resources from malleable jobs").
	h := newMalleableHarness(2, 8)
	m := &job.Job{
		Name: "m", Cred: job.Credentials{User: "mal"}, Class: job.Malleable,
		Cores: 8, MinCores: 4, MaxCores: 8, Walltime: 2 * sim.Hour,
	}
	mapp := &MalleableWorkApp{Work: 8 * 1000}
	h.srv.Submit(m, mapp)
	e := &job.Job{
		Name: "e", Cred: job.Credentials{User: "evo"}, Class: job.Evolving,
		Cores: 8, Walltime: 2 * sim.Hour,
	}
	eapp := &EvolvingApp{SET: 1000 * sim.Second, DET: 700 * sim.Second, ExtraCores: 4, AttemptFracs: []float64{0.16}}
	h.srv.Submit(e, eapp)
	h.srv.Run(0)
	if !eapp.Granted() {
		t.Fatal("the dynamic request should be served by shrinking the malleable job")
	}
	if e.EndTime != 700*sim.Second {
		t.Errorf("evolving end = %v, want DET 700s", e.EndTime)
	}
	// The malleable job lost 4 cores at 160 s and got them back when
	// the evolving job completed at 700 s (the grow pass):
	// 160 s × 8 + 540 s × 4 = 3440 core-s done, 4560 left at 8 cores
	// = 570 s → end at 1270 s.
	if m.EndTime != 1270*sim.Second {
		t.Errorf("malleable end = %v, want 1270s (shrunk at 160s, regrown at 700s)", m.EndTime)
	}
	if m.TotalCores() != 8 {
		t.Errorf("malleable final cores = %d, want 8 after regrowth", m.TotalCores())
	}
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestMalleableDisabledNoResize(t *testing.T) {
	// Same shrink scenario but with malleable support off: the dynamic
	// request is rejected and nothing resizes.
	h := newHarness(2, 8, fairness.None, nil) // Malleable not enabled
	m := &job.Job{
		Name: "m", Cred: job.Credentials{User: "mal"}, Class: job.Malleable,
		Cores: 8, MinCores: 4, MaxCores: 8, Walltime: 2 * sim.Hour,
	}
	h.srv.Submit(m, &MalleableWorkApp{Work: 8 * 1000})
	e := &job.Job{
		Name: "e", Cred: job.Credentials{User: "evo"}, Class: job.Evolving,
		Cores: 8, Walltime: 2 * sim.Hour,
	}
	eapp := &EvolvingApp{SET: 1000 * sim.Second, DET: 700 * sim.Second, ExtraCores: 4, AttemptFracs: []float64{0.16}}
	h.srv.Submit(e, eapp)
	h.srv.Run(0)
	if eapp.Granted() {
		t.Fatal("without malleable support the request must be rejected")
	}
	if m.EndTime != 1000*sim.Second {
		t.Errorf("malleable end = %v, want untouched 1000s", m.EndTime)
	}
}

func TestShrinkGrowValidation(t *testing.T) {
	h := newMalleableHarness(2, 8)
	rigid := &job.Job{Name: "r", Cred: job.Credentials{User: "u"}, Cores: 4, Walltime: sim.Hour}
	h.srv.Submit(rigid, &FixedApp{Runtime: 30 * sim.Minute})
	m := &job.Job{
		Name: "m", Cred: job.Credentials{User: "u"}, Class: job.Malleable,
		Cores: 8, MinCores: 4, MaxCores: 12, Walltime: sim.Hour,
	}
	h.srv.Submit(m, &MalleableWorkApp{Work: 8 * 100})
	h.eng.At(sim.Second, "validate", func(sim.Time) {
		if err := h.srv.ShrinkJob(rigid, 2); err == nil {
			t.Error("shrinking a rigid job must fail")
		}
		if _, err := h.srv.GrowJob(rigid, 2); err == nil {
			t.Error("growing a rigid job must fail")
		}
		if err := h.srv.ShrinkJob(m, 10); err == nil {
			t.Error("shrinking below MinCores must fail")
		}
		if _, err := h.srv.GrowJob(m, 10); err == nil {
			t.Error("growing above MaxCores must fail")
		}
		if err := h.srv.ShrinkJob(m, 0); err == nil {
			t.Error("zero shrink must fail")
		}
		if err := h.srv.ShrinkJob(m, 2); err != nil {
			t.Errorf("legal shrink failed: %v", err)
		}
		if _, err := h.srv.GrowJob(m, 2); err != nil {
			t.Errorf("legal grow failed: %v", err)
		}
	})
	h.srv.Run(0)
	if err := h.cl.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestJobResizeBounds(t *testing.T) {
	j := &job.Job{Class: job.Malleable, Cores: 8, MinCores: 4, MaxCores: 16}
	if j.ShrinkableBy() != 4 || j.GrowableBy() != 8 {
		t.Errorf("shrink=%d grow=%d", j.ShrinkableBy(), j.GrowableBy())
	}
	j.DynCores = 8 // at max
	if j.GrowableBy() != 0 {
		t.Error("at MaxCores growable should be 0")
	}
	if j.ShrinkableBy() != 12 {
		t.Errorf("shrinkable = %d", j.ShrinkableBy())
	}
	// Defaults: no Min/Max = rigid-sized.
	d := &job.Job{Class: job.Malleable, Cores: 8}
	if d.ShrinkableBy() != 0 || d.GrowableBy() != 0 {
		t.Error("default bounds should pin the size")
	}
	r := &job.Job{Class: job.Rigid, Cores: 8, MinCores: 1, MaxCores: 99}
	if r.ShrinkableBy() != 0 || r.GrowableBy() != 0 {
		t.Error("non-malleable jobs never resize")
	}
}
