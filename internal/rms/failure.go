package rms

import (
	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/sim"
	"repro/internal/trace"
)

// FailurePolicy selects what happens to jobs that lose cores when a
// node fails and neither the application nor a spare node can absorb
// the loss.
type FailurePolicy int

const (
	// FailCancel kills affected jobs (the default — what a plain
	// Torque deployment does when a mom dies).
	FailCancel FailurePolicy = iota
	// FailRequeue requeues affected jobs to restart from scratch.
	FailRequeue
)

// FaultAwareApp is the optional application interface for fault
// tolerance via dynamic allocation (§I: "Dynamic allocations also help
// during node failures by allocating spare nodes to affected jobs").
// OnNodeFailure is invoked after the lost cores are removed from the
// job's allocation; returning true means the application absorbs the
// loss and keeps running (typically after issuing a dynamic request
// for replacement resources); returning false falls back to the
// server's FailurePolicy.
type FaultAwareApp interface {
	OnNodeFailure(s *Server, j *job.Job, lostCores int, now sim.Time) bool
}

// FailNode marks a node Down and handles every affected job: the dead
// cores are stripped from their allocations; fault-aware applications
// may continue (and request spares), others are requeued or cancelled
// per the server's FailurePolicy. Returns the affected job IDs.
func (s *Server) FailNode(nodeID int) []job.ID {
	now := s.eng.Now()
	affected := s.cl.SetNodeState(nodeID, cluster.Down)
	if s.Trace != nil {
		s.Trace.Addf(now, trace.NodeDown, "", 0, "node%d failed", nodeID)
	}
	node := s.cl.Node(nodeID)
	for _, id := range affected {
		j, ok := s.active[id]
		if !ok {
			continue
		}
		lost := node.HeldBy(id)
		if lost <= 0 {
			continue
		}
		// Strip the dead cores from the allocation.
		origCores := j.Cores
		if err := s.cl.ReleasePartial(id, cluster.Alloc{{NodeID: nodeID, Cores: lost}}); err != nil {
			continue
		}
		if lost > j.DynCores {
			j.Cores -= lost - j.DynCores
			j.DynCores = 0
		} else {
			j.DynCores -= lost
		}
		s.observeUsage()
		if app, ok := s.apps[id].(FaultAwareApp); ok && app.OnNodeFailure(s, j, lost, now) {
			continue // the application absorbs the failure
		}
		// Fallback: the job cannot continue degraded. Restore the
		// original request size before requeueing/cancelling.
		j.Cores = origCores
		switch s.FailurePolicy {
		case FailRequeue:
			// Requeue via the preemption path (full restart).
			_ = s.Preempt(j)
		default:
			s.CancelJob(j)
		}
	}
	s.bump()
	s.requestIteration()
	return affected
}

// RepairNode returns a Down/Offline node to service.
func (s *Server) RepairNode(nodeID int) {
	s.cl.SetNodeState(nodeID, cluster.Up)
	if s.Trace != nil {
		s.Trace.Addf(s.eng.Now(), trace.NodeUp, "", 0, "node%d repaired", nodeID)
	}
	s.bump()
	s.requestIteration()
}

// DrainNode marks a node Offline (administrative): running jobs keep
// their cores, but nothing new is placed there.
func (s *Server) DrainNode(nodeID int) {
	s.cl.SetNodeState(nodeID, cluster.Offline)
	s.bump()
	s.requestIteration()
}
