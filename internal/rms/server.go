// Package rms implements the resource manager (the Torque pbs_server
// analog) for the discrete-event simulator: it owns the job queue, the
// running set, the FIFO dynamic-request queue and the job lifecycle,
// implements core.ResourceManager for the scheduler, and drives
// application behaviour models (rigid and evolving) over the
// simulation engine.
//
// The live TCP daemons in internal/serverd and internal/mom implement
// the same protocol against real sockets; this package is the
// simulation substrate the paper's testbed is substituted with.
package rms

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/trace"
)

// App models the runtime behaviour of a job's application: when the
// job starts, the app schedules its own completion (and any dynamic
// requests) on the engine via the server's scheduling primitives.
type App interface {
	// OnStart is invoked when the job's resources are allocated and
	// the application launches. Implementations must arrange for
	// Server.CompleteJob to eventually run (via ScheduleCompletion).
	OnStart(s *Server, j *job.Job, now sim.Time)
	// OnDynResult is invoked when a dynamic request of this job is
	// granted or rejected.
	OnDynResult(s *Server, j *job.Job, granted bool, now sim.Time)
	// OnPreempt is invoked when the job is preempted and requeued;
	// pending app events should be considered void (the server cancels
	// the completion event itself).
	OnPreempt(s *Server, j *job.Job, now sim.Time)
}

// Server is the simulated resource manager.
type Server struct {
	eng   *sim.Engine
	cl    *cluster.Cluster
	sched *core.Scheduler
	rec   *metrics.Recorder

	queued []*job.Job          //schedlint:epoch-guarded by bumpQueue
	active map[job.ID]*job.Job //schedlint:epoch-guarded by bump
	dyn    []*job.DynRequest   //schedlint:epoch-guarded by bump
	dynSeq int

	apps      map[job.ID]App
	endEvents map[job.ID]*sim.Event
	appEvents map[job.ID][]*sim.Event

	// dynGrants tracks first-grant times for metrics.
	dynGrants map[job.ID]sim.Time

	nextID job.ID

	iterPending bool
	completed   int
	submitted   int

	// OnIteration, when set, observes every scheduler iteration result
	// (used by experiment harnesses and tests).
	OnIteration func(res *core.IterationResult)

	// EnforceWalltime cancels jobs that exceed their requested
	// walltime, as production batch systems do (the paper's intro: a
	// job may "not even be able to finish when their job's time slice
	// expires"). Enabled by default in NewServer.
	EnforceWalltime bool

	// Trace, when set, records every lifecycle event for rendering
	// with the trace package (event log / ASCII Gantt).
	Trace *trace.Log

	// FailurePolicy selects the fallback for jobs hit by node
	// failures whose application is not fault-aware (see failure.go).
	FailurePolicy FailurePolicy

	cancelled int

	// epoch/qepoch implement core.ChangeTracker: epoch advances on
	// every externally visible state mutation, qepoch on the subset
	// that changes queue membership. The scheduler's event-driven
	// requeue and order cache key off them.
	epoch  uint64
	qepoch uint64
}

// bump advances the state epoch after a cluster/job mutation.
func (s *Server) bump() { s.epoch++ }

// bumpQueue advances both epochs after a queue-membership change.
//
//schedlint:epoch-bump subsumes bump
func (s *Server) bumpQueue() { s.epoch++; s.qepoch++ }

// StateEpoch implements core.ChangeTracker.
func (s *Server) StateEpoch() uint64 { return s.epoch }

// QueueEpoch implements core.ChangeTracker.
func (s *Server) QueueEpoch() uint64 { return s.qepoch }

// QueueRef implements core.QueueSnapshotter: the scheduler reads the
// queue in place during Iterate (it copies what it keeps), skipping
// the defensive copy QueuedJobs makes.
func (s *Server) QueueRef() []*job.Job { return s.queued }

// NewServer wires a server to an engine, cluster, scheduler and
// metrics recorder.
func NewServer(eng *sim.Engine, cl *cluster.Cluster, sched *core.Scheduler, rec *metrics.Recorder) *Server {
	return &Server{
		eng:       eng,
		cl:        cl,
		sched:     sched,
		rec:       rec,
		active:    make(map[job.ID]*job.Job),
		apps:      make(map[job.ID]App),
		endEvents: make(map[job.ID]*sim.Event),
		appEvents: make(map[job.ID][]*sim.Event),
		dynGrants: make(map[job.ID]sim.Time),
		nextID:    1,

		EnforceWalltime: true,
	}
}

// Engine returns the simulation engine driving this server.
func (s *Server) Engine() *sim.Engine { return s.eng }

// Scheduler returns the attached scheduler.
func (s *Server) Scheduler() *core.Scheduler { return s.sched }

// Recorder returns the metrics recorder.
func (s *Server) Recorder() *metrics.Recorder { return s.rec }

// Completed returns the number of jobs that finished.
func (s *Server) Completed() int { return s.completed }

// Cancelled returns the number of jobs killed (walltime or qdel).
func (s *Server) Cancelled() int { return s.cancelled }

// Submitted returns the number of jobs submitted so far.
func (s *Server) Submitted() int { return s.submitted }

// NewJobID hands out server-unique job IDs.
func (s *Server) NewJobID() job.ID {
	id := s.nextID
	s.nextID++
	return id
}

// Submit enqueues a job with its application model at the current
// virtual time and triggers a scheduling cycle. Jobs without an ID get
// one assigned.
func (s *Server) Submit(j *job.Job, app App) {
	if j.ID == 0 {
		j.ID = s.NewJobID()
	}
	now := s.eng.Now()
	j.SubmitTime = now
	j.State = job.Queued
	s.queued = append(s.queued, j)
	s.apps[j.ID] = app
	s.submitted++
	if s.rec != nil {
		s.rec.ObserveSubmit(now)
	}
	s.traceEvent(trace.Submit, j, j.Cores, "")
	s.bumpQueue()
	s.requestIteration()
}

// SubmitAt schedules a submission at a future virtual time. The event
// is handle-free and its label static: submissions happen hundreds of
// thousands of times per campaign and must not allocate beyond the
// closure itself.
func (s *Server) SubmitAt(at sim.Time, j *job.Job, app App) {
	s.eng.ScheduleAt(at, "submit", func(sim.Time) {
		s.Submit(j, app)
	})
}

// SubmitBatch schedules many future submissions in one engine batch —
// the O(n) bulk-load path for workload generators that lay out a whole
// experiment's arrivals up front. Items at time zero submit
// immediately, preserving SubmitAll's original interleaving.
func (s *Server) SubmitBatch(items []SubmitItem) {
	batch := make([]sim.Timed, 0, len(items))
	for _, it := range items {
		it := it
		if it.At <= s.eng.Now() {
			s.Submit(it.Job, it.App)
			continue
		}
		batch = append(batch, sim.Timed{At: it.At, Label: "submit", Fn: func(sim.Time) {
			s.Submit(it.Job, it.App)
		}})
	}
	s.eng.ScheduleBatch(batch)
}

// SubmitItem is one entry of a SubmitBatch call.
type SubmitItem struct {
	At  sim.Time
	Job *job.Job
	App App
}

// RequestDyn files a dynamic allocation request on behalf of a running
// job (the tm_dynget path: application → mom → mother superior →
// server). Only one pending request per job is admitted, mirroring the
// mother-superior serialization in §III-B. The job enters the
// DynQueued state and a scheduling cycle is triggered.
func (s *Server) RequestDyn(j *job.Job, cores int) error {
	return s.requestDyn(&job.DynRequest{Job: j, Cores: cores, IssuedAt: s.eng.Now()})
}

// RequestDynNodes files a node-granular dynamic request (nodes × ppn).
func (s *Server) RequestDynNodes(j *job.Job, nodes, ppn int) error {
	return s.requestDyn(&job.DynRequest{Job: j, Nodes: nodes, PPN: ppn, IssuedAt: s.eng.Now()})
}

// RequestDynTimeout files a negotiable dynamic request (§III-C's
// negotiation protocol): instead of an immediate verdict, the request
// stays queued until it can be granted or until timeout elapses, at
// which point the application is rejected with the batch system's
// availability estimate.
func (s *Server) RequestDynTimeout(j *job.Job, cores int, timeout sim.Duration) error {
	if timeout <= 0 {
		return s.RequestDyn(j, cores)
	}
	now := s.eng.Now()
	r := &job.DynRequest{Job: j, Cores: cores, IssuedAt: now, Deadline: now + timeout}
	if err := s.requestDyn(r); err != nil {
		return err
	}
	s.eng.ScheduleAt(r.Deadline, "dyn deadline", func(sim.Time) {
		// Still pending at the deadline: deliver the final rejection.
		for _, p := range s.dyn {
			if p == r {
				s.RejectDyn(r, "negotiation deadline expired")
				return
			}
		}
	})
	return nil
}

func (s *Server) requestDyn(r *job.DynRequest) error {
	j := r.Job
	if j.State != job.Running {
		return fmt.Errorf("rms: %s is %s; dynamic requests require a running job", j.ID, j.State)
	}
	for _, p := range s.dyn {
		if p.Job.ID == j.ID {
			return fmt.Errorf("rms: %s already has a pending dynamic request", j.ID)
		}
	}
	if err := r.Validate(); err != nil {
		return err
	}
	r.Seq = s.dynSeq
	s.dynSeq++
	j.State = job.DynQueued
	s.dyn = append(s.dyn, r)
	s.traceEvent(trace.DynRequest, j, r.TotalCores(), "")
	s.bump()
	s.requestIteration()
	return nil
}

// DynFree releases part of a running job's allocation (tm_dynfree /
// dyn_disjoin): any subset may be released, and freed resources become
// schedulable immediately.
func (s *Server) DynFree(j *job.Job, part cluster.Alloc) error {
	if !j.Active() {
		return fmt.Errorf("rms: %s is not active", j.ID)
	}
	if err := s.cl.ReleasePartial(j.ID, part); err != nil {
		return err
	}
	released := part.TotalCores()
	if released > j.DynCores {
		// Releasing below the original request shrinks the base.
		j.Cores -= released - j.DynCores
		j.DynCores = 0
	} else {
		j.DynCores -= released
	}
	s.observeUsage()
	s.traceEvent(trace.DynFree, j, released, "")
	s.bump()
	s.requestIteration()
	return nil
}

// ScheduleCompletion (re)arms the job's completion event at the given
// virtual time. Applications call it from OnStart and after grants.
func (s *Server) ScheduleCompletion(j *job.Job, at sim.Time) {
	if ev, ok := s.endEvents[j.ID]; ok {
		ev.Cancel()
	}
	if at < s.eng.Now() {
		at = s.eng.Now()
	}
	s.endEvents[j.ID] = s.eng.At(at, "complete", func(sim.Time) {
		s.CompleteJob(j)
	})
}

// ScheduleAppEvent registers an application callback at a future time,
// tied to the job: preemption or completion voids it.
func (s *Server) ScheduleAppEvent(j *job.Job, at sim.Time, label string, fn func(now sim.Time)) {
	ev := s.eng.At(at, label, fn)
	s.appEvents[j.ID] = append(s.appEvents[j.ID], ev)
}

func (s *Server) cancelAppEvents(id job.ID) {
	for _, ev := range s.appEvents[id] {
		ev.Cancel()
	}
	delete(s.appEvents, id)
}

// CompleteJob finishes a running job: resources are released, metrics
// recorded, fairshare charged, and a scheduling cycle triggered.
func (s *Server) CompleteJob(j *job.Job) {
	if !j.Active() {
		return
	}
	now := s.eng.Now()
	// A job that finishes while its dynamic request is still pending
	// abandons the request.
	s.dropDynRequest(j.ID)
	s.cl.Release(j.ID)
	delete(s.active, j.ID)
	if ev, ok := s.endEvents[j.ID]; ok {
		ev.Cancel()
		delete(s.endEvents, j.ID)
	}
	s.cancelAppEvents(j.ID)
	j.State = job.Completed
	j.EndTime = now
	s.completed++
	if s.rec != nil {
		grantAt, granted := s.dynGrants[j.ID]
		s.rec.AddJob(metrics.JobRecord{
			ID: j.ID, Type: jobType(j), User: j.Cred.User, Cores: j.TotalCores(),
			Submit: j.SubmitTime, Start: j.StartTime, End: now,
			Backfilled: j.Backfilled, Evolving: j.Class == job.Evolving,
			DynGranted: granted, GrantTime: grantAt,
		})
		s.observeUsage()
	}
	s.sched.Fairshare().Record(j.Cred.User, float64(j.TotalCores())*sim.SecondsOf(now-j.StartTime))
	s.traceEvent(trace.Complete, j, j.TotalCores(), "")
	s.bump()
	s.requestIteration()
}

// jobType derives the workload type tag from the job name ("L.12" → "L").
func jobType(j *job.Job) string {
	if i := strings.IndexByte(j.Name, '.'); i > 0 {
		return j.Name[:i]
	}
	return j.Name
}

func (s *Server) observeUsage() {
	if s.rec != nil {
		s.rec.ObserveUsage(s.eng.Now(), s.cl.UsedCores())
	}
}

// traceEvent records a lifecycle event when tracing is enabled.
func (s *Server) traceEvent(k trace.Kind, j *job.Job, cores int, note string) {
	if s.Trace == nil {
		return
	}
	name := ""
	if j != nil {
		name = j.Name
		if name == "" {
			name = j.ID.String()
		}
	}
	s.Trace.Add(trace.Event{At: s.eng.Now(), Kind: k, Job: name, Cores: cores, Note: note})
}

func (s *Server) dropDynRequest(id job.ID) {
	for i, r := range s.dyn {
		if r.Job.ID == id {
			s.dyn = append(s.dyn[:i], s.dyn[i+1:]...)
			return
		}
	}
}

// requestIteration schedules a scheduling cycle at the current virtual
// time (deduplicated), mirroring Maui's instant wakeup on job or
// resource state changes.
func (s *Server) requestIteration() {
	if s.iterPending {
		return
	}
	s.iterPending = true
	s.eng.ScheduleAt(s.eng.Now(), "maui iteration", func(now sim.Time) {
		s.iterPending = false
		res := s.sched.Iterate(now, s)
		if s.OnIteration != nil {
			s.OnIteration(res)
		}
		// Results are consumed synchronously (observers copy what they
		// keep); recycling stops steady-state iteration garbage.
		s.sched.Recycle(res)
	})
}

// --- core.ResourceManager implementation ---

// Cluster returns the managed cluster.
func (s *Server) Cluster() *cluster.Cluster { return s.cl }

// QueuedJobs returns the queued static jobs (submission order).
func (s *Server) QueuedJobs() []*job.Job {
	return append([]*job.Job(nil), s.queued...)
}

// ActiveJobs returns running and dynqueued jobs in ID order.
func (s *Server) ActiveJobs() []*job.Job {
	out := make([]*job.Job, 0, len(s.active))
	for _, j := range s.active {
		out = append(out, j)
	}
	// Deterministic order for reproducible planning.
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// DynRequests returns pending dynamic requests in FIFO order.
func (s *Server) DynRequests() []*job.DynRequest {
	return append([]*job.DynRequest(nil), s.dyn...)
}

// StartJob allocates and starts a queued job (scheduler callback).
func (s *Server) StartJob(j *job.Job) (cluster.Alloc, error) {
	alloc := s.cl.Allocate(j.ID, j.Cores)
	if alloc == nil {
		return nil, fmt.Errorf("rms: cannot place %d cores for %s", j.Cores, j.ID)
	}
	now := s.eng.Now()
	for i, q := range s.queued {
		if q.ID == j.ID {
			s.queued = append(s.queued[:i], s.queued[i+1:]...)
			break
		}
	}
	j.State = job.Running
	j.StartTime = now
	s.active[j.ID] = j
	s.bumpQueue()
	s.observeUsage()
	if j.Backfilled {
		s.traceEvent(trace.Backfill, j, j.Cores, "")
	} else {
		s.traceEvent(trace.Start, j, j.Cores, "")
	}
	if app := s.apps[j.ID]; app != nil {
		app.OnStart(s, j, now)
	} else {
		// No app model: run to walltime.
		s.ScheduleCompletion(j, now+j.Walltime)
	}
	if s.EnforceWalltime && j.Walltime > 0 {
		s.ScheduleAppEvent(j, now+j.Walltime, "walltime kill", func(sim.Time) {
			if j.Active() {
				s.CancelJob(j)
			}
		})
	}
	return alloc, nil
}

// CancelJob terminates a job (walltime expiry or qdel). Queued jobs
// are dropped from the queue; active jobs release their resources. The
// job is recorded in metrics with its cancellation time.
func (s *Server) CancelJob(j *job.Job) {
	now := s.eng.Now()
	switch {
	case j.State == job.Queued:
		for i, q := range s.queued {
			if q.ID == j.ID {
				s.queued = append(s.queued[:i], s.queued[i+1:]...)
				break
			}
		}
		s.bumpQueue()
	case j.Active():
		s.dropDynRequest(j.ID)
		s.cl.Release(j.ID)
		delete(s.active, j.ID)
		if ev, ok := s.endEvents[j.ID]; ok {
			ev.Cancel()
			delete(s.endEvents, j.ID)
		}
		s.cancelAppEvents(j.ID)
		s.sched.Fairshare().Record(j.Cred.User, float64(j.TotalCores())*sim.SecondsOf(now-j.StartTime))
		s.observeUsage()
		// The bump must follow the mutations: bumping first would let a
		// scheduler cache validated against the new epoch serve the
		// pre-cancellation active set.
		s.bump()
	default:
		return
	}
	j.State = job.Cancelled
	j.EndTime = now
	s.cancelled++
	s.traceEvent(trace.Cancel, j, j.TotalCores(), "")
	s.requestIteration()
}

// GrantDyn expands a job's allocation per the request (scheduler
// callback) and notifies the application (the tm_dynget reply with the
// new hostlist, Fig. 3 step 6-7).
func (s *Server) GrantDyn(r *job.DynRequest) (cluster.Alloc, error) {
	var alloc cluster.Alloc
	if r.Nodes > 0 {
		alloc = s.cl.AllocateNodes(r.Job.ID, r.Nodes, r.PPN)
	} else {
		alloc = s.cl.Allocate(r.Job.ID, r.Cores)
	}
	if alloc == nil {
		return nil, fmt.Errorf("rms: cannot place dynamic request for %s", r.Job.ID)
	}
	now := s.eng.Now()
	r.Job.DynCores += r.TotalCores()
	r.Job.State = job.Running
	if _, ok := s.dynGrants[r.Job.ID]; !ok {
		s.dynGrants[r.Job.ID] = now
	}
	s.dropDynRequest(r.Job.ID)
	s.bump()
	s.observeUsage()
	s.traceEvent(trace.DynGrant, r.Job, r.TotalCores(), alloc.String())
	if app := s.apps[r.Job.ID]; app != nil {
		app.OnDynResult(s, r.Job, true, now)
	}
	return alloc, nil
}

// RejectDyn declines a request (scheduler callback); the application
// continues on its current allocation and may retry later.
func (s *Server) RejectDyn(r *job.DynRequest, reason string) {
	r.Job.State = job.Running
	s.dropDynRequest(r.Job.ID)
	s.bump()
	s.traceEvent(trace.DynReject, r.Job, r.TotalCores(), reason)
	if app := s.apps[r.Job.ID]; app != nil {
		app.OnDynResult(s, r.Job, false, s.eng.Now())
	}
}

// Preempt stops a running job and requeues it (scheduler callback,
// PREEMPTPOLICY REQUEUE). The restarted job runs from scratch.
func (s *Server) Preempt(j *job.Job) error {
	if !j.Active() {
		return fmt.Errorf("rms: %s is not active", j.ID)
	}
	now := s.eng.Now()
	s.dropDynRequest(j.ID)
	s.cl.Release(j.ID)
	delete(s.active, j.ID)
	if ev, ok := s.endEvents[j.ID]; ok {
		ev.Cancel()
		delete(s.endEvents, j.ID)
	}
	s.cancelAppEvents(j.ID)
	j.State = job.Queued
	j.StartTime = 0
	j.DynCores = 0
	j.Backfilled = false
	s.queued = append(s.queued, j)
	s.bumpQueue()
	s.observeUsage()
	s.traceEvent(trace.Preempt, j, j.Cores, "")
	if app := s.apps[j.ID]; app != nil {
		app.OnPreempt(s, j, now)
	}
	return nil
}

// Run drives the simulation until the event queue drains; limit guards
// against runaway models (0 = unlimited).
func (s *Server) Run(limit uint64) {
	s.eng.Run(limit)
}
