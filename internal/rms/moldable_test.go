package rms

import (
	"testing"

	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
)

func newMoldableHarness(nodes, cores int) *harness {
	h := newHarness(nodes, cores, fairness.None, nil)
	opts := h.srv.Scheduler().Options()
	opts.Moldable = true
	h.srv = NewServer(h.eng, h.cl, core.New(opts, 0), h.rec)
	return h
}

func TestMoldableShrinksToStartNow(t *testing.T) {
	// 16 cores total, 8 busy for an hour. A moldable job asking for 16
	// (min 4) is molded down to the 8 free cores and starts at once.
	h := newMoldableHarness(2, 8)
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: sim.Hour}
	h.srv.Submit(blocker, &FixedApp{Runtime: sim.Hour})
	m := &job.Job{
		Name: "mold", Cred: job.Credentials{User: "u"}, Class: job.Moldable,
		Cores: 16, MinCores: 4, MaxCores: 16, Walltime: 3 * sim.Hour,
	}
	h.srv.Submit(m, &MalleableWorkApp{Work: 8 * 600})
	h.srv.Run(0)
	if m.StartTime != 0 {
		t.Fatalf("moldable start = %v, want immediate", m.StartTime)
	}
	if m.Cores != 8 {
		t.Errorf("molded size = %d, want 8", m.Cores)
	}
	// 4800 core-seconds on 8 cores = 600 s.
	if m.EndTime != 600*sim.Second {
		t.Errorf("end = %v", m.EndTime)
	}
}

func TestMoldableGrowsIntoAbundance(t *testing.T) {
	// Empty 32-core cluster: a moldable 8-core job (max 32) is molded
	// up to the whole machine.
	h := newMoldableHarness(4, 8)
	m := &job.Job{
		Name: "mold", Cred: job.Credentials{User: "u"}, Class: job.Moldable,
		Cores: 8, MinCores: 4, MaxCores: 32, Walltime: 3 * sim.Hour,
	}
	h.srv.Submit(m, &MalleableWorkApp{Work: 8 * 1200})
	h.srv.Run(0)
	if m.Cores != 32 {
		t.Fatalf("molded size = %d, want 32", m.Cores)
	}
	// 9600 core-s at 32 cores = 300 s.
	if m.EndTime != 300*sim.Second {
		t.Errorf("end = %v", m.EndTime)
	}
}

func TestMoldableWaitsBelowMin(t *testing.T) {
	// Only 2 cores free but MinCores is 4: the job must wait, not mold
	// below its minimum.
	h := newMoldableHarness(1, 8)
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 6, Walltime: 10 * sim.Minute}
	h.srv.Submit(blocker, &FixedApp{Runtime: 10 * sim.Minute})
	m := &job.Job{
		Name: "mold", Cred: job.Credentials{User: "u"}, Class: job.Moldable,
		Cores: 8, MinCores: 4, MaxCores: 8, Walltime: sim.Hour,
	}
	h.srv.Submit(m, &MalleableWorkApp{Work: 8 * 60})
	h.srv.Run(0)
	if m.StartTime != 10*sim.Minute {
		t.Errorf("start = %v, want after the blocker", m.StartTime)
	}
	if m.Cores != 8 {
		t.Errorf("size = %d, want the full 8 once free", m.Cores)
	}
}

func TestMoldableDisabledStaysRigid(t *testing.T) {
	h := newHarness(2, 8, fairness.None, nil) // Moldable off
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 10 * sim.Minute}
	h.srv.Submit(blocker, &FixedApp{Runtime: 10 * sim.Minute})
	m := &job.Job{
		Name: "mold", Cred: job.Credentials{User: "u"}, Class: job.Moldable,
		Cores: 16, MinCores: 4, MaxCores: 16, Walltime: sim.Hour,
	}
	h.srv.Submit(m, &MalleableWorkApp{Work: 16 * 60})
	h.srv.Run(0)
	if m.StartTime != 10*sim.Minute || m.Cores != 16 {
		t.Errorf("disabled molding changed behaviour: start=%v cores=%d", m.StartTime, m.Cores)
	}
}

func TestMoldableNeverDisturbsReservation(t *testing.T) {
	// A reserved big job's window must constrain mold-up: the moldable
	// job may only take cores whose hold window stays clear.
	h := newMoldableHarness(2, 8)
	blocker := &job.Job{Name: "blk", Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: 10 * sim.Minute}
	h.srv.Submit(blocker, &FixedApp{Runtime: 10 * sim.Minute})
	// The big rigid job reserves all 16 cores at the blocker's end.
	big := &job.Job{Name: "big", Cred: job.Credentials{User: "v"}, Cores: 16, Walltime: 20 * sim.Minute}
	h.srv.Submit(big, &FixedApp{Runtime: 20 * sim.Minute})
	// The moldable job (walltime 1 h) cannot take ANY core without
	// overlapping the reservation window.
	m := &job.Job{
		Name: "mold", Cred: job.Credentials{User: "u"}, Class: job.Moldable,
		Cores: 8, MinCores: 1, MaxCores: 8, Walltime: sim.Hour,
	}
	h.srv.Submit(m, &MalleableWorkApp{Work: 8 * 60})
	h.srv.Run(0)
	if big.StartTime != 10*sim.Minute {
		t.Fatalf("big start = %v, want the undisturbed 10m reservation", big.StartTime)
	}
	if m.StartTime < 30*sim.Minute {
		t.Errorf("moldable start = %v, must wait out the reservation", m.StartTime)
	}
}
