package rms

import (
	"repro/internal/job"
	"repro/internal/sim"
)

// FixedApp models a rigid application: it runs for a fixed duration
// and never requests resources. With Checkpointable set, progress
// survives preemption: the restarted job resumes from its checkpoint
// instead of recomputing from scratch.
type FixedApp struct {
	Runtime        sim.Duration
	Checkpointable bool

	startedAt   sim.Time
	remaining   sim.Duration
	initialized bool
}

// Remaining returns the work left as of the last start/preempt event.
func (a *FixedApp) Remaining() sim.Duration {
	if !a.initialized {
		return a.Runtime
	}
	return a.remaining
}

// OnStart schedules the completion after the (remaining) runtime.
func (a *FixedApp) OnStart(s *Server, j *job.Job, now sim.Time) {
	if !a.initialized || !a.Checkpointable {
		a.remaining = a.Runtime
		a.initialized = true
	}
	a.startedAt = now
	s.ScheduleCompletion(j, now+a.remaining)
}

// OnDynResult is never invoked for rigid jobs.
func (a *FixedApp) OnDynResult(*Server, *job.Job, bool, sim.Time) {}

// OnPreempt records a checkpoint when enabled; otherwise the restart
// recomputes everything.
func (a *FixedApp) OnPreempt(s *Server, j *job.Job, now sim.Time) {
	if !a.Checkpointable {
		return
	}
	a.remaining -= now - a.startedAt
	if a.remaining < 0 {
		a.remaining = 0
	}
}

// EvolvingApp models the paper's evolving-job behaviour (§IV-B,
// calibrated on Quadflow's Cylinder case): the application runs for
// SET seconds on its initial allocation; at AttemptFracs[0]·SET it
// requests ExtraCores additional cores. If rejected it retries at the
// subsequent attempt fractions; after the last rejection it completes
// at SET. When a request is granted at elapsed time t, the remaining
// work accelerates so that a grant at the *first* attempt finishes at
// exactly DET:
//
//	speedup  s = (SET − DET) / (SET − t₁)        t₁ = AttemptFracs[0]·SET
//	end(t)     = t + (SET − t)·(1 − s)
type EvolvingApp struct {
	SET        sim.Duration
	DET        sim.Duration
	ExtraCores int
	// AttemptFracs are the fractions of SET at which dynamic requests
	// are issued (the paper uses 0.16 and 0.25).
	AttemptFracs []float64

	// runtime state (reset on every start)
	startAt sim.Time
	attempt int
	granted bool
}

// DefaultAttemptFracs are the paper's request points: 16% of the
// static execution time, with a second chance at 25%.
func DefaultAttemptFracs() []float64 { return []float64{0.16, 0.25} }

// Granted reports whether the app obtained its dynamic resources.
func (a *EvolvingApp) Granted() bool { return a.granted }

// OnStart resets state, arms the SET-completion and the first request.
func (a *EvolvingApp) OnStart(s *Server, j *job.Job, now sim.Time) {
	a.startAt = now
	a.attempt = 0
	a.granted = false
	s.ScheduleCompletion(j, now+a.SET)
	a.armAttempt(s, j)
}

func (a *EvolvingApp) armAttempt(s *Server, j *job.Job) {
	if a.attempt >= len(a.AttemptFracs) {
		return
	}
	frac := a.AttemptFracs[a.attempt]
	at := a.startAt + sim.Duration(frac*float64(a.SET))
	if at < s.Engine().Now() {
		at = s.Engine().Now()
	}
	s.ScheduleAppEvent(j, at, "dynget attempt", func(now sim.Time) {
		if j.State != job.Running || a.granted {
			return
		}
		// The request may race with completion; ignore errors (e.g. a
		// pending request from a previous attempt).
		_ = s.RequestDyn(j, a.ExtraCores)
	})
}

// OnDynResult accelerates the job on a grant, or arms the next attempt
// on a rejection.
func (a *EvolvingApp) OnDynResult(s *Server, j *job.Job, granted bool, now sim.Time) {
	if granted {
		a.granted = true
		end := a.startAt + a.EndAfterGrant(now-a.startAt)
		s.ScheduleCompletion(j, end)
		return
	}
	a.attempt++
	a.armAttempt(s, j)
}

// EndAfterGrant returns the total runtime if the grant lands at
// elapsed time t. A grant at the first attempt point yields exactly
// DET; later grants recover proportionally less.
func (a *EvolvingApp) EndAfterGrant(t sim.Duration) sim.Duration {
	if t >= a.SET {
		return a.SET
	}
	t1 := sim.Duration(a.AttemptFracs[0] * float64(a.SET))
	if a.SET <= t1 {
		return a.SET
	}
	s := float64(a.SET-a.DET) / float64(a.SET-t1)
	rem := float64(a.SET-t) * (1 - s)
	if rem < 0 {
		rem = 0
	}
	return t + sim.Duration(rem)
}

// OnPreempt resets progress; the job restarts from scratch.
func (a *EvolvingApp) OnPreempt(s *Server, j *job.Job, now sim.Time) {
	a.attempt = 0
	a.granted = false
}
