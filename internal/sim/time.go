// Package sim provides a deterministic discrete-event simulation engine
// used as the substrate for scheduler experiments. The same scheduler
// code that drives the live daemons runs on top of this engine with a
// virtual clock, which lets the multi-hour ESP workloads of the paper
// complete in well under a second of wall time.
package sim

import (
	"fmt"
	"time"
)

// Time is a point in virtual time, measured in milliseconds since the
// start of the simulation. Millisecond granularity is fine-grained
// enough for sub-second scheduling overheads while keeping event
// ordering exact (no floating-point comparison hazards).
type Time int64

// Duration is a span of virtual time in milliseconds.
type Duration = Time

// Canonical conversion constants.
const (
	Millisecond Duration = 1
	Second      Duration = 1000 * Millisecond
	Minute      Duration = 60 * Second
	Hour        Duration = 60 * Minute
)

// Forever is a sentinel for "no deadline" / "infinitely far future".
const Forever Time = 1<<62 - 1

// Seconds converts a floating-point number of seconds to a Duration,
// rounding to the nearest millisecond.
func Seconds(s float64) Duration {
	return Duration(s*1000 + 0.5)
}

// SecondsOf returns the duration expressed as floating-point seconds.
func SecondsOf(d Duration) float64 { return float64(d) / 1000 }

// MinutesOf returns the duration expressed as floating-point minutes.
func MinutesOf(d Duration) float64 { return float64(d) / float64(Minute) }

// FromReal converts a wall-clock duration to virtual time at 1:1 scale.
func FromReal(d time.Duration) Duration { return Duration(d.Milliseconds()) }

// ToReal converts a virtual duration to a wall-clock duration at 1:1 scale.
func ToReal(d Duration) time.Duration { return time.Duration(d) * time.Millisecond }

// FormatTime renders a virtual time as HH:MM:SS.mmm for logs and traces.
func FormatTime(t Time) string {
	if t >= Forever {
		return "never"
	}
	neg := ""
	if t < 0 {
		neg = "-"
		t = -t
	}
	ms := t % 1000
	s := (t / Second) % 60
	m := (t / Minute) % 60
	h := t / Hour
	if ms == 0 {
		return fmt.Sprintf("%s%02d:%02d:%02d", neg, h, m, s)
	}
	return fmt.Sprintf("%s%02d:%02d:%02d.%03d", neg, h, m, s, ms)
}
