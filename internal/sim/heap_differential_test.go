package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"testing"
)

// oldEngine is the seed implementation of the event queue — a binary
// container/heap over per-event pointer nodes — kept verbatim as the
// differential oracle for the 4-ary value-slot queue. Both engines are
// driven through identical schedule/cancel scripts and must produce
// identical firing sequences.
type oldEvent struct {
	at     Time
	seq    uint64
	fire   func(now Time)
	index  int
	cancel bool
	label  string
}

type oldQueue []*oldEvent

func (q oldQueue) Len() int { return len(q) }
func (q oldQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q oldQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *oldQueue) Push(x any) {
	e := x.(*oldEvent)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *oldQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

type oldEngine struct {
	now   Time
	seq   uint64
	queue oldQueue
	fired uint64
}

func (e *oldEngine) At(t Time, label string, fn func(now Time)) *oldEvent {
	if t < e.now {
		panic("old: scheduling in the past")
	}
	ev := &oldEvent{at: t, seq: e.seq, fire: fn, label: label}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

func (e *oldEngine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*oldEvent)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fire(e.now)
		return true
	}
	return false
}

func (e *oldEngine) Run() {
	for e.Step() {
	}
}

// firing is one observed event execution.
type firing struct {
	At    Time
	Label string
}

// script is a deterministic schedule/cancel scenario: step i schedules
// an event at Offsets[i] from the current head time; Cancels marks
// which previously scheduled events get cancelled before running.
type script struct {
	offsets []Time
	cancels []int  // indices into offsets
	nested  []bool // event i reschedules a child event when it fires
}

func genScript(rng *rand.Rand, n int) script {
	sc := script{
		offsets: make([]Time, n),
		nested:  make([]bool, n),
	}
	for i := range sc.offsets {
		// Heavy tie density: many equal times exercise FIFO breaking.
		sc.offsets[i] = Time(rng.Intn(50))
		sc.nested[i] = rng.Intn(8) == 0
	}
	for i := 0; i < n/5; i++ {
		sc.cancels = append(sc.cancels, rng.Intn(n))
	}
	return sc
}

// runNew executes the script on the value-slot engine.
func runNew(sc script) []firing {
	var got []firing
	e := NewEngine()
	events := make([]*Event, len(sc.offsets))
	for i, off := range sc.offsets {
		i, off := i, off
		label := fmt.Sprintf("ev%d", i)
		fn := func(now Time) {
			got = append(got, firing{now, label})
		}
		if sc.nested[i] {
			fn = func(now Time) {
				got = append(got, firing{now, label})
				e.ScheduleAt(now+off/2+1, label+".child", func(now Time) {
					got = append(got, firing{now, label + ".child"})
				})
			}
		}
		events[i] = e.At(off, label, fn)
	}
	for _, c := range sc.cancels {
		events[c].Cancel()
	}
	e.Run(0)
	return got
}

// runOld executes the same script on the seed engine.
func runOld(sc script) []firing {
	var got []firing
	e := &oldEngine{}
	events := make([]*oldEvent, len(sc.offsets))
	for i, off := range sc.offsets {
		i, off := i, off
		label := fmt.Sprintf("ev%d", i)
		fn := func(now Time) {
			got = append(got, firing{now, label})
		}
		if sc.nested[i] {
			fn = func(now Time) {
				got = append(got, firing{now, label})
				e.At(now+off/2+1, label+".child", func(now Time) {
					got = append(got, firing{now, label + ".child"})
				})
			}
		}
		events[i] = e.At(off, label, fn)
	}
	for _, c := range sc.cancels {
		events[c].cancel = true
	}
	e.Run()
	return got
}

// TestHeapDifferential drives the new 4-ary value-slot queue and the
// seed container/heap queue through 200 random schedule/cancel/nested
// scripts and requires identical firing sequences — times, labels and
// order — proving the queue swap cannot perturb any simulation result.
func TestHeapDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(300)
		sc := genScript(rand.New(rand.NewSource(int64(trial))), n)
		got, want := runNew(sc), runOld(sc)
		if len(got) != len(want) {
			t.Fatalf("trial %d (n=%d): fired %d events, oracle fired %d", trial, n, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: firing %d = %+v, oracle %+v", trial, i, got[i], want[i])
			}
		}
	}
}

// TestScheduleBatchMatchesSequentialAt pins that the O(n) bulk-load
// path fires in exactly the order sequential At calls would produce,
// including FIFO ties, both on an empty queue (heapify path) and a
// non-empty one (push path).
func TestScheduleBatchMatchesSequentialAt(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(200)
		offsets := make([]Time, n)
		for i := range offsets {
			offsets[i] = Time(rng.Intn(20))
		}
		preload := trial%2 == 1 // alternate empty-queue and mixed-queue starts

		var seq []firing
		es := NewEngine()
		if preload {
			es.At(3, "pre", func(now Time) { seq = append(seq, firing{now, "pre"}) })
		}
		for i, off := range offsets {
			label := fmt.Sprintf("b%d", i)
			es.At(off, label, func(now Time) { seq = append(seq, firing{now, label}) })
		}
		es.Run(0)

		var bat []firing
		eb := NewEngine()
		if preload {
			eb.At(3, "pre", func(now Time) { bat = append(bat, firing{now, "pre"}) })
		}
		batch := make([]Timed, n)
		for i, off := range offsets {
			label := fmt.Sprintf("b%d", i)
			batch[i] = Timed{At: off, Label: label, Fn: func(now Time) { bat = append(bat, firing{now, label}) }}
		}
		eb.ScheduleBatch(batch)
		eb.Run(0)

		if len(seq) != len(bat) {
			t.Fatalf("trial %d: batch fired %d, sequential fired %d", trial, len(bat), len(seq))
		}
		for i := range seq {
			if seq[i] != bat[i] {
				t.Fatalf("trial %d: firing %d batch=%+v sequential=%+v", trial, i, bat[i], seq[i])
			}
		}
	}
}

// TestScheduleAtHandleFree covers the no-handle path end to end.
func TestScheduleAtHandleFree(t *testing.T) {
	e := NewEngine()
	var order []Time
	e.ScheduleAt(20, "b", func(now Time) { order = append(order, now) })
	e.ScheduleAfter(10, "a", func(now Time) { order = append(order, now) })
	e.ScheduleAfter(-5, "clamped", func(now Time) { order = append(order, now) })
	e.Run(0)
	if len(order) != 3 || order[0] != 0 || order[1] != 10 || order[2] != 20 {
		t.Fatalf("handle-free firing order = %v, want [0 10 20]", order)
	}
}

// TestSlotReuse verifies the freelist actually recycles: steady-state
// churn must not grow the slot arena beyond the high-water pending
// count.
func TestSlotReuse(t *testing.T) {
	e := NewEngine()
	for round := 0; round < 100; round++ {
		for i := 0; i < 10; i++ {
			e.ScheduleAfter(Duration(i), "churn", func(Time) {})
		}
		for e.Pending() > 0 {
			e.Step()
		}
	}
	if len(e.slots) > 16 {
		t.Fatalf("slot arena grew to %d for a pending window of 10; freelist not recycling", len(e.slots))
	}
}

// TestScheduleBatchPastPanics keeps the past-scheduling invariant on
// the batch path.
func TestScheduleBatchPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, "adv", func(Time) {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Error("batch scheduling in the past should panic")
		}
	}()
	e.ScheduleBatch([]Timed{{At: 5, Label: "past", Fn: func(Time) {}}})
}
