package sim

import (
	"container/heap"
	"fmt"
)

// Event is a callback scheduled to fire at a virtual time. Events with
// equal times fire in the order they were scheduled (FIFO), which keeps
// simulations fully deterministic.
type Event struct {
	at     Time
	seq    uint64
	fire   func(now Time)
	index  int // heap index, -1 once popped or cancelled
	cancel bool
	label  string
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Label returns the human-readable label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Cancel prevents the event from firing. Cancelling an already-fired
// event is a harmless no-op.
func (e *Event) Cancel() { e.cancel = true }

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// caller's goroutine.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventQueue
	fired  uint64
	maxraw int
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events scheduled but not yet fired
// (including cancelled events not yet discarded).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at the absolute virtual time t. Scheduling in
// the past panics: it always indicates a model bug, and silently
// reordering time would corrupt every downstream statistic.
func (e *Engine) At(t Time, label string, fn func(now Time)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %s before now %s", label, FormatTime(t), FormatTime(e.now)))
	}
	ev := &Event{at: t, seq: e.seq, fire: fn, label: label}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d milliseconds from now.
func (e *Engine) After(d Duration, label string, fn func(now Time)) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, label, fn)
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancel {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fire(e.now)
		return true
	}
	return false
}

// Run fires events until the queue drains. The limit guards against
// runaway models: Run panics after limit events when limit > 0.
func (e *Engine) Run(limit uint64) {
	var n uint64
	for e.Step() {
		n++
		if limit > 0 && n >= limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at %s", limit, FormatTime(e.now)))
		}
	}
}

// RunUntil fires events with time ≤ deadline, then stops with the clock
// advanced to the deadline (even if no event fired exactly there).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.queue) > 0 {
		// Peek without popping: index 0 is the heap minimum, but it
		// may be cancelled; Step handles discarding those.
		next := e.queue[0]
		if next.cancel {
			heap.Pop(&e.queue)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
