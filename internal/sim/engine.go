package sim

import "fmt"

// Event is the cancel handle for a scheduled callback. Events with
// equal times fire in the order they were scheduled (FIFO), which keeps
// simulations fully deterministic.
//
// Handles exist only for callers that may need to cancel: the engine's
// queue itself stores events as value slots, and the handle-free
// ScheduleAt/ScheduleAfter/ScheduleBatch paths allocate no handle at
// all.
type Event struct {
	at     Time
	label  string
	cancel bool
}

// At returns the time the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Label returns the human-readable label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Cancelled reports whether Cancel was called on the event.
func (e *Event) Cancelled() bool { return e.cancel }

// Cancel prevents the event from firing. Cancelling an already-fired
// event is a harmless no-op. Cancellation is lazy: the queue entry is
// discarded when it reaches the head, so Cancel itself is O(1).
func (e *Event) Cancel() { e.cancel = true }

// entry is one queue element: the ordering key plus the index of the
// value slot holding the callback. Entries are 16 bytes and move by
// value during sifts, so the heap never touches the heap-allocated
// world at all.
type entry struct {
	at   Time
	seq  uint64
	slot int32
}

func (a entry) less(b entry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// slot carries the parts of an event the ordering code never looks at.
// Slots are recycled through a freelist, so steady-state scheduling
// performs no per-event allocation.
type slot struct {
	fire  func(now Time)
	label string
	ev    *Event // non-nil only for handle-returning At/After
}

// Timed is one element of a ScheduleBatch call.
type Timed struct {
	At    Time
	Label string
	Fn    func(now Time)
}

// Engine is a single-threaded discrete-event simulator. It is not safe
// for concurrent use; all model code runs inside event callbacks on the
// caller's goroutine. The queue is an index-free 4-ary min-heap over
// value entries: cancellation never needs to locate an entry mid-heap
// (it is lazy), so no back-pointers are maintained and sift operations
// are simple value copies.
type Engine struct {
	now   Time
	seq   uint64
	heap  []entry
	slots []slot
	free  []int32
	fired uint64
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events scheduled but not yet fired
// (including cancelled events not yet discarded).
func (e *Engine) Pending() int { return len(e.heap) }

// newSlot takes a slot from the freelist or grows the arena.
func (e *Engine) newSlot(fn func(now Time), label string, ev *Event) int32 {
	if n := len(e.free); n > 0 {
		idx := e.free[n-1]
		e.free = e.free[:n-1]
		e.slots[idx] = slot{fire: fn, label: label, ev: ev}
		return idx
	}
	e.slots = append(e.slots, slot{fire: fn, label: label, ev: ev})
	return int32(len(e.slots) - 1)
}

// freeSlot clears the slot (releasing the closure and handle to the
// GC) and returns it to the freelist.
func (e *Engine) freeSlot(idx int32) {
	e.slots[idx] = slot{}
	e.free = append(e.free, idx)
}

// checkFuture panics on scheduling in the past: it always indicates a
// model bug, and silently reordering time would corrupt every
// downstream statistic.
func (e *Engine) checkFuture(t Time, label string) {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling %q at %s before now %s", label, FormatTime(t), FormatTime(e.now)))
	}
}

func (e *Engine) schedule(t Time, label string, fn func(now Time), ev *Event) {
	idx := e.newSlot(fn, label, ev)
	e.push(entry{at: t, seq: e.seq, slot: idx})
	e.seq++
}

// At schedules fn to run at the absolute virtual time t and returns a
// cancel handle. Use ScheduleAt when the handle is not needed: it
// skips the handle allocation entirely.
func (e *Engine) At(t Time, label string, fn func(now Time)) *Event {
	e.checkFuture(t, label)
	ev := &Event{at: t, label: label}
	e.schedule(t, label, fn, ev)
	return ev
}

// After schedules fn to run d milliseconds from now.
func (e *Engine) After(d Duration, label string, fn func(now Time)) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, label, fn)
}

// ScheduleAt schedules fn at the absolute virtual time t without
// returning a cancel handle — the allocation-free fast path for the
// overwhelmingly common fire-and-forget event.
func (e *Engine) ScheduleAt(t Time, label string, fn func(now Time)) {
	e.checkFuture(t, label)
	e.schedule(t, label, fn, nil)
}

// ScheduleAfter schedules fn d milliseconds from now without a handle.
func (e *Engine) ScheduleAfter(d Duration, label string, fn func(now Time)) {
	if d < 0 {
		d = 0
	}
	e.ScheduleAt(e.now+d, label, fn)
}

// ScheduleBatch schedules many handle-free events in one call,
// preserving FIFO tie order within the batch. On an empty queue the
// batch is bulk-loaded and heapified in O(n) instead of n × O(log n)
// pushes — the workload-submission pattern, where a full experiment's
// arrivals are scheduled up front.
func (e *Engine) ScheduleBatch(batch []Timed) {
	for i := range batch {
		e.checkFuture(batch[i].At, batch[i].Label)
	}
	if len(e.heap) == 0 && len(batch) > 4 {
		for i := range batch {
			idx := e.newSlot(batch[i].Fn, batch[i].Label, nil)
			e.heap = append(e.heap, entry{at: batch[i].At, seq: e.seq, slot: idx})
			e.seq++
		}
		for i := (len(e.heap) - 2) / 4; i >= 0; i-- {
			e.siftDown(i)
		}
		return
	}
	for i := range batch {
		e.schedule(batch[i].At, batch[i].Label, batch[i].Fn, nil)
	}
}

// push appends an entry and restores the heap property upward.
func (e *Engine) push(en entry) {
	e.heap = append(e.heap, en)
	h := e.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !en.less(h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = en
}

// popMin removes and returns the minimum entry.
func (e *Engine) popMin() entry {
	h := e.heap
	min := h[0]
	n := len(h) - 1
	h[0] = h[n]
	e.heap = h[:n]
	if n > 0 {
		e.siftDown(0)
	}
	return min
}

// siftDown restores the heap property downward from index i.
func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	en := h[i]
	for {
		c := i*4 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for k := c + 1; k < end; k++ {
			if h[k].less(h[m]) {
				m = k
			}
		}
		if !h[m].less(en) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = en
}

// Step fires the next event. It returns false when the queue is empty.
func (e *Engine) Step() bool {
	for len(e.heap) > 0 {
		en := e.popMin()
		s := &e.slots[en.slot]
		if s.ev != nil && s.ev.cancel {
			e.freeSlot(en.slot)
			continue
		}
		fn := s.fire
		e.freeSlot(en.slot)
		e.now = en.at
		e.fired++
		fn(e.now)
		return true
	}
	return false
}

// Run fires events until the queue drains. The limit guards against
// runaway models: Run panics after limit events when limit > 0.
func (e *Engine) Run(limit uint64) {
	var n uint64
	for e.Step() {
		n++
		if limit > 0 && n >= limit {
			panic(fmt.Sprintf("sim: event limit %d exceeded at %s", limit, FormatTime(e.now)))
		}
	}
}

// RunUntil fires events with time ≤ deadline, then stops with the clock
// advanced to the deadline (even if no event fired exactly there).
func (e *Engine) RunUntil(deadline Time) {
	for len(e.heap) > 0 {
		// Peek without popping: index 0 is the heap minimum, but it
		// may be cancelled; discard those without firing.
		next := e.heap[0]
		s := &e.slots[next.slot]
		if s.ev != nil && s.ev.cancel {
			e.popMin()
			e.freeSlot(next.slot)
			continue
		}
		if next.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}
