package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if Seconds(1.5) != 1500 {
		t.Errorf("Seconds(1.5) = %d, want 1500", Seconds(1.5))
	}
	if Seconds(0.0004) != 0 {
		t.Errorf("Seconds(0.0004) = %d, want 0", Seconds(0.0004))
	}
	if got := SecondsOf(2500); got != 2.5 {
		t.Errorf("SecondsOf(2500) = %v, want 2.5", got)
	}
	if got := MinutesOf(90 * Second); got != 1.5 {
		t.Errorf("MinutesOf(90s) = %v, want 1.5", got)
	}
	if FromReal(2*time.Second) != 2*Second {
		t.Error("FromReal mismatch")
	}
	if ToReal(3*Second) != 3*time.Second {
		t.Error("ToReal mismatch")
	}
}

func TestFormatTime(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "00:00:00"},
		{1500, "00:00:01.500"},
		{Hour + 2*Minute + 3*Second, "01:02:03"},
		{Forever, "never"},
		{-2 * Second, "-00:00:02"},
		{25*Hour + 61*Second, "25:01:01"},
	}
	for _, c := range cases {
		if got := FormatTime(c.t); got != c.want {
			t.Errorf("FormatTime(%d) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, "c", func(Time) { order = append(order, 3) })
	e.At(10, "a", func(Time) { order = append(order, 1) })
	e.At(20, "b", func(Time) { order = append(order, 2) })
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("final clock = %d, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("fired = %d, want 3", e.Fired())
	}
}

func TestEngineFIFOTies(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, "tie", func(Time) { order = append(order, i) })
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("tie-broken order not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, "x", func(Time) { fired = true })
	ev.Cancel()
	if !ev.Cancelled() {
		t.Error("Cancelled() should be true after Cancel")
	}
	e.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
	if e.Pending() != 0 {
		t.Errorf("pending = %d after drain", e.Pending())
	}
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var times []Time
	e.At(10, "outer", func(now Time) {
		times = append(times, now)
		e.After(5, "inner", func(now Time) { times = append(times, now) })
	})
	e.Run(0)
	if len(times) != 2 || times[0] != 10 || times[1] != 15 {
		t.Fatalf("nested scheduling times = %v, want [10 15]", times)
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, "x", func(now Time) {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past should panic")
			}
		}()
		e.At(5, "past", func(Time) {})
	})
	e.Run(0)
}

func TestEngineAfterNegativeClamps(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(-100, "neg", func(now Time) {
		if now != 0 {
			t.Errorf("negative After fired at %d, want 0", now)
		}
		fired = true
	})
	e.Run(0)
	if !fired {
		t.Error("clamped event never fired")
	}
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	var tick func(Time)
	tick = func(Time) { e.After(1, "tick", tick) }
	e.After(1, "tick", tick)
	defer func() {
		if recover() == nil {
			t.Error("Run with limit should panic on runaway model")
		}
	}()
	e.Run(100)
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{5, 10, 15, 20} {
		at := at
		e.At(at, "x", func(now Time) { fired = append(fired, now) })
	}
	e.RunUntil(12)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want events at 5 and 10 only", fired)
	}
	if e.Now() != 12 {
		t.Errorf("clock = %d after RunUntil(12)", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second RunUntil", fired)
	}
	if e.Now() != 100 {
		t.Errorf("clock = %d, want 100", e.Now())
	}
}

func TestEngineRunUntilSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev := e.At(5, "c", func(Time) { t.Error("cancelled fired") })
	ev.Cancel()
	ran := false
	e.At(8, "x", func(Time) { ran = true })
	e.RunUntil(10)
	if !ran {
		t.Error("live event did not run")
	}
}

// Property: any randomly scheduled set of events fires in nondecreasing
// time order, and every non-cancelled event fires exactly once.
func TestEngineOrderProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		e := NewEngine()
		count := int(n%64) + 1
		var fired []Time
		want := make([]Time, 0, count)
		for i := 0; i < count; i++ {
			at := Time(rng.Intn(1000))
			want = append(want, at)
			e.At(at, "p", func(now Time) { fired = append(fired, now) })
		}
		e.Run(0)
		if len(fired) != count {
			return false
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
