package sim

import "testing"

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := NewEngine()
	for i := 0; i < b.N; i++ {
		e.At(e.Now()+Time(i%1000), "bench", func(Time) {})
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
	e.Run(0)
}

func BenchmarkEngineChainedEvents(b *testing.B) {
	e := NewEngine()
	n := 0
	var tick func(Time)
	tick = func(Time) {
		n++
		if n < b.N {
			e.After(1, "tick", tick)
		}
	}
	e.After(1, "tick", tick)
	e.Run(0)
}
