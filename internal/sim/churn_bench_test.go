package sim

import (
	"fmt"
	"math/rand"
	"testing"
)

// churn drives the engine through a deterministic schedule/fire/cancel
// mix shaped like the rms workload: bursts of scheduled events with a
// bounded pending window, ~1/4 of them cancelled before firing, the
// rest fired interleaved with further scheduling. It is the event-queue
// hot loop a full ESP run executes millions of times.
func churn(e *Engine, n int, rng *rand.Rand) {
	noop := func(Time) {}
	handles := make([]*Event, 0, 1024)
	scheduled := 0
	for scheduled < n {
		burst := 1 + rng.Intn(8)
		for k := 0; k < burst && scheduled < n; k++ {
			at := e.Now() + Time(rng.Intn(1000))
			if rng.Intn(2) == 0 {
				// Fire-and-forget (submissions, iteration wakeups).
				e.ScheduleAt(at, "churn", noop)
			} else {
				// Cancellable (completions, walltime kills).
				handles = append(handles, e.At(at, "churn", noop))
			}
			scheduled++
		}
		if len(handles) > 0 && rng.Intn(4) == 0 {
			i := rng.Intn(len(handles))
			handles[i].Cancel()
			handles[i] = handles[len(handles)-1]
			handles = handles[:len(handles)-1]
		}
		// Keep the pending window bounded, as a live simulation does:
		// the queue tracks in-flight jobs, not the whole workload.
		for e.Pending() > 2048 {
			if !e.Step() {
				break
			}
		}
		if len(handles) > 1024 {
			handles = handles[:0]
		}
	}
	e.Run(0)
}

// BenchmarkEngineChurn measures event-queue schedule/fire/cancel churn
// at 1e5 and 1e6 events per run (BENCH_campaign.json: sim-engine event
// churn).
func BenchmarkEngineChurn(b *testing.B) {
	for _, n := range []int{100_000, 1_000_000} {
		b.Run(fmt.Sprintf("events-%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				churn(NewEngine(), n, rand.New(rand.NewSource(1)))
			}
		})
	}
}

// BenchmarkEngineHandleFree measures the fire loop with no cancel
// handles retained — the dominant pattern (submit events, iteration
// wakeups, app callbacks that are never cancelled).
func BenchmarkEngineHandleFree(b *testing.B) {
	b.ReportAllocs()
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		noop := func(Time) {}
		for k := 0; k < 100_000; k++ {
			e.ScheduleAt(e.Now()+Time(rng.Intn(1000)), "hf", noop)
			if e.Pending() > 1024 {
				for j := 0; j < 512; j++ {
					e.Step()
				}
			}
		}
		e.Run(0)
	}
}
