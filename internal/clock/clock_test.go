package clock

import (
	"testing"
	"time"
)

var epoch = time.Unix(1_000_000, 0)

func TestFakeNowAdvance(t *testing.T) {
	f := NewFake(epoch)
	if got := f.Now(); !got.Equal(epoch) {
		t.Fatalf("Now() = %v, want %v", got, epoch)
	}
	f.Advance(3 * time.Second)
	if got := f.Since(epoch); got != 3*time.Second {
		t.Fatalf("Since(epoch) = %v, want 3s", got)
	}
}

func TestFakeAfterFiresAtDeadline(t *testing.T) {
	f := NewFake(epoch)
	ch := f.After(10 * time.Second)
	f.Advance(9 * time.Second)
	select {
	case <-ch:
		t.Fatal("After fired before its deadline")
	default:
	}
	f.Advance(time.Second)
	select {
	case at := <-ch:
		if want := epoch.Add(10 * time.Second); !at.Equal(want) {
			t.Fatalf("fired at %v, want %v", at, want)
		}
	default:
		t.Fatal("After did not fire at its deadline")
	}
}

func TestFakeAfterNonPositiveFiresImmediately(t *testing.T) {
	f := NewFake(epoch)
	select {
	case <-f.After(0):
	default:
		t.Fatal("After(0) did not fire immediately")
	}
}

func TestFakeSleepUnblocksOnAdvance(t *testing.T) {
	f := NewFake(epoch)
	done := make(chan struct{})
	go func() {
		f.Sleep(5 * time.Second)
		close(done)
	}()
	// The sleeper may not have registered yet; advancing repeatedly in
	// small steps guarantees its deadline is eventually crossed.
	for {
		select {
		case <-done:
			return
		default:
			f.Advance(time.Second)
		}
	}
}

func TestWallImplementsClock(t *testing.T) {
	var _ Clock = Wall{}
	var _ Clock = NewFake(epoch)
}
