// Package clock abstracts the wall clock behind a small interface so
// that code driving the live TCP daemons can observe real time without
// calling the time package directly. The point is auditability: the
// sim-driven packages (experiments, core, sim, ...) are forbidden from
// touching the wall clock by the nodeterminism analyzer (see
// internal/analysis/nodeterminism), and this package is the single
// annotated funnel through which benchmark drivers like RunFig12 get
// real timestamps. Tests inject a Fake and stay deterministic.
package clock

import (
	"sync"
	"time"
)

// Clock is the wall-clock surface live-daemon drivers may use.
type Clock interface {
	// Now returns the current time.
	Now() time.Time
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
	// Sleep pauses the calling goroutine for at least d.
	Sleep(d time.Duration)
	// After returns a channel that delivers the time after d elapses.
	After(d time.Duration) <-chan time.Time
}

// Wall is the real wall clock.
type Wall struct{}

//lint:wallclock Wall is the audited funnel to the real clock
func (Wall) Now() time.Time { return time.Now() }

//lint:wallclock Wall is the audited funnel to the real clock
func (Wall) Since(t time.Time) time.Duration { return time.Since(t) }

//lint:wallclock Wall is the audited funnel to the real clock
func (Wall) Sleep(d time.Duration) { time.Sleep(d) }

//lint:wallclock Wall is the audited funnel to the real clock
func (Wall) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Fake is a manually advanced clock for deterministic tests. It starts
// at an arbitrary fixed instant and only moves when Advance is called.
type Fake struct {
	mu      sync.Mutex
	now     time.Time
	waiters []fakeWaiter
}

type fakeWaiter struct {
	at time.Time
	ch chan time.Time
}

// NewFake creates a fake clock starting at start.
func NewFake(start time.Time) *Fake {
	return &Fake{now: start}
}

// Now returns the fake's current time.
func (f *Fake) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.now
}

// Since returns the fake time elapsed since t.
func (f *Fake) Since(t time.Time) time.Duration {
	return f.Now().Sub(t)
}

// Sleep blocks until another goroutine Advances the clock past d.
func (f *Fake) Sleep(d time.Duration) {
	<-f.After(d)
}

// After returns a channel that fires once Advance moves the clock at
// least d past the current instant. A non-positive d fires immediately.
func (f *Fake) After(d time.Duration) <-chan time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	ch := make(chan time.Time, 1)
	if d <= 0 {
		ch <- f.now
		return ch
	}
	f.waiters = append(f.waiters, fakeWaiter{at: f.now.Add(d), ch: ch})
	return ch
}

// Advance moves the fake clock forward by d, firing every waiter whose
// deadline is reached.
func (f *Fake) Advance(d time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.now = f.now.Add(d)
	kept := f.waiters[:0]
	for _, w := range f.waiters {
		if !w.at.After(f.now) {
			w.ch <- f.now
			continue
		}
		kept = append(kept, w)
	}
	f.waiters = kept
}
