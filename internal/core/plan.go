package core

import (
	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/profile"
	"repro/internal/sim"
)

// Planned is the outcome of the planning pass for one queued job: the
// earliest start the scheduler found, and whether the job's slot is
// protected by a hold (it will start now, or it is within reservation
// depth).
type Planned struct {
	Job   *job.Job
	Start sim.Time
	// Held reports whether the plan placed a hold (StartNow jobs and
	// the first maxHeld blocked jobs — Maui reservations).
	Held bool
	// StartNow reports whether the job can start immediately.
	StartNow bool
	// idx is the job's position in the priority order of the table the
	// plan ran against; what-if overlays use it to look up candidate
	// starts without a map.
	idx int
}

// fillBuilder loads the availability deltas of a cluster state into a
// batch builder: idle cores now, plus the walltime-based releases of
// all active jobs (including any dynamically acquired cores, which are
// reserved until the evolving job's walltime end, §III-D). It returns
// the earliest release boundary — the horizon before which the profile
// shape cannot change without a cluster event, which bounds how long
// the event-driven requeue may keep skipping iterations.
func fillBuilder(b *profile.Builder, now sim.Time, cl *cluster.Cluster, active []*job.Job) sim.Time {
	b.Reset(now, cl.IdleCores())
	next := sim.Forever
	for _, j := range active {
		end := j.StartTime + j.Walltime
		if end <= now {
			// Job overran its walltime (possible in live mode between
			// enforcement passes): assume imminent release.
			end = now + sim.Second
		}
		if end < next {
			next = end
		}
		b.Release(end, j.TotalCores())
	}
	return next
}

// buildProfile constructs the availability profile of a cluster state
// in one batch pass (sort once, prefix-sum once).
func buildProfile(now sim.Time, cl *cluster.Cluster, active []*job.Job) *profile.Profile {
	var b profile.Builder
	fillBuilder(&b, now, cl, active)
	return b.Build()
}

// planJobs runs the reservation planning pass of the Maui iteration:
// jobs are placed in the given (priority) order; StartNow jobs and the
// first maxHeld blocked jobs receive holds in the profile (these are
// the reservations); later blocked jobs get an optimistic earliest
// start computed against the profile as left by the held jobs, without
// adding holds (they are backfill candidates). The profile is mutated.
func planJobs(p *profile.Profile, ordered []*job.Job, now sim.Time, maxHeld int) []Planned {
	plans := make([]Planned, 0, len(ordered))
	blocked := 0
	for _, j := range ordered {
		start := p.FindSlot(j.Cores, j.Walltime, now)
		pl := Planned{Job: j, Start: start}
		if start == now {
			pl.StartNow = true
			pl.Held = true
			p.AddHold(start, holdEnd(start, j.Walltime), j.Cores)
		} else if start < sim.Forever && blocked < maxHeld {
			pl.Held = true
			blocked++
			p.AddHold(start, holdEnd(start, j.Walltime), j.Cores)
		}
		plans = append(plans, pl)
	}
	return plans
}

// planTable is planJobs over the struct-of-arrays job table: jobs
// [0, upTo) are placed in priority order against p (which is mutated
// with the Maui holds — StartNow jobs plus the first maxHeld blocked).
//
// When starts is non-nil, every job's planned start is recorded
// dense-by-index — the map-free replacement for startsByID that the
// what-if delay comparison indexes directly. When wantMeasured is set,
// the delay-measured subset (every StartNow job plus the first
// delayDepth blocked jobs, exactly delaySet's selection) is appended
// to measuredBuf and returned together with the index of the last
// measured job (-1 when none).
func planTable(p *profile.SegProfile, t *jobTable, upTo int, now sim.Time, maxHeld, delayDepth int, starts []sim.Time, measuredBuf []Planned, wantMeasured bool) ([]Planned, int) {
	held := 0
	blocked := 0
	last := -1
	measured := measuredBuf
	for i := 0; i < upTo; i++ {
		cores := int(t.cores[i])
		start := p.FindSlot(cores, t.wall[i], now)
		if starts != nil {
			starts[i] = start
		}
		if start == now {
			p.AddHold(start, holdEnd(start, t.wall[i]), cores)
			if wantMeasured {
				measured = append(measured, Planned{Job: t.jobs[i], Start: start, Held: true, StartNow: true, idx: i})
				last = i
			}
		} else if start < sim.Forever {
			if held < maxHeld {
				held++
				p.AddHold(start, holdEnd(start, t.wall[i]), cores)
			}
			if wantMeasured && blocked < delayDepth {
				blocked++
				measured = append(measured, Planned{Job: t.jobs[i], Start: start, Held: true, idx: i})
				last = i
			}
		}
	}
	return measured, last
}

func holdEnd(start sim.Time, wall sim.Duration) sim.Time {
	if wall >= sim.Forever-start {
		return sim.Forever
	}
	return start + wall
}

// startsByID indexes planned starts for delay comparison.
func startsByID(plans []Planned) map[job.ID]sim.Time {
	m := make(map[job.ID]sim.Time, len(plans))
	for _, p := range plans {
		m[p.Job.ID] = p.Start
	}
	return m
}

// delaySet selects the jobs whose delays the extended iteration
// measures: every StartNow job plus the first delayDepth blocked jobs
// (Fig. 5: ReservationDelayDepth governs the StartLater jobs counted).
// The second result is the index (into the priority order) of the last
// measured job, or -1 when nothing is measured. A what-if plan only
// needs to run up to that index: a job's planned start depends solely
// on the holds of higher-priority jobs, so everything after the last
// measured job is dead work for delay comparison.
func delaySet(plans []Planned, delayDepth int) ([]Planned, int) {
	var out []Planned
	last := -1
	blocked := 0
	for i, p := range plans {
		switch {
		case p.StartNow:
			out = append(out, p)
			last = i
		case p.Start < sim.Forever && blocked < delayDepth:
			out = append(out, p)
			blocked++
			last = i
		}
	}
	return out, last
}
