package core

import (
	"sort"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/profile"
	"repro/internal/sim"
)

// MalleableManager is the optional ResourceManager capability for
// scheduler-initiated resizing of malleable jobs — the paper's §VI
// future work ("enable efficient scheduling for malleable jobs"),
// implemented here. RMs that support it (the simulator does) let the
// scheduler:
//
//   - Shrink running malleable jobs toward their MinCores to free
//     resources for dynamic requests (§II-B lists "stealing resources
//     from malleable jobs" as an allocation source);
//   - Grow running malleable jobs toward their MaxCores from cores
//     that neither priority starts nor backfill could use.
type MalleableManager interface {
	// ShrinkJob releases cores cores from a running malleable job.
	// The RM notifies the application, which adapts its rate.
	ShrinkJob(j *job.Job, cores int) error
	// GrowJob adds cores cores to a running malleable job.
	GrowJob(j *job.Job, cores int) (cluster.Alloc, error)
}

// Resize records one scheduler-initiated malleable resize.
type Resize struct {
	Job   *job.Job
	Cores int // positive = grow, negative = shrink
}

// shrinkMalleable frees cores for a dynamic request by shrinking
// running malleable jobs, lowest priority first. It returns true when
// enough cores are idle afterwards. Called between the idle check and
// preemption — the §II-B source ordering.
func (s *Scheduler) shrinkMalleable(now sim.Time, rm ResourceManager, need int, res *IterationResult) bool {
	mm, ok := rm.(MalleableManager)
	if !ok || !s.opts.Malleable {
		return false
	}
	cl := rm.Cluster()
	var victims []*job.Job
	for _, j := range rm.ActiveJobs() {
		if j.ShrinkableBy() > 0 {
			victims = append(victims, j)
		}
	}
	if len(victims) == 0 {
		return cl.IdleCores() >= need
	}
	SortByPriority(victims, now, s.opts.Weights, s.fs)
	for i := len(victims) - 1; i >= 0 && cl.IdleCores() < need; i-- {
		j := victims[i]
		take := j.ShrinkableBy()
		if missing := need - cl.IdleCores(); take > missing {
			take = missing
		}
		if take <= 0 {
			continue
		}
		if err := mm.ShrinkJob(j, take); err != nil {
			continue
		}
		res.Resizes = append(res.Resizes, Resize{Job: j, Cores: -take})
	}
	return cl.IdleCores() >= need
}

// growMalleable hands leftover idle cores to running malleable jobs,
// highest priority first, without disturbing the reservations held in
// the planning profile. Runs at the end of the iteration.
func (s *Scheduler) growMalleable(now sim.Time, rm ResourceManager, final *profile.SegProfile, res *IterationResult) {
	mm, ok := rm.(MalleableManager)
	if !ok || !s.opts.Malleable {
		return
	}
	cl := rm.Cluster()
	var candidates []*job.Job
	for _, j := range rm.ActiveJobs() {
		if j.GrowableBy() > 0 {
			candidates = append(candidates, j)
		}
	}
	if len(candidates) == 0 {
		return
	}
	SortByPriority(candidates, now, s.opts.Weights, s.fs)
	sort.SliceStable(candidates, func(i, k int) bool {
		// Among equal priorities prefer the job that can use more.
		return candidates[i].GrowableBy() > candidates[k].GrowableBy()
	})
	for _, j := range candidates {
		if cl.IdleCores() == 0 {
			return
		}
		want := j.GrowableBy()
		if idle := cl.IdleCores(); want > idle {
			want = idle
		}
		// The grown cores stay with the job until its walltime end;
		// they must not be promised to a reservation. Find the largest
		// grant the profile admits right now for that whole window.
		end := j.StartTime + j.Walltime
		if end <= now {
			continue
		}
		for want > 0 && final.MinFree(now, end) < want {
			want--
		}
		if want <= 0 {
			continue
		}
		if _, err := mm.GrowJob(j, want); err != nil {
			continue
		}
		final.AddHold(now, end, want)
		res.Resizes = append(res.Resizes, Resize{Job: j, Cores: want})
	}
}
