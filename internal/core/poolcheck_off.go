//go:build !race

package core

// See poolcheck.go: the pool lifetime guard is compiled in only under
// the race detector; these stubs keep the normal build branch-free.
const poolCheckEnabled = false

func (r *IterationResult) poisonOnRecycle() {}

func (r *IterationResult) clearOnTake() {}
