package core

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/config"
	"repro/internal/fairtree"
	"repro/internal/job"
	"repro/internal/sim"
)

func fsOrderSched(decay float64) *Scheduler {
	cfg := config.Default()
	cfg.FSInterval = sim.Hour
	cfg.FSDecay = decay
	cfg.FSDecaySet = true
	return New(Options{
		Config:  cfg,
		Weights: PriorityWeights{Fairshare: 1000},
	}, 0)
}

func tableIDs(t *jobTable) []job.ID {
	ids := make([]job.ID, t.len())
	for i, j := range t.jobs {
		ids[i] = j.ID
	}
	return ids
}

// TestRepairMatchesFullFill drives the fairshare-ordered table cache
// through randomized usage-change sequences and asserts the repaired
// order is identical to a from-scratch fill at every step — including
// steps where the dirty set is big enough to trip the rebuild
// fallback, and charges arriving through the sharded path.
func TestRepairMatchesFullFill(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		users := make([]string, 12)
		for i := range users {
			users[i] = fmt.Sprintf("u%02d", i)
		}
		rm := &trackedRM{testRM: *newTestRM(1, 4)} // tiny cluster: nothing starts, queue is stable
		const nJobs = 150
		for i := 0; i < nJobs; i++ {
			rm.queued = append(rm.queued,
				mkQueued(i+1, users[rng.Intn(len(users))], 8, sim.Hour, sim.Time(rng.Intn(100))*sim.Time(sim.Second)))
		}

		s := fsOrderSched(0.5)
		now := sim.Time(0)
		s.ensureTable(now, rm)
		if !s.table.valid {
			t.Fatalf("seed %d: table not cached in fsOrder mode", seed)
		}
		// The cache-reuse gate requires the RM seen by the previous
		// iteration; Iterate sets this via noteIteration, tests that
		// drive ensureTable directly set it themselves.
		s.lastRM = rm

		for step := 0; step < 40; step++ {
			// Charge a random subset of users; occasionally a large
			// one to force the k*8 > n rebuild fallback, and half the
			// time through the sharded completion path.
			nDirty := 1 + rng.Intn(3)
			if step%7 == 0 {
				nDirty = len(users)
			}
			sharded := rng.Intn(2) == 0
			for d := 0; d < nDirty; d++ {
				u := users[rng.Intn(len(users))]
				amt := float64(rng.Intn(100_000) + 1)
				if sharded {
					s.fs.RecordID(s.fs.UserID(u), amt)
				} else {
					s.fs.Record(u, amt)
				}
			}
			if rng.Intn(5) == 0 {
				now += sim.Time(rng.Intn(3)) * sim.Time(sim.Hour)
			}
			s.fs.Advance(now) // folds sharded charges, rolls epochs
			s.ensureTable(now, rm)
			got := tableIDs(&s.table)

			// Reference: a fresh table filled from scratch with the
			// same fairshare state.
			var ref jobTable
			ref.fill(s.selectEligible(rm.QueuedJobs()), now, s.opts.Weights, s.fs)
			want := tableIDs(&ref)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("seed %d step %d: order diverged at %d: repair %v vs fill %v", seed, step, i, got[i], want[i])
				}
			}
			// Column integrity: users column must track jobs.
			for i, j := range s.table.jobs {
				if want := int32(s.fs.UserID(j.Cred.User)); s.table.users[i] != want {
					t.Fatalf("seed %d step %d: users column desynced at %d", seed, step, i)
				}
				if s.table.cores[i] != int32(j.Cores) {
					t.Fatalf("seed %d step %d: cores column desynced at %d", seed, step, i)
				}
			}
		}
		if s.table.repairs == 0 {
			t.Fatalf("seed %d: incremental repair never engaged", seed)
		}
	}
}

// TestHierarchicalTreeDisablesOrderCache pins the safety gate: with a
// non-flat share tree the cached order must be rebuilt (not repaired),
// because one leaf's usage moves cousins' factors through shared
// ancestors.
func TestHierarchicalTreeDisablesOrderCache(t *testing.T) {
	cfg := config.Default()
	cfg.FSInterval = sim.Hour
	cfg.FSDecay = 0.5
	cfg.FSDecaySet = true
	cfg.FSTree = &fairtree.Spec{Nodes: []fairtree.SpecNode{
		{Path: "org", Users: []string{"u00", "u01"}},
	}}
	s := New(Options{Config: cfg, Weights: PriorityWeights{Fairshare: 1000}}, 0)
	if s.fs.Tree().Flat() {
		t.Fatal("spec with homed users should make the tree non-flat")
	}
	rm := &trackedRM{testRM: *newTestRM(1, 4)}
	rm.queued = append(rm.queued, mkQueued(1, "u00", 8, sim.Hour, 0), mkQueued(2, "u01", 8, sim.Hour, 1))
	s.ensureTable(0, rm)
	if s.table.valid {
		t.Error("order cache must be off for a hierarchical tree")
	}
}

// legacyFlatFS is the pre-fairtree map-based fairshare, embedded as
// the decision oracle (see fairtree's equivalence tests for the
// usage-level proof; this test closes the loop at the scheduling
// decision level).
type legacyFlatFS struct {
	interval      sim.Duration
	decay         float64
	intervalStart sim.Time
	usage         map[string]float64
	total         float64
}

func (f *legacyFlatFS) advance(now sim.Time) {
	for now >= f.intervalStart+f.interval {
		f.intervalStart += f.interval
		f.total = 0
		users := make([]string, 0, len(f.usage))
		for u := range f.usage {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, u := range users {
			nv := f.usage[u] * f.decay
			if nv < 1e-9 {
				delete(f.usage, u)
				continue
			}
			f.usage[u] = nv
			f.total += nv
		}
	}
}

func (f *legacyFlatFS) record(user string, cs float64) {
	if cs <= 0 {
		return
	}
	f.usage[user] += cs
	f.total += cs
}

func (f *legacyFlatFS) factor(user string) float64 {
	if f.total <= 0 || len(f.usage) == 0 {
		return 0
	}
	return 1.0/float64(len(f.usage)) - f.usage[user]/f.total
}

// TestFairshareDecisionDifferential proves tree-vs-flat scheduling
// decisions identical under the degenerate flat config with uniform
// quotas and weights: 25 seeds of interleaved charges, epoch rolls and
// queue evaluations, comparing the fairtree-backed table order against
// an order computed with the legacy flat implementation's factors.
func TestFairshareDecisionDifferential(t *testing.T) {
	for _, decay := range []float64{0, 0.5, 1} {
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(seed))
			users := make([]string, 10)
			for i := range users {
				users[i] = fmt.Sprintf("u%02d", i)
			}
			rm := &trackedRM{testRM: *newTestRM(1, 4)}
			for i := 0; i < 80; i++ {
				rm.queued = append(rm.queued,
					mkQueued(i+1, users[rng.Intn(len(users))], 8, sim.Hour, sim.Time(rng.Intn(50))*sim.Time(sim.Second)))
			}
			s := fsOrderSched(decay)
			leg := &legacyFlatFS{interval: sim.Hour, decay: decay, usage: make(map[string]float64)}
			now := sim.Time(0)
			s.ensureTable(now, rm)
			s.lastRM = rm // engage the cache/repair path (see above)
			for step := 0; step < 30; step++ {
				for c := 0; c < rng.Intn(4); c++ {
					u := users[rng.Intn(len(users))]
					amt := float64(rng.Intn(1_000_000) + 1)
					s.fs.Record(u, amt)
					leg.record(u, amt)
				}
				if rng.Intn(4) == 0 {
					now += sim.Time(rng.Intn(5)) * sim.Time(sim.Hour)
				}
				s.fs.Advance(now)
				leg.advance(now)
				s.ensureTable(now, rm)
				got := tableIDs(&s.table)

				// Oracle order from legacy factors through the same
				// priority formula and tie-breaks.
				w := s.opts.Weights
				jobs := append([]*job.Job(nil), rm.queued...)
				sort.SliceStable(jobs, func(a, b int) bool {
					pa := w.Fairshare * leg.factor(jobs[a].Cred.User)
					pb := w.Fairshare * leg.factor(jobs[b].Cred.User)
					return rowBefore(pa, jobs[a].SubmitTime, jobs[a].ID, pb, jobs[b].SubmitTime, jobs[b].ID)
				})
				for i, j := range jobs {
					if got[i] != j.ID {
						t.Fatalf("decay=%g seed=%d step=%d: decision order diverged at %d: tree %v vs legacy %v",
							decay, seed, step, i, got[i], j.ID)
					}
				}
			}
		}
	}
}
