package core

import (
	"fmt"
	"testing"

	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
)

// setupLargeQueue builds a production-scale iteration state: a 512-node
// (4096-core) cluster with 500 running jobs whose staggered walltime
// ends give the availability profile hundreds of boundaries, nQueued
// static jobs waiting, and 100 pending dynamic requests from evolving
// jobs. Static users carry a tight per-interval delay budget, so the
// iteration grants the zero-delay requests and walks the full
// delay-measurement path for the rest — the steady state of a loaded
// system running Algorithm 2.
func setupLargeQueue(nQueued, nodes int) (*Scheduler, *trackedRM) {
	rm := &trackedRM{testRM: *newTestRM(nodes, 8)}
	id := 1
	nRunning := nodes * 25 / 32 // 400 at the historical 512-node size
	for i := 0; i < nRunning; i++ {
		j := &job.Job{
			ID: job.ID(id), Cred: job.Credentials{User: fmt.Sprintf("r%02d", i%16)},
			Cores: 8, Walltime: sim.Hour + sim.Duration(i)*sim.Minute,
		}
		rm.addRunning(j)
		id++
	}
	evolving := make([]*job.Job, 0, 100)
	for i := 0; i < 100; i++ {
		// The first few evolving jobs end before any blocked job could
		// start, so their grants measure zero delay and pass the
		// fairness gate — the iteration sees both grant and reject
		// outcomes.
		wall := 12 * sim.Hour
		if i < 8 {
			wall = 30 * sim.Minute
		}
		j := &job.Job{
			ID: job.ID(id), Cred: job.Credentials{User: fmt.Sprintf("e%02d", i%10)},
			Cores: 4, Class: job.Evolving, Walltime: wall,
		}
		rm.addRunning(j)
		evolving = append(evolving, j)
		id++
	}
	for i := 0; i < nQueued; i++ {
		wall := 2*sim.Hour + sim.Duration(i%7)*30*sim.Minute
		j := mkQueued(id, fmt.Sprintf("u%02d", i%20), 32, wall, sim.Time(i)*sim.Second)
		rm.queued = append(rm.queued, j)
		rm.bumpQueue()
		id++
	}
	for _, ej := range evolving {
		rm.dyn = append(rm.dyn, &job.DynRequest{Job: ej, Cores: 4, IssuedAt: sim.Minute})
		ej.State = job.DynQueued
		rm.bump()
	}

	cfg := config.Default()
	f := fairness.NewConfig(fairness.TargetDelay)
	f.Interval = sim.Hour
	for u := 0; u < 20; u++ {
		f.Set(fairness.KindUser, fmt.Sprintf("u%02d", u), fairness.Limits{
			PermSet: true, Perm: true, TargetDelayTime: sim.Millisecond,
		})
	}
	cfg.Fairness = f
	return New(Options{Config: cfg}, 0), rm
}

// BenchmarkIterateLargeQueue measures one full extended Maui iteration
// (Algorithm 2) at production queue depths. The decision counts are
// reported as metrics so before/after runs can be checked for
// identical scheduling behavior.
func BenchmarkIterateLargeQueue(b *testing.B) {
	for _, c := range []struct {
		name  string
		n     int
		nodes int
	}{
		{"queue-1k", 1000, 512}, {"queue-5k", 5000, 512}, {"queue-10k", 10000, 512},
		{"queue-50k", 50000, 4096}, {"queue-100k", 100000, 4096},
	} {
		c := c
		b.Run(c.name, func(b *testing.B) {
			var granted, rejected, started int
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				s, rm := setupLargeQueue(c.n, c.nodes)
				b.StartTimer()
				res := s.Iterate(sim.Minute, rm)
				granted, rejected = 0, 0
				for _, d := range res.DynDecisions {
					if d.Granted {
						granted++
					} else {
						rejected++
					}
				}
				started = len(res.Started) + len(res.Backfilled)
			}
			b.ReportMetric(float64(granted), "granted")
			b.ReportMetric(float64(rejected), "rejected")
			b.ReportMetric(float64(started), "started")
		})
	}
}

// BenchmarkIterateIdleTick measures the event-driven requeue: the
// steady-state tick of a loaded 100k-job system in which nothing
// changed since the last iteration. With a ChangeTracker RM the
// scheduler recognizes the frozen state and the tick costs a handful
// of comparisons — no queue scan, no sort, no planning.
func BenchmarkIterateIdleTick(b *testing.B) {
	s, rm := setupLargeQueue(100000, 4096)
	s.Recycle(s.Iterate(sim.Minute, rm)) // settle: starts + dyn decisions
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Recycle(s.Iterate(2*sim.Minute, rm))
	}
}
