package core

import (
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/profile"
	"repro/internal/sim"
)

func planJob(id int, cores int, wall sim.Duration) *job.Job {
	return &job.Job{ID: job.ID(id), Cores: cores, Walltime: wall, State: job.Queued}
}

func TestBuildProfile(t *testing.T) {
	cl := cluster.New(2, 8)
	a := &job.Job{ID: 1, Cores: 8, Walltime: sim.Hour, StartTime: 0, State: job.Running}
	cl.Allocate(1, 8)
	b := &job.Job{ID: 2, Cores: 4, DynCores: 2, Walltime: 2 * sim.Hour, StartTime: 0, State: job.Running}
	cl.Allocate(2, 6)
	p := buildProfile(30*sim.Minute, cl, []*job.Job{a, b})
	if got := p.FreeAt(30 * sim.Minute); got != 2 {
		t.Errorf("free now = %d", got)
	}
	// a releases 8 at its walltime end (1h).
	if got := p.FreeAt(sim.Hour); got != 10 {
		t.Errorf("free at 1h = %d", got)
	}
	// b releases base+dyn (6) at 2h.
	if got := p.FreeAt(2 * sim.Hour); got != 16 {
		t.Errorf("free at 2h = %d", got)
	}
}

func TestBuildProfileOverrunJob(t *testing.T) {
	// A job past its walltime is assumed to release imminently.
	cl := cluster.New(1, 8)
	a := &job.Job{ID: 1, Cores: 8, Walltime: sim.Minute, StartTime: 0, State: job.Running}
	cl.Allocate(1, 8)
	now := 10 * sim.Minute
	p := buildProfile(now, cl, []*job.Job{a})
	if got := p.FreeAt(now); got != 0 {
		t.Errorf("free now = %d", got)
	}
	if got := p.FreeAt(now + sim.Second); got != 8 {
		t.Errorf("free after imminent release = %d", got)
	}
}

// TestPlanJobsHeldDepth verifies the Fig. 5 mechanics: StartNow jobs
// always hold; blocked jobs hold only up to maxHeld; the rest get
// optimistic starts without holds.
func TestPlanJobsHeldDepth(t *testing.T) {
	// 8 cores free now, 8 more at t=1h.
	p := profile.New(0, 8)
	p.AddRelease(sim.Hour, 8)
	jobs := []*job.Job{
		planJob(1, 8, 30*sim.Minute), // StartNow
		planJob(2, 16, sim.Hour),     // blocked → held (depth 1)
		planJob(3, 16, sim.Hour),     // blocked → beyond depth, no hold
	}
	plans := planJobs(p, jobs, 0, 1)
	if !plans[0].StartNow || !plans[0].Held {
		t.Errorf("job1 = %+v", plans[0])
	}
	if plans[1].StartNow || !plans[1].Held {
		t.Errorf("job2 = %+v", plans[1])
	}
	// Job2's reservation: 16 cores need job1's hold to clear (30 min)
	// AND the 1h release → earliest 1h.
	if plans[1].Start != sim.Hour {
		t.Errorf("job2 start = %v", plans[1].Start)
	}
	if plans[2].Held {
		t.Errorf("job3 should be beyond the hold depth: %+v", plans[2])
	}
	// Job3's optimistic start ignores job2? No: job2 holds [1h, 2h),
	// so job3 sees 16 free only at 2h.
	if plans[2].Start != 2*sim.Hour {
		t.Errorf("job3 start = %v", plans[2].Start)
	}
}

func TestPlanJobsImpossibleJob(t *testing.T) {
	p := profile.New(0, 8)
	jobs := []*job.Job{planJob(1, 100, sim.Hour)}
	plans := planJobs(p, jobs, 0, 5)
	if plans[0].Start != sim.Forever || plans[0].Held {
		t.Errorf("impossible job plan = %+v", plans[0])
	}
}

func TestDelaySet(t *testing.T) {
	mk := func(id int, startNow, held bool, start sim.Time) Planned {
		return Planned{Job: planJob(id, 1, sim.Hour), StartNow: startNow, Held: held, Start: start}
	}
	plans := []Planned{
		mk(1, true, true, 0),
		mk(2, false, true, sim.Hour),     // blocked 1
		mk(3, false, false, 2*sim.Hour),  // blocked 2
		mk(4, false, false, 3*sim.Hour),  // blocked 3 — beyond delay depth 2
		mk(5, true, true, 0),             // StartNow always included
		mk(6, false, false, sim.Forever), // never fits — excluded
	}
	got, last := delaySet(plans, 2)
	ids := make([]job.ID, len(got))
	for i, p := range got {
		ids[i] = p.Job.ID
	}
	want := []job.ID{1, 2, 3, 5}
	if last != 4 {
		t.Fatalf("last measured index = %d, want 4 (job 5)", last)
	}
	if len(ids) != len(want) {
		t.Fatalf("delay set = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("delay set = %v, want %v", ids, want)
		}
	}
}

func TestHoldEndOverflow(t *testing.T) {
	if holdEnd(100, sim.Forever) != sim.Forever {
		t.Error("walltime overflow must clamp to Forever")
	}
	if holdEnd(100, 50) != 150 {
		t.Error("normal hold end")
	}
}
