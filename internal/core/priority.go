// Package core implements the scheduler at the heart of the paper's
// batch system: a Maui-style iteration (Algorithm 1) extended with
// dynamic-request scheduling and dynamic fairness (Algorithm 2).
//
// The scheduler is stateless across the cluster — it plans against a
// snapshot each iteration exactly like Maui ("refresh reservations") —
// but stateful in its fairness accounting and fairshare usage. The same
// Scheduler drives both the discrete-event simulator and the live
// TCP daemons; only the ResourceManager implementation differs.
package core

import (
	"sort"

	"repro/internal/config"
	"repro/internal/fairtree"
	"repro/internal/job"
	"repro/internal/sim"
)

// PriorityWeights configures Maui-style job prioritization factors.
// Priority = SystemPriority·1e12 (admin boost, dominates everything)
// + QueueTime·minutes-waiting + XFactor·expansion-factor
// + Resource·requested-cores + Fairshare·fairshare-factor.
type PriorityWeights struct {
	QueueTime float64 // per minute of queue wait
	XFactor   float64 // expansion factor (1 + wait/walltime)
	Resource  float64 // per requested core
	Fairshare float64 // per unit of fairshare deficit (see Fairshare)
}

// DefaultWeights mirrors a plain queue-time-driven Maui setup: FIFO
// order among equal-priority jobs, with administrative SystemPriority
// able to lift jobs (the ESP Z-jobs) over everything.
func DefaultWeights() PriorityWeights {
	return PriorityWeights{QueueTime: 1}
}

// systemPriorityScale keeps any admin boost above every achievable
// combination of the other factors.
const systemPriorityScale = 1e12

// Priority computes the priority of a queued job at the given time.
func (w PriorityWeights) Priority(j *job.Job, now sim.Time, fs *Fairshare) float64 {
	waitMin := sim.MinutesOf(now - j.SubmitTime)
	if waitMin < 0 {
		waitMin = 0
	}
	p := float64(j.SystemPriority) * systemPriorityScale
	p += w.QueueTime * waitMin
	if w.XFactor != 0 && j.Walltime > 0 {
		p += w.XFactor * (1 + float64(now-j.SubmitTime)/float64(j.Walltime))
	}
	p += w.Resource * float64(j.Cores)
	if w.Fairshare != 0 && fs != nil {
		p += w.Fairshare * fs.Factor(j.Cred.User)
	}
	return p
}

// SortByPriority orders jobs by descending priority; ties break by
// earlier submission, then lower ID, keeping the order deterministic.
func SortByPriority(jobs []*job.Job, now sim.Time, w PriorityWeights, fs *Fairshare) {
	prio := make(map[job.ID]float64, len(jobs))
	for _, j := range jobs {
		prio[j.ID] = w.Priority(j, now, fs)
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		pa, pb := prio[jobs[a].ID], prio[jobs[b].ID]
		if pa != pb {
			return pa > pb
		}
		if jobs[a].SubmitTime != jobs[b].SubmitTime {
			return jobs[a].SubmitTime < jobs[b].SubmitTime
		}
		return jobs[a].ID < jobs[b].ID
	})
}

// Fairshare tracks historical resource usage with exponential interval
// decay, the usual Maui fairshare mechanism, generalized to a
// hierarchical share tree (internal/fairtree). The factor of a user is
// targetShare − actualShare summed over the tree levels: positive for
// underserved users. With the degenerate flat tree (every user a
// direct child of the root, quota 1 — the default when no FSTREE is
// configured) the factor is exactly the legacy 1/n − usage/total.
//
// Unlike the old flat map, time no longer costs anything: usage decays
// lazily on read and Advance is O(records + expiries), not
// O(intervals × users). A daemon idle over a weekend rolls thousands
// of intervals in one multiplication per touched node.
type Fairshare struct {
	tree *fairtree.Tree
}

// NewFairshare creates a tracker with the given accounting interval
// and per-interval decay (e.g. 24h, 0.7) over a flat degenerate tree.
func NewFairshare(interval sim.Duration, decay float64) *Fairshare {
	return &Fairshare{tree: fairtree.New(fairtree.Options{Interval: interval, Decay: decay})}
}

// NewFairshareFromConfig builds the fairshare tracker from the parsed
// scheduler config: FSINTERVAL/FSDECAY set the decay schedule and the
// FSTREE stanza (validated at parse time) shapes the share hierarchy.
// Without an FSTREE the tree is flat and behaves exactly like the
// historical per-user fairshare.
func NewFairshareFromConfig(cfg *config.SchedConfig) *Fairshare {
	decay := 0.7
	if cfg.FSDecaySet {
		decay = cfg.FSDecay
	}
	f := NewFairshare(cfg.FSInterval, decay)
	// The spec was validated by config.Parse; a hand-built invalid
	// spec degrades to the flat tree rather than panicking mid-New.
	_ = f.tree.ApplySpec(cfg.FSTree)
	return f
}

// Tree exposes the underlying share tree (quotas, history emission,
// ranking).
func (f *Fairshare) Tree() *fairtree.Tree { return f.tree }

// Advance rolls accounting intervals up to now and folds in any
// usage recorded concurrently via RecordID.
func (f *Fairshare) Advance(now sim.Time) { f.tree.Advance(now) }

// Record charges core-seconds of usage to a user, immediately visible
// to Factor. This is the single-threaded scheduler/simulator path.
func (f *Fairshare) Record(user string, coreSeconds float64) {
	if coreSeconds <= 0 {
		return
	}
	f.tree.RecordNow(f.tree.UserID(user), coreSeconds)
}

// UserID interns a user name to its share-tree leaf. Intended for
// submit time, so completion-path accounting is id-indexed.
func (f *Fairshare) UserID(user string) fairtree.NodeID { return f.tree.UserID(user) }

// RecordID charges core-seconds to an interned leaf via the
// lock-striped shards: O(1), safe from concurrent ingest goroutines,
// visible at the next Advance.
func (f *Fairshare) RecordID(id fairtree.NodeID, coreSeconds float64) {
	f.tree.Record(id, coreSeconds)
}

// Factor returns targetShare − actualShare; users that used more than
// their share get a negative factor. With no usage at all every user
// gets 0.
func (f *Fairshare) Factor(user string) float64 {
	if id, ok := f.tree.LookupUser(user); ok {
		return f.tree.Factor(id)
	}
	return f.tree.NewcomerFactor()
}

// FactorID is Factor for an already-interned leaf.
func (f *Fairshare) FactorID(id fairtree.NodeID) float64 { return f.tree.Factor(id) }

// Usage returns the decayed usage recorded for a user.
func (f *Fairshare) Usage(user string) float64 {
	if id, ok := f.tree.LookupUser(user); ok {
		return f.tree.UsageOf(id)
	}
	return 0
}
