// Package core implements the scheduler at the heart of the paper's
// batch system: a Maui-style iteration (Algorithm 1) extended with
// dynamic-request scheduling and dynamic fairness (Algorithm 2).
//
// The scheduler is stateless across the cluster — it plans against a
// snapshot each iteration exactly like Maui ("refresh reservations") —
// but stateful in its fairness accounting and fairshare usage. The same
// Scheduler drives both the discrete-event simulator and the live
// TCP daemons; only the ResourceManager implementation differs.
package core

import (
	"sort"

	"repro/internal/job"
	"repro/internal/sim"
)

// PriorityWeights configures Maui-style job prioritization factors.
// Priority = SystemPriority·1e12 (admin boost, dominates everything)
// + QueueTime·minutes-waiting + XFactor·expansion-factor
// + Resource·requested-cores + Fairshare·fairshare-factor.
type PriorityWeights struct {
	QueueTime float64 // per minute of queue wait
	XFactor   float64 // expansion factor (1 + wait/walltime)
	Resource  float64 // per requested core
	Fairshare float64 // per unit of fairshare deficit (see Fairshare)
}

// DefaultWeights mirrors a plain queue-time-driven Maui setup: FIFO
// order among equal-priority jobs, with administrative SystemPriority
// able to lift jobs (the ESP Z-jobs) over everything.
func DefaultWeights() PriorityWeights {
	return PriorityWeights{QueueTime: 1}
}

// systemPriorityScale keeps any admin boost above every achievable
// combination of the other factors.
const systemPriorityScale = 1e12

// Priority computes the priority of a queued job at the given time.
func (w PriorityWeights) Priority(j *job.Job, now sim.Time, fs *Fairshare) float64 {
	waitMin := sim.MinutesOf(now - j.SubmitTime)
	if waitMin < 0 {
		waitMin = 0
	}
	p := float64(j.SystemPriority) * systemPriorityScale
	p += w.QueueTime * waitMin
	if w.XFactor != 0 && j.Walltime > 0 {
		p += w.XFactor * (1 + float64(now-j.SubmitTime)/float64(j.Walltime))
	}
	p += w.Resource * float64(j.Cores)
	if w.Fairshare != 0 && fs != nil {
		p += w.Fairshare * fs.Factor(j.Cred.User)
	}
	return p
}

// SortByPriority orders jobs by descending priority; ties break by
// earlier submission, then lower ID, keeping the order deterministic.
func SortByPriority(jobs []*job.Job, now sim.Time, w PriorityWeights, fs *Fairshare) {
	prio := make(map[job.ID]float64, len(jobs))
	for _, j := range jobs {
		prio[j.ID] = w.Priority(j, now, fs)
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		pa, pb := prio[jobs[a].ID], prio[jobs[b].ID]
		if pa != pb {
			return pa > pb
		}
		if jobs[a].SubmitTime != jobs[b].SubmitTime {
			return jobs[a].SubmitTime < jobs[b].SubmitTime
		}
		return jobs[a].ID < jobs[b].ID
	})
}

// Fairshare tracks historical per-user resource usage with exponential
// interval decay, the usual Maui fairshare mechanism. The factor of a
// user is targetShare − actualShare: positive for underserved users.
type Fairshare struct {
	interval      sim.Duration
	decay         float64
	intervalStart sim.Time
	usage         map[string]float64 // decayed core-seconds per user
	total         float64
}

// NewFairshare creates a tracker with the given accounting interval
// and per-interval decay (e.g. 24h, 0.7).
func NewFairshare(interval sim.Duration, decay float64) *Fairshare {
	if interval <= 0 {
		interval = 24 * sim.Hour
	}
	return &Fairshare{interval: interval, decay: decay, usage: make(map[string]float64)}
}

// Advance rolls accounting intervals up to now.
func (f *Fairshare) Advance(now sim.Time) {
	for now >= f.intervalStart+f.interval {
		f.intervalStart += f.interval
		f.total = 0
		// Decay in sorted-user order: float addition is not associative,
		// so accumulating f.total in map order would make priorities
		// differ in the last bits between same-seed runs.
		users := make([]string, 0, len(f.usage))
		for u := range f.usage {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, u := range users {
			nv := f.usage[u] * f.decay
			if nv < 1e-9 {
				delete(f.usage, u)
				continue
			}
			f.usage[u] = nv
			f.total += nv
		}
	}
}

// Record charges core-seconds of usage to a user.
func (f *Fairshare) Record(user string, coreSeconds float64) {
	if coreSeconds <= 0 {
		return
	}
	f.usage[user] += coreSeconds
	f.total += coreSeconds
}

// Factor returns targetShare − actualShare in [−1, 1]; users that used
// more than an equal share get a negative factor. With no usage at all
// every user gets 0.
func (f *Fairshare) Factor(user string) float64 {
	if f.total <= 0 {
		return 0
	}
	nUsers := len(f.usage)
	if nUsers == 0 {
		return 0
	}
	target := 1.0 / float64(nUsers)
	return target - f.usage[user]/f.total
}

// Usage returns the decayed usage recorded for a user.
func (f *Fairshare) Usage(user string) float64 { return f.usage[user] }
