package core

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/profile"
	"repro/internal/sim"
)

// ResourceManager is the scheduler's view of the resource manager
// (Torque in the paper). The simulator and the live server both
// implement it; the scheduler makes decisions and invokes the
// mutating calls, observing their effect through Cluster().
type ResourceManager interface {
	// Cluster returns the live resource state. The scheduler reads it
	// and sees mutations made by StartJob/GrantDyn immediately.
	Cluster() *cluster.Cluster
	// QueuedJobs returns the static jobs waiting for allocation.
	QueuedJobs() []*job.Job
	// ActiveJobs returns jobs currently holding resources.
	ActiveJobs() []*job.Job
	// DynRequests returns pending dynamic requests in FIFO order.
	DynRequests() []*job.DynRequest
	// StartJob allocates resources for a queued job and starts it.
	StartJob(j *job.Job) (cluster.Alloc, error)
	// GrantDyn expands a running job's allocation per the request.
	GrantDyn(r *job.DynRequest) (cluster.Alloc, error)
	// RejectDyn declines a dynamic request; the application continues
	// on its current allocation (and may retry later).
	RejectDyn(r *job.DynRequest, reason string)
	// Preempt stops a running job and requeues it (used only when the
	// site enables PREEMPTPOLICY REQUEUE for dynamic requests).
	Preempt(j *job.Job) error
}

// ChangeTracker is the optional ResourceManager capability behind
// event-driven requeue. StateEpoch advances on every externally
// visible mutation (submit, start, completion, cancel, preemption,
// resize, dynamic request arrival or resolution); QueueEpoch advances
// on the subset that changes queue membership or a queued job's
// priority inputs. The scheduler uses StateEpoch to skip idle
// iterations outright and QueueEpoch to reuse the sorted job table
// across iterations.
type ChangeTracker interface {
	StateEpoch() uint64
	QueueEpoch() uint64
}

// QueueSnapshotter is an optional ResourceManager fast path: QueueRef
// returns the RM's own queued-job slice in submission order, valid
// until the RM next mutates. The scheduler only reads it during
// Iterate and copies what it keeps, so RMs whose queue is quiescent
// during an iteration can skip the O(n) defensive copy of QueuedJobs.
type QueueSnapshotter interface {
	QueueRef() []*job.Job
}

// Options bundles the scheduler configuration.
type Options struct {
	Config  *config.SchedConfig
	Weights PriorityWeights
	// MaxIdleJobsPerUser throttles eligibility: at most this many
	// queued jobs per user are considered each iteration (0 = all).
	MaxIdleJobsPerUser int
	// StrictSystemPriority enforces the ESP Z-job rule: while any job
	// with SystemPriority > 0 is queued, only such jobs may start and
	// backfill is disabled.
	StrictSystemPriority bool
	// DynRequestsAfterBackfill inverts Algorithm 2's ordering and
	// serves dynamic requests only from what backfilling left over.
	// The paper argues for dynamic-before-backfill (§IV-B); this
	// switch exists for the ablation benchmark.
	DynRequestsAfterBackfill bool
	// Malleable enables scheduler-initiated resizing of malleable
	// jobs when the ResourceManager implements MalleableManager:
	// shrink to serve dynamic requests, grow from leftover idle
	// cores (§VI future work).
	Malleable bool
	// Moldable lets the scheduler adjust moldable jobs' requests
	// within [MinCores, MaxCores] before start (§I taxonomy).
	Moldable bool
}

// DynDecision records the outcome of one dynamic request.
type DynDecision struct {
	Req     *job.DynRequest
	Granted bool
	Reason  string // rejection reason
	// Deferred marks a negotiable request (one with a deadline) that
	// could not be served this iteration and stays queued — the
	// negotiation protocol of §III-C.
	Deferred bool
	// AvailableAt is the batch system's estimate of when the requested
	// resources could become free (walltime-based), reported on
	// insufficient-resource outcomes; sim.Forever when never.
	AvailableAt sim.Time
	// Delays are the measured per-job delays that informed the
	// fairness decision (granted or not). The slice is owned by the
	// IterationResult: observers that retain it past Recycle must
	// copy it first.
	Delays []fairness.JobDelay
}

// IterationResult reports what one scheduling iteration did. Results
// are pooled: drivers that consume a result synchronously should hand
// it back via Scheduler.Recycle so steady-state iteration stops
// generating per-tick garbage. A recycled result's slices (including
// DynDecision.Delays) are reused; observers copy what they keep.
type IterationResult struct {
	Now          sim.Time
	Started      []*job.Job // jobs started in priority order
	Backfilled   []*job.Job // jobs started out of order
	Reservations []Planned  // blocked jobs holding reservations
	DynDecisions []DynDecision
	Preempted    []*job.Job
	// Resizes lists scheduler-initiated malleable grow/shrink actions.
	Resizes []Resize

	// delayBuf is the arena the per-decision Delays slices are carved
	// from; it lives and dies with the result.
	delayBuf []fairness.JobDelay

	// poolGen is the pool lifetime guard: odd while the result sits in
	// the pool, even while a caller owns it. Checked (and advanced)
	// only in race-detector builds; see poolcheck.go.
	poolGen uint64
}

// GrantedCount returns how many dynamic requests were granted.
func (r *IterationResult) GrantedCount() int {
	n := 0
	for _, d := range r.DynDecisions {
		if d.Granted {
			n++
		}
	}
	return n
}

// Scheduler implements the extended Maui iteration (Algorithm 2).
// When no dynamic requests are pending the iteration degenerates to
// the original Algorithm 1.
type Scheduler struct {
	opts Options
	fair *fairness.Tracker
	fs   *Fairshare

	// iterations is atomic: live daemons iterate on their own
	// goroutine while status endpoints read the count.
	iterations atomic.Uint64

	// Scratch storage reused across iterations so the hot path
	// (per-request what-if planning) stops allocating once warm.
	builder     profile.Builder
	pristineBuf profile.SegProfile
	baseBuf     profile.SegProfile
	candBuf     profile.SegProfile
	finalBuf    profile.SegProfile
	planDone    chan planOut

	// table is the sorted struct-of-arrays snapshot of the eligible
	// queue, cached across iterations when the RM reports queue epochs.
	table jobTable
	pc    planContext

	// What-if planning scratch: dense candidate starts indexed by
	// priority order, and the measured-set buffers (base side is
	// written by the concurrent base replan goroutine, cand side by
	// the iteration goroutine, measuredBuf holds the copy planContext
	// points at).
	candStarts      []sim.Time
	baseMeasuredBuf []Planned
	candMeasuredBuf []Planned
	measuredBuf     []Planned

	// Result pool (Recycle/takeResult).
	resPool []*IterationResult

	// Event-driven requeue state: the last iteration's RM identity and
	// post-iteration epoch, whether any dynamic request was deferred,
	// and the earliest walltime release (profile shape is a pure
	// function of cluster state before that horizon).
	lastRM       ResourceManager
	lastEpoch    uint64
	lastNow      sim.Time
	nextRelease  sim.Time
	lastDeferred bool
	lastValid    bool
}

// planOut is the result of one full-queue planning pass.
type planOut struct {
	measured []Planned
	lastIdx  int
}

// planContext carries the incremental planning state of one iteration:
// the pristine availability profile (cluster releases only, no planning
// holds) and the delay-measured subset of the static queue planned
// against it. Both are built at most once per cluster-state epoch and
// reused across the FIFO dynamic requests; a grant advances the epoch
// by applying its hold incrementally instead of rebuilding from
// scratch.
type planContext struct {
	now sim.Time
	// pristine is the base availability profile; nil means stale.
	pristine *profile.SegProfile
	// idleAtBuild detects cluster mutations (starts, shrinks,
	// preemptions) that happened since pristine was built.
	idleAtBuild int
	// measured/lastIdx cache the delay-measured subset of the static
	// queue planned against pristine and the index of the last
	// measured job (what-if planning stops there).
	measured  []Planned
	lastIdx   int
	baseValid bool
}

// invalidate drops all cached planning state after an untracked
// cluster mutation (malleable shrink, preemption).
func (pc *planContext) invalidate() {
	pc.pristine = nil
	pc.baseValid = false
}

// ensureBase returns the pristine availability profile for the current
// cluster state, rebuilding it in one batch pass when it is stale.
func (s *Scheduler) ensureBase(pc *planContext, rm ResourceManager) *profile.SegProfile {
	cl := rm.Cluster()
	idle := cl.IdleCores()
	if pc.pristine == nil || idle != pc.idleAtBuild {
		s.nextRelease = fillBuilder(&s.builder, pc.now, cl, rm.ActiveJobs())
		pc.pristine = s.builder.BuildSegInto(&s.pristineBuf)
		pc.idleAtBuild = idle
		pc.baseValid = false
	}
	return pc.pristine
}

// New creates a scheduler. A nil cfg uses config.Default(); the
// fairness tracker starts its first interval at startTime.
func New(opts Options, startTime sim.Time) *Scheduler {
	if opts.Config == nil {
		opts.Config = config.Default()
	}
	if opts.Weights == (PriorityWeights{}) {
		opts.Weights = DefaultWeights()
	}
	s := &Scheduler{
		opts:     opts,
		fair:     fairness.NewTracker(opts.Config.Fairness, startTime),
		fs:       NewFairshareFromConfig(opts.Config),
		planDone: make(chan planOut, 1),
	}
	// Hierarchical DFS rollup: a child's delay charge counts against
	// its ancestors' budgets too. With the degenerate flat tree this
	// adds no entities and changes nothing.
	s.fair.AttachShareTree(s.fs.Tree())
	return s
}

// FairnessTracker exposes the DFS accounting state (for reports/tests).
func (s *Scheduler) FairnessTracker() *fairness.Tracker { return s.fair }

// Fairshare exposes the historical-usage tracker; the resource manager
// records completed jobs' usage here.
func (s *Scheduler) Fairshare() *Fairshare { return s.fs }

// Iterations returns how many scheduling iterations have run.
func (s *Scheduler) Iterations() uint64 { return s.iterations.Load() }

// Options returns the scheduler's options.
func (s *Scheduler) Options() Options { return s.opts }

// maxHeld is the planning depth for delay measurement: the number of
// StartLater jobs considered is max(ReservationDepth,
// ReservationDelayDepth) per §III-C / Fig. 5.
func (s *Scheduler) maxHeld() int {
	d := s.opts.Config.ReservationDepth
	if s.opts.Config.ReservationDelayDepth > d {
		d = s.opts.Config.ReservationDelayDepth
	}
	return d
}

// selectEligible applies throttling policies (step 6 of Algorithm 1).
func (s *Scheduler) selectEligible(queued []*job.Job) []*job.Job {
	if s.opts.MaxIdleJobsPerUser <= 0 {
		return queued
	}
	perUser := make(map[string]int)
	out := queued[:0:0]
	for _, j := range queued {
		if perUser[j.Cred.User] < s.opts.MaxIdleJobsPerUser {
			perUser[j.Cred.User]++
			out = append(out, j)
		}
	}
	return out
}

// takeResult returns a pooled IterationResult or a fresh one.
func (s *Scheduler) takeResult() *IterationResult {
	if n := len(s.resPool); n > 0 {
		res := s.resPool[n-1]
		s.resPool = s.resPool[:n-1]
		res.clearOnTake()
		return res
	}
	return &IterationResult{}
}

// Recycle hands an IterationResult back to the scheduler's pool. The
// result and every slice it owns (including DynDecision.Delays) are
// reused by a later Iterate; callers must not touch them afterwards.
// Recycling is optional — results that escape to long-lived observers
// can simply be dropped to the garbage collector.
//
//schedlint:pool-release IterationResult
func (s *Scheduler) Recycle(res *IterationResult) {
	if res == nil {
		return
	}
	res.poisonOnRecycle()
	clear(res.Started)
	clear(res.Backfilled)
	clear(res.Reservations)
	clear(res.DynDecisions)
	clear(res.Preempted)
	clear(res.Resizes)
	clear(res.delayBuf)
	res.Now = 0
	res.Started = res.Started[:0]
	res.Backfilled = res.Backfilled[:0]
	res.Reservations = res.Reservations[:0]
	res.DynDecisions = res.DynDecisions[:0]
	res.Preempted = res.Preempted[:0]
	res.Resizes = res.Resizes[:0]
	res.delayBuf = res.delayBuf[:0]
	if len(s.resPool) < 4 {
		s.resPool = append(s.resPool, res)
	}
}

// canSkip reports whether the iteration may short-circuit: the RM's
// state epoch is unchanged since the last iteration against the same
// RM, no negotiable request is parked, virtual time has not crossed
// the earliest walltime release (before that horizon the availability
// profile is a pure function of the unchanged cluster state, and the
// pristine profile is monotone non-decreasing — a job that could not
// start then cannot start now), and no time-dependent resizing policy
// (malleable growth windows, moldable shaping) is active.
func (s *Scheduler) canSkip(ct ChangeTracker, rm ResourceManager, now sim.Time) bool {
	return s.lastValid &&
		rm == s.lastRM &&
		now >= s.lastNow &&
		now < s.nextRelease &&
		!s.lastDeferred &&
		!s.opts.Malleable &&
		!s.opts.Moldable &&
		ct.StateEpoch() == s.lastEpoch
}

// noteIteration records the post-iteration skip state. The epoch is
// captured after all of the iteration's own mutations (starts, grants,
// rejections), so the next tick skips exactly when nothing else
// happened in between. nextRelease is recomputed over the final active
// set — jobs started this iteration may release earlier than anything
// the pristine profile saw.
func (s *Scheduler) noteIteration(rm ResourceManager, now sim.Time, deferred bool) {
	ct, ok := rm.(ChangeTracker)
	if !ok {
		s.lastValid = false
		return
	}
	next := sim.Forever
	for _, j := range rm.ActiveJobs() {
		end := j.StartTime + j.Walltime
		if end <= now {
			end = now // overrun: profile shape is already time-dependent
		}
		if end < next {
			next = end
		}
	}
	s.lastValid = true
	s.lastRM = rm
	s.lastNow = now
	s.lastEpoch = ct.StateEpoch()
	s.nextRelease = next
	s.lastDeferred = deferred
}

// ensureTable refreshes the sorted struct-of-arrays queue snapshot,
// reusing the previous iteration's order when the RM reports an
// unchanged queue epoch and the priority weights are time-invariant
// (no XFactor, no Fairshare: pairwise priority differences are then
// constant in time, so the sorted order cannot drift between epochs).
//
// Fairshare-ordered mode (Fairshare weight alone, no time-varying
// factors) additionally keeps the cached order across usage changes:
// uniform decay scales every entity's usage share by the same factor
// and entity births/deaths shift every target equally, so relative
// order among entities whose usage did not change is invariant. The
// share tree's change log names the touched entities; repair re-ranks
// only their jobs (O(k log n)) instead of re-sorting the queue.
func (s *Scheduler) ensureTable(now sim.Time, rm ResourceManager) {
	t := &s.table
	ct, tracked := rm.(ChangeTracker)
	w := s.opts.Weights
	// Fairshare-only weights keep the cached order exact only over a
	// flat tree: in a hierarchy, one leaf's usage moves its cousins'
	// factors through the shared ancestors, so untouched entities'
	// relative order is no longer invariant.
	fsOrder := w.Fairshare != 0 && w.QueueTime == 0 && w.XFactor == 0 && w.Resource == 0 &&
		s.fs.tree.Flat()
	cacheable := tracked && w.XFactor == 0 && (w.Fairshare == 0 || fsOrder)
	if cacheable && t.valid && rm == s.lastRM && t.queueEpoch == ct.QueueEpoch() {
		if w.Fairshare == 0 {
			return
		}
		if dirty, ok := s.fs.tree.DirtySince(t.fsSerial); ok {
			if len(dirty) == 0 {
				return
			}
			if t.repair(dirty, now, w, s.fs) {
				t.fsSerial = s.fs.tree.ChangeSerial()
				t.repairs++
				return
			}
		}
	}
	var queued []*job.Job
	if qs, ok := rm.(QueueSnapshotter); ok {
		queued = qs.QueueRef()
	} else {
		queued = rm.QueuedJobs()
	}
	t.fill(s.selectEligible(queued), now, w, s.fs)
	t.valid = cacheable
	if fsOrder {
		t.fsSerial = s.fs.tree.ChangeSerial()
	}
	if tracked {
		t.queueEpoch = ct.QueueEpoch()
	}
}

// Iterate runs one scheduling iteration at virtual time now against
// the resource manager, and returns what it decided. This is
// Algorithm 2 of the paper; with an empty dynamic-request queue it is
// exactly Algorithm 1.
//
// The returned result is pooled: the caller owns it until it calls
// Recycle, after which the result and every slice it owns are reused
// by a later iteration.
//
//schedlint:pool IterationResult
func (s *Scheduler) Iterate(now sim.Time, rm ResourceManager) *IterationResult {
	s.iterations.Add(1)

	// Steps 2–5: obtain resource/workload information, update
	// statistics, refresh reservations (reservations are re-derived
	// from scratch below, as Maui does each iteration).
	s.fair.Advance(now)
	s.fs.Advance(now)

	// Event-driven requeue: when the RM tracks epochs and nothing has
	// changed since the last iteration, the tick is a no-op — no queue
	// scan, no sort, no planning.
	if ct, ok := rm.(ChangeTracker); ok && s.canSkip(ct, rm, now) {
		res := s.takeResult()
		res.Now = now
		return res
	}

	res := s.takeResult()
	res.Now = now

	// Steps 6–9: select and prioritize eligible static jobs and
	// dynamic requests. Static jobs use the priority factors; dynamic
	// requests stay in FIFO order (the RM returns them that way).
	s.ensureTable(now, rm)
	t := &s.table
	dynReqs := rm.DynRequests()

	// Steps 10–24: schedule static jobs and create reservations
	// without starting them, then process each dynamic request in
	// FIFO order. The base profile and base plans are built once and
	// reused across requests; a grant applies its hold to the base
	// incrementally instead of rebuilding from scratch.
	pc := &s.pc
	*pc = planContext{now: now, lastIdx: -1}
	deferred := false
	processDyn := func() {
		for _, req := range dynReqs {
			dec := s.processDynRequest(pc, rm, req, res)
			deferred = deferred || dec.Deferred
			res.DynDecisions = append(res.DynDecisions, dec)
		}
	}
	if !s.opts.DynRequestsAfterBackfill {
		processDyn()
	}

	// Step 25: schedule static jobs in priority order and start the
	// ones that fit now. The plan is rebuilt because granted dynamic
	// requests consumed resources.
	startNowBlocked := s.opts.StrictSystemPriority && t.anySys

	// Steps 25–26 merged: walk the queue in priority order. Jobs that
	// fit now start; once a higher-priority job has blocked, further
	// starts are by definition backfill (they run out of order), which
	// is allowed only when backfill is enabled and no system-priority
	// (Z) job is waiting. The top ReservationDepth blocked jobs place
	// reservation holds so backfilled jobs cannot delay them.
	final := s.ensureBase(pc, rm).CloneInto(&s.finalBuf)
	heldBlocked := 0
	anyBlocked := false
	for i := 0; i < t.len(); i++ {
		j := t.jobs[i]
		cores := int(t.cores[i])
		wall := t.wall[i]
		start := final.FindSlot(cores, wall, now)
		suppressed := (startNowBlocked && t.sys[i] == 0) ||
			(anyBlocked && s.opts.Config.BackfillPolicy == "NONE")
		if !suppressed && t.mold[i] {
			// Moldable jobs: reshape the request to start now (down)
			// or to exploit abundance (up) before committing.
			if c := s.moldToFit(final, j, now); c > 0 && c != cores {
				j.Cores = c
				t.cores[i] = int32(c)
				t.valid = false // cached order must not outlive the reshape
				cores = c
				start = now
			}
		}
		if start == now && !suppressed {
			// Mark out-of-order starts before dispatch so the RM can
			// log them as backfills.
			j.Backfilled = anyBlocked
			alloc, err := rm.StartJob(j)
			if err == nil && alloc != nil {
				if anyBlocked {
					res.Backfilled = append(res.Backfilled, j)
				} else {
					res.Started = append(res.Started, j)
				}
				s.fair.ForgetJob(j.ID)
				final.AddHold(now, holdEnd(now, wall), cores)
				continue
			}
			// Node-level fragmentation or a race in live mode: the
			// core count fits but placement failed; treat as blocked.
			j.Backfilled = false
			anyBlocked = true
			continue
		}
		if start > now {
			anyBlocked = true
		}
		if start > now && start < sim.Forever && heldBlocked < s.opts.Config.ReservationDepth {
			heldBlocked++
			final.AddHold(start, holdEnd(start, wall), cores)
			res.Reservations = append(res.Reservations, Planned{Job: j, Start: start, Held: true})
		}
	}
	if s.opts.DynRequestsAfterBackfill {
		processDyn()
	}

	// Malleable growth: leftover idle cores go to running malleable
	// jobs, never into reservation windows.
	s.growMalleable(now, rm, final, res)

	// A strict-priority pass that started anything is not necessarily a
	// fixed point: startNowBlocked was computed before the loop, so the
	// tick that starts the last queued Z job still suppresses every
	// normal job behind it even though nothing suppresses them anymore.
	// Treat the iteration as unsettled so the next tick replans instead
	// of skipping on the post-iteration epoch.
	unsettled := startNowBlocked && len(res.Started)+len(res.Backfilled) > 0
	s.noteIteration(rm, now, deferred || unsettled)
	return res
}

// processDynRequest implements lines 12–23 of Algorithm 2 for one
// dynamic request: allocate from idle (before preemptible) resources,
// measure the delays a grant would cause to the StartNow and
// StartLater jobs, gate on the dynamic fairness policies, then grant
// or reject.
func (s *Scheduler) processDynRequest(pc *planContext, rm ResourceManager, req *job.DynRequest, res *IterationResult) DynDecision {
	now := pc.now
	dec := DynDecision{Req: req}
	cl := rm.Cluster()
	need := req.TotalCores()
	if err := req.Validate(); err != nil {
		rm.RejectDyn(req, err.Error())
		dec.Reason = err.Error()
		return dec
	}
	if !req.Job.Active() {
		dec.Reason = "job no longer active"
		rm.RejectDyn(req, dec.Reason)
		return dec
	}

	// Allocation sources in the §II-B order: idle resources first,
	// then stealing from malleable jobs, then preemption (if enabled).
	if cl.IdleCores() < need {
		preempted, resized := len(res.Preempted), len(res.Resizes)
		ok := s.shrinkMalleable(now, rm, need, res)
		if !ok && s.opts.Config.PreemptPolicy == "REQUEUE" {
			ok = s.tryPreempt(now, rm, need, res)
		}
		if len(res.Preempted) != preempted || len(res.Resizes) != resized {
			// Shrinks and preemptions changed the release schedule, not
			// just the idle count; rebuild the base from scratch.
			pc.invalidate()
		}
		if !ok {
			// Estimate when the resources could become free — the
			// "time of availability" half of the negotiation protocol.
			dec.AvailableAt = s.estimateAvailability(pc, rm, req, need)
			if req.Negotiable() && !req.Expired(now) {
				// Deferred: the request stays queued at the server and
				// is retried every iteration until grant or deadline.
				dec.Deferred = true
				return dec
			}
			dec.Reason = fmt.Sprintf("insufficient resources (%d idle, %d needed; estimated available %s)",
				cl.IdleCores(), need, sim.FormatTime(dec.AvailableAt))
			rm.RejectDyn(req, dec.Reason)
			return dec
		}
	}

	// Measure delays: plan the static queue with and without the
	// hypothetical grant. The grant holds the extra cores until the
	// evolving job's walltime end (dynamic reservations run to the
	// rest of the walltime, §III-D). The base side comes from the
	// per-iteration cache; the candidate side is a what-if overlay on
	// a reused scratch clone, planned only up to the last measured job
	// — the cost is proportional to the perturbation's reach, not the
	// queue.
	evolveEnd := req.Job.StartTime + req.Job.Walltime
	if evolveEnd <= now {
		evolveEnd = now + sim.Second
	}
	base := s.ensureBase(pc, rm)
	candP := base.CloneInto(&s.candBuf)
	candP.AddHold(now, evolveEnd, need)

	t := &s.table
	n := t.len()
	if cap(s.candStarts) < n {
		s.candStarts = make([]sim.Time, n)
	}
	delayDepth := s.opts.Config.ReservationDelayDepth
	var candMeasured []Planned
	candLast := -1
	candFull := false
	if !pc.baseValid {
		// Base plans are stale: replan the full queue on both sides.
		// The two passes are independent reads over separate profile
		// clones and the shared (read-only) job table, so they run
		// concurrently.
		candFull = true
		baseP := base.CloneInto(&s.baseBuf)
		//lint:goroutine joined two statements down by the blocking receive from s.planDone
		go func() {
			m, last := planTable(baseP, t, n, now, s.maxHeld(), delayDepth, nil, s.baseMeasuredBuf[:0], true)
			s.planDone <- planOut{measured: m, lastIdx: last}
		}()
		candMeasured, candLast = planTable(candP, t, n, now, s.maxHeld(), delayDepth, s.candStarts[:n], s.candMeasuredBuf[:0], true)
		s.candMeasuredBuf = candMeasured[:0]
		out := <-s.planDone
		s.baseMeasuredBuf = out.measured[:0]
		s.measuredBuf = append(s.measuredBuf[:0], out.measured...)
		pc.measured, pc.lastIdx = s.measuredBuf, out.lastIdx
		pc.baseValid = true
	} else {
		// Cached base: the what-if only needs plans up to the last
		// delay-measured job — a planned start depends solely on the
		// holds of higher-priority jobs.
		upTo := pc.lastIdx + 1
		planTable(candP, t, upTo, now, s.maxHeld(), 0, s.candStarts[:upTo], nil, false)
	}

	measured := pc.measured
	delayStart := len(res.delayBuf)
	for _, p := range measured {
		cand := s.candStarts[p.idx]
		d := cand - p.Start
		if cand == sim.Forever || p.Start == sim.Forever {
			d = 0
			if cand == sim.Forever && p.Start < sim.Forever {
				// The grant would push the job out entirely (only
				// possible with infinite walltimes); treat as the
				// remaining hold length.
				d = evolveEnd - now
			}
		}
		if d < 0 {
			d = 0
		}
		res.delayBuf = append(res.delayBuf, fairness.JobDelay{Job: p.Job, Delay: d})
	}
	delays := res.delayBuf[delayStart:len(res.delayBuf):len(res.delayBuf)]
	dec.Delays = delays

	// Lines 14–20: the dynamic fairness gate.
	verdict := s.fair.Evaluate(req.Job.Cred, delays)
	if !verdict.Allowed {
		if req.Negotiable() && !req.Expired(now) {
			// A later iteration may measure smaller delays (victims
			// start, budgets decay): keep negotiating.
			dec.Deferred = true
			dec.Reason = verdict.Reason
			return dec
		}
		dec.Reason = verdict.Reason
		rm.RejectDyn(req, dec.Reason)
		return dec
	}
	alloc, err := rm.GrantDyn(req)
	if err != nil || alloc == nil {
		dec.Reason = fmt.Sprintf("allocation failed: %v", err)
		rm.RejectDyn(req, dec.Reason)
		return dec
	}
	s.fair.Charge(req.Job.Cred, delays)
	dec.Granted = true

	// Fold the grant into the cached base incrementally: the granted
	// cores are held from now to the evolving job's walltime end, which
	// is exactly the delta a from-scratch rebuild would observe.
	pc.pristine.AddHold(now, evolveEnd, need)
	pc.idleAtBuild -= need
	if candFull {
		// The full-queue candidate plan was computed against exactly
		// this profile — its measured set becomes the new base cache
		// for free.
		s.measuredBuf = append(s.measuredBuf[:0], candMeasured...)
		pc.measured, pc.lastIdx = s.measuredBuf, candLast
	} else {
		pc.baseValid = false
	}
	return dec
}

// estimateAvailability computes the earliest walltime-based instant at
// which the requested cores could be continuously free for the rest of
// the evolving job's walltime. It reads the iteration's cached base
// profile (FindSlot does not mutate) instead of rebuilding one.
func (s *Scheduler) estimateAvailability(pc *planContext, rm ResourceManager, req *job.DynRequest, need int) sim.Time {
	dur := req.Job.RemainingWalltime(pc.now)
	if dur <= 0 {
		dur = sim.Second
	}
	return s.ensureBase(pc, rm).FindSlot(need, dur, pc.now)
}

// tryPreempt frees cores for a dynamic request by requeueing
// backfilled or explicitly preemptible running jobs, lowest priority
// first. Returns true if after preemption enough cores are idle.
func (s *Scheduler) tryPreempt(now sim.Time, rm ResourceManager, need int, res *IterationResult) bool {
	cl := rm.Cluster()
	var victims []*job.Job
	for _, j := range rm.ActiveJobs() {
		if j.Backfilled || j.Preemptible {
			victims = append(victims, j)
		}
	}
	// Lowest priority first = reverse of the priority order.
	SortByPriority(victims, now, s.opts.Weights, s.fs)
	for i := len(victims) - 1; i >= 0 && cl.IdleCores() < need; i-- {
		if err := rm.Preempt(victims[i]); err != nil {
			continue
		}
		res.Preempted = append(res.Preempted, victims[i])
	}
	return cl.IdleCores() >= need
}
