//go:build race

package core

// poolCheckEnabled reports whether the IterationResult pool lifetime
// guard is compiled in. It rides the race detector: the builds that
// hunt for interleaving bugs are the ones that should also catch a
// result recycled twice or taken while already live, and the hot
// simulation path stays branch-free in normal builds.
const poolCheckEnabled = true

// poisonOnRecycle flips the result's generation to the pooled (odd)
// state, panicking if it is already pooled — the caller is recycling
// a result it no longer owns, which would hand the same backing
// slices to two future iterations.
func (r *IterationResult) poisonOnRecycle() {
	if r.poolGen&1 == 1 {
		panic("core: IterationResult recycled twice; the caller no longer owns it")
	}
	r.poolGen++
}

// clearOnTake flips a pooled result's generation back to the live
// (even) state as it leaves the pool.
func (r *IterationResult) clearOnTake() {
	if r.poolGen&1 == 0 {
		panic("core: pooled IterationResult is already live; pool corrupted")
	}
	r.poolGen++
}
