package core

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
)

// testRM is a minimal in-memory ResourceManager for scheduler tests.
type testRM struct {
	now      sim.Time
	cl       *cluster.Cluster
	queued   []*job.Job
	active   []*job.Job
	dyn      []*job.DynRequest
	rejected map[job.ID]string
}

func newTestRM(nodes, cores int) *testRM {
	return &testRM{cl: cluster.New(nodes, cores), rejected: make(map[job.ID]string)}
}

func (r *testRM) Cluster() *cluster.Cluster      { return r.cl }
func (r *testRM) QueuedJobs() []*job.Job         { return append([]*job.Job(nil), r.queued...) }
func (r *testRM) ActiveJobs() []*job.Job         { return append([]*job.Job(nil), r.active...) }
func (r *testRM) DynRequests() []*job.DynRequest { return append([]*job.DynRequest(nil), r.dyn...) }

func (r *testRM) StartJob(j *job.Job) (cluster.Alloc, error) {
	alloc := r.cl.Allocate(j.ID, j.Cores)
	if alloc == nil {
		return nil, fmt.Errorf("no resources")
	}
	j.State = job.Running
	j.StartTime = r.now
	for i, q := range r.queued {
		if q.ID == j.ID {
			r.queued = append(r.queued[:i], r.queued[i+1:]...)
			break
		}
	}
	r.active = append(r.active, j)
	return alloc, nil
}

func (r *testRM) GrantDyn(req *job.DynRequest) (cluster.Alloc, error) {
	var alloc cluster.Alloc
	if req.Nodes > 0 {
		alloc = r.cl.AllocateNodes(req.Job.ID, req.Nodes, req.PPN)
	} else {
		alloc = r.cl.Allocate(req.Job.ID, req.Cores)
	}
	if alloc == nil {
		return nil, fmt.Errorf("no resources")
	}
	req.Job.DynCores += req.TotalCores()
	req.Job.State = job.Running
	r.removeDyn(req)
	return alloc, nil
}

func (r *testRM) RejectDyn(req *job.DynRequest, reason string) {
	r.rejected[req.Job.ID] = reason
	req.Job.State = job.Running
	r.removeDyn(req)
}

func (r *testRM) removeDyn(req *job.DynRequest) {
	for i, d := range r.dyn {
		if d == req {
			r.dyn = append(r.dyn[:i], r.dyn[i+1:]...)
			return
		}
	}
}

func (r *testRM) Preempt(j *job.Job) error {
	r.cl.Release(j.ID)
	j.State = job.Queued
	j.StartTime = 0
	j.Backfilled = false
	j.DynCores = 0
	for i, a := range r.active {
		if a.ID == j.ID {
			r.active = append(r.active[:i], r.active[i+1:]...)
			break
		}
	}
	r.queued = append(r.queued, j)
	return nil
}

// addRunning places a job directly into the running set.
func (r *testRM) addRunning(j *job.Job) {
	if r.cl.Allocate(j.ID, j.Cores) == nil {
		panic("test setup: cannot place running job")
	}
	j.State = job.Running
	r.active = append(r.active, j)
}

func mkQueued(id int, user string, cores int, wall sim.Duration, submit sim.Time) *job.Job {
	return &job.Job{
		ID: job.ID(id), Cred: job.Credentials{User: user, Group: "g" + user},
		Cores: cores, Walltime: wall, SubmitTime: submit, State: job.Queued,
	}
}

func defaultSched() *Scheduler {
	return New(Options{}, 0)
}

func schedWithFairness(p fairness.Policy, mut func(*fairness.Config)) *Scheduler {
	cfg := config.Default()
	cfg.Fairness = fairness.NewConfig(p)
	if mut != nil {
		mut(cfg.Fairness)
	}
	return New(Options{Config: cfg}, 0)
}

func TestPriorityOrdering(t *testing.T) {
	now := sim.Time(10 * sim.Minute)
	a := mkQueued(1, "u", 4, sim.Hour, 0)
	b := mkQueued(2, "u", 4, sim.Hour, 5*sim.Minute)
	z := mkQueued(3, "u", 4, sim.Hour, 9*sim.Minute)
	z.SystemPriority = 1
	jobs := []*job.Job{b, a, z}
	SortByPriority(jobs, now, DefaultWeights(), nil)
	if jobs[0] != z || jobs[1] != a || jobs[2] != b {
		t.Errorf("order = %v %v %v", jobs[0].ID, jobs[1].ID, jobs[2].ID)
	}
}

func TestPriorityTieBreaks(t *testing.T) {
	a := mkQueued(2, "u", 4, sim.Hour, 0)
	b := mkQueued(1, "u", 4, sim.Hour, 0)
	jobs := []*job.Job{a, b}
	SortByPriority(jobs, 0, DefaultWeights(), nil)
	if jobs[0].ID != 1 {
		t.Error("equal priority should order by job ID")
	}
}

func TestPriorityXFactorAndResource(t *testing.T) {
	w := PriorityWeights{XFactor: 10, Resource: 1}
	short := mkQueued(1, "u", 2, 10*sim.Minute, 0)
	long := mkQueued(2, "u", 2, 10*sim.Hour, 0)
	now := sim.Time(10 * sim.Minute)
	if w.Priority(short, now, nil) <= w.Priority(long, now, nil) {
		t.Error("xfactor should favor short jobs that waited")
	}
	big := mkQueued(3, "u", 64, 10*sim.Minute, 0)
	if w.Priority(big, now, nil) <= w.Priority(short, now, nil) {
		t.Error("resource weight should favor bigger jobs")
	}
	// Negative wait clamps to zero rather than penalizing.
	future := mkQueued(4, "u", 2, 10*sim.Minute, 20*sim.Minute)
	wq := PriorityWeights{QueueTime: 1}
	if wq.Priority(future, now, nil) != 0 {
		t.Error("future-submitted job should have zero queue-time priority")
	}
}

func TestFairshareFactors(t *testing.T) {
	fs := NewFairshare(sim.Hour, 0.5)
	if fs.Factor("a") != 0 {
		t.Error("empty fairshare should be neutral")
	}
	fs.Record("a", 1000)
	fs.Record("b", 0) // no-op
	if fs.Usage("a") != 1000 {
		t.Error("usage not recorded")
	}
	// "a" used everything: factor = 1/1 - 1 = 0 with one user; add b.
	fs.Record("b", 3000)
	fa, fb := fs.Factor("a"), fs.Factor("b")
	if fa <= 0 || fb >= 0 {
		t.Errorf("factors a=%v b=%v: heavy user must be negative", fa, fb)
	}
	fs.Advance(2 * sim.Hour)
	if fs.Usage("a") != 250 { // two decays of 0.5
		t.Errorf("decayed usage = %v, want 250", fs.Usage("a"))
	}
	// SortByPriority honors fairshare when weighted.
	ja := mkQueued(1, "a", 1, sim.Hour, 0)
	jb := mkQueued(2, "b", 1, sim.Hour, 0)
	jobs := []*job.Job{ja, jb}
	SortByPriority(jobs, 0, PriorityWeights{Fairshare: 100}, fs)
	if jobs[0].ID != 1 {
		t.Error("underserved user should sort first")
	}
}

func TestIterateStartsJobsImmediately(t *testing.T) {
	rm := newTestRM(4, 8)
	rm.queued = []*job.Job{
		mkQueued(1, "a", 16, sim.Hour, 0),
		mkQueued(2, "b", 16, sim.Hour, 0),
	}
	s := defaultSched()
	res := s.Iterate(0, rm)
	if len(res.Started) != 2 {
		t.Fatalf("started %d jobs, want 2", len(res.Started))
	}
	if rm.cl.IdleCores() != 0 {
		t.Errorf("idle = %d", rm.cl.IdleCores())
	}
	if len(res.Reservations) != 0 || len(res.Backfilled) != 0 {
		t.Error("nothing should be reserved or backfilled")
	}
}

func TestIterateReservesBlockedJob(t *testing.T) {
	rm := newTestRM(2, 8)
	big := mkQueued(1, "a", 16, sim.Hour, 0)
	rm.addRunning(&job.Job{ID: 99, Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: sim.Hour, StartTime: 0})
	rm.queued = []*job.Job{big}
	s := defaultSched()
	res := s.Iterate(0, rm)
	if len(res.Started) != 0 {
		t.Fatal("big job cannot start")
	}
	if len(res.Reservations) != 1 || res.Reservations[0].Job.ID != 1 {
		t.Fatalf("reservations = %+v", res.Reservations)
	}
	if res.Reservations[0].Start != sim.Hour {
		t.Errorf("reservation start = %v, want 1h", res.Reservations[0].Start)
	}
}

func TestBackfillStartsSmallJob(t *testing.T) {
	// 2 nodes x 8. Running job holds 8 cores for 1h. Queue: big(16, blocked),
	// small(8, 30min) fits in the hole without delaying big.
	rm := newTestRM(2, 8)
	rm.addRunning(&job.Job{ID: 99, Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: sim.Hour, StartTime: 0})
	big := mkQueued(1, "a", 16, sim.Hour, 0)
	small := mkQueued(2, "b", 8, 30*sim.Minute, sim.Second)
	rm.queued = []*job.Job{big, small}
	s := defaultSched()
	res := s.Iterate(2*sim.Second, rm)
	if len(res.Backfilled) != 1 || res.Backfilled[0].ID != 2 {
		t.Fatalf("backfilled = %v", res.Backfilled)
	}
	if !res.Backfilled[0].Backfilled {
		t.Error("job should be flagged Backfilled")
	}
}

func TestBackfillDoesNotDelayReservation(t *testing.T) {
	// Same setup but the small job is long: starting it would push the
	// reserved big job past its reservation, so it must not start.
	rm := newTestRM(2, 8)
	rm.addRunning(&job.Job{ID: 99, Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: sim.Hour, StartTime: 0})
	big := mkQueued(1, "a", 16, sim.Hour, 0)
	long := mkQueued(2, "b", 8, 3*sim.Hour, sim.Second)
	rm.queued = []*job.Job{big, long}
	s := defaultSched()
	res := s.Iterate(2*sim.Second, rm)
	if len(res.Backfilled) != 0 {
		t.Fatalf("long job must not backfill over the reservation: %v", res.Backfilled)
	}
}

func TestBackfillPolicyNone(t *testing.T) {
	cfg := config.Default()
	cfg.BackfillPolicy = "NONE"
	rm := newTestRM(2, 8)
	rm.addRunning(&job.Job{ID: 99, Cred: job.Credentials{User: "x"}, Cores: 8, Walltime: sim.Hour, StartTime: 0})
	big := mkQueued(1, "a", 16, sim.Hour, 0)
	small := mkQueued(2, "b", 8, 30*sim.Minute, sim.Second)
	rm.queued = []*job.Job{big, small}
	s := New(Options{Config: cfg}, 0)
	res := s.Iterate(2*sim.Second, rm)
	if len(res.Backfilled) != 0 {
		t.Error("backfill disabled, nothing should backfill")
	}
}

// TestFig1Scenario reproduces the paper's motivating example (Fig. 1):
// six nodes; A runs on 2 for 8 h, B on 2 for 4 h, C queued needing 4.
// C's earliest start is hour 4. If A dynamically grabs the two idle
// nodes, C slips to hour 8 — a 4 h delay that the fairness policies
// must be able to veto.
func TestFig1Scenario(t *testing.T) {
	setup := func(s *Scheduler) (*testRM, *job.Job, *job.DynRequest) {
		rm := newTestRM(6, 1)
		a := &job.Job{ID: 1, Cred: job.Credentials{User: "userA"}, Class: job.Evolving, Cores: 2, Walltime: 8 * sim.Hour, StartTime: 0}
		b := &job.Job{ID: 2, Cred: job.Credentials{User: "userB"}, Cores: 2, Walltime: 4 * sim.Hour, StartTime: 0}
		rm.addRunning(a)
		rm.addRunning(b)
		c := mkQueued(3, "userC", 4, 4*sim.Hour, sim.Hour)
		rm.queued = []*job.Job{c}
		req := &job.DynRequest{Job: a, Cores: 2, IssuedAt: sim.Hour}
		a.State = job.DynQueued
		rm.dyn = []*job.DynRequest{req}
		rm.now = sim.Hour
		return rm, c, req
	}

	t.Run("no fairness grants and delays C by 4h", func(t *testing.T) {
		s := schedWithFairness(fairness.None, nil)
		rm, c, _ := setup(s)
		res := s.Iterate(sim.Hour, rm)
		if res.GrantedCount() != 1 {
			t.Fatalf("grant count = %d", res.GrantedCount())
		}
		d := res.DynDecisions[0]
		if len(d.Delays) != 1 || d.Delays[0].Job.ID != c.ID || d.Delays[0].Delay != 4*sim.Hour {
			t.Fatalf("measured delays = %+v, want C delayed 4h", d.Delays)
		}
		// C's reservation moved to hour 8.
		if len(res.Reservations) != 1 || res.Reservations[0].Start != 8*sim.Hour {
			t.Fatalf("C reservation = %+v, want start at 8h", res.Reservations)
		}
	})

	t.Run("single-job delay limit vetoes the grant", func(t *testing.T) {
		s := schedWithFairness(fairness.SingleJobDelay, func(f *fairness.Config) {
			f.Set(fairness.KindUser, "userC", fairness.Limits{SingleDelayTime: 3 * sim.Hour})
		})
		rm, _, req := setup(s)
		res := s.Iterate(sim.Hour, rm)
		if res.GrantedCount() != 0 {
			t.Fatal("grant should be vetoed")
		}
		if rm.rejected[req.Job.ID] == "" {
			t.Error("rejection reason should be recorded")
		}
		// C keeps its hour-4 reservation.
		if len(res.Reservations) != 1 || res.Reservations[0].Start != 4*sim.Hour {
			t.Fatalf("C reservation = %+v, want start at 4h", res.Reservations)
		}
	})

	t.Run("target delay budget admits within limit", func(t *testing.T) {
		s := schedWithFairness(fairness.TargetDelay, func(f *fairness.Config) {
			f.Set(fairness.KindUser, "userC", fairness.Limits{TargetDelayTime: 5 * sim.Hour})
		})
		rm, _, _ := setup(s)
		res := s.Iterate(sim.Hour, rm)
		if res.GrantedCount() != 1 {
			t.Fatalf("4h delay within 5h budget should be granted: %+v", res.DynDecisions[0].Reason)
		}
		// The charge is recorded against userC.
		got := s.FairnessTracker().EntityUsage(fairness.EntityKey{Kind: fairness.KindUser, Name: "userC"})
		if got != 4*sim.Hour {
			t.Errorf("charged = %v, want 4h", got)
		}
	})

	t.Run("same user exempt", func(t *testing.T) {
		s := schedWithFairness(fairness.SingleJobDelay, func(f *fairness.Config) {
			f.Set(fairness.KindUser, "userA", fairness.Limits{SingleDelayTime: sim.Second})
		})
		rm, c, _ := setup(s)
		c.Cred.User = "userA" // C belongs to the evolving job's user
		res := s.Iterate(sim.Hour, rm)
		if res.GrantedCount() != 1 {
			t.Error("delays to the requester's own jobs must be exempt")
		}
	})
}

func TestDynRejectInsufficientResources(t *testing.T) {
	rm := newTestRM(2, 8)
	a := &job.Job{ID: 1, Cred: job.Credentials{User: "a"}, Class: job.Evolving, Cores: 16, Walltime: sim.Hour, StartTime: 0}
	rm.addRunning(a)
	req := &job.DynRequest{Job: a, Cores: 4}
	rm.dyn = []*job.DynRequest{req}
	s := defaultSched()
	res := s.Iterate(0, rm)
	if res.GrantedCount() != 0 {
		t.Fatal("no idle cores: must reject")
	}
	if rm.rejected[1] == "" {
		t.Error("missing rejection reason")
	}
}

func TestDynRequestValidation(t *testing.T) {
	rm := newTestRM(2, 8)
	a := &job.Job{ID: 1, Cores: 4, Walltime: sim.Hour, StartTime: 0}
	rm.addRunning(a)
	rm.dyn = []*job.DynRequest{{Job: a, Cores: 0}} // invalid: empty
	s := defaultSched()
	res := s.Iterate(0, rm)
	if res.GrantedCount() != 0 || len(res.DynDecisions) != 1 {
		t.Fatal("invalid request must be rejected")
	}
	// Request from a completed job.
	done := &job.Job{ID: 2, Cores: 4, State: job.Completed}
	rm.dyn = []*job.DynRequest{{Job: done, Cores: 4}}
	res = s.Iterate(0, rm)
	if res.GrantedCount() != 0 {
		t.Fatal("request from inactive job must be rejected")
	}
}

func TestDynGrantNodeGranular(t *testing.T) {
	rm := newTestRM(4, 8)
	a := &job.Job{ID: 1, Cred: job.Credentials{User: "a"}, Class: job.Evolving, Cores: 8, Walltime: sim.Hour, StartTime: 0}
	rm.addRunning(a)
	rm.dyn = []*job.DynRequest{{Job: a, Nodes: 2, PPN: 8}}
	s := defaultSched()
	res := s.Iterate(0, rm)
	if res.GrantedCount() != 1 {
		t.Fatalf("node-granular grant failed: %+v", res.DynDecisions)
	}
	if a.TotalCores() != 24 {
		t.Errorf("total cores = %d, want 24", a.TotalCores())
	}
	if got := rm.cl.AllocOf(a.ID).TotalCores(); got != 24 {
		t.Errorf("cluster allocation = %d", got)
	}
}

func TestStrictSystemPriority(t *testing.T) {
	// A Z-style job is queued but cannot start yet; nothing else may
	// start (no priority starts, no backfill), yet a running evolving
	// job may still get dynamic resources (ESP rule, §IV-B).
	rm := newTestRM(4, 8)
	running := &job.Job{ID: 1, Cred: job.Credentials{User: "a"}, Class: job.Evolving, Cores: 8, Walltime: sim.Hour, StartTime: 0}
	rm.addRunning(running)
	z := mkQueued(2, "z", 32, sim.Hour, 0)
	z.SystemPriority = 1
	small := mkQueued(3, "b", 4, 10*sim.Minute, 0)
	rm.queued = []*job.Job{z, small}
	rm.dyn = []*job.DynRequest{{Job: running, Cores: 4}}

	s := New(Options{StrictSystemPriority: true}, 0)
	res := s.Iterate(0, rm)
	if len(res.Started)+len(res.Backfilled) != 0 {
		t.Fatalf("nothing may start while Z is queued: started=%v backfilled=%v", res.Started, res.Backfilled)
	}
	if res.GrantedCount() != 1 {
		t.Error("running evolving jobs may still obtain resources in the Z phase")
	}
	// Without strict mode the small job would start.
	rm2 := newTestRM(4, 8)
	running2 := &job.Job{ID: 1, Cred: job.Credentials{User: "a"}, Cores: 8, Walltime: sim.Hour, StartTime: 0}
	rm2.addRunning(running2)
	z2 := mkQueued(2, "z", 32, sim.Hour, 0)
	z2.SystemPriority = 1
	small2 := mkQueued(3, "b", 4, 10*sim.Minute, 0)
	rm2.queued = []*job.Job{z2, small2}
	s2 := New(Options{StrictSystemPriority: false}, 0)
	res2 := s2.Iterate(0, rm2)
	if len(res2.Started)+len(res2.Backfilled) == 0 {
		t.Error("without strict mode the small job should run")
	}
}

func TestPreemptionForDynRequest(t *testing.T) {
	cfg := config.Default()
	cfg.PreemptPolicy = "REQUEUE"
	rm := newTestRM(2, 8)
	evolving := &job.Job{ID: 1, Cred: job.Credentials{User: "a"}, Class: job.Evolving, Cores: 8, Walltime: sim.Hour, StartTime: 0}
	rm.addRunning(evolving)
	bf := &job.Job{ID: 2, Cred: job.Credentials{User: "b"}, Cores: 8, Walltime: sim.Hour, StartTime: 0, Backfilled: true}
	rm.addRunning(bf)
	rm.dyn = []*job.DynRequest{{Job: evolving, Cores: 4}}
	s := New(Options{Config: cfg}, 0)
	res := s.Iterate(0, rm)
	if len(res.Preempted) != 1 || res.Preempted[0].ID != 2 {
		t.Fatalf("preempted = %v", res.Preempted)
	}
	if res.GrantedCount() != 1 {
		t.Fatalf("grant after preemption failed: %+v", res.DynDecisions)
	}
	if bf.State != job.Queued {
		t.Error("victim should be requeued")
	}
	// Without preemption enabled the same request is rejected.
	rm2 := newTestRM(2, 8)
	e2 := &job.Job{ID: 1, Cred: job.Credentials{User: "a"}, Cores: 8, Walltime: sim.Hour, StartTime: 0}
	rm2.addRunning(e2)
	b2 := &job.Job{ID: 2, Cred: job.Credentials{User: "b"}, Cores: 8, Walltime: sim.Hour, StartTime: 0, Backfilled: true}
	rm2.addRunning(b2)
	rm2.dyn = []*job.DynRequest{{Job: e2, Cores: 4}}
	res2 := defaultSched().Iterate(0, rm2)
	if res2.GrantedCount() != 0 {
		t.Error("without preemption the request must be rejected")
	}
}

func TestMaxIdleJobsPerUserThrottle(t *testing.T) {
	rm := newTestRM(1, 2)
	rm.addRunning(&job.Job{ID: 99, Cred: job.Credentials{User: "x"}, Cores: 2, Walltime: sim.Hour, StartTime: 0})
	for i := 1; i <= 4; i++ {
		rm.queued = append(rm.queued, mkQueued(i, "spammer", 2, sim.Hour, sim.Time(i)))
	}
	s := New(Options{MaxIdleJobsPerUser: 2}, 0)
	res := s.Iterate(sim.Minute, rm)
	// Cluster full: jobs are blocked; only 2 (the throttle) get reservations.
	if len(res.Reservations) != 2 {
		t.Fatalf("reservations = %d, want 2 (throttled)", len(res.Reservations))
	}
}

func TestSequentialGrantsAccumulateDelays(t *testing.T) {
	// Two dynamic requests in one iteration; the second must be judged
	// against a baseline that includes the first grant.
	s := schedWithFairness(fairness.TargetDelay, func(f *fairness.Config) {
		f.Set(fairness.KindUser, "victim", fairness.Limits{TargetDelayTime: 5 * sim.Hour})
	})
	rm := newTestRM(6, 1)
	a := &job.Job{ID: 1, Cred: job.Credentials{User: "ua"}, Class: job.Evolving, Cores: 1, Walltime: 8 * sim.Hour, StartTime: 0}
	b := &job.Job{ID: 2, Cred: job.Credentials{User: "ub"}, Class: job.Evolving, Cores: 1, Walltime: 8 * sim.Hour, StartTime: 0}
	fill := &job.Job{ID: 3, Cred: job.Credentials{User: "x"}, Cores: 2, Walltime: 4 * sim.Hour, StartTime: 0}
	rm.addRunning(a)
	rm.addRunning(b)
	rm.addRunning(fill)
	c := mkQueued(4, "victim", 4, 4*sim.Hour, sim.Hour)
	rm.queued = []*job.Job{c}
	rm.dyn = []*job.DynRequest{{Job: a, Cores: 1}, {Job: b, Cores: 1}}
	rm.now = sim.Hour
	res := s.Iterate(sim.Hour, rm)
	if res.GrantedCount() != 2 {
		t.Fatalf("grants = %d (%+v)", res.GrantedCount(), res.DynDecisions)
	}
	// First grant: C can still start at 4h using the other idle core?
	// Baseline: idle=2, C needs 4 -> start at 4h (fill ends). After
	// grant 1: idle=1 -> C start 8h? No: at 4h fill releases 2, idle
	// total = 1+2 = 3 < 4; at 8h a+b release -> C at 8h. Delay 4h.
	// Second grant measured on top: C already at 8h, grant 2 holds one
	// more core until 8h -> no further delay.
	total := s.FairnessTracker().EntityUsage(fairness.EntityKey{Kind: fairness.KindUser, Name: "victim"})
	if total != 4*sim.Hour {
		t.Errorf("accumulated charge = %v, want 4h", total)
	}
}

func TestIterationCounters(t *testing.T) {
	s := defaultSched()
	rm := newTestRM(1, 1)
	s.Iterate(0, rm)
	s.Iterate(sim.Second, rm)
	if s.Iterations() != 2 {
		t.Errorf("iterations = %d", s.Iterations())
	}
	if s.Options().Config.ReservationDepth != 5 {
		t.Error("options accessor")
	}
}

func TestResultGrantedCount(t *testing.T) {
	r := &IterationResult{DynDecisions: []DynDecision{{Granted: true}, {}, {Granted: true}}}
	if r.GrantedCount() != 2 {
		t.Error("GrantedCount")
	}
}
