package core

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
)

// TestIterateAllocs bounds the allocations of one scheduling iteration
// on a small steady-state fixture (running jobs, blocked queue, no
// dynamic requests). The iteration reuses the scheduler's scratch
// profiles, so the remaining allocations are the RM snapshot copies,
// the priority ordering, and the result — all O(queue), none O(queue ×
// requests).
func TestIterateAllocs(t *testing.T) {
	rm := newTestRM(2, 8)
	run := &job.Job{ID: 1, Cred: job.Credentials{User: "r"}, Cores: 8, Walltime: sim.Hour}
	rm.addRunning(run)
	for i := 2; i <= 4; i++ {
		// 16-core jobs cannot start on the 8 idle cores: the queue
		// stays unchanged, so every iteration does identical work.
		rm.queued = append(rm.queued, mkQueued(i, "u", 16, sim.Hour, sim.Time(i)))
	}
	s := New(Options{}, 0)
	s.Iterate(sim.Minute, rm) // warm scratch buffers
	allocs := testing.AllocsPerRun(50, func() {
		s.Iterate(sim.Minute, rm)
	})
	const maxAllocs = 40
	if allocs > maxAllocs {
		t.Errorf("one Iterate allocates %.0f times, want <= %d", allocs, maxAllocs)
	}
}

// TestIterateAllocsIdleTick100k guards the event-driven requeue at
// scale: once a 100k-job iteration has settled and the result is
// recycled, a tick with an unchanged state epoch must not allocate at
// all — the skip path is a few field comparisons and a pooled result.
func TestIterateAllocsIdleTick100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-job fixture")
	}
	s, rm := setupLargeQueue(100000, 4096)
	s.Recycle(s.Iterate(sim.Minute, rm)) // settle and warm the pool
	now := 2 * sim.Minute
	allocs := testing.AllocsPerRun(100, func() {
		now += sim.Second // stays far below the earliest walltime release
		s.Recycle(s.Iterate(now, rm))
	})
	if allocs > 0 {
		t.Errorf("idle tick allocates %.0f times, want 0", allocs)
	}
}

// TestIterateAllocsBusyTick100k pins the steady-state allocation
// budget of a busy 100k-job tick: each round submits one job (forcing
// a full table refill, re-sort and final planning walk) and the
// iteration must stay within a constant budget — the per-job work all
// runs in reused scratch (SoA table, segment arenas, pooled results).
func TestIterateAllocsBusyTick100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-job fixture")
	}
	s, rm := setupLargeQueue(100000, 4096)
	s.Recycle(s.Iterate(sim.Minute, rm)) // settle: fills arenas and pool
	now := 2 * sim.Minute
	id := 1000000
	allocs := testing.AllocsPerRun(5, func() {
		now += sim.Second
		rm.queued = append(rm.queued, mkQueued(id, "u99", 32, 2*sim.Hour, now))
		rm.bumpQueue()
		id++
		s.Recycle(s.Iterate(now, rm))
	})
	// Budget: the submitted job itself, the queue append, and bounded
	// bookkeeping — nothing proportional to the 100k-job table.
	const maxAllocs = 24
	if allocs > maxAllocs {
		t.Errorf("busy tick allocates %.0f times, want <= %d", allocs, maxAllocs)
	}
}
