package core

import (
	"testing"

	"repro/internal/job"
	"repro/internal/sim"
)

// TestIterateAllocs bounds the allocations of one scheduling iteration
// on a small steady-state fixture (running jobs, blocked queue, no
// dynamic requests). The iteration reuses the scheduler's scratch
// profiles, so the remaining allocations are the RM snapshot copies,
// the priority ordering, and the result — all O(queue), none O(queue ×
// requests).
func TestIterateAllocs(t *testing.T) {
	rm := newTestRM(2, 8)
	run := &job.Job{ID: 1, Cred: job.Credentials{User: "r"}, Cores: 8, Walltime: sim.Hour}
	rm.addRunning(run)
	for i := 2; i <= 4; i++ {
		// 16-core jobs cannot start on the 8 idle cores: the queue
		// stays unchanged, so every iteration does identical work.
		rm.queued = append(rm.queued, mkQueued(i, "u", 16, sim.Hour, sim.Time(i)))
	}
	s := New(Options{}, 0)
	s.Iterate(sim.Minute, rm) // warm scratch buffers
	allocs := testing.AllocsPerRun(50, func() {
		s.Iterate(sim.Minute, rm)
	})
	const maxAllocs = 40
	if allocs > maxAllocs {
		t.Errorf("one Iterate allocates %.0f times, want <= %d", allocs, maxAllocs)
	}
}
