package core

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/sim"
)

// trackedRM wraps testRM with core.ChangeTracker/QueueSnapshotter so
// tests can exercise the order cache, the QueueRef fast path and the
// event-driven skip. Scheduler-driven mutations bump epochs here;
// test-driver mutations must call bump/bumpQueue themselves.
type trackedRM struct {
	testRM
	epoch  uint64
	qepoch uint64
}

func (r *trackedRM) StateEpoch() uint64   { return r.epoch }
func (r *trackedRM) QueueEpoch() uint64   { return r.qepoch }
func (r *trackedRM) QueueRef() []*job.Job { return r.queued }
func (r *trackedRM) bump()                { r.epoch++ }
func (r *trackedRM) bumpQueue()           { r.epoch++; r.qepoch++ }

func (r *trackedRM) StartJob(j *job.Job) (cluster.Alloc, error) {
	r.bumpQueue()
	return r.testRM.StartJob(j)
}

func (r *trackedRM) GrantDyn(req *job.DynRequest) (cluster.Alloc, error) {
	r.bump()
	return r.testRM.GrantDyn(req)
}

func (r *trackedRM) RejectDyn(req *job.DynRequest, reason string) {
	r.bump()
	r.testRM.RejectDyn(req, reason)
}

func (r *trackedRM) Preempt(j *job.Job) error {
	r.bumpQueue()
	return r.testRM.Preempt(j)
}

// oracleSched replays the retained full-rebuild planning path: flat
// profiles rebuilt from the cluster state for every dynamic request
// and for the final walk, full-queue planJobs with no caching, a
// stable re-sort every iteration. It is the behavioural oracle the
// incremental scheduler (segmented profiles, cached base plans, order
// cache, event-driven skip) is differenced against.
type oracleSched struct {
	opts Options
	fair *fairness.Tracker
	fs   *Fairshare
}

func newOracle(opts Options) *oracleSched {
	if opts.Config == nil {
		opts.Config = config.Default()
	}
	if opts.Weights == (PriorityWeights{}) {
		opts.Weights = DefaultWeights()
	}
	return &oracleSched{
		opts: opts,
		fair: fairness.NewTracker(opts.Config.Fairness, 0),
		fs:   NewFairshare(24*sim.Hour, 0.7),
	}
}

func (o *oracleSched) maxHeld() int {
	d := o.opts.Config.ReservationDepth
	if o.opts.Config.ReservationDelayDepth > d {
		d = o.opts.Config.ReservationDelayDepth
	}
	return d
}

func (o *oracleSched) iterate(now sim.Time, rm ResourceManager) *IterationResult {
	o.fair.Advance(now)
	o.fs.Advance(now)
	res := &IterationResult{Now: now}
	ordered := append([]*job.Job(nil), rm.QueuedJobs()...)
	SortByPriority(ordered, now, o.opts.Weights, o.fs)
	for _, req := range rm.DynRequests() {
		res.DynDecisions = append(res.DynDecisions, o.processDyn(now, rm, req, ordered))
	}
	startNowBlocked := false
	if o.opts.StrictSystemPriority {
		for _, j := range ordered {
			if j.SystemPriority > 0 {
				startNowBlocked = true
				break
			}
		}
	}
	final := buildProfile(now, rm.Cluster(), rm.ActiveJobs())
	heldBlocked := 0
	anyBlocked := false
	for _, j := range ordered {
		start := final.FindSlot(j.Cores, j.Walltime, now)
		suppressed := (startNowBlocked && j.SystemPriority == 0) ||
			(anyBlocked && o.opts.Config.BackfillPolicy == "NONE")
		if start == now && !suppressed {
			j.Backfilled = anyBlocked
			alloc, err := rm.StartJob(j)
			if err == nil && alloc != nil {
				if anyBlocked {
					res.Backfilled = append(res.Backfilled, j)
				} else {
					res.Started = append(res.Started, j)
				}
				o.fair.ForgetJob(j.ID)
				final.AddHold(now, holdEnd(now, j.Walltime), j.Cores)
				continue
			}
			j.Backfilled = false
			anyBlocked = true
			continue
		}
		if start > now {
			anyBlocked = true
		}
		if start > now && start < sim.Forever && heldBlocked < o.opts.Config.ReservationDepth {
			heldBlocked++
			final.AddHold(start, holdEnd(start, j.Walltime), j.Cores)
			res.Reservations = append(res.Reservations, Planned{Job: j, Start: start, Held: true})
		}
	}
	return res
}

func (o *oracleSched) processDyn(now sim.Time, rm ResourceManager, req *job.DynRequest, ordered []*job.Job) DynDecision {
	dec := DynDecision{Req: req}
	cl := rm.Cluster()
	need := req.TotalCores()
	if err := req.Validate(); err != nil {
		rm.RejectDyn(req, err.Error())
		dec.Reason = err.Error()
		return dec
	}
	if !req.Job.Active() {
		dec.Reason = "job no longer active"
		rm.RejectDyn(req, dec.Reason)
		return dec
	}
	if cl.IdleCores() < need {
		dur := req.Job.RemainingWalltime(now)
		if dur <= 0 {
			dur = sim.Second
		}
		dec.AvailableAt = buildProfile(now, cl, rm.ActiveJobs()).FindSlot(need, dur, now)
		if req.Negotiable() && !req.Expired(now) {
			dec.Deferred = true
			return dec
		}
		dec.Reason = fmt.Sprintf("insufficient resources (%d idle, %d needed; estimated available %s)",
			cl.IdleCores(), need, sim.FormatTime(dec.AvailableAt))
		rm.RejectDyn(req, dec.Reason)
		return dec
	}
	evolveEnd := req.Job.StartTime + req.Job.Walltime
	if evolveEnd <= now {
		evolveEnd = now + sim.Second
	}
	baseP := buildProfile(now, cl, rm.ActiveJobs())
	basePlans := planJobs(baseP, ordered, now, o.maxHeld())
	measured, _ := delaySet(basePlans, o.opts.Config.ReservationDelayDepth)
	candP := buildProfile(now, cl, rm.ActiveJobs())
	candP.AddHold(now, evolveEnd, need)
	candPlans := planJobs(candP, ordered, now, o.maxHeld())
	starts := startsByID(candPlans)
	delays := make([]fairness.JobDelay, 0, len(measured))
	for _, p := range measured {
		cand := starts[p.Job.ID]
		d := cand - p.Start
		if cand == sim.Forever || p.Start == sim.Forever {
			d = 0
			if cand == sim.Forever && p.Start < sim.Forever {
				d = evolveEnd - now
			}
		}
		if d < 0 {
			d = 0
		}
		delays = append(delays, fairness.JobDelay{Job: p.Job, Delay: d})
	}
	dec.Delays = delays
	verdict := o.fair.Evaluate(req.Job.Cred, delays)
	if !verdict.Allowed {
		if req.Negotiable() && !req.Expired(now) {
			dec.Deferred = true
			dec.Reason = verdict.Reason
			return dec
		}
		dec.Reason = verdict.Reason
		rm.RejectDyn(req, dec.Reason)
		return dec
	}
	alloc, err := rm.GrantDyn(req)
	if err != nil || alloc == nil {
		dec.Reason = fmt.Sprintf("allocation failed: %v", err)
		rm.RejectDyn(req, dec.Reason)
		return dec
	}
	o.fair.Charge(req.Job.Cred, delays)
	dec.Granted = true
	return dec
}

// --- randomized scenario machinery ---

// scnJob is a position-addressed job spec, instantiated once per RM so
// the two sides mutate independent object graphs.
type scnJob struct {
	id      int
	user    string
	cores   int
	wall    sim.Duration
	submit  sim.Time
	sys     int64
	class   job.Class
	running bool
}

type scnDyn struct {
	jobID    int
	cores    int
	deadline sim.Duration // 0 = non-negotiable, else now+deadline
}

type scnStep struct {
	now      sim.Time
	complete []int // job IDs to complete before iterating
	submit   []scnJob
	dyn      []scnDyn
}

type scenario struct {
	nodes, ppn int
	jobs       []scnJob
	steps      []scnStep
	policy     fairness.Policy
	target     sim.Duration
	single     sim.Duration
	strict     bool
	noBackfill bool
	resDepth   int
	delayDepth int
}

func genScenario(rng *rand.Rand) scenario {
	sc := scenario{
		nodes:      4 + rng.Intn(12),
		ppn:        8,
		policy:     fairness.Policy(rng.Intn(4)),
		target:     sim.Duration(1+rng.Intn(240)) * sim.Minute,
		single:     sim.Duration(1+rng.Intn(120)) * sim.Minute,
		strict:     rng.Intn(4) == 0,
		noBackfill: rng.Intn(4) == 0,
		resDepth:   1 + rng.Intn(6),
		delayDepth: 1 + rng.Intn(6),
	}
	id := 1
	mk := func(running bool) scnJob {
		j := scnJob{
			id:      id,
			user:    fmt.Sprintf("u%d", rng.Intn(6)),
			cores:   1 + rng.Intn(2*sc.ppn),
			wall:    sim.Duration(5+rng.Intn(300)) * sim.Minute,
			submit:  sim.Duration(rng.Intn(600)) * sim.Second,
			running: running,
		}
		if rng.Intn(10) == 0 {
			j.sys = int64(1 + rng.Intn(3))
		}
		if running && rng.Intn(2) == 0 {
			j.class = job.Evolving
		}
		id++
		return j
	}
	totalCores := sc.nodes * sc.ppn
	used := 0
	for used < totalCores*2/3 {
		j := mk(true)
		if used+j.cores > totalCores {
			break
		}
		used += j.cores
		sc.jobs = append(sc.jobs, j)
	}
	for n := 3 + rng.Intn(20); n > 0; n-- {
		sc.jobs = append(sc.jobs, mk(false))
	}
	now := sim.Time(10 * sim.Minute)
	for step := 0; step < 12; step++ {
		st := scnStep{now: now}
		for _, j := range sc.jobs {
			if j.running && rng.Intn(8) == 0 {
				st.complete = append(st.complete, j.id)
			}
		}
		if rng.Intn(2) == 0 {
			j := mk(false)
			j.submit = now
			st.submit = append(st.submit, j)
			sc.jobs = append(sc.jobs, j)
		}
		for _, j := range sc.jobs {
			if j.running && j.class == job.Evolving && rng.Intn(6) == 0 {
				d := scnDyn{jobID: j.id, cores: 1 + rng.Intn(sc.ppn)}
				if rng.Intn(3) == 0 {
					d.deadline = sim.Duration(rng.Intn(40)) * sim.Minute
				}
				st.dyn = append(st.dyn, d)
			}
		}
		sc.steps = append(sc.steps, st)
		now += sim.Duration(1+rng.Intn(45)) * sim.Minute
	}
	return sc
}

func (sc scenario) options() Options {
	cfg := config.Default()
	cfg.ReservationDepth = sc.resDepth
	cfg.ReservationDelayDepth = sc.delayDepth
	if sc.noBackfill {
		cfg.BackfillPolicy = "NONE"
	}
	f := fairness.NewConfig(sc.policy)
	f.Interval = sim.Hour
	for u := 0; u < 6; u++ {
		f.Set(fairness.KindUser, fmt.Sprintf("u%d", u), fairness.Limits{
			PermSet: true, Perm: true,
			TargetDelayTime: sc.target,
			SingleDelayTime: sc.single,
		})
	}
	cfg.Fairness = f
	return Options{Config: cfg, StrictSystemPriority: sc.strict}
}

// instance is one independent materialization of a scenario.
type instance struct {
	rm   ResourceManager
	jobs map[int]*job.Job
	// track mirrors epoch bumps when the RM is tracked.
	track *trackedRM
	base  *testRM
}

func (sc scenario) instantiate(tracked bool) *instance {
	var in instance
	if tracked {
		in.track = &trackedRM{testRM: *newTestRM(sc.nodes, sc.ppn)}
		in.track.rejected = make(map[job.ID]string)
		in.base = &in.track.testRM
		in.rm = in.track
	} else {
		in.base = newTestRM(sc.nodes, sc.ppn)
		in.rm = in.base
	}
	in.jobs = make(map[int]*job.Job)
	for _, s := range sc.jobs {
		if !s.running && len(sc.steps) > 0 {
			// Later-submitted jobs enter via steps.
			isInitial := true
			for _, st := range sc.steps {
				for _, sub := range st.submit {
					if sub.id == s.id {
						isInitial = false
					}
				}
			}
			if !isInitial {
				continue
			}
		}
		j := &job.Job{
			ID: job.ID(s.id), Cred: job.Credentials{User: s.user, Group: "g"},
			Cores: s.cores, Walltime: s.wall, SubmitTime: s.submit,
			SystemPriority: s.sys, Class: s.class,
		}
		in.jobs[s.id] = j
		if s.running {
			in.base.addRunning(j)
		} else {
			j.State = job.Queued
			in.base.queued = append(in.base.queued, j)
		}
	}
	return &in
}

// applyStep mutates the instance and reports whether anything actually
// changed (listed mutations can be no-ops, e.g. completing a job that
// already finished — those must not defeat the skip comparison).
func (in *instance) applyStep(st scnStep) bool {
	mutated := false
	for _, id := range st.complete {
		j := in.jobs[id]
		if j == nil || !j.Active() {
			continue
		}
		mutated = true
		in.base.cl.Release(j.ID)
		for i, a := range in.base.active {
			if a.ID == j.ID {
				in.base.active = append(in.base.active[:i], in.base.active[i+1:]...)
				break
			}
		}
		j.State = job.Completed
		j.EndTime = st.now
		if in.track != nil {
			in.track.bump()
		}
	}
	for _, s := range st.submit {
		j := &job.Job{
			ID: job.ID(s.id), Cred: job.Credentials{User: s.user, Group: "g"},
			Cores: s.cores, Walltime: s.wall, SubmitTime: s.submit,
			SystemPriority: s.sys, Class: s.class, State: job.Queued,
		}
		in.jobs[s.id] = j
		in.base.queued = append(in.base.queued, j)
		mutated = true
		if in.track != nil {
			in.track.bumpQueue()
		}
	}
	for _, d := range st.dyn {
		j := in.jobs[d.jobID]
		if j == nil || j.State != job.Running {
			continue
		}
		r := &job.DynRequest{Job: j, Cores: d.cores, IssuedAt: st.now}
		if d.deadline > 0 {
			r.Deadline = st.now + d.deadline
		}
		j.State = job.DynQueued
		in.base.dyn = append(in.base.dyn, r)
		mutated = true
		if in.track != nil {
			in.track.bump()
		}
	}
	return mutated
}

func idsOf(jobs []*job.Job) []job.ID {
	out := make([]job.ID, len(jobs))
	for i, j := range jobs {
		out[i] = j.ID
	}
	return out
}

func sameIDs(a, b []job.ID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func compareResults(t *testing.T, step int, got, want *IterationResult, full bool) {
	t.Helper()
	if !sameIDs(idsOf(got.Started), idsOf(want.Started)) {
		t.Fatalf("step %d: started %v, oracle %v", step, idsOf(got.Started), idsOf(want.Started))
	}
	if !sameIDs(idsOf(got.Backfilled), idsOf(want.Backfilled)) {
		t.Fatalf("step %d: backfilled %v, oracle %v", step, idsOf(got.Backfilled), idsOf(want.Backfilled))
	}
	if len(got.DynDecisions) != len(want.DynDecisions) {
		t.Fatalf("step %d: %d dyn decisions, oracle %d", step, len(got.DynDecisions), len(want.DynDecisions))
	}
	for i := range got.DynDecisions {
		g, w := got.DynDecisions[i], want.DynDecisions[i]
		if g.Req.Job.ID != w.Req.Job.ID || g.Granted != w.Granted || g.Deferred != w.Deferred ||
			g.Reason != w.Reason || g.AvailableAt != w.AvailableAt {
			t.Fatalf("step %d: dyn[%d] = {job %v granted %v deferred %v avail %v %q}, oracle {job %v granted %v deferred %v avail %v %q}",
				step, i, g.Req.Job.ID, g.Granted, g.Deferred, g.AvailableAt, g.Reason,
				w.Req.Job.ID, w.Granted, w.Deferred, w.AvailableAt, w.Reason)
		}
		if len(g.Delays) != len(w.Delays) {
			t.Fatalf("step %d: dyn[%d] measured %d delays, oracle %d", step, i, len(g.Delays), len(w.Delays))
		}
		for k := range g.Delays {
			if g.Delays[k].Job.ID != w.Delays[k].Job.ID || g.Delays[k].Delay != w.Delays[k].Delay {
				t.Fatalf("step %d: dyn[%d] delay[%d] = (%v, %v), oracle (%v, %v)",
					step, i, k, g.Delays[k].Job.ID, g.Delays[k].Delay, w.Delays[k].Job.ID, w.Delays[k].Delay)
			}
		}
	}
	if !full {
		return
	}
	if len(got.Reservations) != len(want.Reservations) {
		t.Fatalf("step %d: %d reservations, oracle %d", step, len(got.Reservations), len(want.Reservations))
	}
	for i := range got.Reservations {
		g, w := got.Reservations[i], want.Reservations[i]
		if g.Job.ID != w.Job.ID || g.Start != w.Start {
			t.Fatalf("step %d: reservation[%d] = (%v, %v), oracle (%v, %v)",
				step, i, g.Job.ID, g.Start, w.Job.ID, w.Start)
		}
	}
}

// TestSchedulerDifferential drives the incremental scheduler and the
// full-rebuild oracle through identical randomized job mixes and
// dynamic-request schedules and requires identical decisions — grant,
// reject, defer, start, backfill, reservation, and the measured delay
// vectors behind every fairness verdict. Both RM flavours are covered:
// the tracked one exercises the order cache, QueueRef and the
// event-driven skip; the plain one the uncached paths.
//
// Between mutation steps the schedule interleaves frozen-epoch idle
// ticks against the incremental side only: the tracked RM must
// short-circuit them and the plain RM must replan them to the same
// fixed point, and in neither implementation may an idle tick mutate
// the RM — otherwise the instance silently diverges from the oracle
// and the next step's comparison unmasks it.
func TestSchedulerDifferential(t *testing.T) {
	for seed := int64(1); seed <= 25; seed++ {
		for _, tracked := range []bool{true, false} {
			seed, tracked := seed, tracked
			t.Run(fmt.Sprintf("seed-%d-tracked-%v", seed, tracked), func(t *testing.T) {
				sc := genScenario(rand.New(rand.NewSource(seed)))
				opts := sc.options()
				inA := sc.instantiate(tracked)
				inB := sc.instantiate(false)
				sched := New(opts, 0)
				oracle := newOracle(sc.options()) // independent fairness state
				for i, st := range sc.steps {
					// Stamp the RMs' virtual clock so StartJob records
					// real start times (a live RM does the same); a job
					// started with StartTime 0 would look like a
					// walltime overrun releasing its cores immediately,
					// and same-instant replans would cascade phantom
					// starts instead of reaching a fixed point.
					inA.base.now = st.now
					inB.base.now = st.now
					mutated := inA.applyStep(st)
					inB.applyStep(st)
					resA := sched.Iterate(st.now, inA.rm)
					resB := oracle.iterate(st.now, inB.rm)
					compareResults(t, i, resA, resB, mutated || !tracked)
					sched.Recycle(resA)
					// Settle phase: a single pass is deliberately not
					// idempotent (StrictSystemPriority computes its
					// suppression flag before the loop, so the tick that
					// starts the system job still suppresses everyone
					// behind it; deferred dyn decisions can likewise fire
					// a round late). Re-iterate both implementations at
					// the same now, still in lockstep with the oracle,
					// until a round changes nothing.
					maxSettle := len(inA.base.queued) + len(inA.base.dyn) + 2
					for round := 0; ; round++ {
						if round >= maxSettle {
							t.Fatalf("step %d: no fixed point after %d settle rounds", i, round)
						}
						nq, na, nd := len(inA.base.queued), len(inA.base.active), len(inA.base.dyn)
						sA := sched.Iterate(st.now, inA.rm)
						sB := oracle.iterate(st.now, inB.rm)
						// A settled tracked round may skip, returning a
						// degenerate result with no reservations; compare
						// the decision set only.
						compareResults(t, i, sA, sB, !tracked)
						quiet := len(sA.Started)+len(sA.Backfilled)+sA.GrantedCount() == 0
						sched.Recycle(sA)
						if quiet && len(inA.base.queued) == nq && len(inA.base.active) == na && len(inA.base.dyn) == nd {
							break
						}
					}
					for tick := 0; tick < 2; tick++ {
						nq, na, nd := len(inA.base.queued), len(inA.base.active), len(inA.base.dyn)
						var e0, q0 uint64
						if inA.track != nil {
							e0, q0 = inA.track.epoch, inA.track.qepoch
						}
						idle := sched.Iterate(st.now, inA.rm)
						if len(idle.Started)+len(idle.Backfilled)+idle.GrantedCount() != 0 {
							t.Fatalf("step %d idle tick %d made decisions: %d started, %d backfilled, %d granted",
								i, tick, len(idle.Started), len(idle.Backfilled), idle.GrantedCount())
						}
						sched.Recycle(idle)
						if len(inA.base.queued) != nq || len(inA.base.active) != na || len(inA.base.dyn) != nd {
							t.Fatalf("step %d idle tick %d mutated the RM", i, tick)
						}
						if inA.track != nil && (inA.track.epoch != e0 || inA.track.qepoch != q0) {
							t.Fatalf("step %d idle tick %d bumped epochs %d/%d → %d/%d",
								i, tick, e0, q0, inA.track.epoch, inA.track.qepoch)
						}
					}
				}
			})
		}
	}
}

// TestIterateSkipFrozenState pins the event-driven requeue contract: a
// tracked RM whose epoch does not change yields no-op iterations (and,
// by the differential above, no missed starts), while any mutation —
// or crossing the earliest walltime release — resumes full planning.
func TestIterateSkipFrozenState(t *testing.T) {
	rm := &trackedRM{testRM: *newTestRM(2, 8)}
	rm.rejected = make(map[job.ID]string)
	run := &job.Job{ID: 1, Cred: job.Credentials{User: "r"}, Cores: 8, Walltime: sim.Hour}
	rm.addRunning(run)
	rm.bump()
	for i := 2; i <= 4; i++ {
		rm.queued = append(rm.queued, mkQueued(i, "u", 16, sim.Hour, sim.Time(i)))
		rm.bumpQueue()
	}
	s := New(Options{}, 0)
	res := s.Iterate(sim.Minute, rm)
	if len(res.Reservations) == 0 {
		t.Fatal("settle iteration should reserve blocked jobs")
	}
	s.Recycle(res)

	// Frozen state before the release horizon: skipped.
	res = s.Iterate(2*sim.Minute, rm)
	if len(res.Started)+len(res.Backfilled)+len(res.Reservations)+len(res.DynDecisions) != 0 {
		t.Fatal("frozen-state iteration must be a no-op")
	}
	s.Recycle(res)

	// A queue mutation resumes planning.
	rm.queued = append(rm.queued, mkQueued(5, "u", 16, sim.Hour, 3*sim.Minute))
	rm.bumpQueue()
	res = s.Iterate(3*sim.Minute, rm)
	if len(res.Reservations) == 0 {
		t.Fatal("mutated queue must be replanned")
	}
	s.Recycle(res)

	// Crossing the release horizon (the running job's walltime end)
	// resumes planning even without an epoch bump: the waiting 16-core
	// jobs must start on the freed cores. Model the completion the way
	// a real RM would (release + epoch bump), then also verify that a
	// time-only horizon crossing replans.
	res = s.Iterate(sim.Hour+sim.Minute, rm)
	if len(res.Reservations) == 0 && len(res.Started) == 0 {
		t.Fatal("horizon crossing must be replanned")
	}
	s.Recycle(res)
}
