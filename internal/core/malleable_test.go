package core

import (
	"fmt"
	"testing"

	"repro/internal/cluster"
	"repro/internal/job"
	"repro/internal/profile"
	"repro/internal/sim"
)

// malleableRM extends testRM with the MalleableManager capability.
type malleableRM struct {
	testRM
	shrinks, grows int
}

func (r *malleableRM) ShrinkJob(j *job.Job, cores int) error {
	held := r.cl.AllocOf(j.ID)
	var part cluster.Alloc
	remaining := cores
	for i := len(held) - 1; i >= 0 && remaining > 0; i-- {
		take := held[i].Cores
		if take > remaining {
			take = remaining
		}
		part = append(part, cluster.Slice{NodeID: held[i].NodeID, Cores: take})
		remaining -= take
	}
	if err := r.cl.ReleasePartial(j.ID, part); err != nil {
		return err
	}
	if cores > j.DynCores {
		j.Cores -= cores - j.DynCores
		j.DynCores = 0
	} else {
		j.DynCores -= cores
	}
	r.shrinks++
	return nil
}

func (r *malleableRM) GrowJob(j *job.Job, cores int) (cluster.Alloc, error) {
	alloc := r.cl.Allocate(j.ID, cores)
	if alloc == nil {
		return nil, fmt.Errorf("no resources")
	}
	j.DynCores += cores
	r.grows++
	return alloc, nil
}

func TestSchedulerShrinksMalleableForDynRequest(t *testing.T) {
	rm := &malleableRM{testRM: *newTestRM(2, 8)}
	rm.rejected = make(map[job.ID]string)
	m := &job.Job{ID: 1, Cred: job.Credentials{User: "m"}, Class: job.Malleable,
		Cores: 8, MinCores: 4, MaxCores: 8, Walltime: sim.Hour, State: job.Queued}
	rm.addRunning(m)
	e := &job.Job{ID: 2, Cred: job.Credentials{User: "e"}, Class: job.Evolving,
		Cores: 8, Walltime: sim.Hour, State: job.Queued}
	rm.addRunning(e)
	rm.dyn = []*job.DynRequest{{Job: e, Cores: 4}}
	e.State = job.DynQueued

	s := New(Options{Malleable: true}, 0)
	res := s.Iterate(0, rm)
	if res.GrantedCount() != 1 {
		t.Fatalf("grant failed: %+v", res.DynDecisions)
	}
	if rm.shrinks != 1 {
		t.Errorf("shrinks = %d", rm.shrinks)
	}
	if m.TotalCores() != 4 || e.TotalCores() != 12 {
		t.Errorf("cores after steal: m=%d e=%d", m.TotalCores(), e.TotalCores())
	}
	// The shrink is reported in the iteration result.
	found := false
	for _, rz := range res.Resizes {
		if rz.Job.ID == m.ID && rz.Cores == -4 {
			found = true
		}
	}
	if !found {
		t.Errorf("resizes = %+v", res.Resizes)
	}
}

func TestSchedulerGrowsMalleableFromIdle(t *testing.T) {
	rm := &malleableRM{testRM: *newTestRM(2, 8)}
	rm.rejected = make(map[job.ID]string)
	m := &job.Job{ID: 1, Cred: job.Credentials{User: "m"}, Class: job.Malleable,
		Cores: 8, MinCores: 4, MaxCores: 16, Walltime: sim.Hour, StartTime: 0}
	rm.addRunning(m)
	s := New(Options{Malleable: true}, 0)
	res := s.Iterate(0, rm)
	if rm.grows != 1 || m.TotalCores() != 16 {
		t.Fatalf("grow: grows=%d cores=%d (%+v)", rm.grows, m.TotalCores(), res.Resizes)
	}
}

func TestSchedulerMalleableDisabledByDefault(t *testing.T) {
	rm := &malleableRM{testRM: *newTestRM(2, 8)}
	rm.rejected = make(map[job.ID]string)
	m := &job.Job{ID: 1, Cred: job.Credentials{User: "m"}, Class: job.Malleable,
		Cores: 8, MinCores: 4, MaxCores: 16, Walltime: sim.Hour, StartTime: 0}
	rm.addRunning(m)
	s := New(Options{}, 0) // Malleable off
	s.Iterate(0, rm)
	if rm.grows != 0 || rm.shrinks != 0 {
		t.Error("resizing must be off by default")
	}
}

func TestSchedulerMalleableWithoutCapability(t *testing.T) {
	// Malleable enabled but the RM does not implement the capability:
	// the scheduler degrades gracefully (reject, no panic).
	rm := newTestRM(2, 8)
	m := &job.Job{ID: 1, Cred: job.Credentials{User: "m"}, Class: job.Malleable,
		Cores: 8, MinCores: 4, MaxCores: 8, Walltime: sim.Hour}
	rm.addRunning(m)
	e := &job.Job{ID: 2, Cred: job.Credentials{User: "e"}, Class: job.Evolving,
		Cores: 8, Walltime: sim.Hour}
	rm.addRunning(e)
	rm.dyn = []*job.DynRequest{{Job: e, Cores: 4}}
	e.State = job.DynQueued
	s := New(Options{Malleable: true}, 0)
	res := s.Iterate(0, rm)
	if res.GrantedCount() != 0 {
		t.Error("without the capability the request must be rejected")
	}
}

func TestMoldToFitBounds(t *testing.T) {
	s := New(Options{Moldable: true}, 0)
	pr := newProfileWithFree(10)
	j := &job.Job{Class: job.Moldable, Cores: 16, MinCores: 4, MaxCores: 20, Walltime: sim.Hour}
	if got := s.moldToFit(pr, j, 0); got != 10 {
		t.Errorf("mold = %d, want the 10 available", got)
	}
	// Below the minimum: no mold.
	pr2 := newProfileWithFree(3)
	if got := s.moldToFit(pr2, j, 0); got != 0 {
		t.Errorf("mold below min = %d", got)
	}
	// Abundance clamps at MaxCores.
	pr3 := newProfileWithFree(100)
	if got := s.moldToFit(pr3, j, 0); got != 20 {
		t.Errorf("mold clamp = %d", got)
	}
	// Non-moldable class or disabled option: 0.
	rigid := &job.Job{Class: job.Rigid, Cores: 16, MinCores: 4}
	if s.moldToFit(pr, rigid, 0) != 0 {
		t.Error("rigid jobs never mold")
	}
	off := New(Options{}, 0)
	if off.moldToFit(pr, j, 0) != 0 {
		t.Error("disabled molding")
	}
	// Unset bounds default to the request size.
	plain := &job.Job{Class: job.Moldable, Cores: 8, Walltime: sim.Hour}
	if got := s.moldToFit(newProfileWithFree(100), plain, 0); got != 8 {
		t.Errorf("default bounds mold = %d", got)
	}
}

func TestSchedulerFairshareAccessor(t *testing.T) {
	s := New(Options{}, 0)
	if s.Fairshare() == nil {
		t.Fatal("Fairshare accessor")
	}
	s.Fairshare().Record("u", 100)
	if s.Fairshare().Usage("u") != 100 {
		t.Error("recorded usage")
	}
}

// newProfileWithFree builds a flat profile for moldToFit tests.
func newProfileWithFree(free int) *profile.SegProfile {
	return profile.NewSeg(0, free)
}
