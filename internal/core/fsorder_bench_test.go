package core

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// setupFSQueue builds a fairshare-ordered scheduler state with one
// queued job per user — the 1M-user acceptance shape: after one user's
// completion charge lands, refreshing priority order should repair one
// row, not re-rank a million.
func setupFSQueue(b *testing.B, nUsers int) (*Scheduler, *trackedRM) {
	b.Helper()
	s := fsOrderSched(0.5)
	rm := &trackedRM{testRM: *newTestRM(1, 4)}
	for i := 0; i < nUsers; i++ {
		u := fmt.Sprintf("u%07d", i)
		j := mkQueued(i+1, u, 8, sim.Hour, sim.Time(i)*sim.Time(sim.Second))
		rm.queued = append(rm.queued, j)
		s.fs.Record(u, float64(i%1000+1))
	}
	s.ensureTable(0, rm)
	if !s.table.valid {
		b.Fatal("table not cached in fsOrder mode")
	}
	s.lastRM = rm // normally set by Iterate via noteIteration
	return s, rm
}

// BenchmarkRepairOneUser1M measures the incremental order refresh
// after a single user's usage changes, with one million users queued.
// Acceptance target: ≥50× faster than BenchmarkRebuildOneUser1M, the
// full-rescan oracle doing the same refresh by re-sorting.
func BenchmarkRepairOneUser1M(b *testing.B) {
	s, rm := setupFSQueue(b, 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := fmt.Sprintf("u%07d", i%1_000_000)
		s.fs.Record(u, 1000)
		s.ensureTable(0, rm)
	}
}

func BenchmarkRebuildOneUser1M(b *testing.B) {
	s, rm := setupFSQueue(b, 1_000_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u := fmt.Sprintf("u%07d", i%1_000_000)
		s.fs.Record(u, 1000)
		s.table.valid = false // oracle: no repair, full re-sort
		s.ensureTable(0, rm)
	}
}
