package core

import "testing"

// TestRecycleTwicePanics: under the race detector, recycling a result
// the caller no longer owns must panic instead of corrupting a later
// iteration's backing slices.
func TestRecycleTwicePanics(t *testing.T) {
	if !poolCheckEnabled {
		t.Skip("pool lifetime guard is compiled in only under -race")
	}
	s := New(Options{}, 0)
	res := s.takeResult()
	s.Recycle(res)
	defer func() {
		if recover() == nil {
			t.Fatal("double Recycle must panic under the race detector")
		}
	}()
	s.Recycle(res)
}

// TestRecycleTakeRoundTrip: the generation flips pooled↔live across
// recycle/take cycles, so a legitimate reuse never trips the guard.
func TestRecycleTakeRoundTrip(t *testing.T) {
	if !poolCheckEnabled {
		t.Skip("pool lifetime guard is compiled in only under -race")
	}
	s := New(Options{}, 0)
	res := s.takeResult()
	for i := 0; i < 3; i++ {
		s.Recycle(res)
		got := s.takeResult()
		if got != res {
			t.Fatalf("cycle %d: pool returned a different result", i)
		}
	}
}
