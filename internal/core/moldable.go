package core

import (
	"repro/internal/job"
	"repro/internal/profile"
	"repro/internal/sim"
)

// moldToFit implements moldable jobs (the second class of Feitelson &
// Rudolph's taxonomy, §I): before starting, the batch system may
// adjust a moldable job's request within [MinCores, MaxCores] — down
// so it starts now instead of waiting, or up to use abundant idle
// resources. Returns the chosen size (0 = molding does not help now).
//
// The decision respects the planning profile: the molded allocation
// must stay available for the whole walltime window, so reservations
// are never disturbed.
func (s *Scheduler) moldToFit(p *profile.SegProfile, j *job.Job, now sim.Time) int {
	if !s.opts.Moldable || j.Class != job.Moldable {
		return 0
	}
	min := j.MinCores
	if min <= 0 {
		min = j.Cores
	}
	max := j.MaxCores
	if max < j.Cores {
		max = j.Cores
	}
	avail := p.MinFree(now, holdEnd(now, j.Walltime))
	if avail < min {
		return 0 // cannot start even at the smallest shape
	}
	c := avail
	if c > max {
		c = max
	}
	return c
}
