package core

import (
	"sort"

	"repro/internal/fairtree"
	"repro/internal/job"
	"repro/internal/sim"
)

// jobTable is the scheduler's struct-of-arrays snapshot of the eligible
// queue, sorted by priority. The iteration's hot loops (planning,
// delay measurement, the final start/backfill walk) read cores and
// walltimes from dense parallel slices instead of chasing 100k
// *job.Job pointers; the pointers stay as the stable API at the edges
// (StartJob, results, fairness bookkeeping). All storage is scratch
// reused across iterations.
//
// When the ResourceManager reports queue epochs (ChangeTracker) and
// the priority weights are time-invariant (no XFactor, no Fairshare —
// pairwise priority differences then stay constant as jobs age), the
// sorted table survives across iterations and a tick whose queue did
// not change skips the O(n log n) re-sort entirely.
type jobTable struct {
	// Sorted (priority-descending) parallel arrays.
	jobs  []*job.Job
	cores []int32
	wall  []sim.Duration
	sys   []int64
	mold  []bool

	// Sort scratch, indexed by pre-sort position.
	prio   []float64
	submit []sim.Time
	id     []job.ID
	perm   []int32

	// users holds each sorted position's interned share-tree leaf,
	// filled only in fairshare-ordered mode; it is what lets repair
	// find the jobs of a dirty entity with a flat int32 scan.
	users []int32

	// anySys caches whether any eligible job carries SystemPriority,
	// for the StrictSystemPriority gate.
	anySys bool

	// Order-cache state: valid marks the sorted arrays reusable while
	// the RM's queue epoch stays at queueEpoch; fsSerial is the share
	// tree change-log serial the cached order reflects.
	valid      bool
	queueEpoch uint64
	fsSerial   uint64

	// repair scratch.
	dirtyBits   []uint64
	extractRows []extractRow

	// repairs counts successful incremental repairs, so tests can
	// assert the fast path actually engaged rather than silently
	// falling back to a full fill.
	repairs uint64
}

// extractRow is one dirty-entity job pulled out of the sorted table
// during repair, carrying every column plus its recomputed sort key.
type extractRow struct {
	j      *job.Job
	prio   float64
	submit sim.Time
	id     job.ID
	wall   sim.Duration
	sys    int64
	cores  int32
	user   int32
	mold   bool
}

func (t *jobTable) len() int { return len(t.jobs) }

// grow resizes every array to n, reusing capacity.
func (t *jobTable) grow(n int) {
	if cap(t.jobs) < n {
		t.jobs = make([]*job.Job, n)
		t.cores = make([]int32, n)
		t.wall = make([]sim.Duration, n)
		t.sys = make([]int64, n)
		t.mold = make([]bool, n)
		t.users = make([]int32, n)
		t.prio = make([]float64, n)
		t.submit = make([]sim.Time, n)
		t.id = make([]job.ID, n)
		t.perm = make([]int32, n)
		return
	}
	t.jobs = t.jobs[:n]
	t.cores = t.cores[:n]
	t.wall = t.wall[:n]
	t.sys = t.sys[:n]
	t.mold = t.mold[:n]
	t.users = t.users[:n]
	t.prio = t.prio[:n]
	t.submit = t.submit[:n]
	t.id = t.id[:n]
	t.perm = t.perm[:n]
}

// fill loads the eligible jobs, computes priority keys, sorts a
// permutation, and gathers the hot fields into priority order. The
// input slice is read only — never retained or reordered (it may be
// the RM's own queue storage via QueueSnapshotter).
func (t *jobTable) fill(eligible []*job.Job, now sim.Time, w PriorityWeights, fs *Fairshare) {
	n := len(eligible)
	t.grow(n)
	for i, j := range eligible {
		t.prio[i] = w.Priority(j, now, fs)
		t.submit[i] = j.SubmitTime
		t.id[i] = j.ID
		t.perm[i] = int32(i)
	}
	sort.Sort((*tableSorter)(t))
	fsOrder := fs != nil && w.Fairshare != 0 && w.QueueTime == 0 && w.XFactor == 0 && w.Resource == 0
	anySys := false
	for k, pi := range t.perm {
		j := eligible[pi]
		t.jobs[k] = j
		t.cores[k] = int32(j.Cores)
		t.wall[k] = j.Walltime
		t.sys[k] = j.SystemPriority
		if j.SystemPriority > 0 {
			anySys = true
		}
		t.mold[k] = j.Class == job.Moldable
		if fsOrder {
			t.users[k] = int32(fs.UserID(j.Cred.User))
		}
	}
	t.anySys = anySys
}

// repair restores priority order after fairshare usage changed for the
// given dirty entities, without re-sorting the queue. It is only valid
// in fairshare-ordered mode (Fairshare weight alone): there, priority
// is sys·1e12 + w·factor(user), uniform decay scales every entity's
// usage share by the same positive constant, and entity births/deaths
// shift every level target equally — so the relative order of jobs
// whose entity usage did NOT change is invariant, and only the dirty
// entities' jobs (k of n) can move. Those are extracted, re-keyed with
// current factors, sorted among themselves, and merged back with
// binary-searched insertion points: O(n) flat scans and column moves
// plus O(k log n) priority evaluations, versus the O(n log n)
// full-queue re-sort. The result is byte-identical to a full fill
// because both orders are the same unique (priority, submit, id) total
// order evaluated at the same instant.
//
// Returns false when the affected set is too large for repair to beat
// a rebuild; the caller falls back to fill.
func (t *jobTable) repair(dirty []fairtree.NodeID, now sim.Time, w PriorityWeights, fs *Fairshare) bool {
	n := t.len()
	if n == 0 {
		return true
	}
	maxID := fairtree.NodeID(0)
	for _, d := range dirty {
		if d > maxID {
			maxID = d
		}
	}
	words := int(maxID)/64 + 1
	if cap(t.dirtyBits) < words {
		t.dirtyBits = make([]uint64, words)
	} else {
		t.dirtyBits = t.dirtyBits[:words]
		clear(t.dirtyBits)
	}
	for _, d := range dirty {
		if d > 0 {
			t.dirtyBits[int(d)/64] |= 1 << (uint32(d) % 64)
		}
	}
	// Flat scan of the interned-user column for affected positions,
	// parked in the perm scratch.
	k := 0
	for i := 0; i < n; i++ {
		u := t.users[i]
		if u >= 0 && fairtree.NodeID(u) <= maxID && t.dirtyBits[u/64]&(1<<(uint32(u)%64)) != 0 {
			t.perm[k] = int32(i)
			k++
		}
	}
	if k == 0 {
		return true
	}
	if k*8 > n {
		return false
	}
	// Pull the affected rows out with freshly evaluated priorities.
	rows := t.extractRows
	if cap(rows) < k {
		rows = make([]extractRow, k)
	}
	rows = rows[:k]
	for x := 0; x < k; x++ {
		i := int(t.perm[x])
		j := t.jobs[i]
		rows[x] = extractRow{
			j:      j,
			prio:   w.Priority(j, now, fs),
			submit: j.SubmitTime,
			id:     j.ID,
			wall:   t.wall[i],
			sys:    t.sys[i],
			cores:  t.cores[i],
			user:   t.users[i],
			mold:   t.mold[i],
		}
	}
	t.extractRows = rows[:0]
	// Compact the untouched rows in place (order preserved).
	wi := int(t.perm[0])
	next := 0
	for i := wi; i < n; i++ {
		if next < k && int(t.perm[next]) == i {
			next++
			continue
		}
		t.moveRow(wi, i)
		wi++
	}
	m := n - k // untouched count
	// Order the extracted rows by the same unique total order the
	// full sort uses.
	sort.Slice(rows, func(a, b int) bool {
		return rowBefore(rows[a].prio, rows[a].submit, rows[a].id, rows[b].prio, rows[b].submit, rows[b].id)
	})
	// Insertion points into the untouched run, binary-searched with
	// pivot priorities evaluated on the fly. perm is free again.
	ins := t.perm[:k]
	for x := 0; x < k; x++ {
		lo, hi := 0, m
		if x > 0 {
			lo = int(ins[x-1]) // rows are sorted: points are non-decreasing
		}
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			pj := t.jobs[mid]
			if rowBefore(w.Priority(pj, now, fs), pj.SubmitTime, pj.ID, rows[x].prio, rows[x].submit, rows[x].id) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		ins[x] = int32(lo)
	}
	// Single backward merge: shift untouched blocks right and drop
	// each extracted row into its slot. Go's copy is memmove, so the
	// overlapping block shifts are safe.
	wi = n - 1
	uj := m - 1
	for x := k - 1; x >= 0; x-- {
		if cnt := uj - int(ins[x]) + 1; cnt > 0 {
			t.moveRows(wi-cnt+1, int(ins[x]), cnt)
			wi -= cnt
			uj = int(ins[x]) - 1
		}
		t.jobs[wi] = rows[x].j
		t.cores[wi] = rows[x].cores
		t.wall[wi] = rows[x].wall
		t.sys[wi] = rows[x].sys
		t.mold[wi] = rows[x].mold
		t.users[wi] = rows[x].user
		wi--
	}
	return true
}

// rowBefore is the table's total sort order: priority descending,
// then submit time, then ID (unique).
func rowBefore(pa float64, sa sim.Time, ia job.ID, pb float64, sb sim.Time, ib job.ID) bool {
	if pa != pb {
		return pa > pb
	}
	if sa != sb {
		return sa < sb
	}
	return ia < ib
}

// moveRow copies one row across every sorted column.
func (t *jobTable) moveRow(dst, src int) {
	t.jobs[dst] = t.jobs[src]
	t.cores[dst] = t.cores[src]
	t.wall[dst] = t.wall[src]
	t.sys[dst] = t.sys[src]
	t.mold[dst] = t.mold[src]
	t.users[dst] = t.users[src]
}

// moveRows block-copies cnt rows from src to dst in every column.
func (t *jobTable) moveRows(dst, src, cnt int) {
	copy(t.jobs[dst:dst+cnt], t.jobs[src:src+cnt])
	copy(t.cores[dst:dst+cnt], t.cores[src:src+cnt])
	copy(t.wall[dst:dst+cnt], t.wall[src:src+cnt])
	copy(t.sys[dst:dst+cnt], t.sys[src:src+cnt])
	copy(t.mold[dst:dst+cnt], t.mold[src:src+cnt])
	copy(t.users[dst:dst+cnt], t.users[src:src+cnt])
}

// tableSorter sorts the permutation by descending priority with the
// same total order as SortByPriority (submit time, then ID, break
// ties), so the unstable sort is deterministic and value-identical to
// the stable slice sort it replaces.
type tableSorter jobTable

func (t *tableSorter) Len() int { return len(t.perm) }

func (t *tableSorter) Swap(a, b int) { t.perm[a], t.perm[b] = t.perm[b], t.perm[a] }

func (t *tableSorter) Less(a, b int) bool {
	pa, pb := t.perm[a], t.perm[b]
	if t.prio[pa] != t.prio[pb] {
		return t.prio[pa] > t.prio[pb]
	}
	if t.submit[pa] != t.submit[pb] {
		return t.submit[pa] < t.submit[pb]
	}
	return t.id[pa] < t.id[pb]
}
