package core

import (
	"sort"

	"repro/internal/job"
	"repro/internal/sim"
)

// jobTable is the scheduler's struct-of-arrays snapshot of the eligible
// queue, sorted by priority. The iteration's hot loops (planning,
// delay measurement, the final start/backfill walk) read cores and
// walltimes from dense parallel slices instead of chasing 100k
// *job.Job pointers; the pointers stay as the stable API at the edges
// (StartJob, results, fairness bookkeeping). All storage is scratch
// reused across iterations.
//
// When the ResourceManager reports queue epochs (ChangeTracker) and
// the priority weights are time-invariant (no XFactor, no Fairshare —
// pairwise priority differences then stay constant as jobs age), the
// sorted table survives across iterations and a tick whose queue did
// not change skips the O(n log n) re-sort entirely.
type jobTable struct {
	// Sorted (priority-descending) parallel arrays.
	jobs  []*job.Job
	cores []int32
	wall  []sim.Duration
	sys   []int64
	mold  []bool

	// Sort scratch, indexed by pre-sort position.
	prio   []float64
	submit []sim.Time
	id     []job.ID
	perm   []int32

	// anySys caches whether any eligible job carries SystemPriority,
	// for the StrictSystemPriority gate.
	anySys bool

	// Order-cache state: valid marks the sorted arrays reusable while
	// the RM's queue epoch stays at queueEpoch.
	valid      bool
	queueEpoch uint64
}

func (t *jobTable) len() int { return len(t.jobs) }

// grow resizes every array to n, reusing capacity.
func (t *jobTable) grow(n int) {
	if cap(t.jobs) < n {
		t.jobs = make([]*job.Job, n)
		t.cores = make([]int32, n)
		t.wall = make([]sim.Duration, n)
		t.sys = make([]int64, n)
		t.mold = make([]bool, n)
		t.prio = make([]float64, n)
		t.submit = make([]sim.Time, n)
		t.id = make([]job.ID, n)
		t.perm = make([]int32, n)
		return
	}
	t.jobs = t.jobs[:n]
	t.cores = t.cores[:n]
	t.wall = t.wall[:n]
	t.sys = t.sys[:n]
	t.mold = t.mold[:n]
	t.prio = t.prio[:n]
	t.submit = t.submit[:n]
	t.id = t.id[:n]
	t.perm = t.perm[:n]
}

// fill loads the eligible jobs, computes priority keys, sorts a
// permutation, and gathers the hot fields into priority order. The
// input slice is read only — never retained or reordered (it may be
// the RM's own queue storage via QueueSnapshotter).
func (t *jobTable) fill(eligible []*job.Job, now sim.Time, w PriorityWeights, fs *Fairshare) {
	n := len(eligible)
	t.grow(n)
	for i, j := range eligible {
		t.prio[i] = w.Priority(j, now, fs)
		t.submit[i] = j.SubmitTime
		t.id[i] = j.ID
		t.perm[i] = int32(i)
	}
	sort.Sort((*tableSorter)(t))
	anySys := false
	for k, pi := range t.perm {
		j := eligible[pi]
		t.jobs[k] = j
		t.cores[k] = int32(j.Cores)
		t.wall[k] = j.Walltime
		t.sys[k] = j.SystemPriority
		if j.SystemPriority > 0 {
			anySys = true
		}
		t.mold[k] = j.Class == job.Moldable
	}
	t.anySys = anySys
}

// tableSorter sorts the permutation by descending priority with the
// same total order as SortByPriority (submit time, then ID, break
// ties), so the unstable sort is deterministic and value-identical to
// the stable slice sort it replaces.
type tableSorter jobTable

func (t *tableSorter) Len() int { return len(t.perm) }

func (t *tableSorter) Swap(a, b int) { t.perm[a], t.perm[b] = t.perm[b], t.perm[a] }

func (t *tableSorter) Less(a, b int) bool {
	pa, pb := t.perm[a], t.perm[b]
	if t.prio[pa] != t.prio[pb] {
		return t.prio[pa] > t.prio[pb]
	}
	if t.submit[pa] != t.submit[pb] {
		return t.submit[pa] < t.submit[pb]
	}
	return t.id[pa] < t.id[pb]
}
