package cluster

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/job"
)

func TestNewCluster(t *testing.T) {
	c := New(15, 8)
	if c.NumNodes() != 15 {
		t.Fatalf("nodes = %d", c.NumNodes())
	}
	if c.TotalCores() != 120 {
		t.Fatalf("total cores = %d", c.TotalCores())
	}
	if c.IdleCores() != 120 || c.UsedCores() != 0 {
		t.Fatal("fresh cluster should be fully idle")
	}
	if c.Node(0).Name != "node0" || c.Node(14).Name != "node14" {
		t.Error("node naming")
	}
	if c.Node(-1) != nil || c.Node(15) != nil {
		t.Error("out-of-range Node() should be nil")
	}
}

func TestAllocateRelease(t *testing.T) {
	c := New(4, 8)
	a := c.Allocate(1, 12)
	if a == nil || a.TotalCores() != 12 {
		t.Fatalf("alloc = %v", a)
	}
	if c.IdleCores() != 20 || c.UsedCores() != 12 {
		t.Errorf("idle=%d used=%d", c.IdleCores(), c.UsedCores())
	}
	if got := c.AllocOf(1).TotalCores(); got != 12 {
		t.Errorf("AllocOf = %d", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.Release(1)
	if c.IdleCores() != 32 {
		t.Errorf("idle after release = %d", c.IdleCores())
	}
	if c.AllocOf(1) != nil {
		t.Error("AllocOf after release should be nil")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateInsufficient(t *testing.T) {
	c := New(2, 8)
	if a := c.Allocate(1, 17); a != nil {
		t.Fatal("allocation should fail")
	}
	if c.UsedCores() != 0 {
		t.Error("failed allocation must not leak cores")
	}
	if a := c.Allocate(1, 0); a != nil {
		t.Error("zero-core allocation should fail")
	}
	if a := c.Allocate(1, -3); a != nil {
		t.Error("negative allocation should fail")
	}
}

func TestAllocatePrefersEmptiestNodes(t *testing.T) {
	c := New(3, 8)
	c.Allocate(1, 6) // fills one node to 6/8
	a := c.Allocate(2, 8)
	// Job 2 should land on a fully idle node, not straddle.
	if len(a) != 1 {
		t.Errorf("8-core alloc should fit one idle node, got %v", a)
	}
}

func TestAllocateNodes(t *testing.T) {
	c := New(4, 8)
	a := c.AllocateNodes(1, 2, 8)
	if a == nil || a.TotalCores() != 16 || len(a) != 2 {
		t.Fatalf("alloc = %v", a)
	}
	for _, s := range a {
		if s.Cores != 8 {
			t.Errorf("ppn violated: %v", a)
		}
	}
	// Only 2 idle nodes remain; a 3-node request must fail cleanly.
	if got := c.AllocateNodes(2, 3, 8); got != nil {
		t.Error("over-subscribed node request should fail")
	}
	if got := c.AllocateNodes(2, 2, 4); got == nil {
		t.Error("2 nodes x 4 ppn should fit on remaining idle nodes")
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c.AllocateNodes(3, 0, 8) != nil || c.AllocateNodes(3, 2, 0) != nil {
		t.Error("degenerate node requests should fail")
	}
}

func TestGrowAllocation(t *testing.T) {
	c := New(4, 8)
	c.Allocate(1, 8)
	grow := c.Allocate(1, 4)
	if grow == nil {
		t.Fatal("grow failed")
	}
	if got := c.AllocOf(1).TotalCores(); got != 12 {
		t.Errorf("total after grow = %d, want 12", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	c.Release(1)
	if c.IdleCores() != 32 {
		t.Error("release after grow must free everything")
	}
}

func TestReleasePartial(t *testing.T) {
	c := New(4, 8)
	c.Allocate(1, 8)
	c.Allocate(1, 8) // grow to two nodes
	alloc := c.AllocOf(1)
	nodes := alloc.Nodes()
	if len(nodes) != 2 {
		t.Fatalf("expected 2 nodes, got %v", alloc)
	}
	// Release half of one node: an arbitrary subset, which SLURM would
	// not allow but our system does.
	if err := c.ReleasePartial(1, Alloc{{NodeID: nodes[0], Cores: 4}}); err != nil {
		t.Fatal(err)
	}
	if got := c.AllocOf(1).TotalCores(); got != 12 {
		t.Errorf("after partial release total = %d, want 12", got)
	}
	if err := c.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Releasing more than held must fail atomically.
	if err := c.ReleasePartial(1, Alloc{{NodeID: nodes[0], Cores: 100}}); err == nil {
		t.Error("over-release should error")
	}
	if got := c.AllocOf(1).TotalCores(); got != 12 {
		t.Error("failed partial release must not change state")
	}
	// Release everything that is left.
	rest := c.AllocOf(1)
	if err := c.ReleasePartial(1, rest); err != nil {
		t.Fatal(err)
	}
	if c.AllocOf(1) != nil {
		t.Error("full partial release should clear allocation")
	}
	if c.IdleCores() != 32 {
		t.Errorf("idle = %d", c.IdleCores())
	}
}

func TestNodeStates(t *testing.T) {
	c := New(3, 8)
	c.Allocate(1, 8)
	// Find the node job 1 landed on.
	nodeID := c.AllocOf(1)[0].NodeID
	affected := c.SetNodeState(nodeID, Down)
	if len(affected) != 1 || affected[0] != 1 {
		t.Errorf("affected = %v", affected)
	}
	if c.TotalCores() != 16 {
		t.Errorf("total cores with one down node = %d", c.TotalCores())
	}
	if c.Node(nodeID).Free() != 0 {
		t.Error("down node must report zero free")
	}
	c.SetNodeState(nodeID, Up)
	if c.TotalCores() != 24 {
		t.Error("node back up")
	}
	if c.SetNodeState(99, Down) != nil {
		t.Error("bogus node id should be a no-op")
	}
	if Up.String() != "up" || Down.String() != "down" || Offline.String() != "offline" {
		t.Error("state stringer")
	}
	if NodeState(9).String() != "nodestate(9)" {
		t.Error("out-of-range state stringer")
	}
}

func TestAllocString(t *testing.T) {
	a := Alloc{{NodeID: 0, Cores: 4}, {NodeID: 2, Cores: 8}}
	if a.String() != "node0:4+node2:8" {
		t.Errorf("String = %q", a.String())
	}
	if got := a.Nodes(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Nodes = %v", got)
	}
}

func TestSnapshot(t *testing.T) {
	c := New(3, 8)
	c.Allocate(1, 5)
	snap := c.Snapshot()
	sum := 0
	for _, f := range snap {
		sum += f
	}
	if sum != c.IdleCores() {
		t.Errorf("snapshot sum %d != idle %d", sum, c.IdleCores())
	}
	// Snapshot must be a copy.
	snap[0] = -99
	if c.Node(0).Free() == -99 {
		t.Error("snapshot aliases live state")
	}
}

// Property: after any random sequence of allocate/release operations,
// the cluster invariants hold and idle+used == total.
func TestClusterAccountingProperty(t *testing.T) {
	f := func(seed int64, ops uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(5, 8)
		live := map[job.ID]bool{}
		next := job.ID(1)
		for i := 0; i < int(ops); i++ {
			if rng.Intn(3) == 0 && len(live) > 0 {
				// Release a random live job.
				for id := range live {
					c.Release(id)
					delete(live, id)
					break
				}
			} else {
				id := next
				next++
				if c.Allocate(id, 1+rng.Intn(12)) != nil {
					live[id] = true
				}
			}
			if err := c.CheckInvariants(); err != nil {
				t.Log(err)
				return false
			}
			if c.IdleCores()+c.UsedCores() != c.TotalCores() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
