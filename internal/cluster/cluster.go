// Package cluster models the compute resources a batch system manages:
// nodes with a fixed number of cores, per-node allocation accounting,
// and node availability states. It is the substrate under both the
// discrete-event simulator and the live daemons (where each mom mirrors
// one Node).
package cluster

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/job"
)

// NodeState captures availability of a node.
type NodeState int

const (
	// Up nodes accept allocations.
	Up NodeState = iota
	// Down nodes failed; their allocations are lost.
	Down
	// Offline nodes were drained by the administrator.
	Offline
)

var nodeStateNames = [...]string{"up", "down", "offline"}

func (s NodeState) String() string {
	if s < 0 || int(s) >= len(nodeStateNames) {
		return fmt.Sprintf("nodestate(%d)", int(s))
	}
	return nodeStateNames[s]
}

// Node is one compute node.
type Node struct {
	ID    int
	Name  string
	Cores int
	State NodeState

	used  int
	owner map[job.ID]int // cores held per job on this node
}

// Used returns the number of cores currently allocated on the node.
func (n *Node) Used() int { return n.used }

// Free returns the number of allocatable cores (zero when not Up).
func (n *Node) Free() int {
	if n.State != Up {
		return 0
	}
	return n.Cores - n.used
}

// HeldBy returns the cores job id holds on this node.
func (n *Node) HeldBy(id job.ID) int { return n.owner[id] }

// Jobs returns the IDs of jobs holding cores on this node, sorted.
func (n *Node) Jobs() []job.ID {
	ids := make([]job.ID, 0, len(n.owner))
	for id := range n.owner {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Slice is one element of an Alloc: cores on a specific node.
type Slice struct {
	NodeID int
	Cores  int
}

// Alloc is a set of cores spread over one or more nodes, held by a job.
type Alloc []Slice

// TotalCores returns the number of cores in the allocation.
func (a Alloc) TotalCores() int {
	total := 0
	for _, s := range a {
		total += s.Cores
	}
	return total
}

// Nodes returns the distinct node IDs in the allocation, sorted.
func (a Alloc) Nodes() []int {
	ids := make([]int, 0, len(a))
	for _, s := range a {
		ids = append(ids, s.NodeID)
	}
	sort.Ints(ids)
	return ids
}

// String renders the allocation as "node0:4+node2:8".
func (a Alloc) String() string {
	parts := make([]string, len(a))
	for i, s := range a {
		parts[i] = fmt.Sprintf("node%d:%d", s.NodeID, s.Cores)
	}
	return strings.Join(parts, "+")
}

// Cluster tracks all nodes and per-job allocations.
type Cluster struct {
	nodes  []*Node
	allocs map[job.ID]Alloc
}

// New creates a cluster of n identical Up nodes with coresPerNode cores
// each, named node0..node{n-1}.
func New(n, coresPerNode int) *Cluster {
	c := &Cluster{allocs: make(map[job.ID]Alloc)}
	for i := 0; i < n; i++ {
		c.nodes = append(c.nodes, &Node{
			ID:    i,
			Name:  fmt.Sprintf("node%d", i),
			Cores: coresPerNode,
			owner: make(map[job.ID]int),
		})
	}
	return c
}

// AddNode registers an additional node (live mode: moms register with
// the server one by one as they come up). Returns the new node.
func (c *Cluster) AddNode(name string, cores int) *Node {
	n := &Node{
		ID:    len(c.nodes),
		Name:  name,
		Cores: cores,
		owner: make(map[job.ID]int),
	}
	c.nodes = append(c.nodes, n)
	return n
}

// NumNodes returns the number of nodes (any state).
func (c *Cluster) NumNodes() int { return len(c.nodes) }

// Node returns the node with the given ID, or nil.
func (c *Cluster) Node(id int) *Node {
	if id < 0 || id >= len(c.nodes) {
		return nil
	}
	return c.nodes[id]
}

// Nodes returns the nodes in ID order. Callers must not mutate.
func (c *Cluster) Nodes() []*Node { return c.nodes }

// TotalCores returns the core count over Up nodes.
func (c *Cluster) TotalCores() int {
	total := 0
	for _, n := range c.nodes {
		if n.State == Up {
			total += n.Cores
		}
	}
	return total
}

// IdleCores returns the number of free cores over Up nodes.
func (c *Cluster) IdleCores() int {
	total := 0
	for _, n := range c.nodes {
		total += n.Free()
	}
	return total
}

// UsedCores returns the number of allocated cores on Up nodes.
func (c *Cluster) UsedCores() int {
	total := 0
	for _, n := range c.nodes {
		if n.State == Up {
			total += n.used
		}
	}
	return total
}

// AllocOf returns the allocation currently held by the job (nil if none).
func (c *Cluster) AllocOf(id job.ID) Alloc { return c.allocs[id] }

// Allocate finds cores free cores for the job and marks them used.
// Placement policy: fill the emptiest nodes first, which keeps jobs on
// few nodes (good for a node-attached workload like MPI) and matches
// the "exclusive-ish" placement Torque's node allocation produces.
// It returns nil (and changes nothing) when not enough cores are free.
func (c *Cluster) Allocate(id job.ID, cores int) Alloc {
	if cores <= 0 || c.IdleCores() < cores {
		return nil
	}
	// Sort candidate nodes by descending free cores, ID ascending for
	// determinism.
	order := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.Free() > 0 {
			order = append(order, n)
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].Free() != order[j].Free() {
			return order[i].Free() > order[j].Free()
		}
		return order[i].ID < order[j].ID
	})
	var alloc Alloc
	remaining := cores
	for _, n := range order {
		take := n.Free()
		if take > remaining {
			take = remaining
		}
		alloc = append(alloc, Slice{NodeID: n.ID, Cores: take})
		remaining -= take
		if remaining == 0 {
			break
		}
	}
	if remaining > 0 {
		return nil // unreachable given the IdleCores check, kept for safety
	}
	c.apply(id, alloc)
	return alloc
}

// AllocateNodes finds nodes nodes with ppn free cores each (the Torque
// "nodes=N:ppn=P" request form) and marks them used. Whole idle nodes
// are preferred. Returns nil when the request cannot be placed.
func (c *Cluster) AllocateNodes(id job.ID, nodes, ppn int) Alloc {
	if nodes <= 0 || ppn <= 0 {
		return nil
	}
	candidates := make([]*Node, 0, len(c.nodes))
	for _, n := range c.nodes {
		if n.Free() >= ppn {
			candidates = append(candidates, n)
		}
	}
	if len(candidates) < nodes {
		return nil
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Free() != candidates[j].Free() {
			return candidates[i].Free() > candidates[j].Free()
		}
		return candidates[i].ID < candidates[j].ID
	})
	var alloc Alloc
	for _, n := range candidates[:nodes] {
		alloc = append(alloc, Slice{NodeID: n.ID, Cores: ppn})
	}
	c.apply(id, alloc)
	return alloc
}

func (c *Cluster) apply(id job.ID, alloc Alloc) {
	for _, s := range alloc {
		n := c.nodes[s.NodeID]
		n.used += s.Cores
		n.owner[id] += s.Cores
	}
	c.allocs[id] = append(c.allocs[id], alloc...)
}

// Release frees every core held by the job.
func (c *Cluster) Release(id job.ID) {
	alloc := c.allocs[id]
	for _, s := range alloc {
		n := c.nodes[s.NodeID]
		n.used -= s.Cores
		if n.owner[id] -= s.Cores; n.owner[id] <= 0 {
			delete(n.owner, id)
		}
	}
	delete(c.allocs, id)
}

// ReleasePartial frees a subset of the job's allocation — the paper's
// dyn_disjoin: jobs may release *any subset* of their allocation, not
// only whole prior dynamic grants (unlike SLURM's restriction, §V).
// It returns an error if the job does not hold the given cores.
func (c *Cluster) ReleasePartial(id job.ID, part Alloc) error {
	held := c.allocs[id]
	heldPer := make(map[int]int)
	for _, s := range held {
		heldPer[s.NodeID] += s.Cores
	}
	for _, s := range part {
		if heldPer[s.NodeID] < s.Cores {
			return fmt.Errorf("cluster: %s does not hold %d cores on node%d", id, s.Cores, s.NodeID)
		}
		heldPer[s.NodeID] -= s.Cores
	}
	// Apply.
	for _, s := range part {
		n := c.nodes[s.NodeID]
		n.used -= s.Cores
		if n.owner[id] -= s.Cores; n.owner[id] <= 0 {
			delete(n.owner, id)
		}
	}
	var remaining Alloc
	for nodeID, cores := range heldPer {
		if cores > 0 {
			remaining = append(remaining, Slice{NodeID: nodeID, Cores: cores})
		}
	}
	sort.Slice(remaining, func(i, j int) bool { return remaining[i].NodeID < remaining[j].NodeID })
	if len(remaining) == 0 {
		delete(c.allocs, id)
	} else {
		c.allocs[id] = remaining
	}
	return nil
}

// SetNodeState changes a node's availability. Marking a node Down or
// Offline does not release allocations automatically; the RMS decides
// what to do with affected jobs (it returns their IDs).
func (c *Cluster) SetNodeState(nodeID int, s NodeState) []job.ID {
	n := c.Node(nodeID)
	if n == nil {
		return nil
	}
	n.State = s
	if s == Up {
		return nil
	}
	return n.Jobs()
}

// Snapshot returns free cores per node (index = node ID); used by the
// scheduler to plan without mutating live state.
func (c *Cluster) Snapshot() []int {
	free := make([]int, len(c.nodes))
	for i, n := range c.nodes {
		free[i] = n.Free()
	}
	return free
}

// CheckInvariants validates internal accounting; tests call it after
// mutation sequences.
func (c *Cluster) CheckInvariants() error {
	perNode := make(map[int]int)
	for id, alloc := range c.allocs {
		seen := make(map[int]int)
		for _, s := range alloc {
			if s.Cores <= 0 {
				return fmt.Errorf("job %s holds non-positive slice on node%d", id, s.NodeID)
			}
			perNode[s.NodeID] += s.Cores
			seen[s.NodeID] += s.Cores
		}
		for nodeID, cores := range seen {
			if c.nodes[nodeID].owner[id] != cores {
				return fmt.Errorf("job %s: alloc says %d cores on node%d, node says %d",
					id, cores, nodeID, c.nodes[nodeID].owner[id])
			}
		}
	}
	for _, n := range c.nodes {
		if perNode[n.ID] != n.used {
			return fmt.Errorf("node%d: used=%d but allocations sum to %d", n.ID, n.used, perNode[n.ID])
		}
		if n.used < 0 || n.used > n.Cores {
			return fmt.Errorf("node%d: used=%d out of range", n.ID, n.used)
		}
	}
	return nil
}
