package fairtree

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"repro/internal/sim"
)

// legacyFairshare is the map-based flat implementation the share tree
// replaced (internal/core/priority.go before the fairtree rewrite),
// embedded verbatim as the equivalence oracle. It rolls every interval
// with an explicit per-interval loop, so comparing against the tree's
// closed-form lazy decay proves the O(n)-sweep deletion safe.
type legacyFairshare struct {
	interval      sim.Duration
	decay         float64
	intervalStart sim.Time
	usage         map[string]float64
	total         float64
}

func newLegacy(interval sim.Duration, decay float64) *legacyFairshare {
	if interval <= 0 {
		interval = 24 * sim.Hour
	}
	return &legacyFairshare{interval: interval, decay: decay, usage: make(map[string]float64)}
}

func (f *legacyFairshare) Advance(now sim.Time) {
	for now >= f.intervalStart+f.interval {
		f.intervalStart += f.interval
		f.total = 0
		users := make([]string, 0, len(f.usage))
		for u := range f.usage {
			users = append(users, u)
		}
		sort.Strings(users)
		for _, u := range users {
			nv := f.usage[u] * f.decay
			if nv < 1e-9 {
				delete(f.usage, u)
				continue
			}
			f.usage[u] = nv
			f.total += nv
		}
	}
}

func (f *legacyFairshare) Record(user string, coreSeconds float64) {
	if coreSeconds <= 0 {
		return
	}
	f.usage[user] += coreSeconds
	f.total += coreSeconds
}

func (f *legacyFairshare) Factor(user string) float64 {
	if f.total <= 0 {
		return 0
	}
	nUsers := len(f.usage)
	if nUsers == 0 {
		return 0
	}
	target := 1.0 / float64(nUsers)
	return target - f.usage[user]/f.total
}

func (f *legacyFairshare) Usage(user string) float64 { return f.usage[user] }

// compareAll asserts the tree and the oracle agree on usage, factor,
// and liveness for every user. Exact equality for decay ∈ {0, 0.5, 1}
// (integer charges stay exactly representable under halving); decay
// 0.7 multiplies in a different association order, so it gets a
// relative tolerance instead.
func compareAll(t *testing.T, tag string, tr *Tree, leg *legacyFairshare, users []string, exact bool) {
	t.Helper()
	for _, u := range users {
		var treeU, treeF float64
		if id, ok := tr.LookupUser(u); ok {
			treeU = tr.UsageOf(id)
			treeF = tr.Factor(id)
		} else {
			treeF = tr.NewcomerFactor()
		}
		legU := leg.Usage(u)
		legF := leg.Factor(u)
		if exact {
			if treeU != legU {
				t.Errorf("%s: usage(%s) tree=%g legacy=%g", tag, u, treeU, legU)
			}
			if treeF != legF {
				t.Errorf("%s: factor(%s) tree=%g legacy=%g", tag, u, treeF, legF)
			}
		} else {
			if !closeRel(treeU, legU, 1e-12) {
				t.Errorf("%s: usage(%s) tree=%g legacy=%g", tag, u, treeU, legU)
			}
			if !closeRel(treeF, legF, 1e-12) {
				t.Errorf("%s: factor(%s) tree=%g legacy=%g", tag, u, treeF, legF)
			}
		}
	}
	if got, want := tr.LiveLeaves(), len(leg.usage); got != want {
		t.Errorf("%s: LiveLeaves=%d legacy users=%d", tag, got, want)
	}
}

func closeRel(a, b, tol float64) bool {
	if a == b {
		return true
	}
	d := math.Abs(a - b)
	if d < 1e-15 { // both essentially zero: cancellation noise
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= tol*m
}

// TestLazyDecayEquivalence drives the tree and the legacy per-interval
// loop through identical Record/Advance schedules and demands
// agreement for interval-skip counts k ∈ {0, 1, 7, 1000} and decay
// ∈ {0, 0.5, 1} (exact) plus the 0.7 default (tolerance).
func TestLazyDecayEquivalence(t *testing.T) {
	users := []string{"u0", "u1", "u2", "u3", "u4"}
	for _, decay := range []float64{0, 0.5, 1, 0.7} {
		exact := decay != 0.7
		for _, k := range []int64{0, 1, 7, 1000} {
			tag := fmt.Sprintf("decay=%g k=%d", decay, k)
			tr := New(Options{Interval: sim.Hour, Decay: decay})
			leg := newLegacy(sim.Hour, decay)
			// Seed charges: integer core-seconds, well above the prune
			// threshold for the k values where anything survives.
			for i, u := range users {
				amt := float64((i + 1) * 1000)
				tr.RecordNow(tr.UserID(u), amt)
				leg.Record(u, amt)
			}
			now := sim.Time(k) * sim.Time(sim.Hour)
			tr.Advance(now)
			leg.Advance(now)
			compareAll(t, tag, tr, leg, users, exact)

			// Charge again after the roll and re-check immediately
			// (record-then-read visibility) and after one more epoch.
			tr.RecordNow(tr.UserID("u0"), 500)
			leg.Record("u0", 500)
			compareAll(t, tag+" post-charge", tr, leg, users, exact)
			now += sim.Time(sim.Hour)
			tr.Advance(now)
			leg.Advance(now)
			compareAll(t, tag+" +1 epoch", tr, leg, users, exact)
		}
	}
}

// TestRandomScheduleEquivalence fuzzes interleaved records and
// advances across 25 seeds and asserts exact agreement for the exact
// decay values.
func TestRandomScheduleEquivalence(t *testing.T) {
	users := []string{"a", "b", "c", "d", "e", "f", "g", "h"}
	for _, decay := range []float64{0, 0.5, 1} {
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(seed))
			tr := New(Options{Interval: sim.Hour, Decay: decay})
			leg := newLegacy(sim.Hour, decay)
			now := sim.Time(0)
			for step := 0; step < 200; step++ {
				switch rng.Intn(3) {
				case 0, 1: // charge a random user an integer amount
					u := users[rng.Intn(len(users))]
					amt := float64(rng.Intn(1_000_000) + 1)
					tr.RecordNow(tr.UserID(u), amt)
					leg.Record(u, amt)
				case 2: // jump forward 0–40 epochs
					now += sim.Time(rng.Intn(41)) * sim.Time(sim.Hour)
					tr.Advance(now)
					leg.Advance(now)
				}
			}
			tr.Advance(now)
			leg.Advance(now)
			tag := fmt.Sprintf("decay=%g seed=%d", decay, seed)
			compareAll(t, tag, tr, leg, users, true)
		}
	}
}

// TestShardedFoldDeterminism records the same multiset of charges
// through 1, 4, and 8 concurrent producers under contended scheduling
// and checks the folded tree state is byte-identical: the fold sorts
// (id, amt) before applying, so producer interleaving cannot leak into
// float summation order.
func TestShardedFoldDeterminism(t *testing.T) {
	const nUsers = 32
	const perUser = 50
	type state struct {
		usage  []float64
		factor []float64
	}
	capture := func(workers int) state {
		tr := New(Options{Interval: sim.Hour, Decay: 0.5, Shards: 8})
		ids := make([]NodeID, nUsers)
		for i := range ids {
			ids[i] = tr.UserID(fmt.Sprintf("user%02d", i))
		}
		// The full charge list, deterministic; split round-robin over
		// workers so every worker count sees a different interleaving.
		type charge struct {
			id  NodeID
			amt float64
		}
		var charges []charge
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < nUsers; i++ {
			for j := 0; j < perUser; j++ {
				charges = append(charges, charge{ids[i], float64(rng.Intn(10_000) + 1)})
			}
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < len(charges); i += workers {
					tr.Record(charges[i].id, charges[i].amt)
				}
			}(w)
		}
		wg.Wait()
		tr.Advance(2 * sim.Hour)
		var s state
		for _, id := range ids {
			s.usage = append(s.usage, tr.UsageOf(id))
			s.factor = append(s.factor, tr.Factor(id))
		}
		return s
	}
	ref := capture(1)
	for _, workers := range []int{4, 8} {
		got := capture(workers)
		for i := range ref.usage {
			if got.usage[i] != ref.usage[i] {
				t.Errorf("workers=%d: usage[%d] = %g, want %g (bit-exact)", workers, i, got.usage[i], ref.usage[i])
			}
			if got.factor[i] != ref.factor[i] {
				t.Errorf("workers=%d: factor[%d] = %g, want %g (bit-exact)", workers, i, got.factor[i], ref.factor[i])
			}
		}
	}
}

// TestRankingMatchesSortOracle cross-checks TopK against a full sort
// of decayed usages over random schedules.
func TestRankingMatchesSortOracle(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		tr := New(Options{Interval: sim.Hour, Decay: 0.5})
		tr.EnableRanking()
		const n = 64
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = tr.UserID(fmt.Sprintf("u%03d", i))
		}
		now := sim.Time(0)
		for step := 0; step < 300; step++ {
			if rng.Intn(10) == 0 {
				now += sim.Time(rng.Intn(5)+1) * sim.Time(sim.Hour)
				tr.Advance(now)
			} else {
				tr.RecordNow(ids[rng.Intn(n)], float64(rng.Intn(100_000)+1))
			}
		}
		// Oracle: sort live ids by decayed usage desc, NodeID asc.
		type uu struct {
			id NodeID
			u  float64
		}
		var all []uu
		for _, id := range ids {
			if v := tr.UsageOf(id); v > 0 {
				all = append(all, uu{id, v})
			}
		}
		sort.Slice(all, func(a, b int) bool {
			if all[a].u != all[b].u {
				return all[a].u > all[b].u
			}
			return all[a].id < all[b].id
		})
		k := 10
		if k > len(all) {
			k = len(all)
		}
		got := tr.TopK(k, nil)
		if len(got) != k {
			t.Fatalf("seed %d: TopK len=%d want %d", seed, len(got), k)
		}
		for i := 0; i < k; i++ {
			// Equal usages may legitimately order differently between
			// the key space (log) and raw usage; compare usage values.
			if gu, wu := tr.UsageOf(got[i]), all[i].u; gu != wu {
				t.Errorf("seed %d: TopK[%d]=node %d usage %g, oracle %g", seed, i, got[i], gu, wu)
			}
		}
	}
}
