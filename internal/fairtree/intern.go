package fairtree

import "sync"

// Interner is a symbol table mapping strings to dense int32 ids. The
// scheduler interns credential strings once at submit time so every
// later hot-path touch (usage stamps, factor reads, priority repair)
// is an array index instead of a string-map hash.
//
// Intern and Lookup are safe for concurrent use; the read path takes
// only an RLock and allocates nothing for already-interned strings.
type Interner struct {
	mu    sync.RWMutex
	ids   map[string]int32
	names []string
}

// Intern returns the dense id for s, assigning the next id on first
// sight.
func (in *Interner) Intern(s string) int32 {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	if ok {
		return id
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	if id, ok := in.ids[s]; ok {
		return id
	}
	if in.ids == nil {
		in.ids = make(map[string]int32)
	}
	id = int32(len(in.names))
	in.ids[s] = id
	in.names = append(in.names, s)
	return id
}

// Lookup returns the id for s without interning it.
func (in *Interner) Lookup(s string) (int32, bool) {
	in.mu.RLock()
	id, ok := in.ids[s]
	in.mu.RUnlock()
	return id, ok
}

// Name returns the string for an interned id.
func (in *Interner) Name(id int32) string {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if id < 0 || int(id) >= len(in.names) {
		return ""
	}
	return in.names[id]
}

// Len returns how many strings have been interned.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.names)
}
