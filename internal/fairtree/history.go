package fairtree

import (
	"bufio"
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// HistoryFormat selects the allocation-history encoding.
type HistoryFormat int

const (
	// HistoryCSV writes one comma-separated row per node snapshot.
	HistoryCSV HistoryFormat = iota
	// HistoryJSONL writes one JSON object per line.
	HistoryJSONL
)

// ParseHistoryFormat maps "csv"/"jsonl" to a HistoryFormat.
func ParseHistoryFormat(s string) (HistoryFormat, error) {
	switch s {
	case "", "csv":
		return HistoryCSV, nil
	case "jsonl":
		return HistoryJSONL, nil
	}
	return HistoryCSV, fmt.Errorf("fairtree: unknown history format %q (want csv or jsonl)", s)
}

// HistoryWriter streams allocation-history snapshots (the KAI
// time-aware-simulator CSV idea): periodic per-node rows of decayed
// usage and fairshare factor, so fairness over time is analyzable
// offline. Output is byte-deterministic: rows are emitted in NodeID
// order (creation order, which submission order fixes), floats are
// formatted with strconv shortest round-trip, and no wall-clock or
// map-iteration state leaks in.
type HistoryWriter struct {
	w      *bufio.Writer
	format HistoryFormat
	wrote  bool
}

// NewHistoryWriter wraps w. Call Flush when done.
func NewHistoryWriter(w io.Writer, format HistoryFormat) *HistoryWriter {
	return &HistoryWriter{w: bufio.NewWriter(w), format: format}
}

func (h *HistoryWriter) header() {
	if h.wrote {
		return
	}
	h.wrote = true
	if h.format == HistoryCSV {
		h.w.WriteString("time_s,epoch,node,depth,usage,factor,quota,live\n")
	}
}

func (h *HistoryWriter) row(now sim.Time, epoch int64, path string, depth int32, usage, factor, quota float64, live bool) {
	h.header()
	var buf [32]byte
	switch h.format {
	case HistoryCSV:
		h.w.Write(strconv.AppendFloat(buf[:0], sim.SecondsOf(now), 'g', -1, 64))
		h.w.WriteByte(',')
		h.w.Write(strconv.AppendInt(buf[:0], epoch, 10))
		h.w.WriteByte(',')
		h.w.WriteString(path)
		h.w.WriteByte(',')
		h.w.Write(strconv.AppendInt(buf[:0], int64(depth), 10))
		h.w.WriteByte(',')
		h.w.Write(strconv.AppendFloat(buf[:0], usage, 'g', -1, 64))
		h.w.WriteByte(',')
		h.w.Write(strconv.AppendFloat(buf[:0], factor, 'g', -1, 64))
		h.w.WriteByte(',')
		h.w.Write(strconv.AppendFloat(buf[:0], quota, 'g', -1, 64))
		h.w.WriteByte(',')
		h.w.Write(strconv.AppendBool(buf[:0], live))
		h.w.WriteByte('\n')
	case HistoryJSONL:
		fmt.Fprintf(h.w, `{"time_s":%s,"epoch":%d,"node":%q,"depth":%d,"usage":%s,"factor":%s,"quota":%s,"live":%t}`+"\n",
			strconv.FormatFloat(sim.SecondsOf(now), 'g', -1, 64), epoch, path, depth,
			strconv.FormatFloat(usage, 'g', -1, 64),
			strconv.FormatFloat(factor, 'g', -1, 64),
			strconv.FormatFloat(quota, 'g', -1, 64), live)
	}
}

// Flush flushes buffered rows to the underlying writer.
func (h *HistoryWriter) Flush() error {
	h.header()
	return h.w.Flush()
}

// EmitHistory appends one snapshot row per node (NodeID order,
// excluding the root) with depth ≤ maxDepth (0 = no limit) and
// decayed usage > 0 or live structure. now is simulation time.
func (t *Tree) EmitHistory(h *HistoryWriter, now sim.Time, maxDepth int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	for id := NodeID(1); int(id) < len(t.names); id++ {
		if maxDepth > 0 && int(t.depth[id]) > maxDepth {
			continue
		}
		u := t.usageAt(id)
		if u <= 0 && !t.live[id] {
			continue
		}
		h.row(now, t.epoch, t.pathLocked(id), t.depth[id], u,
			t.factorLocked(id), t.quota[id], t.live[id])
	}
}

// pathLocked is Path without re-locking. Caller holds mu.
func (t *Tree) pathLocked(id NodeID) string {
	if id == 0 {
		return ""
	}
	n := 0
	for x := id; x != None && x != 0; x = t.parent[x] {
		n += len(t.names[x]) + 1
	}
	buf := make([]byte, n-1)
	w := len(buf)
	for x := id; x != None && x != 0; x = t.parent[x] {
		name := t.names[x]
		w -= len(name)
		copy(buf[w:], name)
		if w > 0 {
			w--
			buf[w] = '.'
		}
	}
	return string(buf)
}
