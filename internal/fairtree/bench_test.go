package fairtree

import (
	"fmt"
	"testing"

	"repro/internal/sim"
)

// build1M returns a tree populated with nUsers leaves spread over
// nGroups interior nodes, every leaf charged once.
func buildBig(b *testing.B, nUsers, nGroups int) (*Tree, []NodeID) {
	b.Helper()
	tr := New(Options{Interval: sim.Hour, Decay: 0.5, Shards: 16})
	ids := make([]NodeID, nUsers)
	if nGroups > 1 {
		groups := make([]NodeID, nGroups)
		for g := range groups {
			groups[g] = tr.Child(tr.Root(), fmt.Sprintf("g%05d", g))
		}
		for i := range ids {
			ids[i] = tr.Child(groups[i%nGroups], fmt.Sprintf("u%07d", i))
		}
	} else {
		for i := range ids {
			ids[i] = tr.UserID(fmt.Sprintf("u%07d", i))
		}
	}
	for i, id := range ids {
		tr.RecordNow(id, float64(i%1000+1))
	}
	return tr, ids
}

// BenchmarkFactor1M measures a priority-factor read with one million
// live users in a flat tree — the scheduler hot path. Acceptance
// target: ≤200ns.
func BenchmarkFactor1M(b *testing.B) {
	tr, ids := buildBig(b, 1_000_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tr.Factor(ids[i%len(ids)])
	}
	_ = sink
}

// BenchmarkFactorHier1M is the same read on a two-level hierarchy
// (10k groups × 100 users).
func BenchmarkFactorHier1M(b *testing.B) {
	tr, ids := buildBig(b, 1_000_000, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tr.Factor(ids[i%len(ids)])
	}
	_ = sink
}

// BenchmarkRecordSharded measures the completion-path charge: one
// lock-striped append, no tree mutex.
func BenchmarkRecordSharded(b *testing.B) {
	tr, ids := buildBig(b, 100_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Record(ids[i%len(ids)], 1)
	}
}

// BenchmarkRecordNow measures the unsharded in-place charge.
func BenchmarkRecordNow(b *testing.B) {
	tr, ids := buildBig(b, 100_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RecordNow(ids[i%len(ids)], 1)
	}
}

// BenchmarkFold measures draining 10k sharded stamps into the tree.
func BenchmarkFold(b *testing.B) {
	tr, ids := buildBig(b, 100_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		for j := 0; j < 10_000; j++ {
			tr.Record(ids[j%len(ids)], 1)
		}
		b.StartTimer()
		tr.Fold()
	}
}

// BenchmarkAdvance1M measures an epoch roll over one million live
// leaves: lazy decay means no per-leaf sweep, only death-heap pops.
func BenchmarkAdvance1M(b *testing.B) {
	tr, _ := buildBig(b, 1_000_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now += sim.Time(sim.Hour)
		tr.Advance(now)
	}
}

// BenchmarkTopKRanked measures the heaviest-users query through the
// indexed heap; BenchmarkTopKRescan is the full-rescan strawman it
// replaces. Their ratio is the O(log n) maintenance win.
func BenchmarkTopKRanked(b *testing.B) {
	tr, _ := buildBig(b, 0, 1)
	tr.EnableRanking()
	ids := make([]NodeID, 100_000)
	for i := range ids {
		ids[i] = tr.UserID(fmt.Sprintf("u%07d", i))
	}
	for i, id := range ids {
		tr.RecordNow(id, float64(i%1000+1))
	}
	out := make([]NodeID, 0, 10)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RecordNow(ids[i%len(ids)], 1)
		out = tr.TopK(10, out[:0])
	}
}

func BenchmarkTopKRescan(b *testing.B) {
	tr, ids := buildBig(b, 100_000, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.RecordNow(ids[i%len(ids)], 1)
		// Strawman: scan every leaf for the top 10 by decayed usage.
		var top [10]NodeID
		var topU [10]float64
		for _, id := range ids {
			u := tr.UsageOf(id)
			if u > topU[9] {
				k := 9
				for k > 0 && u > topU[k-1] {
					top[k] = top[k-1]
					topU[k] = topU[k-1]
					k--
				}
				top[k] = id
				topU[k] = u
			}
		}
		_ = top
	}
}
