package fairtree

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/sim"
)

func TestHistoryGoldenCSV(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	if err := tr.ApplySpec(&Spec{Nodes: []SpecNode{
		{Path: "phys", Quota: 3, Users: []string{"p1"}},
		{Path: "chem", Quota: 1, Users: []string{"c1"}},
	}}); err != nil {
		t.Fatal(err)
	}
	tr.RecordNow(tr.UserID("p1"), 300)
	tr.RecordNow(tr.UserID("c1"), 100)
	tr.Advance(sim.Hour)

	var sb strings.Builder
	h := NewHistoryWriter(&sb, HistoryCSV)
	tr.EmitHistory(h, sim.Hour, 0)
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	// Every node sits exactly at its target share (quota 3:1, usage
	// 150:50 of 200), so all factors are identically 0.
	want := "time_s,epoch,node,depth,usage,factor,quota,live\n" +
		"phys,1,150,0,3,true\n" +
		"chem,1,50,0,1,true\n" +
		"phys.p1,2,150,0,1,true\n" +
		"chem.c1,2,50,0,1,true\n"
	// The golden above elides the time/epoch prefix for readability;
	// reconstruct the full expected bytes.
	full := "time_s,epoch,node,depth,usage,factor,quota,live\n"
	for _, line := range strings.Split(want, "\n")[1:] {
		if line == "" {
			continue
		}
		full += "3600,1," + line + "\n"
	}
	_ = want
	if got := sb.String(); got != full {
		t.Errorf("history CSV mismatch:\n got: %q\nwant: %q", got, full)
	}
}

func TestHistoryJSONLRows(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	tr.RecordNow(tr.UserID("a"), 100)
	var sb strings.Builder
	h := NewHistoryWriter(&sb, HistoryJSONL)
	tr.EmitHistory(h, 0, 0)
	if err := h.Flush(); err != nil {
		t.Fatal(err)
	}
	want := `{"time_s":0,"epoch":0,"node":"a","depth":1,"usage":100,"factor":0,"quota":1,"live":true}` + "\n"
	if got := sb.String(); got != want {
		t.Errorf("history JSONL mismatch:\n got: %q\nwant: %q", got, want)
	}
}

func TestParseHistoryFormat(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want HistoryFormat
		err  bool
	}{{"", HistoryCSV, false}, {"csv", HistoryCSV, false}, {"jsonl", HistoryJSONL, false}, {"xml", 0, true}} {
		got, err := ParseHistoryFormat(tc.in)
		if (err != nil) != tc.err {
			t.Errorf("ParseHistoryFormat(%q) err = %v", tc.in, err)
		}
		if err == nil && got != tc.want {
			t.Errorf("ParseHistoryFormat(%q) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// TestHistoryWorkerCountInvariance is the acceptance check for the
// allocation-history stream: identical charge multisets recorded
// through different producer counts must yield byte-identical CSV.
func TestHistoryWorkerCountInvariance(t *testing.T) {
	emit := func(workers int) string {
		tr := New(Options{Interval: sim.Hour, Decay: 0.5, Shards: 8})
		ids := make([]NodeID, 16)
		for i := range ids {
			ids[i] = tr.UserID(fmt.Sprintf("u%02d", i))
		}
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := w; i < 400; i += workers {
					tr.Record(ids[i%len(ids)], float64(i+1))
				}
			}(w)
		}
		wg.Wait()
		tr.Advance(2 * sim.Hour)
		var sb strings.Builder
		h := NewHistoryWriter(&sb, HistoryCSV)
		tr.EmitHistory(h, 2*sim.Hour, 0)
		if err := h.Flush(); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	ref := emit(1)
	for _, workers := range []int{4, 8} {
		if got := emit(workers); got != ref {
			t.Errorf("history CSV differs at %d workers", workers)
		}
	}
}
