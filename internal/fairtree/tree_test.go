package fairtree

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestFlatFactorMatchesLegacyFormula(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	a := tr.UserID("a")
	b := tr.UserID("b")
	c := tr.UserID("c")
	tr.RecordNow(a, 600)
	tr.RecordNow(b, 300)
	tr.RecordNow(c, 100)

	total := 1000.0
	for _, tc := range []struct {
		id NodeID
		u  float64
	}{{a, 600}, {b, 300}, {c, 100}} {
		want := 1.0/3 - tc.u/total
		if got := tr.Factor(tc.id); got != want {
			t.Errorf("Factor(%d) = %g, want %g", tc.id, got, want)
		}
	}
	// An unknown user's hypothetical factor is a full equal share.
	if got, want := tr.NewcomerFactor(), 1.0/3; got != want {
		t.Errorf("NewcomerFactor = %g, want %g", got, want)
	}
	if tr.LiveLeaves() != 3 {
		t.Errorf("LiveLeaves = %d, want 3", tr.LiveLeaves())
	}
	if !tr.Flat() {
		t.Error("flat tree reported non-flat")
	}
}

func TestLazyDecayOnAdvance(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	a := tr.UserID("a")
	tr.RecordNow(a, 1000)
	if got := tr.UsageOf(a); got != 1000 {
		t.Fatalf("usage before advance = %g, want 1000", got)
	}
	tr.Advance(2 * sim.Hour)
	if got := tr.UsageOf(a); got != 250 {
		t.Errorf("usage after 2 intervals = %g, want 250", got)
	}
	// Many idle epochs in one Advance: 1000·0.5^10 = 0.9765625.
	tr2 := New(Options{Interval: sim.Hour, Decay: 0.5})
	b := tr2.UserID("b")
	tr2.RecordNow(b, 1000)
	tr2.Advance(10 * sim.Hour)
	if got, want := tr2.UsageOf(b), 1000*math.Pow(0.5, 10); got != want {
		t.Errorf("usage after 10 intervals = %g, want %g", got, want)
	}
}

func TestDeathMatchesLegacyPruneThreshold(t *testing.T) {
	// Legacy pruned an entry when usage·decay < 1e-9 at a boundary.
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	a := tr.UserID("a")
	b := tr.UserID("b")
	tr.RecordNow(a, 1.2e-9) // dies when 1.2e-9·0.5 = 0.6e-9 < 1e-9: epoch 1
	tr.RecordNow(b, 1000)
	tr.Advance(sim.Hour)
	if got := tr.UsageOf(a); got != 0 {
		t.Errorf("a should be pruned at epoch 1, usage = %g", got)
	}
	if tr.LiveLeaves() != 1 {
		t.Errorf("LiveLeaves = %d, want 1", tr.LiveLeaves())
	}
	// Factor now sees n=1: b holds the full share.
	if got, want := tr.Factor(b), 1.0-1.0; got != want {
		t.Errorf("Factor(b) = %g, want %g", got, want)
	}
	// A pruned user's factor is the newcomer share (usage 0, n=1).
	if got, want := tr.Factor(a), 1.0; got != want {
		t.Errorf("Factor(a) after prune = %g, want %g", got, want)
	}
}

func TestReviveAfterDeath(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0})
	a := tr.UserID("a")
	tr.RecordNow(a, 500)
	tr.Advance(sim.Hour) // decay 0 clears everything
	if tr.LiveLeaves() != 0 {
		t.Fatalf("LiveLeaves after clear = %d, want 0", tr.LiveLeaves())
	}
	if got := tr.Factor(a); got != 0 {
		t.Errorf("Factor with no usage = %g, want 0", got)
	}
	tr.RecordNow(a, 100)
	if tr.LiveLeaves() != 1 {
		t.Errorf("LiveLeaves after revive = %d, want 1", tr.LiveLeaves())
	}
	if got := tr.UsageOf(a); got != 100 {
		t.Errorf("usage after revive = %g, want 100", got)
	}
}

func TestDecayOneNeverForgets(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 1})
	a := tr.UserID("a")
	tr.RecordNow(a, 42)
	tr.Advance(1000 * sim.Hour)
	if got := tr.UsageOf(a); got != 42 {
		t.Errorf("usage with decay=1 = %g, want 42", got)
	}
	if tr.LiveLeaves() != 1 {
		t.Errorf("LiveLeaves = %d, want 1", tr.LiveLeaves())
	}
}

func TestHierarchicalFactor(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	spec := &Spec{Nodes: []SpecNode{
		{Path: "phys", Quota: 3, Users: []string{"p1", "p2"}},
		{Path: "chem", Quota: 1, Users: []string{"c1"}},
	}}
	if err := tr.ApplySpec(spec); err != nil {
		t.Fatal(err)
	}
	if tr.Flat() {
		t.Error("hierarchical tree reported flat")
	}
	p1 := tr.UserID("p1")
	p2 := tr.UserID("p2")
	c1 := tr.UserID("c1")
	if got, want := tr.Path(p1), "phys.p1"; got != want {
		t.Errorf("Path(p1) = %q, want %q", got, want)
	}
	tr.RecordNow(p1, 300)
	tr.RecordNow(p2, 100)
	tr.RecordNow(c1, 100)
	// p1: leaf level target 1/2 within phys, actual 300/400;
	// phys level target 3/4, actual 400/500.
	wantP1 := (0.5 - 300.0/400) + (0.75 - 400.0/500)
	if got := tr.Factor(p1); math.Abs(got-wantP1) > 1e-15 {
		t.Errorf("Factor(p1) = %g, want %g", got, wantP1)
	}
	// c1: sole leaf in chem (target 1, actual 1), chem level target
	// 1/4, actual 100/500.
	wantC1 := (1.0 - 1.0) + (0.25 - 100.0/500)
	if got := tr.Factor(c1); math.Abs(got-wantC1) > 1e-15 {
		t.Errorf("Factor(c1) = %g, want %g", got, wantC1)
	}
}

func TestOverQuotaWeightSoftensPenalty(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	a := tr.UserID("a")
	b := tr.UserID("b")
	tr.RecordNow(a, 900)
	tr.RecordNow(b, 100)
	base := tr.Factor(a) // 0.5 − 0.9 = −0.4
	tr.SetOverWeight(a, 2)
	if got, want := tr.Factor(a), base/2; got != want {
		t.Errorf("over-quota factor with weight 2 = %g, want %g", got, want)
	}
	// Under-quota b is unaffected by its own over-quota weight.
	under := tr.Factor(b)
	tr.SetOverWeight(b, 2)
	if got := tr.Factor(b); got != under {
		t.Errorf("under-quota factor changed with weight: %g != %g", got, under)
	}
}

func TestQuotaWeighting(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	a := tr.UserID("a")
	b := tr.UserID("b")
	tr.RecordNow(a, 500)
	tr.RecordNow(b, 500)
	tr.SetQuota(a, 3) // a entitled to 3/4 of the machine
	if got, want := tr.Factor(a), 3.0/4-0.5; got != want {
		t.Errorf("Factor(a) with quota 3 = %g, want %g", got, want)
	}
	if got, want := tr.Factor(b), 1.0/4-0.5; got != want {
		t.Errorf("Factor(b) = %g, want %g", got, want)
	}
}

func TestDirtyLog(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5, MaxDirty: 4})
	base := tr.ChangeSerial()
	a := tr.UserID("a")
	b := tr.UserID("b")
	tr.RecordNow(a, 10)
	tr.RecordNow(a, 10) // consecutive repeat: coalesced
	tr.RecordNow(b, 10)
	dirty, ok := tr.DirtySince(base)
	if !ok {
		t.Fatal("DirtySince fell behind unexpectedly")
	}
	if len(dirty) != 2 || dirty[0] != a || dirty[1] != b {
		t.Fatalf("dirty = %v, want [%d %d]", dirty, a, b)
	}
	// Nothing since the current serial.
	if d, ok := tr.DirtySince(tr.ChangeSerial()); !ok || len(d) != 0 {
		t.Fatalf("DirtySince(now) = %v, %v", d, ok)
	}
	// Overflow compaction invalidates old serials.
	for i := 0; i < 20; i++ {
		if i%2 == 0 {
			tr.RecordNow(a, 1)
		} else {
			tr.RecordNow(b, 1)
		}
	}
	if _, ok := tr.DirtySince(base); ok {
		t.Error("DirtySince should report compaction for stale serial")
	}
}

func TestShardedRecordFoldsOnAdvance(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5, Shards: 4})
	a := tr.UserID("a")
	tr.Record(a, 100)
	tr.Record(a, 50)
	if got := tr.UsageOf(a); got != 0 {
		t.Fatalf("sharded records visible before fold: %g", got)
	}
	if tr.PendingRecords() != 2 {
		t.Fatalf("PendingRecords = %d, want 2", tr.PendingRecords())
	}
	tr.Advance(0) // same epoch: folds without rolling
	if got := tr.UsageOf(a); got != 150 {
		t.Errorf("usage after fold = %g, want 150", got)
	}
	if tr.PendingRecords() != 0 {
		t.Errorf("PendingRecords after fold = %d", tr.PendingRecords())
	}
}

func TestUserHomePlacement(t *testing.T) {
	tr := New(Options{})
	if err := tr.ApplySpec(&Spec{Nodes: []SpecNode{
		{Path: "org.team", Users: []string{"u1"}},
	}}); err != nil {
		t.Fatal(err)
	}
	u1 := tr.UserID("u1")
	u2 := tr.UserID("u2") // not homed: direct child of root
	if got, want := tr.Path(u1), "org.team.u1"; got != want {
		t.Errorf("Path(u1) = %q, want %q", got, want)
	}
	if got, want := tr.Path(u2), "u2"; got != want {
		t.Errorf("Path(u2) = %q, want %q", got, want)
	}
	if id := tr.UserID("u1"); id != u1 {
		t.Errorf("UserID not stable: %d != %d", id, u1)
	}
	if id, ok := tr.LookupUser("u1"); !ok || id != u1 {
		t.Errorf("LookupUser(u1) = %d,%v", id, ok)
	}
	if _, ok := tr.LookupUser("nobody"); ok {
		t.Error("LookupUser(nobody) should miss")
	}
}

func TestSpecValidate(t *testing.T) {
	bad := []*Spec{
		{Nodes: []SpecNode{{Path: ""}}},
		{Nodes: []SpecNode{{Path: "a..b"}}},
		{Nodes: []SpecNode{{Path: "a", Users: []string{""}}}},
		{Nodes: []SpecNode{{Path: "a", Users: []string{"u"}}, {Path: "b", Users: []string{"u"}}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %d should fail validation", i)
		}
	}
	ok := &Spec{Nodes: []SpecNode{{Path: "a.b.c", Quota: 2, OverQuotaWeight: 1.5, Users: []string{"x", "y"}}}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}

func TestRankingTracksHeaviestUsers(t *testing.T) {
	tr := New(Options{Interval: sim.Hour, Decay: 0.5})
	tr.EnableRanking()
	a := tr.UserID("a")
	b := tr.UserID("b")
	c := tr.UserID("c")
	tr.RecordNow(a, 100)
	tr.RecordNow(b, 300)
	tr.RecordNow(c, 200)
	if got := tr.Top(); got != b {
		t.Errorf("Top = %d, want %d", got, b)
	}
	top := tr.TopK(3, nil)
	if len(top) != 3 || top[0] != b || top[1] != c || top[2] != a {
		t.Errorf("TopK = %v, want [%d %d %d]", top, b, c, a)
	}
	// Decay is uniform: order must survive epochs without updates.
	tr.Advance(5 * sim.Hour)
	if got := tr.Top(); got != b {
		t.Errorf("Top after decay = %d, want %d", got, b)
	}
	// A new record overtakes.
	tr.RecordNow(a, 1000)
	if got := tr.Top(); got != a {
		t.Errorf("Top after burst = %d, want %d", got, a)
	}
	// Death removes from the ranking.
	tr2 := New(Options{Interval: sim.Hour, Decay: 0})
	tr2.EnableRanking()
	x := tr2.UserID("x")
	tr2.RecordNow(x, 5)
	tr2.Advance(sim.Hour)
	if got := tr2.Top(); got != None {
		t.Errorf("Top after death = %d, want None", got)
	}
}

func TestInterner(t *testing.T) {
	var in Interner
	a := in.Intern("alpha")
	b := in.Intern("beta")
	if a == b {
		t.Fatal("distinct strings share an id")
	}
	if got := in.Intern("alpha"); got != a {
		t.Errorf("re-intern = %d, want %d", got, a)
	}
	if id, ok := in.Lookup("beta"); !ok || id != b {
		t.Errorf("Lookup(beta) = %d,%v", id, ok)
	}
	if _, ok := in.Lookup("gamma"); ok {
		t.Error("Lookup(gamma) should miss")
	}
	if got := in.Name(a); got != "alpha" {
		t.Errorf("Name(%d) = %q", a, got)
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
}
