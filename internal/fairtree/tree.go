// Package fairtree implements a hierarchical fairshare tree (org →
// team → user, arbitrary depth) designed to stay fast at one million
// leaves:
//
//   - Entity strings are interned once at submit time; every hot-path
//     structure is a struct-of-arrays indexed by dense NodeID.
//   - Usage decays lazily: each node stores (raw, stampEpoch) and the
//     decayed value is computed on read as raw·decay^(epoch−stamp), so
//     advancing time costs O(deaths), not O(nodes).
//   - Usage stamps from concurrent producers land in lock-striped
//     shards (see shard.go) and fold into the tree deterministically on
//     Advance.
//   - Node expiry (the legacy per-interval prune sweep) is replaced by
//     a death min-heap: when usage is recorded we compute analytically
//     at which epoch it will decay below eps and schedule exactly one
//     heap entry.
//
// Iteration over maps is never used for anything that feeds scheduling
// or output; schedlint's maporder analyzer bans `range` over maps in
// this package outright.
package fairtree

import (
	"math"
	"sync"

	"repro/internal/sim"
)

// NodeID is a dense index into the tree's node arrays.
type NodeID int32

// None is the null NodeID (parent of the root).
const None NodeID = -1

// eps matches the legacy flat fairshare prune threshold: usage that
// decays below this is treated as gone and its leaf dies.
const eps = 1e-9

// neverEpoch marks a node with no scheduled death.
const neverEpoch = math.MaxInt64

// maxPowMemo bounds the memoized decay power table; beyond it (or
// after underflow to zero) decayPow falls back to math.Pow. All
// exactness claims (decay ∈ {0, 0.5, 1}) stay inside the memo.
const maxPowMemo = 8192

// Options configures a Tree.
type Options struct {
	// Interval is the decay epoch length. Epoch k covers
	// [k·Interval, (k+1)·Interval); this matches the legacy
	// Fairshare interval grid anchored at time 0.
	Interval sim.Duration
	// Decay multiplies usage once per elapsed interval. 0 clears
	// usage every interval; 1 never decays.
	Decay float64
	// Shards is the number of lock stripes for concurrent Record.
	// 0 means a reasonable default.
	Shards int
	// MaxDirty bounds the change log consumed by DirtySince.
	// When the log exceeds 2×MaxDirty it is compacted to MaxDirty
	// entries; consumers that fell behind get ok=false and must
	// rebuild. 0 means a reasonable default.
	MaxDirty int
}

// Tree is the hierarchical share tree. All methods that read or write
// node state take the tree mutex and are safe for concurrent use;
// Record (sharded) and user interning additionally scale across
// producers because they only touch a shard stripe / the symbol
// table. The intended split is: many producers call UserID+Record,
// one scheduler thread calls Advance/Factor/RecordNow.
type Tree struct {
	mu sync.Mutex

	interval sim.Duration
	decay    float64
	epoch    int64

	// Node arrays, indexed by NodeID. raw is the usage decayed as
	// of stamp[i]; for interior nodes it is the subtree total.
	names  []string
	parent []NodeID
	depth  []int32
	quota  []float64
	overW  []float64
	raw    []float64
	stamp  []int64
	death  []int64 // scheduled death epoch; heap entries not matching this are stale
	live   []bool
	liveQ  []float64 // sum of live children's quotas (interior)
	liveN  []int32   // count of live children (interior)

	// Structure lookups. Maps are keyed access only — never ranged.
	children  map[childKey]NodeID
	users     Interner
	userNode  []NodeID          // dense user id (Interner) → leaf NodeID
	userHome  map[string]NodeID // spec placement: user name → parent node
	liveLeafN int
	flat      bool // no interior nodes: every node is a child of the root

	deaths deathHeap

	// Decay power memo: pow[k] = decay^k, built incrementally so
	// 0.5^k is an exact product of halvings. powZero is the first
	// k at which the value underflowed to zero (-1 if not yet).
	pow     []float64
	powZero int

	pathCache []string // lazily memoized dot paths (immutable once set)

	shards    *shardSet
	foldBuf   []stamp
	lnDecay   float64
	rank      *Ranking
	serial    uint64 // next change-log serial (== dirtyBase+len(dirty))
	dirty     []NodeID
	dirtyBase uint64
	maxDirty  int
	sealed    uint64 // serial last observed by a consumer; entries below it must not coalesce
}

type childKey struct {
	parent NodeID
	name   string
}

// New builds a tree with a single root node (quota 1, over-quota
// weight 1).
func New(opts Options) *Tree {
	if opts.Interval <= 0 {
		opts.Interval = 24 * sim.Hour
	}
	if opts.Decay < 0 {
		opts.Decay = 0
	}
	if opts.Decay > 1 {
		opts.Decay = 1
	}
	if opts.Shards <= 0 {
		opts.Shards = 8
	}
	if opts.MaxDirty <= 0 {
		opts.MaxDirty = 4096
	}
	t := &Tree{
		interval: opts.Interval,
		decay:    opts.Decay,
		children: make(map[childKey]NodeID),
		userHome: make(map[string]NodeID),
		pow:      []float64{1},
		powZero:  -1,
		shards:   newShardSet(opts.Shards),
		maxDirty: opts.MaxDirty,
		flat:     true,
	}
	if opts.Decay > 0 && opts.Decay < 1 {
		t.lnDecay = math.Log(opts.Decay)
	}
	t.addNode("", None) // root: NodeID 0
	return t
}

// Root returns the root NodeID.
func (t *Tree) Root() NodeID { return 0 }

// Interval returns the decay interval.
func (t *Tree) Interval() sim.Duration { return t.interval }

// Decay returns the per-interval decay factor.
func (t *Tree) Decay() float64 { return t.decay }

// Epoch returns the current epoch (advanced by Advance).
func (t *Tree) Epoch() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epoch
}

// NumNodes returns the total node count including the root.
func (t *Tree) NumNodes() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.names)
}

// LiveLeaves returns the number of leaves with nonzero decayed usage.
func (t *Tree) LiveLeaves() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.liveLeafN
}

// Flat reports whether the tree is degenerate: every node a direct
// child of the root. Only then is the factor of an entity a monotone
// function of its own usage alone, which is what makes incremental
// priority repair (core.jobTable.repair) exact; deeper trees fall back
// to full re-sorts when usage changes.
func (t *Tree) Flat() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flat
}

// addNode appends a node; caller holds mu (or is the constructor).
func (t *Tree) addNode(name string, parent NodeID) NodeID {
	if parent > 0 {
		t.flat = false
	}
	id := NodeID(len(t.names))
	t.names = append(t.names, name)
	t.parent = append(t.parent, parent)
	d := int32(0)
	if parent != None {
		d = t.depth[parent] + 1
	}
	t.depth = append(t.depth, d)
	t.quota = append(t.quota, 1)
	t.overW = append(t.overW, 1)
	t.raw = append(t.raw, 0)
	t.stamp = append(t.stamp, t.epoch)
	t.death = append(t.death, neverEpoch)
	t.live = append(t.live, false)
	t.liveQ = append(t.liveQ, 0)
	t.liveN = append(t.liveN, 0)
	return id
}

// Child returns the child of parent with the given name, creating it
// (quota 1, weight 1, no usage) if absent.
func (t *Tree) Child(parent NodeID, name string) NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.childLocked(parent, name)
}

func (t *Tree) childLocked(parent NodeID, name string) NodeID {
	k := childKey{parent, name}
	if id, ok := t.children[k]; ok {
		return id
	}
	id := t.addNode(name, parent)
	t.children[k] = id
	return id
}

// SetQuota sets a node's share quota relative to its siblings.
// Quotas of dead nodes do not dilute live ones: targets divide by the
// sum of live siblings' quotas.
func (t *Tree) SetQuota(id NodeID, q float64) {
	if q <= 0 {
		q = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.live[id] {
		if p := t.parent[id]; p != None {
			t.liveQ[p] += q - t.quota[id]
		}
	}
	t.quota[id] = q
}

// SetOverWeight sets a node's over-quota weight: how strongly
// exceeding its share counts against it. Weights > 1 soften the
// penalty (the node is entitled to more of the slack), < 1 harden it.
func (t *Tree) SetOverWeight(id NodeID, w float64) {
	if w <= 0 {
		w = 1
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.overW[id] = w
}

// UserID interns a user name and returns its leaf, creating the leaf
// under the user's configured home node (or the root) on first sight.
func (t *Tree) UserID(name string) NodeID {
	if dense, ok := t.users.Lookup(name); ok {
		t.mu.Lock()
		id := t.userNode[dense]
		t.mu.Unlock()
		return id
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	dense := t.users.Intern(name)
	if int(dense) < len(t.userNode) {
		return t.userNode[dense]
	}
	home := NodeID(0)
	if h, ok := t.userHome[name]; ok {
		home = h
	}
	id := t.childLocked(home, name)
	for int(dense) >= len(t.userNode) {
		t.userNode = append(t.userNode, None)
	}
	t.userNode[dense] = id
	return id
}

// LookupUser returns the leaf for a user without creating it.
func (t *Tree) LookupUser(name string) (NodeID, bool) {
	dense, ok := t.users.Lookup(name)
	if !ok {
		return None, false
	}
	t.mu.Lock()
	id := t.userNode[dense]
	t.mu.Unlock()
	if id == None {
		return None, false
	}
	return id, true
}

// Name returns a node's own name component.
func (t *Tree) Name(id NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.names[id]
}

// Parent returns a node's parent (None for the root).
func (t *Tree) Parent(id NodeID) NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.parent[id]
}

// Path returns the dot-joined path from the root, e.g. "org.team.u1".
func (t *Tree) Path(id NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.pathLocked(id)
}

// CachedPath is Path with memoization: node paths are immutable, so
// repeat callers (the fairness rollup does one per ancestor per
// charge) get the same string without rebuilding it.
func (t *Tree) CachedPath(id NodeID) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	for int(id) >= len(t.pathCache) {
		t.pathCache = append(t.pathCache, "")
	}
	if t.pathCache[id] == "" && id != 0 {
		t.pathCache[id] = t.pathLocked(id)
	}
	return t.pathCache[id]
}

// decayPow returns decay^k. Caller holds mu.
func (t *Tree) decayPow(k int64) float64 {
	if k <= 0 {
		return 1
	}
	if t.decay >= 1 {
		return 1
	}
	if t.decay <= 0 {
		return 0
	}
	if t.powZero >= 0 && k >= int64(t.powZero) {
		return 0
	}
	if k >= maxPowMemo {
		return math.Pow(t.decay, float64(k))
	}
	for int64(len(t.pow)) <= k {
		next := t.pow[len(t.pow)-1] * t.decay
		if next == 0 {
			t.powZero = len(t.pow)
			return 0
		}
		t.pow = append(t.pow, next)
	}
	return t.pow[k]
}

// usageAt returns a node's decayed usage at the current epoch without
// mutating it. Caller holds mu.
func (t *Tree) usageAt(id NodeID) float64 {
	r := t.raw[id]
	if r == 0 {
		return 0
	}
	if k := t.epoch - t.stamp[id]; k > 0 {
		return r * t.decayPow(k)
	}
	return r
}

// touch folds pending decay into a node's stored value. Caller holds mu.
func (t *Tree) touch(id NodeID) {
	if k := t.epoch - t.stamp[id]; k > 0 {
		if t.raw[id] != 0 {
			t.raw[id] *= t.decayPow(k)
		}
		t.stamp[id] = t.epoch
	}
}

// UsageOf returns a node's decayed usage at the current epoch.
func (t *Tree) UsageOf(id NodeID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.usageAt(id)
}

// RecordNow charges usage to a leaf immediately (visible to the next
// Factor read). This is the single-threaded scheduler path; concurrent
// producers use Record, which defers to the next Advance.
func (t *Tree) RecordNow(id NodeID, amt float64) {
	if amt <= 0 {
		return
	}
	t.mu.Lock()
	t.applyLeaf(id, amt)
	t.mu.Unlock()
}

// applyLeaf charges amt to a leaf and propagates to its ancestors.
// Caller holds mu; amt > 0.
func (t *Tree) applyLeaf(id NodeID, amt float64) {
	t.touch(id)
	t.raw[id] += amt
	if !t.live[id] {
		t.revive(id)
	}
	t.scheduleDeath(id)
	for p := t.parent[id]; p != None; p = t.parent[p] {
		t.touch(p)
		t.raw[p] += amt
	}
	t.logDirty(id)
	if t.rank != nil {
		t.rank.update(t, id)
	}
}

// revive marks a leaf live and restores its ancestors' live-children
// accounting. Caller holds mu.
func (t *Tree) revive(id NodeID) {
	t.live[id] = true
	t.liveLeafN++
	ch := id
	for p := t.parent[ch]; p != None; p = t.parent[p] {
		t.liveQ[p] += t.quota[ch]
		t.liveN[p]++
		if t.live[p] {
			break
		}
		t.live[p] = true
		ch = p
	}
}

// kill expires a leaf whose usage decayed below eps: its residual is
// subtracted from every ancestor and liveness is cascaded. Caller
// holds mu.
func (t *Tree) kill(id NodeID) {
	residual := t.usageAt(id)
	t.raw[id] = 0
	t.stamp[id] = t.epoch
	t.death[id] = neverEpoch
	t.live[id] = false
	t.liveLeafN--
	ch := id
	unlink := true
	for p := t.parent[ch]; p != None; p = t.parent[p] {
		if residual > 0 {
			t.touch(p)
			t.raw[p] -= residual
			if t.raw[p] < 0 {
				t.raw[p] = 0
			}
		}
		if unlink {
			t.liveQ[p] -= t.quota[ch]
			t.liveN[p]--
			if t.liveN[p] > 0 {
				unlink = false
			} else {
				t.live[p] = false
				t.liveQ[p] = 0
				t.liveN[p] = 0
				ch = p
			}
		}
	}
	t.logDirty(id)
	if t.rank != nil {
		t.rank.remove(id)
	}
}

// scheduleDeath computes the first epoch at which a leaf's usage will
// decay below eps and (re)schedules its heap entry. Caller holds mu.
func (t *Tree) scheduleDeath(id NodeID) {
	u := t.raw[id]
	var at int64
	switch {
	case u < eps:
		at = t.epoch + 1
	case t.decay >= 1:
		at = neverEpoch
	case t.decay <= 0:
		at = t.epoch + 1
	default:
		// Analytic first k with u·decay^k < eps, then probe ±
		// against decayPow so the scheduled epoch is exact in
		// the same arithmetic usageAt will use.
		k := int64(math.Ceil(math.Log(eps/u) / t.lnDecay))
		if k < 1 {
			k = 1
		}
		for u*t.decayPow(k) >= eps {
			k++
		}
		for k > 1 && u*t.decayPow(k-1) < eps {
			k--
		}
		at = t.epoch + k
	}
	if t.death[id] == at {
		return
	}
	t.death[id] = at
	if at != neverEpoch {
		t.deaths.push(deathEntry{epoch: at, id: id})
	}
}

// Advance folds pending sharded records into the tree, rolls the
// epoch forward to now's interval, and reaps leaves whose usage
// decayed below eps. Unlike the legacy flat fairshare this is
// O(records + deaths), not O(intervals × nodes).
func (t *Tree) Advance(now sim.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.foldLocked()
	e := int64(now / sim.Time(t.interval))
	if e <= t.epoch {
		return
	}
	t.epoch = e
	for {
		ent, ok := t.deaths.peek()
		if !ok || ent.epoch > t.epoch {
			break
		}
		t.deaths.pop()
		// Stale entries (rescheduled or already-dead nodes)
		// are discarded lazily.
		if t.death[ent.id] != ent.epoch || !t.live[ent.id] {
			continue
		}
		t.kill(ent.id)
	}
}

// Factor returns the fairshare factor for a leaf: at each tree level
// the node's live-quota share minus its fraction of the parent's
// decayed usage, summed up the path. Positive means underserved.
// Over-quota weight softens (w>1) or hardens (w<1) the penalty when a
// node is above its share. A flat tree (all users under the root,
// quota 1) reduces exactly to the legacy 1/n − u/total.
func (t *Tree) Factor(id NodeID) float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.factorLocked(id)
}

func (t *Tree) factorLocked(id NodeID) float64 {
	if !t.live[0] {
		return 0
	}
	f := 0.0
	for n := id; ; {
		p := t.parent[n]
		if p == None {
			break
		}
		var target float64
		if lq := t.liveQ[p]; lq > 0 {
			target = t.quota[n] / lq
		}
		var actual float64
		if pu := t.usageAt(p); pu > eps {
			if u := t.usageAt(n); u > 0 {
				actual = u / pu
			}
		}
		term := target - actual
		if term < 0 {
			if w := t.overW[n]; w != 1 {
				term /= w
			}
		}
		f += term
		n = p
	}
	return f
}

// NewcomerFactor is the factor an unknown (never-recorded) user would
// get: a full root-level share with zero usage. Matches the legacy
// 1/n for a flat tree.
func (t *Tree) NewcomerFactor() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.live[0] {
		return 0
	}
	if lq := t.liveQ[0]; lq > 0 {
		return 1 / lq
	}
	return 0
}

// ChangeSerial returns the serial the next dirty entry will get.
// Consumers snapshot it, then later call DirtySince(snapshot). The
// snapshot seals the log: entries logged before it may already have
// been acted on, so a later change to the same leaf must append a new
// entry rather than coalesce into the sealed tail.
func (t *Tree) ChangeSerial() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sealed = t.serial
	return t.serial
}

// DirtySince returns the leaves whose usage changed at or after the
// given serial. ok=false means the change log was compacted past the
// serial and the consumer must do a full rebuild. The returned slice
// aliases internal storage: it is valid until the next tree mutation.
func (t *Tree) DirtySince(serial uint64) ([]NodeID, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if serial < t.dirtyBase {
		return nil, false
	}
	if t.sealed < t.serial {
		t.sealed = t.serial
	}
	if serial >= t.serial {
		return nil, true
	}
	return t.dirty[serial-t.dirtyBase:], true
}

// logDirty appends to the change log, skipping immediate repeats of
// the same leaf — but only while the tail entry is unsealed: once a
// consumer has snapshotted past it (ChangeSerial/DirtySince), it may
// already have re-ranked that leaf, and a fresh change must get a
// fresh serial or it would be invisible to DirtySince forever.
// Caller holds mu.
func (t *Tree) logDirty(id NodeID) {
	if n := len(t.dirty); n > 0 && t.dirty[n-1] == id && t.serial > t.sealed {
		return
	}
	if len(t.dirty) >= 2*t.maxDirty {
		drop := len(t.dirty) - t.maxDirty
		copy(t.dirty, t.dirty[drop:])
		t.dirty = t.dirty[:t.maxDirty]
		t.dirtyBase += uint64(drop)
	}
	t.dirty = append(t.dirty, id)
	t.serial++
}

// deathHeap is a min-heap of (epoch, id) with lazy invalidation:
// entries whose epoch no longer matches death[id] are skipped on pop.
type deathHeap struct {
	a []deathEntry
}

type deathEntry struct {
	epoch int64
	id    NodeID
}

func (h *deathHeap) less(i, j int) bool {
	if h.a[i].epoch != h.a[j].epoch {
		return h.a[i].epoch < h.a[j].epoch
	}
	return h.a[i].id < h.a[j].id
}

func (h *deathHeap) push(e deathEntry) {
	h.a = append(h.a, e)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(i, p) {
			break
		}
		h.a[i], h.a[p] = h.a[p], h.a[i]
		i = p
	}
}

func (h *deathHeap) peek() (deathEntry, bool) {
	if len(h.a) == 0 {
		return deathEntry{}, false
	}
	return h.a[0], true
}

func (h *deathHeap) pop() deathEntry {
	top := h.a[0]
	n := len(h.a) - 1
	h.a[0] = h.a[n]
	h.a = h.a[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && h.less(l, s) {
			s = l
		}
		if r < n && h.less(r, s) {
			s = r
		}
		if s == i {
			break
		}
		h.a[i], h.a[s] = h.a[s], h.a[i]
		i = s
	}
	return top
}
