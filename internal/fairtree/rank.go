package fairtree

import "math"

// Ranking is an indexed max-heap over live leaves ordered by decayed
// usage. The trick that makes it O(log n) per update instead of
// O(n log n) per epoch is the key: instead of the decayed usage
// itself (which changes for every node at every epoch), each leaf is
// keyed by the epoch-invariant normalized log-usage
//
//	key = ln(raw) − stamp·ln(decay)
//
// Uniform decay multiplies every usage by the same factor, which adds
// the same constant to every key — so the heap order never changes as
// time passes, and only the one leaf actually touched by a Record or
// death moves (one sift, O(log n)). A full-rescan oracle at 1M leaves
// pays O(n) per refresh; see BenchmarkRankingVsRescan.
type Ranking struct {
	ids []NodeID  // heap slots
	pos []int32   // NodeID → slot+1 (0 = absent)
	key []float64 // NodeID → normalized log-usage
}

// EnableRanking attaches a usage ranking to the tree. It must be
// called before any usage is recorded; updates are maintained
// incrementally from then on.
func (t *Tree) EnableRanking() *Ranking {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rank == nil {
		t.rank = &Ranking{}
	}
	return t.rank
}

// normKey computes the epoch-invariant heap key for a leaf. Caller
// holds t.mu. For decay 0 the stamp term is dropped (everything dies
// next epoch anyway, so cross-epoch order is moot); for decay 1,
// lnDecay is 0 and the key is exactly ln(raw).
func (t *Tree) normKey(id NodeID) float64 {
	return math.Log(t.raw[id]) - float64(t.stamp[id])*t.lnDecay
}

// Len returns the number of ranked leaves.
func (t *Tree) rankLen() int {
	if t.rank == nil {
		return 0
	}
	return len(t.rank.ids)
}

// Top returns the leaf with the highest decayed usage, or None.
func (t *Tree) Top() NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rankLen() == 0 {
		return None
	}
	return t.rank.ids[0]
}

// TopK appends the k heaviest leaves (highest decayed usage first)
// to dst and returns it. It is O(k log k) via a bounded frontier
// walk of the heap, not a full sort.
func (t *Tree) TopK(k int, dst []NodeID) []NodeID {
	t.mu.Lock()
	defer t.mu.Unlock()
	r := t.rank
	if r == nil || len(r.ids) == 0 || k <= 0 {
		return dst
	}
	// Frontier of candidate heap slots, ordered by key descending.
	// Pop the best, emit it, push its children.
	frontier := []int32{0}
	for len(frontier) > 0 && k > 0 {
		best := 0
		for i := 1; i < len(frontier); i++ {
			a, b := frontier[i], frontier[best]
			ka, kb := r.key[r.ids[a]], r.key[r.ids[b]]
			if ka > kb || (ka == kb && r.ids[a] < r.ids[b]) {
				best = i
			}
		}
		slot := frontier[best]
		frontier[best] = frontier[len(frontier)-1]
		frontier = frontier[:len(frontier)-1]
		dst = append(dst, r.ids[slot])
		k--
		if l := 2*slot + 1; int(l) < len(r.ids) {
			frontier = append(frontier, l)
		}
		if rr := 2*slot + 2; int(rr) < len(r.ids) {
			frontier = append(frontier, rr)
		}
	}
	return dst
}

// update inserts or re-sifts a leaf after its raw usage changed.
// Caller holds t.mu.
func (r *Ranking) update(t *Tree, id NodeID) {
	for int(id) >= len(r.pos) {
		r.pos = append(r.pos, 0)
		r.key = append(r.key, 0)
	}
	k := t.normKey(id)
	if r.pos[id] == 0 {
		r.key[id] = k
		r.ids = append(r.ids, id)
		r.pos[id] = int32(len(r.ids))
		r.siftUp(len(r.ids) - 1)
		return
	}
	old := r.key[id]
	r.key[id] = k
	slot := int(r.pos[id]) - 1
	if k > old {
		r.siftUp(slot)
	} else if k < old {
		r.siftDown(slot)
	}
}

// remove deletes a leaf from the ranking (on death). Caller holds t.mu.
func (r *Ranking) remove(id NodeID) {
	if r == nil || int(id) >= len(r.pos) || r.pos[id] == 0 {
		return
	}
	slot := int(r.pos[id]) - 1
	last := len(r.ids) - 1
	r.swap(slot, last)
	r.ids = r.ids[:last]
	r.pos[id] = 0
	if slot < last {
		r.siftDown(slot)
		r.siftUp(slot)
	}
}

func (r *Ranking) higher(i, j int) bool {
	a, b := r.ids[i], r.ids[j]
	if r.key[a] != r.key[b] {
		return r.key[a] > r.key[b]
	}
	return a < b
}

func (r *Ranking) swap(i, j int) {
	r.ids[i], r.ids[j] = r.ids[j], r.ids[i]
	r.pos[r.ids[i]] = int32(i + 1)
	r.pos[r.ids[j]] = int32(j + 1)
}

func (r *Ranking) siftUp(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !r.higher(i, p) {
			break
		}
		r.swap(i, p)
		i = p
	}
}

func (r *Ranking) siftDown(i int) {
	n := len(r.ids)
	for {
		l, rr := 2*i+1, 2*i+2
		s := i
		if l < n && r.higher(l, s) {
			s = l
		}
		if rr < n && r.higher(rr, s) {
			s = rr
		}
		if s == i {
			break
		}
		r.swap(i, s)
		i = s
	}
}
