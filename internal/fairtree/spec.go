package fairtree

import (
	"fmt"
	"strings"
)

// Spec is a declarative share-tree description, parsed from the
// FSTREE stanza in maui.cfg. An empty spec yields the degenerate flat
// tree (every user a direct child of the root with quota 1), which is
// bit-identical to the legacy flat fairshare.
type Spec struct {
	Nodes []SpecNode
}

// SpecNode declares one tree node by dotted path.
type SpecNode struct {
	// Path is the dot-separated path from the root, e.g.
	// "physics.lattice". Intermediate nodes are created implicitly.
	Path string
	// Quota is the node's share relative to its siblings (<=0
	// means 1).
	Quota float64
	// OverQuotaWeight softens (>1) or hardens (<1) the over-quota
	// penalty (<=0 means 1).
	OverQuotaWeight float64
	// Users lists user names homed at this node; their leaves are
	// created under it on first submit.
	Users []string
}

// Validate rejects empty paths and users homed at two nodes.
func (s *Spec) Validate() error {
	if s == nil {
		return nil
	}
	seen := make(map[string]string)
	for i := range s.Nodes {
		n := &s.Nodes[i]
		if n.Path == "" {
			return fmt.Errorf("fstree: node %d has empty path", i)
		}
		parts := strings.Split(n.Path, ".")
		for _, p := range parts {
			if p == "" {
				return fmt.Errorf("fstree: node %q has empty path component", n.Path)
			}
		}
		for _, u := range n.Users {
			if u == "" {
				return fmt.Errorf("fstree: node %q lists an empty user name", n.Path)
			}
			if prev, dup := seen[u]; dup {
				return fmt.Errorf("fstree: user %q homed at both %q and %q", u, prev, n.Path)
			}
			seen[u] = n.Path
		}
	}
	return nil
}

// ApplySpec materializes the spec's interior nodes and user homes.
// Returns the first validation error, leaving the tree unchanged on
// failure.
func (t *Tree) ApplySpec(s *Spec) error {
	if s == nil {
		return nil
	}
	if err := s.Validate(); err != nil {
		return err
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	for i := range s.Nodes {
		n := &s.Nodes[i]
		id := NodeID(0)
		parts := strings.Split(n.Path, ".")
		for _, p := range parts {
			id = t.childLocked(id, p)
		}
		if n.Quota > 0 {
			if t.live[id] {
				if p := t.parent[id]; p != None {
					t.liveQ[p] += n.Quota - t.quota[id]
				}
			}
			t.quota[id] = n.Quota
		}
		if n.OverQuotaWeight > 0 {
			t.overW[id] = n.OverQuotaWeight
		}
		for _, u := range n.Users {
			t.userHome[u] = id
		}
		// A user homed under a non-root node will become a depth-2
		// leaf: the hierarchy is decided now, not at first submit, so
		// the scheduler's flat-order fast path must shut off here.
		if id > 0 && len(n.Users) > 0 {
			t.flat = false
		}
	}
	return nil
}
