package fairtree

import (
	"sort"
	"sync"
)

// stamp is one pending usage charge awaiting fold.
type stamp struct {
	id  NodeID
	amt float64
}

// shard is a lock-striped append log. Padding keeps stripes on
// separate cache lines so concurrent producers don't false-share.
type shard struct {
	mu  sync.Mutex
	buf []stamp // guarded by mu
	_   [40]byte
}

type shardSet struct {
	shards []shard
}

func newShardSet(n int) *shardSet {
	return &shardSet{shards: make([]shard, n)}
}

// Record appends a usage charge to one of the lock-striped shards.
// It is O(1), uncontended across producers that hash to different
// stripes, and safe to call concurrently with everything else. The
// charge becomes visible at the next Advance (fold).
func (t *Tree) Record(id NodeID, amt float64) {
	if amt <= 0 || id <= 0 {
		return
	}
	s := &t.shards.shards[uint32(id)%uint32(len(t.shards.shards))]
	s.mu.Lock()
	s.buf = append(s.buf, stamp{id: id, amt: amt})
	s.mu.Unlock()
}

// PendingRecords reports how many sharded charges await the next fold.
func (t *Tree) PendingRecords() int {
	n := 0
	for i := range t.shards.shards {
		s := &t.shards.shards[i]
		s.mu.Lock()
		n += len(s.buf)
		s.mu.Unlock()
	}
	return n
}

// Fold drains the shards into the tree without rolling the epoch.
// Advance calls this implicitly; it is exported for callers that need
// sharded records visible mid-epoch.
func (t *Tree) Fold() {
	t.mu.Lock()
	t.foldLocked()
	t.mu.Unlock()
}

// foldLocked drains every shard and applies the charges. The collected
// stamps are sorted by (id, amt) before accumulation so the resulting
// float sums — and therefore every downstream factor, history row, and
// scheduling decision — are byte-identical no matter how producers
// were scheduled across shards. Caller holds mu.
func (t *Tree) foldLocked() {
	buf := t.foldBuf[:0]
	for i := range t.shards.shards {
		s := &t.shards.shards[i]
		s.mu.Lock()
		buf = append(buf, s.buf...)
		s.buf = s.buf[:0]
		s.mu.Unlock()
	}
	t.foldBuf = buf[:0] // keep capacity
	if len(buf) == 0 {
		return
	}
	sort.Slice(buf, func(i, j int) bool {
		if buf[i].id != buf[j].id {
			return buf[i].id < buf[j].id
		}
		return buf[i].amt < buf[j].amt
	})
	// Accumulate per-id runs in sorted order, one applyLeaf per id.
	runID := buf[0].id
	sum := 0.0
	for i := 0; i < len(buf); i++ {
		if buf[i].id != runID {
			if sum > 0 {
				t.applyLeaf(runID, sum)
			}
			runID = buf[i].id
			sum = 0
		}
		sum += buf[i].amt
	}
	if sum > 0 {
		t.applyLeaf(runID, sum)
	}
}
