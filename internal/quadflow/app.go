package quadflow

import (
	"fmt"

	"repro/internal/job"
	"repro/internal/rms"
	"repro/internal/sim"
)

// App runs a Quadflow case as a batch job inside the simulated batch
// system (implements rms.App): it computes phase after phase, and at
// each grid adaptation whose load crosses the threshold it issues a
// dynamic request through the server — the full §III-B workflow rather
// than the closed-form Simulate.
type App struct {
	Case Case
	// GrowCores is how many *additional* cores each dynamic request
	// asks for (0 = double the current allocation).
	GrowCores int
	// Dynamic enables requests; a static App just computes.
	Dynamic bool

	procs    int
	phase    int
	expanded bool
	done     []sim.Duration
}

// PhaseTimes returns the completed phases' durations.
func (a *App) PhaseTimes() []sim.Duration { return append([]sim.Duration(nil), a.done...) }

// Expanded reports whether a dynamic request was granted.
func (a *App) Expanded() bool { return a.expanded }

// OnStart begins phase 0 on the job's initial allocation.
func (a *App) OnStart(s *rms.Server, j *job.Job, now sim.Time) {
	a.procs = j.Cores
	a.phase = 0
	a.expanded = false
	a.done = nil
	// Safety net: the server's walltime enforcement is authoritative,
	// but schedule a far-future completion so a model bug cannot hang
	// the simulation.
	s.ScheduleCompletion(j, now+j.Walltime)
	a.beginPhase(s, j, now)
}

func (a *App) beginPhase(s *rms.Server, j *job.Job, now sim.Time) {
	if a.phase >= len(a.Case.Phases) {
		s.ScheduleCompletion(j, now)
		return
	}
	p := a.Case.Phases[a.phase]
	// Grid adaptation before every phase but the first: inspect the
	// new load and possibly request resources before computing.
	if a.Dynamic && a.phase > 0 && !a.expanded && p.Cells/a.procs > a.Case.Threshold {
		extra := a.GrowCores
		if extra <= 0 {
			extra = a.procs
		}
		if err := s.RequestDyn(j, extra); err == nil {
			return // compute resumes in OnDynResult
		}
	}
	a.compute(s, j, now)
}

func (a *App) compute(s *rms.Server, j *job.Job, now sim.Time) {
	p := a.Case.Phases[a.phase]
	d := a.Case.PhaseTime(p, a.procs)
	label := fmt.Sprintf("%s %s phase %d", j.ID, a.Case.Name, a.phase)
	s.ScheduleAppEvent(j, now+d, label, func(end sim.Time) {
		a.done = append(a.done, d)
		a.phase++
		a.beginPhase(s, j, end)
	})
}

// OnDynResult resumes the pending phase, on the grown allocation if
// the request was granted.
func (a *App) OnDynResult(s *rms.Server, j *job.Job, granted bool, now sim.Time) {
	if granted {
		a.expanded = true
		a.procs = j.TotalCores()
	}
	a.compute(s, j, now)
}

// OnPreempt resets progress; the solver restarts from the initial grid.
func (a *App) OnPreempt(s *rms.Server, j *job.Job, now sim.Time) {
	a.phase = 0
	a.expanded = false
	a.done = nil
}
