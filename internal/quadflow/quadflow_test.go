package quadflow

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/fairness"
	"repro/internal/job"
	"repro/internal/metrics"
	"repro/internal/rms"
	"repro/internal/sim"
)

func TestCaseShapes(t *testing.T) {
	fp := FlatPlate()
	if fp.Adaptations() != 2 {
		t.Errorf("FlatPlate adaptations = %d, want 2 (§IV-A)", fp.Adaptations())
	}
	cyl := Cylinder()
	if cyl.Adaptations() != 5 {
		t.Errorf("Cylinder adaptations = %d, want 5 (§IV-A)", cyl.Adaptations())
	}
	if fp.Threshold != 3000 || cyl.Threshold != 15000 {
		t.Error("thresholds per §IV-A")
	}
	// Cells grow monotonically (adaptive refinement).
	for _, c := range Cases() {
		for i := 1; i < len(c.Phases); i++ {
			if c.Phases[i].Cells <= c.Phases[i-1].Cells {
				t.Errorf("%s phase %d cells did not grow", c.Name, i)
			}
		}
	}
	// FlatPlate is ~4.5x as compute-intensive per cell as Cylinder.
	ratio := fp.CellCost / cyl.CellCost
	if ratio < 4 || ratio > 5 {
		t.Errorf("per-cell intensity ratio = %.2f, want 4-5", ratio)
	}
}

func TestThresholdCrossedOnlyAtFinalAdaptation(t *testing.T) {
	// The paper: "The threshold ... was exceeded in the final grid
	// adaptation phase in both cases."
	for _, c := range Cases() {
		for i, p := range c.Phases {
			crossed := p.Cells/16 > c.Threshold
			if i == len(c.Phases)-1 && !crossed {
				t.Errorf("%s final phase must cross the threshold at 16 procs", c.Name)
			}
			if i < len(c.Phases)-1 && crossed {
				t.Errorf("%s phase %d crosses the threshold early", c.Name, i)
			}
		}
		// After doubling to 32 the load is back under the threshold.
		last := c.Phases[len(c.Phases)-1]
		if last.Cells/32 > c.Threshold {
			t.Errorf("%s final phase still over threshold at 32 procs", c.Name)
		}
	}
}

func TestEarlyPhasesDoNotSpeedUp(t *testing.T) {
	// Fig. 7: time until the final adaptation is identical at 16 and
	// 32 cores (underloaded processes).
	for _, c := range Cases() {
		for i, p := range c.Phases[:len(c.Phases)-1] {
			t16 := c.PhaseTime(p, 16)
			t32 := c.PhaseTime(p, 32)
			if t16 != t32 {
				t.Errorf("%s phase %d: 16-core %v != 32-core %v", c.Name, i, t16, t32)
			}
		}
		// The final phase does speed up.
		last := c.Phases[len(c.Phases)-1]
		if c.PhaseTime(last, 32) >= c.PhaseTime(last, 16) {
			t.Errorf("%s final phase must speed up with 32 cores", c.Name)
		}
	}
}

func TestFig7Savings(t *testing.T) {
	// Paper: Cylinder 33% faster (10 h saved), FlatPlate 17% (3 h).
	cyl := Fig7(Cylinder(), 16, 500*sim.Millisecond)
	s := Savings(cyl[0], cyl[2])
	if s < 0.30 || s > 0.36 {
		t.Errorf("Cylinder dynamic saving = %.1f%%, want ≈33%%", s*100)
	}
	// Static 16-core Cylinder runs ~30 h; the saving is ~10 h.
	saved := cyl[0].Total - cyl[2].Total
	if saved < 8*sim.Hour || saved > 12*sim.Hour {
		t.Errorf("Cylinder absolute saving = %v, want ≈10 h", saved)
	}
	if cyl[0].Total < 25*sim.Hour || cyl[0].Total > 35*sim.Hour {
		t.Errorf("Cylinder static total = %v, want ≈30 h", cyl[0].Total)
	}
	// Request lands at ≈16% of the static execution time (§IV-B).
	frac := float64(cyl[2].ExpandAt) / float64(cyl[0].Total)
	if frac < 0.14 || frac > 0.18 {
		t.Errorf("Cylinder request point = %.1f%% of SET, want ≈16%%", frac*100)
	}

	fp := Fig7(FlatPlate(), 16, 500*sim.Millisecond)
	s = Savings(fp[0], fp[2])
	if s < 0.14 || s > 0.20 {
		t.Errorf("FlatPlate dynamic saving = %.1f%%, want ≈17%%", s*100)
	}
	saved = fp[0].Total - fp[2].Total
	if saved < 2*sim.Hour || saved > 4*sim.Hour {
		t.Errorf("FlatPlate absolute saving = %v, want ≈3 h", saved)
	}
}

func TestDynamicMatchesStaticTails(t *testing.T) {
	// The dynamic run's final phase runs at the 32-core pace; its
	// early phases at the 16-core pace (which equal the 32-core pace).
	for _, c := range Cases() {
		runs := Fig7(c, 16, 0)
		n := len(c.Phases)
		for i := 0; i < n-1; i++ {
			if runs[2].PhaseTimes[i] != runs[0].PhaseTimes[i] {
				t.Errorf("%s dynamic phase %d should match static-16", c.Name, i)
			}
		}
		if runs[2].PhaseTimes[n-1] != runs[1].PhaseTimes[n-1] {
			t.Errorf("%s dynamic final phase should match static-32", c.Name)
		}
		if !runs[2].Expanded {
			t.Errorf("%s dynamic run never expanded", c.Name)
		}
		if runs[0].Expanded || runs[1].Expanded {
			t.Error("static runs must not expand")
		}
	}
}

func TestSimulateOverheadCharged(t *testing.T) {
	c := Cylinder()
	withOH := Simulate(c, 16, true, 32, sim.Second)
	noOH := Simulate(c, 16, true, 32, 0)
	if withOH.Total-noOH.Total != sim.Second {
		t.Errorf("overhead delta = %v, want 1s", withOH.Total-noOH.Total)
	}
	if withOH.Overhead != sim.Second {
		t.Error("overhead not recorded")
	}
}

func TestSavingsDegenerate(t *testing.T) {
	if Savings(RunResult{}, RunResult{}) != 0 {
		t.Error("zero-total savings should be 0")
	}
}

func TestFormatFig7(t *testing.T) {
	c := Cylinder()
	out := FormatFig7(c, Fig7(c, 16, 0))
	if !strings.Contains(out, "Cylinder") || !strings.Contains(out, "dynamic saves") {
		t.Errorf("format:\n%s", out)
	}
}

// TestAppInBatchSystem runs the Quadflow App through the full
// simulated batch system and checks it matches the closed-form
// Simulate result (modulo the scheduling round-trip, which is
// instantaneous in virtual time).
func TestAppInBatchSystem(t *testing.T) {
	for _, c := range Cases() {
		eng := sim.NewEngine()
		cl := cluster.New(15, 8)
		sched := core.New(core.Options{Config: config.Default()}, 0)
		rec := metrics.NewRecorder(cl.TotalCores())
		srv := rms.NewServer(eng, cl, sched, rec)

		app := &App{Case: c, Dynamic: true}
		j := &job.Job{
			Name: c.Name, Cred: job.Credentials{User: "cfd"},
			Class: job.Evolving, Cores: 16, Walltime: 100 * sim.Hour,
		}
		srv.Submit(j, app)
		srv.Run(0)

		if j.State != job.Completed {
			t.Fatalf("%s: state = %v", c.Name, j.State)
		}
		if !app.Expanded() {
			t.Fatalf("%s: app never expanded on an idle cluster", c.Name)
		}
		want := Simulate(c, 16, true, 32, 0)
		if j.EndTime != want.Total {
			t.Errorf("%s: batch end %v != closed-form %v", c.Name, j.EndTime, want.Total)
		}
		if got := len(app.PhaseTimes()); got != len(c.Phases) {
			t.Errorf("%s: completed phases = %d", c.Name, got)
		}
	}
}

// TestAppRejectedContinuesStatic runs the App on a cluster with no
// spare resources: the dynamic request is rejected and the run
// degrades to the static 16-core time.
func TestAppRejectedContinuesStatic(t *testing.T) {
	c := FlatPlate()
	eng := sim.NewEngine()
	cl := cluster.New(2, 8) // exactly 16 cores, nothing spare
	cfg := config.Default()
	cfg.Fairness = fairness.NewConfig(fairness.None)
	sched := core.New(core.Options{Config: cfg}, 0)
	srv := rms.NewServer(eng, cl, sched, metrics.NewRecorder(cl.TotalCores()))

	app := &App{Case: c, Dynamic: true}
	j := &job.Job{
		Name: c.Name, Cred: job.Credentials{User: "cfd"},
		Class: job.Evolving, Cores: 16, Walltime: 100 * sim.Hour,
	}
	srv.Submit(j, app)
	srv.Run(0)

	if app.Expanded() {
		t.Fatal("no spare cores: must not expand")
	}
	want := Simulate(c, 16, false, 0, 0)
	if j.EndTime != want.Total {
		t.Errorf("rejected run end %v != static %v", j.EndTime, want.Total)
	}
}
