// Package quadflow models the evolving CFD application of §IV-A: the
// Quadflow flow solver performs a grid adaptation before each
// computation phase; an adaptation can multiply the number of grid
// cells, and when the cells-per-process load crosses a threshold the
// application requests additional cores via tm_dynget.
//
// The model is synthetic (the real Quadflow is a proprietary MPI
// code), but reproduces the properties Fig. 7 depends on:
//
//   - per-phase compute time grows with cells/process;
//   - underloaded processes hit a load floor, so phases whose
//     cells/process sit below the floor take the same time at 16 and
//     32 cores ("the time until the final grid adaptation level is
//     identical when executed with 16 or 32 cores");
//   - the threshold is crossed at the final adaptation, and growing
//     from 16 to 32 cores there saves ≈33% (Cylinder) / ≈17%
//     (FlatPlate) of the total static execution time, with the
//     request landing at ≈16% / ≈55% of the static run respectively.
package quadflow

import (
	"fmt"

	"repro/internal/sim"
)

// Phase is one computation phase (the grid state between two
// adaptations).
type Phase struct {
	// Cells is the grid size during this phase.
	Cells int
	// Iters is the number of solver iterations in the phase.
	Iters int
}

// Case is a Quadflow test configuration.
type Case struct {
	Name string
	// Threshold is the cells-per-process count above which the
	// application requests additional resources (§IV-A: 3000 for
	// FlatPlate, 15000 for Cylinder).
	Threshold int
	// MinLoad is the per-process load floor: below it, extra processes
	// do not speed a phase up (underloaded resources, §IV-A).
	MinLoad int
	// CellCost is seconds per cell per iteration per process-load unit.
	CellCost float64
	// Phases are the computation phases; Phases[i] follows the i-th
	// grid adaptation (Phases[0] is the initial grid).
	Phases []Phase
}

// Adaptations returns the number of grid adaptations the case performs.
func (c Case) Adaptations() int { return len(c.Phases) - 1 }

// PhaseTime returns the duration of one phase on procs processes.
func (c Case) PhaseTime(p Phase, procs int) sim.Duration {
	load := float64(p.Cells) / float64(procs)
	if load < float64(c.MinLoad) {
		load = float64(c.MinLoad)
	}
	return sim.Seconds(float64(p.Iters) * c.CellCost * load)
}

// FlatPlate returns the laminar boundary-layer validation case
// (Mach 2.6): two adaptations, threshold 3000 cells/process. The
// computational intensity per cell is ~4.5× the Cylinder case (§IV-A:
// "the FlatPlate case with one cell is equivalent to the Cylinder case
// with 4-5 cells").
func FlatPlate() Case {
	return Case{
		Name:      "FlatPlate",
		Threshold: 3000,
		MinLoad:   2800,
		CellCost:  0.055,
		Phases: []Phase{
			{Cells: 18000, Iters: 89},
			{Cells: 36000, Iters: 137},
			{Cells: 72000, Iters: 115},
		},
	}
}

// Cylinder returns the supersonic 2D-cylinder case (Mach 5.28): five
// adaptations, threshold 15000 cells/process, strong growth at the
// final adaptation (bow-shock refinement).
func Cylinder() Case {
	return Case{
		Name:      "Cylinder",
		Threshold: 15000,
		MinLoad:   14500,
		CellCost:  0.0126,
		Phases: []Phase{
			{Cells: 12000, Iters: 6},
			{Cells: 24000, Iters: 10},
			{Cells: 48000, Iters: 16},
			{Cells: 96000, Iters: 26},
			{Cells: 192000, Iters: 37},
			{Cells: 384000, Iters: 300},
		},
	}
}

// Cases returns the two published test cases.
func Cases() []Case { return []Case{FlatPlate(), Cylinder()} }

// RunResult is the outcome of one simulated Quadflow execution.
type RunResult struct {
	Case       string
	Dynamic    bool
	StartCores int
	// PhaseTimes are the per-phase durations in execution order (the
	// shaded segments of Fig. 7).
	PhaseTimes []sim.Duration
	// PhaseCores records the core count each phase ran on.
	PhaseCores []int
	Total      sim.Duration
	// Expanded reports whether a dynamic request was issued & granted.
	Expanded bool
	// ExpandAt is the elapsed time at which the allocation grew.
	ExpandAt sim.Duration
	// Overhead is the dynamic-allocation latency that was charged.
	Overhead sim.Duration
}

// Simulate runs a case. Static runs keep startCores throughout.
// Dynamic runs check the threshold after every grid adaptation and
// grow the allocation to growCores when crossed, charging the given
// allocation overhead (the paper measures it sub-second, Fig. 12).
func Simulate(c Case, startCores int, dynamic bool, growCores int, overhead sim.Duration) RunResult {
	res := RunResult{Case: c.Name, Dynamic: dynamic, StartCores: startCores}
	procs := startCores
	var elapsed sim.Duration
	for i, p := range c.Phases {
		// A grid adaptation precedes every phase but the first; the
		// application inspects its new load and may request resources
		// (tm_dynget) before computing.
		if dynamic && i > 0 && !res.Expanded && p.Cells/procs > c.Threshold {
			elapsed += overhead
			res.Expanded = true
			res.ExpandAt = elapsed
			res.Overhead = overhead
			procs = growCores
		}
		d := c.PhaseTime(p, procs)
		res.PhaseTimes = append(res.PhaseTimes, d)
		res.PhaseCores = append(res.PhaseCores, procs)
		elapsed += d
	}
	res.Total = elapsed
	return res
}

// Fig7 runs the three published configurations of one case — static on
// baseCores, static on 2×baseCores, dynamic growing from baseCores to
// 2×baseCores — and returns them in that order.
func Fig7(c Case, baseCores int, overhead sim.Duration) [3]RunResult {
	return [3]RunResult{
		Simulate(c, baseCores, false, 0, 0),
		Simulate(c, 2*baseCores, false, 0, 0),
		Simulate(c, baseCores, true, 2*baseCores, overhead),
	}
}

// Savings returns the fractional execution-time saving of a dynamic
// run over a static baseline.
func Savings(static, dynamic RunResult) float64 {
	if static.Total == 0 {
		return 0
	}
	return 1 - float64(dynamic.Total)/float64(static.Total)
}

// FormatFig7 renders the Fig. 7 comparison of one case.
func FormatFig7(c Case, runs [3]RunResult) string {
	out := fmt.Sprintf("%s (threshold %d cells/process, %d adaptations)\n",
		c.Name, c.Threshold, c.Adaptations())
	label := [3]string{
		fmt.Sprintf("static %d cores", runs[0].StartCores),
		fmt.Sprintf("static %d cores", runs[1].StartCores),
		fmt.Sprintf("dynamic %d→%d", runs[2].StartCores, runs[2].PhaseCores[len(runs[2].PhaseCores)-1]),
	}
	for i, r := range runs {
		out += fmt.Sprintf("  %-18s total %8s  phases:", label[i], sim.FormatTime(r.Total))
		for k, d := range r.PhaseTimes {
			out += fmt.Sprintf(" %s@%d", sim.FormatTime(d), r.PhaseCores[k])
		}
		out += "\n"
	}
	out += fmt.Sprintf("  dynamic saves %.1f%% vs static-%d (request at %.1f%% of static run)\n",
		Savings(runs[0], runs[2])*100, runs[0].StartCores,
		float64(runs[2].ExpandAt)/float64(runs[0].Total)*100)
	return out
}
