package fairness

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/fairtree"
	"repro/internal/job"
	"repro/internal/sim"
)

// loopAdvance is the per-interval reference the closed-form
// Tracker.Advance replaced, applied to a plain map: one decay
// multiplication and truncation per elapsed interval.
func loopAdvance(usage map[EntityKey]sim.Duration, intervalStart *sim.Time, interval sim.Duration, decay float64, now sim.Time) {
	for now >= *intervalStart+interval {
		*intervalStart += interval
		if decay <= 0 {
			clear(usage)
			continue
		}
		for k, v := range usage {
			nv := sim.Duration(float64(v) * decay)
			if nv <= 0 {
				delete(usage, k)
			} else {
				usage[k] = nv
			}
		}
	}
}

// TestAdvanceClosedFormEquivalence proves the closed-form decay^k roll
// exactly matches the per-interval loop for k ∈ {0, 1, 7, 1000} and
// decay ∈ {0, 0.5, 1}: 0 clears, 1 is the identity, and 0.5 halves
// exactly in float64 with floor(floor(v/2)/2) = floor(v/4) on the
// integer durations.
func TestAdvanceClosedFormEquivalence(t *testing.T) {
	for _, decay := range []float64{0, 0.5, 1} {
		for _, k := range []int64{0, 1, 7, 1000} {
			cfg := NewConfig(TargetDelay)
			cfg.Interval = sim.Hour
			cfg.Decay = decay
			tr := NewTracker(cfg, 0)
			oracle := make(map[EntityKey]sim.Duration)
			oracleStart := sim.Time(0)

			rng := rand.New(rand.NewSource(k ^ int64(decay*2)))
			for i := 0; i < 20; i++ {
				u := fmt.Sprintf("u%02d", i)
				g := fmt.Sprintf("g%d", i%4)
				delay := sim.Duration(rng.Intn(3_600_000)+1) * sim.Millisecond
				cred := job.Credentials{User: u, Group: g}
				tr.Charge(job.Credentials{User: "evolver"}, []JobDelay{{Job: &job.Job{ID: job.ID(i + 1), Cred: cred}, Delay: delay}})
				oracle[EntityKey{KindUser, u}] += delay
				oracle[EntityKey{KindGroup, g}] += delay
			}

			now := sim.Time(k) * sim.Time(sim.Hour)
			tr.Advance(now)
			loopAdvance(oracle, &oracleStart, sim.Hour, decay, now)

			if tr.IntervalStart() != oracleStart {
				t.Errorf("decay=%g k=%d: intervalStart %d vs oracle %d", decay, k, tr.IntervalStart(), oracleStart)
			}
			for i := 0; i < 20; i++ {
				for _, key := range []EntityKey{
					{KindUser, fmt.Sprintf("u%02d", i)},
					{KindGroup, fmt.Sprintf("g%d", i%4)},
				} {
					if got, want := tr.EntityUsage(key), oracle[key]; got != want {
						t.Errorf("decay=%g k=%d: %s = %d, oracle %d", decay, k, key, got, want)
					}
				}
			}
		}
	}
}

// TestAdvanceDecayOneBoundary pins the decay=1 identity: budgets never
// decay, the interval start still rolls, and a charge straddling many
// idle intervals survives bit-for-bit.
func TestAdvanceDecayOneBoundary(t *testing.T) {
	cfg := NewConfig(TargetDelay)
	cfg.Interval = sim.Hour
	cfg.Decay = 1
	cfg.Set(KindUser, "u", Limits{TargetDelayTime: 10 * sim.Minute})
	tr := NewTracker(cfg, 0)
	victim := mkJob(1, "u", "g")
	tr.Charge(job.Credentials{User: "e"}, []JobDelay{{Job: victim, Delay: 9 * sim.Minute}})
	tr.Advance(1000 * sim.Hour)
	if got := tr.EntityUsage(EntityKey{KindUser, "u"}); got != 9*sim.Minute {
		t.Errorf("decay=1 usage = %s, want 9m", sim.FormatTime(got))
	}
	if tr.IntervalStart() != 1000*sim.Hour {
		t.Errorf("intervalStart = %d", tr.IntervalStart())
	}
	// The never-forgotten budget still rejects further delays.
	if d := tr.Evaluate(job.Credentials{User: "e"}, []JobDelay{{Job: victim, Delay: 2 * sim.Minute}}); d.Allowed {
		t.Error("decay=1 budget must persist across intervals")
	}
}

// TestForgetJobAfterRequeue models a preempted-and-requeued job: the
// single-job delay budget must reset (it is a new queue residence),
// while the entity's interval budget keeps the charge.
func TestForgetJobAfterRequeue(t *testing.T) {
	cfg := NewConfig(SingleAndTargetDelay)
	cfg.Set(KindUser, "u", Limits{SingleDelayTime: 30 * sim.Minute, TargetDelayTime: 50 * sim.Minute})
	tr := NewTracker(cfg, 0)
	e := job.Credentials{User: "e"}
	victim := mkJob(1, "u", "g")
	tr.Charge(e, []JobDelay{{Job: victim, Delay: 25 * sim.Minute}})
	// 10 more minutes would break the 30m single-job limit.
	if d := tr.Evaluate(e, []JobDelay{{Job: victim, Delay: 10 * sim.Minute}}); d.Allowed {
		t.Fatal("should exceed single-job limit before requeue")
	}
	// Job starts, is preempted, comes back with the same ID.
	tr.ForgetJob(1)
	if d := tr.Evaluate(e, []JobDelay{{Job: victim, Delay: 10 * sim.Minute}}); !d.Allowed {
		t.Errorf("fresh queue residence should reset the single-job budget: %s", d.Reason)
	}
	// The user's interval budget did not reset: 25m is still charged,
	// so 30m more breaks the 50m target.
	if d := tr.Evaluate(e, []JobDelay{{Job: victim, Delay: 30 * sim.Minute}}); d.Allowed {
		t.Error("entity target budget must survive ForgetJob")
	}
}

func TestParsePolicyRoundTrip(t *testing.T) {
	for _, p := range []Policy{None, SingleJobDelay, TargetDelay, SingleAndTargetDelay} {
		got, err := ParsePolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParsePolicy(%s) = %v, %v", p, got, err)
		}
	}
}

// TestSameUserExemptionVsGroupLimits: the same-user exemption keys on
// the user alone — it must win even when the victim's group carries a
// hard veto and an exhausted budget.
func TestSameUserExemptionVsGroupLimits(t *testing.T) {
	cfg := NewConfig(SingleAndTargetDelay)
	cfg.Set(KindGroup, "locked", Limits{PermSet: true, Perm: false, SingleDelayTime: sim.Second, TargetDelayTime: sim.Second})
	tr := NewTracker(cfg, 0)
	alice := job.Credentials{User: "alice", Group: "other"}
	victim := mkJob(1, "alice", "locked")
	if d := tr.Evaluate(alice, []JobDelay{{Job: victim, Delay: sim.Hour}}); !d.Allowed {
		t.Errorf("same-user exemption must beat group veto: %s", d.Reason)
	}
	tr.Charge(alice, []JobDelay{{Job: victim, Delay: sim.Hour}})
	if tr.JobUsage(1) != 0 || tr.TotalCharged(KindGroup) != 0 {
		t.Error("exempt delay must not charge job or group")
	}
	// A different user delaying the same job hits the group veto.
	if d := tr.Evaluate(job.Credentials{User: "bob"}, []JobDelay{{Job: victim, Delay: sim.Second}}); d.Allowed {
		t.Error("group veto must apply to non-exempt requesters")
	}
}

// TestShareTreeRollup: with a share tree attached, a delay charged to
// a user also counts against every ancestor node's budget; over the
// degenerate flat tree nothing changes.
func TestShareTreeRollup(t *testing.T) {
	tree := fairtree.New(fairtree.Options{})
	if err := tree.ApplySpec(&fairtree.Spec{Nodes: []fairtree.SpecNode{
		{Path: "org.team", Users: []string{"alice", "bob"}},
	}}); err != nil {
		t.Fatal(err)
	}
	tree.UserID("alice")
	tree.UserID("bob")

	cfg := NewConfig(TargetDelay)
	cfg.Set(KindFSNode, "org", Limits{TargetDelayTime: 10 * sim.Minute})
	tr := NewTracker(cfg, 0)
	tr.AttachShareTree(tree)
	e := job.Credentials{User: "evolver"}
	tr.Charge(e, []JobDelay{{Job: mkJob(1, "alice", "g"), Delay: 4 * sim.Minute}})
	tr.Charge(e, []JobDelay{{Job: mkJob(2, "bob", "g"), Delay: 4 * sim.Minute}})
	if got := tr.EntityUsage(EntityKey{KindFSNode, "org"}); got != 8*sim.Minute {
		t.Errorf("org rollup = %s, want 8m", sim.FormatTime(got))
	}
	if got := tr.EntityUsage(EntityKey{KindFSNode, "org.team"}); got != 8*sim.Minute {
		t.Errorf("org.team rollup = %s, want 8m", sim.FormatTime(got))
	}
	if got := tr.TotalCharged(KindFSNode); got != 16*sim.Minute {
		t.Errorf("TotalCharged(fsnode) = %s", sim.FormatTime(got))
	}
	// Alice and bob have separate user budgets, but the shared org
	// budget (8m of 10m used) rejects 3 more minutes against either.
	if d := tr.Evaluate(e, []JobDelay{{Job: mkJob(3, "bob", "g"), Delay: 3 * sim.Minute}}); d.Allowed {
		t.Error("org budget must reject rollup overflow")
	}
	// An un-homed user does not touch tree budgets.
	tr.Charge(e, []JobDelay{{Job: mkJob(4, "carol", "g"), Delay: 4 * sim.Minute}})
	if got := tr.TotalCharged(KindFSNode); got != 16*sim.Minute {
		t.Error("unknown user must not roll up")
	}

	// Degenerate flat tree: no fsnode keys at all.
	flat := fairtree.New(fairtree.Options{})
	flat.UserID("alice")
	tr2 := NewTracker(NewConfig(TargetDelay), 0)
	tr2.AttachShareTree(flat)
	tr2.Charge(e, []JobDelay{{Job: mkJob(5, "alice", "g"), Delay: sim.Minute}})
	if got := tr2.TotalCharged(KindFSNode); got != 0 {
		t.Error("flat tree must add no fsnode charges")
	}
}

// evaluateFixture builds a loaded tracker for the zero-alloc guards
// and benchmarks: tree-attached credentials, limits at several levels,
// and a warm scratch state.
func evaluateFixture() (*Tracker, job.Credentials, []JobDelay) {
	tree := fairtree.New(fairtree.Options{})
	_ = tree.ApplySpec(&fairtree.Spec{Nodes: []fairtree.SpecNode{
		{Path: "org.team", Users: []string{"u1", "u2", "u3"}},
	}})
	for _, u := range []string{"u1", "u2", "u3"} {
		tree.UserID(u)
	}
	cfg := NewConfig(SingleAndTargetDelay)
	cfg.Set(KindUser, "u1", Limits{SingleDelayTime: 1000 * sim.Hour, TargetDelayTime: 10000 * sim.Hour})
	cfg.Set(KindGroup, "g", Limits{TargetDelayTime: 10000 * sim.Hour})
	cfg.Set(KindFSNode, "org", Limits{TargetDelayTime: 10000 * sim.Hour})
	tr := NewTracker(cfg, 0)
	tr.AttachShareTree(tree)
	delays := []JobDelay{
		{Job: mkJob(1, "u1", "g"), Delay: sim.Second},
		{Job: mkJob(2, "u2", "g"), Delay: 2 * sim.Second},
		{Job: mkJob(3, "u3", "g"), Delay: sim.Second},
	}
	return tr, job.Credentials{User: "evolver"}, delays
}

// TestEvaluateZeroAllocSteadyState is the alloc-regression guard for
// the Evaluate hot path: after warmup, repeated evaluations must not
// allocate.
func TestEvaluateZeroAllocSteadyState(t *testing.T) {
	tr, e, delays := evaluateFixture()
	tr.Evaluate(e, delays) // warm scratch
	if avg := testing.AllocsPerRun(100, func() {
		if d := tr.Evaluate(e, delays); !d.Allowed {
			t.Fatal(d.Reason)
		}
	}); avg != 0 {
		t.Errorf("Evaluate allocates %.1f/op steady-state, want 0", avg)
	}
}

// TestChargeZeroAllocSteadyState guards the Charge hot path the same
// way. Map growth allocates, so the fixture pre-charges to settle the
// buckets.
func TestChargeZeroAllocSteadyState(t *testing.T) {
	tr, e, delays := evaluateFixture()
	for i := 0; i < 10; i++ {
		tr.Charge(e, delays)
	}
	if avg := testing.AllocsPerRun(100, func() {
		tr.Charge(e, delays)
	}); avg != 0 {
		t.Errorf("Charge allocates %.1f/op steady-state, want 0", avg)
	}
}

func BenchmarkEvaluate(b *testing.B) {
	tr, e, delays := evaluateFixture()
	tr.Evaluate(e, delays)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Evaluate(e, delays)
	}
}

func BenchmarkCharge(b *testing.B) {
	tr, e, delays := evaluateFixture()
	for i := 0; i < 10; i++ {
		tr.Charge(e, delays)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Charge(e, delays)
	}
}
