// Package fairness implements the paper's dynamic fairness (DFS)
// policies (§III-D): site-configurable limits on how much delay the
// dynamic allocations of evolving jobs may inflict on queued static
// jobs. Two mechanisms exist and can be combined:
//
//   - DFSSingleJobDelay limits the delay any single queued job may
//     accumulate due to dynamic allocations.
//   - DFSTargetDelay limits the cumulative delay charged to a user
//     (or group/account/class/QoS) within a configurable interval;
//     at each interval boundary the accumulated delay decays by
//     DFSDecay, letting historical delays weigh in.
//
// Limits can be set per user, group, account, job class and QoS; when
// several levels apply, the most restrictive limit wins. A job whose
// credentials carry DFSDynDelayPerm=0 may never be delayed. Delays an
// evolving job causes to the *same user's* queued jobs are exempt.
package fairness

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/fairtree"
	"repro/internal/job"
	"repro/internal/sim"
)

// Policy selects which delay checks are enforced (DFSPolicy).
type Policy int

const (
	// None disables dynamic fairness: dynamic requests take highest
	// priority and delays to static jobs are ignored (the paper's
	// Dynamic-HP configuration).
	None Policy = iota
	// SingleJobDelay enforces only the per-job delay limit.
	SingleJobDelay
	// TargetDelay enforces only the per-interval cumulative limit.
	TargetDelay
	// SingleAndTargetDelay enforces both.
	SingleAndTargetDelay
)

var policyNames = map[Policy]string{
	None:                 "NONE",
	SingleJobDelay:       "DFSSINGLEJOBDELAY",
	TargetDelay:          "DFSTARGETDELAY",
	SingleAndTargetDelay: "DFSSINGLEANDTARGETDELAY",
}

func (p Policy) String() string {
	if s, ok := policyNames[p]; ok {
		return s
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParsePolicy parses the Maui-config spelling of a policy name.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "NONE", "":
		return None, nil
	case "DFSSINGLEJOBDELAY", "DFSSINGLEDELAY":
		return SingleJobDelay, nil
	case "DFSTARGETDELAY":
		return TargetDelay, nil
	case "DFSSINGLEANDTARGETDELAY", "DFSSINGLETARGETDELAY":
		return SingleAndTargetDelay, nil
	}
	return None, fmt.Errorf("fairness: unknown DFSPolicy %q", s)
}

func (p Policy) checksSingle() bool { return p == SingleJobDelay || p == SingleAndTargetDelay }
func (p Policy) checksTarget() bool { return p == TargetDelay || p == SingleAndTargetDelay }

// EntityKind is the credential level a limit is attached to.
type EntityKind int

const (
	KindUser EntityKind = iota
	KindGroup
	KindAccount
	KindClass
	KindQoS
	// KindFSNode is a share-tree interior node (org/team): when a
	// tracker has a share tree attached, a delay charged to a user
	// also rolls up to every ancestor node on the user's tree path,
	// so target-delay budgets can be set per org or team
	// (FSNODECFG[path] in maui.cfg).
	KindFSNode
)

var kindNames = [...]string{"user", "group", "account", "class", "qos", "fsnode"}

func (k EntityKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// EntityKey identifies a charged entity ("user:alice", "group:cfd").
type EntityKey struct {
	Kind EntityKind
	Name string
}

func (k EntityKey) String() string { return k.Kind.String() + ":" + k.Name }

// Limits holds the per-entity DFS settings. The zero value means
// "delays permitted, no limits" — matching the paper, where a limit
// value of 0 means unlimited (Fig. 6: user01 has DFSSINGLEDELAYTIME=0
// and "can be delayed for any amount of time" per job).
type Limits struct {
	// PermSet/Perm encode the tri-state DFSDynDelayPerm: unset (use
	// default, which allows), explicitly allowed, or disallowed.
	PermSet bool
	Perm    bool
	// SingleDelayTime bounds the delay any one queued job of this
	// entity may accumulate; 0 = unlimited.
	SingleDelayTime sim.Duration
	// TargetDelayTime bounds the cumulative delay charged to this
	// entity per interval; 0 = unlimited.
	TargetDelayTime sim.Duration
}

// Config is the site-wide dynamic fairness configuration.
type Config struct {
	Policy Policy
	// Interval is the DFSInterval accounting window; required when the
	// policy checks target delays.
	Interval sim.Duration
	// Decay is DFSDecay: the fraction of accumulated delay carried
	// into the next interval (0 = forget everything, 1 = never forget).
	Decay float64
	// Entities maps credential levels to their configured limits.
	Entities map[EntityKey]Limits
}

// NewConfig returns a Config with the given policy and no limits.
func NewConfig(p Policy) *Config {
	return &Config{Policy: p, Interval: sim.Hour, Entities: make(map[EntityKey]Limits)}
}

// Set assigns limits to an entity, replacing previous settings.
func (c *Config) Set(kind EntityKind, name string, l Limits) {
	if c.Entities == nil {
		c.Entities = make(map[EntityKey]Limits)
	}
	c.Entities[EntityKey{kind, name}] = l
}

// keysInto appends the entity keys applicable to a job's credentials,
// in a deterministic order, to dst (a scratch buffer the tracker
// reuses — the hot path of Evaluate and Charge allocates nothing
// steady-state). With a share tree attached, the user's ancestor
// nodes are appended too, so child charges roll up to org/team
// budgets; over the degenerate flat tree the user leaf hangs directly
// off the root and no extra keys appear.
func (t *Tracker) keysInto(cred job.Credentials, dst []EntityKey) []EntityKey {
	if cred.User != "" {
		dst = append(dst, EntityKey{KindUser, cred.User})
	}
	if cred.Group != "" {
		dst = append(dst, EntityKey{KindGroup, cred.Group})
	}
	if cred.Account != "" {
		dst = append(dst, EntityKey{KindAccount, cred.Account})
	}
	if cred.Class != "" {
		dst = append(dst, EntityKey{KindClass, cred.Class})
	}
	if cred.QoS != "" {
		dst = append(dst, EntityKey{KindQoS, cred.QoS})
	}
	if t.tree != nil && cred.User != "" {
		if leaf, ok := t.tree.LookupUser(cred.User); ok {
			for p := t.tree.Parent(leaf); p > 0; p = t.tree.Parent(p) {
				dst = append(dst, EntityKey{KindFSNode, t.tree.CachedPath(p)})
			}
		}
	}
	return dst
}

// JobDelay reports the delay a hypothetical dynamic grant would cause
// to one queued job (measured by the scheduler via reservation
// recomputation, Algorithm 2).
type JobDelay struct {
	Job   *job.Job
	Delay sim.Duration
}

// Decision is the outcome of a fairness evaluation.
type Decision struct {
	Allowed bool
	// Reason explains a rejection ("" when allowed).
	Reason string
}

// Tracker enforces a Config over time: it accumulates charged delays
// per entity and per queued job, and rolls accounting intervals with
// decay. It is not safe for concurrent use; the scheduler owns it.
type Tracker struct {
	cfg           *Config
	intervalStart sim.Time
	perEntity     map[EntityKey]sim.Duration
	perJob        map[job.ID]sim.Duration

	// tree, when attached, rolls every charge up to the user's
	// ancestor share-tree nodes (KindFSNode entities).
	tree *fairtree.Tree

	// Scratch reused across Evaluate/Charge calls so the hot path is
	// allocation-free once warm.
	keyBuf     []EntityKey
	evalEntity map[EntityKey]sim.Duration
	evalKeys   []EntityKey
}

// NewTracker creates a tracker starting its first interval at start.
func NewTracker(cfg *Config, start sim.Time) *Tracker {
	if cfg == nil {
		cfg = NewConfig(None)
	}
	if cfg.Interval <= 0 {
		cfg.Interval = sim.Hour
	}
	return &Tracker{
		cfg:           cfg,
		intervalStart: start,
		perEntity:     make(map[EntityKey]sim.Duration),
		perJob:        make(map[job.ID]sim.Duration),
	}
}

// Config returns the tracker's configuration.
func (t *Tracker) Config() *Config { return t.cfg }

// AttachShareTree connects a fairshare tree: from then on, charges to
// a user also count against the target-delay budgets of the user's
// ancestor nodes (KindFSNode). Attaching a flat tree is a no-op in
// effect.
func (t *Tracker) AttachShareTree(tr *fairtree.Tree) { t.tree = tr }

// Advance rolls the accounting interval forward to cover now, applying
// DFSDecay at each boundary crossed. Call before Evaluate/Charge.
//
// All k elapsed boundaries are applied in one closed-form decay^k
// step: a daemon idle over a weekend used to pay thousands of full-map
// sweeps here. Equivalence with the per-interval loop is exact for
// decay 0 (clear), 1 (identity), and 0.5 (truncated integer halving:
// floor(floor(v/2)/2) = floor(v/4), and ×0.5^k is exact in float64);
// see TestAdvanceClosedFormEquivalence.
func (t *Tracker) Advance(now sim.Time) {
	if now < t.intervalStart+t.cfg.Interval {
		return
	}
	k := int64((now - t.intervalStart) / t.cfg.Interval)
	t.intervalStart += sim.Duration(k) * t.cfg.Interval
	switch {
	case t.cfg.Decay <= 0:
		clear(t.perEntity)
	case t.cfg.Decay >= 1:
		// Identity: nothing decays, nothing is forgotten.
	default:
		factor := math.Pow(t.cfg.Decay, float64(k))
		for key, v := range t.perEntity {
			nv := sim.Duration(float64(v) * factor)
			if nv <= 0 {
				delete(t.perEntity, key)
			} else {
				t.perEntity[key] = nv
			}
		}
	}
}

// IntervalStart returns the start of the current accounting interval.
func (t *Tracker) IntervalStart() sim.Time { return t.intervalStart }

// EntityUsage returns the delay charged to an entity this interval.
func (t *Tracker) EntityUsage(k EntityKey) sim.Duration { return t.perEntity[k] }

// JobUsage returns the cumulative delay charged against a queued job.
func (t *Tracker) JobUsage(id job.ID) sim.Duration { return t.perJob[id] }

// ForgetJob drops per-job accounting once a job starts or is removed.
func (t *Tracker) ForgetJob(id job.ID) { delete(t.perJob, id) }

// Evaluate decides whether a dynamic grant by requester, causing the
// given delays to queued jobs, is permitted under the configured
// policy. It does not mutate accounting state; call Charge after the
// grant is actually made.
func (t *Tracker) Evaluate(requester job.Credentials, delays []JobDelay) Decision {
	if t.cfg.Policy == None {
		return Decision{Allowed: true}
	}
	// Aggregate the would-be charges per entity first: a single grant
	// may delay several jobs of the same user, and the target check
	// must consider their sum. The map is tracker scratch (cleared,
	// not reallocated) so steady-state evaluation is allocation-free.
	if t.evalEntity == nil {
		t.evalEntity = make(map[EntityKey]sim.Duration)
	}
	perEntity := t.evalEntity
	clear(perEntity)
	for _, d := range delays {
		if d.Delay <= 0 {
			continue
		}
		// Delays to the requester's own jobs are not considered.
		if d.Job.Cred.User == requester.User {
			continue
		}
		keys := t.keysInto(d.Job.Cred, t.keyBuf[:0])
		t.keyBuf = keys[:0]
		// Permission: any applicable entity that explicitly disallows
		// delays vetoes the grant.
		for _, k := range keys {
			if l, ok := t.cfg.Entities[k]; ok && l.PermSet && !l.Perm {
				return Decision{Reason: fmt.Sprintf("%s of %s is not permitted to be delayed (DFSDynDelayPerm=0 on %s)", d.Job.ID, d.Job.Cred.User, k)}
			}
		}
		// Single-job limit: most restrictive non-zero limit across
		// applicable entities.
		if t.cfg.Policy.checksSingle() {
			limit := mostRestrictive(t.cfg, keys, func(l Limits) sim.Duration { return l.SingleDelayTime })
			if limit > 0 && t.perJob[d.Job.ID]+d.Delay > limit {
				return Decision{Reason: fmt.Sprintf("%s would exceed single-job delay limit %s (accumulated %s + new %s)",
					d.Job.ID, sim.FormatTime(limit), sim.FormatTime(t.perJob[d.Job.ID]), sim.FormatTime(d.Delay))}
			}
		}
		for _, k := range keys {
			perEntity[k] += d.Delay
		}
	}
	// Target limit: each charged entity must stay within its own
	// per-interval budget.
	if t.cfg.Policy.checksTarget() {
		keys := t.evalKeys[:0]
		for k := range perEntity {
			//lint:maporder keys are ordered by sortKeys below; the zero-alloc insertion sort is not in the analyzer's sanctioned sort list
			keys = append(keys, k)
		}
		t.evalKeys = keys[:0]
		sortKeys(keys)
		for _, k := range keys {
			l, ok := t.cfg.Entities[k]
			if !ok || l.TargetDelayTime == 0 {
				continue
			}
			if t.perEntity[k]+perEntity[k] > l.TargetDelayTime {
				return Decision{Reason: fmt.Sprintf("%s would exceed target delay limit %s this interval (used %s + new %s)",
					k, sim.FormatTime(l.TargetDelayTime), sim.FormatTime(t.perEntity[k]), sim.FormatTime(perEntity[k]))}
			}
		}
	}
	return Decision{Allowed: true}
}

// sortKeys orders entity keys by kind then name. Insertion sort over
// a handful of keys (credential levels plus tree ancestors), with no
// sort.Slice closure: the Evaluate hot path stays allocation-free.
func sortKeys(keys []EntityKey) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i - 1
		for j >= 0 && (keys[j].Kind > k.Kind || (keys[j].Kind == k.Kind && keys[j].Name > k.Name)) {
			keys[j+1] = keys[j]
			j--
		}
		keys[j+1] = k
	}
}

// mostRestrictive returns the smallest non-zero limit among the
// applicable entities (0 = no limit configured anywhere).
func mostRestrictive(cfg *Config, keys []EntityKey, get func(Limits) sim.Duration) sim.Duration {
	var best sim.Duration
	for _, k := range keys {
		l, ok := cfg.Entities[k]
		if !ok {
			continue
		}
		v := get(l)
		if v == 0 {
			continue
		}
		if best == 0 || v < best {
			best = v
		}
	}
	return best
}

// Charge records the delays of a granted dynamic request against the
// affected entities and jobs. Same-user delays are exempt exactly as
// in Evaluate. Charging happens even under Policy None so that
// experiment reports can show the delay a site *would* have charged.
func (t *Tracker) Charge(requester job.Credentials, delays []JobDelay) {
	for _, d := range delays {
		if d.Delay <= 0 || d.Job.Cred.User == requester.User {
			continue
		}
		t.perJob[d.Job.ID] += d.Delay
		keys := t.keysInto(d.Job.Cred, t.keyBuf[:0])
		for _, k := range keys {
			t.perEntity[k] += d.Delay
		}
		t.keyBuf = keys[:0]
	}
}

// TotalCharged returns the sum of delays charged to all entities of a
// given kind this interval; used by experiment reporting.
func (t *Tracker) TotalCharged(kind EntityKind) sim.Duration {
	var total sim.Duration
	for k, v := range t.perEntity {
		if k.Kind == kind {
			total += v
		}
	}
	return total
}
