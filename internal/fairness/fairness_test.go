package fairness

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/job"
	"repro/internal/sim"
)

func mkJob(id int, user, group string) *job.Job {
	return &job.Job{ID: job.ID(id), Cred: job.Credentials{User: user, Group: group}}
}

func TestParsePolicy(t *testing.T) {
	cases := map[string]Policy{
		"NONE":                    None,
		"":                        None,
		"dfssinglejobdelay":       SingleJobDelay,
		"DFSTARGETDELAY":          TargetDelay,
		"DFSSingleAndTargetDelay": SingleAndTargetDelay,
		"DFSSINGLETARGETDELAY":    SingleAndTargetDelay, // paper's §III-D alias
	}
	for in, want := range cases {
		got, err := ParsePolicy(in)
		if err != nil || got != want {
			t.Errorf("ParsePolicy(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy should error")
	}
}

func TestStringers(t *testing.T) {
	if None.String() != "NONE" || SingleAndTargetDelay.String() != "DFSSINGLEANDTARGETDELAY" {
		t.Error("policy stringer")
	}
	if Policy(42).String() != "policy(42)" {
		t.Error("unknown policy stringer")
	}
	if KindUser.String() != "user" || KindQoS.String() != "qos" {
		t.Error("kind stringer")
	}
	if EntityKind(9).String() != "kind(9)" {
		t.Error("unknown kind stringer")
	}
	k := EntityKey{KindGroup, "cfd"}
	if k.String() != "group:cfd" {
		t.Errorf("key stringer = %q", k)
	}
}

func TestPolicyNoneAllowsEverything(t *testing.T) {
	tr := NewTracker(NewConfig(None), 0)
	d := tr.Evaluate(job.Credentials{User: "evolver"},
		[]JobDelay{{Job: mkJob(1, "victim", "g"), Delay: 100 * sim.Hour}})
	if !d.Allowed {
		t.Errorf("None policy must allow: %s", d.Reason)
	}
}

func TestDynDelayPermVeto(t *testing.T) {
	cfg := NewConfig(TargetDelay)
	cfg.Set(KindUser, "user02", Limits{PermSet: true, Perm: false})
	tr := NewTracker(cfg, 0)
	d := tr.Evaluate(job.Credentials{User: "evolver"},
		[]JobDelay{{Job: mkJob(1, "user02", "g"), Delay: sim.Second}})
	if d.Allowed {
		t.Error("DFSDynDelayPerm=0 user must veto any delay")
	}
	// Group-level veto (Fig. 6 group06).
	cfg2 := NewConfig(TargetDelay)
	cfg2.Set(KindGroup, "group06", Limits{PermSet: true, Perm: false})
	tr2 := NewTracker(cfg2, 0)
	d2 := tr2.Evaluate(job.Credentials{User: "evolver"},
		[]JobDelay{{Job: mkJob(1, "anyone", "group06"), Delay: sim.Second}})
	if d2.Allowed {
		t.Error("group-level perm veto should apply")
	}
	// Zero delay to a vetoed user is fine.
	d3 := tr.Evaluate(job.Credentials{User: "evolver"},
		[]JobDelay{{Job: mkJob(1, "user02", "g"), Delay: 0}})
	if !d3.Allowed {
		t.Error("zero delay should always pass")
	}
}

func TestSameUserExemption(t *testing.T) {
	cfg := NewConfig(SingleAndTargetDelay)
	cfg.Set(KindUser, "alice", Limits{PermSet: true, Perm: false, SingleDelayTime: sim.Second})
	tr := NewTracker(cfg, 0)
	// Alice's evolving job delays Alice's own queued job: exempt even
	// though alice is vetoed and limited.
	d := tr.Evaluate(job.Credentials{User: "alice"},
		[]JobDelay{{Job: mkJob(1, "alice", "g"), Delay: sim.Hour}})
	if !d.Allowed {
		t.Errorf("same-user delay must be exempt: %s", d.Reason)
	}
	tr.Charge(job.Credentials{User: "alice"},
		[]JobDelay{{Job: mkJob(1, "alice", "g"), Delay: sim.Hour}})
	if tr.JobUsage(1) != 0 {
		t.Error("same-user charge must be skipped")
	}
}

func TestSingleJobDelayLimit(t *testing.T) {
	cfg := NewConfig(SingleJobDelay)
	cfg.Set(KindUser, "user03", Limits{PermSet: true, Perm: true, SingleDelayTime: 30 * sim.Minute})
	tr := NewTracker(cfg, 0)
	evolver := job.Credentials{User: "user06"}
	victim := mkJob(1, "user03", "g")

	// 20 minutes: fine.
	if d := tr.Evaluate(evolver, []JobDelay{{Job: victim, Delay: 20 * sim.Minute}}); !d.Allowed {
		t.Fatalf("20m should pass: %s", d.Reason)
	}
	tr.Charge(evolver, []JobDelay{{Job: victim, Delay: 20 * sim.Minute}})
	// Another 20 minutes on the same job: 40 > 30, reject.
	if d := tr.Evaluate(evolver, []JobDelay{{Job: victim, Delay: 20 * sim.Minute}}); d.Allowed {
		t.Fatal("accumulated 40m on a 30m single-job limit should reject")
	}
	// 10 more minutes exactly hits the limit: allowed (limit inclusive).
	if d := tr.Evaluate(evolver, []JobDelay{{Job: victim, Delay: 10 * sim.Minute}}); !d.Allowed {
		t.Fatalf("exactly at limit should pass: %s", d.Reason)
	}
	// A different job of the same user starts fresh.
	victim2 := mkJob(2, "user03", "g")
	if d := tr.Evaluate(evolver, []JobDelay{{Job: victim2, Delay: 25 * sim.Minute}}); !d.Allowed {
		t.Fatalf("fresh job under limit should pass: %s", d.Reason)
	}
	// SingleDelayTime=0 means unlimited (paper Fig. 6, user01).
	cfg.Set(KindUser, "user01", Limits{PermSet: true, Perm: true, SingleDelayTime: 0})
	if d := tr.Evaluate(evolver, []JobDelay{{Job: mkJob(3, "user01", "g"), Delay: 100 * sim.Hour}}); !d.Allowed {
		t.Fatalf("0 = unlimited single delay: %s", d.Reason)
	}
}

func TestTargetDelayLimit(t *testing.T) {
	cfg := NewConfig(TargetDelay)
	cfg.Set(KindUser, "user01", Limits{TargetDelayTime: sim.Hour})
	tr := NewTracker(cfg, 0)
	evolver := job.Credentials{User: "user06"}

	// Two different jobs of user01 delayed 40m each in one grant: the
	// cumulative 80m exceeds the 1h budget.
	delays := []JobDelay{
		{Job: mkJob(1, "user01", "g"), Delay: 40 * sim.Minute},
		{Job: mkJob(2, "user01", "g"), Delay: 40 * sim.Minute},
	}
	if d := tr.Evaluate(evolver, delays); d.Allowed {
		t.Fatal("cumulative 80m over 60m budget must reject")
	}
	// 30m + 30m exactly fills the budget.
	delays = []JobDelay{
		{Job: mkJob(1, "user01", "g"), Delay: 30 * sim.Minute},
		{Job: mkJob(2, "user01", "g"), Delay: 30 * sim.Minute},
	}
	if d := tr.Evaluate(evolver, delays); !d.Allowed {
		t.Fatalf("exactly filling budget should pass: %s", d.Reason)
	}
	tr.Charge(evolver, delays)
	// Any further delay this interval rejects.
	if d := tr.Evaluate(evolver, []JobDelay{{Job: mkJob(3, "user01", "g"), Delay: sim.Second}}); d.Allowed {
		t.Fatal("budget exhausted, must reject")
	}
	if got := tr.EntityUsage(EntityKey{KindUser, "user01"}); got != sim.Hour {
		t.Errorf("usage = %s, want 1h", sim.FormatTime(got))
	}
}

func TestGroupTargetAccumulatesAcrossUsers(t *testing.T) {
	// Fig. 6 group05: group budget caps the sum over all member users.
	cfg := NewConfig(TargetDelay)
	cfg.Set(KindGroup, "group05", Limits{TargetDelayTime: 4 * sim.Hour})
	tr := NewTracker(cfg, 0)
	evolver := job.Credentials{User: "user06"}
	tr.Charge(evolver, []JobDelay{{Job: mkJob(1, "a", "group05"), Delay: 3 * sim.Hour}})
	d := tr.Evaluate(evolver, []JobDelay{{Job: mkJob(2, "b", "group05"), Delay: 2 * sim.Hour}})
	if d.Allowed {
		t.Error("group budget must accumulate across member users")
	}
	d = tr.Evaluate(evolver, []JobDelay{{Job: mkJob(2, "b", "group05"), Delay: sim.Hour}})
	if !d.Allowed {
		t.Errorf("within remaining group budget: %s", d.Reason)
	}
}

func TestMostRestrictiveAcrossLevels(t *testing.T) {
	// Paper: "When user and group limits are specified for a user and
	// his group, the most restrictive limits are used."
	cfg := NewConfig(SingleJobDelay)
	cfg.Set(KindUser, "u", Limits{SingleDelayTime: sim.Hour})
	cfg.Set(KindGroup, "g", Limits{SingleDelayTime: 10 * sim.Minute})
	tr := NewTracker(cfg, 0)
	evolver := job.Credentials{User: "e"}
	if d := tr.Evaluate(evolver, []JobDelay{{Job: mkJob(1, "u", "g"), Delay: 30 * sim.Minute}}); d.Allowed {
		t.Error("group's tighter 10m limit must win over user's 1h")
	}
	if d := tr.Evaluate(evolver, []JobDelay{{Job: mkJob(1, "u", "g"), Delay: 5 * sim.Minute}}); !d.Allowed {
		t.Errorf("5m under the 10m limit should pass: %s", d.Reason)
	}
}

func TestIntervalDecay(t *testing.T) {
	// Paper's worked example: limit 4800 s, current delay 3600 s,
	// decay 0.2 → next interval starts at 720 s, so up to 4080 s more.
	cfg := NewConfig(TargetDelay)
	cfg.Interval = 6 * sim.Hour
	cfg.Decay = 0.2
	cfg.Set(KindUser, "u", Limits{TargetDelayTime: 4800 * sim.Second})
	tr := NewTracker(cfg, 0)
	evolver := job.Credentials{User: "e"}
	tr.Charge(evolver, []JobDelay{{Job: mkJob(1, "u", "g"), Delay: 3600 * sim.Second}})

	tr.Advance(6*sim.Hour + sim.Second)
	if got := tr.EntityUsage(EntityKey{KindUser, "u"}); got != 720*sim.Second {
		t.Fatalf("decayed usage = %s, want 720s", sim.FormatTime(got))
	}
	if d := tr.Evaluate(evolver, []JobDelay{{Job: mkJob(2, "u", "g"), Delay: 4080 * sim.Second}}); !d.Allowed {
		t.Errorf("4080s fits the decayed budget: %s", d.Reason)
	}
	if d := tr.Evaluate(evolver, []JobDelay{{Job: mkJob(2, "u", "g"), Delay: 4081 * sim.Second}}); d.Allowed {
		t.Error("4081s exceeds the decayed budget")
	}
}

func TestAdvanceMultipleIntervals(t *testing.T) {
	cfg := NewConfig(TargetDelay)
	cfg.Interval = sim.Hour
	cfg.Decay = 0.5
	cfg.Set(KindUser, "u", Limits{TargetDelayTime: sim.Hour})
	tr := NewTracker(cfg, 0)
	tr.Charge(job.Credentials{User: "e"}, []JobDelay{{Job: mkJob(1, "u", "g"), Delay: 1600 * sim.Second}})
	tr.Advance(3 * sim.Hour) // three boundaries: 1600 -> 800 -> 400 -> 200
	if got := tr.EntityUsage(EntityKey{KindUser, "u"}); got != 200*sim.Second {
		t.Errorf("after 3 decays usage = %s, want 200s", sim.FormatTime(got))
	}
	if tr.IntervalStart() != 3*sim.Hour {
		t.Errorf("interval start = %s", sim.FormatTime(tr.IntervalStart()))
	}
	// Zero decay clears usage at the boundary.
	cfg0 := NewConfig(TargetDelay)
	cfg0.Interval = sim.Hour
	cfg0.Decay = 0
	tr0 := NewTracker(cfg0, 0)
	tr0.Charge(job.Credentials{User: "e"}, []JobDelay{{Job: mkJob(1, "u", "g"), Delay: sim.Hour}})
	tr0.Advance(sim.Hour)
	if tr0.EntityUsage(EntityKey{KindUser, "u"}) != 0 {
		t.Error("decay 0 must clear usage")
	}
}

func TestForgetJob(t *testing.T) {
	tr := NewTracker(NewConfig(SingleJobDelay), 0)
	tr.Charge(job.Credentials{User: "e"}, []JobDelay{{Job: mkJob(1, "u", "g"), Delay: sim.Minute}})
	if tr.JobUsage(1) != sim.Minute {
		t.Fatal("charge not recorded")
	}
	tr.ForgetJob(1)
	if tr.JobUsage(1) != 0 {
		t.Error("ForgetJob must clear per-job usage")
	}
}

func TestTotalCharged(t *testing.T) {
	tr := NewTracker(NewConfig(TargetDelay), 0)
	e := job.Credentials{User: "e"}
	tr.Charge(e, []JobDelay{
		{Job: mkJob(1, "a", "g1"), Delay: sim.Minute},
		{Job: mkJob(2, "b", "g2"), Delay: 2 * sim.Minute},
	})
	if got := tr.TotalCharged(KindUser); got != 3*sim.Minute {
		t.Errorf("TotalCharged(user) = %s", sim.FormatTime(got))
	}
	if got := tr.TotalCharged(KindGroup); got != 3*sim.Minute {
		t.Errorf("TotalCharged(group) = %s", sim.FormatTime(got))
	}
	if got := tr.TotalCharged(KindQoS); got != 0 {
		t.Errorf("TotalCharged(qos) = %s", sim.FormatTime(got))
	}
}

func TestNilAndDefaultConfig(t *testing.T) {
	tr := NewTracker(nil, 0)
	if tr.Config().Policy != None {
		t.Error("nil config should default to None")
	}
	cfg := &Config{Policy: TargetDelay} // no interval set
	tr2 := NewTracker(cfg, 0)
	if tr2.Config().Interval != sim.Hour {
		t.Error("zero interval should default to 1h")
	}
}

// Property: Evaluate never mutates tracker state, and a sequence of
// Charge calls accumulates exactly the sum of non-exempt delays.
func TestChargeAccumulationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := NewConfig(SingleAndTargetDelay)
		cfg.Set(KindUser, "victim", Limits{TargetDelayTime: 1000 * sim.Hour, SingleDelayTime: 1000 * sim.Hour})
		tr := NewTracker(cfg, 0)
		evolver := job.Credentials{User: "evolver"}
		var want sim.Duration
		for i := 0; i < 20; i++ {
			d := sim.Duration(rng.Intn(1000)) * sim.Second
			user := "victim"
			if rng.Intn(4) == 0 {
				user = "evolver" // exempt
			}
			jd := []JobDelay{{Job: mkJob(i, user, "g"), Delay: d}}
			before := tr.EntityUsage(EntityKey{KindUser, "victim"})
			tr.Evaluate(evolver, jd)
			if tr.EntityUsage(EntityKey{KindUser, "victim"}) != before {
				return false // Evaluate mutated state
			}
			tr.Charge(evolver, jd)
			if user == "victim" {
				want += d
			}
		}
		return tr.EntityUsage(EntityKey{KindUser, "victim"}) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: decay is monotone — advancing intervals never increases
// usage when decay ≤ 1.
func TestDecayMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := NewConfig(TargetDelay)
		cfg.Interval = sim.Hour
		cfg.Decay = rng.Float64()
		tr := NewTracker(cfg, 0)
		tr.Charge(job.Credentials{User: "e"},
			[]JobDelay{{Job: mkJob(1, "u", "g"), Delay: sim.Duration(rng.Intn(100000)) * sim.Second}})
		prev := tr.EntityUsage(EntityKey{KindUser, "u"})
		for i := 1; i <= 5; i++ {
			tr.Advance(sim.Time(i) * sim.Hour)
			cur := tr.EntityUsage(EntityKey{KindUser, "u"})
			if cur > prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
