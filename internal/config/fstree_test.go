package config

import (
	"strings"
	"testing"

	"repro/internal/fairness"
	"repro/internal/sim"
)

func TestParseFSTree(t *testing.T) {
	cfg, err := Parse(`
FSINTERVAL        12:00:00
FSDECAY           0.5
FSTREE[physics]   QUOTA=3 OVERQUOTAWEIGHT=2 USERS=alice,bob
FSTREE[physics.lattice] QUOTA=2 USERS=carol
FSTREE[chem]      USERS=dave
FSNODECFG[physics] DFSTARGETDELAYTIME=3600
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.FSInterval != 12*sim.Hour {
		t.Errorf("FSInterval = %v", cfg.FSInterval)
	}
	if cfg.FSDecay != 0.5 || !cfg.FSDecaySet {
		t.Errorf("FSDecay = %v set=%v", cfg.FSDecay, cfg.FSDecaySet)
	}
	if cfg.FSTree == nil || len(cfg.FSTree.Nodes) != 3 {
		t.Fatalf("FSTree = %+v", cfg.FSTree)
	}
	p := cfg.FSTree.Nodes[0]
	if p.Path != "physics" || p.Quota != 3 || p.OverQuotaWeight != 2 ||
		len(p.Users) != 2 || p.Users[0] != "alice" || p.Users[1] != "bob" {
		t.Errorf("physics = %+v", p)
	}
	if n := cfg.FSTree.Nodes[1]; n.Path != "physics.lattice" || n.Quota != 2 || n.Users[0] != "carol" {
		t.Errorf("lattice = %+v", n)
	}
	if n := cfg.FSTree.Nodes[2]; n.Path != "chem" || n.Quota != 0 || n.Users[0] != "dave" {
		t.Errorf("chem = %+v", n)
	}
	l := cfg.Fairness.Entities[fairness.EntityKey{Kind: fairness.KindFSNode, Name: "physics"}]
	if l.TargetDelayTime != sim.Hour {
		t.Errorf("FSNODECFG physics = %+v", l)
	}
}

func TestFSDecayTriState(t *testing.T) {
	// Unset in the file: the scheduler's default 0.7 applies.
	cfg, err := Parse("FSINTERVAL 24:00:00\n")
	if err != nil {
		t.Fatal(err)
	}
	// Default() pre-sets 0.7 with FSDecaySet; a hand-built zero
	// config leaves it unset.
	if !cfg.FSDecaySet || cfg.FSDecay != 0.7 {
		t.Errorf("default decay = %v set=%v", cfg.FSDecay, cfg.FSDecaySet)
	}
	// Explicit 0 must be honored, not confused with "unset".
	cfg2, err := Parse("FSDECAY 0\n")
	if err != nil {
		t.Fatal(err)
	}
	if !cfg2.FSDecaySet || cfg2.FSDecay != 0 {
		t.Errorf("explicit zero decay = %v set=%v", cfg2.FSDecay, cfg2.FSDecaySet)
	}
}

func TestParseFSTreeErrors(t *testing.T) {
	cases := []struct {
		in  string
		sub string
	}{
		{"FSTREE[a QUOTA=1\n", "bracket"},
		{"FSTREE[]\n", "empty node path"},
		{"FSTREE[a] QUOTA=-1\n", "QUOTA"},
		{"FSTREE[a] QUOTA=abc\n", "QUOTA"},
		{"FSTREE[a] OVERQUOTAWEIGHT=0\n", "OVERQUOTAWEIGHT"},
		{"FSTREE[a] USERS=x,,y\n", "empty name"},
		{"FSTREE[a] BOGUS=1\n", "unknown setting"},
		{"FSTREE[a] QUOTA\n", "KEY=VALUE"},
		{"FSDECAY 1.5\n", "FSDECAY"},
		{"FSDECAY x\n", "FSDECAY"},
		{"FSINTERVAL nope\n", "bad duration"},
		// Validation failures surface at Parse, not at tree build.
		{"FSTREE[a] USERS=dup\nFSTREE[b] USERS=dup\n", "homed at both"},
		{"FSTREE[a..b] USERS=x\n", "path component"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.in)
		if err == nil || !strings.Contains(err.Error(), tc.sub) {
			t.Errorf("Parse(%q) err = %v, want substring %q", tc.in, err, tc.sub)
		}
	}
}
