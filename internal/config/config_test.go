package config

import (
	"strings"
	"testing"

	"repro/internal/fairness"
	"repro/internal/sim"
)

// fig6 is the exact configuration shown in Fig. 6 of the paper.
const fig6 = `
DFSPOLICY         DFSSINGLEANDTARGETDELAY
DFSINTERVAL       06:00:00
DFSDECAY          0.4
USERCFG[user01]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
                  DFSSINGLEDELAYTIME=0
USERCFG[user02]   DFSDYNDELAYPERM=0
USERCFG[user03]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=0 \
                  DFSSINGLEDELAYTIME=00:30:00
USERCFG[user04]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=02:00:00 \
                  DFSSINGLEDELAYTIME=00:15:00
GROUPCFG[group05] DFSTARGETDELAYTIME=04:00:00
GROUPCFG[group06] DFSDYNDELAYPERM=0
`

func TestParseFig6(t *testing.T) {
	cfg, err := Parse(fig6)
	if err != nil {
		t.Fatal(err)
	}
	f := cfg.Fairness
	if f.Policy != fairness.SingleAndTargetDelay {
		t.Errorf("policy = %v", f.Policy)
	}
	if f.Interval != 6*sim.Hour {
		t.Errorf("interval = %v", f.Interval)
	}
	if f.Decay != 0.4 {
		t.Errorf("decay = %v", f.Decay)
	}
	u1 := f.Entities[fairness.EntityKey{Kind: fairness.KindUser, Name: "user01"}]
	if !u1.PermSet || !u1.Perm || u1.TargetDelayTime != 3600*sim.Second || u1.SingleDelayTime != 0 {
		t.Errorf("user01 = %+v", u1)
	}
	u2 := f.Entities[fairness.EntityKey{Kind: fairness.KindUser, Name: "user02"}]
	if !u2.PermSet || u2.Perm {
		t.Errorf("user02 = %+v", u2)
	}
	u3 := f.Entities[fairness.EntityKey{Kind: fairness.KindUser, Name: "user03"}]
	if u3.SingleDelayTime != 30*sim.Minute || u3.TargetDelayTime != 0 {
		t.Errorf("user03 = %+v", u3)
	}
	u4 := f.Entities[fairness.EntityKey{Kind: fairness.KindUser, Name: "user04"}]
	if u4.TargetDelayTime != 2*sim.Hour || u4.SingleDelayTime != 15*sim.Minute {
		t.Errorf("user04 = %+v", u4)
	}
	g5 := f.Entities[fairness.EntityKey{Kind: fairness.KindGroup, Name: "group05"}]
	if g5.TargetDelayTime != 4*sim.Hour {
		t.Errorf("group05 = %+v", g5)
	}
	g6 := f.Entities[fairness.EntityKey{Kind: fairness.KindGroup, Name: "group06"}]
	if !g6.PermSet || g6.Perm {
		t.Errorf("group06 = %+v", g6)
	}
}

func TestParseSchedulerParams(t *testing.T) {
	cfg, err := Parse(`
# comment line
RESERVATIONDEPTH       5
RESERVATIONDELAYDEPTH  7
BACKFILLPOLICY         FIRSTFIT
PREEMPTPOLICY          REQUEUE
RMPOLLINTERVAL         60
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.ReservationDepth != 5 || cfg.ReservationDelayDepth != 7 {
		t.Errorf("depths = %d/%d", cfg.ReservationDepth, cfg.ReservationDelayDepth)
	}
	if cfg.BackfillPolicy != "FIRSTFIT" || cfg.PreemptPolicy != "REQUEUE" {
		t.Errorf("policies = %s/%s", cfg.BackfillPolicy, cfg.PreemptPolicy)
	}
	if cfg.RMPollInterval != 60*sim.Second {
		t.Errorf("poll = %v", cfg.RMPollInterval)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Default()
	if cfg.ReservationDepth != 5 || cfg.ReservationDelayDepth != 5 {
		t.Error("paper defaults are depth 5/5")
	}
	if cfg.Fairness.Policy != fairness.None {
		t.Error("default policy should be NONE")
	}
	empty, err := Parse("")
	if err != nil {
		t.Fatal(err)
	}
	if empty.ReservationDepth != 5 {
		t.Error("empty config should keep defaults")
	}
}

func TestParseDuration(t *testing.T) {
	cases := []struct {
		in   string
		want sim.Duration
		ok   bool
	}{
		{"3600", 3600 * sim.Second, true},
		{"0", 0, true},
		{"00:30:00", 30 * sim.Minute, true},
		{"02:00:00", 2 * sim.Hour, true},
		{"45:30", 45*sim.Minute + 30*sim.Second, true},
		{"1.5", 1500, true},
		{"", 0, false},
		{"x", 0, false},
		{"-5", 0, false},
		{"1:2:3:4", 0, false},
		{"1:-2", 0, false},
	}
	for _, c := range cases {
		got, err := ParseDuration(c.in)
		if (err == nil) != c.ok {
			t.Errorf("ParseDuration(%q) err = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && got != c.want {
			t.Errorf("ParseDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestFormatDurationRoundTrip(t *testing.T) {
	for _, d := range []sim.Duration{0, sim.Second, 90 * sim.Second, 6 * sim.Hour, 26*sim.Hour + 3*sim.Minute} {
		s := FormatDuration(d)
		got, err := ParseDuration(s)
		if err != nil || got != d {
			t.Errorf("round trip %v -> %q -> %v (%v)", d, s, got, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"BOGUSKEY 1",
		"DFSPOLICY",
		"DFSPOLICY whatever",
		"DFSDECAY 1.5",
		"DFSDECAY x",
		"DFSINTERVAL x",
		"RESERVATIONDEPTH -1",
		"RESERVATIONDEPTH x",
		"RESERVATIONDELAYDEPTH -2",
		"BACKFILLPOLICY SOMETIMES",
		"PREEMPTPOLICY KILL",
		"RMPOLLINTERVAL zz",
		"USERCFG[u] NOVALUE",
		"USERCFG[u] DFSDYNDELAYPERM=2",
		"USERCFG[u] DFSSINGLEDELAYTIME=xx",
		"USERCFG[u] UNKNOWN=1",
		"USERCFG[ DFSDYNDELAYPERM=1",
		"USERCFG[] DFSDYNDELAYPERM=1",
	}
	for _, text := range bad {
		if _, err := Parse(text); err == nil {
			t.Errorf("Parse(%q) should fail", text)
		} else if !strings.Contains(err.Error(), "line 1") {
			t.Errorf("Parse(%q) error should carry line number: %v", text, err)
		}
	}
}

func TestEntityCfgMerging(t *testing.T) {
	// Two lines for the same user merge rather than overwrite.
	cfg, err := Parse(`
USERCFG[alice] DFSDYNDELAYPERM=1
USERCFG[alice] DFSTARGETDELAYTIME=100
`)
	if err != nil {
		t.Fatal(err)
	}
	a := cfg.Fairness.Entities[fairness.EntityKey{Kind: fairness.KindUser, Name: "alice"}]
	if !a.PermSet || !a.Perm || a.TargetDelayTime != 100*sim.Second {
		t.Errorf("merged = %+v", a)
	}
}

func TestAllEntityKinds(t *testing.T) {
	cfg, err := Parse(`
ACCOUNTCFG[proj1] DFSTARGETDELAYTIME=10
CLASSCFG[batch]   DFSSINGLEDELAYTIME=20
QOSCFG[gold]      DFSDYNDELAYPERM=0
`)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fairness.Entities[fairness.EntityKey{Kind: fairness.KindAccount, Name: "proj1"}].TargetDelayTime != 10*sim.Second {
		t.Error("account cfg")
	}
	if cfg.Fairness.Entities[fairness.EntityKey{Kind: fairness.KindClass, Name: "batch"}].SingleDelayTime != 20*sim.Second {
		t.Error("class cfg")
	}
	q := cfg.Fairness.Entities[fairness.EntityKey{Kind: fairness.KindQoS, Name: "gold"}]
	if !q.PermSet || q.Perm {
		t.Error("qos cfg")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	cfg, err := Parse("dfspolicy dfstargetdelay\nusercfg[Alice] dfsdyndelayperm=0")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Fairness.Policy != fairness.TargetDelay {
		t.Error("lowercase directives should parse")
	}
	// Entity names are canonicalized to lowercase.
	a := cfg.Fairness.Entities[fairness.EntityKey{Kind: fairness.KindUser, Name: "alice"}]
	if !a.PermSet {
		t.Error("entity name case-folding")
	}
}

func TestContinuationAtEOF(t *testing.T) {
	cfg, err := Parse("USERCFG[u] DFSDYNDELAYPERM=1 \\")
	if err != nil {
		t.Fatal(err)
	}
	u := cfg.Fairness.Entities[fairness.EntityKey{Kind: fairness.KindUser, Name: "u"}]
	if !u.PermSet || !u.Perm {
		t.Error("trailing continuation should still apply the line")
	}
}
