// Package config parses Maui-style scheduler configuration files,
// including the paper's dynamic fairness settings in exactly the
// format of Fig. 6:
//
//	DFSPOLICY         DFSSINGLEANDTARGETDELAY
//	DFSINTERVAL       06:00:00
//	DFSDECAY          0.4
//	USERCFG[user01]   DFSDYNDELAYPERM=1 DFSTARGETDELAYTIME=3600 \
//	                  DFSSINGLEDELAYTIME=0
//	GROUPCFG[group05] DFSTARGETDELAYTIME=04:00:00
//
// plus the scheduler parameters the paper references
// (RESERVATIONDEPTH, RESERVATIONDELAYDEPTH, BACKFILLPOLICY,
// PREEMPTPOLICY). Times accept total seconds or [HH:]MM:SS form.
package config

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/fairness"
	"repro/internal/fairtree"
	"repro/internal/sim"
)

// SchedConfig is the full parsed scheduler configuration.
type SchedConfig struct {
	// ReservationDepth is Maui's backfill-protection depth (N highest
	// priority jobs get reservations).
	ReservationDepth int
	// ReservationDelayDepth controls for how many StartLater jobs the
	// extended iteration measures dynamic-allocation delays (§III-C).
	ReservationDelayDepth int
	// BackfillPolicy: "FIRSTFIT" (EASY-style) or "NONE".
	BackfillPolicy string
	// PreemptPolicy: "NONE" or "REQUEUE" (dynamic requests may preempt
	// backfilled/preemptible jobs).
	PreemptPolicy string
	// RMPollInterval is the scheduler's idle-timer iteration period.
	RMPollInterval sim.Duration
	// Fairness carries the DFS settings.
	Fairness *fairness.Config
	// FSInterval is the fairshare usage-decay interval (FSINTERVAL);
	// <= 0 means the 24h default.
	FSInterval sim.Duration
	// FSDecay is the per-interval fairshare decay factor (FSDECAY),
	// meaningful only when FSDecaySet is true (so a zero-valued
	// config still gets the historical 0.7 default).
	FSDecay    float64
	FSDecaySet bool
	// FSTree is the hierarchical share tree declared by FSTREE[...]
	// stanzas; nil means the degenerate flat per-user tree, which is
	// bit-identical to the legacy flat fairshare.
	FSTree *fairtree.Spec
}

// Default returns the configuration used when a parameter is absent,
// matching the paper's evaluation defaults where it states them
// (ReservationDepth = ReservationDelayDepth = 5).
func Default() *SchedConfig {
	return &SchedConfig{
		ReservationDepth:      5,
		ReservationDelayDepth: 5,
		BackfillPolicy:        "FIRSTFIT",
		PreemptPolicy:         "NONE",
		RMPollInterval:        30 * sim.Second,
		Fairness:              fairness.NewConfig(fairness.None),
		FSInterval:            24 * sim.Hour,
		FSDecay:               0.7,
		FSDecaySet:            true,
	}
}

// ParseDuration parses "3600", "30:00", or "06:00:00" into a duration.
func ParseDuration(s string) (sim.Duration, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, fmt.Errorf("config: empty duration")
	}
	parts := strings.Split(s, ":")
	if len(parts) == 1 {
		secs, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return 0, fmt.Errorf("config: bad duration %q: %v", s, err)
		}
		if secs < 0 {
			return 0, fmt.Errorf("config: negative duration %q", s)
		}
		return sim.Seconds(secs), nil
	}
	if len(parts) > 3 {
		return 0, fmt.Errorf("config: bad duration %q", s)
	}
	var total int64
	for _, p := range parts {
		v, err := strconv.ParseInt(strings.TrimSpace(p), 10, 64)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("config: bad duration component %q in %q", p, s)
		}
		total = total*60 + v
	}
	return sim.Duration(total) * sim.Second, nil
}

// FormatDuration renders a duration as HH:MM:SS (inverse of
// ParseDuration for whole-second values).
func FormatDuration(d sim.Duration) string {
	secs := int64(d / sim.Second)
	return fmt.Sprintf("%02d:%02d:%02d", secs/3600, (secs/60)%60, secs%60)
}

// Parse reads a full configuration from text. Lines starting with '#'
// are comments; a trailing '\' continues the line (Fig. 6 style).
func Parse(text string) (*SchedConfig, error) {
	cfg := Default()
	lines := joinContinuations(text)
	for lineno, line := range lines {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		key := strings.ToUpper(fields[0])
		rest := fields[1:]
		if err := applyDirective(cfg, key, rest); err != nil {
			return nil, fmt.Errorf("line %d: %v", lineno+1, err)
		}
	}
	if cfg.FSTree != nil {
		if err := cfg.FSTree.Validate(); err != nil {
			return nil, err
		}
	}
	return cfg, nil
}

func joinContinuations(text string) []string {
	raw := strings.Split(text, "\n")
	var out []string
	var cur strings.Builder
	for _, l := range raw {
		trimmed := strings.TrimRight(l, " \t\r")
		if strings.HasSuffix(trimmed, "\\") {
			cur.WriteString(strings.TrimSuffix(trimmed, "\\"))
			cur.WriteByte(' ')
			continue
		}
		cur.WriteString(trimmed)
		out = append(out, cur.String())
		cur.Reset()
	}
	if cur.Len() > 0 {
		out = append(out, cur.String())
	}
	return out
}

func applyDirective(cfg *SchedConfig, key string, rest []string) error {
	needValue := func() (string, error) {
		if len(rest) == 0 {
			return "", fmt.Errorf("%s: missing value", key)
		}
		return rest[0], nil
	}
	switch {
	case key == "DFSPOLICY":
		v, err := needValue()
		if err != nil {
			return err
		}
		p, err := fairness.ParsePolicy(v)
		if err != nil {
			return err
		}
		cfg.Fairness.Policy = p
	case key == "DFSINTERVAL":
		v, err := needValue()
		if err != nil {
			return err
		}
		d, err := ParseDuration(v)
		if err != nil {
			return err
		}
		cfg.Fairness.Interval = d
	case key == "DFSDECAY":
		v, err := needValue()
		if err != nil {
			return err
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("DFSDECAY: want a fraction in [0,1], got %q", v)
		}
		cfg.Fairness.Decay = f
	case key == "RESERVATIONDEPTH":
		v, err := needValue()
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("RESERVATIONDEPTH: bad value %q", v)
		}
		cfg.ReservationDepth = n
	case key == "RESERVATIONDELAYDEPTH":
		v, err := needValue()
		if err != nil {
			return err
		}
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return fmt.Errorf("RESERVATIONDELAYDEPTH: bad value %q", v)
		}
		cfg.ReservationDelayDepth = n
	case key == "BACKFILLPOLICY":
		v, err := needValue()
		if err != nil {
			return err
		}
		v = strings.ToUpper(v)
		if v != "FIRSTFIT" && v != "NONE" {
			return fmt.Errorf("BACKFILLPOLICY: unknown policy %q", v)
		}
		cfg.BackfillPolicy = v
	case key == "PREEMPTPOLICY":
		v, err := needValue()
		if err != nil {
			return err
		}
		v = strings.ToUpper(v)
		if v != "NONE" && v != "REQUEUE" {
			return fmt.Errorf("PREEMPTPOLICY: unknown policy %q", v)
		}
		cfg.PreemptPolicy = v
	case key == "RMPOLLINTERVAL":
		v, err := needValue()
		if err != nil {
			return err
		}
		d, err := ParseDuration(v)
		if err != nil {
			return err
		}
		cfg.RMPollInterval = d
	case key == "FSINTERVAL":
		v, err := needValue()
		if err != nil {
			return err
		}
		d, err := ParseDuration(v)
		if err != nil {
			return err
		}
		cfg.FSInterval = d
	case key == "FSDECAY":
		v, err := needValue()
		if err != nil {
			return err
		}
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f < 0 || f > 1 {
			return fmt.Errorf("FSDECAY: want a fraction in [0,1], got %q", v)
		}
		cfg.FSDecay = f
		cfg.FSDecaySet = true
	case strings.HasPrefix(key, "FSTREE["):
		return applyFSTree(cfg, key, rest)
	case strings.HasPrefix(key, "USERCFG["):
		return applyEntityCfg(cfg, fairness.KindUser, key, "USERCFG[", rest)
	case strings.HasPrefix(key, "GROUPCFG["):
		return applyEntityCfg(cfg, fairness.KindGroup, key, "GROUPCFG[", rest)
	case strings.HasPrefix(key, "ACCOUNTCFG["):
		return applyEntityCfg(cfg, fairness.KindAccount, key, "ACCOUNTCFG[", rest)
	case strings.HasPrefix(key, "CLASSCFG["):
		return applyEntityCfg(cfg, fairness.KindClass, key, "CLASSCFG[", rest)
	case strings.HasPrefix(key, "QOSCFG["):
		return applyEntityCfg(cfg, fairness.KindQoS, key, "QOSCFG[", rest)
	case strings.HasPrefix(key, "FSNODECFG["):
		// DFS budgets attached to a share-tree node (dotted path):
		// charges to any user under the node count against it.
		return applyEntityCfg(cfg, fairness.KindFSNode, key, "FSNODECFG[", rest)
	default:
		return fmt.Errorf("unknown directive %q", key)
	}
	return nil
}

// applyFSTree parses one FSTREE stanza:
//
//	FSTREE[physics.lattice] QUOTA=2 OVERQUOTAWEIGHT=1.5 USERS=u1,u2
//
// The bracketed dotted path names a tree node (intermediates are
// created implicitly); USERS homes user leaves under it. User names
// are kept case-sensitive — they must match submitted credentials.
func applyFSTree(cfg *SchedConfig, key string, rest []string) error {
	if !strings.HasSuffix(key, "]") {
		return fmt.Errorf("%s: missing closing bracket", key)
	}
	path := strings.ToLower(key[len("FSTREE[") : len(key)-1])
	if path == "" {
		return fmt.Errorf("%s: empty node path", key)
	}
	node := fairtree.SpecNode{Path: path}
	for _, kv := range rest {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return fmt.Errorf("%s: expected KEY=VALUE, got %q", key, kv)
		}
		k := strings.ToUpper(kv[:eq])
		v := kv[eq+1:]
		switch k {
		case "QUOTA":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return fmt.Errorf("%s: QUOTA wants a positive number, got %q", key, v)
			}
			node.Quota = f
		case "OVERQUOTAWEIGHT":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				return fmt.Errorf("%s: OVERQUOTAWEIGHT wants a positive number, got %q", key, v)
			}
			node.OverQuotaWeight = f
		case "USERS":
			for _, u := range strings.Split(v, ",") {
				u = strings.TrimSpace(u)
				if u == "" {
					return fmt.Errorf("%s: USERS has an empty name", key)
				}
				node.Users = append(node.Users, u)
			}
		default:
			return fmt.Errorf("%s: unknown setting %q", key, k)
		}
	}
	if cfg.FSTree == nil {
		cfg.FSTree = &fairtree.Spec{}
	}
	cfg.FSTree.Nodes = append(cfg.FSTree.Nodes, node)
	return nil
}

func applyEntityCfg(cfg *SchedConfig, kind fairness.EntityKind, key, prefix string, rest []string) error {
	if !strings.HasSuffix(key, "]") {
		return fmt.Errorf("%s: missing closing bracket", key)
	}
	name := strings.ToLower(key[len(prefix) : len(key)-1])
	if name == "" {
		return fmt.Errorf("%s: empty entity name", key)
	}
	limits := cfg.Fairness.Entities[fairness.EntityKey{Kind: kind, Name: name}]
	for _, kv := range rest {
		eq := strings.IndexByte(kv, '=')
		if eq < 0 {
			return fmt.Errorf("%s: expected KEY=VALUE, got %q", key, kv)
		}
		k := strings.ToUpper(kv[:eq])
		v := kv[eq+1:]
		switch k {
		case "DFSDYNDELAYPERM":
			switch v {
			case "1":
				limits.PermSet, limits.Perm = true, true
			case "0":
				limits.PermSet, limits.Perm = true, false
			default:
				return fmt.Errorf("%s: DFSDYNDELAYPERM wants 0 or 1, got %q", key, v)
			}
		case "DFSSINGLEDELAYTIME":
			d, err := ParseDuration(v)
			if err != nil {
				return fmt.Errorf("%s: %v", key, err)
			}
			limits.SingleDelayTime = d
		case "DFSTARGETDELAYTIME":
			d, err := ParseDuration(v)
			if err != nil {
				return fmt.Errorf("%s: %v", key, err)
			}
			limits.TargetDelayTime = d
		default:
			return fmt.Errorf("%s: unknown setting %q", key, k)
		}
	}
	cfg.Fairness.Set(kind, name, limits)
	return nil
}
