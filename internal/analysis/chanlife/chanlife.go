// Package chanlife enforces the channel ownership protocol in the
// concurrency-bearing packages: every channel-typed struct field that
// is ever closed has exactly one declared *closing owner*, the close
// happens only in that owner's synchronous context, and no send or
// second close is reachable after the close. Closing a channel twice
// or sending on a closed channel panics the daemon; the Go runtime
// only reports it when a test happens to reach the interleaving, so
// the protocol is declared on the field and machine-checked:
//
//	closed chan struct{} //schedlint:chan-owner Close
//
// names the function or method (of the enclosing struct, or a
// package-level function) that owns the close. The checks:
//
//   - a close of a channel field with no chan-owner declaration is a
//     finding — the protocol must be on the field for the next reader;
//   - a close outside the owner's context is a finding. The context is
//     the owner, everything it calls transitively, and the goroutines
//     spawned *from* that context: a worker goroutine that defers
//     close(done) on exit is its spawner's delegate — the Start/Close
//     lifecycle idiom — while a goroutine some unrelated function
//     spawns is not;
//   - within each function, a branch-sensitive walk tracks may-closed
//     channel fields: a second close, a send after a close, or a call
//     to a function that may close/send again is a finding.
//     Reassigning the field (s.ch = make(...)) resets the fact — the
//     reconnect loops recycle their channels this way;
//   - a chan-owner declaration whose function does not resolve, sits
//     on a non-channel field, or whose field is never closed in the
//     package is a finding: stale protocol declarations are worse
//     than none.
//
// What it does not prove: closes reached through aliases of the
// channel value (ch := s.done; close(ch)), cross-package closes, and
// mutual exclusion between two conditional closes in *different*
// functions of the owner context — the owner is trusted to serialize
// itself. Findings can be suppressed with `//lint:chanlife <reason>`.
package chanlife

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the chanlife check.
var Analyzer = &analysis.Analyzer{
	Name:      "chanlife",
	Doc:       "channel fields have one declared closing owner, closes stay in the owner's synchronous context, and no send-after-close or double-close is reachable",
	Directive: "chanlife",
	Tests:     true,
	Run:       run,
}

// checkedPkgs mirrors sharedguard's set: the daemons, their substrate,
// and the scaled concurrent structures.
var checkedPkgs = map[string]bool{
	"serverd": true, "mom": true, "mauid": true, "rms": true, "chaos": true,
	"proto": true, "tm": true, "campaign": true, "core": true, "fairtree": true,
}

func pkgElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	return strings.TrimSuffix(path, "_test")
}

// chanField is one tracked channel field.
type chanField struct {
	v     *types.Var
	owner *types.Func // declared closing owner (nil: none declared)
	decl  token.Pos   // marker position, for orphan reports
}

type analyzer struct {
	pass   *analysis.Pass
	graph  *callgraph.Graph
	fields map[*types.Var]*chanField
	// mayClose / maySend are per-node interprocedural summaries.
	mayClose map[*callgraph.Node]map[*types.Var]bool
	maySend  map[*callgraph.Node]map[*types.Var]bool
	reported map[string]bool
}

func run(pass *analysis.Pass) error {
	if !checkedPkgs[pkgElem(pass.Pkg.Path())] {
		return nil
	}
	a := &analyzer{
		pass:     pass,
		fields:   map[*types.Var]*chanField{},
		mayClose: map[*callgraph.Node]map[*types.Var]bool{},
		maySend:  map[*callgraph.Node]map[*types.Var]bool{},
		reported: map[string]bool{},
	}
	a.collectFields()
	if len(a.fields) == 0 {
		return nil
	}
	a.graph = callgraph.Build(pass)
	dataflow.Fixpoint(a.graph, a.update)

	a.checkOwnership()
	for _, n := range a.graph.Nodes {
		a.walkNode(n)
	}
	return nil
}

// collectFields indexes channel-typed struct fields and their
// chan-owner declarations.
func (a *analyzer) collectFields() {
	info := a.pass.TypesInfo
	for _, f := range a.pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					v, ok := info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if _, isChan := v.Type().Underlying().(*types.Chan); isChan {
						a.fields[v] = &chanField{v: v}
					}
				}
			}
			return true
		})
	}
	for _, fm := range dataflow.FieldMarkers(a.pass.Files, a.pass.TypesInfo, "chan-owner") {
		cf := a.fields[fm.Field]
		if cf == nil {
			a.pass.Report(analysis.Diagnostic{Pos: fm.Pos, Unsuppressable: true,
				Message: fmt.Sprintf("chan-owner marker on %s, which is not a channel field", fm.Field.Name())})
			continue
		}
		// The first token names the owner; anything after it is
		// commentary for the reader.
		name, _, _ := strings.Cut(strings.TrimSpace(fm.Args), " ")
		if name == "" {
			a.pass.Report(analysis.Diagnostic{Pos: fm.Pos, Unsuppressable: true,
				Message: fmt.Sprintf("malformed chan-owner marker on %s: want `chan-owner <func>`", fm.Field.Name())})
			continue
		}
		owner := resolveFunc(a.pass, fm.Struct, name)
		if owner == nil {
			a.pass.Report(analysis.Diagnostic{Pos: fm.Pos, Unsuppressable: true,
				Message: fmt.Sprintf("chan-owner %q on %s: no such method on %s or package function", name, fm.Field.Name(), fm.Struct)})
			continue
		}
		cf.owner = owner
		cf.decl = fm.Pos
	}
}

// resolveFunc finds the named owner: a method of the enclosing struct
// first, then a package-level function.
func resolveFunc(pass *analysis.Pass, structName, name string) *types.Func {
	if tn, ok := pass.Pkg.Scope().Lookup(structName).(*types.TypeName); ok {
		obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pass.Pkg, name)
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	fn, _ := pass.Pkg.Scope().Lookup(name).(*types.Func)
	return fn
}

// closedField resolves close(arg)'s argument to a tracked field.
func (a *analyzer) closedField(call *ast.CallExpr) *types.Var {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return nil
	}
	if _, isBuiltin := a.pass.TypesInfo.Uses[id].(*types.Builtin); !isBuiltin {
		return nil
	}
	return a.fieldOf(call.Args[0])
}

// fieldOf resolves an expression to a tracked channel field.
func (a *analyzer) fieldOf(e ast.Expr) *types.Var {
	path := dataflow.SelectorPath(a.pass.TypesInfo, e)
	if len(path) < 2 {
		return nil
	}
	last := path[len(path)-1]
	if _, ok := a.fields[last]; !ok {
		return nil
	}
	return last
}

// update recomputes one node's may-close / may-send summary.
func (a *analyzer) update(n *callgraph.Node) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	closes := map[*types.Var]bool{}
	sends := map[*types.Var]bool{}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if n.Lit != x {
				return false
			}
		case *ast.CallExpr:
			if f := a.closedField(x); f != nil {
				closes[f] = true
			}
		case *ast.SendStmt:
			if f := a.fieldOf(x.Chan); f != nil {
				sends[f] = true
			}
		}
		return true
	})
	for _, e := range n.Calls {
		for f := range a.mayClose[e.Callee] {
			closes[f] = true
		}
		for f := range a.maySend[e.Callee] {
			sends[f] = true
		}
	}
	grew := len(closes) != len(a.mayClose[n]) || len(sends) != len(a.maySend[n])
	a.mayClose[n] = closes
	a.maySend[n] = sends
	return grew
}

// checkOwnership verifies the declaration side: every close site has a
// declared owner and sits in that owner's synchronous context, and
// every declaration corresponds to a real close.
func (a *analyzer) checkOwnership() {
	// Owner contexts: the owner node, everything it reaches through
	// synchronous calls, and the goroutines spawned from that context
	// (the worker that defers its own close is the spawner's delegate).
	inContext := map[*types.Func]map[*callgraph.Node]bool{}
	context := func(owner *types.Func) map[*callgraph.Node]bool {
		if s := inContext[owner]; s != nil {
			return s
		}
		s := map[*callgraph.Node]bool{}
		if root := a.graph.NodeOf(owner); root != nil {
			var visit func(n *callgraph.Node)
			visit = func(n *callgraph.Node) {
				if s[n] {
					return
				}
				s[n] = true
				for _, e := range n.Calls {
					visit(e.Callee)
				}
				for _, sp := range n.Spawns {
					if sp.Callee != nil {
						visit(sp.Callee)
					}
				}
			}
			visit(root)
		}
		inContext[owner] = s
		return s
	}

	closed := map[*types.Var]bool{}
	for _, n := range a.graph.Nodes {
		body := n.Body()
		if body == nil {
			continue
		}
		ast.Inspect(body, func(x ast.Node) bool {
			if lit, ok := x.(*ast.FuncLit); ok && n.Lit != lit {
				return false
			}
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			f := a.closedField(call)
			if f == nil {
				return true
			}
			closed[f] = true
			cf := a.fields[f]
			if cf.owner == nil {
				a.pass.Reportf(call.Pos(), "close of channel field %s with no declared owner; annotate the field `//schedlint:chan-owner <func>`", f.Name())
				return true
			}
			if !context(cf.owner)[n] {
				a.pass.Reportf(call.Pos(), "close of channel field %s in %s, outside its declared owner %s's synchronous context", f.Name(), n.Name, cf.owner.Name())
			}
			return true
		})
	}
	for _, cf := range a.fields {
		if cf.owner != nil && !closed[cf.v] {
			a.pass.Reportf(cf.decl, "channel field %s declares closing owner %s but is never closed in this package; drop the stale declaration", cf.v.Name(), cf.owner.Name())
		}
	}
}

// chState is the walker state: the may-closed channel fields with the
// position of the close that established each fact.
type chState struct {
	closed map[*types.Var]token.Pos
}

func (s *chState) Clone() dataflow.State {
	c := &chState{closed: make(map[*types.Var]token.Pos, len(s.closed))}
	for k, v := range s.closed {
		c.closed[k] = v
	}
	return c
}

func (s *chState) Join(o dataflow.State) {
	for k, v := range o.(*chState).closed {
		if _, ok := s.closed[k]; !ok {
			s.closed[k] = v
		}
	}
}

func (s *chState) Equal(o dataflow.State) bool {
	os := o.(*chState)
	if len(s.closed) != len(os.closed) {
		return false
	}
	for k := range s.closed {
		if _, ok := os.closed[k]; !ok {
			return false
		}
	}
	return true
}

// walkNode runs the branch-sensitive close/send walk over one
// function.
func (a *analyzer) walkNode(n *callgraph.Node) {
	body := n.Body()
	if body == nil {
		return
	}
	dataflow.Walk(body, &chState{closed: map[*types.Var]token.Pos{}}, dataflow.Hooks{
		Transfer: func(st dataflow.State, node ast.Node) { a.transfer(st.(*chState), node) },
		Defer:    func(st dataflow.State, call *ast.CallExpr) { a.applyCall(st.(*chState), call) },
	})
}

// reportOnce dedupes findings across the walker's bounded loop
// re-executions.
func (a *analyzer) reportOnce(pos token.Pos, format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%d:%s", pos, msg)
	if a.reported[key] {
		return
	}
	a.reported[key] = true
	a.pass.Reportf(pos, "%s", msg)
}

// transfer applies one atomic statement.
func (a *analyzer) transfer(st *chState, node ast.Node) {
	ast.Inspect(node, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.CallExpr:
			if f := a.closedField(x); f != nil {
				if prev, ok := st.closed[f]; ok {
					a.reportOnce(x.Pos(), "second close of channel field %s may be reachable (closed at line %d)",
						f.Name(), a.pass.Fset.Position(prev).Line)
				}
				st.closed[f] = x.Pos()
				return true
			}
			a.applyCall(st, x)
		case *ast.SendStmt:
			if f := a.fieldOf(x.Chan); f != nil {
				if prev, ok := st.closed[f]; ok {
					a.reportOnce(x.Pos(), "send on channel field %s may follow its close (closed at line %d)",
						f.Name(), a.pass.Fset.Position(prev).Line)
				}
			}
		}
		return true
	})
	// Reassignment recycles the channel: the closed fact dies.
	for _, w := range dataflow.FieldWritesIn(a.pass.TypesInfo, node, func(v *types.Var) bool {
		_, ok := a.fields[v]
		return ok
	}) {
		delete(st.closed, w.Field)
	}
}

// applyCall folds a same-package callee's may-close / may-send summary
// into the state.
func (a *analyzer) applyCall(st *chState, call *ast.CallExpr) {
	callee := a.graph.Resolve(a.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	for f := range a.mayClose[callee] {
		if prev, ok := st.closed[f]; ok {
			a.reportOnce(call.Pos(), "call to %s may close channel field %s again (closed at line %d)",
				callee.Name, f.Name(), a.pass.Fset.Position(prev).Line)
		} else {
			st.closed[f] = call.Pos()
		}
	}
	for f := range a.maySend[callee] {
		if prev, ok := st.closed[f]; ok {
			a.reportOnce(call.Pos(), "call to %s may send on channel field %s after its close (closed at line %d)",
				callee.Name, f.Name(), a.pass.Fset.Position(prev).Line)
		}
	}
}
