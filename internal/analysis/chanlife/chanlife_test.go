package chanlife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chanlife"
)

func TestChanLife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), chanlife.Analyzer, "mom")
}
