// Package mom is the chanlife golden fixture: channel fields with
// declared owners, and every violation class the analyzer must catch —
// an undeclared close, a close outside the owner's context, a double
// close, a send after close, a call-mediated re-close, plus the stale
// and malformed declarations.
package mom

type momd struct {
	done chan struct{} //schedlint:chan-owner Close
	quit chan struct{}
	away chan struct{} //schedlint:chan-owner Close
	dbl  chan int      //schedlint:chan-owner reset
	out  chan int      //schedlint:chan-owner flush
	ind  chan int      //schedlint:chan-owner shutdown
	re   chan int      //schedlint:chan-owner recycle
	br   chan int      //schedlint:chan-owner branches
	relay chan int     //schedlint:chan-owner pump
	work chan int      //schedlint:chan-owner Start

	stale chan int //schedlint:chan-owner Close // want `channel field stale declares closing owner Close but is never closed`
	bogus chan int //schedlint:chan-owner nosuch // want `chan-owner "nosuch" on bogus: no such method on momd or package function`

	notchan int //schedlint:chan-owner Close // want `chan-owner marker on notchan, which is not a channel field`
}

// Close owns done; the helper close below is still inside its
// synchronous context.
func (m *momd) Close() {
	m.closeDoneLocked()
	close(m.quit) // want `close of channel field quit with no declared owner`
}

func (m *momd) closeDoneLocked() { close(m.done) }

// Start's worker goroutine defers the close of work on exit: a
// goroutine spawned from the owner's own context is its delegate, so
// this is legal.
func (m *momd) Start() {
	go func() {
		defer close(m.work)
	}()
}

// spawnAway closes an owned channel from a goroutine spawned outside
// the owner's context: spawnAway is not Close.
func (m *momd) spawnAway() {
	go func() {
		close(m.away) // want `close of channel field away in .* outside its declared owner Close`
	}()
}

func (m *momd) reset() {
	close(m.dbl)
	close(m.dbl) // want `second close of channel field dbl may be reachable`
}

func (m *momd) flush() {
	close(m.out)
	m.out <- 1 // want `send on channel field out may follow its close`
}

func (m *momd) closeInd() { close(m.ind) }

func (m *momd) shutdown() {
	close(m.ind)
	m.closeInd() // want `call to .* may close channel field ind again`
}

// recycle reassigns between the closes: the reconnect pattern, legal.
func (m *momd) recycle() {
	close(m.re)
	m.re = make(chan int)
	m.re <- 1
	close(m.re)
}

// branches closes on disjoint paths: legal.
func (m *momd) branches(b bool) {
	if b {
		close(m.br)
	} else {
		close(m.br)
	}
}

// pump's send is audited: the reader drains relay synchronously
// before pump returns.
func (m *momd) pump() {
	close(m.relay)
	//lint:chanlife fixture exception: reader is joined before the send
	m.relay <- 1
}
