package sharedguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/sharedguard"
)

func TestSharedGuard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), sharedguard.Analyzer, "serverd")
}
