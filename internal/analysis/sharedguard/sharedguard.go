// Package sharedguard finds unguarded cross-goroutine writes: a
// struct field written from two or more distinct goroutine contexts of
// the same package must carry a declared synchronization protocol —
// a lockcheck `// guarded by mu` annotation, atomicity (a sync/atomic
// wrapper type or a `//schedlint:atomic` plain field enforced by
// atomicfield), or an audited confinement declaration
// `//schedlint:confined <goroutine> <why>` for handoff protocols the
// type system cannot see (phased ownership, Vyukov-style sequence
// publication, index-disjoint worker writes).
//
// Goroutine contexts are computed from the package call graph's Spawn
// records:
//
//   - the *main* context seeds every exported declaration and every
//     declaration nothing in the package calls or spawns (it may be
//     invoked synchronously from outside);
//   - every `go f(...)` whose callee resolves in-package starts a
//     context named after the spawned function;
//   - a function literal that is neither spawned nor called — stored
//     in a field, sent down a channel, passed as a callback — is its
//     own context: the analyzer cannot tell which goroutine will run
//     it, so it must assume a distinct one.
//
// Contexts then propagate along synchronous call edges: a helper
// called from both the monitor goroutine and an RPC handler executes
// in both contexts, and its writes count for both.
//
// A finding additionally requires at least one of the writing
// contexts to be a real `go` spawn. A package with no spawns among
// the writers — the discrete-event simulator's stored callbacks all
// run on the single simulation goroutine — has no second goroutine
// this analyzer can prove, and flagging every escaped callback would
// drown the real races. Escaped-literal contexts still count toward
// the total (and are named in the message) once a spawn is present.
//
// Constructor writes to provably fresh locals are exempt — state that
// has not been published cannot race; this is the "handed off before
// the spawn" rule: build the object, then spawn.
//
// Writes whose root is a function parameter (receiver included, and
// type-switch/assertion bindings of one) are charged not to the
// contexts running the writer but to the contexts a shared object can
// arrive from, computed by a fixpoint over call-site arguments: fresh
// locals contribute nothing, handed-through parameters chain, and
// everything else contributes the caller's contexts (see paramFlow).
// Without this, a decoder writing message fields through its `dst any`
// parameter would be charged with every goroutine that ever decodes —
// even though each hands it a stack-local destination.
//
// What sharedguard proves is deliberately bounded (see DESIGN.md
// "Memory-model invariants"): it reasons about one package's spawn
// structure, counts writes only (a lone writer racing readers is
// lockcheck/atomicfield territory), and trusts the declared
// annotations rather than re-deriving the Go memory model. Findings
// can be suppressed with `//lint:shared <reason>`.
package sharedguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/atomicfield"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the sharedguard check.
var Analyzer = &analysis.Analyzer{
	Name:      "sharedguard",
	Doc:       "fields written from two or more goroutine contexts must declare a guard: a `// guarded by mu` mutex, atomicity, or //schedlint:confined",
	Directive: "shared",
	Tests:     true,
	Run:       run,
}

// checkedPkgs are the concurrency-bearing packages under the
// memory-model contract: the live daemons and their substrate, plus
// the packages whose lock-free or sharded structures carry the scale
// work (campaign's claim index, core's epoch counters, fairtree's
// sharded usage, proto's pooled conn state).
var checkedPkgs = map[string]bool{
	"serverd": true, "mom": true, "mauid": true, "rms": true, "chaos": true,
	"proto": true, "tm": true, "campaign": true, "core": true, "fairtree": true,
}

// guardedRe accepts both lockcheck forms: a sibling mutex (`guarded by
// mu`) and a dotted owner path for record structs protected by their
// container's lock (`guarded by s.mu` on a jobInfo field).
var guardedRe = regexp.MustCompile(`guarded by ([\w.]+)`)

func pkgElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		path = path[i+1:]
	}
	// The driver labels external test packages "<pkg>_test"; they are
	// held to the package's own contract.
	return strings.TrimSuffix(path, "_test")
}

// fieldInfo is what the sweep knows about one declared struct field.
type fieldInfo struct {
	v        *types.Var
	owner    string // enclosing type name, for messages
	guarded  bool   // `// guarded by <mu>` annotation
	atomic   bool   // sync/atomic type or schedlint:atomic marker
	confined bool   // //schedlint:confined <goroutine> declaration
}

func run(pass *analysis.Pass) error {
	if !checkedPkgs[pkgElem(pass.Pkg.Path())] {
		return nil
	}
	fields := collectFields(pass)
	if len(fields) == 0 {
		return nil
	}

	g := callgraph.Build(pass)
	origins, seeds, names, isSpawn := spawnOrigins(pass, g)
	pf := newParamFlow(pass, g, seeds, origins)

	// One witness write per (field, origin), so the report can show
	// where each context touches the field.
	type key struct {
		f      *types.Var
		origin int
	}
	witness := map[key]token.Pos{}
	fieldOrigins := map[*types.Var]map[int]bool{}
	for _, n := range g.Nodes {
		ctxs := origins[n]
		if len(ctxs) == 0 {
			continue
		}
		writes := dataflow.FieldWritesIn(pass.TypesInfo, n.Body(), func(v *types.Var) bool {
			_, ok := fields[v]
			return ok
		})
		for _, w := range writes {
			if dataflow.FreshLocal(pass.Files, pass.TypesInfo, pass.Pkg, w.Root) {
				continue
			}
			// A guard or confinement declared on an intermediate field
			// covers every leaf written through it (`p.stats.Severed++`
			// under the guard declared on stats).
			covered := false
			for _, pv := range w.Path[1 : max(len(w.Path)-1, 1)] {
				if fi := fields[pv]; fi != nil && (fi.guarded || fi.confined) {
					covered = true
				}
			}
			if covered {
				continue
			}
			// A parameter-rooted write mutates whatever the callers
			// passed: charge it to the contexts a shared object can
			// arrive from, not to every context running the code.
			wctxs := ctxs
			if p := pf.resolve(n, w.Root); p != nil {
				wctxs = pf.ctxs[p]
			}
			fo := fieldOrigins[w.Field]
			if fo == nil {
				fo = map[int]bool{}
				fieldOrigins[w.Field] = fo
			}
			for o := range wctxs {
				fo[o] = true
				if _, ok := witness[key{w.Field, o}]; !ok {
					witness[key{w.Field, o}] = w.Pos
				}
			}
		}
	}

	for v, fo := range fieldOrigins {
		if len(fo) < 2 {
			continue
		}
		// No writer on a spawned goroutine means no provable second
		// goroutine: escaped callbacks alone never fire.
		spawnWriter := false
		for o := range fo {
			if isSpawn[o] {
				spawnWriter = true
				break
			}
		}
		if !spawnWriter {
			continue
		}
		fi := fields[v]
		if fi.guarded || fi.atomic || fi.confined {
			continue
		}
		// Render the contexts deterministically, with one witness each.
		var os []int
		for o := range fo {
			os = append(os, o)
		}
		sort.Ints(os)
		var parts []string
		for _, o := range os {
			p := pass.Fset.Position(witness[key{v, o}])
			parts = append(parts, fmt.Sprintf("%s at %s:%d", names[o], filepath.Base(p.Filename), p.Line))
		}
		pass.Reportf(v.Pos(), "field %s.%s is written from %d goroutine contexts (%s) with no declared guard; annotate `// guarded by <mu>`, make it atomic (//schedlint:atomic or a sync/atomic type), or declare //schedlint:confined <goroutine> <why>",
			fi.owner, v.Name(), len(fo), strings.Join(parts, "; "))
	}
	return nil
}

// collectFields indexes every struct field declared in the package
// with its guard declarations.
func collectFields(pass *analysis.Pass) map[*types.Var]*fieldInfo {
	out := map[*types.Var]*fieldInfo{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					guarded := false
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if cg != nil && guardedRe.MatchString(cg.Text()) {
							guarded = true
						}
					}
					for _, name := range field.Names {
						v, ok := pass.TypesInfo.Defs[name].(*types.Var)
						if !ok {
							continue
						}
						out[v] = &fieldInfo{
							v:       v,
							owner:   ts.Name.Name,
							guarded: guarded,
							atomic:  atomicfield.IsAtomicType(v.Type()),
						}
					}
				}
			}
		}
	}
	for _, fm := range dataflow.FieldMarkers(pass.Files, pass.TypesInfo, atomicfield.MarkerKey) {
		if fi := out[fm.Field]; fi != nil {
			fi.atomic = true
		}
	}
	for _, fm := range dataflow.FieldMarkers(pass.Files, pass.TypesInfo, "confined") {
		fi := out[fm.Field]
		if fi == nil {
			continue
		}
		if fm.Args == "" {
			pass.Report(analysis.Diagnostic{Pos: fm.Pos, Unsuppressable: true,
				Message: fmt.Sprintf("malformed confined marker on %s: want `confined <goroutine> <why>`", fm.Field.Name())})
			continue
		}
		fi.confined = true
	}
	return out
}

// spawnOrigins computes, per call-graph node, the set of goroutine
// contexts that may execute it, as indices into the returned name
// table; isSpawn marks the contexts started by an actual go
// statement. seeds is the pre-propagation snapshot — the node each
// context *starts* at — which the parameter flow uses to decide what
// arrives from outside the synchronous call structure.
func spawnOrigins(pass *analysis.Pass, g *callgraph.Graph) (origins, seeds map[*callgraph.Node]map[int]bool, names []string, isSpawn []bool) {
	names = []string{"the main context"}
	isSpawn = []bool{false}
	origins = make(map[*callgraph.Node]map[int]bool, len(g.Nodes))
	add := func(n *callgraph.Node, o int) bool {
		s := origins[n]
		if s == nil {
			s = map[int]bool{}
			origins[n] = s
		}
		if s[o] {
			return false
		}
		s[o] = true
		return true
	}

	spawned := map[*callgraph.Node]bool{}
	for _, n := range g.Nodes {
		for _, sp := range n.Spawns {
			if sp.Callee != nil {
				spawned[sp.Callee] = true
			}
		}
	}
	callers := dataflow.SyncCallers(g)

	// Seeds.
	for _, n := range g.Nodes {
		if spawned[n] {
			id := len(names)
			names = append(names, "go "+n.Name)
			isSpawn = append(isSpawn, true)
			add(n, id)
		}
		switch {
		case n.Decl != nil:
			// Exported declarations are callable from outside the
			// package on the caller's goroutine; so, conservatively, are
			// unexported ones nothing here calls or spawns (interface
			// methods, functions passed by value).
			if n.Decl.Name.IsExported() || (callers[n] == 0 && !spawned[n]) {
				add(n, 0)
			}
		case n.Lit != nil:
			// A literal that is never spawned and never called escapes
			// as a value; the analyzer must assume it runs on its own
			// goroutine.
			if !spawned[n] && callers[n] == 0 {
				id := len(names)
				names = append(names, "escaped "+n.Name)
				isSpawn = append(isSpawn, false)
				add(n, id)
			}
		}
	}

	// Snapshot the seeds before propagation.
	seeds = make(map[*callgraph.Node]map[int]bool, len(origins))
	for n, s := range origins {
		c := make(map[int]bool, len(s))
		for o := range s {
			c[o] = true
		}
		seeds[n] = c
	}

	// Propagate along synchronous edges to a fixpoint.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, e := range n.Calls {
				for o := range origins[n] {
					if add(e.Callee, o) {
						changed = true
					}
				}
			}
		}
	}
	return origins, seeds, names, isSpawn
}
