// Package serverd is the sharedguard golden fixture: a miniature
// daemon whose fields are written from several goroutine contexts,
// in guarded, atomic, confined, and — the findings — undeclared
// flavors.
package serverd

import (
	"sync"
	"sync/atomic"
)

type server struct {
	mu sync.Mutex

	// hits has no declared guard and is written by both the monitor
	// goroutine and the exported Poke.
	hits int // want `field server.hits is written from 2 goroutine contexts`

	// stamped is the same shape with the lockcheck guard declared.
	stamped int // guarded by mu

	// seq is the same shape, declared atomic.
	seq atomic.Int64

	// claims is written by every worker, but each worker owns a
	// disjoint index range: a handoff protocol the checker cannot see.
	claims []int //schedlint:confined worker i writes only claims[i], joined before any read

	// lastErr is written from the monitor goroutine, from a callback
	// literal that escapes into a field, and from Close: the escaped
	// context counts once the monitor spawn makes a second goroutine
	// real.
	lastErr error // want `field server.lastErr is written from 3 goroutine contexts`

	// journal is written from Close and from an escaped callback only:
	// with no spawned writer there is no provable second goroutine, so
	// the analyzer stays silent (the simulator's event-callback shape).
	journal []string

	// audited is shared the same way as hits, with the exception
	// recorded in place.
	//lint:shared sampled metric, torn reads acceptable by design
	audited int

	onDrop func()

	// tr is handed to bumpTrack by both the poll goroutine and Kick:
	// the parameter flow follows the object back to both contexts.
	tr *track

	// malformed confinement must name the owning goroutine.
	solo int //schedlint:confined // want `malformed confined marker on solo`
}

// msg is the decoder-pattern record: decode writes its fields through
// a pointer parameter, so the writes are charged to what each caller
// passes — and every caller here hands it a goroutine-local
// destination, so tag never becomes shared.
type msg struct {
	tag string
}

// track is written through a parameter too, but its callers pass the
// server's own field: two real contexts.
type track struct {
	n int // want `field track.n is written from 2 goroutine contexts`
}

// newServer initializes everything on a fresh local before the
// monitor spawn publishes it: handoff, not sharing.
func newServer() *server {
	s := &server{}
	s.hits = 0
	s.stamped = 0
	s.lastErr = nil
	go s.monitor()
	go s.poll()
	return s
}

func (s *server) monitor() {
	for {
		s.bump() // helper executes in the monitor context
		s.mu.Lock()
		s.stamped++
		s.mu.Unlock()
		s.seq.Add(1)
		s.audited++
		s.lastErr = nil
	}
}

// bump writes hits; it is called from both the monitor goroutine and
// the exported Poke, so hits needs a guard.
func (s *server) bump() { s.hits++ }

// Poke runs on the caller's goroutine (the main context).
func (s *server) Poke() {
	s.bump()
	s.mu.Lock()
	s.stamped++
	s.mu.Unlock()
	s.seq.Add(1)
	s.audited++
}

// install stores a literal into a field: the checker cannot know which
// goroutine will invoke it, so its writes count as their own context.
func (s *server) install() {
	s.onDrop = func() { s.lastErr = nil }
}

// Close writes lastErr and journal from the main context.
func (s *server) Close() {
	s.lastErr = nil
	s.journal = nil
}

// defer-style callback: journal's only other writer escapes, never
// spawns — silent by the spawn-writer rule.
func (s *server) installJournal() {
	s.onDrop = func() { s.journal = append(s.journal, "drop") }
}

// Run claims disjoint slots per worker — the serial tail also writes
// slot 0 from the caller's goroutine, so without the confined marker
// this is two contexts.
func (s *server) Run(n int) {
	s.claims[0] = -1
	for i := 0; i < n; i++ {
		i := i
		go func() {
			s.claims[i] = i
		}()
	}
}

// touchSolo writes solo from one context only; the malformed marker
// is still reported.
func (s *server) touchSolo() { s.solo = 1 }

// decode writes through the type-switched parameter: the writes are
// charged to the objects its callers pass, not to its callers'
// goroutines.
func (s *server) decode(dst any) {
	switch d := dst.(type) {
	case *msg:
		d.tag = "x"
	}
}

// reader decodes into a zero-value local from a spawned goroutine:
// fresh destination, no sharing.
func (s *server) reader() {
	go func() {
		var m msg
		s.decode(&m)
	}()
}

// Ingest decodes into a fresh local on the main context.
func (s *server) Ingest() {
	m := &msg{}
	s.decode(m)
}

// bumpTrack writes through its parameter; poll (spawned in newServer)
// and Kick both pass the server's shared tr field, so track.n is
// written from two contexts even though bumpTrack itself never spawns.
func (s *server) bumpTrack(t *track) { t.n++ }

func (s *server) poll() {
	for {
		s.bumpTrack(s.tr)
	}
}

// Kick runs on the caller's goroutine.
func (s *server) Kick() { s.bumpTrack(s.tr) }
