package sharedguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/dataflow"
)

// paramFlow refines write attribution for writes whose root is a
// function parameter (receiver included). A write like `d.Node = ...`
// inside a decoder executes in every context that reaches the decoder,
// but the object it mutates is whatever each caller passed — and most
// callers pass a goroutine-local destination. Charging such writes to
// the decoder's contexts conflates "who runs the code" with "who
// shares the object" and flags every per-call scratch struct the
// moment two goroutines use the function.
//
// Instead, parameter-rooted writes are charged to the contexts a
// *shared* object can arrive from:
//
//   - a context that starts at the node itself — a spawn site's
//     arguments, an exported function's external callers, an escaped
//     literal's unknown invoker — hands it objects the analyzer cannot
//     see, so the node's seed contexts flow into every parameter;
//   - at each synchronous call site, an argument that is a provably
//     fresh local of the caller (see dataflow.FreshLocal) contributes
//     nothing: the callee initializes an unpublished object;
//   - an argument that is itself a parameter of the caller (directly,
//     or through a type switch or type assertion on one) contributes
//     the caller's own parameter contexts, to a fixpoint — this is how
//     Decode(dst) → decodeBinary(bin, dst) chains resolve;
//   - anything else (a field load, a map lookup, a call result)
//     contributes all of the caller's contexts, exactly as before.
//
// The refinement is strictly narrowing: every contribution is a subset
// of the caller's contexts, and the seeds are unchanged, so it can
// only remove findings relative to charging origins[node] wholesale.
type paramFlow struct {
	pass    *analysis.Pass
	g       *callgraph.Graph
	origins map[*callgraph.Node]map[int]bool
	// owner maps each named parameter (receiver included) to its node.
	owner map[*types.Var]*callgraph.Node
	// recv / params split the receiver from the positional parameters;
	// params keeps nil placeholders for blank and unnamed parameters so
	// argument positions stay aligned.
	recv   map[*callgraph.Node]*types.Var
	params map[*callgraph.Node][]*types.Var
	// derived maps a type-switch or type-assertion binding to the
	// variable it was derived from, so `switch d := dst.(type)` chains
	// resolve back to the parameter. Flow-insensitive, like the rest of
	// the analyzer: a rebound binding keeps its declared provenance.
	derived map[*types.Var]*types.Var
	// ctxs is the result: contexts a shared object may arrive from, per
	// parameter.
	ctxs map[*types.Var]map[int]bool
}

func newParamFlow(pass *analysis.Pass, g *callgraph.Graph, seeds, origins map[*callgraph.Node]map[int]bool) *paramFlow {
	pf := &paramFlow{
		pass:    pass,
		g:       g,
		origins: origins,
		owner:   map[*types.Var]*callgraph.Node{},
		recv:    map[*callgraph.Node]*types.Var{},
		params:  map[*callgraph.Node][]*types.Var{},
		derived: map[*types.Var]*types.Var{},
		ctxs:    map[*types.Var]map[int]bool{},
	}
	pf.collectParams()
	pf.collectDerived()
	for n, s := range seeds {
		for o := range s {
			if r := pf.recv[n]; r != nil {
				pf.add(r, o)
			}
			for _, p := range pf.params[n] {
				if p != nil {
					pf.add(p, o)
				}
			}
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, e := range n.Calls {
				if pf.flowEdge(n, e) {
					changed = true
				}
			}
		}
	}
	return pf
}

// resolve maps a write root within node n to the parameter of n it
// derives from, or nil when the root is not parameter-rooted there
// (locals, captures of an enclosing function's state).
func (pf *paramFlow) resolve(n *callgraph.Node, v *types.Var) *types.Var {
	for v != nil {
		if pf.owner[v] == n {
			return v
		}
		v = pf.derived[v]
	}
	return nil
}

func (pf *paramFlow) add(p *types.Var, o int) bool {
	s := pf.ctxs[p]
	if s == nil {
		s = map[int]bool{}
		pf.ctxs[p] = s
	}
	if s[o] {
		return false
	}
	s[o] = true
	return true
}

func (pf *paramFlow) addAll(p *types.Var, os map[int]bool) bool {
	changed := false
	for o := range os {
		if pf.add(p, o) {
			changed = true
		}
	}
	return changed
}

func (pf *paramFlow) collectParams() {
	addParam := func(n *callgraph.Node, name *ast.Ident) *types.Var {
		v, _ := pf.pass.TypesInfo.Defs[name].(*types.Var)
		if v != nil {
			pf.owner[v] = n
		}
		return v
	}
	for _, n := range pf.g.Nodes {
		var ft *ast.FuncType
		if n.Decl != nil {
			ft = n.Decl.Type
			if n.Decl.Recv != nil {
				for _, f := range n.Decl.Recv.List {
					for _, name := range f.Names {
						pf.recv[n] = addParam(n, name)
					}
				}
			}
		} else {
			ft = n.Lit.Type
		}
		var ps []*types.Var
		for _, f := range ft.Params.List {
			if len(f.Names) == 0 {
				ps = append(ps, nil) // unnamed: placeholder keeps positions aligned
				continue
			}
			for _, name := range f.Names {
				ps = append(ps, addParam(n, name))
			}
		}
		pf.params[n] = ps
	}
}

// collectDerived records type-switch and type-assertion bindings:
// `switch d := dst.(type)` binds one implicit variable per case
// clause, and `d, ok := dst.(T)` binds one explicitly; both carry the
// operand's provenance.
func (pf *paramFlow) collectDerived() {
	info := pf.pass.TypesInfo
	for _, f := range pf.pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.TypeSwitchStmt:
				as, ok := x.Assign.(*ast.AssignStmt)
				if !ok || len(as.Rhs) != 1 {
					return true
				}
				ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr)
				if !ok {
					return true
				}
				src := identVar(info, ta.X)
				if src == nil {
					return true
				}
				for _, stmt := range x.Body.List {
					cc, ok := stmt.(*ast.CaseClause)
					if !ok {
						continue
					}
					if iv, ok := info.Implicits[cc].(*types.Var); ok {
						pf.derived[iv] = src
					}
				}
			case *ast.AssignStmt:
				if x.Tok != token.DEFINE || len(x.Rhs) != 1 {
					return true
				}
				ta, ok := ast.Unparen(x.Rhs[0]).(*ast.TypeAssertExpr)
				if !ok || ta.Type == nil {
					return true
				}
				src := identVar(info, ta.X)
				if src == nil {
					return true
				}
				if id, ok := x.Lhs[0].(*ast.Ident); ok {
					if dv, ok := info.Defs[id].(*types.Var); ok {
						pf.derived[dv] = src
					}
				}
			}
			return true
		})
	}
}

// flowEdge propagates one synchronous call site's arguments into the
// callee's parameters; it reports whether any parameter context set
// grew.
func (pf *paramFlow) flowEdge(c *callgraph.Node, e callgraph.Edge) bool {
	callee := e.Callee
	recv := pf.recv[callee]
	ps := pf.params[callee]
	if recv == nil && len(ps) == 0 {
		return false
	}
	changed := false
	conservative := func(p *types.Var) {
		if p != nil && pf.addAll(p, pf.origins[c]) {
			changed = true
		}
	}
	if e.Site == nil {
		conservative(recv)
		for _, p := range ps {
			conservative(p)
		}
		return changed
	}
	flowArg := func(p *types.Var, arg ast.Expr) {
		if p == nil {
			return
		}
		switch kind, q := pf.classify(c, arg); kind {
		case argFresh:
		case argParam:
			if pf.addAll(p, pf.ctxs[q]) {
				changed = true
			}
		default:
			conservative(p)
		}
	}

	args := e.Site.Args
	recvMatched := recv == nil
	if sel, ok := ast.Unparen(e.Site.Fun).(*ast.SelectorExpr); ok && recv != nil {
		if s := pf.pass.TypesInfo.Selections[sel]; s != nil {
			switch s.Kind() {
			case types.MethodVal: // x.M(args): the receiver is sel.X
				flowArg(recv, sel.X)
				recvMatched = true
			case types.MethodExpr: // T.M(x, args): the receiver is args[0]
				if len(args) > 0 {
					flowArg(recv, args[0])
					args = args[1:]
					recvMatched = true
				}
			}
		}
	}
	if !recvMatched {
		conservative(recv) // method value call, or a shape we can't match
	}
	for i, p := range ps {
		if i >= len(args) {
			// Fewer arguments than parameters: a tuple call f(g()).
			// The values are call results — shared by definition of
			// classify — so stay conservative.
			conservative(p)
			continue
		}
		flowArg(p, args[i])
	}
	// Variadic extras all land in the final parameter.
	for i := len(ps); i < len(args) && len(ps) > 0; i++ {
		flowArg(ps[len(ps)-1], args[i])
	}
	return changed
}

type argKind int

const (
	argFresh  argKind = iota // constructs or names an unpublished object
	argParam                 // hands through a parameter of the caller
	argShared                // anything else: field, map lookup, call result
)

// classify decides what one call argument contributes: nothing (a
// fresh or valueless argument), the caller's parameter contexts (a
// handed-through parameter, returned as q), or the caller's full
// context set.
func (pf *paramFlow) classify(c *callgraph.Node, arg ast.Expr) (kind argKind, q *types.Var) {
	info := pf.pass.TypesInfo
	e := ast.Unparen(arg)
	if tv, ok := info.Types[e]; ok && (tv.IsNil() || tv.Value != nil) {
		return argFresh, nil // nil and constants carry no mutable object
	}
	if dataflow.FreshExpr(info, e) {
		return argFresh, nil
	}
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		// A selector or index path names a sub-object whose own sharing
		// the parameter's contexts do not bound: shared.
		return argShared, nil
	}
	v, _ := info.Uses[id].(*types.Var)
	if v == nil {
		return argShared, nil
	}
	if dataflow.FreshLocal(pf.pass.Files, info, pf.pass.Pkg, v) {
		return argFresh, nil
	}
	if p := pf.resolve(c, v); p != nil {
		return argParam, p
	}
	return argShared, nil
}

// identVar resolves a bare (possibly parenthesized or address-taken)
// identifier expression to its variable, or nil.
func identVar(info *types.Info, e ast.Expr) *types.Var {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	v, _ := info.Uses[id].(*types.Var)
	return v
}
