// Package loader type-checks Go packages from source using only the
// standard library, providing the package inputs for schedlint's
// analyzers. The build environment has no module proxy access, so the
// usual golang.org/x/tools/go/packages stack is unavailable; instead:
//
//   - package patterns are expanded with `go list -json`,
//   - packages inside the current module (or a GOPATH-style local
//     root, used by analysistest) are parsed and type-checked here,
//     yielding full ASTs and types.Info,
//   - imports outside the module (the standard library) are delegated
//     to go/importer's source importer, which type-checks them from
//     GOROOT, entirely offline.
//
// Cgo is disabled for the whole process so that the pure-Go file sets
// (netgo etc.) are selected everywhere, matching what the analyzers
// can actually parse.
package loader

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func init() {
	// Select pure-Go file sets before any importer is constructed; the
	// source importer captures &build.Default.
	build.Default.CgoEnabled = false
}

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	TypesInfo  *types.Info
	// TestsLoaded marks packages whose file set includes _test.go
	// files (IncludeTests mode); RunAnalyzers uses it to filter
	// test-file findings from analyzers that did not opt in.
	TestsLoaded bool
	// ParseErrors and TypeErrors collect problems without aborting the
	// load; callers decide whether they are fatal.
	ParseErrors []error
	TypeErrors  []error
}

// Target adapts the package for analysis.RunAnalyzers.
func (p *Package) Target() *analysis.Target {
	return &analysis.Target{
		Fset: p.Fset, Files: p.Files, Pkg: p.Types, TypesInfo: p.TypesInfo,
		TestsLoaded: p.TestsLoaded,
	}
}

// Loader loads and caches packages against one file set.
type Loader struct {
	Fset *token.FileSet
	// LocalRoot, when set, resolves import paths GOPATH-style as
	// LocalRoot/<import path> before consulting the module mapping.
	// analysistest points it at a testdata/src directory.
	LocalRoot string

	// IncludeTests makes Load yield test-augmented packages: a package
	// with in-package _test.go files is analyzed with those files
	// included (in place of the plain package), and external test files
	// become a separate "<path>_test" package. Plain packages are still
	// loaded and cached first, so imports — including the external test
	// package's import of the package under test — always resolve to
	// the test-free variant. (The repo has no export_test.go files, so
	// external tests never need test-only exports.)
	IncludeTests bool

	modulePath string
	moduleDir  string
	std        types.ImporterFrom
	pkgs       map[string]*Package
	loading    map[string]bool
}

// New returns a loader rooted at the current module (if any).
func New() *Loader {
	l := &Loader{
		Fset:    token.NewFileSet(),
		std:     importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	if out, err := exec.Command("go", "list", "-m", "-json").Output(); err == nil {
		var m struct{ Path, Dir string }
		if json.Unmarshal(out, &m) == nil {
			l.modulePath, l.moduleDir = m.Path, m.Dir
		}
	}
	return l
}

// Load expands the patterns with `go list` and loads every matched
// package.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*Package
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var meta struct{ ImportPath, Dir string }
		if err := dec.Decode(&meta); err != nil {
			return nil, fmt.Errorf("go list output: %v", err)
		}
		p, err := l.loadDir(meta.ImportPath, meta.Dir)
		if err != nil {
			return nil, err
		}
		if !l.IncludeTests {
			pkgs = append(pkgs, p)
			continue
		}
		aug, xtest, err := l.loadTests(meta.ImportPath, meta.Dir)
		if err != nil {
			return nil, err
		}
		if aug != nil {
			// The augmented variant supersedes the plain package for
			// analysis: same files plus the in-package tests. Reporting
			// both would duplicate every finding in the shared files.
			pkgs = append(pkgs, aug)
		} else {
			pkgs = append(pkgs, p)
		}
		if xtest != nil {
			pkgs = append(pkgs, xtest)
		}
	}
	return pkgs, nil
}

// loadTests builds the test-augmented variants of a package already
// loaded by loadDir: the package re-checked with its in-package
// TestGoFiles (nil if there are none), and the external test package
// (nil likewise). Neither is cached under the import path — importers
// must keep resolving to the plain package.
func (l *Loader) loadTests(path, dir string) (aug, xtest *Package, err error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, nil, fmt.Errorf("loader: %s: %v", path, err)
	}
	if len(bp.TestGoFiles) > 0 {
		names := append(append([]string{}, bp.GoFiles...), bp.TestGoFiles...)
		aug = l.checkFiles(path, dir, names)
		aug.TestsLoaded = true
	}
	if len(bp.XTestGoFiles) > 0 {
		xtest = l.checkFiles(path+"_test", dir, bp.XTestGoFiles)
		xtest.TestsLoaded = true
	}
	return aug, xtest, nil
}

// Lookup returns an already-loaded package by import path (nil when it
// was never loaded). Dependencies of analyzed packages are loaded —
// and cached — transitively during type checking, so after Load or
// LoadPath this resolves any local import the analyzed code mentions.
func (l *Loader) Lookup(path string) *Package { return l.pkgs[path] }

// DepResolver adapts the loader's cache for analysis.Target.Dep:
// analyzers ask for an imported package's syntax by path.
func (l *Loader) DepResolver() func(path string) *analysis.Target {
	return func(path string) *analysis.Target {
		if p := l.Lookup(path); p != nil {
			return p.Target()
		}
		return nil
	}
}

// LoadPath loads a single import path resolved against LocalRoot / the
// module.
func (l *Loader) LoadPath(path string) (*Package, error) {
	dir, ok := l.resolveDir(path)
	if !ok {
		return nil, fmt.Errorf("loader: cannot resolve %q locally", path)
	}
	return l.loadDir(path, dir)
}

func (l *Loader) resolveDir(path string) (string, bool) {
	if l.LocalRoot != "" {
		dir := filepath.Join(l.LocalRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, true
		}
	}
	if l.modulePath != "" {
		if path == l.modulePath {
			return l.moduleDir, true
		}
		if rest, ok := strings.CutPrefix(path, l.modulePath+"/"); ok {
			return filepath.Join(l.moduleDir, filepath.FromSlash(rest)), true
		}
	}
	return "", false
}

func (l *Loader) loadDir(path, dir string) (*Package, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("loader: import cycle through %q", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("loader: %s: %v", path, err)
	}
	p := l.checkFiles(path, dir, bp.GoFiles)
	l.pkgs[path] = p
	return p, nil
}

// checkFiles parses and type-checks one file list as a package; parse
// and type errors accumulate on the result instead of aborting.
func (l *Loader) checkFiles(path, dir string, names []string) *Package {
	p := &Package{ImportPath: path, Dir: dir, Fset: l.Fset}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if f != nil {
			files = append(files, f)
		}
		if err != nil {
			p.ParseErrors = append(p.ParseErrors, err)
		}
	}
	p.Files = files
	p.TypesInfo = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{
		Importer:    (*loaderImporter)(l),
		FakeImportC: true,
		Error:       func(err error) { p.TypeErrors = append(p.TypeErrors, err) },
	}
	p.Types, _ = conf.Check(path, l.Fset, files, p.TypesInfo)
	return p
}

// loaderImporter resolves imports during type checking: local packages
// recurse into the loader, everything else goes to the stdlib source
// importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if dir, ok := l.resolveDir(path); ok {
		p, err := l.loadDir(path, dir)
		if err != nil {
			return nil, err
		}
		if p.Types == nil {
			return nil, fmt.Errorf("loader: no types for %q", path)
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
