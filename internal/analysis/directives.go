package analysis

import (
	"go/ast"
	"go/token"
	"strings"
)

// Directive is one parsed `//lint:<name> <reason>` comment.
type Directive struct {
	Name   string
	Reason string
	Pos    token.Position
	// From/To is the inclusive line range the directive covers in its
	// file: its own line and the next (so a directive above a statement
	// works), widened to the whole function when the directive sits on
	// or directly above a function declaration.
	From, To int
}

const directivePrefix = "//lint:"

// parseDirective extracts a directive from one comment, if present.
func parseDirective(c *ast.Comment) (name, reason string, ok bool) {
	text := c.Text
	if !strings.HasPrefix(text, directivePrefix) {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, directivePrefix)
	name, reason, _ = strings.Cut(rest, " ")
	return strings.TrimSpace(name), strings.TrimSpace(reason), name != ""
}

// Directives returns every lint directive in the files, with covered
// line ranges resolved.
func Directives(fset *token.FileSet, files []*ast.File) []Directive {
	var out []Directive
	for _, f := range files {
		// Function spans, for widening declaration-level directives.
		type span struct{ start, end int }
		var funcs []span
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			start := fset.Position(fd.Pos()).Line
			if fd.Doc != nil {
				start = fset.Position(fd.Doc.Pos()).Line
			}
			funcs = append(funcs, span{start, fset.Position(fd.End()).Line})
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				name, reason, ok := parseDirective(c)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				d := Directive{Name: name, Reason: reason, Pos: pos, From: pos.Line, To: pos.Line + 1}
				for _, fn := range funcs {
					// The directive is part of the declaration header or
					// its doc comment: cover the whole function.
					if pos.Line >= fn.start && pos.Line <= fn.end {
						hdr := pos.Line <= fn.start+1
						if hdr || directiveIsDocLine(fset, f, pos.Line, fn.start) {
							d.To = fn.end
						}
						break
					}
				}
				out = append(out, d)
			}
		}
	}
	return out
}

// directiveIsDocLine reports whether line belongs to the doc-comment /
// signature prefix of a function starting (incl. doc) at fnStart.
func directiveIsDocLine(fset *token.FileSet, f *ast.File, line, fnStart int) bool {
	for _, d := range f.Decls {
		fd, ok := d.(*ast.FuncDecl)
		if !ok || fd.Doc == nil {
			continue
		}
		if fset.Position(fd.Doc.Pos()).Line <= line && line <= fset.Position(fd.Body.Pos()).Line {
			return true
		}
	}
	return false
}

// Marker is one parsed `//schedlint:<key> <args>` comment. Unlike the
// `//lint:` directives above — which *suppress* findings — markers
// *declare* facts the interprocedural analyzers check against: a
// dispatch switch's role (`//schedlint:dispatch server.mom`) or a
// package's lock acquisition order
// (`//schedlint:lockorder Server.mu < Conn.wm`).
type Marker struct {
	Key  string
	Args string
	Pos  token.Position
}

const markerPrefix = "//schedlint:"

// Markers returns every `//schedlint:<key>` marker of the given key in
// the files, in file/position order.
func Markers(fset *token.FileSet, files []*ast.File, key string) []Marker {
	var out []Marker
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				if !strings.HasPrefix(text, markerPrefix) {
					continue
				}
				rest := strings.TrimPrefix(text, markerPrefix)
				k, args, _ := strings.Cut(rest, " ")
				if k != key {
					continue
				}
				out = append(out, Marker{Key: k, Args: strings.TrimSpace(args), Pos: fset.Position(c.Pos())})
			}
		}
	}
	return out
}

// Suppressor answers "is a finding at this position silenced?".
type Suppressor struct {
	byFile map[string][]Directive
}

// NewSuppressor indexes the directives of a package's files.
func NewSuppressor(fset *token.FileSet, files []*ast.File) *Suppressor {
	s := &Suppressor{byFile: make(map[string][]Directive)}
	for _, d := range Directives(fset, files) {
		s.byFile[d.Pos.Filename] = append(s.byFile[d.Pos.Filename], d)
	}
	return s
}

// Suppressed reports whether a directive of the given name covers pos.
// Directives with an empty reason are ignored: an exception must say
// why it is sound.
func (s *Suppressor) Suppressed(name string, pos token.Position) bool {
	for _, d := range s.byFile[pos.Filename] {
		if d.Name == name && d.Reason != "" && d.From <= pos.Line && pos.Line <= d.To {
			return true
		}
	}
	return false
}
