// Package maporder flags iteration over Go maps whose loop body does
// something order-sensitive. Map iteration order is randomized per
// run, so any observable effect produced inside `for ... range m`
// without a subsequent deterministic sort silently breaks the
// bit-identical reproduction of Table II — historically the dominant
// determinism bug class in this codebase.
//
// A range over a map is reported when its body:
//
//   - appends to a slice declared outside the loop, unless a
//     sort.*/slices.Sort* call on that slice appears later in the same
//     enclosing block (collect-then-sort is the sanctioned idiom);
//   - sends on a channel;
//   - writes output (fmt.Print*/Fprint*/errors via fmt, or Write* /
//     WriteString-style method calls on builders and writers);
//   - accumulates into a floating-point variable declared outside the
//     loop (float addition is not associative, so the rounding of the
//     total depends on iteration order);
//   - calls a scheduling decision function (StartJob, GrantDyn,
//     RejectDyn, Preempt, CancelJob, ...), which must never be driven
//     in map order.
//
// Findings are suppressed with `//lint:maporder <reason>` when the
// order provably does not matter (e.g. the consumer re-sorts).
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name:      "maporder",
	Doc:       "flags order-sensitive work performed while ranging over a map",
	Directive: "maporder",
	Run:       run,
}

// decisionFuncs are callee names that commit scheduling decisions;
// invoking one per map entry makes the schedule depend on map order.
var decisionFuncs = map[string]bool{
	"StartJob": true, "GrantDyn": true, "RejectDyn": true,
	"Preempt": true, "CancelJob": true, "CompleteJob": true,
	"Submit": true, "SubmitAt": true, "RequestDyn": true,
	"SubmitBatch": true,
}

// noMapRangePkgs ban ranging over a map outright, order-sensitive body
// or not, each with its package-specific rationale in the finding. The
// campaign worker pool dispatches tasks and merges results strictly by
// slice index — a map range anywhere in it is the one way
// completion-order nondeterminism could leak back into campaign
// output. The fairtree fold/factor/history paths promise byte-identical
// results at any producer count, which holds only because every
// traversal is over dense NodeID arrays or sorted stamps. In both, the
// whole construct is rejected and the finding cannot be suppressed.
var noMapRangePkgs = map[string]string{
	"campaign": "range over map in the campaign package: dispatch and merge must be slice-indexed so results never depend on completion or map order",
	"fairtree": "range over map in the fairtree package: folds, factors and history rows must walk dense NodeID arrays or sorted stamps so usage accounting stays byte-identical at any producer count",
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func run(pass *analysis.Pass) error {
	noRangeMsg := noMapRangePkgs[lastElem(pass.Pkg.Path())]
	for _, f := range pass.Files {
		v := &visitor{pass: pass, noRangeMsg: noRangeMsg}
		ast.Walk(v, f)
	}
	return nil
}

// visitor tracks enclosing statement lists so the append check can
// look for sorts after the range loop.
type visitor struct {
	pass       *analysis.Pass
	blocks     []([]ast.Stmt)
	noRangeMsg string // non-empty: package-level map-range ban message
}

func (v *visitor) Visit(n ast.Node) ast.Visitor {
	switch n := n.(type) {
	case *ast.BlockStmt:
		v.blocks = append(v.blocks, n.List)
		return v
	case *ast.CaseClause:
		v.blocks = append(v.blocks, n.Body)
		return v
	case *ast.CommClause:
		v.blocks = append(v.blocks, n.Body)
		return v
	case *ast.RangeStmt:
		if v.isMapRange(n) {
			if v.noRangeMsg != "" {
				v.pass.Report(analysis.Diagnostic{
					Pos:            n.Pos(),
					Message:        v.noRangeMsg,
					Unsuppressable: true,
				})
			} else {
				v.checkMapRange(n)
			}
		}
		return v
	case nil:
		return nil
	}
	return v
}

func (v *visitor) isMapRange(rs *ast.RangeStmt) bool {
	tv, ok := v.pass.TypesInfo.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func (v *visitor) checkMapRange(rs *ast.RangeStmt) {
	pass := v.pass
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "send on channel inside range over map: receiver observes random map order")
		case *ast.AssignStmt:
			v.checkAssign(rs, n)
		case *ast.CallExpr:
			v.checkCall(rs, n)
		}
		return true
	})
}

func (v *visitor) checkAssign(rs *ast.RangeStmt, as *ast.AssignStmt) {
	pass := v.pass
	// Float accumulation: total += v with total declared outside the
	// loop.
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		if len(as.Lhs) == 1 && v.declaredOutside(as.Lhs[0], rs) && isFloat(pass, as.Lhs[0]) {
			pass.Reportf(as.Pos(), "floating-point accumulation into %s inside range over map: float addition is not associative, so the result depends on random map order; iterate sorted keys instead", types.ExprString(as.Lhs[0]))
		}
	}
	// append to an outer slice.
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || i >= len(as.Lhs) {
			continue
		}
		target := as.Lhs[i]
		if !v.declaredOutside(target, rs) {
			continue
		}
		if v.sortedAfter(rs, target) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s inside range over map without a subsequent deterministic sort", types.ExprString(target))
	}
}

func (v *visitor) checkCall(rs *ast.RangeStmt, call *ast.CallExpr) {
	pass := v.pass
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name := fun.Sel.Name
		if id, ok := fun.X.(*ast.Ident); ok {
			if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok {
				if pn.Imported().Path() == "fmt" && (strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint")) {
					pass.Reportf(call.Pos(), "fmt.%s inside range over map writes output in random map order", name)
					return
				}
			}
		}
		if strings.HasPrefix(name, "Write") && pass.TypesInfo.Selections[fun] != nil {
			pass.Reportf(call.Pos(), "%s inside range over map writes output in random map order", types.ExprString(fun))
			return
		}
		if decisionFuncs[name] {
			pass.Reportf(call.Pos(), "scheduling decision %s driven by range over map: decisions must not depend on map order", types.ExprString(fun))
		}
	case *ast.Ident:
		if decisionFuncs[fun.Name] {
			pass.Reportf(call.Pos(), "scheduling decision %s driven by range over map: decisions must not depend on map order", fun.Name)
		}
	}
}

// declaredOutside reports whether the base object of expr was declared
// before the range statement (or is a field / package-level variable).
func (v *visitor) declaredOutside(expr ast.Expr, rs *ast.RangeStmt) bool {
	switch e := expr.(type) {
	case *ast.Ident:
		obj := v.pass.TypesInfo.ObjectOf(e)
		if obj == nil {
			return false
		}
		return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
	case *ast.SelectorExpr:
		return true // field or qualified access: storage outlives the loop
	case *ast.IndexExpr:
		return v.declaredOutside(e.X, rs)
	}
	return false
}

func isFloat(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether a statement after rs in one of the
// enclosing statement lists applies a deterministic sort to target.
func (v *visitor) sortedAfter(rs *ast.RangeStmt, target ast.Expr) bool {
	want := types.ExprString(target)
	for _, list := range v.blocks {
		idx := -1
		for i, st := range list {
			if containsNode(st, rs) {
				idx = i
				break
			}
		}
		if idx < 0 {
			continue
		}
		for _, st := range list[idx+1:] {
			found := false
			ast.Inspect(st, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || found {
					return !found
				}
				if v.isSortCall(call, want) {
					found = true
					return false
				}
				return true
			})
			if found {
				return true
			}
		}
	}
	return false
}

// isSortCall recognizes sort.X(target, ...) / slices.SortX(target,
// ...) style calls whose first argument is the collected slice.
func (v *visitor) isSortCall(call *ast.CallExpr, want string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := v.pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return false
	}
	p := pn.Imported().Path()
	if p != "sort" && p != "slices" {
		return false
	}
	for _, arg := range call.Args {
		if types.ExprString(arg) == want {
			return true
		}
	}
	return false
}

func containsNode(root ast.Node, target ast.Node) bool {
	if root == nil {
		return false
	}
	return root.Pos() <= target.Pos() && target.End() <= root.End()
}
