package maporder_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/maporder"
)

func TestMaporder(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "a")
}

func TestMaporderCampaignBan(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "campaign")
}

func TestMaporderFairtreeBan(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), maporder.Analyzer, "fairtree")
}
