// Package a exercises the maporder analyzer: order-sensitive work
// inside range-over-map with and without the sanctioned fixes.
package a

import (
	"fmt"
	"sort"
	"strings"
)

func appendNoSort(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map without a subsequent deterministic sort`
	}
	return out
}

func appendThenSort(m map[string]int) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func appendThenSortSlice(m map[int]string) []string {
	var out []string
	for _, v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func localPerIteration(m map[string][]int) []int {
	var flat []int
	for _, vs := range m {
		flat = append(flat, vs...) // want `append to flat inside range over map`
	}
	return flat
}

func send(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `send on channel inside range over map`
	}
}

func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over map writes output in random map order`
	}
}

func buildString(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want `b\.WriteString inside range over map writes output in random map order`
	}
}

func floatAccum(m map[string]float64) float64 {
	var total float64
	for _, v := range m {
		total += v // want `floating-point accumulation into total`
	}
	return total
}

func intAccumIsFine(m map[string]int) int {
	var n int
	for _, v := range m {
		n += v
	}
	return n
}

func mapWritesAreFine(m map[string]int) {
	for k, v := range m {
		if v < 0 {
			delete(m, k)
		} else {
			m[k] = v * 2
		}
	}
}

type sched struct{}

func (s *sched) StartJob(id int) {}

func decisions(s *sched, m map[int]bool) {
	for id := range m {
		s.StartJob(id) // want `scheduling decision s\.StartJob driven by range over map`
	}
}

func rangeOverSliceIsFine(jobs []int, s *sched, ch chan int) {
	var out []int
	for _, j := range jobs {
		out = append(out, j)
		ch <- j
		s.StartJob(j)
	}
}

func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		//lint:maporder consumer re-sorts before use
		out = append(out, k)
	}
	return out
}
