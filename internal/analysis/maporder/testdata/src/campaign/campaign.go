// Package campaign exercises the blanket map-range ban: the worker
// pool must dispatch and merge by slice index only.
package campaign

func dispatchFromMap(tasks map[int]func()) {
	for _, t := range tasks { // want `range over map in the campaign package: dispatch and merge must be slice-indexed so results never depend on completion or map order`
		t()
	}
}

func mergeFromMap(results map[int]int) []int {
	out := make([]int, 0, len(results))
	//lint:maporder the directive must not silence the campaign ban
	for _, r := range results { // want `range over map in the campaign package: dispatch and merge must be slice-indexed so results never depend on completion or map order`
		out = append(out, r)
	}
	return out
}

func sliceDispatchIsFine(tasks []func()) {
	for _, t := range tasks {
		t()
	}
}
