// Package fairtree exercises the blanket map-range ban: usage folds,
// factor computation and history emission walk dense NodeID arrays or
// sorted stamp slices only, so results stay byte-identical at any
// producer count.
package fairtree

func foldFromMap(pending map[int32]float64) float64 {
	total := 0.0
	for _, amt := range pending { // want `range over map in the fairtree package: folds, factors and history rows must walk dense NodeID arrays or sorted stamps so usage accounting stays byte-identical at any producer count`
		total += amt
	}
	return total
}

func historyFromMap(usage map[string]float64, emit func(string, float64)) {
	//lint:maporder the directive must not silence the fairtree ban
	for node, u := range usage { // want `range over map in the fairtree package: folds, factors and history rows must walk dense NodeID arrays or sorted stamps so usage accounting stays byte-identical at any producer count`
		emit(node, u)
	}
}

func denseWalkIsFine(raw []float64) float64 {
	total := 0.0
	for _, v := range raw {
		total += v
	}
	return total
}
