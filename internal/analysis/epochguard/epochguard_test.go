package epochguard_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/epochguard"
)

func TestEpochGuard(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), epochguard.Analyzer, "rms")
}
