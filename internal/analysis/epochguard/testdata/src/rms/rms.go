// Package rms is the epochguard golden fixture: a condensed
// resource-manager shape seeding every diagnostic class (plain missed
// bump, rollback-after-bump, dirty helper escaping through an
// exported caller, one branch arm missing its bump) next to the fixed
// variants that must stay silent (bump after write, bumpQueue
// subsuming bump, helper cleaned by its callers, deferred bump, fresh
// unpublished locals, a reasoned suppression).
package rms

import "errors"

// Server mirrors the daemon: epoch-guarded queue/active state.
type Server struct {
	epoch  uint64
	qepoch uint64

	queued []int        //schedlint:epoch-guarded by bumpQueue
	active map[int]bool //schedlint:epoch-guarded by bump
}

func (s *Server) bump() { s.epoch++ }

// bumpQueue advances both epochs: queue-membership changes invalidate
// state-keyed caches too.
//
//schedlint:epoch-bump subsumes bump
func (s *Server) bumpQueue() { s.epoch++; s.qepoch++ }

// --- seeded violations ---

// Drop forgets its queue bump entirely.
func (s *Server) Drop() {
	s.queued = s.queued[:0] // want `write to epoch-guarded field queued may reach return`
}

// Start bumps mid-way, then the rollback path mutates again and
// returns without a second bump — the PR 3 dispatch-failure shape.
func (s *Server) Start(id int) error {
	s.active[id] = true
	s.bump()
	if id < 0 {
		delete(s.active, id) // want `write to epoch-guarded field active may reach return`
		return errors.New("rollback")
	}
	return nil
}

// dropUnbumped leaves the write pending; Evict exports the dirt.
func (s *Server) dropUnbumped(id int) {
	delete(s.active, id) // want `write to epoch-guarded field active may reach return`
}

// Evict never bumps after the dirty helper.
func (s *Server) Evict(id int) {
	s.dropUnbumped(id)
}

// Toggle bumps on one arm only.
func (s *Server) Toggle(id int, on bool) {
	if on {
		s.active[id] = true
		s.bump()
	} else {
		delete(s.active, id) // want `write to epoch-guarded field active may reach return`
	}
}

// --- fixed variants: silent ---

// Submit bumps after the write.
func (s *Server) Submit(id int) {
	s.queued = append(s.queued, id)
	s.bumpQueue()
}

// Promote relies on bumpQueue subsuming bump for the active write.
func (s *Server) Promote(id int) {
	s.active[id] = true
	s.queued = append(s.queued, id)
	s.bumpQueue()
}

// CleanEvict discharges the helper's pending write itself.
func (s *Server) CleanEvict(id int) {
	s.dropUnbumped(id)
	s.bump()
}

// Deferred bumps on the way out, whatever path returns.
func (s *Server) Deferred(id int) error {
	defer s.bump()
	s.active[id] = true
	if id < 0 {
		return errors.New("no such job")
	}
	return nil
}

// NewServer initializes a fresh, unpublished Server: no observers, no
// obligation.
func NewServer() *Server {
	s := &Server{active: map[int]bool{}}
	s.queued = append(s.queued, 0)
	return s
}

// Rebuild documents why the un-bumped write is sound.
func (s *Server) Rebuild() {
	s.queued = nil //lint:epochguard callers rebuild the queue under a held lock and bump once at the end
}

// Broken declares a guard that does not resolve: unsuppressable.
type Broken struct {
	items []int //schedlint:epoch-guarded by nosuchbump // want `no such method on Broken`
}
