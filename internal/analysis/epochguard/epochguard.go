// Package epochguard proves the ChangeTracker epoch discipline: every
// same-package call path that writes an epoch-guarded field must reach
// the declared bump function before returning. A missed bump is the
// worst kind of scheduler bug — nothing crashes, the epoch-keyed
// iteration cache silently serves stale plans and a requeued job sits
// in the queue forever — so the convention is machine-checked.
//
// Fields opt in with a marker on their declaration:
//
//	queued []*job.Job //schedlint:epoch-guarded by bumpQueue
//
// naming a same-package function or a method of the enclosing struct.
// A second marker declares bump equivalence on function declarations:
//
//	//schedlint:epoch-bump subsumes bump
//	func (s *Server) bumpQueue() { ... }
//
// meaning a call to bumpQueue discharges obligations declared `by
// bump` too (the queue epoch bump advances the state epoch as well).
//
// The check runs on the dataflow walker over the package call graph:
// each function gets a summary — "may a guarded write reach my return
// un-bumped, entered clean/dirty?" — closed to a fixpoint so helpers
// that write without bumping are fine as long as every entry path
// bumps after them, and helpers that always bump (killLocked) clean
// their callers' pending writes. Violations are reported at analysis
// entry points: exported functions and functions (or literals) with
// no same-package synchronous callers, including spawned goroutines —
// once those return, nothing can bump on their behalf.
//
// What it does not prove: writes through aliases of the guarded
// struct (q := s.queued; q[0] = ...), mutations behind cross-package
// calls, and writes to fields of objects created inside the function
// itself (fresh, unpublished state has no observers and is exempt).
// Findings can be suppressed with `//lint:epochguard <reason>`.
package epochguard

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the epochguard check.
var Analyzer = &analysis.Analyzer{
	Name:      "epochguard",
	Doc:       "writes to //schedlint:epoch-guarded fields must reach the declared bump function on every return path",
	Directive: "epochguard",
	Run:       run,
}

// group is one guard obligation: the fields declared `by` one bump
// function, and the set of functions that discharge it.
type group struct {
	bump   *types.Func          // the declared bump function
	fields map[*types.Var]bool  // guarded fields
	equiv  map[*types.Func]bool // bump + everything that subsumes it
	label  string               // "Server.bumpLocked", for messages
}

func run(pass *analysis.Pass) error {
	groups := collectGroups(pass)
	if len(groups) == 0 {
		return nil
	}
	fieldGroup := map[*types.Var]int{}
	for gi, g := range groups {
		for f := range g.fields {
			fieldGroup[f] = gi
		}
	}

	graph := callgraph.Build(pass)
	a := &analyzer{
		pass:       pass,
		groups:     groups,
		fieldGroup: fieldGroup,
		graph:      graph,
		summaries:  map[*callgraph.Node]*summary{},
	}
	dataflow.Fixpoint(graph, a.update)

	// Violations surface at entry points: exported declarations and
	// nodes nothing in the package calls synchronously (spawned
	// goroutines, callback literals, unexported interface methods).
	callers := dataflow.SyncCallers(graph)
	reported := map[string]bool{}
	for _, n := range graph.Nodes {
		exported := n.Decl != nil && n.Decl.Name.IsExported()
		if !exported && callers[n] > 0 {
			continue
		}
		sum := a.summaries[n]
		if sum == nil {
			continue
		}
		for gi, g := range groups {
			if !sum.out0[gi] {
				continue
			}
			w := sum.wit0[gi]
			key := fmt.Sprintf("%d:%d", gi, w.pos)
			if reported[key] {
				continue
			}
			reported[key] = true
			pass.Reportf(w.pos, "%s may reach return of %s without %s()",
				w.what, n.Name, g.label)
		}
	}
	return nil
}

// collectGroups resolves the field and bump markers into guard groups,
// reporting malformed or unresolvable markers as unsuppressable.
func collectGroups(pass *analysis.Pass) []*group {
	fields := dataflow.FieldMarkers(pass.Files, pass.TypesInfo, "epoch-guarded")
	if len(fields) == 0 {
		return nil
	}
	var groups []*group
	byBump := map[*types.Func]*group{}
	for _, fm := range fields {
		parts := strings.Fields(fm.Args)
		var name string
		if len(parts) == 2 && parts[0] == "by" {
			name = parts[1]
		}
		if name == "" {
			pass.Report(analysis.Diagnostic{Pos: fm.Pos, Unsuppressable: true,
				Message: fmt.Sprintf("malformed epoch-guarded marker %q: want `epoch-guarded by <func>`", fm.Args)})
			continue
		}
		bump := resolveBump(pass, fm.Struct, name)
		if bump == nil {
			pass.Report(analysis.Diagnostic{Pos: fm.Pos, Unsuppressable: true,
				Message: fmt.Sprintf("epoch-guarded bump %q: no such method on %s or package function", name, fm.Struct)})
			continue
		}
		g := byBump[bump]
		if g == nil {
			g = &group{
				bump:   bump,
				fields: map[*types.Var]bool{},
				equiv:  map[*types.Func]bool{bump: true},
				label:  fm.Struct + "." + name,
			}
			byBump[bump] = g
			groups = append(groups, g)
		}
		g.fields[fm.Field] = true
	}
	// Bump equivalence: `//schedlint:epoch-bump subsumes a, b` widens
	// the groups declared by those names.
	for _, m := range dataflow.FuncMarkers(pass.Files, pass.TypesInfo, "epoch-bump") {
		if m.Fn == nil {
			continue
		}
		rest, hasSubsumes := strings.CutPrefix(m.Args, "subsumes ")
		if m.Args != "" && !hasSubsumes {
			pass.Report(analysis.Diagnostic{Pos: m.Pos, Unsuppressable: true,
				Message: fmt.Sprintf("malformed epoch-bump marker %q: want `epoch-bump [subsumes <func>[, <func>]]`", m.Args)})
			continue
		}
		subsumed := map[string]bool{}
		for _, s := range strings.FieldsFunc(rest, func(r rune) bool { return r == ',' || r == ' ' }) {
			subsumed[s] = true
		}
		matched := false
		for _, g := range groups {
			if g.bump == m.Fn || subsumed[g.bump.Name()] {
				g.equiv[m.Fn] = true
				matched = true
			}
		}
		if hasSubsumes && !matched {
			pass.Report(analysis.Diagnostic{Pos: m.Pos, Unsuppressable: true,
				Message: fmt.Sprintf("epoch-bump subsumes %s: no epoch-guarded field declares that bump", rest)})
		}
	}
	return groups
}

// resolveBump finds the named bump function: a method of the guarded
// struct first, then a package-level function.
func resolveBump(pass *analysis.Pass, structName, name string) *types.Func {
	if tn, ok := pass.Pkg.Scope().Lookup(structName).(*types.TypeName); ok {
		obj, _, _ := types.LookupFieldOrMethod(tn.Type(), true, pass.Pkg, name)
		if fn, ok := obj.(*types.Func); ok {
			return fn
		}
	}
	fn, _ := pass.Pkg.Scope().Lookup(name).(*types.Func)
	return fn
}

// witness records the site that made a group dirty, for the report.
type witness struct {
	pos  token.Pos
	what string
}

// summary is one function's transfer behavior per group: may a dirty
// fact reach its return when entered clean (out0) / already dirty
// (out1)?
type summary struct {
	out0, out1 []bool
	wit0       []witness
}

// egState is the walker state: the per-group may-dirty bit and its
// witness.
type egState struct {
	dirty []bool
	wit   []witness
}

func (s *egState) Clone() dataflow.State {
	c := &egState{dirty: append([]bool(nil), s.dirty...), wit: append([]witness(nil), s.wit...)}
	return c
}

func (s *egState) Join(o dataflow.State) {
	os := o.(*egState)
	for i := range s.dirty {
		if os.dirty[i] && !s.dirty[i] {
			s.dirty[i] = true
			s.wit[i] = os.wit[i]
		}
	}
}

func (s *egState) Equal(o dataflow.State) bool {
	os := o.(*egState)
	for i := range s.dirty {
		if s.dirty[i] != os.dirty[i] {
			return false
		}
	}
	return true
}

type analyzer struct {
	pass       *analysis.Pass
	groups     []*group
	fieldGroup map[*types.Var]int
	graph      *callgraph.Graph
	summaries  map[*callgraph.Node]*summary
}

// update recomputes one node's summary from its callees' current
// summaries; Fixpoint iterates until the may-bits stop growing.
func (a *analyzer) update(n *callgraph.Node) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	ng := len(a.groups)
	next := &summary{out0: make([]bool, ng), out1: make([]bool, ng), wit0: make([]witness, ng)}
	a.walk(body, false, next.out0, next.wit0)
	a.walk(body, true, next.out1, nil)
	prev := a.summaries[n]
	a.summaries[n] = next
	if prev == nil {
		return true
	}
	for i := 0; i < ng; i++ {
		if next.out0[i] != prev.out0[i] || next.out1[i] != prev.out1[i] {
			return true
		}
	}
	return false
}

// walk runs the dataflow walker over body with every group initially
// clean or dirty, accumulating the joined exit state into out/wit.
func (a *analyzer) walk(body *ast.BlockStmt, dirtyIn bool, out []bool, wit []witness) {
	ng := len(a.groups)
	init := &egState{dirty: make([]bool, ng), wit: make([]witness, ng)}
	if dirtyIn {
		for i := range init.dirty {
			init.dirty[i] = true
		}
	}
	dataflow.Walk(body, init, dataflow.Hooks{
		Transfer: func(st dataflow.State, node ast.Node) { a.transfer(st.(*egState), node) },
		Defer:    func(st dataflow.State, call *ast.CallExpr) { a.applyCall(st.(*egState), call) },
		Return: func(st dataflow.State, _ *ast.ReturnStmt) {
			s := st.(*egState)
			for i := range s.dirty {
				if s.dirty[i] && !out[i] {
					out[i] = true
					if wit != nil {
						wit[i] = s.wit[i]
					}
				}
			}
		},
	})
}

// transfer applies one atomic statement: same-package calls first
// (bump or summary), then guarded writes. A write and a bump in one
// statement therefore leaves the write pending — the conservative
// direction.
func (a *analyzer) transfer(st *egState, node ast.Node) {
	ast.Inspect(node, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			a.applyCall(st, call)
		}
		return true
	})
	for _, w := range dataflow.FieldWritesIn(a.pass.TypesInfo, node, func(v *types.Var) bool {
		_, ok := a.fieldGroup[v]
		return ok
	}) {
		if a.freshRoot(w.Root) {
			continue
		}
		gi := a.fieldGroup[w.Field]
		st.dirty[gi] = true
		st.wit[gi] = witness{pos: w.Pos, what: "write to epoch-guarded field " + w.Field.Name()}
	}
}

// freshRoot reports whether the written object is one the function
// created itself (see dataflow.FreshLocal): constructor
// initialization of unpublished state is exempt from the bump
// obligation.
func (a *analyzer) freshRoot(root *types.Var) bool {
	return dataflow.FreshLocal(a.pass.Files, a.pass.TypesInfo, a.pass.Pkg, root)
}

// applyCall folds one call's effect into the state: a bump-equivalent
// call cleans its group; a same-package callee applies its summary
// transfer; everything else is a no-op.
func (a *analyzer) applyCall(st *egState, call *ast.CallExpr) {
	callee := a.graph.Resolve(a.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	if callee.Func != nil {
		cleaned := false
		for gi, g := range a.groups {
			if g.equiv[callee.Func] {
				st.dirty[gi] = false
				cleaned = true
			}
		}
		if cleaned {
			return
		}
	}
	sum := a.summaries[callee]
	if sum == nil {
		return
	}
	for gi := range a.groups {
		var mayDirty bool
		if st.dirty[gi] {
			mayDirty = sum.out1[gi]
		} else {
			mayDirty = sum.out0[gi]
		}
		if mayDirty && !st.dirty[gi] {
			st.dirty[gi] = true
			st.wit[gi] = witness{pos: call.Pos(), what: "call to " + callee.Name + " (leaves a guarded write un-bumped)"}
			if sum.wit0[gi].pos.IsValid() {
				st.wit[gi] = sum.wit0[gi]
			}
		}
		st.dirty[gi] = mayDirty
	}
}
