// Package protoerr flags dropped errors on the wire-protocol type
// proto.Conn. A lost Send/Recv/Request error means a daemon silently
// desynchronizes from its peer — the connection is broken but the
// state machine marches on. Specifically:
//
//   - calling Send/Recv/Request as a bare statement, under defer/go,
//     or assigning the error result to the blank identifier, is
//     reported;
//   - calling Close as a bare statement (error ignored) on a
//     connection is reported. `defer c.Close()` and the explicit
//     `_ = c.Close()` are accepted: both acknowledge that the close
//     error of an already-handled connection is uninteresting.
//
// Genuine fire-and-forget paths (best-effort replies on an already
// failing connection, shutdown sweeps) are annotated with
// `//lint:protoerr <reason>`.
package protoerr

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis"
)

// Analyzer is the protoerr check.
var Analyzer = &analysis.Analyzer{
	Name:      "protoerr",
	Doc:       "flags dropped errors from proto.Conn Send/Recv/Request/Close",
	Directive: "protoerr",
	Run:       run,
}

// errResultIndex gives the position of the error result per method.
var errResultIndex = map[string]int{
	"Send": 0, "Recv": 1, "Request": 1, "Close": 0,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if name, ok := connCall(pass, n.X); ok {
					pass.Reportf(n.Pos(), "proto.Conn.%s error dropped; handle it or annotate //lint:protoerr <reason>", name)
				}
			case *ast.DeferStmt:
				if name, ok := connCall(pass, n.Call); ok && name != "Close" {
					pass.Reportf(n.Pos(), "deferred proto.Conn.%s drops its error", name)
				}
				return false // don't re-visit the call as an expression
			case *ast.GoStmt:
				if name, ok := connCall(pass, n.Call); ok {
					pass.Reportf(n.Pos(), "go proto.Conn.%s drops its error", name)
				}
			case *ast.AssignStmt:
				checkAssign(pass, n)
			}
			return true
		})
	}
	return nil
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	name, ok := connCall(pass, as.Rhs[0])
	if !ok || name == "Close" {
		// `_ = c.Close()` is the accepted explicit don't-care form.
		return
	}
	idx := errResultIndex[name]
	if idx >= len(as.Lhs) {
		return
	}
	if id, ok := as.Lhs[idx].(*ast.Ident); ok && id.Name == "_" {
		pass.Reportf(as.Pos(), "proto.Conn.%s error assigned to _; handle it or annotate //lint:protoerr <reason>", name)
	}
}

// connCall reports whether expr is a method call of interest on a
// value whose type is (a pointer to) proto.Conn.
func connCall(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if _, tracked := errResultIndex[sel.Sel.Name]; !tracked {
		return "", false
	}
	s := pass.TypesInfo.Selections[sel]
	if s == nil || s.Kind() != types.MethodVal {
		return "", false
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", false
	}
	obj := named.Obj()
	if obj.Name() != "Conn" || obj.Pkg() == nil || obj.Pkg().Name() != "proto" {
		return "", false
	}
	return sel.Sel.Name, true
}
