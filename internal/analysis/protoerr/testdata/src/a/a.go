// Package a exercises the protoerr analyzer.
package a

import "proto"

func drops(c *proto.Conn) {
	c.Send("x", nil)     // want `proto\.Conn\.Send error dropped`
	_ = c.Send("x", nil) // want `proto\.Conn\.Send error assigned to _`
	env, _ := c.Recv()   // want `proto\.Conn\.Recv error assigned to _`
	_ = env
	c.Close() // want `proto\.Conn\.Close error dropped`
}

func deferredCloseIsFine(c *proto.Conn) error {
	defer c.Close()
	_, err := c.Request("x", nil)
	return err
}

func blankCloseIsFine(c *proto.Conn) {
	_ = c.Close()
}

func deferredSendDrops(c *proto.Conn) {
	defer c.Send("bye", nil) // want `deferred proto\.Conn\.Send drops its error`
}

func goSendDrops(c *proto.Conn) {
	go c.Send("bye", nil) // want `go proto\.Conn\.Send drops its error`
}

func handled(c *proto.Conn) error {
	if err := c.Send("x", nil); err != nil {
		return err
	}
	env, err := c.Recv()
	if err != nil {
		return err
	}
	_ = env
	resp, err := c.Request("y", nil)
	_ = resp
	return err
}

func suppressed(c *proto.Conn) {
	c.Send("bye", nil) //lint:protoerr best-effort farewell on an already-failing conn
}

type notProto struct{}

func (notProto) Send(s string) error { return nil }

func otherSendIsFine(n notProto) {
	n.Send("x")
}
