// Package proto is a golden-test stand-in for the repo's wire
// protocol package: the analyzer matches the Conn type by name.
package proto

// MsgType tags an envelope.
type MsgType string

// Envelope frames a message.
type Envelope struct{ Type MsgType }

// Conn is a framed connection.
type Conn struct{}

// Send writes one frame.
func (c *Conn) Send(t MsgType, payload any) error { return nil }

// Recv reads one frame.
func (c *Conn) Recv() (*Envelope, error) { return nil, nil }

// Request sends and waits for the reply.
func (c *Conn) Request(t MsgType, payload any) (*Envelope, error) { return nil, nil }

// Close closes the connection.
func (c *Conn) Close() error { return nil }
