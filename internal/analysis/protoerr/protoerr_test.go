package protoerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/protoerr"
)

func TestProtoerr(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), protoerr.Analyzer, "a")
}
