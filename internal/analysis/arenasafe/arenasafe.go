// Package arenasafe checks the staleness discipline of arena-backed
// storage (internal/arena.Slots): a pointer obtained from an
// `//schedlint:arena-ref` accessor is invalidated by the next
// `//schedlint:arena-alloc` call on the same arena (growth may move
// the backing slice), and both pointers and integer handles die at an
// `//schedlint:arena-invalidate` boundary (Reset, CopyFrom — the
// clone/compact operations that rewrite the arena wholesale). A
// handle passed to `//schedlint:arena-free` must not be used again
// until rebound.
//
// The markers ride on the arena type's methods:
//
//	//schedlint:arena-alloc
//	func (a *Slots[T]) Alloc() int32
//
//	//schedlint:arena-ref
//	func (a *Slots[T]) At(i int32) *T
//
// and are resolved through Pass.Dep, so consumer packages (the
// segmented profile) are checked against markers declared in
// internal/arena.
//
// Arenas are identified by the selector path of the method receiver
// (`p.segs`, `dst.segs`): two refs are invalidated together exactly
// when their paths name the same objects. Invalidation is
// interprocedural within a package: a helper whose body (transitively)
// allocates into an arena reachable from its receiver or parameters
// invalidates the caller's refs at the call site — segprof's
// `p.split(h)` kills a held `seg` just like a direct Alloc, and the
// re-fetch `seg = p.segs.At(h)` revalidates it. When an invalidated
// arena's path cannot be pinned syntactically, every tracked ref dies
// (conservative). What this analysis does not see: aliasing between
// distinct paths naming one arena, refs returned out of helpers, and
// handles loaded from fields. Findings can be suppressed with
// `//lint:arenasafe <reason>`.
package arenasafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the arenasafe check.
var Analyzer = &analysis.Analyzer{
	Name:      "arenasafe",
	Doc:       "arena refs must not outlive the next Alloc and handles must not survive Reset/CopyFrom/Free",
	Directive: "arenasafe",
	Run:       run,
}

// marker kinds.
const (
	markAlloc      = iota // invalidates refs of the arena, binds a handle
	markRef               // binds a ref into the arena
	markFree              // kills the handle passed as first argument
	markInvalidate        // kills refs and handles of the arena
)

func buildRegistry(pass *analysis.Pass) map[*types.Func]int {
	reg := map[*types.Func]int{}
	add := func(files []*ast.File, info *types.Info) {
		for key, kind := range map[string]int{
			"arena-alloc":      markAlloc,
			"arena-ref":        markRef,
			"arena-free":       markFree,
			"arena-invalidate": markInvalidate,
		} {
			for _, m := range dataflow.FuncMarkers(files, info, key) {
				if m.Fn != nil {
					reg[m.Fn] = kind
				}
			}
		}
	}
	add(pass.Files, pass.TypesInfo)
	if pass.Dep != nil {
		for _, imp := range pass.Pkg.Imports() {
			if dep := pass.Dep(imp.Path()); dep != nil {
				add(dep.Files, dep.TypesInfo)
			}
		}
	}
	return reg
}

// sumEntry is one arena a function invalidates, rooted at its receiver
// (root == -1) or a parameter (root == index), plus the field chain
// below the root. kill says what dies: refs only (an alloc) or refs
// and handles (a reset-class boundary).
type sumEntry struct {
	root   int
	fields []*types.Var
	kill   int // markAlloc or markInvalidate
}

// asSummary is a function's invalidation effect on its callers.
type asSummary struct {
	entries []sumEntry
	// abs holds arenas named by package-level roots: the key is final.
	abs map[string]int
	// all marks an invalidation whose arena could not be pinned:
	// callers drop everything.
	all bool
}

func (s *asSummary) equal(o *asSummary) bool {
	if o == nil || s.all != o.all || len(s.entries) != len(o.entries) || len(s.abs) != len(o.abs) {
		return false
	}
	for i, e := range s.entries {
		oe := o.entries[i]
		if e.root != oe.root || e.kill != oe.kill || len(e.fields) != len(oe.fields) {
			return false
		}
		for j := range e.fields {
			if e.fields[j] != oe.fields[j] {
				return false
			}
		}
	}
	for k, v := range s.abs {
		if ov, ok := o.abs[k]; !ok || ov != v {
			return false
		}
	}
	return true
}

// trk tracks one ref or handle: the arena it points into, whether it
// is still valid, and what killed it (for the message).
type trk struct {
	arena string
	valid bool
	by    string
}

// asState is the walker state: tracked refs and handles by variable.
type asState struct {
	refs    map[*types.Var]*trk
	handles map[*types.Var]*trk
}

func newState() *asState {
	return &asState{refs: map[*types.Var]*trk{}, handles: map[*types.Var]*trk{}}
}

func cloneMap(m map[*types.Var]*trk) map[*types.Var]*trk {
	c := make(map[*types.Var]*trk, len(m))
	for v, t := range m {
		cp := *t
		c[v] = &cp
	}
	return c
}

func (s *asState) Clone() dataflow.State {
	return &asState{refs: cloneMap(s.refs), handles: cloneMap(s.handles)}
}

func joinMap(a, b map[*types.Var]*trk) {
	for v, bt := range b {
		at := a[v]
		if at == nil {
			cp := *bt
			a[v] = &cp
			continue
		}
		// "May be stale" wins the join.
		if at.valid && !bt.valid {
			at.valid = false
			at.by = bt.by
		}
	}
}

func (s *asState) Join(o dataflow.State) {
	os := o.(*asState)
	joinMap(s.refs, os.refs)
	joinMap(s.handles, os.handles)
}

func mapsEqual(a, b map[*types.Var]*trk) bool {
	if len(a) != len(b) {
		return false
	}
	for v, at := range a {
		bt := b[v]
		if bt == nil || at.valid != bt.valid {
			return false
		}
	}
	return true
}

func (s *asState) Equal(o dataflow.State) bool {
	os := o.(*asState)
	return mapsEqual(s.refs, os.refs) && mapsEqual(s.handles, os.handles)
}

func run(pass *analysis.Pass) error {
	reg := buildRegistry(pass)
	if len(reg) == 0 {
		return nil
	}
	graph := callgraph.Build(pass)
	a := &asAnalyzer{pass: pass, reg: reg, graph: graph,
		summaries: map[*callgraph.Node]*asSummary{}}
	dataflow.Fixpoint(graph, a.update)
	for _, n := range graph.Nodes {
		if body := n.Body(); body != nil {
			a.checkFunc(n, body)
		}
	}
	return nil
}

type asAnalyzer struct {
	pass      *analysis.Pass
	reg       map[*types.Func]int
	graph     *callgraph.Graph
	summaries map[*callgraph.Node]*asSummary
	reported  map[token.Pos]bool
}

// ownVars returns a node's receiver (index -1) and parameter variables.
func (a *asAnalyzer) ownVars(n *callgraph.Node) map[*types.Var]int {
	out := map[*types.Var]int{}
	addFields := func(fl *ast.FieldList, start int) int {
		idx := start
		if fl == nil {
			return idx
		}
		for _, f := range fl.List {
			if len(f.Names) == 0 {
				idx++
				continue
			}
			for _, name := range f.Names {
				if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
					out[v] = idx
				}
				idx++
			}
		}
		return idx
	}
	if n.Decl != nil {
		if n.Decl.Recv != nil {
			for _, f := range n.Decl.Recv.List {
				for _, name := range f.Names {
					if v, ok := a.pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = -1
					}
				}
			}
		}
		addFields(n.Decl.Type.Params, 0)
	} else if n.Lit != nil {
		addFields(n.Lit.Type.Params, 0)
	}
	return out
}

// update recomputes one function's invalidation summary; it returns
// true when the summary changed (driving the fixpoint).
func (a *asAnalyzer) update(n *callgraph.Node) bool {
	body := n.Body()
	if body == nil {
		return false
	}
	own := a.ownVars(n)
	sum := &asSummary{abs: map[string]int{}}
	export := func(path []*types.Var, kill int) {
		if path == nil {
			sum.all = true
			return
		}
		root := path[0]
		if idx, ok := own[root]; ok {
			sum.entries = append(sum.entries, sumEntry{root: idx, fields: path[1:], kill: kill})
			return
		}
		if root.Parent() == a.pass.Pkg.Scope() {
			if old, ok := sum.abs[dataflow.PathKey(path)]; !ok || kill == markInvalidate && old == markAlloc {
				sum.abs[dataflow.PathKey(path)] = kill
			}
		}
		// Locally rooted arenas do not outlive the call frame as far as
		// callers can name them; no export.
	}
	ast.Inspect(body, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok && x != n.Lit {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if fn := dataflow.CalledFunc(a.pass.TypesInfo, call); fn != nil {
			if kind, ok := a.reg[fn]; ok {
				if kind == markAlloc || kind == markInvalidate {
					export(a.recvPath(call), kind)
				}
				return true
			}
		}
		if callee := a.graph.Resolve(a.pass.TypesInfo, call); callee != nil {
			if cs := a.summaries[callee]; cs != nil {
				if cs.all {
					export(nil, markInvalidate)
				}
				for key, kill := range cs.abs {
					if old, ok := sum.abs[key]; !ok || kill == markInvalidate && old == markAlloc {
						sum.abs[key] = kill
					}
				}
				for _, e := range cs.entries {
					arg := a.argExpr(call, e.root)
					if arg == nil {
						export(nil, e.kill)
						continue
					}
					base := dataflow.SelectorPath(a.pass.TypesInfo, arg)
					if base == nil {
						export(nil, e.kill)
						continue
					}
					export(append(append([]*types.Var{}, base...), e.fields...), e.kill)
				}
			}
		}
		return true
	})
	prev := a.summaries[n]
	if prev != nil && prev.equal(sum) {
		return false
	}
	a.summaries[n] = sum
	return true
}

// argExpr returns the expression bound to a callee's receiver (-1) or
// parameter index at this call site.
func (a *asAnalyzer) argExpr(call *ast.CallExpr, root int) ast.Expr {
	if root < 0 {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			return sel.X
		}
		return nil
	}
	if root < len(call.Args) {
		return call.Args[root]
	}
	return nil
}

// recvPath names the arena a marked method call operates on, or nil.
func (a *asAnalyzer) recvPath(call *ast.CallExpr) []*types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	return dataflow.SelectorPath(a.pass.TypesInfo, sel.X)
}

// checkFunc walks one body, tracking refs and handles.
func (a *asAnalyzer) checkFunc(node *callgraph.Node, body *ast.BlockStmt) {
	a.reported = map[token.Pos]bool{}
	hook := func(st dataflow.State, n ast.Node) { a.transfer(st.(*asState), n) }
	dataflow.Walk(body, newState(), dataflow.Hooks{
		Transfer: hook,
		Defer:    func(st dataflow.State, call *ast.CallExpr) { a.applyCalls(st.(*asState), call) },
	})
}

func (a *asAnalyzer) reportOnce(pos token.Pos, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.pass.Reportf(pos, format, args...)
}

// transfer interprets one atomic statement: check uses against the
// incoming state, apply the invalidations its calls perform, then
// apply new bindings.
func (a *asAnalyzer) transfer(s *asState, n ast.Node) {
	a.checkUses(s, n)
	ast.Inspect(n, func(x ast.Node) bool {
		if _, ok := x.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := x.(*ast.CallExpr); ok {
			a.applyCalls(s, call)
		}
		return true
	})
	a.applyBindings(s, n)
}

// checkUses reports reads of stale refs/handles and drops variables
// captured by function literals.
func (a *asAnalyzer) checkUses(s *asState, n ast.Node) {
	skip := map[*ast.Ident]bool{}
	if as, ok := n.(*ast.AssignStmt); ok {
		for _, lhs := range as.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				skip[id] = true // a plain rebinding kills, it does not read
			}
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			// Captured refs escape this analysis; stop tracking them.
			ast.Inspect(x.Body, func(y ast.Node) bool {
				if id, ok := y.(*ast.Ident); ok {
					if v, ok := a.pass.TypesInfo.Uses[id].(*types.Var); ok {
						delete(s.refs, v)
						delete(s.handles, v)
					}
				}
				return true
			})
			return false
		case *ast.Ident:
			if skip[x] {
				return true
			}
			v, _ := a.pass.TypesInfo.Uses[x].(*types.Var)
			if v == nil {
				return true
			}
			if t := s.refs[v]; t != nil && !t.valid {
				a.reportOnce(x.Pos(), "arena reference %s used after %s", x.Name, t.by)
			}
			if t := s.handles[v]; t != nil && !t.valid {
				a.reportOnce(x.Pos(), "arena handle %s used after %s", x.Name, t.by)
			}
		}
		return true
	})
}

// applyCalls performs the invalidations one call implies.
func (a *asAnalyzer) applyCalls(s *asState, call *ast.CallExpr) {
	fn := dataflow.CalledFunc(a.pass.TypesInfo, call)
	if fn != nil {
		if kind, ok := a.reg[fn]; ok {
			switch kind {
			case markAlloc:
				a.kill(s, a.recvPath(call), markAlloc, fn.Name())
			case markInvalidate:
				a.kill(s, a.recvPath(call), markInvalidate, fn.Name())
			case markFree:
				if len(call.Args) > 0 {
					if v := dataflow.LocalVar(a.pass.TypesInfo, a.pass.Pkg, call.Args[0]); v != nil {
						if t := s.handles[v]; t != nil {
							t.valid = false
							t.by = fn.Name()
						}
					}
				}
			}
			return
		}
	}
	callee := a.graph.Resolve(a.pass.TypesInfo, call)
	if callee == nil {
		return
	}
	cs := a.summaries[callee]
	if cs == nil {
		return
	}
	name := callee.Name
	if cs.all {
		a.kill(s, nil, markInvalidate, name)
	}
	for key, kill := range cs.abs {
		a.killKey(s, key, kill, name)
	}
	for _, e := range cs.entries {
		arg := a.argExpr(call, e.root)
		var path []*types.Var
		if arg != nil {
			if base := dataflow.SelectorPath(a.pass.TypesInfo, arg); base != nil {
				path = append(append([]*types.Var{}, base...), e.fields...)
			}
		}
		a.kill(s, path, e.kill, name)
	}
}

// kill invalidates the refs (and, for reset-class kills, handles) of
// the arena named by path; a nil path kills everything.
func (a *asAnalyzer) kill(s *asState, path []*types.Var, kind int, by string) {
	if path == nil {
		for _, t := range s.refs {
			if t.valid {
				t.valid = false
				t.by = by
			}
		}
		if kind == markInvalidate {
			for _, t := range s.handles {
				if t.valid {
					t.valid = false
					t.by = by
				}
			}
		}
		return
	}
	a.killKey(s, dataflow.PathKey(path), kind, by)
}

func (a *asAnalyzer) killKey(s *asState, key string, kind int, by string) {
	for _, t := range s.refs {
		if t.valid && t.arena == key {
			t.valid = false
			t.by = by
		}
	}
	if kind == markInvalidate {
		for _, t := range s.handles {
			if t.valid && t.arena == key {
				t.valid = false
				t.by = by
			}
		}
	}
}

// applyBindings tracks ref/handle variables bound from marked calls
// and kills rebindings from anything else.
func (a *asAnalyzer) applyBindings(s *asState, n ast.Node) {
	bind := func(lhs, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			return
		}
		v := dataflow.LocalVar(a.pass.TypesInfo, a.pass.Pkg, id)
		if v == nil {
			return
		}
		delete(s.refs, v)
		delete(s.handles, v)
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		fn := dataflow.CalledFunc(a.pass.TypesInfo, call)
		if fn == nil {
			return
		}
		kind, ok := a.reg[fn]
		if !ok {
			return
		}
		path := a.recvPath(call)
		if path == nil {
			return // unnameable arena: cannot match invalidations
		}
		t := &trk{arena: dataflow.PathKey(path), valid: true}
		switch kind {
		case markRef:
			s.refs[v] = t
		case markAlloc:
			s.handles[v] = t
		}
	}
	switch n := n.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == len(n.Rhs) {
			for i := range n.Lhs {
				bind(n.Lhs[i], n.Rhs[i])
			}
			return
		}
		// Tuple form (h, i := f()): the targets are rebound to values
		// this analysis does not model; stop tracking them.
		for _, lhs := range n.Lhs {
			if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
				if v := dataflow.LocalVar(a.pass.TypesInfo, a.pass.Pkg, id); v != nil {
					delete(s.refs, v)
					delete(s.handles, v)
				}
			}
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok && len(vs.Names) == len(vs.Values) {
					for i := range vs.Names {
						bind(vs.Names[i], vs.Values[i])
					}
				}
			}
		}
	}
}
