package arenasafe_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/arenasafe"
)

func TestArenaSafe(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), arenasafe.Analyzer, "prof")
}
