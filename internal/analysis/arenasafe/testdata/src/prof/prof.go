// Package prof is the consumer side of the arenasafe fixture: a
// condensed segmented profile seeding each diagnostic class (a ref
// held across Alloc, a handle surviving Reset, use after Free, a
// helper whose transitive Alloc kills the caller's ref, a clone
// boundary clobbering refs into the destination) next to the fixed
// variants that must stay silent (the re-fetch pattern, independent
// arenas, rebinding, and a reasoned suppression).
package prof

import "slab"

type seg struct {
	n    int32
	next int32
}

// P is the arena-backed structure under test.
type P struct {
	segs slab.Slots[seg]
	head int32
}

// grow allocates into the receiver's arena: its callers' refs die.
func (p *P) grow() int32 {
	return p.segs.Alloc()
}

// --- seeded violations ---

// RefAcrossAlloc holds a pointer across the call that may move the
// backing array.
func (p *P) RefAcrossAlloc() int32 {
	h := p.segs.Alloc()
	s := p.segs.At(h)
	nh := p.segs.Alloc()
	s.next = nh // want `arena reference s used after Alloc`
	return h
}

// HandleAfterReset keeps a handle across the boundary that discards
// every slot.
func (p *P) HandleAfterReset() *seg {
	h := p.segs.Alloc()
	p.segs.Reset()
	return p.segs.At(h) // want `arena handle h used after Reset`
}

// UseAfterFree touches a recycled handle.
func (p *P) UseAfterFree() {
	h := p.segs.Alloc()
	p.segs.Free(h)
	p.segs.At(h).n = 0 // want `arena handle h used after Free`
}

// HelperKills loses its ref to a helper that allocates transitively.
func (p *P) HelperKills() {
	h := p.segs.Alloc()
	s := p.segs.At(h)
	p.grow()
	s.n++ // want `arena reference s used after .*grow`
}

// CloneClobber holds a ref into the destination across the wholesale
// rewrite.
func (p *P) CloneClobber(src *P) {
	h := p.segs.Alloc()
	s := p.segs.At(h)
	p.segs.CopyFrom(&src.segs)
	s.n = 1 // want `arena reference s used after CopyFrom`
}

// --- fixed variants: silent ---

// Refetch rebinds after the alloc — the segprof split pattern.
func (p *P) Refetch() {
	h := p.segs.Alloc()
	s := p.segs.At(h)
	s.n = 1
	nh := p.segs.Alloc()
	s = p.segs.At(h)
	s.next = nh
}

// TwoArenas allocates into one arena while holding a ref into another.
func TwoArenas(a, b *P) {
	h := a.segs.Alloc()
	s := a.segs.At(h)
	_ = b.segs.Alloc()
	s.n = 2
}

// ReboundHandle rebinds the freed handle before reuse.
func (p *P) ReboundHandle() {
	h := p.segs.Alloc()
	p.segs.Free(h)
	h = p.segs.Alloc()
	p.segs.At(h).n = 3
}

// BranchRefetch re-fetches on the arm that allocated.
func (p *P) BranchRefetch(full bool) {
	h := p.segs.Alloc()
	s := p.segs.At(h)
	if full {
		_ = p.segs.Alloc()
		s = p.segs.At(h)
	}
	s.n = 4
}

// peek only reads the arena: callers' refs survive it.
func (p *P) peek(h int32) int32 { return p.segs.At(h).n }

// SurvivesPeek holds a ref across a non-allocating helper.
func (p *P) SurvivesPeek() {
	h := p.segs.Alloc()
	s := p.segs.At(h)
	_ = p.peek(h)
	s.n = 5
}

// Suppressed documents why holding the ref is sound here.
func (p *P) Suppressed() {
	h := p.segs.Alloc()
	s := p.segs.At(h)
	_ = p.segs.Alloc()
	s.n = 6 //lint:arenasafe the arena was pre-grown; this alloc reuses the freelist
}
