// Package slab is the arena side of the arenasafe fixture: a
// condensed internal/arena.Slots carrying the lifetime markers the
// consumer package (prof) is checked against through Pass.Dep.
package slab

// Slots is a growable arena of T values addressed by int32 handles.
type Slots[T any] struct {
	slots []T
	free  []int32
}

// Alloc returns a handle to a slot; growth may move the backing array,
// so previously returned At pointers die here.
//
//schedlint:arena-alloc
func (a *Slots[T]) Alloc() int32 {
	if n := len(a.free); n > 0 {
		h := a.free[n-1]
		a.free = a.free[:n-1]
		return h
	}
	var zero T
	a.slots = append(a.slots, zero)
	return int32(len(a.slots) - 1)
}

// At returns a pointer into the arena, valid until the next Alloc.
//
//schedlint:arena-ref
func (a *Slots[T]) At(i int32) *T { return &a.slots[i] }

// Free recycles a handle; the handle must not be used again.
//
//schedlint:arena-free
func (a *Slots[T]) Free(i int32) { a.free = append(a.free, i) }

// Reset discards every live slot: all refs and handles die.
//
//schedlint:arena-invalidate
func (a *Slots[T]) Reset() {
	a.slots = a.slots[:0]
	a.free = a.free[:0]
}

// CopyFrom rewrites the arena wholesale: all refs and handles die.
//
//schedlint:arena-invalidate
func (a *Slots[T]) CopyFrom(src *Slots[T]) {
	a.slots = append(a.slots[:0], src.slots...)
	a.free = append(a.free[:0], src.free...)
}
