// Package analysis is a minimal, dependency-free reimplementation of
// the golang.org/x/tools/go/analysis surface used by schedlint. The
// container image has no module proxy access, so the framework is
// built directly on the standard library's go/ast and go/types: an
// Analyzer inspects one type-checked package at a time through a Pass
// and reports position-tagged Diagnostics.
//
// Findings can be suppressed with repo-specific lint directives of the
// form
//
//	//lint:<name> <reason>
//
// placed on the offending line, on the line directly above it, or in
// the doc comment / declaration line of the enclosing function (which
// suppresses the whole function body). A non-empty reason is
// mandatory: the directive both silences the finding and documents why
// the exception is sound. See directives.go for parsing and scope
// rules.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in output ("nodeterminism").
	Name string
	// Doc is a one-paragraph description of what is flagged and why.
	Doc string
	// Directive is the suppression directive name honoured by this
	// analyzer ("wallclock" → `//lint:wallclock <reason>`). Empty means
	// findings cannot be suppressed.
	Directive string
	// Tests opts the analyzer into _test.go files: when the driver
	// loads a package with its test files (schedlint -tests), findings
	// that analyzers without Tests report inside test files are
	// dropped. The memory-model analyzers opt in — tests spawn real
	// daemons and race like any other code — while the style and
	// determinism contracts (nodeterminism, goroutinelife, ...) bind
	// product code only.
	Tests bool
	// Run inspects the package and reports findings via pass.Report.
	Run func(pass *Pass) error
}

// Pass carries one analyzed package into an Analyzer's Run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Report delivers one finding. The driver filters suppressed
	// diagnostics afterwards, so analyzers report unconditionally.
	Report func(Diagnostic)
	// Dep resolves the syntax and types of a dependency package by
	// import path (nil when the driver cannot provide dependency
	// sources). Interprocedural analyzers use it to read declarations
	// from packages the analyzed one imports — e.g. protoexhaustive
	// reads the message-type registry out of internal/proto while
	// analyzing a daemon's dispatch switch.
	Dep func(path string) *Target
	// Cached memoizes a derived artifact on the underlying Target, so
	// expensive per-package structures (the call graph) are built once
	// and shared by every analyzer in the run instead of once per
	// analyzer. Nil when the pass was constructed without a Target.
	Cached func(key string, build func() any) any
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	// Unsuppressable findings survive a matching lint directive; used
	// for "this directive is itself illegal here" reports.
	Unsuppressable bool
}

// Reportf formats and reports a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic with its analyzer and position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// Target is the per-package input the driver feeds each analyzer.
type Target struct {
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Dep, when set by the driver, resolves an imported package's
	// Target (see Pass.Dep).
	Dep func(path string) *Target
	// TestsLoaded marks a target whose Files include _test.go files;
	// RunAnalyzers then drops test-file findings from analyzers that
	// did not opt in via Analyzer.Tests.
	TestsLoaded bool

	cache map[string]any
}

// Cached memoizes build's result under key for the lifetime of the
// target: the first caller builds, everyone after shares. RunAnalyzers
// threads it into every Pass so per-package artifacts (the call graph)
// are computed once per package, not once per analyzer.
func (t *Target) Cached(key string, build func() any) any {
	if t.cache == nil {
		t.cache = make(map[string]any)
	}
	v, ok := t.cache[key]
	if !ok {
		v = build()
		t.cache[key] = v
	}
	return v
}

// RunAnalyzers applies every analyzer to the package, filters findings
// through the lint directives in the source, and returns the surviving
// findings sorted by position.
func RunAnalyzers(t *Target, analyzers []*Analyzer) ([]Finding, error) {
	sup := NewSuppressor(t.Fset, t.Files)
	var out []Finding
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      t.Fset,
			Files:     t.Files,
			Pkg:       t.Pkg,
			TypesInfo: t.TypesInfo,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
			Dep:       t.Dep,
			Cached:    t.Cached,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			pos := t.Fset.Position(d.Pos)
			if !d.Unsuppressable && a.Directive != "" && sup.Suppressed(a.Directive, pos) {
				continue
			}
			if t.TestsLoaded && !a.Tests && strings.HasSuffix(pos.Filename, "_test.go") {
				continue
			}
			out = append(out, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out, nil
}
