package dataflow

import "repro/internal/analysis/callgraph"

// Fixpoint repeatedly applies update to every node of the graph until
// a full round reports no change. Analyzers use it to close function
// summaries over the call graph: update recomputes one node's summary
// from its callees' current summaries and reports whether it grew.
// With monotone summaries over finite lattices the iteration
// terminates; recursion simply converges at the loop's least fixed
// point.
func Fixpoint(g *callgraph.Graph, update func(*callgraph.Node) bool) {
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			if update(n) {
				changed = true
			}
		}
	}
}

// SyncCallers counts, per node, its same-package synchronous call
// sites (direct, method, IIFE, and deferred edges — not spawns). A
// node with zero synchronous callers is an analysis entry point:
// nothing in the package runs after it returns, so any obligation it
// leaves open escapes the package. Spawned functions are entries by
// construction — a `go` statement's caller cannot discharge anything
// on the spawned function's behalf.
func SyncCallers(g *callgraph.Graph) map[*callgraph.Node]int {
	out := make(map[*callgraph.Node]int, len(g.Nodes))
	for _, n := range g.Nodes {
		for _, e := range n.Calls {
			out[e.Callee]++
		}
	}
	return out
}
