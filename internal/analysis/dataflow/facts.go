package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// markerPrefix mirrors the `//schedlint:` declaration-marker syntax of
// the analysis package (see analysis.Markers); duplicated here so the
// attachment helpers can parse comment groups that the parser hangs
// directly off declarations and struct fields.
const markerPrefix = "//schedlint:"

func parseMarker(c *ast.Comment, key string) (args string, ok bool) {
	text := c.Text
	// The marker may trail other commentary on the same line — field
	// annotations routinely compose with lockcheck's guard comments,
	// as in `// guarded by mu //schedlint:epoch-guarded by bump`.
	i := strings.Index(text, markerPrefix)
	if i < 0 {
		return "", false
	}
	k, rest, _ := strings.Cut(strings.TrimPrefix(text[i:], markerPrefix), " ")
	if k != key {
		return "", false
	}
	// Anything after an embedded `//` is commentary (fixture `// want`
	// expectations ride on marker lines), not marker arguments.
	if i := strings.Index(rest, "//"); i >= 0 {
		rest = rest[:i]
	}
	return strings.TrimSpace(rest), true
}

// FuncMarker is a `//schedlint:<key>` marker attached to a function or
// method declaration (in its doc comment).
type FuncMarker struct {
	Fn   *types.Func
	Decl *ast.FuncDecl
	Args string
	Pos  token.Pos
}

// FuncMarkers returns the declarations carrying a marker of the given
// key, in file order. info maps the declaration names to their
// checker objects, so the result can be matched against call targets
// from any package that can see these files (via Pass.Dep).
func FuncMarkers(files []*ast.File, info *types.Info, key string) []FuncMarker {
	var out []FuncMarker
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			for _, c := range fd.Doc.List {
				args, ok := parseMarker(c, key)
				if !ok {
					continue
				}
				fn, _ := info.Defs[fd.Name].(*types.Func)
				out = append(out, FuncMarker{Fn: fn, Decl: fd, Args: args, Pos: c.Pos()})
			}
		}
	}
	return out
}

// FieldMarker is a `//schedlint:<key>` marker attached to a struct
// field (trailing comment or field doc line).
type FieldMarker struct {
	Field  *types.Var
	Struct string // the enclosing type's name, for messages
	Args   string
	Pos    token.Pos
}

// FieldMarkers returns the struct fields carrying a marker of the
// given key, in file order.
func FieldMarkers(files []*ast.File, info *types.Info, key string) []FieldMarker {
	var out []FieldMarker
	for _, f := range files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				for _, field := range st.Fields.List {
					for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
						if cg == nil {
							continue
						}
						for _, c := range cg.List {
							args, ok := parseMarker(c, key)
							if !ok {
								continue
							}
							for _, name := range field.Names {
								v, _ := info.Defs[name].(*types.Var)
								if v != nil {
									out = append(out, FieldMarker{Field: v, Struct: ts.Name.Name, Args: args, Pos: c.Pos()})
								}
							}
						}
					}
				}
			}
		}
	}
	return out
}

// FieldWrite is one write to a tracked struct field: a plain or
// compound assignment, an element write through the field (s.m[k] = v
// mutates the map held in m), an inc/dec, or a delete() on a
// field-held map.
type FieldWrite struct {
	Field *types.Var
	// Root is the base variable the write reaches through (the `s` in
	// `s.queued = ...`). Analyzers use it to separate writes to a
	// published object (receiver, parameter, captured variable) from
	// initialization of a fresh local that nobody observes yet.
	Root *types.Var
	// Path is the full selector chain, Root first and Field last, so a
	// guard declared on an intermediate field (`stats Stats // guarded
	// by mu`) covers writes to the leaves reached through it.
	Path []*types.Var
	Pos  token.Pos
}

// FieldWritesIn returns the writes to tracked fields within n, in
// source order, without descending into nested function literals
// (each literal is its own call-graph node and is analyzed
// separately).
func FieldWritesIn(info *types.Info, n ast.Node, tracked func(*types.Var) bool) []FieldWrite {
	if n == nil {
		return nil
	}
	var out []FieldWrite
	note := func(e ast.Expr) {
		if v, root, path := writtenField(info, e); v != nil && tracked(v) {
			out = append(out, FieldWrite{Field: v, Root: root, Path: path, Pos: e.Pos()})
		}
	}
	ast.Inspect(n, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				note(lhs)
			}
		case *ast.IncDecStmt:
			note(x.X)
		case *ast.CallExpr:
			if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "delete" && len(x.Args) == 2 {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					note(x.Args[0])
				}
			}
		}
		return true
	})
	return out
}

// writtenField resolves the struct field an assignment target mutates
// — the field itself (s.f = x) or the field whose contents an element
// write reaches through (s.f[k] = x, *s.f = x) — plus the root
// variable of the selector chain.
func writtenField(info *types.Info, e ast.Expr) (field, root *types.Var, path []*types.Var) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SelectorExpr:
			path := SelectorPath(info, x)
			if len(path) < 2 {
				return nil, nil, nil
			}
			if last := path[len(path)-1]; last.IsField() {
				return last, path[0], path
			}
			return nil, nil, nil
		default:
			return nil, nil, nil
		}
	}
}

// LocalVar resolves e to the function-local variable it names, or nil
// for fields, package-level variables, and non-identifier expressions.
func LocalVar(info *types.Info, pkg *types.Package, e ast.Expr) *types.Var {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return nil
	}
	var v *types.Var
	if u, ok := info.Uses[id].(*types.Var); ok {
		v = u
	} else if d, ok := info.Defs[id].(*types.Var); ok {
		v = d
	}
	if v == nil || v.IsField() {
		return nil
	}
	if pkg != nil && v.Parent() == pkg.Scope() {
		return nil
	}
	return v
}

// SelectorPath resolves a variable or selector chain — p, p.segs,
// s.sched.pool — to the object path it names: the root variable
// followed by the fields selected, unwrapping pointers, parens, and a
// leading address-of. It returns nil for anything whose identity
// cannot be pinned syntactically (calls, indexing, type assertions).
func SelectorPath(info *types.Info, e ast.Expr) []*types.Var {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	if s, ok := e.(*ast.StarExpr); ok {
		e = ast.Unparen(s.X)
	}
	switch x := e.(type) {
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return []*types.Var{v}
		}
		if v, ok := info.Defs[x].(*types.Var); ok {
			return []*types.Var{v}
		}
		return nil
	case *ast.SelectorExpr:
		// Package-qualified variable: pkg.V is a root, not a selection.
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if v, ok := info.Uses[x.Sel].(*types.Var); ok {
					return []*types.Var{v}
				}
				return nil
			}
		}
		base := SelectorPath(info, x.X)
		if base == nil {
			return nil
		}
		if sel, ok := info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			if v, ok := sel.Obj().(*types.Var); ok {
				return append(base, v)
			}
		}
		return nil
	default:
		return nil
	}
}

// PathKey renders an object path as a comparable map key. Object
// identity, not name, distinguishes the keys: two distinct variables
// named "p" never collide.
func PathKey(path []*types.Var) string {
	var b strings.Builder
	for i, v := range path {
		if i > 0 {
			b.WriteByte('.')
		}
		b.WriteString(v.Name())
		b.WriteByte('#')
		b.WriteString(strconv.Itoa(int(v.Pos())))
	}
	return b.String()
}

// FreshLocal reports whether v is a function-local variable whose
// declaration initializes it with an object the function constructed
// itself — a composite literal (optionally address-taken), new(T), or
// a zero-value `var v T` declaration — so writes through it are
// constructor initialization of unpublished state, not mutation anyone
// else can observe. A local merely *aliasing* an existing object (a
// field load, a function result, a parameter) is not fresh; neither is
// a package-level variable.
func FreshLocal(files []*ast.File, info *types.Info, pkg *types.Package, v *types.Var) bool {
	if v == nil || (pkg != nil && v.Parent() == pkg.Scope()) {
		return false
	}
	pos := v.Pos()
	for _, f := range files {
		if pos < f.Pos() || pos > f.End() {
			continue
		}
		fresh := false
		found := false
		ast.Inspect(f, func(x ast.Node) bool {
			if found {
				return false
			}
			switch x := x.(type) {
			case *ast.AssignStmt:
				if x.Tok != token.DEFINE || len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, lhs := range x.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || info.Defs[id] != v {
						continue
					}
					found = true
					fresh = freshExpr(info, x.Rhs[i])
					return false
				}
			case *ast.ValueSpec:
				for i, name := range x.Names {
					if info.Defs[name] != v {
						continue
					}
					found = true
					if i < len(x.Values) {
						fresh = freshExpr(info, x.Values[i])
					} else if len(x.Values) == 0 {
						// `var v T` with no initializer: the zero value is
						// the function's own construction. (A tuple
						// initializer — len(Values) < len(Names) — is a
						// call result, not fresh.)
						fresh = true
					}
					return false
				}
			}
			return true
		})
		return found && fresh
	}
	return false
}

// FreshExpr reports whether e constructs an object no one else holds:
// a composite literal (optionally address-taken) or new(T). It is the
// expression-level form of FreshLocal, for call arguments.
func FreshExpr(info *types.Info, e ast.Expr) bool {
	return freshExpr(info, e)
}

// freshExpr reports whether e constructs an object no one else holds:
// a composite literal (optionally address-taken) or new(T).
func freshExpr(info *types.Info, e ast.Expr) bool {
	e = ast.Unparen(e)
	if u, ok := e.(*ast.UnaryExpr); ok && u.Op == token.AND {
		e = ast.Unparen(u.X)
	}
	switch x := e.(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "new" {
			_, isBuiltin := info.Uses[id].(*types.Builtin)
			return isBuiltin
		}
	}
	return false
}

// CalledFunc resolves the function or method a call invokes, in any
// package, unwrapping generic instantiation. It returns nil for
// builtins, conversions, and calls through function values.
func CalledFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	fun := ast.Unparen(call.Fun)
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ast.Unparen(ix.X)
	case *ast.IndexListExpr:
		fun = ast.Unparen(ix.X)
	}
	var obj types.Object
	switch fun := fun.(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return nil
	}
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}
