// Package dataflow is the shared dataflow substrate of schedlint's
// lifetime analyzers (epochguard, poollife, arenasafe). It layers three
// facilities over the PR 5 call graph:
//
//   - a path-sensitive statement walker (Walk) that threads an
//     analyzer-defined abstract state through a function body, forking
//     at branches and joining the per-path states at merge points, so a
//     fact established on one arm of an if/switch does not leak into
//     the other;
//   - declaration/field marker attachment (FuncMarkers, FieldMarkers)
//     resolving `//schedlint:<key>` comments to the *types.Func /
//     *types.Var they annotate, locally or through Pass.Dep;
//   - def/use helpers (FieldWritesIn, LocalVar, SelectorPath) that map
//     syntax to the checker's objects: which annotated struct fields a
//     statement writes, which function-local variable an expression
//     names, and the object path of a selector chain.
//
// The walker is an abstract interpreter, not a CFG builder: soundness
// comes from joining every path that can reach a program point and
// from bounded re-execution of loop bodies (a loop body is run through
// the transfer function until the joined state stops changing, capped
// at a small constant — the analyzers' lattices are tiny bit-sets that
// stabilize in one or two passes). Deferred calls are replayed, last
// registered first, at every exit before the Return hook so `defer
// s.bump()` discharges an epoch obligation exactly like a trailing
// call. `go` statements never execute through the walker: a spawned
// literal is its own call-graph node with its own obligations.
package dataflow

import "go/ast"

// State is an analyzer-defined abstract state threaded through Walk.
// Implementations are mutable: the walker clones at forks and joins in
// place at merges.
type State interface {
	// Clone returns an independent deep copy.
	Clone() State
	// Join folds another path's state into the receiver (set union /
	// "may" semantics for the lifetime analyzers).
	Join(other State)
	// Equal reports whether two states carry the same facts; it bounds
	// the loop-body fixpoint.
	Equal(other State) bool
}

// Hooks receives the walker's events.
type Hooks struct {
	// Transfer applies one atomic node: a simple statement (assignment,
	// expression statement, inc/dec, send, declaration, ...) or a
	// branch condition expression. Analyzers inspect the node's
	// sub-expressions themselves (skipping nested *ast.FuncLit — each
	// literal is its own call-graph node).
	Transfer func(st State, n ast.Node)
	// Defer replays one deferred call at function exit, last registered
	// first, before Return runs. Optional.
	Defer func(st State, call *ast.CallExpr)
	// Return observes one function exit after deferred calls have been
	// replayed. ret is nil when control falls off the end of the body.
	// Optional.
	Return func(st State, ret *ast.ReturnStmt)
}

// loopPasses bounds the loop-body fixpoint. The lifetime lattices are
// monotone bit-sets; two passes propagate any loop-carried fact and
// the Equal check exits earlier when the body is state-neutral.
const loopPasses = 4

// Walk interprets body starting from init. The walker owns init and
// mutates it; callers keep a Clone if they need the entry state later.
func Walk(body *ast.BlockStmt, init State, h Hooks) {
	w := &walker{hooks: h}
	out := w.block(body, init)
	// Falling off the end of the body is an implicit return.
	w.exit(out, nil)
}

// walker carries the loop/label context of one Walk.
type walker struct {
	hooks Hooks
	// deferred holds the registered deferred calls in source order;
	// exits replay them in reverse.
	deferred []*ast.CallExpr
	loops    []*loopCtx
}

// loopCtx collects the states of break/continue statements targeting
// one enclosing loop (or switch/select, which absorb plain breaks).
type loopCtx struct {
	label     string
	isLoop    bool // continue targets loops only
	breaks    []State
	continues []State
}

// exit finalizes one path: replay defers (LIFO), then Return.
func (w *walker) exit(st State, ret *ast.ReturnStmt) {
	if st == nil {
		return
	}
	for i := len(w.deferred) - 1; i >= 0; i-- {
		if w.hooks.Defer != nil {
			w.hooks.Defer(st, w.deferred[i])
		}
	}
	if w.hooks.Return != nil {
		w.hooks.Return(st, ret)
	}
}

// transfer feeds one atomic node to the analyzer. nil nodes (absent
// init/cond clauses) are skipped.
func (w *walker) transfer(st State, n ast.Node) {
	if st == nil || n == nil {
		return
	}
	if w.hooks.Transfer != nil {
		w.hooks.Transfer(st, n)
	}
}

// join folds b into a, handling dead (nil) paths.
func join(a, b State) State {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		a.Join(b)
		return a
	}
}

// block interprets a statement list; a nil result marks a dead path
// (every sub-path returned, panicked, or jumped away).
func (w *walker) block(b *ast.BlockStmt, st State) State {
	if b == nil {
		return st
	}
	return w.stmts(b.List, st)
}

func (w *walker) stmts(list []ast.Stmt, st State) State {
	for _, s := range list {
		if st == nil {
			return nil
		}
		st = w.stmt(s, st)
	}
	return st
}

// stmt interprets one statement and returns the fall-through state
// (nil when control cannot reach the next statement).
func (w *walker) stmt(s ast.Stmt, st State) State {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return w.block(s, st)

	case *ast.ReturnStmt:
		w.transfer(st, s)
		w.exit(st, s)
		return nil

	case *ast.DeferStmt:
		// Arguments are evaluated at registration; the call itself runs
		// at exit (replayed by exit()). Feed only the argument and
		// receiver expressions through Transfer so an analyzer does not
		// mistake registration for execution.
		for _, arg := range s.Call.Args {
			w.transfer(st, arg)
		}
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
			w.transfer(st, sel.X)
		}
		w.deferred = append(w.deferred, s.Call)
		return st

	case *ast.GoStmt:
		// The spawned function is a separate node; only the argument
		// and receiver evaluation happens here.
		for _, arg := range s.Call.Args {
			w.transfer(st, arg)
		}
		if sel, ok := s.Call.Fun.(*ast.SelectorExpr); ok {
			w.transfer(st, sel.X)
		}
		return st

	case *ast.IfStmt:
		w.transfer(st, s.Init)
		w.transfer(st, s.Cond)
		thenIn := st.Clone()
		var elseOut State
		if s.Else != nil {
			elseOut = w.stmt(s.Else, st)
		} else {
			elseOut = st
		}
		thenOut := w.block(s.Body, thenIn)
		return join(thenOut, elseOut)

	case *ast.SwitchStmt:
		w.transfer(st, s.Init)
		w.transfer(st, s.Tag)
		return w.switchBody(s.Body, st, switchHasDefault(s.Body))

	case *ast.TypeSwitchStmt:
		w.transfer(st, s.Init)
		w.transfer(st, s.Assign)
		return w.switchBody(s.Body, st, switchHasDefault(s.Body))

	case *ast.SelectStmt:
		ctx := &loopCtx{} // select absorbs plain break
		w.loops = append(w.loops, ctx)
		var out State
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			in := st.Clone()
			w.transfer(in, cc.Comm)
			out = join(out, w.stmts(cc.Body, in))
		}
		w.loops = w.loops[:len(w.loops)-1]
		for _, b := range ctx.breaks {
			out = join(out, b)
		}
		if len(s.Body.List) == 0 {
			return nil // select{} blocks forever
		}
		return out

	case *ast.ForStmt:
		w.transfer(st, s.Init)
		return w.loop(st, "", func(in State) State {
			w.transfer(in, s.Cond)
			out := w.block(s.Body, in)
			if out != nil {
				w.transfer(out, s.Post)
			}
			return out
		}, s.Cond == nil)

	case *ast.RangeStmt:
		w.transfer(st, s.X)
		return w.loop(st, "", func(in State) State {
			// Key/value are fed individually: handing Transfer the whole
			// RangeStmt would let an ast.Inspect descend into the body,
			// which the walker interprets itself.
			w.transfer(in, s.Key)
			w.transfer(in, s.Value)
			return w.block(s.Body, in)
		}, false)

	case *ast.LabeledStmt:
		return w.labeled(s, st)

	case *ast.BranchStmt:
		return w.branch(s, st)

	default:
		// Atomic statements: assign, expr, incdec, send, decl, empty.
		w.transfer(st, s)
		return st
	}
}

func switchHasDefault(body *ast.BlockStmt) bool {
	for _, c := range body.List {
		if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
			return true
		}
	}
	return false
}

// switchBody joins the per-case outputs; without a default the input
// state falls through untouched. Fallthrough feeds a case's output
// into the next case's input.
func (w *walker) switchBody(body *ast.BlockStmt, st State, hasDefault bool) State {
	ctx := &loopCtx{} // switch absorbs plain break
	w.loops = append(w.loops, ctx)
	var out State
	var fall State
	for _, c := range body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		in := st.Clone()
		for _, e := range cc.List {
			w.transfer(in, e)
		}
		in = join(in, fall)
		fall = nil
		caseOut := w.stmts(cc.Body, in)
		if caseOut != nil && endsInFallthrough(cc.Body) {
			fall = caseOut
			continue
		}
		out = join(out, caseOut)
	}
	out = join(out, fall)
	w.loops = w.loops[:len(w.loops)-1]
	for _, b := range ctx.breaks {
		out = join(out, b)
	}
	if !hasDefault {
		out = join(out, st)
	}
	return out
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// loop runs body() to a bounded fixpoint. infinite marks `for {}`
// loops, whose only exits are breaks (and returns inside the body).
func (w *walker) loop(st State, label string, body func(State) State, infinite bool) State {
	ctx := &loopCtx{label: label, isLoop: true}
	w.loops = append(w.loops, ctx)
	head := st
	var exit State
	if !infinite {
		exit = st.Clone() // zero iterations
	}
	for i := 0; i < loopPasses; i++ {
		prev := head.Clone()
		out := body(head.Clone())
		for _, c := range ctx.continues {
			out = join(out, c)
		}
		ctx.continues = nil
		if out != nil && !infinite {
			exit = join(exit, out.Clone())
		}
		head = join(head, out)
		if head == nil || head.Equal(prev) {
			break
		}
	}
	w.loops = w.loops[:len(w.loops)-1]
	for _, b := range ctx.breaks {
		exit = join(exit, b)
	}
	return exit
}

func (w *walker) labeled(s *ast.LabeledStmt, st State) State {
	switch inner := s.Stmt.(type) {
	case *ast.ForStmt:
		w.transfer(st, inner.Init)
		return w.loop(st, s.Label.Name, func(in State) State {
			w.transfer(in, inner.Cond)
			out := w.block(inner.Body, in)
			if out != nil {
				w.transfer(out, inner.Post)
			}
			return out
		}, inner.Cond == nil)
	case *ast.RangeStmt:
		w.transfer(st, inner.X)
		return w.loop(st, s.Label.Name, func(in State) State {
			w.transfer(in, inner.Key)
			w.transfer(in, inner.Value)
			return w.block(inner.Body, in)
		}, false)
	default:
		return w.stmt(s.Stmt, st)
	}
}

// branch routes break/continue states to their target context. goto is
// treated as a dead end (the repo bans goto by convention; a lost path
// under-approximates, it never fabricates a finding).
func (w *walker) branch(s *ast.BranchStmt, st State) State {
	label := ""
	if s.Label != nil {
		label = s.Label.Name
	}
	switch s.Tok.String() {
	case "break":
		for i := len(w.loops) - 1; i >= 0; i-- {
			c := w.loops[i]
			if label == "" || c.label == label {
				c.breaks = append(c.breaks, st)
				return nil
			}
		}
	case "continue":
		for i := len(w.loops) - 1; i >= 0; i-- {
			c := w.loops[i]
			if c.isLoop && (label == "" || c.label == label) {
				c.continues = append(c.continues, st)
				return nil
			}
		}
	case "fallthrough":
		// Handled by switchBody; reaching here means a malformed tree.
		return st
	}
	return nil
}
