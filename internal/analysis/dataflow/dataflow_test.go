package dataflow

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"sort"
	"testing"
)

// dirtyState is the tiniest useful lattice: a single may-bit, set by
// calls to mark() and cleared by calls to unmark() in the test source.
type dirtyState struct{ dirty bool }

func (s *dirtyState) Clone() State       { c := *s; return &c }
func (s *dirtyState) Join(o State)       { s.dirty = s.dirty || o.(*dirtyState).dirty }
func (s *dirtyState) Equal(o State) bool { return s.dirty == o.(*dirtyState).dirty }
func (s *dirtyState) apply(name string)  { s.dirty = name == "mark" || (s.dirty && name != "unmark") }

// runDirty walks fn and returns the dirty bit observed at each exit,
// keyed by the return statement's line (0 = fall off the end).
func runDirty(t *testing.T, src string) map[int]bool {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "walk.go", "package p\nfunc mark()\nfunc unmark()\n"+src, 0)
	if err != nil {
		t.Fatal(err)
	}
	var fn *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("no func f in test source")
	}
	exits := map[int]bool{}
	hooks := Hooks{
		Transfer: func(st State, n ast.Node) {
			ast.Inspect(n, func(x ast.Node) bool {
				if _, ok := x.(*ast.FuncLit); ok {
					return false
				}
				if call, ok := x.(*ast.CallExpr); ok {
					if id, ok := call.Fun.(*ast.Ident); ok {
						st.(*dirtyState).apply(id.Name)
					}
				}
				return true
			})
		},
		Defer: func(st State, call *ast.CallExpr) {
			if id, ok := call.Fun.(*ast.Ident); ok {
				st.(*dirtyState).apply(id.Name)
			}
		},
		Return: func(st State, ret *ast.ReturnStmt) {
			line := 0
			if ret != nil {
				line = fset.Position(ret.Pos()).Line
			}
			exits[line] = exits[line] || st.(*dirtyState).dirty
		},
	}
	Walk(fn.Body, &dirtyState{}, hooks)
	return exits
}

// anyDirty reports whether any exit observed the dirty bit.
func anyDirty(exits map[int]bool) bool {
	for _, d := range exits {
		if d {
			return true
		}
	}
	return false
}

func TestWalkBranchJoin(t *testing.T) {
	// One arm marks: the join after the if must be dirty.
	exits := runDirty(t, `
func f(c bool) {
	if c {
		mark()
	}
}`)
	if !anyDirty(exits) {
		t.Fatal("mark() on one arm should reach the exit as may-dirty")
	}
	// Both arms clean it: the join must be clean.
	exits = runDirty(t, `
func f(c bool) {
	mark()
	if c {
		unmark()
	} else {
		unmark()
	}
}`)
	if anyDirty(exits) {
		t.Fatal("unmark() on both arms should clear the fact at the join")
	}
}

func TestWalkPathSensitiveReturns(t *testing.T) {
	// The early return exits clean; only the final one is dirty.
	exits := runDirty(t, `
func f(c bool) {
	if c {
		return
	}
	mark()
	return
}`)
	dirtyLines := 0
	for _, d := range exits {
		if d {
			dirtyLines++
		}
	}
	if dirtyLines != 1 {
		t.Fatalf("want exactly one dirty exit, got %d (%v)", dirtyLines, exits)
	}
}

func TestWalkDeferRunsAtExit(t *testing.T) {
	exits := runDirty(t, `
func f() {
	defer unmark()
	mark()
}`)
	if anyDirty(exits) {
		t.Fatal("deferred unmark() must be replayed before the exit is observed")
	}
	// Defers run LIFO: the later-registered mark() runs first, then
	// unmark() clears it.
	exits = runDirty(t, `
func f() {
	defer unmark()
	defer mark()
}`)
	if anyDirty(exits) {
		t.Fatalf("defers must replay last-registered-first: %v", exits)
	}
}

func TestWalkLoopCarriesFacts(t *testing.T) {
	// A mark inside the loop body may reach the exit.
	exits := runDirty(t, `
func f(n int) {
	for i := 0; i < n; i++ {
		mark()
	}
}`)
	if !anyDirty(exits) {
		t.Fatal("loop-body mark() should join into the loop exit")
	}
	// Zero iterations stay clean even when the body would clean a
	// pre-existing mark — and vice versa: the pre-loop mark survives.
	exits = runDirty(t, `
func f(n int) {
	mark()
	for i := 0; i < n; i++ {
		unmark()
	}
}`)
	if !anyDirty(exits) {
		t.Fatal("the zero-iteration path must keep the pre-loop mark")
	}
}

func TestWalkInfiniteLoopBreak(t *testing.T) {
	exits := runDirty(t, `
func f(c bool) {
	for {
		if c {
			break
		}
		mark()
	}
}`)
	if !anyDirty(exits) {
		t.Fatal("state carried across iterations must flow through break")
	}
	// Break before any mark: clean.
	exits = runDirty(t, `
func f() {
	for {
		break
	}
	return
}`)
	if anyDirty(exits) {
		t.Fatal("breaking immediately should stay clean")
	}
}

func TestWalkSwitchDefaultAndFallthrough(t *testing.T) {
	// No default: the untouched input joins the case outputs.
	exits := runDirty(t, `
func f(n int) {
	mark()
	switch n {
	case 1:
		unmark()
	}
}`)
	if !anyDirty(exits) {
		t.Fatal("switch without default must keep the no-case path dirty")
	}
	// Every case (incl. default) cleans: exit clean.
	exits = runDirty(t, `
func f(n int) {
	mark()
	switch n {
	case 1:
		unmark()
	default:
		unmark()
	}
}`)
	if anyDirty(exits) {
		t.Fatal("all arms cleaning must produce a clean join")
	}
	// Fallthrough carries the first case's state into the second.
	exits = runDirty(t, `
func f(n int) {
	switch n {
	case 1:
		mark()
		fallthrough
	case 2:
		unmark()
	default:
	}
}`)
	if anyDirty(exits) {
		t.Fatal("fallthrough state must flow into the next case, where it is cleaned")
	}
}

func TestWalkSelect(t *testing.T) {
	exits := runDirty(t, `
func f(a, b chan int) {
	select {
	case <-a:
		mark()
	case <-b:
	}
}`)
	if !anyDirty(exits) {
		t.Fatal("one select arm marking must reach the join")
	}
}

func TestWalkFuncLitNotEntered(t *testing.T) {
	// The literal body belongs to another node; its mark() must not
	// leak into this function's state.
	exits := runDirty(t, `
func f() {
	g := func() { mark() }
	_ = g
}`)
	if anyDirty(exits) {
		t.Fatal("function-literal bodies must not be interpreted in the encloser")
	}
}

// typecheck parses and checks one file, returning what the fact
// helpers need.
func typecheck(t *testing.T, src string) (*token.FileSet, *ast.File, *types.Package, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "facts.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	conf := types.Config{Importer: importer.Default()}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	return fset, f, pkg, info
}

func TestFieldWritesIn(t *testing.T) {
	fset, f, _, info := typecheck(t, `package p

type S struct {
	q []int
	m map[int]int
	n int
	u int
}

func (s *S) f(k int) {
	s.q = append(s.q, 1)
	s.m[k] = 2
	s.n++
	delete(s.m, k)
	x := s.u
	_ = x
	go func() { s.u = 9 }()
}
`)
	var fn *ast.FuncDecl
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fn = fd
		}
	}
	writes := FieldWritesIn(info, fn.Body, func(v *types.Var) bool { return true })
	var got []string
	for _, w := range writes {
		got = append(got, w.Field.Name()+":"+intToStr(fset.Position(w.Pos).Line))
	}
	want := []string{"q:11", "m:12", "n:13", "m:14"}
	if len(got) != len(want) {
		t.Fatalf("writes = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("writes = %v, want %v", got, want)
		}
	}
}

func intToStr(n int) string {
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}

func TestSelectorPathAndLocalVar(t *testing.T) {
	_, f, pkg, info := typecheck(t, `package p

type inner struct{ buf []int }
type outer struct{ in inner }

var global outer

func f(o *outer) {
	local := o
	_ = local.in.buf
	_ = global.in
	_ = local
}
`)
	paths := map[string]int{}
	locals := 0
	ast.Inspect(f, func(x ast.Node) bool {
		switch e := x.(type) {
		case *ast.SelectorExpr:
			if p := SelectorPath(info, e); p != nil {
				names := ""
				for i, v := range p {
					if i > 0 {
						names += "."
					}
					names += v.Name()
				}
				paths[names]++
			}
		case *ast.Ident:
			if LocalVar(info, pkg, e) != nil {
				locals++
			}
		}
		return true
	})
	for _, want := range []string{"local.in.buf", "global.in"} {
		if paths[want] == 0 {
			keys := make([]string, 0, len(paths))
			for k := range paths {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			t.Fatalf("missing selector path %q; got %v", want, keys)
		}
	}
	if locals == 0 {
		t.Fatal("LocalVar resolved no locals")
	}
	if LocalVar(info, pkg, ast.NewIdent("global")) != nil {
		t.Fatal("an unchecked identifier must not resolve")
	}
}
