// Package serverd is the protoexhaustive dispatch fixture: declared
// switches that drift from the registry in each direction, an
// undeclared switch, and the conforming shapes that stay silent.
package serverd

import "proto"

// dispatchConn drifts three ways: it forgot a registered tag, handles
// a tag nobody registered, and poaches a tag registered to another
// role.
func dispatchConn(env proto.Envelope) {
	//schedlint:dispatch server.conn
	switch env.Type { // want `dispatch switch for role "server.conn" does not handle TQStat`
	case proto.TQSub:
	case proto.MsgType("bogus"): // want `case "bogus" is not a registered message type`
	case proto.TJobDone: // want `case TJobDone is not registered for dispatch role "server.conn"`
	}
}

// dispatchMom is complete for its role: silent.
func dispatchMom(env proto.Envelope) {
	//schedlint:dispatch server.mom
	switch env.Type {
	case proto.THeartbeat:
	case proto.TJobDone:
	default:
	}
}

// dispatchUnmarked has no role declaration at all.
func dispatchUnmarked(t proto.MsgType) {
	switch t { // want `switch over proto.MsgType without a //schedlint:dispatch`
	case proto.TQSub, proto.TQStat:
	}
}

// dispatchTypo declares a role nothing registers for.
func dispatchTypo(t proto.MsgType) {
	//schedlint:dispatch server.con
	switch t { // want `no message types are registered for dispatch role "server.con"`
	case proto.TQSub:
	}
}

// notDispatch switches over a plain string: out of scope, silent.
func notDispatch(s string) {
	switch s {
	case "qsub":
	}
}
