// Package proto is the protoexhaustive registry fixture: a condensed
// message-type table with one constant missing its dispatch
// annotation.
package proto

// MsgType tags an envelope's payload.
type MsgType string

// Message types.
const (
	TQSub  MsgType = "qsub"  // dispatch:server.conn
	TQStat MsgType = "qstat" // dispatch:server.conn

	TQSubResp MsgType = "qsub.resp" // dispatch:reply

	THeartbeat MsgType = "mom.heartbeat" // dispatch:server.mom
	TJobDone   MsgType = "mom.jobdone"   // dispatch:server.mom,reply

	TOrphan MsgType = "orphan" // want `message type TOrphan has no dispatch`
)

// Envelope frames every message.
type Envelope struct {
	Type MsgType
}
