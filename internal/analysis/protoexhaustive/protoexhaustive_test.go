package protoexhaustive_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/protoexhaustive"
)

func TestProtoExhaustive(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), protoexhaustive.Analyzer, "proto", "serverd")
}
