// Package protoexhaustive keeps the wire protocol's message registry
// and the daemons' dispatch switches in lockstep. A message type that
// is registered but never dispatched is dead protocol surface; a
// dispatch case for an unregistered tag is a message nobody sends; a
// registered tag missing from its daemon's switch is the classic
// "added the message, forgot the handler" bug that only surfaces as a
// live-system timeout.
//
// The contract has two halves:
//
//   - Every MsgType constant in internal/proto declares which dispatch
//     switches consume it, via a `dispatch:<role>[,<role>]` token in
//     its trailing comment. Replies that are read inline (request /
//     response on one connection) use the pseudo-role `reply`.
//   - Every `switch` over a MsgType in a daemon package is declared
//     with a `//schedlint:dispatch <role>` marker on the line above,
//     and must handle exactly the tags registered for that role: each
//     registered tag appears as a case, and each case tag is
//     registered for the role.
//
// The analyzer reads the proto package's syntax through Pass.Dep, so
// it checks daemons against the registry they actually compile
// against — there is no second copy of the message list to drift.
package protoexhaustive

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the protoexhaustive check.
var Analyzer = &analysis.Analyzer{
	Name:      "protoexhaustive",
	Doc:       "proto message registry and daemon dispatch switches must agree: every registered tag handled, every handled tag registered",
	Directive: "protodispatch",
	Run:       run,
}

// msgTypeName is the tag type the protocol hangs off.
const msgTypeName = "MsgType"

// registryEntry is one registered message type.
type registryEntry struct {
	name  string   // constant name, e.g. "TQSub"
	value string   // wire value, e.g. "qsub"
	roles []string // dispatch roles from the annotation
	pos   token.Pos
}

func run(pass *analysis.Pass) error {
	// Half one: inside the proto package itself, check that every
	// MsgType constant carries a dispatch annotation.
	if definesMsgType(pass.Pkg) {
		entries := collectRegistry(&analysis.Target{
			Fset: pass.Fset, Files: pass.Files, Pkg: pass.Pkg, TypesInfo: pass.TypesInfo,
		})
		for _, e := range entries {
			if len(e.roles) == 0 {
				pass.Reportf(e.pos, "message type %s has no dispatch:<role> annotation; declare which dispatch switch consumes it (or dispatch:reply for inline responses)", e.name)
			}
		}
	}

	// Half two: every switch over a MsgType value, wherever it lives,
	// must be declared and exhaustive for its role.
	markers := analysis.Markers(pass.Fset, pass.Files, "dispatch")
	markerAt := make(map[string]*analysis.Marker, len(markers))
	used := make(map[*analysis.Marker]bool, len(markers))
	for i := range markers {
		m := &markers[i]
		markerAt[fmt.Sprintf("%s:%d", m.Pos.Filename, m.Pos.Line)] = m
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			sw, ok := x.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named := msgTypeOf(pass, sw.Tag)
			if named == nil {
				return true
			}
			pos := pass.Fset.Position(sw.Pos())
			m := markerAt[fmt.Sprintf("%s:%d", pos.Filename, pos.Line-1)]
			if m == nil {
				pass.Reportf(sw.Pos(), "switch over %s.%s without a //schedlint:dispatch <role> marker; declare which dispatch role this switch implements", named.Obj().Pkg().Name(), msgTypeName)
				return true
			}
			used[m] = true
			role := strings.TrimSpace(m.Args)
			if role == "" {
				pass.Report(analysis.Diagnostic{Pos: sw.Pos(), Message: "//schedlint:dispatch marker is missing its role argument", Unsuppressable: true})
				return true
			}
			checkSwitch(pass, sw, named, role)
			return true
		})
	}
	for i := range markers {
		m := &markers[i]
		if !used[m] {
			pass.Report(analysis.Diagnostic{
				Pos:            markerPos(pass, m),
				Message:        fmt.Sprintf("//schedlint:dispatch %s marker is not attached to a MsgType switch on the next line", strings.TrimSpace(m.Args)),
				Unsuppressable: true,
			})
		}
	}
	return nil
}

// checkSwitch compares one declared dispatch switch against the
// registry of the MsgType's defining package.
func checkSwitch(pass *analysis.Pass, sw *ast.SwitchStmt, named *types.Named, role string) {
	dep := depTarget(pass, named)
	if dep == nil {
		pass.Reportf(sw.Pos(), "cannot load the registry package %s for dispatch role %q (driver provides no dependency sources)", named.Obj().Pkg().Path(), role)
		return
	}
	entries := collectRegistry(dep)
	registered := make(map[string]*registryEntry, len(entries)) // wire value -> entry
	var forRole []*registryEntry
	for _, e := range entries {
		registered[e.value] = e
		for _, r := range e.roles {
			if r == role {
				forRole = append(forRole, e)
				break
			}
		}
	}
	if len(forRole) == 0 {
		pass.Reportf(sw.Pos(), "no message types are registered for dispatch role %q; annotate the constants in %s or fix the role name", role, named.Obj().Pkg().Path())
		return
	}

	handled := make(map[string]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		for _, expr := range cc.List {
			val, ok := constString(pass, expr)
			if !ok {
				pass.Reportf(expr.Pos(), "dispatch case is not a constant MsgType; exhaustiveness cannot be checked")
				continue
			}
			handled[val] = true
			e := registered[val]
			if e == nil {
				pass.Reportf(expr.Pos(), "case %q is not a registered message type in %s", val, named.Obj().Pkg().Path())
				continue
			}
			if !hasRole(e, role) {
				pass.Reportf(expr.Pos(), "case %s is not registered for dispatch role %q (its annotation says dispatch:%s)", e.name, role, strings.Join(e.roles, ","))
			}
		}
	}
	var missing []string
	for _, e := range forRole {
		if !handled[e.value] {
			missing = append(missing, e.name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		pass.Reportf(sw.Pos(), "dispatch switch for role %q does not handle %s; every tag registered for the role needs a case", role, name)
	}
}

// collectRegistry reads MsgType constants and their dispatch
// annotations out of a package's syntax.
func collectRegistry(t *analysis.Target) []*registryEntry {
	var out []*registryEntry
	for _, f := range t.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					c, ok := t.TypesInfo.Defs[name].(*types.Const)
					if !ok || !isMsgType(c.Type()) || c.Val().Kind() != constant.String {
						continue
					}
					out = append(out, &registryEntry{
						name:  name.Name,
						value: constant.StringVal(c.Val()),
						roles: parseRoles(vs.Comment),
						pos:   name.Pos(),
					})
				}
			}
		}
	}
	return out
}

// parseRoles extracts `dispatch:a,b` from a trailing comment.
func parseRoles(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	for _, c := range cg.List {
		for _, field := range strings.Fields(strings.TrimPrefix(c.Text, "//")) {
			if rest, ok := strings.CutPrefix(field, "dispatch:"); ok {
				var roles []string
				for _, r := range strings.Split(rest, ",") {
					if r = strings.TrimSpace(r); r != "" {
						roles = append(roles, r)
					}
				}
				return roles
			}
		}
	}
	return nil
}

func hasRole(e *registryEntry, role string) bool {
	for _, r := range e.roles {
		if r == role {
			return true
		}
	}
	return false
}

// msgTypeOf returns the tag expression's named MsgType, or nil.
func msgTypeOf(pass *analysis.Pass, expr ast.Expr) *types.Named {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return nil
	}
	named, ok := tv.Type.(*types.Named)
	if !ok || named.Obj().Name() != msgTypeName || named.Obj().Pkg() == nil {
		return nil
	}
	return named
}

func isMsgType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == msgTypeName
}

func definesMsgType(pkg *types.Package) bool {
	obj := pkg.Scope().Lookup(msgTypeName)
	_, ok := obj.(*types.TypeName)
	return ok
}

// depTarget resolves the registry package: the analyzed package itself
// when the switch lives next to the constants, Pass.Dep otherwise.
func depTarget(pass *analysis.Pass, named *types.Named) *analysis.Target {
	path := named.Obj().Pkg().Path()
	if path == pass.Pkg.Path() {
		return &analysis.Target{Fset: pass.Fset, Files: pass.Files, Pkg: pass.Pkg, TypesInfo: pass.TypesInfo}
	}
	if pass.Dep == nil {
		return nil
	}
	return pass.Dep(path)
}

// constString evaluates a case expression to its wire value.
func constString(pass *analysis.Pass, expr ast.Expr) (string, bool) {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func markerPos(pass *analysis.Pass, m *analysis.Marker) token.Pos {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil && tf.Name() == m.Pos.Filename {
			return tf.LineStart(m.Pos.Line)
		}
	}
	return token.NoPos
}
