// Package callgraph builds a package-level call graph from a
// type-checked package, the shared substrate of schedlint's
// interprocedural analyzers (lockorder, goroutinelife).
//
// Nodes are the package's function declarations plus every function
// literal (each literal is its own node: a goroutine or timer callback
// has its own dynamic extent and must not inherit its encloser's
// properties). Edges are *synchronous* calls only:
//
//   - direct calls of package-level functions (f(...)),
//   - method calls resolved through the type checker to a method
//     declared in this package (s.killLocked(...)),
//   - immediately-invoked function literals (func(){...}()),
//   - deferred calls (defer f() runs in the calling goroutine).
//
// A `go f(...)` statement is recorded as a Spawn, not a call edge: the
// spawned function runs concurrently, so held-lock sets must not
// propagate into it and shutdown obligations attach to it separately.
// Calls through function *values* (fields, parameters, variables) are
// conservatively unresolved — they produce no edge — and cross-package
// calls are out of scope by construction: the graph answers questions
// about one package's internal structure.
package callgraph

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
)

// Node is one function in the graph.
type Node struct {
	// Func is the checker's object for declared functions and methods;
	// nil for function literals.
	Func *types.Func
	// Decl / Lit is the syntax (exactly one is non-nil).
	Decl *ast.FuncDecl
	Lit  *ast.FuncLit
	// Name is a human-readable label ("(*Server).Close",
	// "registerMom (func literal)").
	Name string
	// Calls are the node's synchronous call edges in source order.
	Calls []Edge
	// Spawns are the node's `go` statements in source order.
	Spawns []Spawn
}

// Body returns the function's block (nil for bodyless declarations).
func (n *Node) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Edge is one synchronous call site.
type Edge struct {
	Callee *Node
	Pos    token.Pos
	// Site is the call expression itself, for analyzers that match
	// arguments to the callee's parameters (sharedguard's parameter
	// flow).
	Site *ast.CallExpr
	// Deferred marks `defer f()` edges; they still run in the calling
	// goroutine, but at function exit.
	Deferred bool
}

// Spawn is one `go` statement.
type Spawn struct {
	// Callee is the spawned function's node when it is resolvable to a
	// literal or a same-package declaration; nil otherwise (a spawned
	// external function or function value).
	Callee *Node
	Stmt   *ast.GoStmt
}

// Graph is the package call graph.
type Graph struct {
	Nodes  []*Node
	byFunc map[*types.Func]*Node
	byLit  map[*ast.FuncLit]*Node
}

// NodeOf resolves a declared function/method object to its node.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFunc[fn] }

// NodeOfLit resolves a function literal to its node.
func (g *Graph) NodeOfLit(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// Build returns the call graph of the pass's package, constructing it
// on first use and memoizing it on the pass's target: the graph is a
// pure function of the package syntax, and five analyzers consume it,
// so a shared run (cmd/schedlint) builds each package's graph once.
func Build(pass *analysis.Pass) *Graph {
	if pass.Cached != nil {
		return pass.Cached("callgraph", func() any { return build(pass) }).(*Graph)
	}
	return build(pass)
}

// build constructs the graph unconditionally.
func build(pass *analysis.Pass) *Graph {
	g := &Graph{byFunc: make(map[*types.Func]*Node), byLit: make(map[*ast.FuncLit]*Node)}
	// First pass: one node per declaration and per literal, so edges
	// can resolve forward references.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			n := &Node{Decl: fd, Name: declName(pass, fd)}
			if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				n.Func = fn
				g.byFunc[fn] = n
			}
			g.Nodes = append(g.Nodes, n)
			collectLits(pass, g, n.Name, fd.Body)
		}
	}
	// Second pass: edges and spawns, per node, excluding nested
	// literals (they are their own nodes).
	for _, n := range g.Nodes {
		g.wire(pass, n)
	}
	return g
}

// collectLits registers every function literal under root as a node.
func collectLits(pass *analysis.Pass, g *Graph, owner string, root ast.Node) {
	ast.Inspect(root, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok {
			n := &Node{Lit: lit, Name: owner + " (func literal)"}
			g.byLit[lit] = n
			g.Nodes = append(g.Nodes, n)
		}
		return true
	})
}

func declName(pass *analysis.Pass, fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	return fmt.Sprintf("(%s).%s", types.ExprString(fd.Recv.List[0].Type), fd.Name.Name)
}

// wire fills one node's Calls and Spawns from its own body, stopping
// at nested literals.
func (g *Graph) wire(pass *analysis.Pass, n *Node) {
	body := n.Body()
	var walk func(x ast.Node, deferred bool, spawned map[*ast.CallExpr]bool)
	spawned := make(map[*ast.CallExpr]bool)
	walk = func(x ast.Node, deferred bool, spawned map[*ast.CallExpr]bool) {
		ast.Inspect(x, func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.FuncLit:
				if n.Lit != x {
					return false // nested literal: its own node
				}
			case *ast.GoStmt:
				n.Spawns = append(n.Spawns, Spawn{Callee: g.resolve(pass, x.Call), Stmt: x})
				spawned[x.Call] = true
			case *ast.DeferStmt:
				if callee := g.resolve(pass, x.Call); callee != nil {
					n.Calls = append(n.Calls, Edge{Callee: callee, Pos: x.Call.Pos(), Site: x.Call, Deferred: true})
				}
				spawned[x.Call] = true // edge recorded above; skip the plain-call case
			case *ast.CallExpr:
				if spawned[x] {
					return true // handled by the go/defer statement
				}
				if callee := g.resolve(pass, x); callee != nil {
					n.Calls = append(n.Calls, Edge{Callee: callee, Pos: x.Pos(), Site: x, Deferred: deferred})
				}
			}
			return true
		})
	}
	walk(body, false, spawned)
}

// resolve maps a call expression to a same-package node, or nil.
func (g *Graph) resolve(pass *analysis.Pass, call *ast.CallExpr) *Node {
	return g.Resolve(pass.TypesInfo, call)
}

// Resolve maps a call expression to its same-package node — declared
// function, method, or immediately-invoked literal — or nil. It is
// the exported form of the wiring resolver, for analyzers that need
// call targets at specific program points (the dataflow walkers
// resolve callees statement by statement rather than from the
// pre-wired edge list).
func (g *Graph) Resolve(info *types.Info, call *ast.CallExpr) *Node {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation: f[T](...) — unwrap the index.
	switch ix := fun.(type) {
	case *ast.IndexExpr:
		fun = ix.X
	case *ast.IndexListExpr:
		fun = ix.X
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return g.byLit[fun]
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return g.byFunc[originOf(fn)]
		}
	case *ast.SelectorExpr:
		// Method call or qualified cross-package call; Uses resolves
		// both, and byFunc filters to this package.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return g.byFunc[originOf(fn)]
		}
	}
	return nil
}

// originOf strips generic instantiation so calls to f[int] resolve to
// the declaration node of f.
func originOf(fn *types.Func) *types.Func {
	if o := fn.Origin(); o != nil {
		return o
	}
	return fn
}
