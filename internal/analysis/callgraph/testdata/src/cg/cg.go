// Package cg exercises callgraph edge resolution.
package cg

type T struct{ n int }

func (t *T) method() { t.n++ }

func helper() {}

func root(t *T, fv func()) {
	helper()           // direct call
	t.method()         // method call
	defer helper()     // deferred call
	func() { t.n++ }() // immediately-invoked literal
	go helper()        // spawn, resolved
	go fv()            // spawn, unresolvable function value
}

func generic[E any](e E) E { return e }

func callsGeneric() {
	_ = generic(1) // instantiated call resolves to the origin declaration
}
