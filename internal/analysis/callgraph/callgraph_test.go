package callgraph_test

import (
	"path/filepath"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/loader"
)

func buildFixture(t *testing.T) *callgraph.Graph {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	l := loader.New()
	l.LocalRoot = filepath.Join(abs, "src")
	pkg, err := l.LoadPath("cg")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range pkg.ParseErrors {
		t.Fatalf("parse: %v", e)
	}
	for _, e := range pkg.TypeErrors {
		t.Fatalf("type: %v", e)
	}
	var g *callgraph.Graph
	a := &analysis.Analyzer{
		Name: "probe",
		Run: func(pass *analysis.Pass) error {
			g = callgraph.Build(pass)
			return nil
		},
	}
	if _, err := analysis.RunAnalyzers(pkg.Target(), []*analysis.Analyzer{a}); err != nil {
		t.Fatal(err)
	}
	return g
}

func nodeNamed(t *testing.T, g *callgraph.Graph, name string) *callgraph.Node {
	t.Helper()
	for _, n := range g.Nodes {
		if n.Name == name {
			return n
		}
	}
	t.Fatalf("no node named %q", name)
	return nil
}

func TestEdgesAndSpawns(t *testing.T) {
	g := buildFixture(t)
	root := nodeNamed(t, g, "root")

	var callees []string
	var deferred int
	for _, e := range root.Calls {
		callees = append(callees, e.Callee.Name)
		if e.Deferred {
			deferred++
		}
	}
	want := []string{"helper", "(*T).method", "helper", "root (func literal)"}
	if len(callees) != len(want) {
		t.Fatalf("root calls = %v, want %v", callees, want)
	}
	for i := range want {
		if callees[i] != want[i] {
			t.Fatalf("root calls = %v, want %v", callees, want)
		}
	}
	if deferred != 1 {
		t.Errorf("deferred edges = %d, want 1", deferred)
	}

	if len(root.Spawns) != 2 {
		t.Fatalf("root spawns = %d, want 2", len(root.Spawns))
	}
	if root.Spawns[0].Callee == nil || root.Spawns[0].Callee.Name != "helper" {
		t.Errorf("first spawn should resolve to helper")
	}
	if root.Spawns[1].Callee != nil {
		t.Errorf("spawn of a function value should be unresolved, got %s", root.Spawns[1].Callee.Name)
	}
}

func TestGenericCallResolvesToOrigin(t *testing.T) {
	g := buildFixture(t)
	caller := nodeNamed(t, g, "callsGeneric")
	if len(caller.Calls) != 1 || caller.Calls[0].Callee.Name != "generic" {
		t.Fatalf("callsGeneric edges = %+v, want one edge to generic", caller.Calls)
	}
}
