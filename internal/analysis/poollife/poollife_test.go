package poollife_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poollife"
)

func TestPoolLife(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), poollife.Analyzer, "pool")
}
