// Package poollife checks the lifetime discipline of pooled objects:
// a value obtained from a `//schedlint:pool`-marked constructor must
// not be read, written, or passed anywhere after its declared release
// function runs, must not be released twice, and must be released (or
// escape) on every return path. The repo's instance is
// core.IterationResult — Scheduler.Iterate hands out a pooled result,
// Scheduler.Recycle returns it; a use-after-Recycle reads memory the
// next iteration is already overwriting.
//
// The markers name the pool on both ends:
//
//	//schedlint:pool IterationResult
//	func (s *Scheduler) Iterate(...) *IterationResult
//
//	//schedlint:pool-release IterationResult
//	func (s *Scheduler) Recycle(res *IterationResult)
//
// The release may be a method of the pooled object itself (res.Free())
// or take it as first argument. Constructor and release are resolved
// through Pass.Dep, so consumer packages are checked against markers
// declared in the defining package.
//
// Tracking is per function over the dataflow walker: a local bound
// from a constructor call is followed through branches (per-path
// merge), loops, and defers. Escapes end tracking conservatively —
// returning the value, storing it into a field, global, map, slice,
// or channel, and capturing it in a function literal all transfer the
// obligation to someone this analysis cannot see. Passing the value
// to an ordinary call is a *borrow*: the callee may look, the
// obligation stays here. What it does not prove: aliases (q := res;
// use q), obligations handed to helpers that release on the caller's
// behalf, and anything behind interface calls. Findings can be
// suppressed with `//lint:poollife <reason>`.
package poollife

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the poollife check.
var Analyzer = &analysis.Analyzer{
	Name:      "poollife",
	Doc:       "pooled objects must not be used after their release function and must be released or escape on every return path",
	Directive: "poollife",
	Run:       run,
}

// registry maps constructor and release functions to their pool name.
type registry struct {
	ctors map[*types.Func]string
	rels  map[*types.Func]string
}

func buildRegistry(pass *analysis.Pass) *registry {
	r := &registry{ctors: map[*types.Func]string{}, rels: map[*types.Func]string{}}
	add := func(files []*ast.File, info *types.Info) {
		for _, m := range dataflow.FuncMarkers(files, info, "pool") {
			if m.Fn == nil {
				continue
			}
			if m.Args == "" {
				pass.Report(analysis.Diagnostic{Pos: m.Pos, Unsuppressable: true,
					Message: "malformed pool marker: want `pool <Name>`"})
				continue
			}
			r.ctors[m.Fn] = m.Args
		}
		for _, m := range dataflow.FuncMarkers(files, info, "pool-release") {
			if m.Fn == nil {
				continue
			}
			if m.Args == "" {
				pass.Report(analysis.Diagnostic{Pos: m.Pos, Unsuppressable: true,
					Message: "malformed pool-release marker: want `pool-release <Name>`"})
				continue
			}
			r.rels[m.Fn] = m.Args
		}
	}
	add(pass.Files, pass.TypesInfo)
	if pass.Dep != nil {
		for _, imp := range pass.Pkg.Imports() {
			if dep := pass.Dep(imp.Path()); dep != nil {
				// Dep markers only declare; malformed ones are reported
				// when their own package is analyzed, so reports here
				// (wrong positions) are filtered by position anyway.
				for _, m := range dataflow.FuncMarkers(dep.Files, dep.TypesInfo, "pool") {
					if m.Fn != nil && m.Args != "" {
						r.ctors[m.Fn] = m.Args
					}
				}
				for _, m := range dataflow.FuncMarkers(dep.Files, dep.TypesInfo, "pool-release") {
					if m.Fn != nil && m.Args != "" {
						r.rels[m.Fn] = m.Args
					}
				}
			}
		}
	}
	return r
}

// varState tracks one pooled local: may-live (obligation open) and
// may-released bits plus where it was acquired, for messages.
type varState struct {
	live, released bool
	pool           string
	rel            string // the release function's name, for messages
	acq            token.Pos
}

// plState is the walker state: tracked locals by object.
type plState struct {
	vars map[*types.Var]*varState
}

func newState() *plState { return &plState{vars: map[*types.Var]*varState{}} }

func (s *plState) Clone() dataflow.State {
	c := newState()
	for v, vs := range s.vars {
		cp := *vs
		c.vars[v] = &cp
	}
	return c
}

func (s *plState) Join(o dataflow.State) {
	os := o.(*plState)
	for v, ovs := range os.vars {
		vs := s.vars[v]
		if vs == nil {
			cp := *ovs
			s.vars[v] = &cp
			continue
		}
		vs.live = vs.live || ovs.live
		vs.released = vs.released || ovs.released
	}
}

func (s *plState) Equal(o dataflow.State) bool {
	os := o.(*plState)
	if len(s.vars) != len(os.vars) {
		return false
	}
	for v, vs := range s.vars {
		ovs := os.vars[v]
		if ovs == nil || vs.live != ovs.live || vs.released != ovs.released {
			return false
		}
	}
	return true
}

func run(pass *analysis.Pass) error {
	reg := buildRegistry(pass)
	if len(reg.ctors) == 0 && len(reg.rels) == 0 {
		return nil
	}
	a := &plAnalyzer{pass: pass, reg: reg}
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch fn := x.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					a.checkFunc(fn.Body)
				}
				return true
			case *ast.FuncLit:
				a.checkFunc(fn.Body)
				return true
			}
			return true
		})
	}
	return nil
}

type plAnalyzer struct {
	pass *analysis.Pass
	reg  *registry
	// reported dedupes findings per position (loop passes revisit
	// statements).
	reported map[token.Pos]bool
}

func (a *plAnalyzer) checkFunc(body *ast.BlockStmt) {
	a.reported = map[token.Pos]bool{}
	dataflow.Walk(body, newState(), dataflow.Hooks{
		Transfer: func(st dataflow.State, n ast.Node) { a.transfer(st.(*plState), n) },
		Defer:    func(st dataflow.State, call *ast.CallExpr) { a.call(st.(*plState), call) },
		Return: func(st dataflow.State, ret *ast.ReturnStmt) {
			s := st.(*plState)
			pos := token.NoPos
			if ret != nil {
				pos = ret.Pos()
			}
			for _, vs := range s.vars {
				if vs.live {
					p := pos
					if !p.IsValid() {
						p = vs.acq
					}
					a.reportOnce(p, "pooled %s may reach return without %s (acquired at %s)",
						vs.pool, vs.rel, a.pass.Fset.Position(vs.acq))
				}
			}
		},
	})
}

func (a *plAnalyzer) reportOnce(pos token.Pos, format string, args ...any) {
	if a.reported[pos] {
		return
	}
	a.reported[pos] = true
	a.pass.Reportf(pos, format, args...)
}

// transfer interprets one atomic statement or condition expression.
func (a *plAnalyzer) transfer(s *plState, n ast.Node) {
	switch n := n.(type) {
	case *ast.AssignStmt:
		a.assign(s, n)
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for i, val := range vs.Values {
						if i < len(vs.Names) && a.bind(s, vs.Names[i], val) {
							continue
						}
						a.eval(s, val, false)
					}
				}
			}
		}
	case *ast.ExprStmt:
		// A constructor result at statement level is dropped on the
		// floor: neither released nor escaped.
		if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
			if pool, ok := a.ctorOf(call); ok {
				a.reportOnce(call.Pos(), "pooled %s dropped without release", pool)
				a.evalCallArgs(s, call)
				return
			}
		}
		a.eval(s, n.X, false)
	case *ast.ReturnStmt:
		for _, res := range n.Results {
			a.eval(s, res, true) // returning is an escape
		}
	case ast.Expr:
		a.eval(s, n, false)
	default:
		// Remaining statements (send, incdec, ...) just use their
		// sub-expressions.
		ast.Inspect(n, func(x ast.Node) bool {
			if e, ok := x.(ast.Expr); ok {
				a.eval(s, e, false)
				return false
			}
			return true
		})
	}
}

// assign handles bindings, rebindings, and escapes through the LHS.
func (a *plAnalyzer) assign(s *plState, n *ast.AssignStmt) {
	// Pairwise x, y = f(), g() only; the multi-value f() form cannot
	// produce a pooled object here (constructors return the object
	// first and alone in this repo).
	if len(n.Lhs) == len(n.Rhs) {
		for i, rhs := range n.Rhs {
			if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
				if a.bind(s, id, rhs) {
					continue
				}
			}
			a.eval(s, rhs, false)
			a.escapeTarget(s, n.Lhs[i], rhs)
		}
		return
	}
	for _, rhs := range n.Rhs {
		a.eval(s, rhs, false)
	}
}

// bind tracks id when rhs is a constructor call; reports and returns
// true also when it handled the rhs.
func (a *plAnalyzer) bind(s *plState, id *ast.Ident, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	pool, ok := a.ctorOf(call)
	if !ok {
		return false
	}
	a.evalCallArgs(s, call)
	v := dataflow.LocalVar(a.pass.TypesInfo, a.pass.Pkg, id)
	if v == nil {
		return true // bound to a field/global: escapes immediately
	}
	s.vars[v] = &varState{live: true, pool: pool, rel: a.relNameFor(pool), acq: call.Pos()}
	return true
}

// escapeTarget ends tracking when a tracked value is stored anywhere
// but a plain local.
func (a *plAnalyzer) escapeTarget(s *plState, lhs, rhs ast.Expr) {
	v := a.trackedVar(s, rhs)
	if v == nil {
		return
	}
	if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
		if lv := dataflow.LocalVar(a.pass.TypesInfo, a.pass.Pkg, id); lv != nil {
			return // local-to-local copy: the original stays tracked
		}
	}
	delete(s.vars, v)
}

// eval walks an expression: uses of released objects are findings,
// escapes end tracking, release calls flip state.
func (a *plAnalyzer) eval(s *plState, e ast.Expr, escaping bool) {
	switch e := e.(type) {
	case nil:
		return
	case *ast.ParenExpr:
		a.eval(s, e.X, escaping)
	case *ast.Ident:
		v := dataflow.LocalVar(a.pass.TypesInfo, a.pass.Pkg, e)
		if v == nil {
			return
		}
		vs := s.vars[v]
		if vs == nil {
			return
		}
		if vs.released {
			a.reportOnce(e.Pos(), "pooled %s used after %s", vs.pool, vs.rel)
		}
		if escaping {
			delete(s.vars, v)
		}
	case *ast.CallExpr:
		a.call(s, e)
	case *ast.FuncLit:
		// Captured tracked objects escape into the literal's extent.
		for v := range s.vars {
			captured := false
			ast.Inspect(e.Body, func(x ast.Node) bool {
				if id, ok := x.(*ast.Ident); ok && a.pass.TypesInfo.Uses[id] == v {
					captured = true
				}
				return !captured
			})
			if captured {
				delete(s.vars, v)
			}
		}
	case *ast.UnaryExpr:
		a.eval(s, e.X, escaping)
	case *ast.StarExpr:
		a.eval(s, e.X, escaping)
	case *ast.SelectorExpr:
		a.eval(s, e.X, false)
	case *ast.IndexExpr:
		a.eval(s, e.X, false)
		a.eval(s, e.Index, escaping)
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			a.eval(s, el, true) // composite inclusion escapes
		}
	case *ast.KeyValueExpr:
		a.eval(s, e.Key, escaping)
		a.eval(s, e.Value, escaping)
	case *ast.BinaryExpr:
		a.eval(s, e.X, false)
		a.eval(s, e.Y, false)
	case *ast.TypeAssertExpr:
		a.eval(s, e.X, escaping)
	case *ast.SliceExpr:
		a.eval(s, e.X, false)
	}
}

// call interprets one call: release transitions, constructor-in-call
// forms, and borrows.
func (a *plAnalyzer) call(s *plState, call *ast.CallExpr) {
	if pool, ok := a.relOf(call); ok {
		obj := a.releaseObject(call)
		// Evaluate the other arguments normally.
		for _, arg := range call.Args {
			if arg == obj {
				continue
			}
			a.eval(s, arg, false)
		}
		if obj != nil {
			// Releasing a fresh constructor result inline is fine:
			// Recycle(Iterate(...)).
			if inner, ok := ast.Unparen(obj).(*ast.CallExpr); ok {
				if _, isCtor := a.ctorOf(inner); isCtor {
					a.evalCallArgs(s, inner)
					return
				}
			}
			if v := a.trackedVar(s, obj); v != nil {
				vs := s.vars[v]
				if vs.released {
					a.reportOnce(call.Pos(), "pooled %s released twice (%s)", vs.pool, pool)
				}
				vs.released = true
				vs.live = false
				return
			}
			a.eval(s, obj, false)
		}
		return
	}
	// Receiver evaluation (s.sched.Recycle's s.sched, or a tracked
	// object's own method call — a use).
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		a.eval(s, sel.X, false)
	}
	a.evalCallArgs(s, call)
}

func (a *plAnalyzer) evalCallArgs(s *plState, call *ast.CallExpr) {
	for _, arg := range call.Args {
		a.eval(s, arg, false) // borrow: uses, but no escape
	}
}

// releaseObject picks the released expression: the first argument, or
// the receiver for a parameterless release method.
func (a *plAnalyzer) releaseObject(call *ast.CallExpr) ast.Expr {
	if len(call.Args) > 0 {
		return call.Args[0]
	}
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return sel.X
	}
	return nil
}

func (a *plAnalyzer) trackedVar(s *plState, e ast.Expr) *types.Var {
	v := dataflow.LocalVar(a.pass.TypesInfo, a.pass.Pkg, e)
	if v == nil || s.vars[v] == nil {
		return nil
	}
	return v
}

func (a *plAnalyzer) ctorOf(call *ast.CallExpr) (string, bool) {
	fn := dataflow.CalledFunc(a.pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	pool, ok := a.reg.ctors[fn]
	return pool, ok
}

func (a *plAnalyzer) relOf(call *ast.CallExpr) (string, bool) {
	fn := dataflow.CalledFunc(a.pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	pool, ok := a.reg.rels[fn]
	return pool, ok
}

// relNameFor renders the release function's name for pool, for
// messages ("Recycle").
func (a *plAnalyzer) relNameFor(pool string) string {
	for fn, p := range a.reg.rels {
		if p == pool {
			return fn.Name()
		}
	}
	return "its release"
}
