// Package pool is the poollife golden fixture: a condensed scheduler
// shape seeding each diagnostic class (use after release, double
// release, a return path that forgets to release, a result dropped on
// the floor) next to the fixed variants that must stay silent
// (straight-line release, deferred release, release on every branch,
// inline Recycle(Take()), borrows, and the escape forms — return,
// field store, closure capture).
package pool

import "errors"

// Result is the pooled object.
type Result struct {
	N       int
	Actions []int
}

// Sched hands out pooled Results.
type Sched struct {
	last *Result
	pool []*Result
}

// Take acquires a pooled Result.
//
//schedlint:pool Result
func (s *Sched) Take() *Result {
	if n := len(s.pool); n > 0 {
		r := s.pool[n-1]
		s.pool = s.pool[:n-1]
		return r
	}
	return &Result{}
}

// Recycle returns a Result to the pool.
//
//schedlint:pool-release Result
func (s *Sched) Recycle(r *Result) {
	r.Actions = r.Actions[:0]
	s.pool = append(s.pool, r)
}

func observe(r *Result) int { return r.N }

// --- seeded violations ---

// UseAfter reads the result after handing it back.
func (s *Sched) UseAfter() int {
	res := s.Take()
	s.Recycle(res)
	return observe(res) // want `pooled Result used after Recycle`
}

// DoubleFree returns the same result twice.
func (s *Sched) DoubleFree() {
	res := s.Take()
	s.Recycle(res)
	s.Recycle(res) // want `pooled Result released twice`
}

// LeakOnError forgets the release on the early-exit path.
func (s *Sched) LeakOnError(bad bool) error {
	res := s.Take()
	if bad {
		return errors.New("skipped") // want `pooled Result may reach return without Recycle`
	}
	s.Recycle(res)
	return nil
}

// Dropped discards the result without releasing or keeping it.
func (s *Sched) Dropped() {
	s.Take() // want `pooled Result dropped without release`
}

// BranchUse recycles on one arm and then touches the maybe-released
// result.
func (s *Sched) BranchUse(done bool) int {
	res := s.Take()
	if done {
		s.Recycle(res)
	}
	return res.N // want `pooled Result used after Recycle` `pooled Result may reach return without Recycle`
}

// --- fixed variants: silent ---

// RoundTrip is the straight-line discipline.
func (s *Sched) RoundTrip() int {
	res := s.Take()
	n := observe(res) // a borrow: the callee may look, obligation stays
	s.Recycle(res)
	return n
}

// DeferredRecycle releases on the way out, whatever path returns.
func (s *Sched) DeferredRecycle(bad bool) (int, error) {
	res := s.Take()
	defer s.Recycle(res)
	if bad {
		return 0, errors.New("no work")
	}
	return res.N, nil
}

// BothArms releases on every branch.
func (s *Sched) BothArms(fast bool) {
	res := s.Take()
	if fast {
		s.Recycle(res)
	} else {
		res.N++
		s.Recycle(res)
	}
}

// Inline releases a fresh result in the same expression (the mauid
// daemon's Recycle(Iterate(...)) shape).
func (s *Sched) Inline() {
	s.Recycle(s.Take())
}

// Handoff transfers the obligation to the caller.
func (s *Sched) Handoff() *Result {
	return s.Take()
}

// Publish escapes the result into a field; the release happens later,
// elsewhere.
func (s *Sched) Publish() {
	s.last = s.Take()
}

// Captured escapes the result into a closure.
func (s *Sched) Captured() func() {
	res := s.Take()
	return func() { s.Recycle(res) }
}

// LoopBody releases every iteration's result before acquiring the
// next.
func (s *Sched) LoopBody(rounds int) int {
	total := 0
	for i := 0; i < rounds; i++ {
		res := s.Take()
		total += res.N
		s.Recycle(res)
	}
	return total
}

// Suppressed documents why the apparent leak is fine. The leak is
// reported at the acquisition site, so the directive rides there.
func (s *Sched) Suppressed() {
	res := s.Take() //lint:poollife the test harness recycles via Sched teardown
	_ = res.N
}
