// Package atomicfield enforces all-or-nothing atomicity on struct
// fields: a field that is accessed through sync/atomic anywhere in a
// package must be accessed atomically *everywhere* in that package. A
// single plain load racing one atomic store is exactly the bug class
// the race detector only catches when a test happens to interleave —
// the daemons' hottest state (heartbeat counters, connection epochs,
// claim indices) moved onto atomics in the 10k-connection and 1M-user
// scale-ups, so the discipline is machine-checked.
//
// A field becomes *atomic* in one of two ways:
//
//   - its declaration carries the intent marker
//
//     seq int64 //schedlint:atomic
//
//   - some access in the package goes through a sync/atomic function
//     (atomic.LoadInt64(&s.seq), atomic.AddUint64, CompareAndSwap...).
//     Such a field must *also* carry the marker — the declaration is
//     where the next reader learns the protocol, and the marker is what
//     exempts the field from sharedguard's multi-writer check.
//
// Fields whose type already is one of the sync/atomic wrapper types
// (atomic.Int64, atomic.Uint64, atomic.Bool, ...) are intrinsically
// atomic: the methods are the only way in, so nothing is checked (and
// no marker is needed).
//
// Checks on plain-typed atomic fields:
//
//   - every other read or write of the field — a selector outside an
//     atomic call's address argument — is a finding. Constructor
//     initialization of a provably fresh, unpublished object is exempt
//     (nobody can race with a struct that has not escaped yet).
//   - 64-bit fields (int64/uint64) must be 64-bit aligned under
//     GOARCH=386 struct layout: sync/atomic's 64-bit operations fault
//     or silently tear on 32-bit platforms when the address is only
//     4-byte aligned. The analyzer computes the field's offset with
//     the 386 size model and flags any field at offset % 8 != 0 —
//     place the field first (the repo's convention) or switch to
//     atomic.Int64, whose layout trick guarantees alignment anywhere.
//
// Findings can be suppressed with `//lint:atomic <reason>`; the
// canonical exemption is a plain read in a function documented to run
// strictly before publication or after the last writer is joined.
package atomicfield

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/dataflow"
)

// Analyzer is the atomicfield check.
var Analyzer = &analysis.Analyzer{
	Name:      "atomicfield",
	Doc:       "fields accessed through sync/atomic must be accessed atomically everywhere, declared //schedlint:atomic, and 64-bit aligned for GOARCH=386",
	Directive: "atomic",
	Tests:     true,
	Run:       run,
}

// MarkerKey is the declaration marker consumed here and trusted by
// sharedguard as a guard declaration.
const MarkerKey = "atomic"

// IsAtomicType reports whether t (after pointer unwrapping) is one of
// the sync/atomic wrapper types, whose methods are the only access
// path.
func IsAtomicType(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync/atomic"
}

// field carries what the analyzer learned about one tracked field.
type field struct {
	v       *types.Var
	marked  bool      // declaration carries the schedlint:atomic marker
	width64 bool      // some atomic access used a ...64 function, or the type is int64/uint64
	atomPos token.Pos // one atomic access site, as the witness for the missing-marker report
}

func run(pass *analysis.Pass) error {
	fields := map[*types.Var]*field{}
	track := func(v *types.Var) *field {
		f := fields[v]
		if f == nil {
			f = &field{v: v}
			fields[v] = f
		}
		return f
	}

	// Declared intent.
	for _, fm := range dataflow.FieldMarkers(pass.Files, pass.TypesInfo, MarkerKey) {
		if IsAtomicType(fm.Field.Type()) {
			pass.Reportf(fm.Pos, "field %s already has a sync/atomic type; the //schedlint:atomic marker is for plain-typed fields accessed via the atomic functions", fm.Field.Name())
			continue
		}
		f := track(fm.Field)
		f.marked = true
	}

	// Observed atomic accesses: &x.f as the address argument of a
	// sync/atomic call. Collect the selector nodes consumed this way so
	// the plain-access walk below can skip them.
	atomicArg := map[*ast.SelectorExpr]bool{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := dataflow.CalledFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" || len(call.Args) == 0 {
				return true
			}
			u, ok := ast.Unparen(call.Args[0]).(*ast.UnaryExpr)
			if !ok || u.Op != token.AND {
				return true
			}
			sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			atomicArg[sel] = true
			f := track(v)
			if !f.atomPos.IsValid() {
				f.atomPos = call.Pos()
			}
			if strings.HasSuffix(fn.Name(), "64") {
				f.width64 = true
			}
			return true
		})
	}

	if len(fields) == 0 {
		return nil
	}
	for _, f := range fields {
		if isWord64(f.v.Type()) {
			f.width64 = true
		}
	}

	// An atomically-accessed field must declare the protocol on its
	// declaration line.
	for _, f := range fields {
		if !f.marked && f.atomPos.IsValid() {
			pass.Reportf(f.atomPos, "field %s is accessed atomically here but its declaration does not carry //schedlint:atomic; declare the protocol on the field", f.v.Name())
		}
	}

	// Every remaining selector touching a tracked field is a plain
	// access: a read or write racing the atomic protocol.
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if atomicArg[sel] {
				return true
			}
			s := pass.TypesInfo.Selections[sel]
			if s == nil || s.Kind() != types.FieldVal {
				return true
			}
			v, ok := s.Obj().(*types.Var)
			if !ok {
				return true
			}
			f := fields[v]
			if f == nil {
				return true
			}
			// Constructor initialization of a fresh, unpublished object
			// cannot race anything.
			if path := dataflow.SelectorPath(pass.TypesInfo, sel); len(path) > 0 &&
				dataflow.FreshLocal(pass.Files, pass.TypesInfo, pass.Pkg, path[0]) {
				return true
			}
			pass.Reportf(sel.Pos(), "plain access to atomic field %s (all reads and writes must go through sync/atomic); use the atomic functions, an atomic.%s field, or annotate //lint:atomic <reason>", v.Name(), suggestType(v.Type()))
			return true
		})
	}

	check386Alignment(pass, fields)
	return nil
}

// isWord64 reports whether t is a 64-bit integer type.
func isWord64(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	if !ok {
		return false
	}
	switch b.Kind() {
	case types.Int64, types.Uint64:
		return true
	}
	return false
}

// suggestType names the sync/atomic wrapper matching a plain field
// type, for the finding message.
func suggestType(t types.Type) string {
	if b, ok := t.Underlying().(*types.Basic); ok {
		switch b.Kind() {
		case types.Int32:
			return "Int32"
		case types.Int64:
			return "Int64"
		case types.Uint32:
			return "Uint32"
		case types.Uint64:
			return "Uint64"
		case types.Uintptr:
			return "Uintptr"
		case types.Bool:
			return "Bool"
		}
	}
	return "Value"
}

// check386Alignment verifies that every 64-bit atomic field is 8-byte
// aligned under the GOARCH=386 size model. On 386 the maximum natural
// alignment is 4 bytes, so an int64 field lands on an 8-byte boundary
// only when every preceding field's size happens to sum to a multiple
// of 8 — the analyzer computes the real offsets instead of guessing.
// (The wrapper types atomic.Int64/Uint64 self-align and never get
// here.)
func check386Alignment(pass *analysis.Pass, fields map[*types.Var]*field) {
	sizes := types.SizesFor("gc", "386")
	if sizes == nil {
		return
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			tv, ok := pass.TypesInfo.Types[st]
			if !ok {
				return true
			}
			s, ok := tv.Type.(*types.Struct)
			if !ok {
				return true
			}
			var vars []*types.Var
			for i := 0; i < s.NumFields(); i++ {
				vars = append(vars, s.Field(i))
			}
			if len(vars) == 0 {
				return true
			}
			offsets := sizes.Offsetsof(vars)
			for i, v := range vars {
				f := fields[v]
				if f == nil || !f.width64 {
					continue
				}
				if offsets[i]%8 != 0 {
					pass.Reportf(v.Pos(), "64-bit atomic field %s is at offset %d under GOARCH=386 layout; 64-bit atomics fault on 32-bit platforms unless the field is 8-byte aligned — move it to the front of the struct or use atomic.%s", v.Name(), offsets[i], suggestType(v.Type()))
				}
			}
			return true
		})
	}
}
