// Package ring is the atomicfield golden fixture: a cut-down
// lock-free ring in the shape of serverd's beacon ring, seeded with
// the violations the analyzer must catch and the annotated forms that
// must stay silent.
package ring

import "sync/atomic"

// ring mixes declared atomics, an undeclared atomic, and a misaligned
// 64-bit field.
type ring struct {
	// head is the producer cursor; aligned (offset 0) and declared.
	head uint64 //schedlint:atomic
	pad  int32
	// misal sits at offset 12 under 386 layout: 64-bit atomics would
	// fault or tear there.
	misal int64 //schedlint:atomic // want `64-bit atomic field misal is at offset 12 under GOARCH=386`
	pad2  int32
	// undeclared is accessed atomically below but carries no marker;
	// it sits at offset 24, so only the marker finding fires.
	undeclared int64
	// wrapped needs no marker: the type is the protocol.
	wrapped atomic.Uint64
}

// marked on a wrapper type is itself a finding.
type doubly struct {
	n atomic.Int64 //schedlint:atomic // want `already has a sync/atomic type`
}

func newRing() *ring {
	r := &ring{}
	// Fresh-local constructor writes are unpublished and exempt.
	r.head = 0
	r.misal = 0
	return r
}

func (r *ring) push() {
	atomic.AddUint64(&r.head, 1)
	atomic.AddInt64(&r.undeclared, 1) // want `accessed atomically here but its declaration does not carry //schedlint:atomic`
	r.wrapped.Add(1)
}

func (r *ring) sweepBroken() uint64 {
	return r.head // want `plain access to atomic field head`
}

func (r *ring) sweepFixed() uint64 {
	return atomic.LoadUint64(&r.head)
}

func (r *ring) storeBroken(v int64) {
	r.misal = v // want `plain access to atomic field misal`
}

func (r *ring) auditedSnapshot() uint64 {
	//lint:atomic caller holds the producers quiesced during snapshot
	return r.head
}
