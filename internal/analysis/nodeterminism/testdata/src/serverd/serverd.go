// Package serverd is a golden-test stand-in for a live daemon
// package: wall-clock calls are flagged but may be annotated with
// //lint:wallclock when the path is genuinely wall-clock.
package serverd

import (
	"math/rand"
	"time"
)

func uptimeAllowed() time.Time {
	return time.Now() //lint:wallclock daemon uptime is genuinely wall-clock
}

//lint:wallclock this whole helper services real TCP timeouts
func timeoutHelper(d time.Duration) {
	time.Sleep(d)
	_ = time.Now()
}

func unannotated() {
	time.Sleep(time.Millisecond)           // want `wall-clock call time\.Sleep; route through internal/clock`
	time.AfterFunc(time.Second, func() {}) // want `wall-clock call time\.AfterFunc`
}

func globalRandStillFlagged() int {
	return rand.Intn(4) // want `global math/rand\.Intn draws from the process-wide source`
}

func globalRandAnnotated() int {
	return rand.Intn(4) //lint:wallclock jitter on a reconnect path, not sim-driven
}
