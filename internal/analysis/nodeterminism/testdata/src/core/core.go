// Package core is a golden-test stand-in for a sim-driven package:
// wall-clock and global-rand calls are hard errors here and the
// wallclock directive is itself rejected.
package core

import (
	"math/rand"
	"time"
)

func bad() time.Time {
	t := time.Now()                    // want `wall-clock call time\.Now in sim-driven package core`
	time.Sleep(time.Second)            // want `wall-clock call time\.Sleep in sim-driven package core`
	_ = time.Since(t)                  // want `wall-clock call time\.Since in sim-driven package core`
	_ = rand.Intn(4)                   // want `global math/rand\.Intn draws from the process-wide source`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand\.Shuffle draws from the process-wide source`
	return t
}

func seeded() int {
	rng := rand.New(rand.NewSource(1)) // explicitly seeded: fine
	return rng.Intn(4)
}

func conversionsAreFine(d time.Duration) float64 {
	return d.Seconds() + float64(5*time.Millisecond)
}

//lint:wallclock not allowed here // want `//lint:wallclock is not allowed in sim-driven package core`
func directiveRejected() {
	time.Sleep(time.Millisecond) // want `wall-clock call time\.Sleep in sim-driven package core`
}
