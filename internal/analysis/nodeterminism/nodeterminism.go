// Package nodeterminism flags wall-clock and global-randomness use in
// packages that must be bit-deterministic.
//
// The scheduler and the discrete-event substrate reproduce the paper's
// Table II only because every run is exactly repeatable: all time
// flows from the virtual clock (sim.Time) and all randomness from
// explicitly seeded *rand.Rand values. A single time.Now() or global
// rand.Intn() silently breaks that property. This analyzer enforces
// it mechanically:
//
//   - in the sim-driven packages (core, profile, sim, cluster, esp,
//     quadflow, workload, fairness, rms, and the pure data/format
//     packages they feed: job, metrics, trace, config, experiments)
//     any call to the wall clock (time.Now, time.Sleep, time.After,
//     timers, ...) or to a global math/rand function is an error, and
//     the //lint:wallclock directive is itself rejected — these
//     packages have no legitimate wall-clock path;
//   - in the live daemon packages (serverd, mauid, mom, proto, tm,
//     clock) the same calls are flagged but may be annotated with
//     `//lint:wallclock <reason>` where the path is genuinely
//     wall-clock (daemon timeouts, uptime, socket deadlines).
//
// Package main binaries and examples are exempt.
package nodeterminism

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the nodeterminism check.
var Analyzer = &analysis.Analyzer{
	Name:      "nodeterminism",
	Doc:       "flags wall-clock time and global math/rand use in deterministic packages",
	Directive: "wallclock",
	Run:       run,
}

// strictPkgs never touch the wall clock; the directive is rejected.
var strictPkgs = map[string]bool{
	"core": true, "profile": true, "sim": true, "cluster": true,
	"esp": true, "quadflow": true, "workload": true, "fairness": true,
	"rms": true, "job": true, "metrics": true, "trace": true,
	"config": true, "experiments": true, "backoff": true,
	"campaign": true, "arena": true, "fairtree": true,
	// The analyzers themselves must be deterministic: SARIF output and
	// golden fixtures are diffed byte-for-byte in CI.
	"dataflow": true, "epochguard": true, "poollife": true,
	"arenasafe": true,
}

// daemonPkgs may annotate genuinely wall-clock paths.
var daemonPkgs = map[string]bool{
	"serverd": true, "mauid": true, "mom": true,
	"proto": true, "tm": true, "clock": true, "chaos": true,
}

// wallClockFuncs are the package-level time functions that read or
// wait on the wall clock. Pure conversions (time.Duration arithmetic,
// d.Milliseconds(), ...) are fine.
var wallClockFuncs = map[string]bool{
	"Now": true, "Sleep": true, "Since": true, "Until": true,
	"After": true, "Tick": true, "AfterFunc": true,
	"NewTimer": true, "NewTicker": true,
}

// allowedRandFuncs construct explicitly seeded generators; everything
// else at package level draws from the process-global source.
var allowedRandFuncs = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true,
	"NewChaCha8": true,
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func run(pass *analysis.Pass) error {
	name := lastElem(pass.Pkg.Path())
	strict := strictPkgs[name]
	if !strict && !daemonPkgs[name] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			pkgPath, fn := pkgFunc(pass, call)
			switch {
			case pkgPath == "time" && wallClockFuncs[fn]:
				if strict {
					// Findings in sim-driven packages cannot be silenced
					// by the wallclock directive.
					pass.Report(analysis.Diagnostic{
						Pos:            call.Pos(),
						Message:        fmt.Sprintf("wall-clock call time.%s in sim-driven package %s; use the virtual clock (sim.Time / sim.Engine)", fn, name),
						Unsuppressable: true,
					})
				} else {
					pass.Reportf(call.Pos(), "wall-clock call time.%s; route through internal/clock or annotate //lint:wallclock <reason>", fn)
				}
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !allowedRandFuncs[fn]:
				pass.Report(analysis.Diagnostic{
					Pos:            call.Pos(),
					Message:        fmt.Sprintf("global %s.%s draws from the process-wide source; thread an explicitly seeded *rand.Rand", pkgPath, fn),
					Unsuppressable: strict,
				})
			}
			return true
		})
	}
	if strict {
		for _, d := range analysis.Directives(pass.Fset, pass.Files) {
			if d.Name == "wallclock" {
				pass.Report(analysis.Diagnostic{
					Pos:            directivePos(pass, d),
					Message:        "//lint:wallclock is not allowed in sim-driven package " + name + "; these packages must stay bit-deterministic",
					Unsuppressable: true,
				})
			}
		}
	}
	return nil
}

// directivePos maps a directive's file position back to a token.Pos
// for reporting.
func directivePos(pass *analysis.Pass, d analysis.Directive) token.Pos {
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				p := pass.Fset.Position(c.Pos())
				if p.Filename == d.Pos.Filename && p.Line == d.Pos.Line && p.Column == d.Pos.Column {
					return c.Pos()
				}
			}
		}
	}
	return pass.Files[0].Pos()
}

// pkgFunc resolves a call of the form pkg.Fn(...) to its package path
// and function name; empty strings otherwise.
func pkgFunc(pass *analysis.Pass, call *ast.CallExpr) (string, string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", ""
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", ""
	}
	return pn.Imported().Path(), sel.Sel.Name
}
