package nodeterminism_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/nodeterminism"
)

func TestNodeterminism(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(t), nodeterminism.Analyzer, "core", "serverd")
}
