// Package serverd is the lockcheck golden fixture, shaped after the
// live server daemon: a heartbeat/failure monitor, per-node verdict
// buffers replayed on re-registration, and negotiation-deadline timer
// callbacks. Each discipline violation the analyzer must catch sits
// next to the conforming shape that must stay silent.
package serverd

import (
	"sort"
	"sync"
	"time"
)

// nodeInfo mirrors one registered mom.
type nodeInfo struct {
	addr     string
	lastSeen int64
	verdicts []string
}

// jobInfo is the server-side record of one job.
type jobInfo struct {
	msNode   string
	negTimer *time.Timer
}

type server struct {
	mu    sync.RWMutex
	nodes map[string]*nodeInfo // guarded by mu
	jobs  map[int]*jobInfo     // guarded by mu
	// addr is set once in the constructor and read-only afterwards.
	addr string

	wg     sync.WaitGroup
	closed chan struct{}
}

func newServer() *server {
	// Composite-literal initialization happens before the server is
	// shared: no lock needed, and no finding.
	return &server{
		nodes:  make(map[string]*nodeInfo),
		jobs:   make(map[int]*jobInfo),
		addr:   "addr",
		closed: make(chan struct{}),
	}
}

// monitorLoop is the failure-detector shape: tick, then sweep nodes
// under the lock. Clean.
func (s *server) monitorLoop(interval time.Duration, window int64) {
	defer s.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
		}
		s.mu.Lock()
		names := make([]string, 0, len(s.nodes))
		for name := range s.nodes {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			ni := s.nodes[name]
			if ni.lastSeen < window {
				s.failNodeLocked(ni)
			}
		}
		s.mu.Unlock()
	}
}

// markSeen forgot the lock on the heartbeat hot path.
func (s *server) markSeen(name string, now int64) {
	s.nodes[name].lastSeen = now // want `access to s\.nodes \(guarded by mu\) in markSeen without s\.mu held`
}

// markSeenFixed is the corrected shape.
func (s *server) markSeenFixed(name string, now int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nodes[name].lastSeen = now
}

// statNodes takes only the read lock: sufficient. Clean.
func (s *server) statNodes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.nodes)
}

// failNodeLocked runs with s.mu held: *Locked convention. Clean.
func (s *server) failNodeLocked(ni *nodeInfo) {
	ni.verdicts = nil
}

// replayVerdictsLocked drains a node's buffered verdicts on
// re-registration; the caller holds s.mu. Clean.
func (s *server) replayVerdictsLocked(ni *nodeInfo) []string {
	pending := ni.verdicts
	ni.verdicts = nil
	_ = s.nodes
	return pending
}

// bufferVerdict leaks the lock on the buffering path: an early return
// shape where the Unlock never made it in.
func (s *server) bufferVerdict(name, verdict string) {
	s.mu.Lock() // want `s\.mu\.Lock\(\) in bufferVerdict without a matching Unlock in the same function`
	ni := s.nodes[name]
	ni.verdicts = append(ni.verdicts, verdict)
}

// statLeaky holds the read lock forever.
func (s *server) statLeaky() int {
	s.mu.RLock() // want `s\.mu\.RLock\(\) in statLeaky without a matching RUnlock in the same function`
	return len(s.jobs)
}

// multiPathUnlock releases on every path. Clean.
func (s *server) multiPathUnlock(id int) string {
	s.mu.Lock()
	ji := s.jobs[id]
	if ji == nil {
		s.mu.Unlock()
		return ""
	}
	v := ji.msNode
	s.mu.Unlock()
	return v
}

// armNegTimer: the AfterFunc callback runs on the timer goroutine —
// it does not inherit the caller's critical section and must lock
// itself.
func (s *server) armNegTimer(id int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ji := s.jobs[id]
	ji.negTimer = time.AfterFunc(d, func() {
		delete(s.jobs, id) // want `access to s\.jobs \(guarded by mu\) in armNegTimer \(func literal\) without s\.mu held`
	})
}

// armNegTimerFixed is the corrected callback.
func (s *server) armNegTimerFixed(id int, d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ji := s.jobs[id]
	ji.negTimer = time.AfterFunc(d, func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		delete(s.jobs, id)
	})
}

// bootSweep is single-threaded by construction and says so.
func (s *server) bootSweep() {
	//lint:locked called only from the single-threaded boot path
	s.jobs = make(map[int]*jobInfo)
}

// unguardedIsFine reads the constructor-only field. Clean.
func (s *server) unguardedIsFine() string {
	return s.addr
}
