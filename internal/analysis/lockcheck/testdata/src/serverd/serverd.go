// Package serverd is a golden-test stand-in for a daemon package with
// a documented locking discipline.
package serverd

import "sync"

type server struct {
	mu   sync.RWMutex
	jobs map[int]string // guarded by mu
	// addr is set once in the constructor and read-only afterwards.
	addr string
}

func newServer() *server {
	// Composite-literal initialization happens before the server is
	// shared: no lock needed, and no finding.
	return &server{jobs: make(map[int]string), addr: "addr"}
}

func (s *server) good(id int) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *server) goodRead(id int) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.jobs[id]
}

func (s *server) bad(id int) string {
	return s.jobs[id] // want `access to s\.jobs \(guarded by mu\) in bad without s\.mu held`
}

func (s *server) lookupLocked(id int) string {
	return s.jobs[id] // caller holds s.mu: *Locked convention
}

func (s *server) annotated(id int) string {
	//lint:locked called only from the single-threaded boot path
	return s.jobs[id]
}

func (s *server) unguardedIsFine() string {
	return s.addr
}

func (s *server) leaky() {
	s.mu.Lock() // want `s\.mu\.Lock\(\) in leaky without a matching Unlock in the same function`
	s.jobs[1] = "x"
}

func (s *server) rleaky() string {
	s.mu.RLock() // want `s\.mu\.RLock\(\) in rleaky without a matching RUnlock in the same function`
	return s.jobs[1]
}

func (s *server) multiPathUnlock(id int) string {
	s.mu.Lock()
	if id < 0 {
		s.mu.Unlock()
		return ""
	}
	v := s.jobs[id]
	s.mu.Unlock()
	return v
}

func (s *server) closureMustLockItself() {
	go func() {
		s.jobs[2] = "y" // want `access to s\.jobs \(guarded by mu\) in closureMustLockItself \(func literal\) without s\.mu held`
	}()
}

func (s *server) closureLocksItself() {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.jobs[2] = "y"
	}()
}
