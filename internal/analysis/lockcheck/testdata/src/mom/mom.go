// Package mom is the lockcheck golden fixture for the node daemon: the
// server-link accessor, the must-deliver outbox with its replay path,
// and the connection-handling goroutines.
package mom

import "sync"

type conn struct{ addr string }

func (c *conn) send(t string, payload any) error { return nil }

type outMsg struct {
	t     string
	jobID int
}

type mom struct {
	mu     sync.Mutex
	srv    *conn          // guarded by mu: current server link
	jobs   map[int]string // guarded by mu
	outbox []outMsg       // guarded by mu: undelivered completions awaiting replay
	wg     sync.WaitGroup
}

// server is the accessor shape: one field read under the lock. Clean.
func (m *mom) server() *conn {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.srv
}

// tellServerBuffered parks undeliverable completions on the outbox,
// appending under the lock. Clean.
func (m *mom) tellServerBuffered(t string, jobID int, payload any) {
	if srv := m.server(); srv != nil {
		if err := srv.send(t, payload); err == nil {
			return
		}
	}
	m.mu.Lock()
	m.outbox = append(m.outbox, outMsg{t: t, jobID: jobID})
	m.mu.Unlock()
}

// tellServerRacy skips the lock on the buffering path.
func (m *mom) tellServerRacy(t string, jobID int) {
	// Both the write and the read of m.outbox on this line are flagged.
	m.outbox = append(m.outbox, outMsg{t: t, jobID: jobID}) // want `access to m\.outbox \(guarded by mu\) in tellServerRacy without m\.mu held` `access to m\.outbox \(guarded by mu\) in tellServerRacy without m\.mu held`
}

// flushOutbox swaps the buffer out under the lock, replays outside it,
// and re-queues failures under the lock again. Clean.
func (m *mom) flushOutbox(c *conn) {
	m.mu.Lock()
	pending := m.outbox
	m.outbox = nil
	m.mu.Unlock()
	for i, om := range pending {
		if err := c.send(om.t, nil); err != nil {
			m.mu.Lock()
			m.outbox = append(pending[i:], m.outbox...)
			m.mu.Unlock()
			return
		}
	}
}

// completionLoop: a spawned worker does not inherit its creator's
// critical section.
func (m *mom) completionLoop(id int) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		delete(m.jobs, id) // want `access to m\.jobs \(guarded by mu\) in completionLoop \(func literal\) without m\.mu held`
	}()
}

// completionLoopFixed locks inside the goroutine. Clean.
func (m *mom) completionLoopFixed(id int) {
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		m.mu.Lock()
		defer m.mu.Unlock()
		delete(m.jobs, id)
	}()
}

// reconcileLocked runs with m.mu held by the caller. Clean.
func (m *mom) reconcileLocked() int {
	return len(m.jobs) + len(m.outbox)
}

// dropOutboxLeaky never releases the lock.
func (m *mom) dropOutboxLeaky() {
	m.mu.Lock() // want `m\.mu\.Lock\(\) in dropOutboxLeaky without a matching Unlock in the same function`
	m.outbox = nil
}
