// Package lockcheck enforces the documented locking discipline of the
// daemon packages (serverd, mom, mauid, rms). Struct fields annotated
//
//	foo map[int]*Job // guarded by mu
//
// must only be touched by functions that acquire that mutex on the
// same receiver (x.mu.Lock() or x.mu.RLock(), directly or deferred).
// Helper functions that run with the lock already held follow the
// *Locked naming convention (killLocked), which the analyzer honours;
// anything else needs a `//lint:locked <reason>` directive.
//
// Independently, any function that calls X.Lock() without a matching
// X.Unlock() (or the RLock/RUnlock pair) in the same function is
// flagged: lock handoff across function boundaries is disallowed in
// the daemons.
//
// Function literals are analyzed as separate functions: a goroutine or
// timer callback must take the lock itself, it does not inherit the
// critical section of the function that created it.
package lockcheck

import (
	"go/ast"
	"go/types"
	"regexp"
	"sort"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the lockcheck check.
var Analyzer = &analysis.Analyzer{
	Name:      "lockcheck",
	Doc:       "checks `// guarded by mu` field annotations and Lock/Unlock pairing in daemon packages",
	Directive: "locked",
	Run:       run,
}

// daemonPkgs are the packages with a locking discipline to enforce.
var daemonPkgs = map[string]bool{
	"serverd": true, "mom": true, "mauid": true, "rms": true, "chaos": true,
}

// guardedRe accepts two forms. `guarded by mu` names a sibling mutex:
// the required lock is <same receiver expression>.mu. `guarded by
// s.mu` — a dotted path — names the mutex by its habitual rendered
// expression, for record structs (a jobInfo held in the server's map)
// protected by their container's lock rather than one of their own.
var guardedRe = regexp.MustCompile(`guarded by ([\w.]+)`)

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func run(pass *analysis.Pass) error {
	if !daemonPkgs[lastElem(pass.Pkg.Path())] {
		return nil
	}
	guarded := collectGuardedFields(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, guarded, fd.Name.Name, fd.Body)
		}
	}
	return nil
}

// collectGuardedFields maps annotated struct fields to the name of the
// mutex that guards them.
func collectGuardedFields(pass *analysis.Pass) map[*types.Var]string {
	out := make(map[*types.Var]string)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				mu := guardAnnotation(field)
				if mu == "" {
					continue
				}
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						out[v] = mu
					}
				}
			}
			return true
		})
	}
	return out
}

func guardAnnotation(field *ast.Field) string {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		if m := guardedRe.FindStringSubmatch(cg.Text()); m != nil {
			return m[1]
		}
	}
	return ""
}

// lockOp is one Lock-family call on a rendered mutex expression
// ("s.mu").
type lockOp struct {
	expr string
	op   string // Lock, Unlock, RLock, RUnlock, TryLock
	pos  ast.Node
}

// checkFunc analyzes one function body, excluding nested function
// literals (each is checked on its own).
func checkFunc(pass *analysis.Pass, guarded map[*types.Var]string, name string, body *ast.BlockStmt) {
	var ops []lockOp
	var accesses []*ast.SelectorExpr
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			if n.Body != body {
				checkFunc(pass, guarded, name+" (func literal)", n.Body)
				return false
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Lock", "Unlock", "RLock", "RUnlock", "TryLock":
					ops = append(ops, lockOp{expr: types.ExprString(sel.X), op: sel.Sel.Name, pos: n})
				}
			}
		case *ast.SelectorExpr:
			accesses = append(accesses, n)
		}
		return true
	})

	held := make(map[string]bool)
	for _, op := range ops {
		if op.op == "Lock" || op.op == "RLock" || op.op == "TryLock" {
			held[op.expr] = true
		}
	}

	// Lock/Unlock pairing per mutex expression.
	for _, mu := range sortedKeys(held) {
		var locks, unlocks, rlocks, runlocks int
		for _, op := range ops {
			if op.expr != mu {
				continue
			}
			switch op.op {
			case "Lock", "TryLock":
				locks++
			case "Unlock":
				unlocks++
			case "RLock":
				rlocks++
			case "RUnlock":
				runlocks++
			}
		}
		report := func(kind string) {
			for _, op := range ops {
				if op.expr == mu && (op.op == kind || (kind == "Lock" && op.op == "TryLock")) {
					pass.Reportf(op.pos.Pos(), "%s.%s() in %s without a matching %sUnlock in the same function; lock handoff across functions is disallowed", mu, op.op, name, map[string]string{"Lock": "", "RLock": "R"}[kind])
					return
				}
			}
		}
		if locks > 0 && unlocks == 0 {
			report("Lock")
		}
		if rlocks > 0 && runlocks == 0 {
			report("RLock")
		}
	}

	// Guarded field accesses.
	if strings.HasSuffix(name, "Locked") || strings.Contains(name, "Locked (func literal)") {
		return
	}
	for _, sel := range accesses {
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			continue
		}
		v, ok := s.Obj().(*types.Var)
		if !ok {
			continue
		}
		mu, ok := guarded[v]
		if !ok {
			continue
		}
		// A dotted annotation names the lock expression verbatim; a bare
		// one names a sibling field of the same receiver.
		need := mu
		if !strings.Contains(mu, ".") {
			need = types.ExprString(sel.X) + "." + mu
		}
		if !held[need] {
			pass.Reportf(sel.Pos(), "access to %s (guarded by %s) in %s without %s held; lock it, rename the helper to ...Locked, or annotate //lint:locked <reason>", types.ExprString(sel), mu, name, need)
		}
	}
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
