// Package analysistest runs an analyzer over golden test packages and
// checks its diagnostics against `// want` expectations, mirroring the
// x/tools package of the same name on top of the repo's own loader.
//
// Test packages live under testdata/src/<importpath>/ and may import
// each other GOPATH-style (and the standard library). Expected
// findings are declared on the offending line:
//
//	time.Sleep(d) // want `wall-clock call`
//
// Every expectation is a regular expression that must match exactly
// one diagnostic reported on that line, and every diagnostic must be
// matched by an expectation. Suppression directives (`//lint:...`) are
// applied before matching, so a test line carrying a directive and no
// `want` asserts that the directive silences the finding.
package analysistest

import (
	"fmt"
	"go/ast"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/analysis/loader"
)

// TestData returns the absolute path of the calling test's testdata
// directory.
func TestData(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs("testdata")
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

type expectation struct {
	re      *regexp.Regexp
	matched bool
}

// Run loads each package from testdata/src and applies the analyzer,
// comparing findings against the package's want-comments.
func Run(t *testing.T, testdata string, a *analysis.Analyzer, pkgpaths ...string) {
	t.Helper()
	l := loader.New()
	l.LocalRoot = filepath.Join(testdata, "src")
	for _, path := range pkgpaths {
		pkg, err := l.LoadPath(path)
		if err != nil {
			t.Errorf("load %s: %v", path, err)
			continue
		}
		for _, e := range pkg.ParseErrors {
			t.Errorf("%s: parse: %v", path, e)
		}
		for _, e := range pkg.TypeErrors {
			t.Errorf("%s: type: %v", path, e)
		}
		target := pkg.Target()
		target.Dep = l.DepResolver()
		findings, err := analysis.RunAnalyzers(target, []*analysis.Analyzer{a})
		if err != nil {
			t.Errorf("run %s on %s: %v", a.Name, path, err)
			continue
		}
		wants := collectWants(t, pkg)
		for _, f := range findings {
			key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
			if !consume(wants[key], f.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", key, f.Message)
			}
		}
		for key, exps := range wants {
			for _, e := range exps {
				if !e.matched {
					t.Errorf("%s: expected diagnostic matching %q, got none", key, e.re)
				}
			}
		}
	}
}

func consume(exps []*expectation, msg string) bool {
	for _, e := range exps {
		if !e.matched && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// wantRe pulls the quoted patterns out of a want comment: both
// `backquoted` and "double-quoted" forms are accepted.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

func collectWants(t *testing.T, pkg *loader.Package) map[string][]*expectation {
	t.Helper()
	out := make(map[string][]*expectation)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range comments(cg) {
				text := strings.TrimPrefix(c.Text, "//")
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
				for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					out[key] = append(out[key], &expectation{re: re})
				}
			}
		}
	}
	return out
}

func comments(cg *ast.CommentGroup) []*ast.Comment { return cg.List }
