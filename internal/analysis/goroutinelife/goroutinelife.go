// Package goroutinelife enforces the goroutine lifecycle contract in
// the deterministic and daemon packages: every `go` statement must
// have a provable shutdown path, so no daemon leaks goroutines across
// a Close and no simulation run leaves background work behind.
//
// A spawned function passes when it — or anything it synchronously
// calls, transitively through the package callgraph — does one of:
//
//   - joins a sync.WaitGroup (a call to (*sync.WaitGroup).Done, the
//     `wg.Add(1); go func(){ defer wg.Done(); ... }()` idiom: whoever
//     Waits owns the join);
//   - observes a shutdown signal: receives from (or selects on, or
//     ranges over) a channel whose name marks it as a lifecycle
//     channel (done, quit, stop, close/closed, exit, shutdown), or
//     checks a context (ctx.Done() / ctx.Err()).
//
// Anything else — including goroutines spawned onto external functions
// the analyzer cannot see into — is reported. Audited exceptions carry
// `//lint:goroutine <reason>` on or above the `go` statement (or on
// the enclosing function), e.g. a worker joined by a synchronous
// channel receive immediately below the spawn.
//
// The name-based channel heuristic is deliberate: it makes the
// lifecycle contract part of the code's vocabulary. A goroutine that
// is genuinely guarded by a channel named `c` does not pass review
// here — rename the channel so the guard is visible, or annotate why
// not.
package goroutinelife

import (
	"go/ast"
	"go/types"
	"regexp"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the goroutinelife check.
var Analyzer = &analysis.Analyzer{
	Name:      "goroutinelife",
	Doc:       "every go statement in deterministic/daemon packages needs a provable shutdown path (WaitGroup join, done-channel or context guard)",
	Directive: "goroutine",
	Run:       run,
}

// checkedPkgs is the union of the nodeterminism strict set and the
// daemon set: everywhere a leaked goroutine either breaks determinism
// or outlives a daemon Close.
var checkedPkgs = map[string]bool{
	// sim-driven
	"core": true, "profile": true, "sim": true, "cluster": true,
	"esp": true, "quadflow": true, "workload": true, "fairness": true,
	"rms": true, "job": true, "metrics": true, "trace": true,
	"config": true, "experiments": true, "backoff": true, "campaign": true,
	// daemons and their substrate
	"serverd": true, "mauid": true, "mom": true,
	"proto": true, "tm": true, "clock": true, "chaos": true,
}

// shutdownName marks lifecycle channels.
var shutdownName = regexp.MustCompile(`(?i)(done|quit|stop|clos|exit|shutdown)`)

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

func run(pass *analysis.Pass) error {
	if !checkedPkgs[lastElem(pass.Pkg.Path())] {
		return nil
	}
	g := callgraph.Build(pass)

	// Per-node base attributes, then a fixpoint over synchronous call
	// edges: a caller inherits its callees' join/guard properties.
	joined := make(map[*callgraph.Node]bool, len(g.Nodes))
	guarded := make(map[*callgraph.Node]bool, len(g.Nodes))
	for _, n := range g.Nodes {
		j, gu := baseAttrs(pass, n)
		joined[n] = j
		guarded[n] = gu
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			for _, e := range n.Calls {
				if joined[e.Callee] && !joined[n] {
					joined[n] = true
					changed = true
				}
				if guarded[e.Callee] && !guarded[n] {
					guarded[n] = true
					changed = true
				}
			}
		}
	}

	for _, n := range g.Nodes {
		for _, sp := range n.Spawns {
			callee := sp.Callee
			if callee == nil {
				pass.Reportf(sp.Stmt.Pos(), "goroutine spawned onto a function the analyzer cannot see into (external function or function value); prove its shutdown path or annotate //lint:goroutine <reason>")
				continue
			}
			if joined[callee] || guarded[callee] {
				continue
			}
			pass.Reportf(sp.Stmt.Pos(), "goroutine started in %s has no provable shutdown path: join it via a sync.WaitGroup, guard its loop with a done/quit channel or context check, or annotate //lint:goroutine <reason>", n.Name)
		}
	}
	return nil
}

// baseAttrs inspects one function body (excluding nested literals) for
// the two passing conditions.
func baseAttrs(pass *analysis.Pass, n *callgraph.Node) (joined, guarded bool) {
	body := n.Body()
	if body == nil {
		return false, false
	}
	ast.Inspect(body, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if n.Lit != x {
				return false
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Done":
					if isWaitGroup(pass, sel.X) {
						joined = true
					}
					if isContext(pass, sel.X) {
						guarded = true
					}
				case "Err":
					if isContext(pass, sel.X) {
						guarded = true
					}
				}
			}
		case *ast.UnaryExpr:
			// <-ch where ch is a lifecycle channel.
			if x.Op.String() == "<-" && isShutdownChan(pass, x.X) {
				guarded = true
			}
		case *ast.RangeStmt:
			if isShutdownChan(pass, x.X) {
				guarded = true
			}
		}
		return true
	})
	return joined, guarded
}

func isWaitGroup(pass *analysis.Pass, expr ast.Expr) bool {
	return typeIs(pass, expr, "sync.WaitGroup")
}

func isContext(pass *analysis.Pass, expr ast.Expr) bool {
	return typeIs(pass, expr, "context.Context")
}

func typeIs(pass *analysis.Pass, expr ast.Expr, name string) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	return t.String() == name
}

// isShutdownChan reports whether expr is a channel whose terminal name
// marks it as a lifecycle channel.
func isShutdownChan(pass *analysis.Pass, expr ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
		return false
	}
	var name string
	switch e := ast.Unparen(expr).(type) {
	case *ast.Ident:
		name = e.Name
	case *ast.SelectorExpr:
		name = e.Sel.Name
	case *ast.CallExpr:
		// ctx.Done() and friends are handled by the context check; a
		// method returning a lifecycle channel counts by method name.
		if sel, ok := e.Fun.(*ast.SelectorExpr); ok {
			name = sel.Sel.Name
		}
	}
	return name != "" && shutdownName.MatchString(name)
}
