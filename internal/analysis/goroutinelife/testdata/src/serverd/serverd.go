// Package serverd is the goroutinelife golden fixture: spawn sites
// with and without provable shutdown paths.
package serverd

import (
	"context"
	"sync"
)

// Server is the daemon singleton.
type Server struct {
	done chan struct{}
	jobs chan int
	wg   sync.WaitGroup
}

// --- orphan: the spawned loop drains jobs forever ---

func (s *Server) startOrphan() {
	go s.pump() // want `no provable shutdown path`
}

func (s *Server) pump() {
	for j := range s.jobs {
		_ = j
	}
}

// --- guarded: the loop selects on the lifecycle channel ---

func (s *Server) startGuarded() {
	go s.loop()
}

func (s *Server) loop() {
	for {
		select {
		case <-s.done:
			return
		case j := <-s.jobs:
			_ = j
		}
	}
}

// --- guarded transitively: the spawned function calls into a guarded one ---

func (s *Server) startIndirect() {
	go s.run()
}

func (s *Server) run() {
	s.loop()
}

// --- joined: the WaitGroup idiom ---

func (s *Server) startJoined() {
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for j := range s.jobs {
			_ = j
		}
	}()
}

// --- context-guarded literal ---

func startCtx(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case j := <-jobs:
				_ = j
			}
		}
	}()
}

// --- unresolvable: a spawned function value ---

func startExternal(f func()) {
	go f() // want `cannot see into`
}

// --- audited exception ---

func (s *Server) startAudited() {
	//lint:goroutine fixture: joined synchronously by the receive on the next line
	go s.pump()
	<-s.jobs
}
