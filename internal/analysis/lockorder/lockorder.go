// Package lockorder is the interprocedural deadlock check for the
// daemon packages. Where lockcheck (intraprocedural) enforces the
// guarded-field and Lock/Unlock-pairing discipline, lockorder follows
// held-lock sets *across* same-package calls on the callgraph and
// reports the two shapes a per-function check cannot see:
//
//   - self-deadlock: a path that re-acquires a mutex it already holds
//     (f locks s.mu and calls g, which — possibly transitively — locks
//     s.mu again; Go mutexes are not reentrant);
//   - lock-order cycles: mutex B acquired while A is held on one path
//     and A acquired while B is held on another, the classic ABBA
//     deadlock;
//   - declared-order violations: a package may pin its nesting order
//     with a `//schedlint:lockorder A < B < C` marker (outermost
//     first); any acquisition edge against that order is an error even
//     before a full cycle exists.
//
// Locks are identified by their declaration — a struct field
// (`Server.mu`) or a package-level var (`appMu`) of type sync.Mutex or
// sync.RWMutex — so two instances of the same struct share an
// identity. That is the right granularity for *ordering* (the
// discipline is per-field, not per-object) and matches the daemons,
// which are singletons; the README documents the approximation.
//
// Held sets are tracked in source order per function: Lock/RLock adds,
// a non-deferred Unlock/RUnlock removes, a deferred Unlock holds to
// function exit. TryLock acquires but never blocks, so it extends the
// held set without creating an acquisition edge. `go` statements are
// spawn points, not calls: held sets do not propagate into goroutines
// (the spawner releases its locks independently of the spawnee).
// Findings can be suppressed with `//lint:lockorder <reason>`.
package lockorder

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/callgraph"
)

// Analyzer is the lockorder check.
var Analyzer = &analysis.Analyzer{
	Name:      "lockorder",
	Doc:       "interprocedural mutex analysis: self-deadlocks, lock-order cycles, declared-order violations",
	Directive: "lockorder",
	Run:       run,
}

// checkedPkgs are the packages with concurrent daemon code worth the
// interprocedural pass (the same set lockcheck patrols, plus the
// substrate packages that own mutexes).
var checkedPkgs = map[string]bool{
	"serverd": true, "mom": true, "mauid": true, "rms": true,
	"chaos": true, "proto": true, "campaign": true, "clock": true,
	"tm": true,
}

func lastElem(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// lock is one mutex identity: the checker object of its declaration.
type lock struct {
	obj  *types.Var
	name string // rendered "Type.field" or "pkgvar"
}

// acq is one blocking acquisition inside a function.
type acq struct {
	lk  *lock
	pos token.Pos
}

// transAcq is one entry of a function's may-acquire closure.
type transAcq struct {
	lk  *lock
	pos token.Pos
}

// funcInfo is the per-node summary the fixpoint operates on.
type funcInfo struct {
	node *callgraph.Node
	// acquires: locks this function may block-acquire directly, in
	// source order with a witness position each.
	acquires []transAcq
	// calls: call edges annotated with the held set at the call site.
	calls []callSite
	// direct acquisition events with the held set at that point.
	acqs []acqEvent
	// transAcquires: fixpoint closure of acquires over callees, in
	// deterministic discovery order.
	transAcquires []transAcq
	transSeen     map[*lock]bool
}

type callSite struct {
	edge callgraph.Edge
	held []*lock
}

type acqEvent struct {
	a    acq
	held []*lock
}

func run(pass *analysis.Pass) error {
	if !checkedPkgs[lastElem(pass.Pkg.Path())] {
		return nil
	}
	locks := collectLocks(pass)
	if len(locks) == 0 {
		return nil
	}
	g := callgraph.Build(pass)
	infos := make(map[*callgraph.Node]*funcInfo, len(g.Nodes))
	for _, n := range g.Nodes {
		infos[n] = summarize(pass, locks, n)
	}
	closeAcquires(g, infos)

	order := declaredOrder(pass, locks)

	// Acquisition edges from→to (to block-acquired while from held),
	// deduplicated per lock pair, kept in discovery order — node slice
	// order × source order — so reports are deterministic.
	var edges []*orderEdge
	seen := make(map[[2]*lock]*orderEdge)
	addEdge := func(from, to *lock, pos token.Pos, via string) {
		k := [2]*lock{from, to}
		if seen[k] != nil {
			return
		}
		e := &orderEdge{from: from, to: to, pos: pos, via: via}
		seen[k] = e
		edges = append(edges, e)
	}

	for _, n := range g.Nodes {
		fi := infos[n]
		for _, ev := range fi.acqs {
			for _, h := range ev.held {
				if h == ev.a.lk {
					pass.Reportf(ev.a.pos, "%s re-acquired while already held in %s; Go mutexes are not reentrant — this deadlocks", h.name, n.Name)
					continue
				}
				addEdge(h, ev.a.lk, ev.a.pos, "")
			}
		}
		for _, cs := range fi.calls {
			callee := infos[cs.edge.Callee]
			if callee == nil {
				continue
			}
			for _, ta := range callee.transAcquires {
				for _, h := range cs.held {
					if h == ta.lk {
						pass.Reportf(cs.edge.Pos, "%s calls %s with %s held, and %s acquires %s again (at %s); Go mutexes are not reentrant — this deadlocks",
							n.Name, cs.edge.Callee.Name, h.name, cs.edge.Callee.Name, ta.lk.name, pass.Fset.Position(ta.pos))
						continue
					}
					addEdge(h, ta.lk, cs.edge.Pos, cs.edge.Callee.Name)
				}
			}
		}
	}

	// Declared-order violations: an edge from→to where the declaration
	// places to strictly before from.
	for _, e := range edges {
		hi, okH := order[e.from]
		bi, okB := order[e.to]
		if okH && okB && bi < hi {
			pass.Reportf(e.pos, "%s acquired while %s held violates the declared lock order (%s)", e.to.name, e.from.name, orderString(order))
		}
	}

	// Cycles: an edge whose target can reach back to its source. Each
	// unordered pair is reported once, at the first witness found.
	reach := reachability(edges)
	reported := make(map[[2]*lock]bool)
	for _, e := range edges {
		if !reach[[2]*lock{e.to, e.from}] {
			continue
		}
		pair := [2]*lock{e.from, e.to}
		if pair[0].name > pair[1].name {
			pair[0], pair[1] = pair[1], pair[0]
		}
		if reported[pair] {
			continue
		}
		reported[pair] = true
		via := ""
		if e.via != "" {
			via = " (via " + e.via + ")"
		}
		pass.Reportf(e.pos, "lock-order cycle: %s acquired while %s held here%s, but elsewhere %s is acquired while %s is held — ABBA deadlock",
			e.to.name, e.from.name, via, e.from.name, e.to.name)
	}
	return nil
}

// orderEdge records "to was block-acquired while from was held".
type orderEdge struct {
	from, to *lock
	pos      token.Pos
	via      string // callee name for interprocedural edges
}

// reachability computes the transitive closure over the (tiny) edge
// set: reach[{a,b}] means b is reachable from a.
func reachability(edges []*orderEdge) map[[2]*lock]bool {
	adj := make(map[*lock][]*lock)
	var froms []*lock
	for _, e := range edges {
		if _, ok := adj[e.from]; !ok {
			froms = append(froms, e.from)
		}
		adj[e.from] = append(adj[e.from], e.to)
	}
	out := make(map[[2]*lock]bool)
	for _, from := range froms {
		seen := map[*lock]bool{}
		stack := append([]*lock(nil), adj[from]...)
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[n] {
				continue
			}
			seen[n] = true
			out[[2]*lock{from, n}] = true
			stack = append(stack, adj[n]...)
		}
	}
	return out
}

// collectLocks finds every mutex declaration in the package: struct
// fields and package-level vars of type sync.Mutex / sync.RWMutex.
func collectLocks(pass *analysis.Pass) map[*types.Var]*lock {
	out := make(map[*types.Var]*lock)
	add := func(v *types.Var, name string) {
		if v == nil || !isMutex(v.Type()) {
			return
		}
		out[v] = &lock{obj: v, name: name}
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				switch spec := spec.(type) {
				case *ast.ValueSpec: // package-level vars
					for _, name := range spec.Names {
						if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
							add(v, name.Name)
						}
					}
				case *ast.TypeSpec:
					st, ok := spec.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						for _, name := range field.Names {
							if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
								add(v, spec.Name.Name+"."+name.Name)
							}
						}
					}
				}
			}
		}
	}
	return out
}

func isMutex(t types.Type) bool {
	s := t.String()
	return s == "sync.Mutex" || s == "sync.RWMutex"
}

// lockOpKind classifies a Lock-family method call on a tracked mutex.
type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock            // Lock, RLock: blocking acquisition
	opTry             // TryLock, TryRLock: acquisition, never blocks
	opUnlock
)

// mutexOp resolves a call expression to (lock, kind); opNone when the
// call is not a Lock-family method on a tracked mutex.
func mutexOp(pass *analysis.Pass, locks map[*types.Var]*lock, call *ast.CallExpr) (*lock, lockOpKind) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, opNone
	}
	var kind lockOpKind
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = opLock
	case "TryLock", "TryRLock":
		kind = opTry
	case "Unlock", "RUnlock":
		kind = opUnlock
	default:
		return nil, opNone
	}
	lk := resolveLock(pass, locks, sel.X)
	if lk == nil {
		return nil, opNone
	}
	return lk, kind
}

// resolveLock maps a mutex expression (s.mu, appMu) to its identity.
func resolveLock(pass *analysis.Pass, locks map[*types.Var]*lock, expr ast.Expr) *lock {
	switch expr := ast.Unparen(expr).(type) {
	case *ast.Ident:
		if v, ok := pass.TypesInfo.Uses[expr].(*types.Var); ok {
			return locks[v]
		}
	case *ast.SelectorExpr:
		if s := pass.TypesInfo.Selections[expr]; s != nil && s.Kind() == types.FieldVal {
			if v, ok := s.Obj().(*types.Var); ok {
				return locks[v]
			}
		}
		// Qualified package-level var (pkg.Mu) of another package is
		// out of scope; same-package fields resolve above.
	}
	return nil
}

// summarize walks one function in source order, tracking the held set
// and recording acquisition and call events.
func summarize(pass *analysis.Pass, locks map[*types.Var]*lock, n *callgraph.Node) *funcInfo {
	fi := &funcInfo{node: n, transSeen: make(map[*lock]bool)}
	held := []*lock{}
	heldHas := func(lk *lock) bool {
		for _, h := range held {
			if h == lk {
				return true
			}
		}
		return false
	}
	drop := func(lk *lock) {
		for i, h := range held {
			if h == lk {
				held = append(held[:i], held[i+1:]...)
				return
			}
		}
	}
	// Call edges in source order, annotated with the held set at each
	// position. The callgraph records edges in source order too, so a
	// single merged sweep by position lines the two up.
	edgeAt := make(map[token.Pos]callgraph.Edge, len(n.Calls))
	for _, e := range n.Calls {
		edgeAt[e.Pos] = e
	}
	deferred := make(map[*ast.CallExpr]bool)
	ast.Inspect(n.Body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			if n.Lit != x {
				return false // separate node, separate held set
			}
		case *ast.GoStmt:
			// Held sets do not propagate into spawned goroutines.
			deferred[x.Call] = false // walk args normally; the call itself is a spawn
			return true
		case *ast.DeferStmt:
			deferred[x.Call] = true
		case *ast.CallExpr:
			lk, kind := mutexOp(pass, locks, x)
			switch kind {
			case opLock, opTry:
				if kind == opLock {
					if !fi.transSeen[lk] {
						fi.transSeen[lk] = true
						fi.acquires = append(fi.acquires, transAcq{lk: lk, pos: x.Pos()})
					}
					fi.acqs = append(fi.acqs, acqEvent{a: acq{lk: lk, pos: x.Pos()}, held: snapshot(held)})
				}
				if !heldHas(lk) {
					held = append(held, lk)
				}
			case opUnlock:
				if !deferred[x] {
					drop(lk)
				}
			case opNone:
				if e, ok := edgeAt[x.Pos()]; ok && len(held) > 0 {
					fi.calls = append(fi.calls, callSite{edge: e, held: snapshot(held)})
				}
			}
		}
		return true
	})
	return fi
}

func snapshot(held []*lock) []*lock { return append([]*lock(nil), held...) }

// closeAcquires computes each function's transitive may-acquire set
// over the call graph (a fixpoint; the graphs are tiny). infos is
// iterated through the graph's node slice so discovery order — and
// therefore witness positions — is deterministic.
func closeAcquires(g *callgraph.Graph, infos map[*callgraph.Node]*funcInfo) {
	for _, n := range g.Nodes {
		fi := infos[n]
		fi.transAcquires = append(fi.transAcquires, fi.acquires...)
	}
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes {
			fi := infos[n]
			for _, e := range n.Calls {
				callee := infos[e.Callee]
				if callee == nil {
					continue
				}
				for _, ta := range callee.transAcquires {
					if !fi.transSeen[ta.lk] {
						fi.transSeen[ta.lk] = true
						fi.transAcquires = append(fi.transAcquires, ta)
						changed = true
					}
				}
			}
		}
	}
}

// declaredOrder parses the package's `//schedlint:lockorder A < B < C`
// marker into lock → rank (outermost = 0). Unknown names are reported
// by name so a typo cannot silently disable the check.
func declaredOrder(pass *analysis.Pass, locks map[*types.Var]*lock) map[*lock]int {
	markers := analysis.Markers(pass.Fset, pass.Files, "lockorder")
	if len(markers) == 0 {
		return nil
	}
	byName := make(map[string]*lock, len(locks))
	for _, lk := range locks {
		byName[lk.name] = lk
	}
	order := make(map[*lock]int)
	for _, m := range markers {
		for i, name := range strings.Split(m.Args, "<") {
			name = strings.TrimSpace(name)
			lk, ok := byName[name]
			if !ok {
				pass.Report(analysis.Diagnostic{
					Pos:            posOf(pass, m.Pos),
					Message:        fmt.Sprintf("lockorder marker names unknown mutex %q (known: %s)", name, strings.Join(sortedNames(byName), ", ")),
					Unsuppressable: true,
				})
				continue
			}
			order[lk] = i
		}
	}
	return order
}

func sortedNames(byName map[string]*lock) []string {
	out := make([]string, 0, len(byName))
	for name := range byName {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

func orderString(order map[*lock]int) string {
	type entry struct {
		name string
		rank int
	}
	entries := make([]entry, 0, len(order))
	for lk, rank := range order {
		entries = append(entries, entry{lk.name, rank})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].rank < entries[j].rank })
	names := make([]string, len(entries))
	for i, e := range entries {
		names[i] = e.name
	}
	return strings.Join(names, " < ")
}

// posOf maps a file position back to a token.Pos for reporting.
func posOf(pass *analysis.Pass, p token.Position) token.Pos {
	for _, f := range pass.Files {
		tf := pass.Fset.File(f.Pos())
		if tf != nil && tf.Name() == p.Filename && p.Line <= tf.LineCount() {
			return tf.LineStart(p.Line)
		}
	}
	return pass.Files[0].Pos()
}
