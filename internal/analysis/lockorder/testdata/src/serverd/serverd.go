// Package serverd is the lockorder golden fixture: condensed daemon
// shapes that seed each diagnostic class (direct and interprocedural
// self-deadlock, declared-order violation, ABBA cycle) next to the
// fixed variants that must stay silent.
package serverd

import "sync"

// Declared nesting order: the server lock is always outermost.
//
//schedlint:lockorder Server.mu < RM.mu

// Server is the daemon singleton.
type Server struct {
	mu sync.Mutex
	rm *RM
}

// RM is the embedded resource-manager view.
type RM struct {
	mu    sync.Mutex
	free  int
	owner string
}

// --- self-deadlock, direct ---

func (s *Server) doubleLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.mu.Lock() // want `Server.mu re-acquired while already held`
}

// unlockThenRelock releases before re-acquiring: silent.
func (s *Server) unlockThenRelock() {
	s.mu.Lock()
	s.mu.Unlock()
	s.mu.Lock()
	s.mu.Unlock()
}

// --- self-deadlock, interprocedural ---

func (s *Server) close() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.killAll() // want `calls \(\*Server\).killAll with Server.mu held`
}

func (s *Server) killAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rm.free = 0
}

// closeFixed uses the *Locked helper convention: the callee asserts
// rather than acquires. Silent.
func (s *Server) closeFixed() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.killAllLocked()
}

func (s *Server) killAllLocked() {
	s.rm.free = 0
}

// --- declared-order violation ---

// badNesting inverts the declared order; against goodNesting's
// conforming edge below, that is also a completed ABBA cycle, so the
// one bad line carries both reports.
func (s *Server) badNesting() {
	s.rm.mu.Lock()
	defer s.rm.mu.Unlock()
	s.mu.Lock() // want `violates the declared lock order` `lock-order cycle`
	s.mu.Unlock()
}

// goodNesting follows Server.mu < RM.mu: silent.
func (s *Server) goodNesting() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.rm.mu.Lock()
	s.rm.mu.Unlock()
}

// --- ABBA cycle on locks with no declared order ---

var (
	planMu    sync.Mutex
	verdictMu sync.Mutex
)

func planThenVerdict() {
	planMu.Lock()
	defer planMu.Unlock()
	verdictMu.Lock() // want `lock-order cycle: verdictMu acquired while planMu held`
	verdictMu.Unlock()
}

func verdictThenPlan() {
	verdictMu.Lock()
	defer verdictMu.Unlock()
	planMu.Lock()
	planMu.Unlock()
}

// --- TryLock never blocks: no acquisition edge ---

var (
	statMu  sync.Mutex
	traceMu sync.Mutex
)

// tryUnderLock TryLocks traceMu while statMu is held; the reverse
// blocking order exists in traceThenStat, but Try edges do not count,
// so there is no cycle. Silent.
func tryUnderLock() {
	statMu.Lock()
	defer statMu.Unlock()
	if traceMu.TryLock() {
		traceMu.Unlock()
	}
}

func traceThenStat() {
	traceMu.Lock()
	defer traceMu.Unlock()
	statMu.Lock()
	statMu.Unlock()
}

// --- goroutines do not inherit the spawner's held set ---

func (s *Server) spawnUnderLock(wgDone func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		// Runs concurrently: acquiring RM.mu here is not "RM.mu while
		// Server.mu held", and re-acquiring Server.mu is not a
		// self-deadlock path.
		s.rm.mu.Lock()
		s.rm.mu.Unlock()
		wgDone()
	}()
}

// --- suppression: the directive documents an audited exception ---

func (s *Server) auditedDouble() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lint:lockorder fixture: audited exception, documents the suppression path
	s.mu.Lock()
}
