package tm

import (
	"net"
	"testing"

	"repro/internal/proto"
)

func TestFromEnv(t *testing.T) {
	t.Setenv(EnvJobID, "42")
	t.Setenv(EnvMomAddr, "127.0.0.1:9999")
	c, err := FromEnv()
	if err != nil {
		t.Fatal(err)
	}
	if c.JobID != 42 || c.MomAddr != "127.0.0.1:9999" {
		t.Errorf("ctx = %+v", c)
	}
}

func TestFromEnvMissing(t *testing.T) {
	t.Setenv(EnvJobID, "")
	t.Setenv(EnvMomAddr, "")
	if _, err := FromEnv(); err == nil {
		t.Error("missing env must error")
	}
	t.Setenv(EnvJobID, "notanumber")
	t.Setenv(EnvMomAddr, "addr")
	if _, err := FromEnv(); err == nil {
		t.Error("bad job id must error")
	}
}

// fakeMom answers one TM request per connection.
func fakeMom(t *testing.T, respond func(env *proto.Envelope) proto.TMResp) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				pc := proto.NewConn(c)
				defer pc.Close()
				env, err := pc.Recv()
				if err != nil {
					return
				}
				_ = pc.Send(proto.TTMResp, respond(env))
			}()
		}
	}()
	return ln.Addr().String()
}

func TestDynGetGranted(t *testing.T) {
	addr := fakeMom(t, func(env *proto.Envelope) proto.TMResp {
		if env.Type != proto.TTMDynGet {
			t.Errorf("type = %s", env.Type)
		}
		var req proto.TMDynGetReq
		_ = env.Decode(&req)
		if req.Cores != 4 || req.JobID != 7 {
			t.Errorf("req = %+v", req)
		}
		return proto.TMResp{OK: true, Hosts: []proto.HostSlice{{Node: "n1", Cores: 4}}}
	})
	c := &Context{JobID: 7, MomAddr: addr}
	hosts, err := c.DynGet(4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != 1 || hosts[0].Cores != 4 {
		t.Errorf("hosts = %+v", hosts)
	}
}

func TestDynGetRejected(t *testing.T) {
	addr := fakeMom(t, func(*proto.Envelope) proto.TMResp {
		return proto.TMResp{OK: false, Reason: "fairness veto"}
	})
	c := &Context{JobID: 7, MomAddr: addr}
	_, err := c.DynGet(4)
	if !IsRejected(err) {
		t.Fatalf("want Rejected, got %v", err)
	}
	if err.Error() == "" {
		t.Error("rejection should carry a message")
	}
}

func TestDynGetNodes(t *testing.T) {
	addr := fakeMom(t, func(env *proto.Envelope) proto.TMResp {
		var req proto.TMDynGetReq
		_ = env.Decode(&req)
		if req.Nodes != 2 || req.PPN != 8 {
			t.Errorf("req = %+v", req)
		}
		return proto.TMResp{OK: true, Hosts: []proto.HostSlice{{Node: "a", Cores: 8}, {Node: "b", Cores: 8}}}
	})
	c := &Context{JobID: 1, MomAddr: addr}
	hosts, err := c.DynGetNodes(2, 8)
	if err != nil || len(hosts) != 2 {
		t.Fatalf("hosts=%v err=%v", hosts, err)
	}
}

func TestDynFreeAndDone(t *testing.T) {
	addr := fakeMom(t, func(env *proto.Envelope) proto.TMResp {
		switch env.Type {
		case proto.TTMDynFree, proto.TTMDone:
			return proto.TMResp{OK: true}
		}
		return proto.TMResp{OK: false, Reason: "unexpected"}
	})
	c := &Context{JobID: 1, MomAddr: addr}
	if err := c.DynFree([]proto.HostSlice{{Node: "a", Cores: 2}}); err != nil {
		t.Errorf("dynfree: %v", err)
	}
	if err := c.Done(nil); err != nil {
		t.Errorf("done: %v", err)
	}
}

func TestTransportErrorIsNotRejection(t *testing.T) {
	c := &Context{JobID: 1, MomAddr: "127.0.0.1:1"}
	_, err := c.DynGet(4)
	if err == nil {
		t.Fatal("dial must fail")
	}
	if IsRejected(err) {
		t.Error("transport errors must not look like scheduling rejections")
	}
}
