// Package tm is the application-side task-management interface — the
// paper's extension of Torque's TM API (§III-B). An application running
// under the batch system talks to its node-local mom daemon; the two
// added calls are DynGet (tm_dynget: request additional resources at
// runtime) and DynFree (tm_dynfree: release any subset of the current
// allocation). Requests reach the server through the job's mother
// superior, which serializes them (at most one outstanding per job).
//
// Applications launched with "exec:" scripts find their endpoint in
// the TM_JOB_ID and TM_MOM_ADDR environment variables; in-process
// applications ("go:" scripts) receive a *Context directly.
package tm

import (
	"fmt"
	"os"
	"strconv"
	"time"

	"repro/internal/backoff"
	"repro/internal/proto"
)

// EnvJobID, EnvMomAddr and EnvProto are the environment variables the
// mom sets for exec-mode applications.
const (
	EnvJobID   = "TM_JOB_ID"
	EnvMomAddr = "TM_MOM_ADDR"
	EnvProto   = "TM_PROTO"
)

// Context is an application's handle to its local mom.
type Context struct {
	JobID   int
	MomAddr string
	// Proto selects the wire codec for the mom connection (see
	// proto.Mode); the zero value negotiates automatically.
	Proto proto.Mode

	// Retries is how many extra attempts a TM call makes after a
	// transport failure that provably never reached the mom (a failed
	// dial or send). Attempts that failed after the request went out
	// are never retried — re-sending a tm_dynget could double-request
	// resources — and scheduling rejections are verdicts, not failures.
	// Zero (the default) keeps the historical fail-fast behavior.
	Retries int
	// RetryBase is the base delay of the capped exponential backoff
	// between retries (default 100ms).
	RetryBase time.Duration
}

// FromEnv builds a Context from the TM environment variables.
func FromEnv() (*Context, error) {
	idStr := os.Getenv(EnvJobID)
	addr := os.Getenv(EnvMomAddr)
	if idStr == "" || addr == "" {
		return nil, fmt.Errorf("tm: %s/%s not set (not running under a mom?)", EnvJobID, EnvMomAddr)
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		return nil, fmt.Errorf("tm: bad %s: %v", EnvJobID, err)
	}
	mode, err := proto.ParseMode(os.Getenv(EnvProto))
	if err != nil {
		return nil, fmt.Errorf("tm: bad %s: %v", EnvProto, err)
	}
	return &Context{JobID: id, MomAddr: addr, Proto: mode}, nil
}

// call performs one TM round trip with the local mom, retrying (up to
// Retries times) only when the request provably never reached it.
func (c *Context) call(t proto.MsgType, payload any) (*proto.TMResp, error) {
	resp, sent, err := c.callOnce(t, payload)
	if err == nil || sent || c.Retries <= 0 {
		return resp, err
	}
	pol := backoff.Policy{Base: c.RetryBase}
	rng := backoff.NewRand(fmt.Sprintf("tm-job-%d", c.JobID))
	for attempt := 0; attempt < c.Retries; attempt++ {
		//lint:wallclock retry backoff paces real reconnect attempts against a restarting mom
		time.Sleep(pol.Delay(attempt, rng))
		resp, sent, err = c.callOnce(t, payload)
		if err == nil || sent {
			return resp, err
		}
	}
	return resp, err
}

// callOnce is one attempt; sent reports whether the request reached
// the wire (and so must not be replayed).
func (c *Context) callOnce(t proto.MsgType, payload any) (resp *proto.TMResp, sent bool, err error) {
	conn, err := proto.DialMode(c.MomAddr, c.Proto)
	if err != nil {
		return nil, false, fmt.Errorf("tm: dial mom: %w", err)
	}
	defer conn.Close()
	if err := conn.Send(t, payload); err != nil {
		return nil, false, fmt.Errorf("tm: %s: %w", t, err)
	}
	env, err := conn.Recv()
	if err != nil {
		return nil, true, fmt.Errorf("tm: %s: %w", t, err)
	}
	if env.Type != proto.TTMResp {
		return nil, true, fmt.Errorf("tm: unexpected reply %s", env.Type)
	}
	var r proto.TMResp
	if err := env.Decode(&r); err != nil {
		return nil, true, err
	}
	return &r, true, nil
}

// DynGet requests cores additional cores anywhere in the cluster.
// On success it returns the dynamically allocated host slices; the
// application can spawn processes there (MPI-2 dynamic process
// management in the paper). A scheduling rejection is returned as a
// *Rejected* error so callers can distinguish it from transport
// failures and retry later, as the ESP evolving jobs do.
func (c *Context) DynGet(cores int) ([]proto.HostSlice, error) {
	resp, err := c.call(proto.TTMDynGet, proto.TMDynGetReq{JobID: c.JobID, Cores: cores})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, &Rejected{Reason: resp.Reason}
	}
	return resp.Hosts, nil
}

// DynGetTimeout is the negotiation form of DynGet (the paper's §III-C
// future work, implemented here): the batch system keeps the request
// queued until it can be granted or timeout elapses. The call blocks
// for up to the full timeout.
func (c *Context) DynGetTimeout(cores int, timeout time.Duration) ([]proto.HostSlice, error) {
	resp, err := c.call(proto.TTMDynGet, proto.TMDynGetReq{
		JobID: c.JobID, Cores: cores, TimeoutSecs: int64(timeout / time.Second),
	})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, &Rejected{Reason: resp.Reason}
	}
	return resp.Hosts, nil
}

// DynGetNodes requests nodes whole nodes with ppn processors each
// (the Torque nodes=N:ppn=P request form).
func (c *Context) DynGetNodes(nodes, ppn int) ([]proto.HostSlice, error) {
	resp, err := c.call(proto.TTMDynGet, proto.TMDynGetReq{JobID: c.JobID, Nodes: nodes, PPN: ppn})
	if err != nil {
		return nil, err
	}
	if !resp.OK {
		return nil, &Rejected{Reason: resp.Reason}
	}
	return resp.Hosts, nil
}

// DynFree releases the given host slices — any subset of the current
// allocation, not only whole dynamic grants (§V contrasts this with
// SLURM's restriction). It "usually returns true" (§III-B): failures
// indicate the job does not hold the slices.
func (c *Context) DynFree(hosts []proto.HostSlice) error {
	resp, err := c.call(proto.TTMDynFree, proto.TMDynFreeReq{JobID: c.JobID, Hosts: hosts})
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("tm: dynfree rejected: %s", resp.Reason)
	}
	return nil
}

// Done reports application completion to the local mom. Applications
// run via "go:" scripts may also simply return; the mom treats the
// function returning as completion.
func (c *Context) Done(appErr error) error {
	req := proto.TMDoneReq{JobID: c.JobID}
	if appErr != nil {
		req.Error = appErr.Error()
	}
	resp, err := c.call(proto.TTMDone, req)
	if err != nil {
		return err
	}
	if !resp.OK {
		return fmt.Errorf("tm: done rejected: %s", resp.Reason)
	}
	return nil
}

// Rejected is returned by DynGet/DynGetNodes when the scheduler
// declined the request (insufficient resources or a dynamic-fairness
// veto). The application keeps running on its current allocation.
type Rejected struct {
	Reason string
}

func (r *Rejected) Error() string {
	return fmt.Sprintf("tm: dynamic request rejected: %s", r.Reason)
}

// IsRejected reports whether err is a scheduling rejection.
func IsRejected(err error) bool {
	_, ok := err.(*Rejected)
	return ok
}
