// Package trace records scheduling events during a run and renders
// them — as a human-readable event log and as an ASCII Gantt chart of
// the cluster, with dynamic expansions marked. It is the debugging
// companion to the metrics package: metrics aggregates, trace shows
// the actual schedule.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Kind classifies a trace event.
type Kind int

const (
	Submit Kind = iota
	Start
	Backfill
	DynRequest
	DynGrant
	DynReject
	DynFree
	Complete
	Cancel
	Preempt
	NodeDown
	NodeUp
	Shrink
	Grow
)

var kindNames = [...]string{
	"submit", "start", "backfill", "dynreq", "dyngrant",
	"dynreject", "dynfree", "complete", "cancel", "preempt",
	"nodedown", "nodeup", "shrink", "grow",
}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return kindNames[k]
}

// Event is one recorded occurrence.
type Event struct {
	At    sim.Time
	Kind  Kind
	Job   string // job name ("" for node events)
	Cores int    // cores involved (grant size, job size, ...)
	Note  string
}

// Log accumulates events in time order (events must be appended with
// non-decreasing timestamps, which both harnesses guarantee).
type Log struct {
	events []Event
}

// Add appends an event.
func (l *Log) Add(e Event) { l.events = append(l.events, e) }

// Addf appends an event with a formatted note.
func (l *Log) Addf(at sim.Time, k Kind, jobName string, cores int, format string, args ...any) {
	l.Add(Event{At: at, Kind: k, Job: jobName, Cores: cores, Note: fmt.Sprintf(format, args...)})
}

// Events returns the recorded events.
func (l *Log) Events() []Event { return append([]Event(nil), l.events...) }

// Len returns the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// Filter returns the events of one kind.
func (l *Log) Filter(k Kind) []Event {
	var out []Event
	for _, e := range l.events {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// String renders the log, one line per event.
func (l *Log) String() string {
	var b strings.Builder
	for _, e := range l.events {
		fmt.Fprintf(&b, "%s %-9s %-12s", sim.FormatTime(e.At), e.Kind, e.Job)
		if e.Cores != 0 {
			fmt.Fprintf(&b, " cores=%-4d", e.Cores)
		}
		if e.Note != "" {
			fmt.Fprintf(&b, " %s", e.Note)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Span is one horizontal bar of the Gantt chart.
type Span struct {
	Job        string
	Start, End sim.Time
	Cores      int
	GrewAt     sim.Time // zero when the job never expanded
	Backfilled bool
}

// Spans derives job spans from the log (start/backfill → complete or
// cancel), annotated with the first dynamic grant.
func (l *Log) Spans() []Span {
	open := map[string]*Span{}
	var done []Span
	for _, e := range l.events {
		switch e.Kind {
		case Start, Backfill:
			open[e.Job] = &Span{Job: e.Job, Start: e.At, Cores: e.Cores, Backfilled: e.Kind == Backfill}
		case DynGrant:
			if s, ok := open[e.Job]; ok && s.GrewAt == 0 {
				s.GrewAt = e.At
				s.Cores += e.Cores
			} else if ok {
				s.Cores += e.Cores
			}
		case DynFree:
			if s, ok := open[e.Job]; ok {
				s.Cores -= e.Cores
			}
		case Complete, Cancel, Preempt:
			if s, ok := open[e.Job]; ok {
				s.End = e.At
				done = append(done, *s)
				delete(open, e.Job)
			}
		}
	}
	// Any still-open spans end at the last event.
	var last sim.Time
	if len(l.events) > 0 {
		last = l.events[len(l.events)-1].At
	}
	names := make([]string, 0, len(open))
	for n := range open {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := *open[n]
		s.End = last
		done = append(done, s)
	}
	sort.Slice(done, func(i, j int) bool {
		if done[i].Start != done[j].Start {
			return done[i].Start < done[j].Start
		}
		return done[i].Job < done[j].Job
	})
	return done
}

// Gantt renders the spans as an ASCII chart with the given width in
// character cells. Legend: '=' running, '#' running after a dynamic
// expansion, 'b' marks a backfilled start.
func (l *Log) Gantt(width int) string {
	spans := l.Spans()
	if len(spans) == 0 {
		return "(empty schedule)\n"
	}
	if width < 20 {
		width = 20
	}
	var t0, t1 sim.Time = spans[0].Start, 0
	for _, s := range spans {
		if s.Start < t0 {
			t0 = s.Start
		}
		if s.End > t1 {
			t1 = s.End
		}
	}
	if t1 <= t0 {
		t1 = t0 + 1
	}
	scale := float64(width) / float64(t1-t0)
	cell := func(t sim.Time) int {
		c := int(float64(t-t0) * scale)
		if c >= width {
			c = width - 1
		}
		if c < 0 {
			c = 0
		}
		return c
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s |%s| cores\n", "job", strings.Repeat("-", width))
	for _, s := range spans {
		row := make([]byte, width)
		for i := range row {
			row[i] = ' '
		}
		from, to := cell(s.Start), cell(s.End)
		grew := width
		if s.GrewAt > 0 {
			grew = cell(s.GrewAt)
		}
		for i := from; i <= to && i < width; i++ {
			if i >= grew {
				row[i] = '#'
			} else {
				row[i] = '='
			}
		}
		if s.Backfilled {
			row[from] = 'b'
		}
		fmt.Fprintf(&b, "%-14s |%s| %d\n", s.Job, row, s.Cores)
	}
	fmt.Fprintf(&b, "%-14s  %s .. %s\n", "", sim.FormatTime(t0), sim.FormatTime(t1))
	return b.String()
}
