package trace

import (
	"strings"
	"testing"

	"repro/internal/sim"
)

func sampleLog() *Log {
	l := &Log{}
	l.Add(Event{At: 0, Kind: Submit, Job: "a", Cores: 8})
	l.Add(Event{At: 0, Kind: Start, Job: "a", Cores: 8})
	l.Add(Event{At: sim.Minute, Kind: Submit, Job: "b", Cores: 4})
	l.Add(Event{At: sim.Minute, Kind: Backfill, Job: "b", Cores: 4})
	l.Add(Event{At: 2 * sim.Minute, Kind: DynRequest, Job: "a", Cores: 4})
	l.Add(Event{At: 2 * sim.Minute, Kind: DynGrant, Job: "a", Cores: 4})
	l.Add(Event{At: 3 * sim.Minute, Kind: DynFree, Job: "a", Cores: 2})
	l.Add(Event{At: 5 * sim.Minute, Kind: Complete, Job: "b", Cores: 4})
	l.Add(Event{At: 10 * sim.Minute, Kind: Complete, Job: "a", Cores: 10})
	return l
}

func TestKindStrings(t *testing.T) {
	if Submit.String() != "submit" || DynGrant.String() != "dyngrant" || NodeUp.String() != "nodeup" {
		t.Error("kind stringer")
	}
	if Kind(99).String() != "kind(99)" {
		t.Error("out-of-range kind")
	}
}

func TestLogBasics(t *testing.T) {
	l := sampleLog()
	if l.Len() != 9 {
		t.Errorf("len = %d", l.Len())
	}
	if got := l.Filter(Complete); len(got) != 2 {
		t.Errorf("complete events = %d", len(got))
	}
	s := l.String()
	if !strings.Contains(s, "dyngrant") || !strings.Contains(s, "00:02:00") {
		t.Errorf("log rendering:\n%s", s)
	}
	l2 := &Log{}
	l2.Addf(5, Start, "x", 2, "note %d", 7)
	if l2.Events()[0].Note != "note 7" {
		t.Error("Addf note")
	}
}

func TestSpans(t *testing.T) {
	spans := sampleLog().Spans()
	if len(spans) != 2 {
		t.Fatalf("spans = %+v", spans)
	}
	var a, b Span
	for _, s := range spans {
		switch s.Job {
		case "a":
			a = s
		case "b":
			b = s
		}
	}
	if a.Start != 0 || a.End != 10*sim.Minute {
		t.Errorf("a span = %+v", a)
	}
	if a.GrewAt != 2*sim.Minute {
		t.Errorf("a grew at %v", a.GrewAt)
	}
	if a.Cores != 10 { // 8 + 4 granted - 2 freed
		t.Errorf("a cores = %d", a.Cores)
	}
	if !b.Backfilled || a.Backfilled {
		t.Error("backfill flags")
	}
}

func TestSpansOpenJobs(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: 0, Kind: Start, Job: "a", Cores: 8})
	l.Add(Event{At: sim.Minute, Kind: Start, Job: "b", Cores: 8})
	spans := l.Spans()
	if len(spans) != 2 {
		t.Fatalf("open spans = %d", len(spans))
	}
	for _, s := range spans {
		if s.End != sim.Minute {
			t.Errorf("open span should end at the last event: %+v", s)
		}
	}
}

func TestGantt(t *testing.T) {
	g := sampleLog().Gantt(40)
	if !strings.Contains(g, "a") || !strings.Contains(g, "b") {
		t.Errorf("gantt:\n%s", g)
	}
	if !strings.Contains(g, "#") {
		t.Error("gantt should mark the dynamic expansion with '#'")
	}
	if !strings.Contains(g, "b=") && !strings.Contains(g, "b ") {
		t.Logf("gantt:\n%s", g)
	}
	lines := strings.Split(strings.TrimSpace(g), "\n")
	if len(lines) != 4 { // header + 2 spans + time footer
		t.Errorf("gantt lines = %d:\n%s", len(lines), g)
	}
	empty := (&Log{}).Gantt(40)
	if !strings.Contains(empty, "empty") {
		t.Error("empty gantt")
	}
	// Tiny widths are clamped, no panic.
	_ = sampleLog().Gantt(1)
}

func TestPreemptEndsSpan(t *testing.T) {
	l := &Log{}
	l.Add(Event{At: 0, Kind: Start, Job: "a", Cores: 8})
	l.Add(Event{At: sim.Minute, Kind: Preempt, Job: "a", Cores: 8})
	l.Add(Event{At: 2 * sim.Minute, Kind: Start, Job: "a", Cores: 8})
	l.Add(Event{At: 3 * sim.Minute, Kind: Complete, Job: "a", Cores: 8})
	spans := l.Spans()
	if len(spans) != 2 {
		t.Fatalf("preempted job should have two spans, got %d", len(spans))
	}
}
