// Package chaos provides deterministic fault injection for the live
// daemons' TCP links. A Proxy sits between a client (mom, mauid, a TM
// application) and its server, forwarding bytes transparently until
// told — or scheduled — to misbehave:
//
//   - RefuseNext(n) closes the next n inbound connections before any
//     byte is forwarded (a dead or restarting peer);
//   - SeverAll() cuts every live link at once (a crashed daemon or a
//     yanked network cable);
//   - Blackhole(true) accepts connections but forwards nothing, in
//     either direction (a hung peer — the case socket deadlines exist
//     for);
//   - Options.FailRate picks victim connections from a seeded
//     *rand.Rand in accept order, severing each after an rng-chosen
//     delay, so soak tests replay the exact same fault schedule on
//     every run.
//
// The proxy never interprets frames: faults happen at the transport
// layer, exactly where real failures do. Integration tests point a
// daemon's dial address at the proxy and drive faults explicitly,
// which keeps every recovery path exercisable without wall-clock
// flakiness (assertions poll for outcomes; they never race a timer).
package chaos

import (
	"io"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"
)

// Options configures the scheduled (rng-driven) part of a Proxy.
type Options struct {
	// Seed seeds the fault schedule; the same seed replays the same
	// per-connection decisions. Defaults to 1.
	Seed int64
	// FailRate is the probability (0..1) that an accepted connection
	// is selected as a victim and severed after Delay. Zero disables
	// scheduled faults; explicit controls still work.
	FailRate float64
	// MaxDelay bounds the rng-chosen lifetime of a victim connection;
	// zero severs victims immediately after accept.
	MaxDelay time.Duration
}

// Proxy is a fault-injecting TCP forwarder.
type Proxy struct {
	target string
	opts   Options

	ln net.Listener
	wg sync.WaitGroup

	mu        sync.Mutex
	rng       *rand.Rand    // guarded by mu: fault schedule source
	links     map[int]*link // guarded by mu: live connections by id
	nextLink  int           // guarded by mu
	refuse    int           // guarded by mu: connections left to refuse
	blackhole bool          // guarded by mu
	stats     Stats         // guarded by mu
	closed    bool          // guarded by mu
}

// link is one proxied connection pair (the downstream side only for
// blackholed links).
type link struct {
	down net.Conn
	up   net.Conn // nil when blackholed
}

func (l *link) closeBoth() {
	_ = l.down.Close()
	if l.up != nil {
		_ = l.up.Close()
	}
}

// Stats counts the proxy's fault decisions for test assertions.
type Stats struct {
	Accepted   int // connections accepted (including refused ones)
	Refused    int // closed before forwarding (RefuseNext)
	Severed    int // cut while live (SeverAll or scheduled victim)
	Blackholed int // accepted but never forwarded
}

// New creates a proxy in front of target (host:port).
func New(target string, opts Options) *Proxy {
	if opts.Seed == 0 {
		opts.Seed = 1
	}
	return &Proxy{
		target: target,
		opts:   opts,
		rng:    rand.New(rand.NewSource(opts.Seed)),
		links:  make(map[int]*link),
	}
}

// Start listens on addr ("127.0.0.1:0" for an ephemeral port).
func (p *Proxy) Start(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	p.ln = ln
	p.wg.Add(1)
	go p.acceptLoop()
	return nil
}

// Addr returns the proxy's listen address; daemons dial this instead
// of the real target.
func (p *Proxy) Addr() string {
	if p.ln == nil {
		return ""
	}
	return p.ln.Addr().String()
}

// Close stops the proxy and severs every live link.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	p.mu.Unlock()
	if p.ln != nil {
		_ = p.ln.Close()
	}
	p.SeverAll()
	p.wg.Wait()
}

// RefuseNext makes the proxy close the next n inbound connections
// before forwarding a single byte.
func (p *Proxy) RefuseNext(n int) {
	p.mu.Lock()
	p.refuse += n
	p.mu.Unlock()
}

// Blackhole toggles hang mode: while on, inbound connections are
// accepted and held open but nothing is ever forwarded.
func (p *Proxy) Blackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// SeverAll cuts every currently live link (both directions). New
// connections are still accepted afterwards.
func (p *Proxy) SeverAll() {
	p.mu.Lock()
	ids := make([]int, 0, len(p.links))
	for id := range p.links {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	victims := make([]*link, 0, len(ids))
	for _, id := range ids {
		victims = append(victims, p.links[id])
		delete(p.links, id)
	}
	p.stats.Severed += len(victims)
	p.mu.Unlock()
	for _, l := range victims {
		l.closeBoth()
	}
}

// Stats returns a snapshot of the fault counters.
func (p *Proxy) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		c, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.admit(c)
	}
}

// admit decides this connection's fate. Decisions draw from the rng
// under the lock, in accept order, so a given seed always produces the
// same schedule.
func (p *Proxy) admit(c net.Conn) {
	p.mu.Lock()
	p.stats.Accepted++
	if p.closed {
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	if p.refuse > 0 {
		p.refuse--
		p.stats.Refused++
		p.mu.Unlock()
		_ = c.Close()
		return
	}
	if p.blackhole {
		p.stats.Blackholed++
		p.trackLocked(&link{down: c}) // held open until severed or closed
		p.mu.Unlock()
		return
	}
	victim := p.opts.FailRate > 0 && p.rng.Float64() < p.opts.FailRate
	var lifetime time.Duration
	if victim && p.opts.MaxDelay > 0 {
		lifetime = time.Duration(p.rng.Int63n(int64(p.opts.MaxDelay)))
	}
	p.mu.Unlock()

	up, err := net.Dial("tcp", p.target)
	if err != nil {
		_ = c.Close()
		return
	}
	l := &link{down: c, up: up}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		l.closeBoth()
		return
	}
	id := p.trackLocked(l)
	p.mu.Unlock()

	p.wg.Add(2)
	go p.pipe(id, l.down, l.up)
	go p.pipe(id, l.up, l.down)
	if victim {
		p.wg.Add(1)
		go func() {
			defer p.wg.Done()
			if lifetime > 0 {
				time.Sleep(lifetime) //lint:wallclock scheduled fault injection delays are real-time by design
			}
			p.sever(id)
		}()
	}
}

// trackLocked registers a live link. Caller holds p.mu.
func (p *Proxy) trackLocked(l *link) int {
	id := p.nextLink
	p.nextLink++
	p.links[id] = l
	return id
}

// sever cuts one link by id (no-op when already gone).
func (p *Proxy) sever(id int) {
	p.mu.Lock()
	l, ok := p.links[id]
	if ok {
		delete(p.links, id)
		p.stats.Severed++
	}
	p.mu.Unlock()
	if ok {
		l.closeBoth()
	}
}

// forget drops a link that ended on its own (EOF either side).
func (p *Proxy) forget(id int) {
	p.mu.Lock()
	l, ok := p.links[id]
	if ok {
		delete(p.links, id)
	}
	p.mu.Unlock()
	if ok {
		l.closeBoth()
	}
}

// pipe copies one direction until error/EOF, then tears the pair down.
func (p *Proxy) pipe(id int, dst, src net.Conn) {
	defer p.wg.Done()
	_, _ = io.Copy(dst, src)
	p.forget(id)
}
