package chaos

import (
	"bufio"
	"fmt"
	"net"
	"repro/internal/testutil/leak"
	"testing"
	"time"
)

// echoServer answers each newline-terminated line with the same line.
func echoServer(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				defer c.Close()
				r := bufio.NewReader(c)
				for {
					line, err := r.ReadString('\n')
					if err != nil {
						return
					}
					if _, err := c.Write([]byte(line)); err != nil {
						return
					}
				}
			}()
		}
	}()
	return ln.Addr().String()
}

func startProxy(t *testing.T, target string, opts Options) *Proxy {
	t.Helper()
	p := New(target, opts)
	if err := p.Start("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

func roundTrip(c net.Conn, msg string) (string, error) {
	if _, err := fmt.Fprintf(c, "%s\n", msg); err != nil {
		return "", err
	}
	return bufio.NewReader(c).ReadString('\n')
}

func TestChaosProxyForwards(t *testing.T) {
	leak.Check(t)
	p := startProxy(t, echoServer(t), Options{})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got, err := roundTrip(c, "hello")
	if err != nil || got != "hello\n" {
		t.Fatalf("round trip = %q, %v", got, err)
	}
	if s := p.Stats(); s.Accepted != 1 || s.Refused+s.Severed+s.Blackholed != 0 {
		t.Errorf("stats = %+v", s)
	}
}

func TestChaosProxyRefuseNext(t *testing.T) {
	leak.Check(t)
	p := startProxy(t, echoServer(t), Options{})
	p.RefuseNext(1)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := roundTrip(c, "doomed"); err == nil {
		t.Error("refused connection must not complete a round trip")
	}
	c.Close()
	// The refusal budget is spent: the next connection works.
	c2, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if got, err := roundTrip(c2, "ok"); err != nil || got != "ok\n" {
		t.Fatalf("post-refusal round trip = %q, %v", got, err)
	}
	if s := p.Stats(); s.Refused != 1 {
		t.Errorf("stats = %+v, want Refused=1", s)
	}
}

func TestChaosProxySeverAll(t *testing.T) {
	leak.Check(t)
	p := startProxy(t, echoServer(t), Options{})
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := roundTrip(c, "warm"); err != nil {
		t.Fatal(err)
	}
	p.SeverAll()
	buf := make([]byte, 1)
	_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Error("severed link still delivered data")
	}
	if s := p.Stats(); s.Severed != 1 {
		t.Errorf("stats = %+v, want Severed=1", s)
	}
}

func TestChaosProxyBlackhole(t *testing.T) {
	leak.Check(t)
	p := startProxy(t, echoServer(t), Options{})
	p.Blackhole(true)
	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := fmt.Fprintf(c, "void\n"); err != nil {
		t.Fatal(err)
	}
	_ = c.SetReadDeadline(time.Now().Add(100 * time.Millisecond))
	buf := make([]byte, 1)
	if _, err := c.Read(buf); err == nil {
		t.Error("blackholed connection delivered data")
	}
	if s := p.Stats(); s.Blackholed != 1 {
		t.Errorf("stats = %+v, want Blackholed=1", s)
	}
}

// TestChaosProxyScheduledFaults: with FailRate 1 every connection is a
// victim, and the same seed must make the same decisions on every run.
func TestChaosProxyScheduledFaults(t *testing.T) {
	leak.Check(t)
	p := startProxy(t, echoServer(t), Options{Seed: 7, FailRate: 1})
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", p.Addr())
		if err != nil {
			t.Fatal(err)
		}
		_ = c.SetReadDeadline(time.Now().Add(2 * time.Second))
		buf := make([]byte, 1)
		if _, err := c.Read(buf); err == nil {
			t.Errorf("victim connection %d survived", i)
		}
		c.Close()
	}
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if p.Stats().Severed == 3 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("stats = %+v, want Severed=3", p.Stats())
}
