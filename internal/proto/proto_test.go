package proto

import (
	"net"
	"sync"
	"testing"
)

func pipePair(t *testing.T) (*Conn, *Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	var srv *Conn
	done := make(chan struct{})
	go func() {
		c, err := ln.Accept()
		if err == nil {
			srv = NewConn(c)
		}
		close(done)
	}()
	cli, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	<-done
	if srv == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { cli.Close(); srv.Close() })
	return cli, srv
}

func TestSendRecvRoundTrip(t *testing.T) {
	cli, srv := pipePair(t)
	spec := JobSpec{Name: "F.1", User: "user06", Cores: 8, WallSecs: 1846, Script: "sleep:1846s", Evolving: true}
	if err := cli.Send(TQSub, spec); err != nil {
		t.Fatal(err)
	}
	env, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TQSub {
		t.Fatalf("type = %s", env.Type)
	}
	var got JobSpec
	if err := env.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Errorf("round trip: %+v != %+v", got, spec)
	}
}

func TestRequestResponse(t *testing.T) {
	cli, srv := pipePair(t)
	go func() {
		env, err := srv.Recv()
		if err != nil {
			return
		}
		var req QDelReq
		_ = env.Decode(&req)
		_ = srv.Send(TOK, QSubResp{JobID: req.JobID})
	}()
	resp, err := cli.Request(TQDel, QDelReq{JobID: 7})
	if err != nil {
		t.Fatal(err)
	}
	var r QSubResp
	if err := resp.Decode(&r); err != nil {
		t.Fatal(err)
	}
	if r.JobID != 7 {
		t.Errorf("echo = %d", r.JobID)
	}
}

func TestNilPayload(t *testing.T) {
	cli, srv := pipePair(t)
	if err := cli.Send(TQStat, nil); err != nil {
		t.Fatal(err)
	}
	env, err := srv.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != TQStat {
		t.Fatal("type mismatch")
	}
	var dst QStatResp
	if err := env.Decode(&dst); err == nil {
		t.Error("decoding an empty payload should error")
	}
}

func TestConcurrentWriters(t *testing.T) {
	cli, srv := pipePair(t)
	const n = 50
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_ = cli.Send(TJobDone, JobDoneReq{JobID: i})
		}(i)
	}
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		env, err := srv.Recv()
		if err != nil {
			t.Fatal(err)
		}
		var r JobDoneReq
		if err := env.Decode(&r); err != nil {
			t.Fatal(err)
		}
		if seen[r.JobID] {
			t.Fatalf("duplicate frame for %d (interleaved write?)", r.JobID)
		}
		seen[r.JobID] = true
	}
	wg.Wait()
}

func TestRecvOnClosedConn(t *testing.T) {
	cli, srv := pipePair(t)
	cli.Close()
	if _, err := srv.Recv(); err == nil {
		t.Error("recv on closed peer should error")
	}
}

func TestSchedStatePayloads(t *testing.T) {
	cli, srv := pipePair(t)
	state := SchedState{
		NowMS:  12345,
		Nodes:  []NodeStatus{{Name: "node0", Cores: 8, Used: 4, State: "up"}},
		Queued: []SchedJob{{ID: 1, User: "u", Cores: 4, WallSecs: 60}},
		Active: []SchedJob{{ID: 2, User: "v", Cores: 8, State: "running", StartMS: 1000}},
		Dyn:    []SchedDynReq{{JobID: 2, Cores: 4, Seq: 0}},
		Serial: 42,
	}
	go func() { _ = srv.Send(TSchedState, state) }()
	env, err := cli.Recv()
	if err != nil {
		t.Fatal(err)
	}
	var got SchedState
	if err := env.Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Serial != 42 || len(got.Nodes) != 1 || got.Dyn[0].JobID != 2 {
		t.Errorf("state round trip: %+v", got)
	}
}
