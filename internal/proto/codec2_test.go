package proto_test

import (
	"fmt"
	"net"
	"reflect"
	"strings"
	"testing"

	"repro/internal/proto"
)

// handshakePair wires two Conns over an in-memory pipe and runs the
// version negotiation with the same mode on both ends.
func handshakePair(t testing.TB, m proto.Mode) (*proto.Conn, *proto.Conn) {
	t.Helper()
	a, b := net.Pipe()
	ca, cb := proto.NewConn(a), proto.NewConn(b)
	t.Cleanup(func() {
		_ = ca.Close()
		_ = cb.Close()
	})
	if m == proto.ModeV1 {
		return ca, cb
	}
	done := make(chan error, 1)
	go func() { done <- cb.AcceptHandshake(m) }()
	if err := ca.ClientHandshake(m); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	return ca, cb
}

// trip sends one payload and decodes the received envelope into dst.
func trip(t *testing.T, ca, cb *proto.Conn, typ proto.MsgType, payload, dst any) {
	t.Helper()
	sendErr := make(chan error, 1)
	go func() { sendErr <- ca.Send(typ, payload) }()
	env, err := cb.Recv()
	if serr := <-sendErr; serr != nil {
		t.Fatalf("send %s: %v", typ, serr)
	}
	if err != nil {
		t.Fatalf("recv %s: %v", typ, err)
	}
	if env.Type != typ {
		t.Fatalf("type = %q, want %q", env.Type, typ)
	}
	if dst != nil {
		if err := env.Decode(dst); err != nil {
			t.Fatalf("decode %s: %v", typ, err)
		}
	}
}

func TestV2NegotiationAndPayloads(t *testing.T) {
	ca, cb := handshakePair(t, proto.ModeAuto)
	if ca.Version() != 2 || cb.Version() != 2 {
		t.Fatalf("negotiated versions = %d/%d, want 2/2", ca.Version(), cb.Version())
	}

	// Binary-coded hot structs.
	hb := proto.HeartbeatReq{Node: "mom-00042", Seq: 17, SentMS: 1723}
	var gotHB proto.HeartbeatReq
	trip(t, ca, cb, proto.THeartbeat, &hb, &gotHB)
	if gotHB != hb {
		t.Errorf("heartbeat round trip: %+v != %+v", gotHB, hb)
	}

	// 1<<30 keeps the varint multi-byte while still fitting int on
	// 32-bit builds (the GOARCH=386 CI step vets tests too).
	reg := proto.RegisterReq{Node: "n3", Addr: "127.0.0.1:9999", Cores: 16, Jobs: []int{3, -9, 1 << 30}}
	var gotReg proto.RegisterReq
	trip(t, ca, cb, proto.TRegister, reg, &gotReg)
	if !reflect.DeepEqual(gotReg, reg) {
		t.Errorf("register round trip: %+v != %+v", gotReg, reg)
	}

	resp := proto.DynGetResp{JobID: 8, Granted: true, Reason: "ok", Hosts: []proto.HostSlice{
		{Node: "n1", Addr: "a1", Cores: 4}, {Node: "n2", Addr: "a2", Cores: -1},
	}}
	var gotResp proto.DynGetResp
	trip(t, ca, cb, proto.TDynGetResp, &resp, &gotResp)
	if !reflect.DeepEqual(gotResp, resp) {
		t.Errorf("dynget resp round trip: %+v != %+v", gotResp, resp)
	}

	// A non-hot struct rides as JSON inside the v2 frame.
	spec := proto.JobSpec{Name: "F.1", User: "user06", Cores: 8, WallSecs: 1846, Script: "sleep:1s", Evolving: true}
	var gotSpec proto.JobSpec
	trip(t, ca, cb, proto.TQSub, spec, &gotSpec)
	if gotSpec != spec {
		t.Errorf("jobspec round trip: %+v != %+v", gotSpec, spec)
	}

	// Unregistered tags travel as literals.
	var gotStr string
	trip(t, ca, cb, proto.MsgType("custom.experimental"), "payload", &gotStr)
	if gotStr != "payload" {
		t.Errorf("literal-tag payload = %q", gotStr)
	}

	// Payload-less envelopes still refuse to decode.
	trip(t, ca, cb, proto.TSchedPull, nil, nil)
}

func TestV2EmptySlicesDecodeNil(t *testing.T) {
	ca, cb := handshakePair(t, proto.ModeV2)
	var got proto.DynGetResp
	trip(t, ca, cb, proto.TDynGetResp, proto.DynGetResp{JobID: 1, Hosts: []proto.HostSlice{}}, &got)
	if got.Hosts != nil {
		t.Errorf("empty host list decoded as %#v, want nil (JSON omitempty parity)", got.Hosts)
	}
}

func TestV2TypedNilPointerMatchesV1Null(t *testing.T) {
	ca, cb := handshakePair(t, proto.ModeV2)
	got := proto.HeartbeatReq{Node: "sentinel"}
	trip(t, ca, cb, proto.THeartbeat, (*proto.HeartbeatReq)(nil), &got)
	// v1 ships "null", which json-decodes as a no-op; v2 must match.
	if got.Node != "sentinel" {
		t.Errorf("nil-pointer payload mutated dst: %+v", got)
	}
}

func TestV2BinaryCodecMismatch(t *testing.T) {
	ca, cb := handshakePair(t, proto.ModeV2)
	sendErr := make(chan error, 1)
	go func() { sendErr <- ca.Send(proto.THeartbeat, &proto.HeartbeatReq{Node: "x"}) }()
	env, err := cb.Recv()
	if serr := <-sendErr; serr != nil {
		t.Fatal(serr)
	}
	if err != nil {
		t.Fatal(err)
	}
	var wrong proto.JobDoneReq
	if err := env.Decode(&wrong); err == nil {
		t.Error("decoding a heartbeat binary payload into JobDoneReq must error")
	}
	var right proto.HeartbeatReq
	if err := env.Decode(&right); err != nil || right.Node != "x" {
		t.Errorf("re-decode into the right struct = %+v, %v", right, err)
	}
}

func TestServerPinnedV1DowngradesV2Client(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := proto.NewConn(a), proto.NewConn(b)
	t.Cleanup(func() { _ = ca.Close(); _ = cb.Close() })
	done := make(chan error, 1)
	go func() { done <- cb.AcceptHandshake(proto.ModeV1) }()
	if err := ca.ClientHandshake(proto.ModeV2); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if ca.Version() != 1 || cb.Version() != 1 {
		t.Fatalf("versions = %d/%d, want 1/1", ca.Version(), cb.Version())
	}
	var got proto.QDelReq
	trip(t, ca, cb, proto.TQDel, proto.QDelReq{JobID: 5}, &got)
	if got.JobID != 5 {
		t.Errorf("downgraded traffic: %+v", got)
	}
}

// TestV1ClientAgainstSniffingServer: a seed client that never
// handshakes must be served unchanged — the sniffed first byte belongs
// to its first frame.
func TestV1ClientAgainstSniffingServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type result struct {
		env *proto.Envelope
		ver int
		err error
	}
	res := make(chan result, 1)
	go func() {
		nc, err := ln.Accept()
		if err != nil {
			res <- result{err: err}
			return
		}
		c := proto.NewConn(nc)
		defer c.Close()
		if err := c.AcceptHandshake(proto.ModeAuto); err != nil {
			res <- result{err: err}
			return
		}
		env, err := c.Recv()
		res <- result{env: env, ver: c.Version(), err: err}
	}()
	cli, err := proto.Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Send(proto.TQDel, proto.QDelReq{JobID: 11}); err != nil {
		t.Fatal(err)
	}
	r := <-res
	if r.err != nil {
		t.Fatal(r.err)
	}
	if r.ver != 1 {
		t.Errorf("sniffed version = %d, want 1", r.ver)
	}
	var req proto.QDelReq
	if err := r.env.Decode(&req); err != nil || req.JobID != 11 {
		t.Errorf("v1 frame after sniff = %+v, %v", req, err)
	}
}

// oldServer emulates a seed (pre-v2) daemon: it accepts and reads v1
// frames with no handshake, so the v2 magic parses as an oversized
// length prefix and the connection is dropped.
func oldServer(t *testing.T, ln net.Listener, accepts int) chan *proto.Envelope {
	t.Helper()
	envs := make(chan *proto.Envelope, accepts)
	go func() {
		for i := 0; i < accepts; i++ {
			nc, err := ln.Accept()
			if err != nil {
				return
			}
			c := proto.NewConn(nc)
			env, err := c.Recv()
			if err == nil {
				envs <- env
			}
			_ = c.Close()
		}
	}()
	return envs
}

func TestAutoDialFallsBackToOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	envs := oldServer(t, ln, 2) // magic-poisoned conn, then the v1 retry
	cli, err := proto.DialMode(ln.Addr().String(), proto.ModeAuto)
	if err != nil {
		t.Fatalf("auto dial against an old server: %v", err)
	}
	defer cli.Close()
	if cli.Version() != 1 {
		t.Fatalf("fallback version = %d, want 1", cli.Version())
	}
	if err := cli.Send(proto.TQDel, proto.QDelReq{JobID: 3}); err != nil {
		t.Fatal(err)
	}
	env := <-envs
	var req proto.QDelReq
	if err := env.Decode(&req); err != nil || req.JobID != 3 {
		t.Errorf("fallback frame = %+v, %v", req, err)
	}
}

func TestV2RequiredFailsOnOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_ = oldServer(t, ln, 1)
	if _, err := proto.DialMode(ln.Addr().String(), proto.ModeV2); err == nil {
		t.Fatal("ModeV2 dial against an old server must fail, not fall back")
	}
}

func TestParseMode(t *testing.T) {
	cases := []struct {
		in   string
		want proto.Mode
		ok   bool
	}{
		{"", proto.ModeAuto, true}, {"auto", proto.ModeAuto, true},
		{"v1", proto.ModeV1, true}, {"1", proto.ModeV1, true},
		{"v2", proto.ModeV2, true}, {"2", proto.ModeV2, true},
		{"v3", proto.ModeAuto, false}, {"json", proto.ModeAuto, false},
	}
	for _, c := range cases {
		got, err := proto.ParseMode(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseMode(%q) = %v, %v", c.in, got, err)
		}
		if c.ok && !strings.Contains("auto v1 v2", got.String()) {
			t.Errorf("Mode(%d).String() = %q", got, got.String())
		}
	}
}

// TestConcurrentRequestsPairReplies: the pairing lock must keep each
// requester's reply with its own request. On the seed code wm and rm
// serialize Send and Recv separately, so two in-flight requests race
// for rm and routinely swap replies; this test fails there.
func TestConcurrentRequestsPairReplies(t *testing.T) {
	ca, cb := handshakePair(t, proto.ModeV1)
	go func() {
		for {
			env, err := cb.Recv()
			if err != nil {
				return
			}
			var req proto.QDelReq
			if err := env.Decode(&req); err != nil {
				return
			}
			if err := cb.Send(proto.TOK, proto.QSubResp{JobID: req.JobID}); err != nil {
				return
			}
		}
	}()
	const goroutines, per = 8, 32
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			for i := 0; i < per; i++ {
				id := g*1000 + i
				env, err := ca.Request(proto.TQDel, proto.QDelReq{JobID: id})
				if err != nil {
					errs <- err
					return
				}
				var resp proto.QSubResp
				if err := env.Decode(&resp); err != nil {
					errs <- err
					return
				}
				if resp.JobID != id {
					errs <- fmt.Errorf("goroutine %d received reply for request %d, want %d (crossed replies)", g, resp.JobID, id)
					return
				}
			}
			errs <- nil
		}(g)
	}
	for g := 0; g < goroutines; g++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
