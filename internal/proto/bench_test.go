package proto

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// benchState builds a moderately sized scheduler snapshot — the
// largest message class on the wire during live operation.
func benchState() SchedState {
	st := SchedState{NowMS: 123456, Serial: 42}
	for i := 0; i < 16; i++ {
		st.Nodes = append(st.Nodes, NodeStatus{
			Name: "node07", Cores: 8, Used: 4, State: "up",
		})
	}
	for i := 0; i < 32; i++ {
		st.Queued = append(st.Queued, SchedJob{
			ID: i, Name: "L.12", User: "user08", Group: "grp_user08",
			State: "queued", Cores: 15, WallSecs: 366, SubmitMS: int64(i) * 30000,
		})
	}
	for i := 0; i < 8; i++ {
		st.Dyn = append(st.Dyn, SchedDynReq{JobID: i, Cores: 4, Seq: i})
	}
	return st
}

// BenchmarkConnRoundTrip measures one request/echo cycle over an
// in-memory pipe: Send encode + frame write, Recv frame read + decode,
// both directions (BENCH_campaign.json: proto roundtrip).
func BenchmarkConnRoundTrip(b *testing.B) {
	a, p := net.Pipe()
	ca, cb := NewConn(a), NewConn(p)
	defer ca.Close()
	defer cb.Close()
	go func() {
		for {
			env, err := cb.Recv()
			if err != nil {
				return
			}
			if err := cb.Send(env.Type, env.Payload); err != nil {
				return
			}
		}
	}()
	st := benchState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env, err := ca.Request(TSchedState, st)
		if err != nil {
			b.Fatal(err)
		}
		if env.Type != TSchedState {
			b.Fatalf("echo type %s", env.Type)
		}
	}
}

// discardConn is a net.Conn that swallows writes, isolating the Send
// encode path from socket costs.
type discardConn struct{ net.Conn }

func (discardConn) Write(p []byte) (int, error) { return len(p), nil }

// TestSendAllocsRegression guards the pooled single-pass Send path:
// the seed codec spent 5 allocations per call (payload marshal,
// envelope marshal, growth copies); the pooled path must stay at ≤ 2
// amortized. A regression here silently reintroduces encode churn on
// every wire message of the live daemons.
func TestSendAllocsRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	a, p := net.Pipe()
	defer a.Close()
	defer p.Close()
	c := NewConn(discardConn{a})
	st := benchState()
	c.Send(TSchedState, st) // warm the pools
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Send(TSchedState, st); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Errorf("Send allocates %.1f times per call, want <= 2 (seed codec: 5)", allocs)
	}
}

// TestRecvAllocsRegression guards the pooled Recv frame buffer: only
// the envelope, its payload copy, and decode internals may allocate —
// the frame read buffer itself must come from the pool.
func TestRecvAllocsRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	st := benchState()
	var frame bytes.Buffer
	fc := NewConn(discardRecorder{Buffer: &frame})
	if err := fc.Send(TSchedState, st); err != nil {
		t.Fatal(err)
	}
	r := &replayConn{data: frame.Bytes()}
	c := NewConn(r)
	if _, err := c.Recv(); err != nil { // warm the pool
		t.Fatal(err)
	}
	r.off = 0
	allocs := testing.AllocsPerRun(200, func() {
		r.off = 0
		env, err := c.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if env.Type != TSchedState {
			t.Fatalf("type %s", env.Type)
		}
	})
	// envelope + payload copy + unmarshal scratch sit at 10 today; the
	// seed path allocated a fresh frame buffer for every message on
	// top of that. The bound only needs to catch the buffer coming
	// back (or decode-path churn), not pin the stdlib's exact count.
	if allocs > 10 {
		t.Errorf("Recv allocates %.1f times per call, want <= 10", allocs)
	}
}

// discardRecorder captures Send frames for replay.
type discardRecorder struct {
	net.Conn
	Buffer *bytes.Buffer
}

func (d discardRecorder) Write(p []byte) (int, error) { return d.Buffer.Write(p) }

// replayConn replays one captured frame per rewind.
type replayConn struct {
	net.Conn
	data []byte
	off  int
}

func (r *replayConn) Read(p []byte) (int, error) {
	if r.off >= len(r.data) {
		return 0, io.EOF
	}
	n := copy(p, r.data[r.off:])
	r.off += n
	return n, nil
}

func (r *replayConn) SetReadDeadline(time.Time) error { return nil }

// BenchmarkConnSend measures the encode + frame path alone.
func BenchmarkConnSend(b *testing.B) {
	a, p := net.Pipe()
	defer a.Close()
	defer p.Close()
	c := NewConn(discardConn{a})
	st := benchState()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Send(TSchedState, st); err != nil {
			b.Fatal(err)
		}
	}
}

// v2BenchPair returns an in-memory pair pinned to the v2 framing
// (version forced directly; the handshake is covered by the
// integration tests).
func v2BenchPair() (*Conn, *Conn, func()) {
	a, p := net.Pipe()
	ca, cb := NewConn(a), NewConn(p)
	ca.ver.Store(V2)
	cb.ver.Store(V2)
	return ca, cb, func() { ca.Close(); cb.Close() }
}

// BenchmarkConnRoundTripV2 measures one request/echo cycle of a hot
// mom-link struct over the binary codec — the per-message cost the
// 10k-mom soak multiplies out (BENCH_proto.json: v2 roundtrip).
func BenchmarkConnRoundTripV2(b *testing.B) {
	ca, cb, stop := v2BenchPair()
	defer stop()
	go func() {
		var req JobDoneReq
		for {
			env, err := cb.Recv()
			if err != nil {
				return
			}
			req = JobDoneReq{}
			if err := env.Decode(&req); err != nil {
				return
			}
			if err := cb.Send(TJobDone, &req); err != nil {
				return
			}
		}
	}()
	req := JobDoneReq{JobID: 7}
	var resp JobDoneReq
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ca.Send(TJobDone, &req); err != nil {
			b.Fatal(err)
		}
		env, err := ca.Recv()
		if err != nil {
			b.Fatal(err)
		}
		resp = JobDoneReq{}
		if err := env.Decode(&resp); err != nil {
			b.Fatal(err)
		}
		if resp.JobID != 7 {
			b.Fatalf("echo = %+v", resp)
		}
	}
}

// BenchmarkConnSendV2 measures the binary encode + frame path alone.
func BenchmarkConnSendV2(b *testing.B) {
	a, p := net.Pipe()
	defer a.Close()
	defer p.Close()
	c := NewConn(discardConn{a})
	c.ver.Store(V2)
	req := HeartbeatReq{Node: "mom-00042", Seq: 1, SentMS: 1723}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.Seq++
		if err := c.Send(THeartbeat, &req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestSendAllocsV2Regression: the binary encode of a hot struct must
// be allocation-free in steady state — pooled frame buffer, varint
// fields, no interface-boxing copies when the caller passes a pointer.
func TestSendAllocsV2Regression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	a, p := net.Pipe()
	defer a.Close()
	defer p.Close()
	c := NewConn(discardConn{a})
	c.ver.Store(V2)
	req := HeartbeatReq{Node: "mom-00042", Seq: 9, SentMS: 1723}
	if err := c.Send(THeartbeat, &req); err != nil { // warm the pool
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := c.Send(THeartbeat, &req); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 0 {
		t.Errorf("v2 Send allocates %.1f times per call, want 0", allocs)
	}
}

// TestRoundTripV2AllocsRegression pins the acceptance criterion: a
// full v2 round trip (Send + echo Recv/Decode/Send on the peer + Recv
// + Decode locally, across both goroutines) stays at ≤ 4 allocations —
// the envelope and binary-payload copy on each side — versus 22 for
// the same cycle on the v1 JSON codec.
func TestRoundTripV2AllocsRegression(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated by race instrumentation")
	}
	ca, cb, stop := v2BenchPair()
	defer stop()
	go func() {
		var req JobDoneReq
		for {
			env, err := cb.Recv()
			if err != nil {
				return
			}
			req = JobDoneReq{}
			if err := env.Decode(&req); err != nil {
				return
			}
			if err := cb.Send(TJobDone, &req); err != nil {
				return
			}
		}
	}()
	req := JobDoneReq{JobID: 7}
	var resp JobDoneReq
	roundTrip := func() {
		if err := ca.Send(TJobDone, &req); err != nil {
			t.Fatal(err)
		}
		env, err := ca.Recv()
		if err != nil {
			t.Fatal(err)
		}
		resp = JobDoneReq{}
		if err := env.Decode(&resp); err != nil {
			t.Fatal(err)
		}
		if resp.JobID != 7 {
			t.Fatalf("echo = %+v", resp)
		}
	}
	roundTrip() // warm the pools
	allocs := testing.AllocsPerRun(200, roundTrip)
	if allocs > 4 {
		t.Errorf("v2 round trip allocates %.1f times, want <= 4 (v1: ~22)", allocs)
	}
}
